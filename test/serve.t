Unknown flags exit non-zero with the usage line on stderr, for both
binaries (nothing lands on stdout):

  $ riommu-serve --bogus-flag 2>stderr.txt; echo "exit=$?"
  exit=124
  $ cat stderr.txt
  riommu-serve: unknown option '--bogus-flag'.
  Usage: riommu-serve [OPTION]…
  Try 'riommu-serve --help' for more information.

  $ riommu-cli run --bogus-flag 2>stderr.txt; echo "exit=$?"
  exit=124
  $ cat stderr.txt
  riommu-cli: unknown option '--bogus-flag'.
  Usage: riommu-cli run [OPTION]… [EXPERIMENT]…
  Try 'riommu-cli run --help' or 'riommu-cli --help' for more information.

An invalid configuration is a usage error, not a crash:

  $ riommu-serve --shards 0 2>&1; echo "exit=$?"
  riommu-serve: Server.run: shards
  exit=2

The service summary on stdout is a pure function of the simulated
configuration: byte-identical no matter how many worker domains drive
the shards (wall-clock progress goes to stderr only):

  $ riommu-serve --duration 0.002 --interval 0.001 --shards 3 --jobs 1 2>/dev/null >j1.out
  $ riommu-serve --duration 0.002 --interval 0.001 --shards 3 --jobs 4 2>/dev/null >j4.out
  $ riommu-serve --duration 0.002 --interval 0.001 --shards 3 --jobs 0 2>/dev/null >j0.out
  $ cmp j1.out j4.out
  $ cmp j1.out j0.out

The shard count is what changes results:

  $ riommu-serve --duration 0.002 --interval 0.001 --shards 2 --jobs 2 2>/dev/null >s2.out
  $ cmp j1.out s2.out && echo "unexpectedly identical"
  j1.out s2.out differ: char 31, line 2
  [1]

A short run serves traffic and emits the bench-schema stats JSON, with
one group per op kind and the translate group gated zero-alloc:

  $ riommu-serve --duration 0.002 --shards 2 --tenants 2 --flows 2 --stats stats.json 2>/dev/null | head -1
  riommu-serve summary
  $ grep -o '"schema": "riommu-serve/1"' stats.json
  "schema": "riommu-serve/1"
  $ grep -c '"name": "serve/' stats.json
  4
  $ grep -o '"gated_zero_alloc": true, "p50_cycles"' stats.json
  "gated_zero_alloc": true, "p50_cycles"
  $ grep -o '"words_per_op": 0.00, "gated_zero_alloc": true' stats.json
  "words_per_op": 0.00, "gated_zero_alloc": true

The stats JSON also carries a per-tenant breakdown and the
per-reporting-tick interval windows (non-cumulative percentiles), one
tenant object per configured tenant and one interval object per tick:

  $ grep -c '"tenant": ' stats.json
  2
  $ grep -o '"iotlb_hit_rate"' stats.json | sort -u
  "iotlb_hit_rate"
  $ grep -c '"tick": ' stats.json
  1
  $ grep -o '"win_ops"' stats.json | sort -u
  "win_ops"
