(* Tests for the multi-tenant domain subsystem (rio_domain): cross-domain
   isolation, shared-IOTLB partitioning policies and their accounting,
   invalidation scoping, and the discrete-event scheduler's interference
   experiment. *)

module Addr = Rio_memory.Addr
module Frame_allocator = Rio_memory.Frame_allocator
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model
module Bdf = Rio_iommu.Bdf
module Hw = Rio_iommu.Hw
module Mode = Rio_protect.Mode
module Shared_iotlb = Rio_domain.Shared_iotlb
module Manager = Rio_domain.Manager
module Scheduler = Rio_domain.Scheduler

type rig = {
  frames : Frame_allocator.t;
  mgr : Manager.t;
  a : Manager.domain;
  b : Manager.domain;
}

let make_rig ?(iotlb_policy = Shared_iotlb.Shared) ?(iotlb_capacity = 16)
    ?(invalidation = Manager.Per_domain) ?(policy = Manager.Immediate) () =
  let clock = Cycles.create () in
  let cost = Cost_model.default in
  let frames = Frame_allocator.create ~total_frames:200_000 in
  let mgr =
    Manager.create ~iotlb_policy ~iotlb_capacity ~invalidation ~policy ~frames
      ~clock ~cost ()
  in
  let a =
    Manager.add_domain mgr ~name:"a" ~bdf:(Bdf.make ~bus:1 ~device:0 ~func:0) ()
  in
  let b =
    Manager.add_domain mgr ~name:"b" ~bdf:(Bdf.make ~bus:2 ~device:0 ~func:0) ()
  in
  { frames; mgr; a; b }

let map_exn r d bytes =
  let buf = Frame_allocator.alloc_exn r.frames in
  Result.get_ok (Manager.map r.mgr d ~phys:buf ~bytes ~read:true ~write:true)

(* {1 Isolation} *)

let test_isolation () =
  let r = make_rig () in
  let iova = map_exn r r.a 1500 in
  Alcotest.(check bool) "owner translates" true
    (Result.is_ok
       (Manager.translate r.mgr ~rid:(Manager.rid r.a) ~iova ~write:true));
  (* domain B's device presenting A's IOVA walks B's (empty) table *)
  Alcotest.(check bool) "other domain faults" true
    (Manager.translate r.mgr ~rid:(Manager.rid r.b) ~iova ~write:true
    = Error Hw.No_translation);
  Alcotest.(check int) "fault recorded against B" 1 (Manager.faults r.mgr r.b);
  Alcotest.(check int) "no fault against A" 0 (Manager.faults r.mgr r.a)

let test_unknown_rid () =
  let r = make_rig () in
  Alcotest.(check bool) "unknown rid faults" true
    (Manager.translate r.mgr ~rid:0xBEEF ~iova:0x1000 ~write:true
    = Error Hw.Unknown_device);
  Alcotest.(check int) "counted" 1 (Manager.unknown_rid_faults r.mgr)

let test_private_iova_spaces () =
  (* Both tenants allocate from their own IOVA space: the same IOVA can
     be live in both domains at once, mapping different frames. *)
  let r = make_rig () in
  let iova_a = map_exn r r.a 100 in
  let iova_b = map_exn r r.b 100 in
  Alcotest.(check int) "same iova, both spaces" iova_a iova_b;
  let pa =
    Result.get_ok
      (Manager.translate r.mgr ~rid:(Manager.rid r.a) ~iova:iova_a ~write:true)
  in
  let pb =
    Result.get_ok
      (Manager.translate r.mgr ~rid:(Manager.rid r.b) ~iova:iova_b ~write:true)
  in
  Alcotest.(check bool) "different frames" false (Addr.equal pa pb)

(* {1 Policies and accounting} *)

let touch r d iova = ignore (Manager.translate r.mgr ~rid:(Manager.rid d) ~iova ~write:true)

let test_shared_cross_eviction_accounted () =
  let r = make_rig ~iotlb_policy:Shared_iotlb.Shared ~iotlb_capacity:8 () in
  (* A warms 4 entries, then B floods 8: A's entries must be evicted by
     B's fills and attributed as such. *)
  let a_iovas = List.init 4 (fun _ -> map_exn r r.a Addr.page_size) in
  List.iter (touch r r.a) a_iovas;
  let b_iovas = List.init 8 (fun _ -> map_exn r r.b Addr.page_size) in
  List.iter (touch r r.b) b_iovas;
  let sa = Manager.iotlb_stats r.mgr r.a in
  Alcotest.(check int) "all of A's entries victimized" 4
    sa.Shared_iotlb.evictions_by_other;
  (* and A now misses on re-touch *)
  let misses_before = (Manager.iotlb_stats r.mgr r.a).Shared_iotlb.misses in
  List.iter (touch r r.a) a_iovas;
  let sa = Manager.iotlb_stats r.mgr r.a in
  Alcotest.(check int) "A misses after the flood" (misses_before + 4)
    sa.Shared_iotlb.misses

let test_partitioned_no_cross_eviction () =
  let r = make_rig ~iotlb_policy:Shared_iotlb.Partitioned ~iotlb_capacity:8 () in
  (* partition size = 8/2 = 4 per domain *)
  let a_iovas = List.init 4 (fun _ -> map_exn r r.a Addr.page_size) in
  List.iter (touch r r.a) a_iovas;
  let b_iovas = List.init 16 (fun _ -> map_exn r r.b Addr.page_size) in
  List.iter (touch r r.b) b_iovas;
  let sa = Manager.iotlb_stats r.mgr r.a in
  Alcotest.(check int) "B cannot evict A" 0 sa.Shared_iotlb.evictions_by_other;
  (* A's working set is intact: re-touching is all hits *)
  let hits_before = sa.Shared_iotlb.hits in
  List.iter (touch r r.a) a_iovas;
  let sa = Manager.iotlb_stats r.mgr r.a in
  Alcotest.(check int) "A still hits" (hits_before + 4) sa.Shared_iotlb.hits;
  (* B thrashed its own partition, attributed to itself *)
  let sb = Manager.iotlb_stats r.mgr r.b in
  Alcotest.(check bool) "B self-evicts" true (sb.Shared_iotlb.evictions_self > 0);
  Alcotest.(check int) "nobody evicted B" 0 sb.Shared_iotlb.evictions_by_other

let test_quota_policy_caps_domain () =
  let r =
    make_rig ~iotlb_policy:(Shared_iotlb.Quota { entries = 2 }) ~iotlb_capacity:8
      ()
  in
  let a_iovas = List.init 4 (fun _ -> map_exn r r.a Addr.page_size) in
  List.iter (touch r r.a) a_iovas;
  Alcotest.(check int) "A capped at its quota" 2
    (Shared_iotlb.occupancy (Manager.iotlb r.mgr) ~domain:(Manager.domain_id r.a))

(* {1 Invalidation scoping} *)

let test_per_domain_invalidation_spares_others () =
  let r = make_rig ~iotlb_policy:Shared_iotlb.Partitioned ~iotlb_capacity:8 () in
  let a_iovas = List.init 2 (fun _ -> map_exn r r.a Addr.page_size) in
  let b_iovas = List.init 2 (fun _ -> map_exn r r.b Addr.page_size) in
  List.iter (touch r r.a) a_iovas;
  List.iter (touch r r.b) b_iovas;
  Shared_iotlb.flush_domain (Manager.iotlb r.mgr) ~domain:(Manager.domain_id r.a);
  (* B's entries survived: re-touch hits *)
  let hits_before = (Manager.iotlb_stats r.mgr r.b).Shared_iotlb.hits in
  List.iter (touch r r.b) b_iovas;
  Alcotest.(check int) "B unaffected by A's flush" (hits_before + 2)
    (Manager.iotlb_stats r.mgr r.b).Shared_iotlb.hits;
  (* A's entries are gone: re-touch misses *)
  let misses_before = (Manager.iotlb_stats r.mgr r.a).Shared_iotlb.misses in
  List.iter (touch r r.a) a_iovas;
  Alcotest.(check int) "A flushed" (misses_before + 2)
    (Manager.iotlb_stats r.mgr r.a).Shared_iotlb.misses

let test_per_domain_invalidation_shared_policy () =
  (* Domain-selective invalidation also works on the fully shared array:
     it drops exactly the flushed domain's entries. *)
  let r = make_rig ~iotlb_policy:Shared_iotlb.Shared ~iotlb_capacity:16 () in
  let a_iovas = List.init 3 (fun _ -> map_exn r r.a Addr.page_size) in
  let b_iovas = List.init 3 (fun _ -> map_exn r r.b Addr.page_size) in
  List.iter (touch r r.a) a_iovas;
  List.iter (touch r r.b) b_iovas;
  Shared_iotlb.flush_domain (Manager.iotlb r.mgr) ~domain:(Manager.domain_id r.a);
  Alcotest.(check int) "A's footprint dropped" 0
    (Shared_iotlb.occupancy (Manager.iotlb r.mgr) ~domain:(Manager.domain_id r.a));
  Alcotest.(check int) "B's footprint intact" 3
    (Shared_iotlb.occupancy (Manager.iotlb r.mgr) ~domain:(Manager.domain_id r.b))

let test_deferred_per_domain_flush_drains_own_queue () =
  let r =
    make_rig ~iotlb_policy:Shared_iotlb.Partitioned
      ~invalidation:Manager.Per_domain
      ~policy:(Manager.Deferred { batch = 4 })
      ()
  in
  let unmap_n d n =
    for _ = 1 to n do
      let iova = map_exn r d Addr.page_size in
      Alcotest.(check bool) "unmap ok" true (Manager.unmap r.mgr d ~iova = Ok ())
    done
  in
  unmap_n r.a 3;
  unmap_n r.b 2;
  Alcotest.(check int) "A queued" 3 (Manager.pending r.mgr r.a);
  Alcotest.(check int) "B queued" 2 (Manager.pending r.mgr r.b);
  (* A's 4th unmap reaches the batch: only A's queue drains *)
  unmap_n r.a 1;
  Alcotest.(check int) "A drained" 0 (Manager.pending r.mgr r.a);
  Alcotest.(check int) "B untouched" 2 (Manager.pending r.mgr r.b)

let test_deferred_global_flush_drains_all_queues () =
  let r =
    make_rig ~iotlb_policy:Shared_iotlb.Shared ~invalidation:Manager.Global
      ~policy:(Manager.Deferred { batch = 4 })
      ()
  in
  let unmap_n d n =
    for _ = 1 to n do
      let iova = map_exn r d Addr.page_size in
      ignore (Manager.unmap r.mgr d ~iova)
    done
  in
  unmap_n r.b 2;
  unmap_n r.a 4;
  Alcotest.(check int) "A drained" 0 (Manager.pending r.mgr r.a);
  Alcotest.(check int) "global flush drained B too" 0 (Manager.pending r.mgr r.b)

let test_deferred_window_closes () =
  let r =
    make_rig ~iotlb_policy:Shared_iotlb.Shared ~invalidation:Manager.Per_domain
      ~policy:(Manager.Deferred { batch = 250 })
      ()
  in
  let iova = map_exn r r.a 100 in
  touch r r.a iova;
  Alcotest.(check bool) "unmap" true (Manager.unmap r.mgr r.a ~iova = Ok ());
  (* stale entry still live: the window *)
  Alcotest.(check bool) "window open" true
    (Result.is_ok
       (Manager.translate r.mgr ~rid:(Manager.rid r.a) ~iova ~write:true));
  Manager.flush r.mgr r.a;
  Alcotest.(check bool) "window closed" true
    (Manager.translate r.mgr ~rid:(Manager.rid r.a) ~iova ~write:true
    = Error Hw.No_translation)

(* {1 Scheduler and interference} *)

let small_tenants =
  [
    Scheduler.nic_tenant ~latency_critical:true ~name:"victim" ();
    Scheduler.nvme_tenant ~name:"noisy0" ();
    Scheduler.nvme_tenant ~name:"noisy1" ();
  ]

let test_scheduler_completes_all_tenants () =
  let cfg =
    Scheduler.default_config ~ios_per_tenant:100 ~mode:Mode.Strict
      ~policy:Shared_iotlb.Shared ()
  in
  let results = Scheduler.run cfg small_tenants in
  Alcotest.(check int) "three tenants" 3 (List.length results);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Scheduler.spec.Scheduler.name ^ " completed its I/Os") true
        (r.Scheduler.ios >= 100);
      Alcotest.(check bool) "consumed cycles" true (r.Scheduler.cycles > 0);
      Alcotest.(check int) "no faults" 0 r.Scheduler.faults)
    results

let test_scheduler_deterministic () =
  let run () =
    let cfg =
      Scheduler.default_config ~ios_per_tenant:60 ~seed:7 ~mode:Mode.Defer
        ~policy:Shared_iotlb.Shared ()
    in
    List.map
      (fun r -> (r.Scheduler.ios, r.Scheduler.cycles, r.Scheduler.misses))
      (Scheduler.run cfg small_tenants)
  in
  Alcotest.(check bool) "same seed, same run" true (run () = run ())

let test_riommu_mode_no_cross_eviction () =
  let cfg =
    Scheduler.default_config ~ios_per_tenant:100 ~mode:Mode.Riommu
      ~policy:Shared_iotlb.Shared ()
  in
  List.iter
    (fun r ->
      Alcotest.(check int)
        (r.Scheduler.spec.Scheduler.name ^ " never victimized") 0
        r.Scheduler.evictions_by_other)
    (Scheduler.run cfg small_tenants)

(* The acceptance property of the interference experiment: the
   latency-critical tenant degrades more under the shared policy than
   under the partitioned policy. *)
let test_interference_contrast () =
  let cells =
    Rio_experiments.Interference.measure ~ios_per_tenant:250 ~noisy_counts:[ 4 ]
      ()
  in
  let find mode policy =
    List.find
      (fun c ->
        c.Rio_experiments.Interference.mode = mode
        && c.Rio_experiments.Interference.policy = policy)
      cells
  in
  List.iter
    (fun mode ->
      let shared = find mode Shared_iotlb.Shared in
      let part = find mode Shared_iotlb.Partitioned in
      Alcotest.(check bool)
        (Mode.name mode ^ ": shared degrades more than partitioned")
        true
        (shared.Rio_experiments.Interference.victim_degradation
        >= part.Rio_experiments.Interference.victim_degradation))
    [ Mode.Strict; Mode.Defer ];
  let strict_shared = find Mode.Strict Shared_iotlb.Shared in
  Alcotest.(check bool) "contention observable under strict+shared" true
    (strict_shared.Rio_experiments.Interference.victim_degradation > 0.02);
  Alcotest.(check bool) "neighbors evict the victim" true
    (strict_shared.Rio_experiments.Interference.victim_evicted_by_other > 0)

let () =
  Alcotest.run "rio_domain"
    [
      ( "isolation",
        [
          Alcotest.test_case "cross-domain translate faults" `Quick
            test_isolation;
          Alcotest.test_case "unknown rid" `Quick test_unknown_rid;
          Alcotest.test_case "private IOVA spaces" `Quick
            test_private_iova_spaces;
        ] );
      ( "policies",
        [
          Alcotest.test_case "shared: cross-eviction accounted" `Quick
            test_shared_cross_eviction_accounted;
          Alcotest.test_case "partitioned: no cross-eviction" `Quick
            test_partitioned_no_cross_eviction;
          Alcotest.test_case "quota caps a domain" `Quick
            test_quota_policy_caps_domain;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "per-domain flush spares others (partitioned)"
            `Quick test_per_domain_invalidation_spares_others;
          Alcotest.test_case "per-domain flush spares others (shared)" `Quick
            test_per_domain_invalidation_shared_policy;
          Alcotest.test_case "deferred per-domain drains own queue" `Quick
            test_deferred_per_domain_flush_drains_own_queue;
          Alcotest.test_case "deferred global drains all queues" `Quick
            test_deferred_global_flush_drains_all_queues;
          Alcotest.test_case "deferred window closes on flush" `Quick
            test_deferred_window_closes;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "all tenants complete" `Quick
            test_scheduler_completes_all_tenants;
          Alcotest.test_case "deterministic for a seed" `Quick
            test_scheduler_deterministic;
          Alcotest.test_case "riommu immune by construction" `Quick
            test_riommu_mode_no_cross_eviction;
          Alcotest.test_case "interference: shared > partitioned" `Slow
            test_interference_contrast;
        ] );
    ]
