(* The parallel experiment harness: splittable streams, the domain
   pool, the memo, and end-to-end determinism of the experiment plans
   across --jobs levels. *)

module Srng = Rio_sim.Splittable_rng
module Pool = Rio_exec.Pool
module Memo = Rio_exec.Memo
module Exp = Rio_experiments.Exp

let draws t n =
  let rec go t n acc =
    if n = 0 then List.rev acc
    else
      let v, t = Srng.next t in
      go t (n - 1) (v :: acc)
  in
  go t n []

(* {1 Splittable streams} *)

let test_same_seed_same_stream () =
  Alcotest.(check (list int64))
    "identical streams"
    (draws (Srng.create ~seed:7) 16)
    (draws (Srng.create ~seed:7) 16)

let test_distinct_seeds_distinct_streams () =
  Alcotest.(check bool)
    "different streams" false
    (draws (Srng.create ~seed:7) 16 = draws (Srng.create ~seed:8) 16)

let test_descend_distinct_keys () =
  let t = Srng.create ~seed:42 in
  let a = draws (Srng.descend t 0) 16 in
  let b = draws (Srng.descend t 1) 16 in
  Alcotest.(check bool) "children differ" false (a = b);
  Alcotest.(check bool)
    "children differ from parent" false
    (a = draws t 16)

let test_descend_equal_keys () =
  let t = Srng.create ~seed:42 in
  Alcotest.(check (list int64))
    "equal keys equal streams"
    (draws (Srng.descend t 5) 16)
    (draws (Srng.descend t 5) 16)

(* the property the harness rests on: a child stream depends only on
   (parent, key), never on which siblings were derived first or whether
   the parent was drawn from in between *)
let test_descend_order_independent () =
  let t = Srng.create ~seed:9 in
  let a_first = draws (Srng.descend t 0) 16 in
  let _b = Srng.descend t 1 in
  let _drawn, _ = Srng.next t in
  let a_second = draws (Srng.descend t 0) 16 in
  Alcotest.(check (list int64)) "split order irrelevant" a_first a_second

let test_path_is_folded_descend () =
  let t = Srng.create ~seed:11 in
  Alcotest.(check (list int64))
    "path = descend_string folds"
    (draws (Srng.path t [ "table1"; "strict" ]) 8)
    (draws (Srng.descend_string (Srng.descend_string t "table1") "strict") 8);
  Alcotest.(check bool)
    "sibling paths differ" false
    (draws (Srng.path t [ "table1"; "strict" ]) 8
    = draws (Srng.path t [ "table1"; "defer" ]) 8);
  Alcotest.(check bool)
    "path is hierarchical, not a set" false
    (draws (Srng.path t [ "a"; "b" ]) 8 = draws (Srng.path t [ "b"; "a" ]) 8)

let test_seed_nonnegative () =
  let t = ref (Srng.create ~seed:3) in
  for k = 0 to 999 do
    let child = Srng.descend !t k in
    Alcotest.(check bool) "seed >= 0" true (Srng.seed child >= 0);
    let _, t' = Srng.next !t in
    t := t'
  done

let prop_descend_pure =
  QCheck.Test.make ~count:200 ~name:"descend is a pure function of (t, key)"
    QCheck.(pair small_int (small_list small_int))
    (fun (seed, keys) ->
      let t = Srng.create ~seed in
      let walk () = List.fold_left Srng.descend t keys in
      Srng.seed (walk ()) = Srng.seed (walk ()))

let prop_next_advances =
  QCheck.Test.make ~count:200 ~name:"next yields a fresh position"
    QCheck.small_int
    (fun seed ->
      let t = Srng.create ~seed in
      let v1, t' = Srng.next t in
      let v2, _ = Srng.next t' in
      (* consecutive draws of one stream almost surely differ; equality
         here would mean the state failed to advance *)
      v1 <> v2 || Srng.seed t <> Srng.seed t')

(* {1 Pool} *)

let test_pool_order () =
  List.iter
    (fun jobs ->
      let tasks = Array.init 97 (fun i () -> i * i) in
      Alcotest.(check (list int))
        (Printf.sprintf "order at jobs=%d" jobs)
        (List.init 97 (fun i -> i * i))
        (Array.to_list (Pool.run ~jobs tasks)))
    [ 1; 2; 4; 0 ]

let test_pool_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Array.to_list (Pool.run ~jobs:4 [||]));
  Alcotest.(check (list int))
    "single" [ 7 ]
    (Array.to_list (Pool.run ~jobs:4 [| (fun () -> 7) |]))

let test_pool_negative_jobs () =
  Alcotest.check_raises "negative jobs rejected"
    (Invalid_argument "Rio_exec.Pool.run: jobs must be >= 0")
    (fun () -> ignore (Pool.run ~jobs:(-1) [| (fun () -> 0) |]))

exception Boom

let test_pool_exception () =
  List.iter
    (fun jobs ->
      let tasks =
        Array.init 32 (fun i () -> if i = 17 then raise Boom else i)
      in
      Alcotest.check_raises
        (Printf.sprintf "exception surfaces at jobs=%d" jobs)
        Boom
        (fun () -> ignore (Pool.run ~jobs tasks)))
    [ 1; 4 ]

let test_pool_run_list () =
  Alcotest.(check (list string))
    "run_list keeps order" [ "a"; "b"; "c" ]
    (Pool.run_list ~jobs:2 [ (fun () -> "a"); (fun () -> "b"); (fun () -> "c") ])

(* {1 Memo} *)

let test_memo_computes_once () =
  let m = Memo.create () in
  let calls = ref 0 in
  let get k =
    Memo.find_or_add m k (fun () ->
        incr calls;
        k * 10)
  in
  Alcotest.(check int) "first" 10 (get 1);
  Alcotest.(check int) "cached" 10 (get 1);
  Alcotest.(check int) "other key" 20 (get 2);
  Alcotest.(check int) "computed once per key" 2 !calls;
  Alcotest.(check bool) "mem" true (Memo.mem m 1);
  Alcotest.(check bool) "mem miss" false (Memo.mem m 3)

let test_memo_retry_after_raise () =
  let m = Memo.create () in
  let attempts = ref 0 in
  let f () =
    incr attempts;
    if !attempts = 1 then failwith "flaky" else 99
  in
  (try ignore (Memo.find_or_add m "k" f : int) with Failure _ -> ());
  Alcotest.(check bool) "failure not cached" false (Memo.mem m "k");
  Alcotest.(check int) "retry succeeds" 99 (Memo.find_or_add m "k" f)

let test_memo_once () =
  let calls = ref 0 in
  let get =
    Memo.once (fun () ->
        incr calls;
        "shared")
  in
  Alcotest.(check string) "first" "shared" (get ());
  Alcotest.(check string) "second" "shared" (get ());
  Alcotest.(check int) "one computation" 1 !calls

let test_memo_under_pool () =
  let m = Memo.create () in
  let hits =
    Pool.run ~jobs:4
      (Array.init 64 (fun i () ->
           Memo.find_or_add m (i mod 4) (fun () -> i mod 4 * 100)))
  in
  Array.iteri
    (fun i v -> Alcotest.(check int) "shared result" (i mod 4 * 100) v)
    hits

(* {1 End-to-end determinism of the experiment plans} *)

let rendered (plan_fn : ?quick:bool -> ?seed:int -> unit -> Exp.plan) jobs =
  Exp.render (Exp.run_plan ~jobs (plan_fn ~quick:true ~seed:42 ()))

let determinism_case name (plan_fn : ?quick:bool -> ?seed:int -> unit -> Exp.plan) =
  Alcotest.test_case (name ^ " byte-identical at jobs 1/4") `Slow (fun () ->
      let seq = rendered plan_fn 1 in
      Alcotest.(check string) "jobs=4" seq (rendered plan_fn 4);
      Alcotest.(check string) "jobs=4 rerun" seq (rendered plan_fn 4))

let test_seed_changes_output () =
  let at seed =
    Exp.render
      (Exp.run_plan ~jobs:1 (Rio_experiments.Table1.plan ~quick:true ~seed ()))
  in
  Alcotest.(check string) "same seed reproduces" (at 42) (at 42);
  Alcotest.(check bool) "different seed differs" false (at 42 = at 43)

let test_run_plans_matches_run_plan () =
  (* the flattened multi-plan pool must produce exactly what running
     each plan alone produces *)
  let plans =
    [
      ("table1", Rio_experiments.Table1.plan ~quick:true ~seed:42 ());
      ("iotlb_miss", Rio_experiments.Iotlb_miss.plan ~quick:true ~seed:42 ());
    ]
  in
  let combined = Exp.run_plans ~jobs:4 plans in
  let alone =
    [
      Exp.run_plan ~jobs:1 (Rio_experiments.Table1.plan ~quick:true ~seed:42 ());
      Exp.run_plan ~jobs:1
        (Rio_experiments.Iotlb_miss.plan ~quick:true ~seed:42 ());
    ]
  in
  List.iter2
    (fun (_, c) a ->
      Alcotest.(check string) "same rendering" (Exp.render a) (Exp.render c))
    combined alone

let () =
  Alcotest.run "rio_exec"
    [
      ( "splittable_rng",
        [
          Alcotest.test_case "same seed, same stream" `Quick
            test_same_seed_same_stream;
          Alcotest.test_case "distinct seeds, distinct streams" `Quick
            test_distinct_seeds_distinct_streams;
          Alcotest.test_case "descend: distinct keys" `Quick
            test_descend_distinct_keys;
          Alcotest.test_case "descend: equal keys" `Quick
            test_descend_equal_keys;
          Alcotest.test_case "descend: split order irrelevant" `Quick
            test_descend_order_independent;
          Alcotest.test_case "path semantics" `Quick test_path_is_folded_descend;
          Alcotest.test_case "seed nonnegative" `Quick test_seed_nonnegative;
          QCheck_alcotest.to_alcotest prop_descend_pure;
          QCheck_alcotest.to_alcotest prop_next_advances;
        ] );
      ( "pool",
        [
          Alcotest.test_case "results in task order" `Quick test_pool_order;
          Alcotest.test_case "empty and single" `Quick
            test_pool_empty_and_single;
          Alcotest.test_case "negative jobs" `Quick test_pool_negative_jobs;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "run_list" `Quick test_pool_run_list;
        ] );
      ( "memo",
        [
          Alcotest.test_case "computes once" `Quick test_memo_computes_once;
          Alcotest.test_case "retry after raise" `Quick
            test_memo_retry_after_raise;
          Alcotest.test_case "once" `Quick test_memo_once;
          Alcotest.test_case "shared under pool" `Quick test_memo_under_pool;
        ] );
      ( "determinism",
        [
          determinism_case "table1" Rio_experiments.Table1.plan;
          determinism_case "figure7" Rio_experiments.Figure7.plan;
          determinism_case "interference" Rio_experiments.Interference.plan;
          Alcotest.test_case "seed threads through" `Slow
            test_seed_changes_output;
          Alcotest.test_case "run_plans = run_plan per plan" `Slow
            test_run_plans_matches_run_plan;
        ] );
    ]
