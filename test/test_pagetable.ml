(* Unit and property tests for the 4-level radix page table (rio_pagetable). *)

module Addr = Rio_memory.Addr
module Coherency = Rio_memory.Coherency
module Frame_allocator = Rio_memory.Frame_allocator
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model
module Pte = Rio_pagetable.Pte
module Radix = Rio_pagetable.Radix

let make ?(coherent = false) () =
  let clock = Cycles.create () in
  let cost = Cost_model.default in
  let frames = Frame_allocator.create ~total_frames:100_000 in
  let coherency = Coherency.create ~coherent ~cost ~clock in
  (Radix.create ~frames ~coherency ~clock ~cost, clock)

let pte pfn = Pte.make ~pfn ()

let test_create_charges_one_node () =
  (* The satellite fix: create must allocate exactly the root node - one
     pt_node_alloc charge, one counted node, no throwaway record. *)
  let clock = Cycles.create () in
  let cost = Cost_model.default in
  let frames = Frame_allocator.create ~total_frames:100 in
  let coherency = Coherency.create ~coherent:true ~cost ~clock in
  let before = Cycles.now clock in
  let t = Radix.create ~frames ~coherency ~clock ~cost in
  Alcotest.(check int) "exactly one node allocation charged"
    cost.Cost_model.pt_node_alloc
    (Cycles.since clock before);
  Alcotest.(check int) "exactly one node counted" 1 (Radix.node_count t);
  Alcotest.(check int) "exactly one frame consumed" 1
    (Frame_allocator.allocated frames)

let test_pte_encode_decode () =
  let p = Pte.make ~read:true ~write:false ~pfn:0xabcde () in
  Alcotest.(check bool) "decode inverts encode" true
    (match Pte.decode (Pte.encode p) with Some q -> Pte.equal p q | None -> false);
  Alcotest.(check bool) "non-present decodes to None" true
    (Pte.decode 0xF000L = None)

let test_pte_permits () =
  let ro = Pte.make ~read:true ~write:false ~pfn:1 () in
  Alcotest.(check bool) "read allowed" true (Pte.permits ro ~write:false);
  Alcotest.(check bool) "write denied" false (Pte.permits ro ~write:true)

let test_map_walk_roundtrip () =
  let t, _ = make () in
  let iova = 0x7f_0000_3000 in
  Alcotest.(check bool) "map ok" true (Radix.map t ~iova (pte 42) = Ok ());
  (match Radix.walk t ~iova with
  | Some p -> Alcotest.(check int) "walk finds pfn" 42 p.Pte.pfn
  | None -> Alcotest.fail "walk missed");
  Alcotest.(check int) "mapped count" 1 (Radix.mapped_count t)

let test_double_map_rejected () =
  let t, _ = make () in
  let iova = 0x1000 in
  Alcotest.(check bool) "first" true (Radix.map t ~iova (pte 1) = Ok ());
  Alcotest.(check bool) "second rejected" true
    (Radix.map t ~iova (pte 2) = Error `Already_mapped)

let test_unmap () =
  let t, _ = make () in
  let iova = 0x2000 in
  ignore (Radix.map t ~iova (pte 7));
  (match Radix.unmap t ~iova with
  | Ok p -> Alcotest.(check int) "unmap returns pte" 7 p.Pte.pfn
  | Error `Not_mapped -> Alcotest.fail "was mapped");
  Alcotest.(check bool) "walk faults after unmap" true (Radix.walk t ~iova = None);
  Alcotest.(check bool) "re-unmap errors" true
    (Radix.unmap t ~iova = Error `Not_mapped);
  Alcotest.(check int) "count back to zero" 0 (Radix.mapped_count t)

let test_distinct_iovas_independent () =
  let t, _ = make () in
  (* Same level-4 index under different level-3 tables, etc. *)
  let iovas = [ 0x1000; 0x201000; 0x4000_1000; 0x80_0000_1000 ] in
  List.iteri (fun i iova -> ignore (Radix.map t ~iova (pte (100 + i)))) iovas;
  List.iteri
    (fun i iova ->
      match Radix.walk t ~iova with
      | Some p -> Alcotest.(check int) "right pfn" (100 + i) p.Pte.pfn
      | None -> Alcotest.fail "missing mapping")
    iovas;
  ignore (Radix.unmap t ~iova:0x201000);
  Alcotest.(check bool) "neighbour survives" true (Radix.walk t ~iova:0x1000 <> None)

let test_node_sharing () =
  let t, _ = make () in
  let base_nodes = Radix.node_count t in
  (* Two IOVAs on adjacent pages share all interior tables. *)
  ignore (Radix.map t ~iova:0x1000 (pte 1));
  let after_first = Radix.node_count t in
  ignore (Radix.map t ~iova:0x2000 (pte 2));
  Alcotest.(check int) "adjacent page allocates no new tables" after_first
    (Radix.node_count t);
  Alcotest.(check int) "first map allocated 3 interior tables" 3
    (after_first - base_nodes)

let test_iova_range_checked () =
  let t, _ = make () in
  Alcotest.check_raises "negative" (Invalid_argument "Radix: iova range") (fun () ->
      ignore (Radix.walk t ~iova:(-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Radix: iova range") (fun () ->
      ignore (Radix.walk t ~iova:(1 lsl 48)))

let test_noncoherent_visibility () =
  (* map syncs, so the walker must see mappings; the staleness model is
     exercised by checking dirty-line bookkeeping stays clean after ops. *)
  let clock = Cycles.create () in
  let cost = Cost_model.default in
  let frames = Frame_allocator.create ~total_frames:100_000 in
  let coherency = Coherency.create ~coherent:false ~cost ~clock in
  let t = Radix.create ~frames ~coherency ~clock ~cost in
  ignore (Radix.map t ~iova:0x5000 (pte 9));
  Alcotest.(check int) "map leaves no dirty lines" 0 (Coherency.dirty_lines coherency);
  Alcotest.(check bool) "walker sees synced mapping" true (Radix.walk t ~iova:0x5000 <> None);
  ignore (Radix.unmap t ~iova:0x5000);
  Alcotest.(check int) "unmap leaves no dirty lines" 0
    (Coherency.dirty_lines coherency);
  Alcotest.(check bool) "walker sees unmap" true (Radix.walk t ~iova:0x5000 = None)

let test_walk_cost_is_four_dram_refs () =
  let t, clock = make () in
  ignore (Radix.map t ~iova:0x3000 (pte 3));
  let before = Cycles.now clock in
  ignore (Radix.walk t ~iova:0x3000);
  let cost = Cost_model.default in
  Alcotest.(check int) "walk charges 4 refs"
    (4 * cost.Cost_model.io_walk_ref)
    (Cycles.since clock before)

let test_map_cost_in_table1_band () =
  (* Steady-state insertion (tables preallocated) should land near the
     paper's ~533-590 cycles for the page-table component of map. *)
  let t, clock = make () in
  ignore (Radix.map t ~iova:0x10_0000 (pte 1));
  ignore (Radix.unmap t ~iova:0x10_0000);
  let before = Cycles.now clock in
  ignore (Radix.map t ~iova:0x10_0000 (pte 2));
  let c = Cycles.since clock before in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state map cost %d in [400,700]" c)
    true
    (c >= 400 && c <= 700)

(* ---- Arena vs Radix oracle ------------------------------------------- *)

module Arena = Rio_pagetable.Arena
module Rng = Rio_sim.Rng

(* Two independent rigs over the same op trail. The arena must agree
   with the boxed reference on every observable: op outcome, walk
   result, mapped/node counts - and on the cycle meter, which pins the
   walk depths and per-level charge parity that keep experiment outputs
   byte-identical. *)
let make_arena ?(coherent = false) () =
  let clock = Cycles.create () in
  let cost = Cost_model.default in
  let frames = Frame_allocator.create ~total_frames:100_000 in
  let coherency = Coherency.create ~coherent ~cost ~clock in
  (Arena.create ~frames ~coherency ~clock ~cost, clock)

let test_arena_create_charges_one_node () =
  let clock = Cycles.create () in
  let cost = Cost_model.default in
  let frames = Frame_allocator.create ~total_frames:100 in
  let coherency = Coherency.create ~coherent:true ~cost ~clock in
  let before = Cycles.now clock in
  let t = Arena.create ~frames ~coherency ~clock ~cost in
  Alcotest.(check int) "exactly one node allocation charged"
    cost.Cost_model.pt_node_alloc
    (Cycles.since clock before);
  Alcotest.(check int) "exactly one node counted" 1 (Arena.node_count t);
  Alcotest.(check int) "exactly one frame consumed" 1
    (Frame_allocator.allocated frames)

let prop_arena_matches_radix =
  QCheck.Test.make
    ~name:"arena agrees with the radix oracle (results, counts, cycles)"
    ~count:60
    QCheck.(pair (int_bound 1_000_000) (int_bound 3))
    (fun (seed, coherent_bits) ->
      let coherent = coherent_bits land 1 = 1 in
      let radix, rclock = make ~coherent () in
      let arena, aclock = make_arena ~coherent () in
      let rng = Rng.create ~seed in
      let ok = ref true in
      let agree what a b = if a <> b then begin
        ok := false;
        Printf.eprintf "arena/radix disagree on %s: %d vs %d\n" what a b
      end in
      for _ = 1 to 400 do
        (* a small page universe keeps collisions (remap, re-unmap,
           shared interiors) frequent *)
        let page = Rng.int rng 64 in
        (* spread pages across interior tables so carve/free paths of
           every level get exercised *)
        let iova = page * Addr.page_size * (1 lsl (9 * (page land 3))) in
        let pfn = Rng.int rng 0xFFFF in
        let r0 = Cycles.now rclock and a0 = Cycles.now aclock in
        (match Rng.int rng 3 with
        | 0 ->
            let rr = Radix.map radix ~iova (pte pfn) in
            let ar = Arena.map arena ~iova ~pte:(Pte.pack (pte pfn)) in
            agree "map outcome"
              (match rr with Ok () -> 1 | Error `Already_mapped -> 0)
              (match ar with Ok () -> 1 | Error `Already_mapped -> 0)
        | 1 ->
            let rr = Radix.unmap radix ~iova in
            let ar = Arena.unmap arena ~iova in
            agree "unmap pfn"
              (match rr with Ok p -> p.Pte.pfn | Error `Not_mapped -> -1)
              (match ar with Ok p -> Pte.packed_pfn p | Error `Not_mapped -> -1)
        | _ ->
            let rr = Radix.walk radix ~iova in
            let ar = Arena.walk arena ~iova in
            agree "walk pfn"
              (match rr with Some p -> p.Pte.pfn | None -> -1)
              (if ar < 0 then -1 else Pte.packed_pfn ar));
        (* identical per-op charge = identical walk depth and per-level
           uncached-reference accounting *)
        agree "op cycles" (Cycles.since rclock r0) (Cycles.since aclock a0);
        agree "mapped_count" (Radix.mapped_count radix) (Arena.mapped_count arena);
        agree "node_count" (Radix.node_count radix) (Arena.node_count arena)
      done;
      !ok)

let test_arena_node_accounting_trail () =
  (* Satellite check: after a randomized insert/remove churn, the
     arena's node bookkeeping (live count, freelist reuse, frame
     retention) matches the boxed reference exactly. *)
  let radix, _ = make () in
  let arena, _ = make_arena () in
  let rng = Rng.create ~seed:2026 in
  let live = Hashtbl.create 64 in
  for _ = 1 to 3_000 do
    let page = Rng.int rng 512 in
    let iova = page * Addr.page_size * (1 lsl (9 * (page land 3))) in
    if Hashtbl.mem live iova then begin
      ignore (Radix.unmap radix ~iova);
      ignore (Arena.unmap arena ~iova);
      Hashtbl.remove live iova
    end
    else begin
      ignore (Radix.map radix ~iova (pte page));
      ignore (Arena.map arena ~iova ~pte:(Pte.pack_make ~read:true ~write:true ~pfn:page));
      Hashtbl.add live iova ()
    end;
    Alcotest.(check int) "node_count tracks reference"
      (Radix.node_count radix) (Arena.node_count arena)
  done;
  Alcotest.(check int) "mapped_count tracks reference"
    (Radix.mapped_count radix) (Arena.mapped_count arena);
  (* drain everything: only the root must survive, and the arena's
     high-water store must cover every node it ever held *)
  let high_water = Arena.store_nodes arena in
  Hashtbl.iter (fun iova () ->
      ignore (Radix.unmap radix ~iova);
      ignore (Arena.unmap arena ~iova)) live;
  Alcotest.(check int) "drained: no mappings left" 0 (Arena.mapped_count arena);
  Alcotest.(check int) "drained: node_count still tracks reference"
    (Radix.node_count radix) (Arena.node_count arena);
  (* interior tables are retained by unmap (as in the reference); only
     reset returns them to the freelist *)
  Arena.reset arena;
  Alcotest.(check int) "reset frees all but the root" 1 (Arena.node_count arena);
  Alcotest.(check bool) "freelist retains carved slots" true
    (Arena.store_nodes arena = high_water && high_water > 1)

let test_arena_reset_retains_store () =
  let arena, _ = make_arena () in
  for page = 0 to 63 do
    ignore (Arena.map arena ~iova:(page * Addr.page_size * 513)
              ~pte:(Pte.pack_make ~read:true ~write:false ~pfn:page))
  done;
  let high_water = Arena.store_nodes arena in
  Arena.reset arena;
  Alcotest.(check int) "reset drops all mappings" 0 (Arena.mapped_count arena);
  Alcotest.(check int) "reset keeps only the root live" 1 (Arena.node_count arena);
  Alcotest.(check int) "reset retains the carved store" high_water
    (Arena.store_nodes arena);
  (* the freelist must actually be reusable *)
  for page = 0 to 63 do
    ignore (Arena.map arena ~iova:(page * Addr.page_size * 513)
              ~pte:(Pte.pack_make ~read:true ~write:false ~pfn:page))
  done;
  Alcotest.(check int) "remap reuses freed nodes, carves nothing new"
    high_water (Arena.store_nodes arena)

let prop_map_walk_consistent =
  QCheck.Test.make ~name:"walk finds exactly the mapped pfn for any iova set"
    ~count:100
    QCheck.(small_list (int_bound 0xFFFFF))
    (fun pages ->
      let pages = List.sort_uniq compare pages in
      let t, _ = make () in
      List.iteri
        (fun i page -> ignore (Radix.map t ~iova:(page * Addr.page_size) (pte i)))
        pages;
      List.for_all
        (fun page ->
          match Radix.walk t ~iova:(page * Addr.page_size) with
          | Some _ -> true
          | None -> false)
        pages
      && Radix.mapped_count t = List.length pages)

let prop_unmap_removes_only_target =
  QCheck.Test.make ~name:"unmap removes the target and nothing else" ~count:100
    QCheck.(pair (small_list (int_bound 0xFFFF)) (int_bound 0xFFFF))
    (fun (pages, victim) ->
      let pages = List.sort_uniq compare pages in
      QCheck.assume (List.mem victim pages);
      let t, _ = make () in
      List.iteri
        (fun i page -> ignore (Radix.map t ~iova:(page * Addr.page_size) (pte i)))
        pages;
      ignore (Radix.unmap t ~iova:(victim * Addr.page_size));
      List.for_all
        (fun page ->
          let found = Radix.walk t ~iova:(page * Addr.page_size) <> None in
          if page = victim then not found else found)
        pages)

let () =
  Alcotest.run "rio_pagetable"
    [
      ( "pte",
        [
          Alcotest.test_case "encode/decode" `Quick test_pte_encode_decode;
          Alcotest.test_case "permissions" `Quick test_pte_permits;
        ] );
      ( "radix",
        [
          Alcotest.test_case "create charges exactly one node" `Quick
            test_create_charges_one_node;
          Alcotest.test_case "map/walk round trip" `Quick test_map_walk_roundtrip;
          Alcotest.test_case "double map rejected" `Quick test_double_map_rejected;
          Alcotest.test_case "unmap" `Quick test_unmap;
          Alcotest.test_case "independent iovas" `Quick test_distinct_iovas_independent;
          Alcotest.test_case "interior node sharing" `Quick test_node_sharing;
          Alcotest.test_case "iova range checked" `Quick test_iova_range_checked;
          Alcotest.test_case "non-coherent visibility" `Quick test_noncoherent_visibility;
          QCheck_alcotest.to_alcotest prop_map_walk_consistent;
          QCheck_alcotest.to_alcotest prop_unmap_removes_only_target;
        ] );
      ( "arena",
        [
          Alcotest.test_case "create charges exactly one node" `Quick
            test_arena_create_charges_one_node;
          Alcotest.test_case "node accounting matches reference over churn"
            `Quick test_arena_node_accounting_trail;
          Alcotest.test_case "reset retains the carved store" `Quick
            test_arena_reset_retains_store;
          QCheck_alcotest.to_alcotest prop_arena_matches_radix;
        ] );
      ( "costs",
        [
          Alcotest.test_case "walk = 4 DRAM refs" `Quick test_walk_cost_is_four_dram_refs;
          Alcotest.test_case "map cost in Table 1 band" `Quick test_map_cost_in_table1_band;
        ] );
    ]
