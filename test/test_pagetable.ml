(* Unit and property tests for the 4-level radix page table (rio_pagetable). *)

module Addr = Rio_memory.Addr
module Coherency = Rio_memory.Coherency
module Frame_allocator = Rio_memory.Frame_allocator
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model
module Pte = Rio_pagetable.Pte
module Radix = Rio_pagetable.Radix

let make ?(coherent = false) () =
  let clock = Cycles.create () in
  let cost = Cost_model.default in
  let frames = Frame_allocator.create ~total_frames:100_000 in
  let coherency = Coherency.create ~coherent ~cost ~clock in
  (Radix.create ~frames ~coherency ~clock ~cost, clock)

let pte pfn = Pte.make ~pfn ()

let test_create_charges_one_node () =
  (* The satellite fix: create must allocate exactly the root node - one
     pt_node_alloc charge, one counted node, no throwaway record. *)
  let clock = Cycles.create () in
  let cost = Cost_model.default in
  let frames = Frame_allocator.create ~total_frames:100 in
  let coherency = Coherency.create ~coherent:true ~cost ~clock in
  let before = Cycles.now clock in
  let t = Radix.create ~frames ~coherency ~clock ~cost in
  Alcotest.(check int) "exactly one node allocation charged"
    cost.Cost_model.pt_node_alloc
    (Cycles.since clock before);
  Alcotest.(check int) "exactly one node counted" 1 (Radix.node_count t);
  Alcotest.(check int) "exactly one frame consumed" 1
    (Frame_allocator.allocated frames)

let test_pte_encode_decode () =
  let p = Pte.make ~read:true ~write:false ~pfn:0xabcde () in
  Alcotest.(check bool) "decode inverts encode" true
    (match Pte.decode (Pte.encode p) with Some q -> Pte.equal p q | None -> false);
  Alcotest.(check bool) "non-present decodes to None" true
    (Pte.decode 0xF000L = None)

let test_pte_permits () =
  let ro = Pte.make ~read:true ~write:false ~pfn:1 () in
  Alcotest.(check bool) "read allowed" true (Pte.permits ro ~write:false);
  Alcotest.(check bool) "write denied" false (Pte.permits ro ~write:true)

let test_map_walk_roundtrip () =
  let t, _ = make () in
  let iova = 0x7f_0000_3000 in
  Alcotest.(check bool) "map ok" true (Radix.map t ~iova (pte 42) = Ok ());
  (match Radix.walk t ~iova with
  | Some p -> Alcotest.(check int) "walk finds pfn" 42 p.Pte.pfn
  | None -> Alcotest.fail "walk missed");
  Alcotest.(check int) "mapped count" 1 (Radix.mapped_count t)

let test_double_map_rejected () =
  let t, _ = make () in
  let iova = 0x1000 in
  Alcotest.(check bool) "first" true (Radix.map t ~iova (pte 1) = Ok ());
  Alcotest.(check bool) "second rejected" true
    (Radix.map t ~iova (pte 2) = Error `Already_mapped)

let test_unmap () =
  let t, _ = make () in
  let iova = 0x2000 in
  ignore (Radix.map t ~iova (pte 7));
  (match Radix.unmap t ~iova with
  | Ok p -> Alcotest.(check int) "unmap returns pte" 7 p.Pte.pfn
  | Error `Not_mapped -> Alcotest.fail "was mapped");
  Alcotest.(check bool) "walk faults after unmap" true (Radix.walk t ~iova = None);
  Alcotest.(check bool) "re-unmap errors" true
    (Radix.unmap t ~iova = Error `Not_mapped);
  Alcotest.(check int) "count back to zero" 0 (Radix.mapped_count t)

let test_distinct_iovas_independent () =
  let t, _ = make () in
  (* Same level-4 index under different level-3 tables, etc. *)
  let iovas = [ 0x1000; 0x201000; 0x4000_1000; 0x80_0000_1000 ] in
  List.iteri (fun i iova -> ignore (Radix.map t ~iova (pte (100 + i)))) iovas;
  List.iteri
    (fun i iova ->
      match Radix.walk t ~iova with
      | Some p -> Alcotest.(check int) "right pfn" (100 + i) p.Pte.pfn
      | None -> Alcotest.fail "missing mapping")
    iovas;
  ignore (Radix.unmap t ~iova:0x201000);
  Alcotest.(check bool) "neighbour survives" true (Radix.walk t ~iova:0x1000 <> None)

let test_node_sharing () =
  let t, _ = make () in
  let base_nodes = Radix.node_count t in
  (* Two IOVAs on adjacent pages share all interior tables. *)
  ignore (Radix.map t ~iova:0x1000 (pte 1));
  let after_first = Radix.node_count t in
  ignore (Radix.map t ~iova:0x2000 (pte 2));
  Alcotest.(check int) "adjacent page allocates no new tables" after_first
    (Radix.node_count t);
  Alcotest.(check int) "first map allocated 3 interior tables" 3
    (after_first - base_nodes)

let test_iova_range_checked () =
  let t, _ = make () in
  Alcotest.check_raises "negative" (Invalid_argument "Radix: iova range") (fun () ->
      ignore (Radix.walk t ~iova:(-1)));
  Alcotest.check_raises "too large" (Invalid_argument "Radix: iova range") (fun () ->
      ignore (Radix.walk t ~iova:(1 lsl 48)))

let test_noncoherent_visibility () =
  (* map syncs, so the walker must see mappings; the staleness model is
     exercised by checking dirty-line bookkeeping stays clean after ops. *)
  let clock = Cycles.create () in
  let cost = Cost_model.default in
  let frames = Frame_allocator.create ~total_frames:100_000 in
  let coherency = Coherency.create ~coherent:false ~cost ~clock in
  let t = Radix.create ~frames ~coherency ~clock ~cost in
  ignore (Radix.map t ~iova:0x5000 (pte 9));
  Alcotest.(check int) "map leaves no dirty lines" 0 (Coherency.dirty_lines coherency);
  Alcotest.(check bool) "walker sees synced mapping" true (Radix.walk t ~iova:0x5000 <> None);
  ignore (Radix.unmap t ~iova:0x5000);
  Alcotest.(check int) "unmap leaves no dirty lines" 0
    (Coherency.dirty_lines coherency);
  Alcotest.(check bool) "walker sees unmap" true (Radix.walk t ~iova:0x5000 = None)

let test_walk_cost_is_four_dram_refs () =
  let t, clock = make () in
  ignore (Radix.map t ~iova:0x3000 (pte 3));
  let before = Cycles.now clock in
  ignore (Radix.walk t ~iova:0x3000);
  let cost = Cost_model.default in
  Alcotest.(check int) "walk charges 4 refs"
    (4 * cost.Cost_model.io_walk_ref)
    (Cycles.since clock before)

let test_map_cost_in_table1_band () =
  (* Steady-state insertion (tables preallocated) should land near the
     paper's ~533-590 cycles for the page-table component of map. *)
  let t, clock = make () in
  ignore (Radix.map t ~iova:0x10_0000 (pte 1));
  ignore (Radix.unmap t ~iova:0x10_0000);
  let before = Cycles.now clock in
  ignore (Radix.map t ~iova:0x10_0000 (pte 2));
  let c = Cycles.since clock before in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state map cost %d in [400,700]" c)
    true
    (c >= 400 && c <= 700)

let prop_map_walk_consistent =
  QCheck.Test.make ~name:"walk finds exactly the mapped pfn for any iova set"
    ~count:100
    QCheck.(small_list (int_bound 0xFFFFF))
    (fun pages ->
      let pages = List.sort_uniq compare pages in
      let t, _ = make () in
      List.iteri
        (fun i page -> ignore (Radix.map t ~iova:(page * Addr.page_size) (pte i)))
        pages;
      List.for_all
        (fun page ->
          match Radix.walk t ~iova:(page * Addr.page_size) with
          | Some _ -> true
          | None -> false)
        pages
      && Radix.mapped_count t = List.length pages)

let prop_unmap_removes_only_target =
  QCheck.Test.make ~name:"unmap removes the target and nothing else" ~count:100
    QCheck.(pair (small_list (int_bound 0xFFFF)) (int_bound 0xFFFF))
    (fun (pages, victim) ->
      let pages = List.sort_uniq compare pages in
      QCheck.assume (List.mem victim pages);
      let t, _ = make () in
      List.iteri
        (fun i page -> ignore (Radix.map t ~iova:(page * Addr.page_size) (pte i)))
        pages;
      ignore (Radix.unmap t ~iova:(victim * Addr.page_size));
      List.for_all
        (fun page ->
          let found = Radix.walk t ~iova:(page * Addr.page_size) <> None in
          if page = victim then not found else found)
        pages)

let () =
  Alcotest.run "rio_pagetable"
    [
      ( "pte",
        [
          Alcotest.test_case "encode/decode" `Quick test_pte_encode_decode;
          Alcotest.test_case "permissions" `Quick test_pte_permits;
        ] );
      ( "radix",
        [
          Alcotest.test_case "create charges exactly one node" `Quick
            test_create_charges_one_node;
          Alcotest.test_case "map/walk round trip" `Quick test_map_walk_roundtrip;
          Alcotest.test_case "double map rejected" `Quick test_double_map_rejected;
          Alcotest.test_case "unmap" `Quick test_unmap;
          Alcotest.test_case "independent iovas" `Quick test_distinct_iovas_independent;
          Alcotest.test_case "interior node sharing" `Quick test_node_sharing;
          Alcotest.test_case "iova range checked" `Quick test_iova_range_checked;
          Alcotest.test_case "non-coherent visibility" `Quick test_noncoherent_visibility;
          QCheck_alcotest.to_alcotest prop_map_walk_consistent;
          QCheck_alcotest.to_alcotest prop_unmap_removes_only_target;
        ] );
      ( "costs",
        [
          Alcotest.test_case "walk = 4 DRAM refs" `Quick test_walk_cost_is_four_dram_refs;
          Alcotest.test_case "map cost in Table 1 band" `Quick test_map_cost_in_table1_band;
        ] );
    ]
