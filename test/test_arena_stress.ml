(* Arena grow/shrink churn under the deterministic domain pool.

   Each task builds its own rig (clock, frames, coherency, arena) from a
   task-local seed, runs a long map/unmap/reset churn that repeatedly
   grows the arena store and drains it back to the freelist, and folds
   every observable (op results, walk outcomes, node/mapped counts, the
   cycle meter) into an integer digest. The digests from a sequential
   run and a [--jobs 4] pool run must be identical: the arena holds no
   hidden global state and the pool's ordering guarantee delivers
   results in task order regardless of scheduling. *)

module Addr = Rio_memory.Addr
module Coherency = Rio_memory.Coherency
module Frame_allocator = Rio_memory.Frame_allocator
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model
module Rng = Rio_sim.Rng
module Pte = Rio_pagetable.Pte
module Arena = Rio_pagetable.Arena
module Pool = Rio_exec.Pool

let mix h v = (h * 0x100000001b3) lxor v land max_int

let churn_digest seed =
  let clock = Cycles.create () in
  let cost = Cost_model.default in
  let frames = Frame_allocator.create ~total_frames:200_000 in
  let coherency = Coherency.create ~coherent:(seed land 1 = 0) ~cost ~clock in
  let arena = Arena.create ~frames ~coherency ~clock ~cost in
  let rng = Rng.create ~seed in
  let digest = ref 0x2545F4914F6CDD1D in
  let note v = digest := mix !digest v in
  for round = 1 to 6 do
    (* grow: map a batch spread across interior tables so the store is
       forced to carve fresh nodes at every level *)
    let batch = 200 + Rng.int rng 200 in
    for _ = 1 to batch do
      let page = Rng.int rng 4096 in
      (* place the 9-bit index at a level chosen by the low page bits;
         keeps every iova inside the 48-bit space while exercising the
         carve path of all four levels *)
      let iova = (page lsr 3) lsl (12 + (9 * (page land 3))) in
      let pte = Pte.pack_make ~read:true ~write:(page land 1 = 0) ~pfn:page in
      (match Arena.map arena ~iova ~pte with
      | Ok () -> note 1
      | Error `Already_mapped -> note 2);
      note (Arena.walk arena ~iova)
    done;
    note (Arena.mapped_count arena);
    note (Arena.node_count arena);
    note (Arena.store_nodes arena);
    (* shrink: unmap a random half of the universe, then occasionally
       drain the whole table back onto the freelist *)
    for _ = 1 to batch do
      let page = Rng.int rng 4096 in
      let iova = (page lsr 3) lsl (12 + (9 * (page land 3))) in
      match Arena.unmap arena ~iova with
      | Ok p -> note (Pte.packed_pfn p)
      | Error `Not_mapped -> note 3
    done;
    if round land 1 = 0 then begin
      Arena.reset arena;
      note (Arena.node_count arena)
    end;
    note (Arena.mapped_count arena);
    note (Arena.store_nodes arena);
    note (Cycles.now clock)
  done;
  !digest

let tasks = Array.init 16 (fun i () -> churn_digest (0x5eed + (i * 7919)))

let test_pool_digests_match_sequential () =
  let seq = Pool.run ~jobs:1 tasks in
  let par = Pool.run ~jobs:4 tasks in
  Alcotest.(check (array int)) "jobs:4 digests equal sequential" seq par

let test_repeat_run_is_stable () =
  let a = Pool.run ~jobs:4 tasks in
  let b = Pool.run ~jobs:4 tasks in
  Alcotest.(check (array int)) "re-run reproduces digests" a b

let () =
  Alcotest.run "rio_arena_stress"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel churn digests match sequential" `Quick
            test_pool_digests_match_sequential;
          Alcotest.test_case "repeat runs are stable" `Quick
            test_repeat_run_is_stable;
        ] );
    ]
