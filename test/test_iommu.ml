(* Unit and integration tests for the baseline IOMMU (rio_iommu):
   bdf/context plumbing, the hardware translate path, and the OS driver
   in its four protection modes - including the deferred-mode
   vulnerability window and the page-granularity leakage of Section 4. *)

module Addr = Rio_memory.Addr
module Coherency = Rio_memory.Coherency
module Frame_allocator = Rio_memory.Frame_allocator
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model
module Breakdown = Rio_sim.Breakdown
module Pte = Rio_pagetable.Pte
module Arena = Rio_pagetable.Arena
module Iotlb = Rio_iotlb.Iotlb
module Allocator = Rio_iova.Allocator
module Bdf = Rio_iommu.Bdf
module Context = Rio_iommu.Context
module Hw = Rio_iommu.Hw
module Driver = Rio_iommu.Driver

let test_bdf_roundtrip () =
  let b = Bdf.make ~bus:0x3a ~device:17 ~func:5 in
  Alcotest.(check bool) "rid round trip" true (Bdf.equal b (Bdf.of_rid (Bdf.to_rid b)));
  Alcotest.(check string) "pp" "3a:11.5" (Format.asprintf "%a" Bdf.pp b)

let test_bdf_bounds () =
  Alcotest.check_raises "bus" (Invalid_argument "Bdf.make: bus") (fun () ->
      ignore (Bdf.make ~bus:256 ~device:0 ~func:0));
  Alcotest.check_raises "device" (Invalid_argument "Bdf.make: device") (fun () ->
      ignore (Bdf.make ~bus:0 ~device:32 ~func:0));
  Alcotest.check_raises "func" (Invalid_argument "Bdf.make: func") (fun () ->
      ignore (Bdf.make ~bus:0 ~device:0 ~func:8))

type rig = {
  clock : Cycles.t;
  frames : Frame_allocator.t;
  hw : Hw.t;
  driver : Driver.t;
  rid : int;
}

let make_rig ?(alloc_kind = Allocator.Linux) ?(policy = Driver.Immediate)
    ?(iotlb_capacity = 64) () =
  let clock = Cycles.create () in
  let cost = Cost_model.default in
  let frames = Frame_allocator.create ~total_frames:200_000 in
  let coherency = Coherency.create ~coherent:false ~cost ~clock in
  let table = Arena.create ~frames ~coherency ~clock ~cost in
  let domain = Context.Domain.make ~id:1 ~table in
  let context = Context.create () in
  let bdf = Bdf.make ~bus:3 ~device:0 ~func:0 in
  Context.attach context bdf domain;
  let iotlb = Iotlb.create ~capacity:iotlb_capacity ~clock ~cost () in
  let hw = Hw.create ~context ~iotlb ~clock ~cost in
  let allocator = Allocator.create ~kind:alloc_kind ~limit_pfn:0xFFFFF ~clock ~cost in
  let rid = Bdf.to_rid bdf in
  let driver = Driver.create ~domain ~allocator ~iotlb ~rid ~policy ~clock ~cost () in
  { clock; frames; hw; driver; rid }

let phys_check = Alcotest.testable Addr.pp Addr.equal

let test_map_translate_unmap () =
  let r = make_rig () in
  let buf = Frame_allocator.alloc_exn r.frames in
  let iova =
    Result.get_ok (Driver.map r.driver ~phys:buf ~bytes:1500 ~read:true ~write:true)
  in
  (match Hw.translate r.hw ~rid:r.rid ~iova ~write:true with
  | Ok p -> Alcotest.check phys_check "translates to buffer" buf p
  | Error f -> Alcotest.failf "unexpected fault: %a" Hw.pp_fault f);
  (* offsets within the buffer follow the page offset *)
  (match Hw.translate r.hw ~rid:r.rid ~iova:(iova + 100) ~write:true with
  | Ok p -> Alcotest.check phys_check "offset preserved" (Addr.add buf 100) p
  | Error f -> Alcotest.failf "unexpected fault: %a" Hw.pp_fault f);
  Alcotest.(check bool) "unmap ok" true (Driver.unmap r.driver ~iova = Ok ());
  (match Hw.translate r.hw ~rid:r.rid ~iova ~write:true with
  | Error Hw.No_translation -> ()
  | Ok _ -> Alcotest.fail "strict mode must fault after unmap"
  | Error f -> Alcotest.failf "wrong fault: %a" Hw.pp_fault f)

let test_unaligned_buffer_keeps_offset () =
  let r = make_rig () in
  let frame = Frame_allocator.alloc_exn r.frames in
  let buf = Addr.add frame 0x123 in
  let iova =
    Result.get_ok (Driver.map r.driver ~phys:buf ~bytes:64 ~read:true ~write:false)
  in
  Alcotest.(check int) "iova keeps page offset" 0x123 (iova land (Addr.page_size - 1));
  match Hw.translate r.hw ~rid:r.rid ~iova ~write:false with
  | Ok p -> Alcotest.check phys_check "maps to unaligned base" buf p
  | Error f -> Alcotest.failf "unexpected fault: %a" Hw.pp_fault f

let test_multi_page_map () =
  let r = make_rig () in
  let buf = Option.get (Rio_memory.Dma_buffer.alloc r.frames ~size:9000) in
  let iova =
    Result.get_ok
      (Driver.map r.driver ~phys:buf.Rio_memory.Dma_buffer.base ~bytes:9000
         ~read:true ~write:true)
  in
  (* last byte of the third page translates correctly *)
  (match Hw.translate r.hw ~rid:r.rid ~iova:(iova + 8999) ~write:true with
  | Ok p ->
      Alcotest.check phys_check "third page"
        (Addr.add buf.Rio_memory.Dma_buffer.base 8999)
        p
  | Error f -> Alcotest.failf "unexpected fault: %a" Hw.pp_fault f);
  Alcotest.(check bool) "unmap whole range" true (Driver.unmap r.driver ~iova = Ok ());
  Alcotest.(check bool) "all pages gone" true
    (Hw.translate r.hw ~rid:r.rid ~iova:(iova + 8192) ~write:true
    = Error Hw.No_translation)

let test_direction_enforcement () =
  let r = make_rig () in
  let buf = Frame_allocator.alloc_exn r.frames in
  let iova =
    Result.get_ok (Driver.map r.driver ~phys:buf ~bytes:512 ~read:true ~write:false)
  in
  Alcotest.(check bool) "read allowed" true
    (Result.is_ok (Hw.translate r.hw ~rid:r.rid ~iova ~write:false));
  Alcotest.(check bool) "write denied" true
    (Hw.translate r.hw ~rid:r.rid ~iova ~write:true = Error Hw.Not_permitted)

let test_unknown_device_faults () =
  let r = make_rig () in
  Alcotest.(check bool) "unknown rid" true
    (Hw.translate r.hw ~rid:0xBEEF ~iova:0x1000 ~write:false
    = Error Hw.Unknown_device);
  Alcotest.(check int) "fault counted" 1 (Hw.faults r.hw)

let test_iotlb_caching_on_translate () =
  let r = make_rig () in
  let buf = Frame_allocator.alloc_exn r.frames in
  let iova =
    Result.get_ok (Driver.map r.driver ~phys:buf ~bytes:100 ~read:true ~write:true)
  in
  let walk_cost = 4 * Cost_model.default.Cost_model.io_walk_ref in
  let _, first = Cycles.measure r.clock (fun () ->
      ignore (Hw.translate r.hw ~rid:r.rid ~iova ~write:true))
  in
  let _, second = Cycles.measure r.clock (fun () ->
      ignore (Hw.translate r.hw ~rid:r.rid ~iova ~write:true))
  in
  Alcotest.(check bool) "first translate pays the walk" true (first >= walk_cost);
  Alcotest.(check bool) "second is an IOTLB hit" true (second < walk_cost / 4)

let test_strict_unmap_charges_invalidation () =
  let r = make_rig () in
  let buf = Frame_allocator.alloc_exn r.frames in
  let iova =
    Result.get_ok (Driver.map r.driver ~phys:buf ~bytes:100 ~read:true ~write:true)
  in
  let _, cost = Cycles.measure r.clock (fun () ->
      ignore (Driver.unmap r.driver ~iova))
  in
  Alcotest.(check bool)
    (Printf.sprintf "strict unmap cost %d includes ~2100-cycle invalidation" cost)
    true
    (cost >= Cost_model.default.Cost_model.iotlb_invalidate)

(* The deferred-mode vulnerability window (§3.2): after unmap, the device
   can still reach the buffer through the stale IOTLB entry until 250
   unmaps accumulate and the whole IOTLB is flushed. *)
let test_deferred_vulnerability_window () =
  let r = make_rig ~policy:(Driver.Deferred { batch = 250 }) () in
  let buf = Frame_allocator.alloc_exn r.frames in
  let iova =
    Result.get_ok (Driver.map r.driver ~phys:buf ~bytes:100 ~read:true ~write:true)
  in
  (* device touches the buffer: IOTLB now caches the translation *)
  Alcotest.(check bool) "initial access ok" true
    (Result.is_ok (Hw.translate r.hw ~rid:r.rid ~iova ~write:true));
  Alcotest.(check bool) "unmap ok" true (Driver.unmap r.driver ~iova = Ok ());
  Alcotest.(check int) "invalidation pending" 1 (Driver.pending r.driver);
  (match Hw.translate r.hw ~rid:r.rid ~iova ~write:true with
  | Ok p -> Alcotest.check phys_check "STALE ACCESS SUCCEEDS (the window)" buf p
  | Error f -> Alcotest.failf "window should be open: %a" Hw.pp_fault f);
  (* 249 more unmaps trigger the batched flush *)
  for _ = 1 to 249 do
    let b = Frame_allocator.alloc_exn r.frames in
    let i = Result.get_ok (Driver.map r.driver ~phys:b ~bytes:64 ~read:true ~write:true) in
    Alcotest.(check bool) "churn unmap" true (Driver.unmap r.driver ~iova:i = Ok ())
  done;
  Alcotest.(check int) "queue drained" 0 (Driver.pending r.driver);
  Alcotest.(check bool) "window closed after flush" true
    (Hw.translate r.hw ~rid:r.rid ~iova ~write:true = Error Hw.No_translation)

let test_deferred_defers_iova_reuse () =
  (* The freed IOVA must not be handed out again while the stale IOTLB
     entry could still redirect the device into the new owner's memory. *)
  let r = make_rig ~policy:(Driver.Deferred { batch = 250 }) () in
  let buf = Frame_allocator.alloc_exn r.frames in
  let iova =
    Result.get_ok (Driver.map r.driver ~phys:buf ~bytes:100 ~read:true ~write:true)
  in
  Alcotest.(check bool) "unmap" true (Driver.unmap r.driver ~iova = Ok ());
  let buf2 = Frame_allocator.alloc_exn r.frames in
  let iova2 =
    Result.get_ok (Driver.map r.driver ~phys:buf2 ~bytes:100 ~read:true ~write:true)
  in
  Alcotest.(check bool) "different IOVA while flush pending" true
    (iova2 lsr Addr.page_shift <> iova lsr Addr.page_shift)

let test_explicit_flush () =
  let r = make_rig ~policy:(Driver.Deferred { batch = 250 }) () in
  let buf = Frame_allocator.alloc_exn r.frames in
  let iova =
    Result.get_ok (Driver.map r.driver ~phys:buf ~bytes:100 ~read:true ~write:true)
  in
  ignore (Hw.translate r.hw ~rid:r.rid ~iova ~write:true);
  ignore (Driver.unmap r.driver ~iova);
  Driver.flush r.driver;
  Alcotest.(check int) "queue empty" 0 (Driver.pending r.driver);
  Alcotest.(check bool) "window closed" true
    (Hw.translate r.hw ~rid:r.rid ~iova ~write:true = Error Hw.No_translation)

(* Section 4: page-granularity protection leaks between buffers sharing a
   page. Buffer A is unmapped, but because buffer B still maps the same
   physical page, the device can reach A's bytes through B's IOVA page. *)
let test_same_page_leakage () =
  let r = make_rig () in
  let bufs =
    Option.get
      (Rio_memory.Dma_buffer.alloc_sub_page r.frames ~offsets:[ 0; 2048 ] ~size:1500)
  in
  match bufs with
  | [ a; b ] ->
      let iova_a =
        Result.get_ok
          (Driver.map r.driver ~phys:a.Rio_memory.Dma_buffer.base ~bytes:1500
             ~read:true ~write:true)
      in
      let _iova_b =
        Result.get_ok
          (Driver.map r.driver ~phys:b.Rio_memory.Dma_buffer.base ~bytes:1500
             ~read:true ~write:true)
      in
      Alcotest.(check bool) "A unmapped" true (Driver.unmap r.driver ~iova:iova_a = Ok ());
      (* A's own IOVA faults... *)
      Alcotest.(check bool) "A's iova faults" true
        (Hw.translate r.hw ~rid:r.rid ~iova:iova_a ~write:true
        = Error Hw.No_translation);
      (* ...but B's IOVA page still maps the whole frame, so the device
         reaches A's first byte at B's page + A's page offset (0). *)
      let b_page = _iova_b land lnot (Addr.page_size - 1) in
      (match Hw.translate r.hw ~rid:r.rid ~iova:b_page ~write:true with
      | Ok p ->
          Alcotest.check phys_check "leaks into A's bytes"
            a.Rio_memory.Dma_buffer.base p
      | Error f -> Alcotest.failf "expected page-granular leak: %a" Hw.pp_fault f)
  | _ -> Alcotest.fail "expected two buffers"

let test_breakdown_components_populated () =
  let r = make_rig () in
  for _ = 1 to 10 do
    let buf = Frame_allocator.alloc_exn r.frames in
    let iova =
      Result.get_ok (Driver.map r.driver ~phys:buf ~bytes:100 ~read:true ~write:true)
    in
    ignore (Driver.unmap r.driver ~iova)
  done;
  let bm = Driver.map_breakdown r.driver and bu = Driver.unmap_breakdown r.driver in
  Alcotest.(check int) "10 maps" 10 (Breakdown.calls bm);
  Alcotest.(check int) "10 unmaps" 10 (Breakdown.calls bu);
  Alcotest.(check bool) "alloc attributed" true
    (Breakdown.mean_cycles bm Breakdown.Iova_alloc > 0.);
  Alcotest.(check bool) "map page table ~500-600 cycles" true
    (let c = Breakdown.mean_cycles bm Breakdown.Page_table in
     c > 300. && c < 800.);
  Alcotest.(check bool) "unmap invalidation ~2100" true
    (let c = Breakdown.mean_cycles bu Breakdown.Iotlb_inv in
     c >= 2000. && c <= 2300.);
  Alcotest.(check bool) "find attributed" true
    (Breakdown.mean_cycles bu Breakdown.Iova_find > 0.)

let test_exhaustion_error () =
  let clock = Cycles.create () in
  let cost = Cost_model.default in
  let frames = Frame_allocator.create ~total_frames:100_000 in
  let coherency = Coherency.create ~coherent:false ~cost ~clock in
  let table = Arena.create ~frames ~coherency ~clock ~cost in
  let domain = Context.Domain.make ~id:1 ~table in
  let context = Context.create () in
  let bdf = Bdf.make ~bus:0 ~device:1 ~func:0 in
  Context.attach context bdf domain;
  let iotlb = Iotlb.create ~capacity:16 ~clock ~cost () in
  (* tiny IOVA space: 4 pages *)
  let allocator = Allocator.create ~kind:Allocator.Linux ~limit_pfn:3 ~clock ~cost in
  let driver =
    Driver.create ~domain ~allocator ~iotlb ~rid:(Bdf.to_rid bdf)
      ~policy:Driver.Immediate ~clock ~cost ()
  in
  let buf = Frame_allocator.alloc_exn frames in
  for _ = 1 to 4 do
    Alcotest.(check bool) "fits" true
      (Result.is_ok (Driver.map driver ~phys:buf ~bytes:10 ~read:true ~write:true))
  done;
  Alcotest.(check bool) "exhausted" true
    (Driver.map driver ~phys:buf ~bytes:10 ~read:true ~write:true = Error `Exhausted)

let test_unmap_unknown_iova () =
  let r = make_rig () in
  Alcotest.(check bool) "unmapped iova rejected" true
    (Driver.unmap r.driver ~iova:0x5000 = Error `Not_mapped)

let prop_map_unmap_balanced =
  QCheck.Test.make ~name:"live mappings = maps - unmaps under random churn"
    ~count:50
    QCheck.(list (int_bound 4))
    (fun ops ->
      let r = make_rig () in
      let live = ref [] in
      let expected = ref 0 in
      List.iter
        (fun op ->
          if op < 3 then begin
            let buf = Frame_allocator.alloc_exn r.frames in
            match Driver.map r.driver ~phys:buf ~bytes:((op + 1) * 1000)
                    ~read:true ~write:true
            with
            | Ok iova ->
                live := iova :: !live;
                expected := !expected + op + 1
            | Error `Exhausted -> ()
          end
          else begin
            match !live with
            | [] -> ()
            | iova :: rest ->
                ignore (Driver.unmap r.driver ~iova);
                live := rest
          end)
        ops;
      (* check via hardware: every live iova translates, count matches *)
      List.for_all
        (fun iova -> Result.is_ok (Hw.translate r.hw ~rid:r.rid ~iova ~write:true))
        !live)

let () =
  Alcotest.run "rio_iommu"
    [
      ( "bdf",
        [
          Alcotest.test_case "round trip" `Quick test_bdf_roundtrip;
          Alcotest.test_case "bounds" `Quick test_bdf_bounds;
        ] );
      ( "translate",
        [
          Alcotest.test_case "map/translate/unmap" `Quick test_map_translate_unmap;
          Alcotest.test_case "unaligned buffers" `Quick test_unaligned_buffer_keeps_offset;
          Alcotest.test_case "multi-page buffers" `Quick test_multi_page_map;
          Alcotest.test_case "direction enforcement" `Quick test_direction_enforcement;
          Alcotest.test_case "unknown device" `Quick test_unknown_device_faults;
          Alcotest.test_case "IOTLB caching" `Quick test_iotlb_caching_on_translate;
        ] );
      ( "driver_modes",
        [
          Alcotest.test_case "strict unmap pays invalidation" `Quick
            test_strict_unmap_charges_invalidation;
          Alcotest.test_case "deferred vulnerability window" `Quick
            test_deferred_vulnerability_window;
          Alcotest.test_case "deferred defers IOVA reuse" `Quick
            test_deferred_defers_iova_reuse;
          Alcotest.test_case "explicit flush" `Quick test_explicit_flush;
          Alcotest.test_case "same-page leakage (Section 4)" `Quick
            test_same_page_leakage;
          Alcotest.test_case "breakdown components" `Quick
            test_breakdown_components_populated;
          Alcotest.test_case "IOVA exhaustion" `Quick test_exhaustion_error;
          Alcotest.test_case "unmap unknown iova" `Quick test_unmap_unknown_iova;
          QCheck_alcotest.to_alcotest prop_map_unmap_balanced;
        ] );
    ]
