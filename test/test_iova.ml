(* Unit and property tests for IOVA allocation (rio_iova): the red-black
   interval tree, the baseline Linux allocator (with its linear-scan
   pathology), and the constant-time allocator. *)

module Rbtree = Rio_iova.Rbtree
module Linux_allocator = Rio_iova.Linux_allocator
module Fast_allocator = Rio_iova.Fast_allocator
module Allocator = Rio_iova.Allocator
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

let check_tree t label =
  match Rbtree.check_invariants t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: rbtree invariant broken: %s" label msg

(* {1 Rbtree} *)

let test_rbtree_insert_find () =
  let t = Rbtree.create () in
  let _ = Rbtree.insert t ~lo:10 ~hi:19 in
  let _ = Rbtree.insert t ~lo:30 ~hi:39 in
  let _ = Rbtree.insert t ~lo:0 ~hi:4 in
  check_tree t "after inserts";
  Alcotest.(check int) "size" 3 (Rbtree.size t);
  (match Rbtree.find_containing t 15 with
  | Some n -> Alcotest.(check (pair int int)) "found" (10, 19) (Rbtree.lo n, Rbtree.hi n)
  | None -> Alcotest.fail "15 should be found");
  Alcotest.(check bool) "gap misses" true (Rbtree.find_containing t 25 = None)

let test_rbtree_overlap_rejected () =
  let t = Rbtree.create () in
  let _ = Rbtree.insert t ~lo:10 ~hi:20 in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Rbtree.insert: overlapping interval") (fun () ->
      ignore (Rbtree.insert t ~lo:20 ~hi:25))

let test_rbtree_delete () =
  let t = Rbtree.create () in
  let nodes = List.map (fun i -> Rbtree.insert t ~lo:(i * 10) ~hi:((i * 10) + 5))
      [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  List.iteri
    (fun i n ->
      if i mod 2 = 0 then begin
        Rbtree.delete t n;
        check_tree t (Printf.sprintf "after delete %d" i)
      end)
    nodes;
  Alcotest.(check int) "half deleted" 4 (Rbtree.size t);
  Alcotest.(check bool) "deleted gone" true (Rbtree.find_containing t 0 = None);
  Alcotest.(check bool) "kept present" true (Rbtree.find_containing t 10 <> None)

let test_rbtree_double_delete_detected () =
  let t = Rbtree.create () in
  let n = Rbtree.insert t ~lo:1 ~hi:2 in
  Rbtree.delete t n;
  Alcotest.check_raises "double delete"
    (Invalid_argument "Rbtree.delete: node already deleted") (fun () ->
      Rbtree.delete t n)

let test_rbtree_neighbours () =
  let t = Rbtree.create () in
  let a = Rbtree.insert t ~lo:0 ~hi:9 in
  let b = Rbtree.insert t ~lo:20 ~hi:29 in
  let c = Rbtree.insert t ~lo:40 ~hi:49 in
  Alcotest.(check bool) "prev of b is a" true
    (match Rbtree.prev t b with Some n -> n == a | None -> false);
  Alcotest.(check bool) "next of b is c" true
    (match Rbtree.next t b with Some n -> n == c | None -> false);
  Alcotest.(check bool) "prev of min is None" true (Rbtree.prev t a = None);
  Alcotest.(check bool) "next of max is None" true (Rbtree.next t c = None);
  Alcotest.(check bool) "max node" true
    (match Rbtree.max_node t with Some n -> n == c | None -> false);
  Alcotest.(check bool) "min node" true
    (match Rbtree.min_node t with Some n -> n == a | None -> false)

let test_rbtree_inorder_iteration () =
  let t = Rbtree.create () in
  List.iter (fun lo -> ignore (Rbtree.insert t ~lo ~hi:lo))
    [ 50; 10; 90; 30; 70; 20; 80 ];
  let seen = ref [] in
  Rbtree.iter t (fun n -> seen := Rbtree.lo n :: !seen);
  Alcotest.(check (list int)) "sorted order" [ 10; 20; 30; 50; 70; 80; 90 ]
    (List.rev !seen)

let prop_rbtree_random_ops =
  QCheck.Test.make ~name:"rbtree invariants hold under random insert/delete"
    ~count:150
    QCheck.(list (pair bool (int_bound 500)))
    (fun ops ->
      let t = Rbtree.create () in
      let live = ref [] in
      List.iter
        (fun (is_insert, x) ->
          if is_insert then begin
            (* non-overlapping by construction: intervals [10x, 10x+5] *)
            if not (List.mem_assoc x !live) then begin
              let n = Rbtree.insert t ~lo:(x * 10) ~hi:((x * 10) + 5) in
              live := (x, n) :: !live
            end
          end
          else begin
            match !live with
            | [] -> ()
            | (k, n) :: rest ->
                ignore k;
                Rbtree.delete t n;
                live := rest
          end)
        ops;
      match Rbtree.check_invariants t with Ok () -> true | Error _ -> false)

let prop_rbtree_find_matches_reference =
  QCheck.Test.make ~name:"find_containing agrees with a reference list" ~count:100
    QCheck.(pair (small_list (int_bound 200)) (int_bound 2200))
    (fun (xs, probe) ->
      let xs = List.sort_uniq compare xs in
      let t = Rbtree.create () in
      List.iter (fun x -> ignore (Rbtree.insert t ~lo:(x * 10) ~hi:((x * 10) + 4))) xs;
      let reference =
        List.exists (fun x -> probe >= x * 10 && probe <= (x * 10) + 4) xs
      in
      (Rbtree.find_containing t probe <> None) = reference)

(* {1 Linux allocator} *)

let make_linux () =
  let clock = Cycles.create () in
  (Linux_allocator.create ~limit_pfn:0xFFFFF ~clock ~cost:Cost_model.default, clock)

let test_linux_alloc_top_down () =
  let a, _ = make_linux () in
  let p1 = Result.get_ok (Linux_allocator.alloc a ~size:1) in
  let p2 = Result.get_ok (Linux_allocator.alloc a ~size:1) in
  Alcotest.(check int) "first from the top" 0xFFFFF p1;
  Alcotest.(check int) "next below" 0xFFFFE p2

let test_linux_find_free () =
  let a, _ = make_linux () in
  let p = Result.get_ok (Linux_allocator.alloc a ~size:4) in
  (match Linux_allocator.find a ~pfn:(p + 2) with
  | Some n ->
      Alcotest.(check int) "range lo" p (Rbtree.lo n);
      Linux_allocator.free a n
  | None -> Alcotest.fail "allocated range must be findable");
  Alcotest.(check bool) "gone after free" true (Linux_allocator.find a ~pfn:p = None);
  Alcotest.(check int) "live 0" 0 (Linux_allocator.live a)

let test_linux_reuses_freed_space () =
  let a, _ = make_linux () in
  let p1 = Result.get_ok (Linux_allocator.alloc a ~size:1) in
  let n = Option.get (Linux_allocator.find a ~pfn:p1) in
  Linux_allocator.free a n;
  let p2 = Result.get_ok (Linux_allocator.alloc a ~size:1) in
  Alcotest.(check int) "freed top reused" p1 p2

let test_linux_exhaustion () =
  let clock = Cycles.create () in
  let a = Linux_allocator.create ~limit_pfn:3 ~clock ~cost:Cost_model.default in
  for _ = 0 to 3 do
    Alcotest.(check bool) "fits" true (Result.is_ok (Linux_allocator.alloc a ~size:1))
  done;
  Alcotest.(check bool) "exhausted" true (Linux_allocator.alloc a ~size:1 = Error `Exhausted)

(* Drive the allocator the way a NIC under netperf does: an Rx flow of
   one-page header buffers and a Tx flow of multi-page data buffers whose
   sizes vary (scatter-gather fragments of a 16KB message are unequal),
   with Rx and Tx completions interleaved in nondeterministic arrival
   order. Freed holes then frequently mismatch the next request's size
   and the cached-node optimization keeps restarting the downward scan
   above the packed live population: average allocation cost grows over
   time toward being linear in the live population - the "long-term"
   pathology behind Table 1's ~3,986-cycle strict-mode allocations.
   Returns per-window (avg scan length, avg alloc cycles). *)
let ring_churn_mixed a clock ~packets ~rounds ~windows =
  let rng = Rio_sim.Rng.create ~seed:9 in
  let next_d_size () = Rio_sim.Rng.int_in rng 2 5 in
  let h_fifo = Queue.create () and d_fifo = Queue.create () in
  let alloc_h () = Queue.add (Result.get_ok (Linux_allocator.alloc a ~size:1)) h_fifo in
  let alloc_d () =
    Queue.add (Result.get_ok (Linux_allocator.alloc a ~size:(next_d_size ()))) d_fifo
  in
  for _ = 1 to packets do
    alloc_h ();
    alloc_d ()
  done;
  let free_pfn pfn = Linux_allocator.free a (Option.get (Linux_allocator.find a ~pfn)) in
  let results = ref [] in
  let scans = ref 0 and cycles = ref 0 and count = ref 0 in
  let per_window = rounds / windows in
  for round = 1 to rounds do
    (* one interrupt: 16 Rx + 16 Tx completions in shuffled arrival order *)
    let events = Array.init 32 (fun i -> i < 16) in
    Rio_sim.Rng.shuffle rng events;
    Array.iter
      (fun is_rx ->
        let fifo = if is_rx then h_fifo else d_fifo in
        free_pfn (Queue.pop fifo);
        let t0 = Cycles.now clock in
        if is_rx then alloc_h () else alloc_d ();
        cycles := !cycles + Cycles.since clock t0;
        scans := !scans + Linux_allocator.last_scan_length a;
        incr count)
      events;
    if round mod per_window = 0 then begin
      results :=
        ( float_of_int !scans /. float_of_int !count,
          float_of_int !cycles /. float_of_int !count )
        :: !results;
      scans := 0;
      cycles := 0;
      count := 0
    end
  done;
  List.rev !results

let test_linux_mixed_size_pathology () =
  let a, clock = make_linux () in
  let windows = ring_churn_mixed a clock ~packets:128 ~rounds:600 ~windows:3 in
  match windows with
  | [ (s1, _); (_, _); (s3, c3) ] ->
      Alcotest.(check bool)
        (Printf.sprintf "scan grows over time (%.1f -> %.1f)" s1 s3)
        true (s3 > s1 *. 1.5);
      Alcotest.(check bool)
        (Printf.sprintf "late-window alloc cost %.0f cycles is pathological" c3)
        true (c3 > 700.)
  | _ -> Alcotest.fail "expected three windows"

let test_linux_uniform_fifo_stays_cheap () =
  (* With a single allocation size, freed top gaps fit the next request
     and the cached-node optimization keeps scans constant: the pathology
     is specific to mixed sizes (header vs data buffers). *)
  let a, _ = make_linux () in
  let fifo = Queue.create () in
  for _ = 1 to 128 do
    Queue.add (Result.get_ok (Linux_allocator.alloc a ~size:1)) fifo
  done;
  let scans = ref 0 in
  let rounds = 64 in
  for _ = 1 to rounds do
    let node = Option.get (Linux_allocator.find a ~pfn:(Queue.pop fifo)) in
    Linux_allocator.free a node;
    Queue.add (Result.get_ok (Linux_allocator.alloc a ~size:1)) fifo;
    scans := !scans + Linux_allocator.last_scan_length a
  done;
  Alcotest.(check bool)
    (Printf.sprintf "uniform-size scans (%d total) stay constant" !scans)
    true
    (!scans <= 4 * rounds)

let test_linux_alloc_charges_cycles () =
  let a, clock = make_linux () in
  let before = Cycles.now clock in
  ignore (Linux_allocator.alloc a ~size:1);
  Alcotest.(check bool) "alloc costs cycles" true (Cycles.since clock before > 0)

(* {1 Fast allocator} *)

let make_fast () =
  let clock = Cycles.create () in
  (Fast_allocator.create ~limit_pfn:0xFFFFF ~clock ~cost:Cost_model.default, clock)

let test_fast_recycles_parked () =
  let a, _ = make_fast () in
  let p1 = Result.get_ok (Fast_allocator.alloc a ~size:1) in
  let n = Option.get (Fast_allocator.find a ~pfn:p1) in
  Fast_allocator.free a n;
  Alcotest.(check int) "parked" 1 (Fast_allocator.parked a);
  let p2 = Result.get_ok (Fast_allocator.alloc a ~size:1) in
  Alcotest.(check int) "same range recycled" p1 p2;
  Alcotest.(check int) "nothing parked" 0 (Fast_allocator.parked a);
  Alcotest.(check int) "tree keeps one node" 1 (Fast_allocator.tree_size a)

let test_fast_parked_not_findable () =
  let a, _ = make_fast () in
  let p = Result.get_ok (Fast_allocator.alloc a ~size:1) in
  let n = Option.get (Fast_allocator.find a ~pfn:p) in
  Fast_allocator.free a n;
  Alcotest.(check bool) "parked range is not live" true
    (Fast_allocator.find a ~pfn:p = None)

let test_fast_size_classes () =
  let a, _ = make_fast () in
  let p1 = Result.get_ok (Fast_allocator.alloc a ~size:1) in
  let p2 = Result.get_ok (Fast_allocator.alloc a ~size:4) in
  let n1 = Option.get (Fast_allocator.find a ~pfn:p1) in
  Fast_allocator.free a n1;
  (* a size-4 request must not steal the parked size-1 range *)
  let p3 = Result.get_ok (Fast_allocator.alloc a ~size:4) in
  Alcotest.(check bool) "size classes separate" true (p3 <> p1 && p3 <> p2);
  let p4 = Result.get_ok (Fast_allocator.alloc a ~size:1) in
  Alcotest.(check int) "size-1 recycled" p1 p4

let test_fast_constant_time_steady_state () =
  (* Ring-style usage under the fast allocator: allocation cost must be
     flat regardless of the live population. *)
  let a, clock = make_fast () in
  let fifo = Queue.create () in
  for _ = 1 to 256 do
    Queue.add (Result.get_ok (Fast_allocator.alloc a ~size:1)) fifo
  done;
  (* warm: park + recycle once *)
  let oldest = Queue.pop fifo in
  Fast_allocator.free a (Option.get (Fast_allocator.find a ~pfn:oldest));
  Queue.add (Result.get_ok (Fast_allocator.alloc a ~size:1)) fifo;
  let costs = ref [] in
  for _ = 1 to 32 do
    let oldest = Queue.pop fifo in
    Fast_allocator.free a (Option.get (Fast_allocator.find a ~pfn:oldest));
    let before = Cycles.now clock in
    Queue.add (Result.get_ok (Fast_allocator.alloc a ~size:1)) fifo;
    costs := Cycles.since clock before :: !costs
  done;
  let max_cost = List.fold_left max 0 !costs in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state alloc cost %d stays near Table 1's ~92" max_cost)
    true
    (max_cost <= 150)

let test_fast_double_free_detected () =
  let a, _ = make_fast () in
  let p = Result.get_ok (Fast_allocator.alloc a ~size:1) in
  let n = Option.get (Fast_allocator.find a ~pfn:p) in
  Fast_allocator.free a n;
  Alcotest.check_raises "double free"
    (Invalid_argument "Fast_allocator.free: range already parked") (fun () ->
      Fast_allocator.free a n)

(* {1 Cross-allocator properties} *)

let allocator_spec kind =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s allocator: ranges unique and disjoint under churn"
         (match kind with Allocator.Linux -> "linux" | Allocator.Fast -> "fast"))
    ~count:60
    QCheck.(list (option (int_bound 3)))
    (fun ops ->
      let clock = Cycles.create () in
      let a = Allocator.create ~kind ~limit_pfn:0xFFFF ~clock ~cost:Cost_model.default in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some size_sel ->
              let size = size_sel + 1 in
              (match Allocator.alloc a ~size with
              | Ok pfn ->
                  (* no overlap with current live set *)
                  List.iter
                    (fun (p, s) ->
                      if pfn < p + s && p < pfn + size then ok := false)
                    !live;
                  live := (pfn, size) :: !live
              | Error `Exhausted -> ())
          | None -> (
              match !live with
              | [] -> ()
              | (p, _) :: rest -> (
                  match Allocator.find a ~pfn:p with
                  | Some node ->
                      Allocator.free a node;
                      live := rest
                  | None -> ok := false)))
        ops;
      !ok && Allocator.live a = List.length !live)

let test_table1_alloc_cost_bands () =
  (* The headline Table 1 claim: under realistic two-ring mixed-size churn
     at the paper's live population (~1-2K IOVAs), baseline allocation
     settles in the thousands of cycles while the fast allocator stays
     near a hundred. *)
  let clock = Cycles.create () in
  let lx = Linux_allocator.create ~limit_pfn:0xFFFFF ~clock ~cost:Cost_model.default in
  let windows = ring_churn_mixed lx clock ~packets:512 ~rounds:2000 ~windows:4 in
  let _, late = List.nth windows 3 in
  Alcotest.(check bool)
    (Printf.sprintf "linux churn alloc settles at %.0f cycles (thousands)" late)
    true
    (late > 1500. && late < 12_000.)

(* {1 Magazine cache} *)

module Magazine = Rio_iova.Magazine

let make_magazine ?magazine_size ?depot_max ?max_cached_size
    ?(kind = Allocator.Linux) () =
  let clock = Cycles.create () in
  let base = Allocator.create ~kind ~limit_pfn:0xFFFF ~clock ~cost:Cost_model.default in
  ( Magazine.create ?magazine_size ?depot_max ?max_cached_size ~base ~clock
      ~cost:Cost_model.default (),
    base )

let test_magazine_hit_miss_cycle () =
  let m, base = make_magazine () in
  let pfn = Result.get_ok (Magazine.alloc m ~size:1) in
  Alcotest.(check int) "cold alloc is a miss" 1 (Magazine.stats m).Magazine.misses;
  let node = Option.get (Magazine.find m ~pfn) in
  Magazine.free m node;
  Alcotest.(check bool) "parked range hidden from find" true
    (Magazine.find m ~pfn = None);
  Alcotest.(check int) "parked range is not live" 0 (Magazine.live m);
  Alcotest.(check bool) "but its address space stays reserved in the base" true
    (Allocator.find base ~pfn <> None);
  let pfn2 = Result.get_ok (Magazine.alloc m ~size:1) in
  Alcotest.(check int) "recycled the parked range" pfn pfn2;
  Alcotest.(check int) "served from the magazine" 1
    (Magazine.stats m).Magazine.hits;
  Alcotest.(check bool) "findable again once handed out" true
    (Magazine.find m ~pfn <> None);
  Alcotest.(check int) "live again" 1 (Magazine.live m)

let test_magazine_depot_exchange () =
  let m, _ = make_magazine ~magazine_size:2 ~depot_max:2 () in
  let pfns = List.init 6 (fun _ -> Result.get_ok (Magazine.alloc m ~size:1)) in
  List.iter (fun pfn -> Magazine.free m (Option.get (Magazine.find m ~pfn))) pfns;
  Alcotest.(check int) "a full magazine parked in the depot" 1
    (Magazine.stats m).Magazine.depot_puts;
  let again = List.init 6 (fun _ -> Result.get_ok (Magazine.alloc m ~size:1)) in
  Alcotest.(check int) "all six ranges recycled" 6
    (List.length (List.filter (fun p -> List.mem p pfns) again));
  let s = Magazine.stats m in
  Alcotest.(check int) "every re-alloc served from a magazine" 6 s.Magazine.hits;
  Alcotest.(check int) "one magazine reloaded from the depot" 1
    s.Magazine.depot_gets;
  Alcotest.(check int) "no new base misses" 6 s.Magazine.misses

let test_magazine_depot_overflow_flushes () =
  let m, base = make_magazine ~magazine_size:1 ~depot_max:0 () in
  let pfns = List.init 3 (fun _ -> Result.get_ok (Magazine.alloc m ~size:1)) in
  List.iter (fun pfn -> Magazine.free m (Option.get (Magazine.find m ~pfn))) pfns;
  Alcotest.(check bool) "depot overflow spilled back to the base" true
    ((Magazine.stats m).Magazine.flushes >= 1);
  (* the spilled range really left the base allocator's tree *)
  Alcotest.(check bool) "some freed range is gone from the base" true
    (List.exists (fun pfn -> Allocator.find base ~pfn = None) pfns)

let test_magazine_bypass_large () =
  let m, base = make_magazine ~max_cached_size:2 () in
  let pfn = Result.get_ok (Magazine.alloc m ~size:3) in
  Alcotest.(check int) "large alloc bypasses" 1
    (Magazine.stats m).Magazine.bypasses;
  Magazine.free m (Option.get (Magazine.find m ~pfn));
  Alcotest.(check int) "large free bypasses too" 2
    (Magazine.stats m).Magazine.bypasses;
  Alcotest.(check bool) "bypassed free reached the base" true
    (Allocator.find base ~pfn = None);
  Alcotest.(check int) "nothing was cached" 0 (Magazine.stats m).Magazine.hits

let test_magazine_drain () =
  let m, base = make_magazine () in
  let pfns = List.init 4 (fun _ -> Result.get_ok (Magazine.alloc m ~size:1)) in
  List.iter (fun pfn -> Magazine.free m (Option.get (Magazine.find m ~pfn))) pfns;
  Magazine.drain m;
  List.iter
    (fun pfn ->
      Alcotest.(check bool) "drained range released by the base" true
        (Allocator.find base ~pfn = None))
    pfns;
  (* nothing cached any more: the next alloc is a base miss *)
  ignore (Result.get_ok (Magazine.alloc m ~size:1));
  Alcotest.(check int) "post-drain alloc misses" 5
    (Magazine.stats m).Magazine.misses

let test_magazine_wraps_fast_allocator () =
  (* The fast allocator has its own parking (cached_free) discipline;
     the magazine must hand nodes back un-parked or Fast.free raises. *)
  let m, _ = make_magazine ~kind:Allocator.Fast () in
  let pfn = Result.get_ok (Magazine.alloc m ~size:2) in
  Magazine.free m (Option.get (Magazine.find m ~pfn));
  let pfn2 = Result.get_ok (Magazine.alloc m ~size:2) in
  Alcotest.(check int) "recycled through the magazine" pfn pfn2;
  Magazine.free m (Option.get (Magazine.find m ~pfn:pfn2));
  Magazine.drain m;
  Alcotest.(check bool) "drain flushed through Fast.free" true
    ((Magazine.stats m).Magazine.flushes >= 1);
  ignore (Result.get_ok (Magazine.alloc m ~size:2));
  Alcotest.(check int) "still consistent after drain" 1 (Magazine.live m)

let prop_magazine_live_accounting =
  (* Random alloc/free churn: [live] must always equal handed-out minus
     returned, regardless of how ranges shuttle between magazines, the
     depot and the base allocator. *)
  QCheck.Test.make ~name:"magazine live accounting under random churn"
    ~count:30
    QCheck.(list (pair bool (int_bound 3)))
    (fun ops ->
      let m, _ = make_magazine ~magazine_size:2 ~depot_max:1 () in
      let held = ref [] in
      List.iter
        (fun (is_alloc, sz) ->
          if is_alloc || !held = [] then (
            match Magazine.alloc m ~size:(sz + 1) with
            | Ok pfn -> held := pfn :: !held
            | Error `Exhausted -> ())
          else
            match !held with
            | [] -> ()
            | pfn :: rest -> (
                match Magazine.find m ~pfn with
                | Some node ->
                    Magazine.free m node;
                    held := rest
                | None -> failwith "live range not findable"))
        ops;
      Magazine.live m = List.length !held)

let () =
  Alcotest.run "rio_iova"
    [
      ( "rbtree",
        [
          Alcotest.test_case "insert/find" `Quick test_rbtree_insert_find;
          Alcotest.test_case "overlap rejected" `Quick test_rbtree_overlap_rejected;
          Alcotest.test_case "delete" `Quick test_rbtree_delete;
          Alcotest.test_case "double delete detected" `Quick
            test_rbtree_double_delete_detected;
          Alcotest.test_case "neighbours" `Quick test_rbtree_neighbours;
          Alcotest.test_case "inorder iteration" `Quick test_rbtree_inorder_iteration;
          QCheck_alcotest.to_alcotest prop_rbtree_random_ops;
          QCheck_alcotest.to_alcotest prop_rbtree_find_matches_reference;
        ] );
      ( "linux_allocator",
        [
          Alcotest.test_case "top-down" `Quick test_linux_alloc_top_down;
          Alcotest.test_case "find/free" `Quick test_linux_find_free;
          Alcotest.test_case "reuses freed space" `Quick test_linux_reuses_freed_space;
          Alcotest.test_case "exhaustion" `Quick test_linux_exhaustion;
          Alcotest.test_case "mixed-size ring pathology (linear scans)" `Quick
            test_linux_mixed_size_pathology;
          Alcotest.test_case "uniform-size FIFO stays cheap" `Quick
            test_linux_uniform_fifo_stays_cheap;
          Alcotest.test_case "alloc charges cycles" `Quick test_linux_alloc_charges_cycles;
        ] );
      ( "fast_allocator",
        [
          Alcotest.test_case "recycles parked ranges" `Quick test_fast_recycles_parked;
          Alcotest.test_case "parked not findable" `Quick test_fast_parked_not_findable;
          Alcotest.test_case "size classes" `Quick test_fast_size_classes;
          Alcotest.test_case "constant-time steady state" `Quick
            test_fast_constant_time_steady_state;
          Alcotest.test_case "double free detected" `Quick test_fast_double_free_detected;
        ] );
      ( "allocator_interface",
        [
          QCheck_alcotest.to_alcotest (allocator_spec Allocator.Linux);
          QCheck_alcotest.to_alcotest (allocator_spec Allocator.Fast);
          Alcotest.test_case "Table 1 allocation cost bands" `Quick
            test_table1_alloc_cost_bands;
        ] );
      ( "magazine",
        [
          Alcotest.test_case "hit/miss cycle and parked visibility" `Quick
            test_magazine_hit_miss_cycle;
          Alcotest.test_case "depot exchange" `Quick test_magazine_depot_exchange;
          Alcotest.test_case "depot overflow flushes to base" `Quick
            test_magazine_depot_overflow_flushes;
          Alcotest.test_case "large requests bypass" `Quick
            test_magazine_bypass_large;
          Alcotest.test_case "drain returns everything" `Quick test_magazine_drain;
          Alcotest.test_case "wraps the fast allocator" `Quick
            test_magazine_wraps_fast_allocator;
          QCheck_alcotest.to_alcotest prop_magazine_live_accounting;
        ] );
    ]
