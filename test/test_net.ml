(* Tests for the socket transport layer (rio_serve_net): QCheck
   round-trip properties of the riommu-wire/1 codec (decode o encode =
   id for every op, requests and responses), typed protocol errors on
   truncated / oversized / garbage frames, byte-at-a-time partial-read
   reassembly through Conn, the backpressure admission invariant, and
   the shard-affinity dispatcher (pinning, batch-full handoff,
   bad_request rejection, end-to-end map/translate through a real
   shard with responses decoded back out of the connection's write
   buffer). *)

module Wire = Rio_serve_net.Wire
module Conn = Rio_serve_net.Conn
module Dispatch = Rio_serve_net.Dispatch
module Spsc = Rio_serve_net.Spsc
module Cell = Rio_serve_net.Cell
module Executor = Rio_serve_net.Executor
module Readiness = Rio_serve_net.Readiness
module Shard = Rio_serve.Shard
module Shared_iotlb = Rio_domain.Shared_iotlb
module Addr = Rio_memory.Addr

let sg_limit = 8

(* {1 Wire: request round trips} *)

(* Wire u64s carry 62-bit values; exercise the full range, including
   the mask boundary. *)
let u62_gen =
  QCheck.Gen.(
    oneof
      [
        int_bound 0xFFFF;
        int_bound 0xFFFF_FFFF;
        map (fun x -> x land 0x3FFF_FFFF_FFFF_FFFF) (int_range 0 max_int);
        return 0x3FFF_FFFF_FFFF_FFFF;
        return 0;
      ])

let u32_gen = QCheck.Gen.(int_bound 0xFFFF_FFFF)
let tenant_gen = QCheck.Gen.(int_bound 0xFFFF)
let pos_gen = QCheck.Gen.(int_bound 32)

let buf_of ~pos ~garbage =
  let b = Bytes.make (pos + 512) (Char.chr garbage) in
  b

(* Encode one request at a random offset in a dirty buffer, decode it
   back, and require exact field equality plus exact consumed length.
   Decoding with one byte less than the frame must return 0. *)
let prop_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire: request decode o encode = id"
    QCheck.(
      make
        Gen.(
          tup4 (int_bound 4) tenant_gen u32_gen
            (tup4 pos_gen (int_bound 255) (list_size (int_range 1 sg_limit) (tup2 u62_gen u32_gen)) (tup3 u62_gen u32_gen bool))))
    (fun (opk, tenant, req_id, (pos, garbage, segs, (va, nbytes, write))) ->
      let b = buf_of ~pos ~garbage in
      let seg_phys = Array.of_list (List.map fst segs) in
      let seg_bytes = Array.of_list (List.map snd segs) in
      let n = Array.length seg_phys in
      let fin =
        match opk with
        | 0 -> Wire.encode_map b ~pos ~tenant ~req_id ~phys:va ~bytes:nbytes
        | 1 -> Wire.encode_unmap b ~pos ~tenant ~req_id ~iova:va
        | 2 -> Wire.encode_map_sg b ~pos ~tenant ~req_id ~seg_phys ~seg_bytes ~n
        | 3 -> Wire.encode_translate b ~pos ~tenant ~req_id ~iova:va ~write
        | _ -> Wire.encode_stats b ~pos ~tenant ~req_id
      in
      let frame = fin - pos in
      let req = Wire.create_req ~sg_limit in
      (* a one-byte-short window is always "need more" *)
      let short = Wire.decode_request b ~pos ~avail:(frame - 1) req in
      let r = Wire.decode_request b ~pos ~avail:frame req in
      short = 0 && r = frame
      && req.Wire.tenant = tenant
      && req.Wire.req_id = req_id
      &&
      match opk with
      | 0 ->
          req.Wire.op = Wire.op_map
          && req.Wire.phys = va
          && req.Wire.bytes = nbytes
      | 1 -> req.Wire.op = Wire.op_unmap && req.Wire.iova = va
      | 2 ->
          req.Wire.op = Wire.op_map_sg
          && req.Wire.nseg = n
          && Array.sub req.Wire.seg_phys 0 n = seg_phys
          && Array.sub req.Wire.seg_bytes 0 n = seg_bytes
      | 3 ->
          req.Wire.op = Wire.op_translate
          && req.Wire.iova = va
          && req.Wire.write = write
      | _ -> req.Wire.op = Wire.op_stats)

(* {1 Wire: response round trips} *)

let prop_response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire: response decode o encode = id"
    QCheck.(
      make
        Gen.(
          tup4 (int_bound 5) u32_gen pos_gen
            (tup2 (list_size (int_range 1 sg_limit) u62_gen) (tup2 u62_gen (int_bound 4)))))
    (fun (kind, req_id, pos, (iovas_l, (v, status))) ->
      let b = buf_of ~pos ~garbage:0xEE in
      let iovas = Array.of_list iovas_l in
      let n = Array.length iovas in
      let fin =
        match kind with
        | 0 -> Wire.encode_map_ok b ~pos ~req_id ~iova:v
        | 1 -> Wire.encode_unmap_ok b ~pos ~req_id
        | 2 -> Wire.encode_translate_ok b ~pos ~req_id ~phys:v
        | 3 -> Wire.encode_map_sg_ok b ~pos ~req_id ~iovas ~n
        | 4 ->
            Wire.encode_stats_ok b ~pos ~req_id ~ops:v ~requests:(v lxor 1)
              ~conns:3 ~errors:0 ~faults:7
        | _ ->
            Wire.encode_error b ~pos ~op:Wire.op_translate
              ~status:(1 + (status mod 4))
              ~req_id
      in
      let frame = fin - pos in
      let resp = Wire.create_resp ~sg_limit in
      let short = Wire.decode_response b ~pos ~avail:(frame - 1) resp in
      let r = Wire.decode_response b ~pos ~avail:frame resp in
      short = 0 && r = frame
      && resp.Wire.r_req_id = req_id
      &&
      match kind with
      | 0 ->
          resp.Wire.r_op = Wire.op_map
          && resp.Wire.status = Wire.st_ok
          && resp.Wire.r_iova = v
      | 1 -> resp.Wire.r_op = Wire.op_unmap && resp.Wire.status = Wire.st_ok
      | 2 ->
          resp.Wire.r_op = Wire.op_translate
          && resp.Wire.status = Wire.st_ok
          && resp.Wire.r_phys = v
      | 3 ->
          resp.Wire.r_op = Wire.op_map_sg
          && resp.Wire.status = Wire.st_ok
          && resp.Wire.r_nseg = n
          && Array.sub resp.Wire.r_iovas 0 n = iovas
      | 4 ->
          resp.Wire.r_op = Wire.op_stats
          && resp.Wire.s_ops = v
          && resp.Wire.s_requests = v lxor 1
          && resp.Wire.s_conns = 3
          && resp.Wire.s_errors = 0
          && resp.Wire.s_faults = 7
      | _ -> resp.Wire.r_op = Wire.op_translate && resp.Wire.status <> Wire.st_ok)

(* {1 Wire: typed protocol errors} *)

let code = Wire.error_code

let check_decode name expect buf ~avail =
  let req = Wire.create_req ~sg_limit in
  Alcotest.(check int) name expect (Wire.decode_request buf ~pos:0 ~avail req)

let test_wire_errors () =
  let b = Bytes.create 256 in
  (* truncated: every strict prefix of a valid frame decodes to 0 *)
  let fin = Wire.encode_translate b ~pos:0 ~tenant:3 ~req_id:9 ~iova:0x1000 ~write:true in
  for avail = 0 to fin - 1 do
    check_decode "truncated prefix needs more" 0 b ~avail
  done;
  (* oversized: a hostile length claim fails as soon as the length word
     is readable, without waiting for the claimed body *)
  let huge = Wire.max_body ~sg_limit + 1 in
  Bytes.set_uint16_le b 0 (huge land 0xFFFF);
  Bytes.set_uint16_le b 2 (huge lsr 16);
  check_decode "oversized rejected from the length word alone" (code Wire.Oversized)
    b ~avail:4;
  (* bad length: shorter than a request header *)
  Bytes.set_uint16_le b 0 4;
  Bytes.set_uint16_le b 2 0;
  check_decode "undersized length" (code Wire.Bad_length) b ~avail:4;
  (* garbage magic *)
  let fin = Wire.encode_unmap b ~pos:0 ~tenant:1 ~req_id:2 ~iova:0x2000 in
  Bytes.set_uint8 b 4 0x55;
  check_decode "corrupt magic" (code Wire.Bad_magic) b ~avail:fin;
  (* unknown op *)
  let fin = Wire.encode_stats b ~pos:0 ~tenant:1 ~req_id:2 in
  Bytes.set_uint8 b 5 0x7F;
  check_decode "unknown op" (code Wire.Bad_op) b ~avail:fin;
  (* payload length inconsistent with the op *)
  let fin = Wire.encode_map b ~pos:0 ~tenant:1 ~req_id:2 ~phys:0x3000 ~bytes:64 in
  Bytes.set_uint8 b 5 Wire.op_unmap;
  check_decode "map-sized payload on unmap" (code Wire.Bad_length) b ~avail:fin;
  (* map_sg with nseg = 0 and with nseg > sg_limit *)
  let seg_phys = Array.make 1 0x4000 and seg_bytes = Array.make 1 64 in
  let fin = Wire.encode_map_sg b ~pos:0 ~tenant:1 ~req_id:2 ~seg_phys ~seg_bytes ~n:1 in
  Bytes.set_uint16_le b 12 0;
  check_decode "nseg = 0" (code Wire.Bad_segs) b ~avail:fin;
  Bytes.set_uint16_le b 12 (sg_limit + 1);
  check_decode "nseg above limit" (code Wire.Bad_segs) b ~avail:fin;
  (* hello: truncated then corrupt *)
  let h = Bytes.create 32 in
  let _ = Wire.encode_hello h ~pos:0 ~bdf:0x0100 ~flags:0 in
  Alcotest.(check int) "truncated hello needs more" 0
    (Wire.decode_hello h ~pos:0 ~avail:(Wire.hello_bytes - 1));
  Alcotest.(check int) "hello bdf" 0x0100 (Wire.hello_bdf h ~pos:0);
  Bytes.set_uint8 h 0 (Char.code 'X');
  Alcotest.(check int) "corrupt hello magic" (code Wire.Bad_hello)
    (Wire.decode_hello h ~pos:0 ~avail:Wire.hello_bytes);
  (* error_of_code is the inverse of error_code on the whole range *)
  List.iter
    (fun e -> Alcotest.(check bool) "error_of_code inverse" true
        (Wire.error_of_code (Wire.error_code e) = e))
    [ Wire.Bad_magic; Wire.Bad_op; Wire.Bad_length; Wire.Oversized;
      Wire.Bad_segs; Wire.Bad_hello ]

(* {1 Conn: byte-at-a-time reassembly} *)

(* A hello plus three frames trickled in one byte at a time must decode
   to exactly those three requests, in order, each completing only on
   its final byte. *)
let test_conn_reassembly () =
  let stream = Bytes.create 512 in
  let p = Wire.encode_hello stream ~pos:0 ~bdf:0x0342 ~flags:0 in
  let p = Wire.encode_map stream ~pos:p ~tenant:2 ~req_id:100 ~phys:0x5000 ~bytes:4096 in
  let p = Wire.encode_translate stream ~pos:p ~tenant:2 ~req_id:101 ~iova:0x9000 ~write:false in
  let total = Wire.encode_stats stream ~pos:p ~tenant:0 ~req_id:102 in
  let conn = Conn.create ~window:8 ~sg_limit () in
  let req = Wire.create_req ~sg_limit in
  let decoded = ref [] in
  for i = 0 to total - 1 do
    Conn.feed conn stream ~pos:i ~len:1;
    let r = Conn.next conn req in
    if r > 0 then decoded := (req.Wire.op, req.Wire.req_id) :: !decoded
    else Alcotest.(check int) "partial frame: need more" 0 r
  done;
  Alcotest.(check (list (pair int int)))
    "frames complete exactly on their last byte"
    [ (Wire.op_map, 100); (Wire.op_translate, 101); (Wire.op_stats, 102) ]
    (List.rev !decoded);
  Alcotest.(check bool) "hello consumed" true (Conn.hello_done conn);
  Alcotest.(check int) "bdf from hello" 0x0342 (Conn.bdf conn);
  Alcotest.(check int) "window grew per request" 3 (Conn.inflight conn);
  Alcotest.(check int) "lifetime request count" 3 (Conn.requests conn)

(* A protocol error mid-stream kills the connection and nothing
   decodes after it. *)
let test_conn_kill_on_garbage () =
  let conn = Conn.create ~window:4 ~sg_limit () in
  let b = Bytes.create 64 in
  let p = Wire.encode_hello b ~pos:0 ~bdf:1 ~flags:0 in
  let fin = Wire.encode_unmap b ~pos:p ~tenant:0 ~req_id:7 ~iova:0x1000 in
  Bytes.set_uint8 b (p + 4) 0x00 (* corrupt the frame magic *);
  Conn.feed conn b ~pos:0 ~len:fin;
  let req = Wire.create_req ~sg_limit in
  Alcotest.(check int) "typed error surfaces" (code Wire.Bad_magic)
    (Conn.next conn req);
  Alcotest.(check bool) "connection dead" false (Conn.alive conn);
  Alcotest.(check int) "dead conn decodes nothing" 0 (Conn.next conn req)

(* Admission closes exactly when the window fills, and reserve never
   fails while admission is open — the backpressure invariant the
   event loop relies on. *)
let test_conn_backpressure () =
  let window = 4 in
  let conn = Conn.create ~window ~sg_limit () in
  let b = Bytes.create 1024 in
  let p = ref (Wire.encode_hello b ~pos:0 ~bdf:1 ~flags:0) in
  for i = 0 to window - 1 do
    p := Wire.encode_translate b ~pos:!p ~tenant:0 ~req_id:i ~iova:0x1000 ~write:false
  done;
  Conn.feed conn b ~pos:0 ~len:!p;
  let req = Wire.create_req ~sg_limit in
  let rsp_max = Wire.max_response_bytes ~sg_limit in
  for _ = 1 to window do
    Alcotest.(check bool) "admission open below window" true (Conn.can_admit conn);
    Alcotest.(check bool) "decode succeeds" true (Conn.next conn req > 0);
    let off = Conn.reserve conn rsp_max in
    Alcotest.(check bool) "reserve holds while admitted" true (off >= 0);
    Conn.commit conn
      (Wire.encode_translate_ok (Conn.wbuf conn) ~pos:off ~req_id:req.Wire.req_id
         ~phys:0xAB000)
  done;
  Alcotest.(check bool) "window full: admission closed" false (Conn.can_admit conn);
  Alcotest.(check bool) "window full: reads off" false (Conn.want_read conn);
  Alcotest.(check bool) "responses queued: writes on" true (Conn.want_write conn);
  (* retiring requests reopens admission; draining clears want_write *)
  for _ = 1 to window do Conn.completed conn done;
  Alcotest.(check bool) "drained window readmits" true (Conn.can_admit conn);
  Conn.consumed conn (Conn.queued conn);
  Alcotest.(check bool) "no queued bytes: writes off" false (Conn.want_write conn);
  Alcotest.(check int) "responses counted" window (Conn.responses conn)

(* {1 Dispatch: affinity, batching, rejection} *)

let make_shards n =
  Array.init n (fun id ->
      Shard.create ~id ~tenants:4 ~iotlb_capacity:64 ~iotlb_policy:Shared_iotlb.Shared
        ~rcache:true ())

let hello_conn ~window =
  let conn = Conn.create ~window ~sg_limit () in
  let b = Bytes.create Wire.hello_bytes in
  let n = Wire.encode_hello b ~pos:0 ~bdf:0x0100 ~flags:0 in
  Conn.feed conn b ~pos:0 ~len:n;
  let req = Wire.create_req ~sg_limit in
  assert (Conn.next conn req = 0);
  conn

(* Feed one encoded request through Conn.next then Dispatch.enqueue. *)
let push d conn req b fin =
  Conn.feed conn b ~pos:0 ~len:fin;
  Alcotest.(check bool) "frame decodes" true (Conn.next conn req > 0);
  Dispatch.enqueue d conn req

let drain_one conn resp =
  let r =
    Wire.decode_response (Conn.wbuf conn) ~pos:(Conn.wpos conn)
      ~avail:(Conn.queued conn) resp
  in
  Alcotest.(check bool) "a response is queued" true (r > 0);
  Conn.consumed conn r

let test_dispatch_affinity () =
  let shards = make_shards 4 in
  let d = Dispatch.create ~shards ~batch:16 ~sg_limit () in
  (* the pinning hash is deterministic and spreads tenants *)
  let spread = Array.make 4 0 in
  for tenant = 0 to 63 do
    let s = Dispatch.shard_of d ~tenant ~bdf:0x0100 in
    Alcotest.(check int) "affinity hash is stable" s
      (Dispatch.shard_of d ~tenant ~bdf:0x0100);
    spread.(s) <- spread.(s) + 1
  done;
  Array.iteri
    (fun i n ->
      Alcotest.(check bool) (Printf.sprintf "shard %d gets tenants" i) true (n > 0))
    spread

let test_dispatch_map_translate_roundtrip () =
  let shards = make_shards 2 in
  let d = Dispatch.create ~shards ~batch:8 ~sg_limit () in
  let conn = hello_conn ~window:16 in
  let req = Wire.create_req ~sg_limit in
  let b = Bytes.create 256 in
  let phys = (Shard.next_buf shards.(0) :> int) in
  let fin = Wire.encode_map b ~pos:0 ~tenant:1 ~req_id:500 ~phys ~bytes:4096 in
  Alcotest.(check bool) "map enqueued" true (push d conn req b fin);
  Dispatch.flush_all d;
  let resp = Wire.create_resp ~sg_limit in
  drain_one conn resp;
  Alcotest.(check int) "map answers its req_id" 500 resp.Wire.r_req_id;
  Alcotest.(check int) "map ok" Wire.st_ok resp.Wire.status;
  let iova = resp.Wire.r_iova in
  (* translate the iova the map returned; the shard must hand back the
     physical frame we mapped *)
  let fin = Wire.encode_translate b ~pos:0 ~tenant:1 ~req_id:501 ~iova ~write:true in
  Alcotest.(check bool) "translate enqueued" true (push d conn req b fin);
  Dispatch.flush_all d;
  drain_one conn resp;
  Alcotest.(check int) "translate answers its req_id" 501 resp.Wire.r_req_id;
  Alcotest.(check int) "translate ok" Wire.st_ok resp.Wire.status;
  Alcotest.(check int) "translate returns the mapped frame" phys resp.Wire.r_phys;
  (* unmap, then a second translate faults *)
  let fin = Wire.encode_unmap b ~pos:0 ~tenant:1 ~req_id:502 ~iova in
  Alcotest.(check bool) "unmap enqueued" true (push d conn req b fin);
  let fin = Wire.encode_translate b ~pos:0 ~tenant:1 ~req_id:503 ~iova ~write:false in
  Alcotest.(check bool) "stale translate enqueued" true (push d conn req b fin);
  Dispatch.flush_all d;
  drain_one conn resp;
  Alcotest.(check int) "unmap ok" Wire.st_ok resp.Wire.status;
  drain_one conn resp;
  Alcotest.(check int) "stale translate faults" Wire.st_fault resp.Wire.status;
  Alcotest.(check int) "fault echoes req_id" 503 resp.Wire.r_req_id;
  Alcotest.(check int) "all four executed" 4 (Dispatch.executed d);
  Alcotest.(check int) "window fully retired" 0 (Conn.inflight conn)

let test_dispatch_batch_full () =
  let shards = make_shards 1 in
  let batch = 4 in
  let d = Dispatch.create ~shards ~batch ~sg_limit () in
  let conn = hello_conn ~window:16 in
  let req = Wire.create_req ~sg_limit in
  let b = Bytes.create 256 in
  let enqueue_translate i =
    let fin =
      Wire.encode_translate b ~pos:0 ~tenant:0 ~req_id:i ~iova:0x7000 ~write:false
    in
    push d conn req b fin
  in
  for i = 0 to batch - 1 do
    Alcotest.(check bool) "fits in batch" true (enqueue_translate i)
  done;
  Alcotest.(check int) "batch holds the requests" batch (Dispatch.pending d);
  Alcotest.(check bool) "full batch refuses" false (enqueue_translate batch);
  Dispatch.flush_all d;
  Alcotest.(check int) "flush empties" 0 (Dispatch.pending d);
  Alcotest.(check bool) "retry after flush succeeds" true
    (Dispatch.enqueue d conn req);
  Dispatch.flush_all d;
  Alcotest.(check int) "all executed" (batch + 1) (Dispatch.executed d);
  Alcotest.(check int) "two non-empty flushes" 2 (Dispatch.flushes d)

let test_dispatch_rejects_bad_tenant () =
  let shards = make_shards 2 in
  let d = Dispatch.create ~shards ~batch:8 ~sg_limit ~max_tenants:16 () in
  let conn = hello_conn ~window:8 in
  let req = Wire.create_req ~sg_limit in
  let b = Bytes.create 256 in
  let fin = Wire.encode_translate b ~pos:0 ~tenant:99 ~req_id:7 ~iova:0 ~write:false in
  Alcotest.(check bool) "rejection is handled, not batched" true
    (push d conn req b fin);
  Alcotest.(check int) "nothing pending" 0 (Dispatch.pending d);
  Alcotest.(check int) "rejected counter" 1 (Dispatch.rejected d);
  let resp = Wire.create_resp ~sg_limit in
  drain_one conn resp;
  Alcotest.(check int) "bad_request status" Wire.st_bad_request resp.Wire.status;
  Alcotest.(check int) "rejection echoes req_id" 7 resp.Wire.r_req_id;
  Alcotest.(check int) "window retired on rejection" 0 (Conn.inflight conn)

(* {1 SPSC ring: oracle equivalence and boundaries} *)

(* Drive a random push/pop schedule against a Queue.t oracle: pushes
   succeed exactly while the oracle holds fewer than [capacity] cells,
   pops return exactly the oracle's FIFO front, lane-for-lane. *)
let prop_spsc_oracle =
  QCheck.Test.make ~count:300 ~name:"spsc: matches queue oracle"
    QCheck.(
      make
        Gen.(
          tup3 (int_range 1 16) (int_range 1 4)
            (list_size (int_range 0 200) bool)))
    (fun (cap, width, ops) ->
      let r = Spsc.create ~cap ~width in
      let oracle = Queue.create () in
      let counter = ref 0 in
      let src = Array.make width 0 in
      let dst = Array.make width 0 in
      List.for_all
        (fun is_push ->
          if is_push then begin
            incr counter;
            Array.iteri (fun i _ -> src.(i) <- (!counter * 31) + i) src;
            let pushed = Spsc.try_push r ~src in
            let had_room = Queue.length oracle < Spsc.capacity r in
            if pushed then Queue.push (Array.copy src) oracle;
            pushed = had_room
          end
          else begin
            let popped = Spsc.try_pop r ~dst in
            match Queue.take_opt oracle with
            | None -> not popped
            | Some expect -> popped && expect = dst
          end)
        ops
      && Spsc.length r = Queue.length oracle
      && Spsc.is_empty r = Queue.is_empty oracle)

let test_spsc_boundaries () =
  let width = 3 in
  let r = Spsc.create ~cap:3 ~width in
  Alcotest.(check int) "capacity rounds to a power of two" 4 (Spsc.capacity r);
  Alcotest.(check int) "width kept" width (Spsc.width r);
  let src = Array.make width 0 in
  let dst = Array.make width 0 in
  Alcotest.(check bool) "empty pop fails" false (Spsc.try_pop r ~dst);
  Alcotest.(check bool) "empty at creation" true (Spsc.is_empty r);
  for k = 1 to 4 do
    src.(0) <- k;
    src.(width - 1) <- k * 7;
    Alcotest.(check bool) "push while room" true (Spsc.try_push r ~src)
  done;
  Alcotest.(check bool) "full push fails" false (Spsc.try_push r ~src);
  Alcotest.(check int) "length at capacity" 4 (Spsc.length r);
  (* wrap the cursors past the mask: pop two, push two, drain all *)
  for k = 1 to 2 do
    Alcotest.(check bool) "pop succeeds" true (Spsc.try_pop r ~dst);
    Alcotest.(check int) "fifo order" k dst.(0);
    Alcotest.(check int) "last lane intact" (k * 7) dst.(width - 1)
  done;
  for k = 5 to 6 do
    src.(0) <- k;
    src.(width - 1) <- k * 7;
    Alcotest.(check bool) "push after wrap" true (Spsc.try_push r ~src)
  done;
  for k = 3 to 6 do
    Alcotest.(check bool) "drain succeeds" true (Spsc.try_pop r ~dst);
    Alcotest.(check int) "wrapped fifo order" k dst.(0)
  done;
  Alcotest.(check bool) "drained ring is empty" true (Spsc.is_empty r);
  Alcotest.(check bool) "drained pop fails" false (Spsc.try_pop r ~dst)

(* {1 Readiness: both backends against real pipes} *)

let readiness_pipe_test backend () =
  let r = Readiness.create backend in
  Alcotest.(check bool) "backend echoes" true (Readiness.backend r = backend);
  let a_rd, a_wr = Unix.pipe ~cloexec:true () in
  let b_rd, b_wr = Unix.pipe ~cloexec:true () in
  let ha = Readiness.register r a_rd ~token:10 in
  let hb = Readiness.register r b_rd ~token:20 in
  Readiness.interest r ~handle:ha ~read:true ~write:false;
  Readiness.interest r ~handle:hb ~read:true ~write:false;
  Alcotest.(check int) "two registered" 2 (Readiness.registered r);
  Alcotest.(check int) "nothing ready" 0 (Readiness.wait r ~timeout_ms:0);
  ignore (Unix.write b_wr (Bytes.make 1 'x') 0 1);
  Alcotest.(check int) "one ready" 1 (Readiness.wait r ~timeout_ms:1000);
  let seen = ref [] in
  Readiness.iter_ready r (fun tok bits -> seen := (tok, bits) :: !seen);
  (match !seen with
  | [ (tok, bits) ] ->
      Alcotest.(check int) "token routes back" 20 tok;
      Alcotest.(check bool) "read bit set" true
        (bits land Readiness.ev_read <> 0)
  | _ -> Alcotest.fail "expected exactly one ready token");
  (* unregister swap-compacts the dense slots; the survivor still
     routes under its own token *)
  Readiness.unregister r ~handle:hb;
  Unix.close b_rd;
  Unix.close b_wr;
  Alcotest.(check int) "one registered" 1 (Readiness.registered r);
  ignore (Unix.write a_wr (Bytes.make 1 'y') 0 1);
  Alcotest.(check int) "survivor ready" 1 (Readiness.wait r ~timeout_ms:1000);
  let tok = ref (-1) in
  Readiness.iter_ready r (fun t _ -> tok := t);
  Alcotest.(check int) "survivor token" 10 !tok;
  (* write interest on an unclogged pipe reports ready immediately *)
  let hw = Readiness.register r a_wr ~token:30 in
  Readiness.interest r ~handle:hw ~read:false ~write:true;
  Alcotest.(check bool) "writable counted" true
    (Readiness.wait r ~timeout_ms:1000 >= 1);
  let wseen = ref false in
  Readiness.iter_ready r (fun t bits ->
      if t = 30 && bits land Readiness.ev_write <> 0 then wseen := true);
  Alcotest.(check bool) "write bit on its token" true !wseen;
  Readiness.unregister r ~handle:hw;
  Readiness.unregister r ~handle:ha;
  Alcotest.(check int) "all recycled" 0 (Readiness.registered r);
  Unix.close a_rd;
  Unix.close a_wr

(* {1 Executor: cells through the ring, end to end} *)

(* The multi-domain hand-off run inline on one thread: decode into
   Dispatch, pack the batch into request cells ([flush_cells]), push
   them through a real SPSC ring into an [Executor], [step] it, pop
   the response cells back and [complete] them into the connection's
   write buffer — then decode the wire responses and check they match
   what the single-threaded [flush_all] path would have produced. *)
let test_executor_step_roundtrip () =
  let shards = make_shards 2 in
  let d = Dispatch.create ~shards ~batch:8 ~sg_limit () in
  let conn = hello_conn ~window:16 in
  Conn.set_token conn 3;
  let req = Wire.create_req ~sg_limit in
  let resp = Wire.create_resp ~sg_limit in
  let b = Bytes.create 512 in
  let _rd, wr = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wr;
  let ex = Executor.create ~shards ~sg_limit ~ring_cap:16 ~wake_fd:wr in
  let cell = Array.make (Cell.req_width ~sg_limit) 0 in
  let rsp_cell = Array.make (Cell.rsp_width ~sg_limit) 0 in
  let pump ~expect =
    let emitted = ref 0 in
    Dispatch.flush_cells d ~cell ~emit:(fun ~shard ->
        Alcotest.(check bool) "shard index in range" true
          (shard >= 0 && shard < Array.length shards);
        incr emitted;
        Alcotest.(check bool) "ring admits the cell" true
          (Spsc.try_push (Executor.request_ring ex) ~src:cell));
    Alcotest.(check int) "cells emitted" expect !emitted;
    Alcotest.(check int) "executor ran them" expect (Executor.step ex);
    for _ = 1 to expect do
      Alcotest.(check bool) "response cell pops" true
        (Spsc.try_pop (Executor.response_ring ex) ~dst:rsp_cell);
      Alcotest.(check int) "response routes to the conn slot" 3
        rsp_cell.(Cell.r_slot);
      Dispatch.complete d conn ~cell:rsp_cell
    done
  in
  (* map, recover the iova from the encoded response *)
  let phys = (Shard.next_buf shards.(0) :> int) in
  let fin = Wire.encode_map b ~pos:0 ~tenant:1 ~req_id:700 ~phys ~bytes:4096 in
  Alcotest.(check bool) "map enqueued" true (push d conn req b fin);
  pump ~expect:1;
  drain_one conn resp;
  Alcotest.(check int) "map answers its req_id" 700 resp.Wire.r_req_id;
  Alcotest.(check int) "map ok" Wire.st_ok resp.Wire.status;
  let iova = resp.Wire.r_iova in
  (* translate + a stale-tenant mix in one batch *)
  let fin =
    Wire.encode_translate b ~pos:0 ~tenant:1 ~req_id:701 ~iova ~write:true
  in
  Alcotest.(check bool) "translate enqueued" true (push d conn req b fin);
  let fin = Wire.encode_unmap b ~pos:0 ~tenant:1 ~req_id:702 ~iova in
  Alcotest.(check bool) "unmap enqueued" true (push d conn req b fin);
  pump ~expect:2;
  drain_one conn resp;
  Alcotest.(check int) "translate answers its req_id" 701 resp.Wire.r_req_id;
  Alcotest.(check int) "translate returns the mapped frame" phys
    resp.Wire.r_phys;
  drain_one conn resp;
  Alcotest.(check int) "unmap ok" Wire.st_ok resp.Wire.status;
  (* a faulting translate still routes an error cell back *)
  let fin =
    Wire.encode_translate b ~pos:0 ~tenant:1 ~req_id:703 ~iova ~write:false
  in
  Alcotest.(check bool) "stale translate enqueued" true (push d conn req b fin);
  pump ~expect:1;
  drain_one conn resp;
  Alcotest.(check int) "stale translate faults" Wire.st_fault resp.Wire.status;
  Alcotest.(check int) "fault echoes req_id" 703 resp.Wire.r_req_id;
  (* map_sg exercises the segment lanes of both cell directions *)
  let segs = Array.init 3 (fun _ -> (Shard.next_buf shards.(0) :> int)) in
  let fin =
    Wire.encode_map_sg b ~pos:0 ~tenant:1 ~req_id:704 ~seg_phys:segs
      ~seg_bytes:(Array.make 3 4096) ~n:3
  in
  Alcotest.(check bool) "map_sg enqueued" true (push d conn req b fin);
  pump ~expect:1;
  drain_one conn resp;
  Alcotest.(check int) "map_sg ok" Wire.st_ok resp.Wire.status;
  Alcotest.(check int) "map_sg returns every iova" 3 resp.Wire.r_nseg;
  Alcotest.(check int) "executor counted the work" 5 (Executor.executed ex);
  Alcotest.(check int) "completions counted" 5 (Dispatch.executed d);
  Alcotest.(check int) "window fully retired" 0 (Conn.inflight conn);
  Unix.close _rd;
  Unix.close wr

(* {1 Runner} *)

let () =
  Alcotest.run "rio_serve_net"
    [
      ( "wire",
        [
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_response_roundtrip;
          Alcotest.test_case "typed protocol errors" `Quick test_wire_errors;
        ] );
      ( "conn",
        [
          Alcotest.test_case "byte-at-a-time reassembly" `Quick
            test_conn_reassembly;
          Alcotest.test_case "killed on garbage" `Quick test_conn_kill_on_garbage;
          Alcotest.test_case "backpressure admission" `Quick
            test_conn_backpressure;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "affinity pinning" `Quick test_dispatch_affinity;
          Alcotest.test_case "map/translate/unmap roundtrip" `Quick
            test_dispatch_map_translate_roundtrip;
          Alcotest.test_case "batch-full handoff" `Quick test_dispatch_batch_full;
          Alcotest.test_case "bad tenant rejected" `Quick
            test_dispatch_rejects_bad_tenant;
        ] );
      ( "spsc",
        [
          QCheck_alcotest.to_alcotest prop_spsc_oracle;
          Alcotest.test_case "full/empty/wraparound" `Quick
            test_spsc_boundaries;
        ] );
      ( "readiness",
        Alcotest.test_case "select backend" `Quick
          (readiness_pipe_test Readiness.Select)
        ::
        (if Readiness.poll_available then
           [
             Alcotest.test_case "poll backend" `Quick
               (readiness_pipe_test Readiness.Poll);
           ]
         else []) );
      ( "executor",
        [
          Alcotest.test_case "cells through the ring" `Quick
            test_executor_step_roundtrip;
        ] );
    ]
