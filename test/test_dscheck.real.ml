(* Model checking of the two lock-free/locked protocols the parallel
   harness rests on, exhaustively over interleavings with dscheck.

   dscheck explores every schedule of spawned "domains" whose shared
   state lives in its TracedAtomic cells, so the protocols are
   re-stated here against those primitives rather than run through
   Exec.Pool directly (which spawns real domains dscheck cannot
   preempt). The models mirror the code shape:

   - {b Pool steal path} (lib/exec/backend.domains.ml): every task
     index is claimed with a fetch-and-add on its slice cursor, both by
     the owner draining its slice and by a thief stealing from the
     fullest victim. The property: no task is executed twice and none
     is lost, under every interleaving of owner and thief.

   - {b Memo per-key slot} (lib/exec/memo.ml): two workers race to
     fill one key's slot. The lock acquisition is modeled as a CAS
     try-lock (dscheck has no mutexes); the loser observes the
     winner's published value instead of recomputing. The property:
     the computation runs at most once and every finisher reads it.

   - {b SPSC ring hand-off} (lib/serve/net/spsc.ml): the bounded
     single-producer/single-consumer ring carrying request cells
     between the IO domain and a shard executor. Cursors run
     unbounded and are masked per access; a lane is written plainly
     and published by the [tail] store, consumed plainly and released
     by the [head] store. The property: the consumer observes a
     strict in-order prefix of what the producer published — no loss,
     no duplication, no reorder, no read of an unpublished lane —
     under every interleaving.

   This executable only builds when the optional [dscheck] library is
   available: the (enabled_if %{lib-available:dscheck}) guard in
   test/dune skips it cleanly everywhere else (it is exercised by the
   TSan CI job, which installs dscheck). *)

module Atomic = Dscheck.TracedAtomic

(* {1 Pool steal path} *)

(* Two workers, three tasks: worker 0 owns [0,2), worker 1 owns [2,3).
   Worker 1 drains its slice then steals from worker 0's cursor, as in
   Backend.run. [executed.(k)] counts claims of task k. *)
let pool_steal_model () =
  let n = 3 in
  let lo = [| 0; 2; n |] in
  let cursors = [| Atomic.make lo.(0); Atomic.make lo.(1) |] in
  let executed = Array.init n (fun _ -> Atomic.make 0) in
  let claim q =
    let k = Atomic.fetch_and_add cursors.(q) 1 in
    if k < lo.(q + 1) then Some k else None
  in
  let exec k = Atomic.incr executed.(k) in
  let drain q =
    let rec go () =
      match claim q with
      | Some k ->
          exec k;
          go ()
      | None -> ()
    in
    go ()
  in
  Atomic.spawn (fun () -> drain 0);
  Atomic.spawn (fun () ->
      drain 1;
      (* own slice spent: steal from the other queue until it is too *)
      drain 0);
  Atomic.final (fun () ->
      Atomic.check (fun () ->
          let ok = ref true in
          for k = 0 to n - 1 do
            if Atomic.get executed.(k) <> 1 then ok := false
          done;
          !ok))

(* {1 Memo per-key slot} *)

(* slot states: 0 = empty, 1 = computing, 2 = published *)
let memo_slot_model () =
  let state = Atomic.make 0 in
  let computed = Atomic.make 0 in
  let observed_wrong = Atomic.make 0 in
  let worker () =
    if Atomic.compare_and_set state 0 1 then begin
      Atomic.incr computed;
      Atomic.set state 2
    end
    else if Atomic.get state = 2 then begin
      (* loser after publication: must see exactly one computation *)
      if Atomic.get computed <> 1 then Atomic.incr observed_wrong
    end
  in
  Atomic.spawn worker;
  Atomic.spawn worker;
  Atomic.final (fun () ->
      Atomic.check (fun () ->
          Atomic.get computed = 1 && Atomic.get observed_wrong = 0))

(* {1 Serve stop flag} *)

(* The graceful-shutdown protocol (lib/exec/flag.ml + Loadgen.run_until):
   a signal handler raises a monotonic flag; every shard polls it
   between events and retires at the next event boundary. Modeled: one
   controller raising the flag, one shard interleaving poll/execute.
   The property over every interleaving: the flag is monotonic (a
   shard that observed true never sees false again), and a retired
   shard executes no further events. *)
let stop_flag_model () =
  let flag = Atomic.make false in
  let monotonic_violation = Atomic.make 0 in
  Atomic.spawn (fun () -> Atomic.set flag true) (* Flag.set: false -> true only *);
  Atomic.spawn (fun () ->
      (* Loadgen.run_until: poll between events, exit on first true *)
      let events = ref 0 in
      let retired = ref false in
      while (not !retired) && !events < 3 do
        if Atomic.get flag then retired := true
        else incr events (* execute one event *)
      done;
      (* whatever was observed mid-loop, a retired shard re-reading the
         flag must still see it raised *)
      if !retired && not (Atomic.get flag) then
        Atomic.incr monotonic_violation);
  Atomic.final (fun () ->
      Atomic.check (fun () ->
          Atomic.get flag && Atomic.get monotonic_violation = 0))

(* {1 SPSC ring hand-off} *)

(* Restates Spsc.try_push/try_pop verbatim against TracedAtomic
   cursors: capacity 2, a producer attempting three pushes of an
   ascending counter (advancing only on success, as the netloop's
   emit retry does) racing a consumer attempting three pops. The
   lanes themselves are a plain array, exactly as in the real ring:
   the model checks that the cursor protocol alone is what makes the
   plain lane accesses safe. *)
let spsc_ring_model () =
  let cap = 2 in
  let mask = cap - 1 in
  let buf = Array.make cap 0 in
  let head = Atomic.make 0 in
  let tail = Atomic.make 0 in
  let pushed = ref 0 in
  let popped = ref [] in
  let try_push v =
    let t = Atomic.get tail in
    let h = Atomic.get head in
    if t - h > mask then false
    else begin
      buf.(t land mask) <- v;
      (* publication: the lane write above happens-before this store *)
      Atomic.set tail (t + 1);
      true
    end
  in
  let try_pop () =
    let h = Atomic.get head in
    let t = Atomic.get tail in
    if t - h <= 0 then None
    else begin
      let v = buf.(h land mask) in
      Atomic.set head (h + 1);
      Some v
    end
  in
  Atomic.spawn (fun () ->
      let next = ref 1 in
      for _ = 1 to 3 do
        if try_push !next then begin
          incr pushed;
          incr next
        end
      done);
  Atomic.spawn (fun () ->
      for _ = 1 to 3 do
        match try_pop () with
        | Some v -> popped := v :: !popped
        | None -> ()
      done);
  Atomic.final (fun () ->
      Atomic.check (fun () ->
          (* the pops must be exactly 1..k for some k <= pushes: any
             loss, duplication, reorder, or unpublished-lane read
             (which would surface a 0 or a stale value) fails here *)
          let got = List.rev !popped in
          let in_order = List.for_all2 ( = ) got (List.mapi (fun i _ -> i + 1) got) in
          let t = Atomic.get tail and h = Atomic.get head in
          in_order
          && List.length got <= !pushed
          && t - h >= 0
          && t - h <= cap))

let () =
  Atomic.trace pool_steal_model;
  Atomic.trace memo_slot_model;
  Atomic.trace stop_flag_model;
  Atomic.trace spsc_ring_model;
  print_endline
    "dscheck: pool steal path, memo slot, stop flag and spsc ring verified"
