The registry lists every experiment:

  $ riommu-cli list
  table1
  figure7
  figure8
  figure12
  table2
  table3
  iotlb_miss
  prefetchers
  bonnie
  ablations
  interference

An unknown experiment id exits nonzero and names the valid ids:

  $ riommu-cli run table9 --quick
  unknown experiment: table9
  valid experiments:
    table1
    figure7
    figure8
    figure12
    table2
    table3
    iotlb_miss
    prefetchers
    bonnie
    ablations
    interference
  [2]

Several unknown ids are reported together:

  $ riommu-cli run table9 figure99 --quick 2>&1 | head -1
  unknown experiment: table9, figure99

No experiments at all is also an error:

  $ riommu-cli run
  no experiments given; try --all or `riommu-cli list`
  [2]

A parallel run renders byte-for-byte what a sequential run renders:

  $ riommu-cli run iotlb_miss --quick --jobs 1 > seq.out
  $ riommu-cli run iotlb_miss --quick --jobs 4 > par.out
  $ cmp seq.out par.out
