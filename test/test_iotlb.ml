(* Unit tests for the baseline IOTLB model (rio_iotlb). *)

module Iotlb = Rio_iotlb.Iotlb
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

let make ?(capacity = 4) () =
  let clock = Cycles.create () in
  (Iotlb.create ~capacity ~clock ~cost:Cost_model.default (), clock)

let test_miss_then_hit () =
  let t, _ = make () in
  Alcotest.(check (option int)) "cold miss" None (Iotlb.lookup t ~bdf:1 ~vpn:10);
  Iotlb.insert t ~bdf:1 ~vpn:10 42;
  Alcotest.(check (option int)) "hit" (Some 42) (Iotlb.lookup t ~bdf:1 ~vpn:10);
  Alcotest.(check int) "one hit" 1 (Iotlb.hits t);
  Alcotest.(check int) "one miss" 1 (Iotlb.misses t)

let test_keying () =
  let t, _ = make () in
  Iotlb.insert t ~bdf:1 ~vpn:10 100;
  Iotlb.insert t ~bdf:2 ~vpn:10 200;
  Alcotest.(check (option int)) "bdf distinguishes" (Some 100)
    (Iotlb.lookup t ~bdf:1 ~vpn:10);
  Alcotest.(check (option int)) "other device" (Some 200)
    (Iotlb.lookup t ~bdf:2 ~vpn:10);
  Alcotest.(check (option int)) "vpn distinguishes" None (Iotlb.lookup t ~bdf:1 ~vpn:11)

let test_lru_eviction () =
  let t, _ = make ~capacity:2 () in
  Iotlb.insert t ~bdf:0 ~vpn:1 1;
  Iotlb.insert t ~bdf:0 ~vpn:2 2;
  (* touch 1 so 2 becomes LRU *)
  ignore (Iotlb.lookup t ~bdf:0 ~vpn:1);
  Iotlb.insert t ~bdf:0 ~vpn:3 3;
  Alcotest.(check int) "one eviction" 1 (Iotlb.evictions t);
  Alcotest.(check (option int)) "LRU victim gone" None (Iotlb.lookup t ~bdf:0 ~vpn:2);
  Alcotest.(check (option int)) "recently used kept" (Some 1)
    (Iotlb.lookup t ~bdf:0 ~vpn:1);
  Alcotest.(check (option int)) "newcomer present" (Some 3)
    (Iotlb.lookup t ~bdf:0 ~vpn:3)

let test_invalidate_cost_and_effect () =
  let t, clock = make () in
  Iotlb.insert t ~bdf:0 ~vpn:7 7;
  let before = Cycles.now clock in
  Iotlb.invalidate t ~bdf:0 ~vpn:7;
  Alcotest.(check int) "invalidation charges ~2100 cycles"
    Cost_model.default.Cost_model.iotlb_invalidate
    (Cycles.since clock before);
  Alcotest.(check (option int)) "entry gone" None (Iotlb.lookup t ~bdf:0 ~vpn:7);
  (* invalidating an absent entry still costs the command *)
  let before = Cycles.now clock in
  Iotlb.invalidate t ~bdf:0 ~vpn:99;
  Alcotest.(check bool) "absent invalidation still charged" true
    (Cycles.since clock before >= Cost_model.default.Cost_model.iotlb_invalidate)

let test_flush_all () =
  let t, clock = make () in
  for vpn = 1 to 4 do
    Iotlb.insert t ~bdf:0 ~vpn vpn
  done;
  Alcotest.(check int) "full" 4 (Iotlb.occupancy t);
  let before = Cycles.now clock in
  Iotlb.flush_all t;
  Alcotest.(check int) "flush charges one command"
    Cost_model.default.Cost_model.iotlb_global_flush
    (Cycles.since clock before);
  Alcotest.(check int) "empty" 0 (Iotlb.occupancy t)

let test_insert_update_in_place () =
  let t, _ = make ~capacity:2 () in
  Iotlb.insert t ~bdf:0 ~vpn:1 10;
  Iotlb.insert t ~bdf:0 ~vpn:1 20;
  Alcotest.(check int) "no duplicate entries" 1 (Iotlb.occupancy t);
  Alcotest.(check (option int)) "updated" (Some 20) (Iotlb.lookup t ~bdf:0 ~vpn:1)

let test_stale_entry_usable_until_invalidated () =
  (* The primitive behind the deferred-mode vulnerability window: nothing
     implicitly removes an entry when the OS changes the page table. *)
  let t, _ = make () in
  Iotlb.insert t ~bdf:0 ~vpn:5 55;
  (* ... OS unmaps the page in the page table, but defers invalidation. *)
  Alcotest.(check (option int)) "stale entry still hits" (Some 55)
    (Iotlb.lookup t ~bdf:0 ~vpn:5);
  Iotlb.flush_all t;
  Alcotest.(check (option int)) "flush closes the window" None
    (Iotlb.lookup t ~bdf:0 ~vpn:5)

let prop_capacity_never_exceeded =
  QCheck.Test.make ~name:"occupancy never exceeds capacity" ~count:100
    QCheck.(list (pair (int_bound 3) (int_bound 40)))
    (fun ops ->
      let t, _ = make ~capacity:8 () in
      List.iter
        (fun (bdf, vpn) ->
          Iotlb.insert t ~bdf ~vpn (bdf + vpn);
          if Iotlb.occupancy t > 8 then failwith "over capacity")
        ops;
      Iotlb.occupancy t <= 8)

let () =
  Alcotest.run "rio_iotlb"
    [
      ( "iotlb",
        [
          Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
          Alcotest.test_case "keying by bdf and vpn" `Quick test_keying;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "invalidate cost and effect" `Quick
            test_invalidate_cost_and_effect;
          Alcotest.test_case "flush all" `Quick test_flush_all;
          Alcotest.test_case "insert updates in place" `Quick test_insert_update_in_place;
          Alcotest.test_case "stale entries persist until invalidated" `Quick
            test_stale_entry_usable_until_invalidated;
          QCheck_alcotest.to_alcotest prop_capacity_never_exceeded;
        ] );
    ]
