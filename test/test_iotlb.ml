(* Unit tests for the baseline IOTLB model (rio_iotlb). *)

module Iotlb = Rio_iotlb.Iotlb
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model
module Rng = Rio_sim.Rng

let make ?(capacity = 4) () =
  let clock = Cycles.create () in
  (Iotlb.create ~capacity ~clock ~cost:Cost_model.default (), clock)

let test_miss_then_hit () =
  let t, _ = make () in
  Alcotest.(check (option int)) "cold miss" None (Iotlb.lookup t ~bdf:1 ~vpn:10);
  Iotlb.insert t ~bdf:1 ~vpn:10 42;
  Alcotest.(check (option int)) "hit" (Some 42) (Iotlb.lookup t ~bdf:1 ~vpn:10);
  Alcotest.(check int) "one hit" 1 (Iotlb.hits t);
  Alcotest.(check int) "one miss" 1 (Iotlb.misses t)

let test_keying () =
  let t, _ = make () in
  Iotlb.insert t ~bdf:1 ~vpn:10 100;
  Iotlb.insert t ~bdf:2 ~vpn:10 200;
  Alcotest.(check (option int)) "bdf distinguishes" (Some 100)
    (Iotlb.lookup t ~bdf:1 ~vpn:10);
  Alcotest.(check (option int)) "other device" (Some 200)
    (Iotlb.lookup t ~bdf:2 ~vpn:10);
  Alcotest.(check (option int)) "vpn distinguishes" None (Iotlb.lookup t ~bdf:1 ~vpn:11)

let test_lru_eviction () =
  let t, _ = make ~capacity:2 () in
  Iotlb.insert t ~bdf:0 ~vpn:1 1;
  Iotlb.insert t ~bdf:0 ~vpn:2 2;
  (* touch 1 so 2 becomes LRU *)
  ignore (Iotlb.lookup t ~bdf:0 ~vpn:1);
  Iotlb.insert t ~bdf:0 ~vpn:3 3;
  Alcotest.(check int) "one eviction" 1 (Iotlb.evictions t);
  Alcotest.(check (option int)) "LRU victim gone" None (Iotlb.lookup t ~bdf:0 ~vpn:2);
  Alcotest.(check (option int)) "recently used kept" (Some 1)
    (Iotlb.lookup t ~bdf:0 ~vpn:1);
  Alcotest.(check (option int)) "newcomer present" (Some 3)
    (Iotlb.lookup t ~bdf:0 ~vpn:3)

let test_invalidate_cost_and_effect () =
  let t, clock = make () in
  Iotlb.insert t ~bdf:0 ~vpn:7 7;
  let before = Cycles.now clock in
  Iotlb.invalidate t ~bdf:0 ~vpn:7;
  Alcotest.(check int) "invalidation charges ~2100 cycles"
    Cost_model.default.Cost_model.iotlb_invalidate
    (Cycles.since clock before);
  Alcotest.(check (option int)) "entry gone" None (Iotlb.lookup t ~bdf:0 ~vpn:7);
  (* invalidating an absent entry still costs the command *)
  let before = Cycles.now clock in
  Iotlb.invalidate t ~bdf:0 ~vpn:99;
  Alcotest.(check bool) "absent invalidation still charged" true
    (Cycles.since clock before >= Cost_model.default.Cost_model.iotlb_invalidate)

let test_flush_all () =
  let t, clock = make () in
  for vpn = 1 to 4 do
    Iotlb.insert t ~bdf:0 ~vpn vpn
  done;
  Alcotest.(check int) "full" 4 (Iotlb.occupancy t);
  let before = Cycles.now clock in
  Iotlb.flush_all t;
  Alcotest.(check int) "flush charges one command"
    Cost_model.default.Cost_model.iotlb_global_flush
    (Cycles.since clock before);
  Alcotest.(check int) "empty" 0 (Iotlb.occupancy t)

let test_insert_update_in_place () =
  let t, _ = make ~capacity:2 () in
  Iotlb.insert t ~bdf:0 ~vpn:1 10;
  Iotlb.insert t ~bdf:0 ~vpn:1 20;
  Alcotest.(check int) "no duplicate entries" 1 (Iotlb.occupancy t);
  Alcotest.(check (option int)) "updated" (Some 20) (Iotlb.lookup t ~bdf:0 ~vpn:1)

let test_stale_entry_usable_until_invalidated () =
  (* The primitive behind the deferred-mode vulnerability window: nothing
     implicitly removes an entry when the OS changes the page table. *)
  let t, _ = make () in
  Iotlb.insert t ~bdf:0 ~vpn:5 55;
  (* ... OS unmaps the page in the page table, but defers invalidation. *)
  Alcotest.(check (option int)) "stale entry still hits" (Some 55)
    (Iotlb.lookup t ~bdf:0 ~vpn:5);
  Iotlb.flush_all t;
  Alcotest.(check (option int)) "flush closes the window" None
    (Iotlb.lookup t ~bdf:0 ~vpn:5)

let test_find_exn () =
  let t, _ = make () in
  (match Iotlb.find_exn t ~bdf:1 ~vpn:10 with
  | _ -> Alcotest.fail "cold find_exn should raise"
  | exception Not_found -> ());
  Iotlb.insert t ~bdf:1 ~vpn:10 42;
  Alcotest.(check int) "hit returns the value" 42 (Iotlb.find_exn t ~bdf:1 ~vpn:10);
  Alcotest.(check int) "shares the hit counter with lookup" 1 (Iotlb.hits t);
  Alcotest.(check int) "shares the miss counter with lookup" 1 (Iotlb.misses t)

(* The packed-key open-addressing implementation against the obvious
   reference: an assoc list kept in MRU-first order. Both sides see the
   same 10k random operations; every observable - lookup results, LRU
   victims and their order, iteration order, occupancy, counters - must
   agree. *)
let prop_matches_reference_model =
  QCheck.Test.make ~name:"matches assoc-list LRU reference over 10k random ops"
    ~count:5
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let capacity = 8 in
      let evicted = ref [] and expect_evicted = ref [] in
      let clock = Cycles.create () in
      let t =
        Iotlb.create
          ~on_evict:(fun ~bdf ~vpn -> evicted := (bdf, vpn) :: !evicted)
          ~capacity ~clock ~cost:Cost_model.default ()
      in
      let model = ref [] in
      let mhits = ref 0 and mmisses = ref 0 in
      let model_lookup key =
        match List.assoc_opt key !model with
        | Some v ->
            incr mhits;
            model := (key, v) :: List.remove_assoc key !model;
            Some v
        | None ->
            incr mmisses;
            None
      in
      let model_insert key v =
        if List.mem_assoc key !model then
          model := (key, v) :: List.remove_assoc key !model
        else begin
          if List.length !model = capacity then begin
            let victim, _ = List.nth !model (capacity - 1) in
            expect_evicted := victim :: !expect_evicted;
            model := List.filteri (fun i _ -> i < capacity - 1) !model
          end;
          model := (key, v) :: !model
        end
      in
      for step = 1 to 10_000 do
        let bdf = Rng.int rng 3 and vpn = Rng.int rng 24 in
        let key = (bdf, vpn) in
        match Rng.int rng 100 with
        | op when op < 35 ->
            model_insert key step;
            Iotlb.insert t ~bdf ~vpn step
        | op when op < 70 ->
            let expected = model_lookup key in
            if Iotlb.lookup t ~bdf ~vpn <> expected then
              failwith "lookup mismatch"
        | op when op < 80 -> (
            let expected = model_lookup key in
            match Iotlb.find_exn t ~bdf ~vpn with
            | v -> if expected <> Some v then failwith "find_exn mismatch"
            | exception Not_found ->
                if expected <> None then failwith "find_exn missed a hit")
        | op when op < 88 ->
            model := List.remove_assoc key !model;
            Iotlb.invalidate t ~bdf ~vpn
        | op when op < 95 ->
            let present = List.mem_assoc key !model in
            model := List.remove_assoc key !model;
            if Iotlb.drop t ~bdf ~vpn <> present then failwith "drop mismatch"
        | _ ->
            if Iotlb.occupancy t <> List.length !model then
              failwith "occupancy mismatch";
            let order = ref [] in
            Iotlb.iter t (fun ~bdf ~vpn _ -> order := (bdf, vpn) :: !order);
            if List.rev !order <> List.map fst !model then
              failwith "iter order mismatch"
      done;
      Iotlb.hits t = !mhits
      && Iotlb.misses t = !mmisses
      && Iotlb.evictions t = List.length !expect_evicted
      && !evicted = !expect_evicted)

let prop_capacity_never_exceeded =
  QCheck.Test.make ~name:"occupancy never exceeds capacity" ~count:100
    QCheck.(list (pair (int_bound 3) (int_bound 40)))
    (fun ops ->
      let t, _ = make ~capacity:8 () in
      List.iter
        (fun (bdf, vpn) ->
          Iotlb.insert t ~bdf ~vpn (bdf + vpn);
          if Iotlb.occupancy t > 8 then failwith "over capacity")
        ops;
      Iotlb.occupancy t <= 8)

let () =
  Alcotest.run "rio_iotlb"
    [
      ( "iotlb",
        [
          Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
          Alcotest.test_case "keying by bdf and vpn" `Quick test_keying;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "invalidate cost and effect" `Quick
            test_invalidate_cost_and_effect;
          Alcotest.test_case "flush all" `Quick test_flush_all;
          Alcotest.test_case "insert updates in place" `Quick test_insert_update_in_place;
          Alcotest.test_case "stale entries persist until invalidated" `Quick
            test_stale_entry_usable_until_invalidated;
          Alcotest.test_case "find_exn" `Quick test_find_exn;
          QCheck_alcotest.to_alcotest prop_capacity_never_exceeded;
          QCheck_alcotest.to_alcotest prop_matches_reference_model;
        ] );
    ]
