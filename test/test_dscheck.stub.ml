(* Selected by test/dune when the optional [dscheck] library is not
   installed. The model-checking run is a clean skip, not a failure:
   the real interleaving exploration lives in test_dscheck.real.ml and
   is exercised by the tsan-exec CI job, which installs dscheck. *)

let () = print_endline "dscheck not available: model-checking skipped"
