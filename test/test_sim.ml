(* Unit and property tests for the simulation substrate (rio_sim). *)

open Rio_sim

let test_cycles_basic () =
  let c = Cycles.create () in
  Alcotest.(check int) "starts at zero" 0 (Cycles.now c);
  Cycles.charge c 100;
  Cycles.charge c 42;
  Alcotest.(check int) "accumulates" 142 (Cycles.now c);
  let start = Cycles.now c in
  Cycles.charge c 8;
  Alcotest.(check int) "since" 8 (Cycles.since c start);
  Cycles.reset c;
  Alcotest.(check int) "reset" 0 (Cycles.now c)

let test_cycles_measure () =
  let c = Cycles.create () in
  Cycles.charge c 10;
  let result, cost =
    Cycles.measure c (fun () ->
        Cycles.charge c 25;
        "done")
  in
  Alcotest.(check string) "result" "done" result;
  Alcotest.(check int) "measured" 25 cost;
  Alcotest.(check int) "clock kept" 35 (Cycles.now c)

let test_cost_model_conversions () =
  let cm = Cost_model.default in
  Alcotest.(check (float 1e-9)) "3.1e9 cycles/s" 3.1e9 (Cost_model.cycles_per_second cm);
  Alcotest.(check (float 1e-6)) "3100 cycles = 1us" 1.0 (Cost_model.cycles_to_us cm 3100);
  Alcotest.(check (float 1e-6)) "31 cycles = 10ns" 10.0 (Cost_model.cycles_to_ns cm 31)

let test_cost_model_calibration () =
  let cm = Cost_model.default in
  (* Invalidation dominates unmap per Table 1 (~2,127 cycles); the paper's
     own simulation busy-waits 2,150. Keep us within that band. *)
  Alcotest.(check bool) "iotlb invalidation ~2100"
    true
    (cm.Cost_model.iotlb_invalidate >= 2000 && cm.Cost_model.iotlb_invalidate <= 2200);
  (* IOTLB miss = 4-reference walk ~1,532 cycles (§5.3). *)
  let walk = 4 * cm.Cost_model.io_walk_ref in
  Alcotest.(check bool) "4-ref walk ~1532" true (walk >= 1400 && walk <= 1650)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 in
  let b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done;
  let c = Rng.create ~seed:43 in
  Alcotest.(check bool) "different seed differs" true
    (Rng.next_int64 (Rng.create ~seed:42) <> Rng.next_int64 c)

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 10 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_bounds () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "int in bound" true (x >= 0 && x < 17);
    let y = Rng.int_in rng 5 9 in
    Alcotest.(check bool) "int_in inclusive" true (y >= 5 && y <= 9);
    let f = Rng.float rng 2.5 in
    Alcotest.(check bool) "float in bound" true (f >= 0. && f < 2.5)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_summary_stats () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-6)) "stddev (sample)" 2.13809 (Stats.Summary.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "total" 40.0 (Stats.Summary.total s)

let test_summary_merge () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  let all = Stats.Summary.create () in
  List.iter
    (fun x ->
      Stats.Summary.add (if x < 5. then a else b) x;
      Stats.Summary.add all x)
    [ 1.; 2.; 3.; 6.; 7.; 8.; 9. ];
  let m = Stats.Summary.merge a b in
  Alcotest.(check int) "merged count" (Stats.Summary.count all) (Stats.Summary.count m);
  Alcotest.(check (float 1e-9)) "merged mean" (Stats.Summary.mean all) (Stats.Summary.mean m);
  Alcotest.(check (float 1e-6)) "merged stddev" (Stats.Summary.stddev all)
    (Stats.Summary.stddev m)

let test_samples_percentiles () =
  let s = Stats.Samples.create () in
  for i = 1 to 100 do
    Stats.Samples.add s (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "median" 50.5 (Stats.Samples.percentile s 50.);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.Samples.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.Samples.percentile s 100.);
  Alcotest.(check (float 0.5)) "p99" 99.0 (Stats.Samples.percentile s 99.)

let test_samples_empty_percentile () =
  let s = Stats.Samples.create () in
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.Samples.percentile: empty") (fun () ->
      ignore (Stats.Samples.percentile s 50.))

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:10 in
  List.iter (Stats.Histogram.add h) [ -1.; 0.; 0.5; 5.; 9.99; 10.; 100. ];
  Alcotest.(check int) "total" 7 (Stats.Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Stats.Histogram.overflow h);
  Alcotest.(check int) "bucket 0" 2 (Stats.Histogram.bucket_count h 0);
  Alcotest.(check int) "bucket 5" 1 (Stats.Histogram.bucket_count h 5);
  Alcotest.(check int) "bucket 9" 1 (Stats.Histogram.bucket_count h 9);
  let lo, hi = Stats.Histogram.bucket_bounds h 3 in
  Alcotest.(check (float 1e-9)) "bounds lo" 3.0 lo;
  Alcotest.(check (float 1e-9)) "bounds hi" 4.0 hi

let test_distribution_means () =
  Alcotest.(check (float 1e-9)) "constant" 5.0 (Distribution.mean (Constant 5.));
  Alcotest.(check (float 1e-9)) "uniform" 3.0 (Distribution.mean (Uniform (1., 5.)));
  Alcotest.(check (float 1e-9)) "exponential" 0.25 (Distribution.mean (Exponential 4.));
  Alcotest.(check (float 1e-9)) "mix" 3.0
    (Distribution.mean (Bernoulli_mix (0.5, Constant 2., Constant 4.)))

let test_distribution_sampling () =
  let rng = Rng.create ~seed:11 in
  let d = Distribution.Exponential 0.5 in
  let s = Stats.Summary.create () in
  for _ = 1 to 20_000 do
    Stats.Summary.add s (Distribution.sample d rng)
  done;
  Alcotest.(check bool) "exponential mean ~2" true
    (abs_float (Stats.Summary.mean s -. 2.0) < 0.1)

let test_zipf_sampling () =
  let rng = Rng.create ~seed:13 in
  let d = Distribution.Zipf (100, 1.0) in
  let counts = Array.make 101 0 in
  for _ = 1 to 10_000 do
    let k = Distribution.sample_int d rng in
    Alcotest.(check bool) "rank in range" true (k >= 1 && k <= 100);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 1 most popular" true (counts.(1) > counts.(10));
  Alcotest.(check bool) "rank 10 beats rank 90" true (counts.(10) > counts.(90))

let test_event_queue_ordering () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "starts empty" true (Event_queue.is_empty q);
  Event_queue.push q ~time:30 "c";
  Event_queue.push q ~time:10 "a";
  Event_queue.push q ~time:20 "b";
  Alcotest.(check (option int)) "peek" (Some 10) (Event_queue.peek_time q);
  Alcotest.(check (option (pair int string))) "pop a" (Some (10, "a")) (Event_queue.pop q);
  Alcotest.(check (option (pair int string))) "pop b" (Some (20, "b")) (Event_queue.pop q);
  Alcotest.(check (option (pair int string))) "pop c" (Some (30, "c")) (Event_queue.pop q);
  Alcotest.(check (option (pair int string))) "pop empty" None (Event_queue.pop q)

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iteri (fun i s -> Event_queue.push q ~time:(5 + (0 * i)) s) [ "x"; "y"; "z" ];
  let order = List.init 3 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "insertion order on tie" [ "x"; "y"; "z" ] order

(* The determinism guarantee the multi-tenant scheduler builds on: when
   several tenants' events land on the same virtual time, they pop in
   the order they were pushed, even with pops interleaved between the
   pushes. *)
let test_event_queue_ties_across_interleaved_pops () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:5 "a1";
  Event_queue.push q ~time:5 "a2";
  Event_queue.push q ~time:3 "early";
  Alcotest.(check (option (pair int string))) "earlier time first"
    (Some (3, "early")) (Event_queue.pop q);
  (* new same-time arrivals after a pop still rank behind survivors *)
  Event_queue.push q ~time:5 "a3";
  Event_queue.push q ~time:5 "a4";
  let order = List.init 4 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "insertion order preserved"
    [ "a1"; "a2"; "a3"; "a4" ] order

let prop_event_queue_stable_ties =
  (* With times drawn from a tiny range, ties are plentiful: a full
     drain must yield, within every time value, strictly increasing
     insertion sequence numbers. *)
  QCheck.Test.make ~name:"event queue is FIFO within equal times" ~count:300
    QCheck.(list (int_bound 4))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.push q ~time:t i) times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, seq) -> drain ((t, seq) :: acc)
      in
      let popped = drain [] in
      let rec stable = function
        | (t1, s1) :: ((t2, s2) :: _ as rest) ->
            (t1 < t2 || (t1 = t2 && s1 < s2)) && stable rest
        | _ -> true
      in
      stable popped)

let prop_event_queue_sorted =
  QCheck.Test.make ~name:"event queue pops in nondecreasing time order"
    ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.push q ~time:t i) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain min_int)

let test_event_queue_pop_exn_next_time () =
  let q = Event_queue.create () in
  (match Event_queue.next_time q with
  | _ -> Alcotest.fail "next_time on empty should raise"
  | exception Not_found -> ());
  (match Event_queue.pop_exn q with
  | _ -> Alcotest.fail "pop_exn on empty should raise"
  | exception Not_found -> ());
  Event_queue.push q ~time:20 "b";
  Event_queue.push q ~time:10 "a";
  Alcotest.(check int) "next_time is the minimum" 10 (Event_queue.next_time q);
  Alcotest.(check string) "pop_exn pops the minimum" "a" (Event_queue.pop_exn q);
  Alcotest.(check string) "then the next" "b" (Event_queue.pop_exn q);
  Alcotest.(check bool) "empty again" true (Event_queue.is_empty q)

(* Satellite: the heap's spare capacity must not pin popped payloads.
   Allocate and pop inside a closure so no local root outlives it, then
   a weak pointer tells us whether the queue's payload array was the
   last thing keeping the value alive. *)
let test_event_queue_releases_popped_payloads () =
  let q = Event_queue.create () in
  let w = Weak.create 1 in
  let push_and_pop () =
    let payload = Bytes.make 64 'p' in
    Weak.set w 0 (Some payload);
    Event_queue.push q ~time:2 (Bytes.make 16 'k');
    Event_queue.push q ~time:1 payload;
    assert (Event_queue.pop_exn q == payload)
  in
  push_and_pop ();
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "queue still holds the other event" false
    (Event_queue.is_empty q);
  Alcotest.(check bool) "popped payload was not pinned by the heap" true
    (Weak.get w 0 = None)

(* Random push/pop interleavings (not just push-all-then-drain), seeded
   through the repo's own Rng: every pop must return the minimum
   (time, seq) of the current contents, so within any drain phase pops
   come out in nondecreasing (time, seq) order. *)
let prop_event_queue_interleaved_matches_model =
  QCheck.Test.make
    ~name:"random push/pop interleavings pop the (time, seq) minimum"
    ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let q = Event_queue.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      for _ = 1 to 2_000 do
        if Rng.int rng 100 < 55 || !model = [] then begin
          let time = Rng.int rng 50 in
          Event_queue.push q ~time (time, !seq);
          model := (time, !seq) :: !model;
          incr seq
        end
        else begin
          let expected =
            List.fold_left min (List.hd !model) (List.tl !model)
          in
          if Event_queue.next_time q <> fst expected then ok := false;
          if Event_queue.pop_exn q <> expected then ok := false;
          model := List.filter (fun e -> e <> expected) !model
        end
      done;
      !ok && Event_queue.length q = List.length !model)

(* The timing wheel's own geometry: times spread across many orders of
   magnitude force cascades between levels (a far-future event parked
   high up must re-bucket as the cursor approaches), and pushing a time
   at or before the cursor after pops have advanced it exercises the
   overdue path. A naive sorted model is the oracle; FIFO on ties must
   survive both. *)
let prop_event_queue_cascade_and_overdue =
  QCheck.Test.make
    ~name:"wheel matches model under large spreads, cascades and overdue pushes"
    ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let q = Event_queue.create () in
      let model = ref [] in
      let seq = ref 0 in
      let popped_max = ref 0 in
      let ok = ref true in
      for _ = 1 to 1_500 do
        if Rng.int rng 100 < 50 || !model = [] then begin
          let time =
            match Rng.int rng 4 with
            | 0 -> Rng.int rng 8 (* slot-level ties *)
            | 1 -> Rng.int rng 256 (* level 0 *)
            | 2 -> Rng.int rng (1 lsl 20) (* mid levels *)
            | _ ->
                (* deliberately overdue or just-at-cursor: behind every
                   pop so far *)
                Rng.int rng (!popped_max + 1)
          in
          (* far-future outliers park in the top levels and must cascade
             down correctly as drains advance the cursor *)
          let time =
            if Rng.int rng 20 = 0 then time + (1 lsl (30 + Rng.int rng 10))
            else time
          in
          Event_queue.push q ~time (time, !seq);
          model := (time, !seq) :: !model;
          incr seq
        end
        else begin
          let expected = List.fold_left min (List.hd !model) (List.tl !model) in
          if Event_queue.next_time q <> fst expected then ok := false;
          let got = Event_queue.pop_exn q in
          if got <> expected then ok := false;
          popped_max := max !popped_max (fst got);
          model := List.filter (fun e -> e <> expected) !model
        end
      done;
      (* full drain: remaining events must come out in (time, seq) order *)
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ((time, _) as e)) ->
            t = time && e > last && drain e
      in
      !ok && drain (min_int, min_int) && Event_queue.length q = 0)

let prop_summary_mean_in_range =
  QCheck.Test.make ~name:"summary mean lies within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      Stats.Summary.mean s >= Stats.Summary.min s -. 1e-9
      && Stats.Summary.mean s <= Stats.Summary.max s +. 1e-9)

let prop_percentile_monotonic =
  QCheck.Test.make ~name:"percentiles are monotonic in rank" ~count:100
    QCheck.(list_of_size Gen.(2 -- 100) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Stats.Samples.create () in
      List.iter (Stats.Samples.add s) xs;
      let p25 = Stats.Samples.percentile s 25. in
      let p50 = Stats.Samples.percentile s 50. in
      let p75 = Stats.Samples.percentile s 75. in
      p25 <= p50 && p50 <= p75)

let () =
  Alcotest.run "rio_sim"
    [
      ( "cycles",
        [
          Alcotest.test_case "basic accounting" `Quick test_cycles_basic;
          Alcotest.test_case "measure" `Quick test_cycles_measure;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "time conversions" `Quick test_cost_model_conversions;
          Alcotest.test_case "paper calibration bands" `Quick test_cost_model_calibration;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_summary_stats;
          Alcotest.test_case "summary merge" `Quick test_summary_merge;
          Alcotest.test_case "percentiles" `Quick test_samples_percentiles;
          Alcotest.test_case "empty percentile raises" `Quick test_samples_empty_percentile;
          Alcotest.test_case "histogram" `Quick test_histogram;
          QCheck_alcotest.to_alcotest prop_summary_mean_in_range;
          QCheck_alcotest.to_alcotest prop_percentile_monotonic;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "analytic means" `Quick test_distribution_means;
          Alcotest.test_case "exponential sampling" `Quick test_distribution_sampling;
          Alcotest.test_case "zipf sampling" `Quick test_zipf_sampling;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_event_queue_ordering;
          Alcotest.test_case "fifo on ties" `Quick test_event_queue_fifo_ties;
          Alcotest.test_case "ties across interleaved pops" `Quick
            test_event_queue_ties_across_interleaved_pops;
          Alcotest.test_case "pop_exn and next_time" `Quick
            test_event_queue_pop_exn_next_time;
          Alcotest.test_case "popped payloads are released" `Quick
            test_event_queue_releases_popped_payloads;
          QCheck_alcotest.to_alcotest prop_event_queue_sorted;
          QCheck_alcotest.to_alcotest prop_event_queue_stable_ties;
          QCheck_alcotest.to_alcotest prop_event_queue_interleaved_matches_model;
          QCheck_alcotest.to_alcotest prop_event_queue_cascade_and_overdue;
        ] );
    ]
