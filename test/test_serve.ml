(* Tests for the serve subsystem (rio_serve): HDR histogram quantile
   bound and merge properties against an exact sorted-array oracle,
   scatter-gather map/unmap semantics (including atomic exhaustion
   rollback), translate_exn parity with the boxed translate, engine
   determinism across --jobs, the stop flag, and a stress test of
   attach/detach churn during active translation on the sharded path. *)

module Addr = Rio_memory.Addr
module Frame_allocator = Rio_memory.Frame_allocator
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model
module Bdf = Rio_iommu.Bdf
module Hw = Rio_iommu.Hw
module Shared_iotlb = Rio_domain.Shared_iotlb
module Manager = Rio_domain.Manager
module Histogram = Rio_serve.Histogram
module Shard = Rio_serve.Shard
module Server = Rio_serve.Server
module Flag = Rio_exec.Flag

(* {1 Histogram: oracle properties} *)

let quantiles = [ 0.5; 0.9; 0.99; 0.999; 1.0 ]

let exact_quantile sorted q =
  let n = Array.length sorted in
  let r = int_of_float (Float.ceil (q *. float_of_int n)) in
  let r = if r < 1 then 1 else if r > n then n else r in
  sorted.(r - 1)

(* values spanning the exact region, several octaves, and the tail *)
let value_gen =
  QCheck.Gen.(
    oneof
      [
        int_bound 63;
        int_bound 5_000;
        int_bound 1_000_000;
        int_bound ((1 lsl 40) + 100);
      ])

let values_arb =
  QCheck.make
    ~print:QCheck.Print.(list int)
    QCheck.Gen.(list_size (int_range 1 300) value_gen)

let prop_quantile_bound =
  QCheck.Test.make ~count:500 ~name:"quantile within bucket of exact rank"
    values_arb (fun vs ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) vs;
      let max_value = 1 lsl 40 in
      let sorted =
        let a = Array.of_list vs in
        let a = Array.map (fun v -> min (max v 0) max_value) a in
        Array.sort compare a;
        a
      in
      let rel = Histogram.rel_error_bound h in
      List.for_all
        (fun q ->
          let exact = exact_quantile sorted q in
          let got = Histogram.quantile h q in
          Histogram.bucket_of h got = Histogram.bucket_of h exact
          && got >= exact
          && (exact = 0
             || float_of_int (got - exact) <= (rel *. float_of_int exact) +. 1e-6))
        quantiles)

let prop_merge_is_union =
  QCheck.Test.make ~count:500 ~name:"merge(a,b) = record(a @ b)"
    (QCheck.pair values_arb values_arb) (fun (xs, ys) ->
      let ha = Histogram.create () in
      let hb = Histogram.create () in
      let hu = Histogram.create () in
      List.iter (Histogram.record ha) xs;
      List.iter (Histogram.record hb) ys;
      List.iter (Histogram.record hu) (xs @ ys);
      Histogram.merge_into ~dst:ha hb;
      Histogram.equal ha hu
      && List.for_all
           (fun q -> Histogram.quantile ha q = Histogram.quantile hu q)
           quantiles)

let test_histogram_edges () =
  let h = Histogram.create ~sub_bits:5 ~max_value:1000 () in
  Alcotest.(check int) "empty quantile" 0 (Histogram.quantile h 0.5);
  Alcotest.(check int) "empty max" 0 (Histogram.max_recorded h);
  Alcotest.(check (float 1e-9)) "empty mean" 0. (Histogram.mean h);
  Histogram.record h (-5);
  Alcotest.(check int) "negative clamps to 0" 0 (Histogram.quantile h 1.0);
  Histogram.record h 5_000;
  Alcotest.(check int) "overflow clamps to max_value" 1_000
    (Histogram.max_recorded h);
  (* values below 2*2^sub_bits are exact *)
  let e = Histogram.create () in
  List.iter (Histogram.record e) [ 3; 17; 42; 63 ];
  Alcotest.(check int) "exact region p50" 17 (Histogram.quantile e 0.5);
  Alcotest.(check int) "exact region p100" 63 (Histogram.quantile e 1.0);
  Alcotest.(check (float 1e-9)) "mean is exact" 31.25 (Histogram.mean e);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Histogram.quantile: q must be in (0, 1]") (fun () ->
      ignore (Histogram.quantile e 0.));
  Alcotest.check_raises "bad sub_bits"
    (Invalid_argument "Histogram.create: sub_bits must be in [1, 15]")
    (fun () -> ignore (Histogram.create ~sub_bits:0 ()));
  let g = Histogram.create ~sub_bits:6 () in
  Alcotest.check_raises "merge geometry mismatch"
    (Invalid_argument "Histogram.merge_into: geometry mismatch") (fun () ->
      Histogram.merge_into ~dst:g e);
  Histogram.reset e;
  Alcotest.(check int) "reset empties" 0 (Histogram.count e)

(* {1 Manager: scatter-gather and translate_exn} *)

let make_mgr ?(iotlb_capacity = 32) () =
  let clock = Cycles.create () in
  let frames = Frame_allocator.create ~total_frames:100_000 in
  let mgr =
    Manager.create ~iotlb_policy:Shared_iotlb.Shared ~iotlb_capacity
      ~invalidation:Manager.Per_domain ~policy:Manager.Immediate ~frames ~clock
      ~cost:Cost_model.default ()
  in
  (mgr, frames)

let test_map_sg_roundtrip () =
  let mgr, frames = make_mgr () in
  let d =
    Manager.add_domain mgr ~name:"sg" ~bdf:(Bdf.make ~bus:1 ~device:0 ~func:0) ()
  in
  let n = 4 in
  let segs =
    Array.init n (fun i -> (Frame_allocator.alloc_exn frames, 512 * (i + 1)))
  in
  let iovas = Array.make n 0 in
  (match Manager.map_sg mgr d ~segs ~iovas ~read:true ~write:true () with
  | Ok k -> Alcotest.(check int) "all segments mapped" n k
  | Error `Exhausted -> Alcotest.fail "map_sg exhausted");
  Alcotest.(check int) "distinct iovas" n
    (List.length (List.sort_uniq compare (Array.to_list iovas)));
  Alcotest.(check int) "live mappings" n (Manager.live_mappings mgr d);
  Array.iteri
    (fun i iova ->
      let phys =
        Manager.translate_exn mgr ~rid:(Manager.rid d) ~iova ~write:true
      in
      Alcotest.(check int)
        (Printf.sprintf "seg %d translates to its frame" i)
        (Addr.to_int (fst segs.(i)))
        (Addr.to_int phys))
    iovas;
  (match Manager.unmap_sg mgr d ~iovas () with
  | Ok () -> ()
  | Error `Not_mapped -> Alcotest.fail "unmap_sg failed");
  Alcotest.(check int) "all unmapped" 0 (Manager.live_mappings mgr d);
  Alcotest.(check bool) "double unmap_sg reports not mapped" true
    (Manager.unmap_sg mgr d ~iovas () = Error `Not_mapped)

let test_map_sg_rollback () =
  let mgr, frames = make_mgr () in
  (* 8 one-page segments against a 4-pfn IOVA space: must exhaust
     mid-batch and roll back atomically *)
  let d =
    Manager.add_domain mgr ~name:"tiny"
      ~bdf:(Bdf.make ~bus:1 ~device:0 ~func:0)
      ~iova_limit_pfn:4 ()
  in
  let segs =
    Array.init 8 (fun _ -> (Frame_allocator.alloc_exn frames, 4096))
  in
  let iovas = Array.make 8 0 in
  Alcotest.(check bool) "batch exhausts" true
    (Manager.map_sg mgr d ~segs ~iovas ~read:true ~write:true () = Error `Exhausted);
  Alcotest.(check int) "rollback leaves nothing mapped" 0
    (Manager.live_mappings mgr d);
  (* the rolled-back ranges are reusable: a fitting batch now succeeds *)
  (match Manager.map_sg mgr d ~segs ~n:2 ~iovas ~read:true ~write:true () with
  | Ok k -> Alcotest.(check int) "small batch fits after rollback" 2 k
  | Error `Exhausted -> Alcotest.fail "space not released by rollback");
  Alcotest.(check int) "two live" 2 (Manager.live_mappings mgr d)

let test_translate_exn_parity () =
  let mgr, frames = make_mgr () in
  let d =
    Manager.add_domain mgr ~name:"p" ~bdf:(Bdf.make ~bus:1 ~device:0 ~func:0) ()
  in
  let buf = Frame_allocator.alloc_exn frames in
  let iova =
    Result.get_ok (Manager.map mgr d ~phys:buf ~bytes:4096 ~read:true ~write:false)
  in
  let rid = Manager.rid d in
  (* hit path: both report the same phys, offsets preserved *)
  let boxed = Manager.translate mgr ~rid ~iova:(iova + 129) ~write:false in
  let unboxed = Manager.translate_exn mgr ~rid ~iova:(iova + 129) ~write:false in
  Alcotest.(check bool) "same phys as translate" true
    (boxed = Ok unboxed);
  Alcotest.(check int) "offset preserved" 129 (Addr.page_offset unboxed);
  (* permission fault: read-only mapping refuses a write *)
  Alcotest.check_raises "write to read-only faults" Manager.Translation_fault
    (fun () -> ignore (Manager.translate_exn mgr ~rid ~iova ~write:true));
  (* no-translation fault *)
  Alcotest.check_raises "unmapped iova faults" Manager.Translation_fault
    (fun () ->
      ignore (Manager.translate_exn mgr ~rid ~iova:0xDEAD000 ~write:false));
  Alcotest.(check int) "faults recorded like translate" 2
    (Manager.faults mgr d);
  (* unknown rid *)
  Alcotest.check_raises "unknown rid faults" Manager.Translation_fault
    (fun () ->
      ignore (Manager.translate_exn mgr ~rid:0xFFFF ~iova ~write:false));
  Alcotest.(check int) "unknown-rid counter" 1 (Manager.unknown_rid_faults mgr)

let test_online_attach_policies () =
  (* Shared: attach mid-traffic works, detach frees the bdf for reuse *)
  let mgr, frames = make_mgr () in
  let a =
    Manager.add_domain mgr ~name:"a" ~bdf:(Bdf.make ~bus:1 ~device:0 ~func:0) ()
  in
  let buf = Frame_allocator.alloc_exn frames in
  let iova =
    Result.get_ok (Manager.map mgr a ~phys:buf ~bytes:4096 ~read:true ~write:true)
  in
  ignore (Manager.translate_exn mgr ~rid:(Manager.rid a) ~iova ~write:false);
  let late =
    Manager.add_domain mgr ~name:"late"
      ~bdf:(Bdf.make ~bus:2 ~device:0 ~func:0)
      ()
  in
  let iova2 =
    Result.get_ok
      (Manager.map mgr late ~phys:buf ~bytes:4096 ~read:true ~write:true)
  in
  ignore
    (Manager.translate_exn mgr ~rid:(Manager.rid late) ~iova:iova2 ~write:false);
  Manager.remove_domain mgr late;
  let reused =
    Manager.add_domain mgr ~name:"reuse"
      ~bdf:(Bdf.make ~bus:2 ~device:0 ~func:0)
      ()
  in
  Alcotest.(check bool) "bdf reusable after detach" true
    (Manager.domain_name reused = "reuse");
  (* Partitioned: slice geometry is frozen at first traffic *)
  let clock = Cycles.create () in
  let frames2 = Frame_allocator.create ~total_frames:10_000 in
  let pmgr =
    Manager.create ~iotlb_policy:Shared_iotlb.Partitioned ~iotlb_capacity:32
      ~invalidation:Manager.Per_domain ~policy:Manager.Immediate ~frames:frames2
      ~clock ~cost:Cost_model.default ()
  in
  let p =
    Manager.add_domain pmgr ~name:"p" ~bdf:(Bdf.make ~bus:1 ~device:0 ~func:0) ()
  in
  let pbuf = Frame_allocator.alloc_exn frames2 in
  let piova =
    Result.get_ok
      (Manager.map pmgr p ~phys:pbuf ~bytes:4096 ~read:true ~write:true)
  in
  ignore (Manager.translate_exn pmgr ~rid:(Manager.rid p) ~iova:piova ~write:false);
  Alcotest.check_raises "partitioned refuses late attach"
    (Invalid_argument
       "Shared_iotlb.register: traffic already started (partitioned slice \
        geometry is fixed at first traffic)") (fun () ->
      ignore
        (Manager.add_domain pmgr ~name:"late"
           ~bdf:(Bdf.make ~bus:2 ~device:0 ~func:0)
           ()))

(* {1 Stop flag} *)

let test_flag () =
  let f = Flag.create () in
  Alcotest.(check bool) "starts false" false (Flag.get f);
  Flag.set f;
  Alcotest.(check bool) "set raises it" true (Flag.get f);
  Flag.set f;
  Alcotest.(check bool) "set is idempotent" true (Flag.get f)

(* {1 Server engine} *)

let small_config =
  {
    Server.default_config with
    Server.shards = 3;
    tenants = 4;
    flows_per_tenant = 2;
    duration_s = 0.002;
    interval_s = 0.001;
  }

let test_server_deterministic_across_jobs () =
  let run jobs =
    let r = Server.run { small_config with Server.jobs } in
    (Server.render_summary r, Server.final r)
  in
  let s1, f1 = run 1 in
  let s4, f4 = run 4 in
  let s0, _ = run 0 in
  Alcotest.(check string) "summary identical jobs 1 vs 4" s1 s4;
  Alcotest.(check string) "summary identical jobs 1 vs 0" s1 s0;
  Alcotest.(check bool) "snapshots identical" true (f1 = f4);
  Alcotest.(check bool) "serves requests" true (f1.Server.requests > 0);
  Alcotest.(check bool) "translates" true
    (f1.Server.ops.(Shard.op_index Shard.Translate) > 0);
  Alcotest.(check int) "no faults" 0 f1.Server.faults;
  Alcotest.(check int) "no drops" 0 f1.Server.dropped

let test_server_two_ticks () =
  let r = Server.run { small_config with Server.jobs = 2 } in
  Alcotest.(check int) "one snapshot per interval" 2
    (List.length r.Server.snapshots);
  match r.Server.snapshots with
  | [ a; b ] ->
      Alcotest.(check bool) "cumulative ops grow" true
        (Array.for_all2 ( <= ) a.Server.ops b.Server.ops);
      Alcotest.(check bool) "not stopped" false r.Server.stopped
  | _ -> Alcotest.fail "expected two snapshots"

let test_server_stop_flag () =
  let stop = Flag.create () in
  Flag.set stop;
  let r = Server.run ~stop { small_config with Server.jobs = 2 } in
  Alcotest.(check bool) "reports stopped" true r.Server.stopped;
  Alcotest.(check int) "retired before serving" 0
    (Server.final r).Server.requests

(* {1 Sharded attach/detach churn during active translation} *)

(* Each task owns a private shard (the service's isolation unit) and
   interleaves tenant attach/map/translate/detach churn with steady
   translation traffic from its resident tenants, exactly the pattern a
   live reconfiguration produces. Running the same task array under
   jobs 1 and jobs 4 must produce identical digests: attach/detach on
   one shard cannot be affected by - or affect - translation running
   concurrently on other shards. *)
let churn_task sid () =
  let shard =
    Shard.create ~id:sid ~tenants:2 ~iotlb_capacity:32
      ~iotlb_policy:Shared_iotlb.Shared ~rcache:true ~buf_pool:32 ()
  in
  let mgr = Shard.manager shard in
  (* resident tenants with long-lived mappings *)
  let resident =
    Array.init 2 (fun t ->
        match
          Shard.map_record shard ~tenant:t ~phys:(Shard.next_buf shard)
            ~bytes:4096
        with
        | Ok iova -> iova
        | Error `Exhausted -> Alcotest.fail "resident map")
  in
  let digest = ref (sid * 7919) in
  for round = 0 to 24 do
    let d =
      Manager.add_domain mgr
        ~name:(Printf.sprintf "hot%d" round)
        ~bdf:(Bdf.make ~bus:(100 + (round mod 16)) ~device:0 ~func:0)
        ()
    in
    let iova =
      Result.get_ok
        (Manager.map mgr d ~phys:(Shard.next_buf shard) ~bytes:4096 ~read:true
           ~write:true)
    in
    let p = Manager.translate_exn mgr ~rid:(Manager.rid d) ~iova ~write:true in
    digest := (!digest * 31) + Addr.to_int p + iova;
    (* residents keep translating while the hot tenant lives *)
    Array.iteri
      (fun t riova ->
        let rp = Shard.translate_record shard ~tenant:t ~iova:riova ~write:false in
        digest := (!digest * 31) + Addr.to_int rp)
      resident;
    Manager.remove_domain mgr d;
    (* after detach the rid must fault as unknown *)
    (try
       ignore (Manager.translate_exn mgr ~rid:(Manager.rid d) ~iova ~write:false);
       digest := -1
     with Manager.Translation_fault -> digest := (!digest * 2) + 1)
  done;
  (!digest, Shard.ops shard Shard.Translate, Manager.unknown_rid_faults mgr)

let test_churn_stress_parallel () =
  let tasks = Array.init 6 churn_task in
  let seq = Rio_exec.Pool.run ~jobs:1 tasks in
  let par = Rio_exec.Pool.run ~jobs:4 tasks in
  Alcotest.(check bool) "parallel digests = sequential digests" true (seq = par);
  Array.iter
    (fun (digest, translates, unknown) ->
      Alcotest.(check bool) "no mis-translation" true (digest <> -1);
      Alcotest.(check int) "resident translations recorded" 50 translates;
      Alcotest.(check int) "every detached rid faulted" 25 unknown)
    seq

(* {1 Runner} *)

let () =
  Alcotest.run "rio_serve"
    [
      ( "histogram",
        [
          QCheck_alcotest.to_alcotest prop_quantile_bound;
          QCheck_alcotest.to_alcotest prop_merge_is_union;
          Alcotest.test_case "edges" `Quick test_histogram_edges;
        ] );
      ( "manager-sg",
        [
          Alcotest.test_case "map_sg roundtrip" `Quick test_map_sg_roundtrip;
          Alcotest.test_case "exhaustion rolls back" `Quick test_map_sg_rollback;
          Alcotest.test_case "translate_exn parity" `Quick
            test_translate_exn_parity;
          Alcotest.test_case "online attach policies" `Quick
            test_online_attach_policies;
        ] );
      ( "engine",
        [
          Alcotest.test_case "flag" `Quick test_flag;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_server_deterministic_across_jobs;
          Alcotest.test_case "snapshot ticks" `Quick test_server_two_ticks;
          Alcotest.test_case "stop flag" `Quick test_server_stop_flag;
          Alcotest.test_case "attach/detach churn stress" `Quick
            test_churn_stress_parallel;
        ] );
    ]
