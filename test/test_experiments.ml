(* Smoke and consistency tests for the experiment harness
   (rio_experiments): every table/figure runs in quick mode and its
   results respect the paper's qualitative structure. *)

module Mode = Rio_protect.Mode
module Paper = Rio_report.Paper
module Registry = Rio_experiments.Registry
module Figure12 = Rio_experiments.Figure12
module Table2 = Rio_experiments.Table2
module Iotlb_miss = Rio_experiments.Iotlb_miss
module Figure8 = Rio_experiments.Figure8

let test_registry_complete () =
  (* one experiment per evaluated artifact of the paper, plus the
     multi-tenant interference study *)
  Alcotest.(check (list string)) "ids"
    [ "table1"; "figure7"; "figure8"; "figure12"; "table2"; "table3";
      "iotlb_miss"; "prefetchers"; "bonnie"; "ablations"; "interference" ]
    Registry.ids;
  Alcotest.(check bool) "find works" true (Registry.find "table1" <> None);
  Alcotest.(check bool) "unknown" true (Registry.find "table9" = None)

let test_all_experiments_render () =
  List.iter
    (fun id ->
      let runner = Option.get (Registry.find id) in
      let exp = runner ~quick:true () in
      Alcotest.(check string) "id matches" id exp.Rio_experiments.Exp.id;
      let rendered = Rio_experiments.Exp.render exp in
      Alcotest.(check bool)
        (Printf.sprintf "%s renders substantively" id)
        true
        (String.length rendered > 200))
    Registry.ids

let test_figure12_structure () =
  let grid = Figure12.compute ~quick:true Paper.Mlx in
  Alcotest.(check int) "seven modes" 7 (List.length grid.Figure12.rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "five benchmarks" 5 (List.length row.Figure12.cells))
    grid.Figure12.rows;
  (* memoized *)
  let grid2 = Figure12.compute ~quick:true Paper.Mlx in
  Alcotest.(check bool) "cached" true (grid == grid2)

let test_figure12_orderings () =
  let grid = Figure12.compute ~quick:true Paper.Mlx in
  let thr mode bench = (Figure12.cell grid mode bench).Figure12.throughput in
  List.iter
    (fun bench ->
      let name = Paper.benchmark_name bench in
      Alcotest.(check bool)
        (name ^ ": riommu beats strict")
        true
        (thr Mode.Riommu bench > thr Mode.Strict bench);
      Alcotest.(check bool)
        (name ^ ": none >= riommu")
        true
        (thr Mode.None_ bench >= thr Mode.Riommu bench *. 0.999))
    Paper.benchmarks

let test_figure12_brcm_line_rate () =
  let grid = Figure12.compute ~quick:true Paper.Brcm in
  let cell mode = Figure12.cell grid mode Paper.Stream in
  Alcotest.(check bool) "strict below line" false (cell Mode.Strict).Figure12.line_limited;
  Alcotest.(check bool) "riommu at line" true (cell Mode.Riommu).Figure12.line_limited;
  (* at line rate CPU is ordered: none < riommu < riommu- *)
  let cpu mode = (cell mode).Figure12.cpu in
  Alcotest.(check bool) "cpu ordering" true
    (cpu Mode.None_ < cpu Mode.Riommu && cpu Mode.Riommu < cpu Mode.Riommu_minus)

let test_table2_headline_ratios () =
  (* the paper's headline: rIOMMU 2.9-7.56x over the strict modes on
     mlx/stream, and within 0.77-1.00x of none *)
  let thr, _ =
    Table2.ratios ~quick:true Paper.Mlx Paper.Stream ~riommu:Mode.Riommu
      ~vs:Mode.Strict
  in
  Alcotest.(check bool)
    (Printf.sprintf "riommu/strict = %.2f in [3, 12]" thr)
    true (thr >= 3. && thr <= 12.);
  let vs_none, _ =
    Table2.ratios ~quick:true Paper.Mlx Paper.Stream ~riommu:Mode.Riommu
      ~vs:Mode.None_
  in
  Alcotest.(check bool)
    (Printf.sprintf "riommu/none = %.2f in [0.7, 1.0]" vs_none)
    true
    (vs_none >= 0.7 && vs_none <= 1.0)

let test_figure8_monotone () =
  let pts = Figure8.sweep ~quick:true () in
  let rec decreasing = function
    | a :: (b :: _ as rest) ->
        a.Figure8.model_gbps >= b.Figure8.model_gbps && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "model monotonically decreasing in C" true (decreasing pts);
  List.iter
    (fun p ->
      (* Gbps x C is the constant 1500 x 8 x S *)
      let product = p.Figure8.model_gbps *. p.Figure8.cycles in
      Alcotest.(check bool) "hyperbola" true
        (abs_float (product -. (1500. *. 8. *. 3.1)) < 1.))
    pts

let test_iotlb_miss_penalty_band () =
  let r = Iotlb_miss.measure ~pool:500 ~accesses:2_000 () in
  Alcotest.(check bool)
    (Printf.sprintf "penalty %.0f in [1200, 1700] (paper 1532)" r.Iotlb_miss.penalty_cycles)
    true
    (r.Iotlb_miss.penalty_cycles >= 1200. && r.Iotlb_miss.penalty_cycles <= 1700.);
  Alcotest.(check bool) "hit is cheap" true (r.Iotlb_miss.hit_cycles < 100.)

let () =
  Alcotest.run "rio_experiments"
    [
      ( "registry",
        [ Alcotest.test_case "complete" `Quick test_registry_complete ] );
      ( "smoke",
        [ Alcotest.test_case "all experiments render" `Slow test_all_experiments_render ] );
      ( "figure12",
        [
          Alcotest.test_case "structure" `Quick test_figure12_structure;
          Alcotest.test_case "orderings" `Quick test_figure12_orderings;
          Alcotest.test_case "brcm line rate" `Quick test_figure12_brcm_line_rate;
        ] );
      ( "table2",
        [ Alcotest.test_case "headline ratios" `Quick test_table2_headline_ratios ] );
      ( "figure8",
        [ Alcotest.test_case "model shape" `Quick test_figure8_monotone ] );
      ( "iotlb_miss",
        [ Alcotest.test_case "penalty band" `Quick test_iotlb_miss_penalty_band ] );
    ]
