(* Multi-tenant demo: one IOMMU, several tenants, a contended IOTLB.

   A latency-critical NIC tenant shares the machine with three noisy
   storage tenants. Part 1 shows the isolation the domain subsystem
   enforces (tenant A's device cannot reach tenant B's mappings); part 2
   runs the discrete-event scheduler and shows the victim's throughput
   under the fully-shared IOTLB vs. a statically partitioned one, and
   under the rIOMMU (immune by construction).

   Run with: dune exec examples/multi_tenant.exe *)

module Bdf = Rio_iommu.Bdf
module Mode = Rio_protect.Mode
open Rio_domain

let () =
  (* {1 Isolation} *)
  let clock = Rio_sim.Cycles.create () in
  let cost = Rio_sim.Cost_model.default in
  let frames = Rio_memory.Frame_allocator.create ~total_frames:100_000 in
  let mgr =
    Manager.create ~iotlb_policy:Shared_iotlb.Shared ~iotlb_capacity:64
      ~invalidation:Manager.Per_domain ~policy:Manager.Immediate ~frames ~clock
      ~cost ()
  in
  let a =
    Manager.add_domain mgr ~name:"tenant-a"
      ~bdf:(Bdf.make ~bus:1 ~device:0 ~func:0)
      ()
  in
  let b =
    Manager.add_domain mgr ~name:"tenant-b"
      ~bdf:(Bdf.make ~bus:2 ~device:0 ~func:0)
      ()
  in
  let buf = Rio_memory.Frame_allocator.alloc_exn frames in
  let iova =
    Result.get_ok (Manager.map mgr a ~phys:buf ~bytes:1500 ~read:true ~write:true)
  in
  Printf.printf "tenant-a mapped a buffer at IOVA 0x%x\n" iova;
  (match Manager.translate mgr ~rid:(Manager.rid a) ~iova ~write:true with
  | Ok _ -> print_endline "tenant-a's device translates it: ok"
  | Error _ -> failwith "tenant-a should translate its own mapping");
  (match Manager.translate mgr ~rid:(Manager.rid b) ~iova ~write:true with
  | Error _ ->
      Printf.printf
        "tenant-b's device faults on the same IOVA (faults recorded: %d)\n"
        (Manager.faults mgr b)
  | Ok _ -> failwith "isolation hole!");

  (* {1 Interference} *)
  let victim = Scheduler.nic_tenant ~latency_critical:true ~name:"victim" () in
  let tenants =
    victim
    :: [
         Scheduler.nvme_tenant ~name:"nvme0" ();
         Scheduler.sata_tenant ~name:"sata0" ();
         Scheduler.nvme_tenant ~name:"nvme1" ();
       ]
  in
  print_newline ();
  Printf.printf "victim + 3 noisy neighbors, 800 I/Os each:\n\n";
  Printf.printf "  %-8s %-12s %14s %12s %10s\n" "mode" "policy" "victim ops/Mcyc"
    "cycles/io" "miss rate";
  List.iter
    (fun (mode, policy) ->
      let cfg = Scheduler.default_config ~ios_per_tenant:800 ~mode ~policy () in
      let v = List.hd (Scheduler.run cfg tenants) in
      Printf.printf "  %-8s %-12s %14.1f %12.0f %9.0f%%\n" (Mode.name mode)
        (Shared_iotlb.policy_name policy)
        v.Scheduler.ops_per_mcycle v.Scheduler.cycles_per_io
        (100. *. v.Scheduler.miss_rate))
    [
      (Mode.Strict, Shared_iotlb.Shared);
      (Mode.Strict, Shared_iotlb.Partitioned);
      (Mode.Defer, Shared_iotlb.Shared);
      (Mode.Defer, Shared_iotlb.Partitioned);
      (Mode.Riommu, Shared_iotlb.Shared);
    ];
  print_newline ();
  print_endline
    "the shared IOTLB lets neighbors tax the victim; partitioning (or the \
     rIOMMU's per-ring entries) takes the tax away"
