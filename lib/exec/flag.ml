type t = Backend.flag

let create = Backend.flag_create
let set = Backend.flag_set
let get = Backend.flag_get
