(** Domain-safe memoization for deterministic shared computations.

    Experiment cells running on a pool may want the same intermediate
    result (a netperf stream point, a DMA trace). A [Memo.t] replaces
    the bare [Hashtbl] caches those code paths used when everything was
    sequential: lookups and inserts are serialized, and the computation
    for one key holds a per-key lock, so concurrent requests for the
    same key block and share one result while different keys still
    compute in parallel.

    The computation must be a pure function of the key (that is what
    makes memoized parallel runs deterministic); if it raises, nothing
    is cached and the next caller retries. *)

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

val mem : ('k, 'v) t -> 'k -> bool
(** [true] once a value for the key has been computed and stored. *)

val once : (unit -> 'a) -> unit -> 'a
(** [once f] is a single-slot memo: the first call computes [f ()]
    under a lock (concurrent callers block), later calls return the
    cached value. *)
