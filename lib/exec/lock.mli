(** Mutual exclusion that degrades to a no-op on sequential builds.

    On OCaml 5 this is a [Mutex.t]; on the 4.x sequential backend the
    pool never runs two tasks concurrently, so locking is free. Use it
    to guard any state shared between experiment cells (memo tables,
    counters) instead of depending on [Mutex] directly, which 4.14 only
    provides via the threads library. *)

type t

val create : unit -> t

val protect : t -> (unit -> 'a) -> 'a
(** [protect l f] runs [f ()] with [l] held, releasing it on return or
    exception. *)
