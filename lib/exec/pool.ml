let parallelism_available = Backend.parallel
let default_jobs () = Backend.cpu_count ()

let resolve_jobs jobs =
  if jobs < 0 then invalid_arg "Rio_exec.Pool.run: jobs must be >= 0";
  if jobs = 0 then default_jobs () else jobs

let run ?(jobs = 1) tasks =
  let jobs = resolve_jobs jobs in
  if jobs <= 1 || Array.length tasks <= 1 then
    (* no pool: run in index order on the calling domain *)
    Array.map (fun f -> f ()) tasks
  else Backend.run ~jobs tasks

let run_list ?jobs tasks = Array.to_list (run ?jobs (Array.of_list tasks))
