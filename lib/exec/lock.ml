type t = Backend.lock

let create = Backend.lock_create
let protect = Backend.lock_protect
