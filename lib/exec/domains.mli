(** Long-lived worker domains for event-loop topologies.

    {!Pool} drives flat task arrays to completion; this module is the
    other shape the socket service needs — spawn a worker that runs an
    executor loop until a {!Flag} is raised, then join it. Like every
    [Rio_exec] facade it compiles against whichever backend dune
    selected: real domains on OCaml 5, a sequential stand-in on 4.x.

    On the sequential backend {!spawn} runs the thunk to completion
    before returning and {!join} is a no-op, so a caller that needs
    actual concurrency (a loop that only terminates when another
    worker raises a flag) must check {!available} first and fall back
    to its single-worker shape. *)

val available : bool
(** Whether {!spawn} creates a genuinely concurrent worker. *)

val cpu_count : unit -> int
(** Recommended worker count (1 on the sequential backend). *)

type t
(** A spawned worker. *)

val spawn : (unit -> unit) -> t
val join : t -> unit

val relax : unit -> unit
(** Spin-wait hint for busy polling ([Domain.cpu_relax] on OCaml 5,
    a no-op sequentially). *)
