(** A one-way cancellation flag readable from every pool worker.

    The long-running service uses one of these to request a graceful
    stop (SIGTERM handler on the main domain sets it; shard loops poll
    it between events). On OCaml 5 it is an [Atomic.t bool], so a set
    from a signal handler or another domain becomes visible to workers
    without locking; on the 4.x sequential backend it degrades to a
    plain ref, which is exact there because nothing runs concurrently.

    The flag is monotonic: it can only go from clear to set, so a
    racing reader can observe a stale [false] for a moment but never a
    spurious [true] — shard loops may run one extra event after a stop
    request, never stop without one. *)

type t

val create : unit -> t

val set : t -> unit
(** Raise the flag (idempotent; never lowered). *)

val get : t -> bool
