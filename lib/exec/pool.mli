(** Deterministic parallel execution of independent tasks.

    [run ~jobs tasks] evaluates every closure of [tasks] and returns
    their results {e in task order}, never in completion order: the
    output is byte-identical whether the tasks ran sequentially or were
    scheduled across a domain pool in any interleaving (provided each
    task is a pure function of its own inputs - the cell contract of
    DESIGN.md §10).

    On OCaml 5 the tasks are spread over a fixed pool of [jobs] domains
    with per-worker queues and work stealing; on OCaml 4.x (or with
    [jobs <= 1]) they run sequentially on the calling thread. An
    exception raised by any task aborts the run and is re-raised (with
    its backtrace) once the pool has quiesced. *)

val parallelism_available : bool
(** [true] when this build can actually run tasks concurrently (OCaml 5
    domains backend); [false] on the sequential 4.x fallback. *)

val default_jobs : unit -> int
(** The recommended domain count of the machine (1 on the sequential
    backend). This is what [jobs = 0] resolves to. *)

val run : ?jobs:int -> (unit -> 'a) array -> 'a array
(** [jobs] defaults to 1 (sequential). [0] means "one worker per
    recommended domain". Raises [Invalid_argument] on negative [jobs]. *)

val run_list : ?jobs:int -> (unit -> 'a) list -> 'a list
(** List convenience wrapper over {!run}. *)
