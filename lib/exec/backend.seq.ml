(* Sequential backend, selected on compilers without [runtime_events]
   (OCaml 4.x): no domains, so tasks run in index order on the calling
   thread and locks are free. Keeping this file free of Domain, Atomic
   and Mutex is what lets the library build on 4.14. *)

let parallel = false
let cpu_count () = 1

type lock = unit

let lock_create () = ()
let lock_protect () f = f ()

let run ~jobs tasks =
  ignore (jobs : int);
  Array.map (fun f -> f ()) tasks

type flag = bool ref

let flag_create () = ref false
let flag_set f = f := true
let flag_get f = !f

(* No concurrency: the spawned thunk runs to completion inside [spawn]
   itself, and [join] has nothing left to wait for. Event-loop callers
   gate on [parallel] and fall back to their single-worker shape. *)
type handle = unit

let spawn f = f ()
let join () = ()
let relax () = ()
