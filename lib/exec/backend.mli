(** The execution backend behind {!Pool} and {!Lock}, chosen by dune's
    [(select)] mechanism: [backend.domains.ml] (domain pool plus real
    mutexes) when the compiler ships [runtime_events] (OCaml >= 5),
    [backend.seq.ml] (sequential, free locks) otherwise.

    This single interface constrains whichever implementation is
    selected, so the two variants cannot drift apart. *)

val parallel : bool
(** Whether this backend can actually run two tasks concurrently. *)

val cpu_count : unit -> int
(** Recommended worker count (1 on the sequential backend). *)

type lock
(** A mutual-exclusion lock; a unit value on the sequential backend. *)

val lock_create : unit -> lock

val lock_protect : lock -> (unit -> 'a) -> 'a
(** Runs the thunk with the lock held, releasing on return or
    exception. *)

val run : jobs:int -> (unit -> 'a) array -> 'a array
(** Evaluates every task and returns the results in task order (never
    completion order), regardless of scheduling. An exception raised by
    a task is re-raised with its backtrace once workers quiesce. *)

type flag
(** A one-way boolean visible across workers: an [Atomic.t] on the
    domains backend, a plain ref on the sequential one. *)

val flag_create : unit -> flag

val flag_set : flag -> unit
(** Raise the flag. Never lowered: the only transition is false→true. *)

val flag_get : flag -> bool

type handle
(** A long-lived worker spawned outside the {!run} task-array shape —
    the escape hatch for event-loop topologies (one worker per
    executor domain, each running until a stop flag). A real domain on
    the domains backend; on the sequential backend {!spawn} runs the
    thunk inline before returning, so callers must be written to make
    progress without concurrency (or gate on {!parallel}). *)

val spawn : (unit -> unit) -> handle

val join : handle -> unit
(** Wait for the worker to return (a no-op on the sequential backend,
    where the thunk already ran inside {!spawn}). *)

val relax : unit -> unit
(** Spin-wait hint ([Domain.cpu_relax] on the domains backend). *)
