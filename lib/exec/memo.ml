type 'v slot = { slot_lock : Lock.t; mutable value : 'v option }
type ('k, 'v) t = { lock : Lock.t; table : ('k, 'v slot) Hashtbl.t }

let create ?(size = 16) () = { lock = Lock.create (); table = Hashtbl.create size }

let find_or_add t key f =
  (* Get-or-insert the per-key slot under the (cheap) table lock, then
     compute under the slot's own lock: concurrent callers of the same
     key block until the first one finishes, while different keys
     compute in parallel. If [f] raises, the slot stays empty and the
     next caller retries. *)
  let slot =
    Lock.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some s -> s
        | None ->
            let s = { slot_lock = Lock.create (); value = None } in
            Hashtbl.add t.table key s;
            s)
  in
  Lock.protect slot.slot_lock (fun () ->
      match slot.value with
      | Some v -> v
      | None ->
          let v = f () in
          slot.value <- Some v;
          v)

let mem t key =
  Lock.protect t.lock (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some { value = Some _; _ } -> true
      | Some { value = None; _ } | None -> false)

let once f =
  let lock = Lock.create () in
  let cell = ref None in
  fun () ->
    Lock.protect lock (fun () ->
        match !cell with
        | Some v -> v
        | None ->
            let v = f () in
            cell := Some v;
            v)
