(* Domain-pool backend, selected when the compiler ships
   [runtime_events] (i.e. OCaml >= 5, where the stdlib has Domain,
   Atomic and Mutex).

   [run] drives a flat task array with a fixed pool of [jobs] domains
   and per-worker work queues: the array is split into [jobs]
   contiguous slices, each drained through an atomic cursor. A worker
   first drains its own slice, then steals from whichever victim has
   the most work left. Every claim is a fetch-and-add, so each task
   runs exactly once no matter which worker claims it, and every result
   lands in its task's slot - the output order is the input order
   regardless of scheduling, which is what makes parallel experiment
   runs deterministic. *)

let parallel = true
let cpu_count () = Domain.recommended_domain_count ()

type lock = Mutex.t

let lock_create () = Mutex.create ()

let lock_protect m f =
  Mutex.lock m;
  match f () with
  | v ->
      Mutex.unlock m;
      v
  | exception e ->
      Mutex.unlock m;
      raise e

type flag = bool Atomic.t

let flag_create () = Atomic.make false
let flag_set f = Atomic.set f true
let flag_get f = Atomic.get f

type handle = unit Domain.t

let spawn f = Domain.spawn f
let join h = Domain.join h
let relax () = Domain.cpu_relax ()

let run ~jobs tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let w = max 1 (min jobs n) in
    let results = Array.make n None in
    let failed = Atomic.make None in
    (* worker [i] owns indices [lo i, lo (i+1)) *)
    let lo i = i * n / w in
    let cursors = Array.init w (fun i -> Atomic.make (lo i)) in
    let exec k =
      match tasks.(k) () with
      | v -> results.(k) <- Some v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set failed None (Some (e, bt)))
    in
    (* claim the next index of queue [q]; claims past the slice end just
       mean the queue is spent *)
    let claim q =
      let k = Atomic.fetch_and_add cursors.(q) 1 in
      if k < lo (q + 1) then Some k else None
    in
    let worker me =
      let running = ref true in
      while !running && Atomic.get failed = None do
        match claim me with
        | Some k -> exec k
        | None -> running := false
      done;
      (* own slice drained: steal from the fullest victim until all
         queues are spent *)
      let running = ref true in
      while !running && Atomic.get failed = None do
        let best = ref (-1) in
        let best_left = ref 0 in
        for v = 0 to w - 1 do
          let left = lo (v + 1) - Atomic.get cursors.(v) in
          if left > !best_left then begin
            best := v;
            best_left := left
          end
        done;
        if !best < 0 then running := false
        else match claim !best with Some k -> exec k | None -> ()
      done
    in
    let domains =
      Array.init (w - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    Array.iter Domain.join domains;
    (match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end
