type t = Backend.handle

let available = Backend.parallel
let cpu_count = Backend.cpu_count
let spawn = Backend.spawn
let join = Backend.join
let relax = Backend.relax
