module Rng = Rio_sim.Rng
module Breakdown = Rio_sim.Breakdown
module Phys_mem = Rio_memory.Phys_mem
module Mode = Rio_protect.Mode
module Dma_api = Rio_protect.Dma_api
module Nic = Rio_device.Nic
module Nic_profiles = Rio_device.Nic_profiles

type stream_result = {
  mode : Mode.t;
  nic : string;
  packets : int;  (* measured packets *)
  protection_per_packet : float;
  cycles_per_packet : float;
  gbps : float;
  cpu : float;
  line_limited : bool;
  map_calls : int;
  unmap_calls : int;
  map_components : (Breakdown.component * float) list;
  unmap_components : (Breakdown.component * float) list;
  faults : int;
}

let make_api ?(rcache = false) ~mode ~profile () =
  let config =
    {
      (Dma_api.default_config ~mode) with
      Dma_api.ring_sizes = Nic.ring_sizes profile;
      total_frames = 500_000;
      rcache;
    }
  in
  Dma_api.create config

let components breakdown =
  match breakdown with
  | None -> []
  | Some b ->
      List.map (fun c -> (c, Breakdown.mean_cycles b c)) Breakdown.all_components

(* One interrupt's worth of work: deliver [acks] ack packets, then run
   the driver poll loop over all pending Rx and Tx completions in
   shuffled arrival order (each ring's last completion flags the end of
   its unmap burst), refill the Rx ring, submit and transmit the next
   burst. *)
let interrupt_round nic rng ~burst ~acks ~ack_payload ~payload =
  for _ = 1 to acks do
    ignore (Nic.device_rx_deliver nic ~payload:ack_payload)
  done;
  let tx_pending = Nic.tx_completed nic in
  let rx_pending = Nic.rx_pending nic in
  let events = Array.init (rx_pending + tx_pending) (fun i -> i < rx_pending) in
  Rng.shuffle rng events;
  let rx_left = ref rx_pending and tx_left = ref tx_pending in
  Array.iter
    (fun is_rx ->
      if is_rx then begin
        decr rx_left;
        ignore (Nic.rx_reap_next nic ~end_of_burst:(!rx_left = 0))
      end
      else begin
        decr tx_left;
        ignore (Nic.tx_reclaim_next nic ~end_of_burst:(!tx_left = 0))
      end)
    events;
  ignore (Nic.rx_fill nic);
  let submitted = ref 0 in
  for _ = 1 to burst do
    match Nic.tx_submit nic ~payload with
    | Ok () -> incr submitted
    | Error (`Ring_full | `Map_failed) -> ()
  done;
  ignore (Nic.device_tx_process nic ~max:!submitted);
  !submitted

(* Identical stream configurations are memoized: several experiments
   (Tables 1-2, Figures 7-8 and 12) measure the same (mode, NIC) points.
   The memo is domain-safe - under a parallel experiment run, cells
   racing on the same configuration block on a per-key lock and share
   one simulation, while distinct configurations proceed in parallel. *)
let stream_cache : (string, stream_result) Rio_exec.Memo.t =
  Rio_exec.Memo.create ~size:32 ()

let stream_uncached ~packets ~warmup ~seed ~ack_ratio ~rcache ~mode ~profile () =
  let api = make_api ~rcache ~mode ~profile () in
  let cost = Dma_api.cost api in
  let rng = Rng.create ~seed in
  let mem = Phys_mem.create () in
  let nic = Nic.create ~data_movement:false ~profile ~api ~mem ~rng () in
  ignore (Nic.rx_fill nic);
  let payload = Bytes.make profile.Nic_profiles.mtu 'x' in
  let ack_payload = Bytes.make 64 'a' in
  let burst = 32 in
  let ack_carry = ref 0.0 in
  let run n =
    let sent = ref 0 in
    while !sent < n do
      ack_carry := !ack_carry +. (float_of_int burst *. ack_ratio);
      let acks = int_of_float !ack_carry in
      ack_carry := !ack_carry -. float_of_int acks;
      let submitted =
        interrupt_round nic rng ~burst ~acks ~ack_payload ~payload
      in
      sent := !sent + max 1 submitted
    done;
    !sent
  in
  ignore (run warmup);
  Dma_api.reset_driver_cycles api;
  (match Dma_api.map_breakdown api with Some b -> Breakdown.reset b | None -> ());
  (match Dma_api.unmap_breakdown api with Some b -> Breakdown.reset b | None -> ());
  let measured = run packets in
  let protection =
    float_of_int (Dma_api.driver_cycles api) /. float_of_int measured
  in
  let cycles_per_packet = float_of_int profile.Nic_profiles.c_other +. protection in
  let gbps, line_limited =
    Perf_model.capped_gbps ~cost ~line_rate_gbps:profile.Nic_profiles.line_rate_gbps
      ~bytes_per_packet:profile.Nic_profiles.mtu ~cycles_per_packet
  in
  let pps =
    if line_limited then
      Perf_model.line_rate_pps ~line_rate_gbps:profile.Nic_profiles.line_rate_gbps
        ~bytes_per_packet:profile.Nic_profiles.mtu
    else Perf_model.packets_per_second ~cost ~cycles_per_packet
  in
  let cpu = Perf_model.cpu_fraction ~cost ~cycles_per_packet ~pps in
  let bm = Dma_api.map_breakdown api and bu = Dma_api.unmap_breakdown api in
  {
    mode;
    nic = profile.Nic_profiles.name;
    packets = measured;
    protection_per_packet = protection;
    cycles_per_packet;
    gbps;
    cpu;
    line_limited;
    map_calls = (match bm with Some b -> Breakdown.calls b | None -> 0);
    unmap_calls = (match bu with Some b -> Breakdown.calls b | None -> 0);
    map_components = components bm;
    unmap_components = components bu;
    faults = Dma_api.faults api;
  }

let stream ?(packets = 60_000) ?(warmup = 120_000) ?(seed = 42) ?ack_ratio
    ?(rcache = false) ~mode ~profile () =
  let ack_ratio =
    match ack_ratio with
    | Some r -> r
    | None -> profile.Nic_profiles.ack_ratio
  in
  let key =
    Printf.sprintf "%s/%s/%d/%d/%d/%f/%d/%d/%b" (Mode.name mode)
      profile.Nic_profiles.name packets warmup seed ack_ratio
      profile.Nic_profiles.rx_ring profile.Nic_profiles.tx_ring rcache
  in
  Rio_exec.Memo.find_or_add stream_cache key (fun () ->
      stream_uncached ~packets ~warmup ~seed ~ack_ratio ~rcache ~mode ~profile ())

type rr_result = {
  mode : Mode.t;
  nic : string;
  rtt_us : float;
  transactions_per_sec : float;
  cpu : float;
  protection_per_transaction : float;
}

let rr ?(transactions = 5_000) ?(seed = 42) ?(rcache = false) ~mode ~profile () =
  (* Latency-sensitive configurations keep rings modest (interrupt
     moderation off, one transaction in flight), so the live IOVA
     population - and with it the allocator's scan lengths - stays far
     below the stream benchmark's. *)
  let profile =
    {
      profile with
      Nic_profiles.rx_ring = min 512 profile.Nic_profiles.rx_ring;
      tx_ring = min 512 profile.Nic_profiles.tx_ring;
    }
  in
  let api = make_api ~rcache ~mode ~profile () in
  let cost = Dma_api.cost api in
  let rng = Rng.create ~seed in
  let mem = Phys_mem.create () in
  let nic = Nic.create ~data_movement:false ~profile ~api ~mem ~rng () in
  ignore (Nic.rx_fill nic);
  let one = Bytes.make 1 'p' in
  let transaction () =
    (* receive the one-byte request *)
    ignore (Nic.device_rx_deliver nic ~payload:one);
    ignore (Nic.rx_reap_next nic ~end_of_burst:true);
    ignore (Nic.rx_fill nic);
    (* transmit the one-byte response; no burst to amortize over *)
    (match Nic.tx_submit nic ~payload:one with
    | Ok () -> ()
    | Error (`Ring_full | `Map_failed) -> ());
    ignore (Nic.device_tx_process nic ~max:1);
    ignore (Nic.tx_reclaim nic)
  in
  (* short warmup to populate rings and caches *)
  for _ = 1 to 100 do
    transaction ()
  done;
  Dma_api.reset_driver_cycles api;
  for _ = 1 to transactions do
    transaction ()
  done;
  let protection =
    float_of_int (Dma_api.driver_cycles api) /. float_of_int transactions
  in
  let rtt_us =
    Perf_model.rr_rtt_us ~cost ~base_us:profile.Nic_profiles.base_rtt_us
      ~extra_cycles:protection
  in
  let tps = Perf_model.rr_transactions_per_second ~rtt_us in
  let per_transaction_cycles =
    float_of_int profile.Nic_profiles.rr_cpu_cycles +. protection
  in
  let cpu =
    Perf_model.cpu_fraction ~cost ~cycles_per_packet:per_transaction_cycles ~pps:tps
  in
  {
    mode;
    nic = profile.Nic_profiles.name;
    rtt_us;
    transactions_per_sec = tps;
    cpu;
    protection_per_transaction = protection;
  }
