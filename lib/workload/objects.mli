(** Heavy-tailed object-size and inter-arrival models for user flows.

    Pure inverse-CDF samplers: each takes a uniform draw [u] in [0, 1)
    and returns a deterministic quantile, so a flow whose draws come
    from its own {!Rio_sim.Splittable_rng} stream produces the same
    object sequence no matter how many shards or worker domains the
    service runs with.

    Two profiles, anchored on the calibrated request models the
    experiments already use:

    - {b HTTP} ({!http_bytes}): a bounded Pareto body. The mass sits
      near {!Apache.request_config}[ KB1]'s 1 KB responses while the
      tail reaches the megabyte class that behaves like Netperf stream
      (the Apache 1 MB column) — the classic heavy-tailed web-object
      distribution.
    - {b KV} ({!kv_bytes}): {!Memcached.request_config}'s regime — 90%
      of requests move the ~1 KB value (plus 64 B key), the remaining
      10% are multi-KB multigets. *)

val u01 : int64 -> float
(** Map one raw {!Rio_sim.Splittable_rng.next} draw to a uniform float
    in [0, 1) (top 53 bits). *)

val http_bytes : float -> int
(** Bounded Pareto (alpha 1.2) on [256 B, 1 MB]: median ~1 KB, mean
    dominated by the tail. *)

val kv_bytes : float -> int
(** Memcached-style: 90% in [64 B, 1088 B] (key+value), 10% multigets
    in (1 KB, 16 KB]. *)

val requests_per_connection : mean:int -> float -> int
(** Geometric number of requests a connection serves before closing
    (>= 1); models connection churn. *)

val think_cycles : mean:int -> float -> int
(** Exponential think/inter-arrival gap in cycles for open-loop flows
    (>= 0). [mean 0] always returns 0 (closed-loop back-to-back). *)
