(* Pure quantile functions: no state, no ambient randomness — the
   caller owns the uniform stream. Keeping them closed-form is what
   makes the load generator's schedule a pure function of (seed,
   shard, tenant, flow). *)

let u01 v =
  (* top 53 bits of the draw, scaled to [0, 1) *)
  Int64.to_float (Int64.shift_right_logical v 11) *. (1. /. 9007199254740992.)

(* Bounded Pareto inverse CDF on [lo, hi] with shape [alpha]:
   F^-1(u) = lo / (1 - u (1 - (lo/hi)^alpha))^(1/alpha). *)
let bounded_pareto ~lo ~hi ~alpha u =
  let lo_f = float_of_int lo and hi_f = float_of_int hi in
  let ratio = (lo_f /. hi_f) ** alpha in
  let x = lo_f /. ((1. -. (u *. (1. -. ratio))) ** (1. /. alpha)) in
  let b = int_of_float x in
  if b < lo then lo else if b > hi then hi else b

let http_bytes u = bounded_pareto ~lo:256 ~hi:1_048_576 ~alpha:1.2 u

let kv_bytes u =
  if u < 0.9 then
    (* key + value, uniform over a narrow band around the 1 KB value *)
    64 + int_of_float (u /. 0.9 *. 1024.)
  else
    (* multiget: a handful of values in one response *)
    1_024 + int_of_float ((u -. 0.9) /. 0.1 *. 15_360.)

let requests_per_connection ~mean u =
  if mean <= 1 then 1
  else
    (* geometric with success probability 1/mean, via inversion *)
    let p = 1. /. float_of_int mean in
    let u = if u >= 1. then 0.999999 else u in
    let n = 1 + int_of_float (Float.log (1. -. u) /. Float.log (1. -. p)) in
    if n < 1 then 1 else n

let think_cycles ~mean u =
  if mean <= 0 then 0
  else
    let u = if u >= 1. then 0.999999 else u in
    let x = -.float_of_int mean *. Float.log (1. -. u) in
    if x <= 0. then 0 else int_of_float x
