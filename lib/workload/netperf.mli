(** Netperf TCP stream and UDP request-response (§5.1, Benchmarks).

    [stream] runs the NIC model through the full driver path - mapped
    transmit bursts, interleaved Rx-ack and Tx-completion processing in
    shuffled (NAPI-like) arrival order, burst-flagged unmaps - measuring
    the protection cycles the core pays per packet, then applies the
    validated §3.3 model to obtain throughput and CPU.

    [rr] models the latency-sensitive ping-pong: one transaction is one
    received and one transmitted one-byte message, (un)mapped without
    burst amortization. *)

type stream_result = {
  mode : Rio_protect.Mode.t;
  nic : string;
  packets : int;  (** packets measured after warmup *)
  protection_per_packet : float;  (** driver map/unmap cycles per packet *)
  cycles_per_packet : float;  (** C = c_other + protection *)
  gbps : float;
  cpu : float;  (** fraction of one core, 0..1 *)
  line_limited : bool;
  map_calls : int;
  unmap_calls : int;
  map_components : (Rio_sim.Breakdown.component * float) list;
      (** Table 1-style per-call means; empty for unprotected modes *)
  unmap_components : (Rio_sim.Breakdown.component * float) list;
  faults : int;
}

val stream :
  ?packets:int ->
  ?warmup:int ->
  ?seed:int ->
  ?ack_ratio:float ->
  ?rcache:bool ->
  mode:Rio_protect.Mode.t ->
  profile:Rio_device.Nic_profiles.t ->
  unit ->
  stream_result
(** Defaults: 60K measured packets after 120K warmup (the allocator
    pathology is a long-term effect), seed 42, ack ratio from the
    profile, IOVA magazine cache ([rcache]) off. *)

type rr_result = {
  mode : Rio_protect.Mode.t;
  nic : string;
  rtt_us : float;
  transactions_per_sec : float;
  cpu : float;
  protection_per_transaction : float;
}

val rr :
  ?transactions:int ->
  ?seed:int ->
  ?rcache:bool ->
  mode:Rio_protect.Mode.t ->
  profile:Rio_device.Nic_profiles.t ->
  unit ->
  rr_result
