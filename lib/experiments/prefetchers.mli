(** Section 5.4: comparing the rIOTLB to classic TLB prefetchers.

    Replays a DMA trace logged from the strict-mode NIC model (the
    paper's methodology: log the device's DMAs, feed the prefetchers)
    against Markov, Recency and Distance - in
    their baseline form (history invalidated with each unmap; the paper
    found them ineffective) and the paper's modified form (history
    retained, predictions checked against the page table) across history
    sizes below and above the ring size - and against the rIOTLB's
    two-entry next-slot scheme. *)

val plan : ?quick:bool -> ?seed:int -> unit -> Exp.plan
val run : ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Exp.t
