module Mode = Rio_protect.Mode
module Paper = Rio_report.Paper
module Table = Rio_report.Table
module Compare = Rio_report.Compare
module Netperf = Rio_workload.Netperf
module Nic_profiles = Rio_device.Nic_profiles

let nics = [ (Paper.Mlx, Nic_profiles.mlx); (Paper.Brcm, Nic_profiles.brcm) ]

let reduce results =
  (* results arrive flat in (nic-major, mode-minor) cell order *)
  let t = Table.make ~headers:("nic" :: List.map Mode.name Mode.evaluated) in
  List.iter
    (fun (nic, _) ->
      let cells =
        List.filter_map
          (fun ((n, mode), (r : Netperf.rr_result)) ->
            if n <> nic then None
            else
              Some
                (match Paper.table3_rtt_us nic mode with
                | Some paper ->
                    Compare.cell ~tolerance:0.15 ~paper ~measured:r.Netperf.rtt_us ()
                | None -> Table.cell_f r.Netperf.rtt_us))
          results
      in
      Table.add_row t (Paper.nic_name nic :: cells))
    nics;
  {
    Exp.id = "table3";
    title = "Netperf RR round-trip time in microseconds (paper/measured)";
    body = Table.render t;
    notes =
      [
        "the 'none' column is the calibrated wire+stack baseline; protected modes \
         add their measured per-transaction (un)mapping cycles";
      ];
  }

let plan ?(quick = false) ?(seed = 42) () =
  let transactions = if quick then 500 else 5_000 in
  let rseed = Seeds.netperf_rr ~seed in
  Exp.plan_of_list
    (List.concat_map
       (fun (nic, profile) ->
         List.map
           (fun mode () ->
             ((nic, mode), Netperf.rr ~transactions ~seed:rseed ~mode ~profile ()))
           Mode.evaluated)
       nics)
    ~reduce

let run ?quick ?seed ?jobs () = Exp.run_plan ?jobs (plan ?quick ?seed ())
