type runner = ?quick:bool -> unit -> Exp.t

let all : (string * runner) list =
  [
    ("table1", Table1.run);
    ("figure7", Figure7.run);
    ("figure8", Figure8.run);
    ("figure12", Figure12.run);
    ("table2", Table2.run);
    ("table3", Table3.run);
    ("iotlb_miss", Iotlb_miss.run);
    ("prefetchers", Prefetchers.run);
    ("bonnie", Bonnie_sata.run);
    ("ablations", Ablations.run);
    ("interference", Interference.run);
  ]

let find id = List.assoc_opt id all
let ids = List.map fst all
