type runner = ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Exp.t
type planner = ?quick:bool -> ?seed:int -> unit -> Exp.plan

let all : (string * (runner * planner)) list =
  [
    ("table1", (Table1.run, Table1.plan));
    ("figure7", (Figure7.run, Figure7.plan));
    ("figure8", (Figure8.run, Figure8.plan));
    ("figure12", (Figure12.run, Figure12.plan));
    ("table2", (Table2.run, Table2.plan));
    ("table3", (Table3.run, Table3.plan));
    ("iotlb_miss", (Iotlb_miss.run, Iotlb_miss.plan));
    ("prefetchers", (Prefetchers.run, Prefetchers.plan));
    ("bonnie", (Bonnie_sata.run, Bonnie_sata.plan));
    ("ablations", (Ablations.run, Ablations.plan));
    ("interference", (Interference.run, Interference.plan));
  ]

let find id = Option.map fst (List.assoc_opt id all)
let find_plan id = Option.map snd (List.assoc_opt id all)
let ids = List.map fst all

let unknown_id_message id =
  Printf.sprintf "unknown experiment: %s\nvalid experiments:\n%s" id
    (String.concat "\n" (List.map (fun i -> "  " ^ i) ids))

let run_all ?quick ?seed ?jobs () =
  let plans = List.map (fun (id, (_, plan)) -> (id, plan ?quick ?seed ())) all in
  List.map snd (Exp.run_plans ?jobs plans)
