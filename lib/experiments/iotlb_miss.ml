module Addr = Rio_memory.Addr
module Rng = Rio_sim.Rng
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model
module Mode = Rio_protect.Mode
module Dma_api = Rio_protect.Dma_api
module Table = Rio_report.Table
module Paper = Rio_report.Paper

type result = {
  hit_cycles : float;
  miss_cycles : float;
  penalty_cycles : float;
  penalty_us : float;
}

let measure ?(pool = 2_000) ?(accesses = 20_000) ?(seed = 5) () =
  let api =
    Dma_api.create
      { (Dma_api.default_config ~mode:Mode.Strict) with Dma_api.total_frames = pool + 64 }
  in
  let clock = Dma_api.clock api in
  let cost = Dma_api.cost api in
  let rng = Rng.create ~seed in
  let frames = Dma_api.frames api in
  (* a large pool of persistently mapped buffers (ibverbs-style
     registration: mapped once, used many times) *)
  let handles =
    Array.init pool (fun _ ->
        let buf = Rio_memory.Frame_allocator.alloc_exn frames in
        match
          Dma_api.map api ~ring:0 ~phys:buf ~bytes:Addr.page_size
            ~dir:Rio_core.Rpte.Bidirectional
        with
        | Ok h -> Dma_api.addr api h
        | Error _ -> failwith "iotlb_miss: map failed")
  in
  let translate addr =
    match Dma_api.translate api ~addr ~offset:0 ~write:false with
    | Ok _ -> ()
    | Error e -> failwith ("iotlb_miss: fault " ^ e)
  in
  (* single-buffer experiment: always hits after the first access *)
  translate handles.(0);
  let start = Cycles.now clock in
  for _ = 1 to accesses do
    translate handles.(0)
  done;
  let hit_cycles = float_of_int (Cycles.since clock start) /. float_of_int accesses in
  (* random-pool experiment: the 64-entry IOTLB almost always misses *)
  let start = Cycles.now clock in
  for _ = 1 to accesses do
    translate handles.(Rng.int rng pool)
  done;
  let miss_cycles = float_of_int (Cycles.since clock start) /. float_of_int accesses in
  let penalty = miss_cycles -. hit_cycles in
  {
    hit_cycles;
    miss_cycles;
    penalty_cycles = penalty;
    penalty_us = Cost_model.cycles_to_us cost (int_of_float penalty);
  }

let reduce r =
  let t = Table.make ~headers:[ "metric"; "paper"; "measured" ] in
  Table.add_row t
    [ "miss penalty (cycles)";
      Table.cell_i Paper.iotlb_miss_cycles;
      Table.cell_f ~decimals:0 r.penalty_cycles ];
  Table.add_row t
    [ "miss penalty (us)"; "0.50"; Table.cell_f r.penalty_us ];
  {
    Exp.id = "iotlb_miss";
    title = "IOTLB miss penalty in low-latency environments (Section 5.3)";
    body = Table.render t;
    notes =
      [
        "the penalty is the 4-reference page walk the rIOMMU's prefetched \
         rIOTLB avoids in user-level I/O setups";
      ];
  }

let plan ?(quick = false) ?(seed = 42) () =
  let mseed = Seeds.iotlb_miss ~seed in
  Exp.plan_of_list
    [
      (fun () ->
        if quick then measure ~pool:500 ~accesses:2_000 ~seed:mseed ()
        else measure ~seed:mseed ());
    ]
    ~reduce:(function [ r ] -> reduce r | _ -> assert false)

let run ?quick ?seed ?jobs () = Exp.run_plan ?jobs (plan ?quick ?seed ())
