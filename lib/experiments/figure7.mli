(** Figure 7: CPU cycles to process one packet, stacked by component
    (IOTLB invalidation / page table updates / IOVA (de)allocation /
    everything else), for the seven modes on mlx. *)

val plan : ?quick:bool -> ?seed:int -> unit -> Exp.plan
(** One cell per evaluated mode (DESIGN.md §10). *)

val run : ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Exp.t
