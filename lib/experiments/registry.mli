(** Experiment registry: every reproduced table and figure by id. *)

type runner = ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Exp.t
type planner = ?quick:bool -> ?seed:int -> unit -> Exp.plan

val all : (string * (runner * planner)) list
(** In the paper's order: table1, figure7, figure8, figure12, table2,
    table3, iotlb_miss, prefetchers, bonnie - plus the design-choice
    ablations and the multi-tenant interference experiment. *)

val find : string -> runner option
val find_plan : string -> planner option
val ids : string list

val unknown_id_message : string -> string
(** Error text for an unrecognized experiment id: names the id and
    lists every valid one. *)

val run_all : ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Exp.t list
(** Run the whole registry as one flat cell pool (the CLI's [all]
    subcommand): every experiment's cells are scheduled together, so a
    wide machine is kept busy across experiment boundaries. Results
    come back in registry order regardless of [jobs]. *)
