(** Ablations of the rIOMMU design choices (beyond the paper's figures).

    Four sweeps isolate the mechanisms DESIGN.md calls out:

    - {b burst length}: the rIOMMU issues one rIOTLB invalidation per
      unmap burst; the paper notes netperf bursts average ~200 unmaps,
      making the ~2,100-cycle invalidation negligible. The sweep shows
      the amortization curve from burst 1 (latency-style) to 256.
    - {b ring sizing}: §4 requires N >= L (flat-table entries vs live
      DMAs) or the driver sees overflow; the sweep measures overflow
      rates across N for a fixed offered load.
    - {b IOTLB capacity}: the baseline IOMMU's device-side miss rate as
      the working set of concurrently-mapped buffers outgrows the IOTLB
      (the §5.3 situation).
    - {b coherent vs non-coherent walks}: the riommu/riommu- gap - and
      what the same coherency switch would do for the baseline - in
      cycles per map+unmap pair.
    - {b prefetch}: rIOTLB table walks per translation under in-order
      versus out-of-order ring access.
    - {b long-term pathology}: windowed average (alloc+find+free) cost of
      the Linux allocator versus the constant-time allocator under
      identical churn - the growth curve behind Table 1's strict-mode
      allocation numbers. *)

val plan : ?quick:bool -> ?seed:int -> unit -> Exp.plan
val run : ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Exp.t
