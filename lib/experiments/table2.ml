module Mode = Rio_protect.Mode
module Paper = Rio_report.Paper
module Table = Rio_report.Table
module Compare = Rio_report.Compare

let vs_modes = [ Mode.Strict; Mode.Strict_plus; Mode.Defer; Mode.Defer_plus; Mode.None_ ]

let ratios ?quick ?seed nic bench ~riommu ~vs =
  let grid = Figure12.compute ?quick ?seed nic in
  let r = Figure12.cell grid riommu bench in
  let v = Figure12.cell grid vs bench in
  (r.Figure12.throughput /. v.Figure12.throughput, r.Figure12.cpu /. v.Figure12.cpu)

let block ?quick ?seed nic =
  let t =
    Table.make
      ~headers:
        ("benchmark" :: "riommu" :: List.map (fun m -> "vs " ^ Mode.name m) vs_modes)
  in
  List.iter
    (fun bench ->
      List.iter
        (fun riommu ->
          let cells =
            List.map
              (fun vs ->
                let thr, _ = ratios ?quick ?seed nic bench ~riommu ~vs in
                match Paper.table2_throughput nic bench ~riommu ~vs with
                | Some paper -> Compare.cell ~paper ~measured:thr ()
                | None -> Table.cell_ratio thr)
              vs_modes
          in
          Table.add_row t
            (Paper.benchmark_name bench :: Mode.name riommu :: cells))
        [ Mode.Riommu_minus; Mode.Riommu ];
      Table.add_separator t)
    Paper.benchmarks;
  Table.render t

let cpu_block ?quick ?seed nic =
  let t =
    Table.make
      ~headers:
        ("benchmark" :: "riommu" :: List.map (fun m -> "vs " ^ Mode.name m) vs_modes)
  in
  List.iter
    (fun bench ->
      List.iter
        (fun riommu ->
          let cells =
            List.map
              (fun vs ->
                let _, cpu = ratios ?quick ?seed nic bench ~riommu ~vs in
                match Paper.table2_cpu nic bench ~riommu ~vs with
                | Some paper -> Compare.cell ~paper ~measured:cpu ()
                | None -> Table.cell_ratio cpu)
              vs_modes
          in
          Table.add_row t
            (Paper.benchmark_name bench :: Mode.name riommu :: cells))
        [ Mode.Riommu_minus; Mode.Riommu ];
      Table.add_separator t)
    Paper.benchmarks;
  Table.render t

let reduce ~quick ~seed () =
  let body =
    Printf.sprintf
      "cells are paper/measured with ok (<=25%% off), ~ (<=50%%), !! (beyond)\n\n\
       -- mlx throughput ratios --\n%s\n-- mlx cpu ratios --\n%s\n\
       -- brcm throughput ratios --\n%s\n-- brcm cpu ratios --\n%s"
      (block ~quick ~seed Paper.Mlx) (cpu_block ~quick ~seed Paper.Mlx)
      (block ~quick ~seed Paper.Brcm) (cpu_block ~quick ~seed Paper.Brcm)
  in
  {
    Exp.id = "table2";
    title = "Relative (normalized) performance vs the paper's Table 2";
    body;
    notes = [];
  }

let plan ?(quick = false) ?(seed = 42) () =
  (* the cells are figure12's 14 memoized (NIC, mode) rows - running
     table2 alone measures them, running it after figure12 (or beside
     it in one pool) reuses them; the reduce only computes ratios *)
  Exp.plan_of_list
    (Figure12.row_cells ~quick ~seed)
    ~reduce:(fun (_ : Figure12.mode_row list) -> reduce ~quick ~seed ())

let run ?quick ?seed ?jobs () = Exp.run_plan ?jobs (plan ?quick ?seed ())
