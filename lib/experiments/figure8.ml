module Mode = Rio_protect.Mode
module Paper = Rio_report.Paper
module Table = Rio_report.Table
module Cost_model = Rio_sim.Cost_model
module Perf_model = Rio_workload.Perf_model
module Netperf = Rio_workload.Netperf
module Nic_profiles = Rio_device.Nic_profiles

type point = { cycles : float; model_gbps : float; simulated_gbps : float }

let sweep ?(points = 12) ?(quick = false) () =
  ignore quick;
  let profile = Nic_profiles.mlx in
  let cost = Cost_model.default in
  let c_none = float_of_int profile.Nic_profiles.c_other in
  let c_max = 20_000. in
  List.init points (fun i ->
      (* logarithmic spacing, like the paper's x axis *)
      let frac = float_of_int i /. float_of_int (points - 1) in
      let cycles = c_none *. Float.pow (c_max /. c_none) frac in
      let model_gbps =
        Perf_model.gbps ~cost ~bytes_per_packet:profile.Nic_profiles.mtu
          ~cycles_per_packet:cycles
      in
      (* the busy-wait experiment: the unprotected driver path plus
         (cycles - c_none) of busy-waiting per packet *)
      let simulated_gbps, _ =
        Perf_model.capped_gbps ~cost
          ~line_rate_gbps:profile.Nic_profiles.line_rate_gbps
          ~bytes_per_packet:profile.Nic_profiles.mtu ~cycles_per_packet:cycles
      in
      { cycles; model_gbps; simulated_gbps })

let reduce ~quick results =
  let pts = sweep ~quick () in
  let t =
    Table.make ~headers:[ "cycles/packet"; "model Gbps"; "busy-wait Gbps" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          Table.cell_f ~decimals:0 p.cycles;
          Table.cell_f p.model_gbps;
          Table.cell_f p.simulated_gbps;
        ])
    pts;
  (* the seven modes as cross points *)
  let crosses = Table.make ~headers:[ "mode"; "measured C"; "throughput Gbps" ] in
  List.iter
    (fun (mode, r) ->
      Table.add_row crosses
        [
          Mode.name mode;
          Table.cell_f ~decimals:0 r.Netperf.cycles_per_packet;
          Table.cell_f r.Netperf.gbps;
        ])
    results;
  let mode_points =
    List.map
      (fun (mode, r) ->
        (Mode.name mode, r.Netperf.cycles_per_packet, r.Netperf.gbps))
      results
  in
  let chart =
    Rio_report.Chart.scatter ~x_label:"cycles per packet" ~y_label:"Gbps"
      ~curve:(List.map (fun p -> (p.cycles, p.model_gbps)) pts)
      ~points:mode_points ()
  in
  {
    Exp.id = "figure8";
    title = "Throughput of Netperf stream vs cycles spent per packet";
    body =
      Printf.sprintf
        "-- busy-wait sweep --\n%s\n-- IOMMU modes (crosses) --\n%s\n%s"
        (Table.render t) (Table.render crosses) chart;
    notes =
      [
        Printf.sprintf "model: Gbps(C) = 1500B x 8 x S/C at S = %.2f GHz"
          Paper.clock_ghz;
        "the paper validated this model against hardware; the reproduction \
         inherits it (§3.3), so sweep and model coincide except where the \
         40G line rate would clip";
      ];
  }

let plan ?(quick = false) ?(seed = 42) () =
  let profile = Nic_profiles.mlx in
  let packets = if quick then 6_000 else 50_000 in
  let warmup = if quick then 10_000 else 140_000 in
  let nseed = Seeds.netperf_stream ~seed in
  Exp.plan_of_list
    (List.map
       (fun mode () ->
         (mode, Netperf.stream ~packets ~warmup ~seed:nseed ~mode ~profile ()))
       Mode.evaluated)
    ~reduce:(reduce ~quick)

let run ?quick ?seed ?jobs () = Exp.run_plan ?jobs (plan ?quick ?seed ())
