(* Seed derivation for the experiment grid.

   Every experiment derives the streams it needs from one master seed
   through Splittable_rng paths. Two deliberate properties:

   - {b independence across subsystems}: the netperf stream, the RR
     simulation, DMA-trace capture, the tenant scheduler and each
     ablation section draw from distinct split streams, so no
     experiment's draws depend on what another experiment ran before
     it (the prerequisite for running cells in any parallel order);

   - {b common random numbers within a subsystem}: every cell that
     measures the *same* workload under a different configuration (the
     seven protection modes of a netperf sweep, the mode x policy grid
     of the interference study) shares one stream, the paired-
     comparison methodology the sequential harness always used - and
     what keeps identical (mode, NIC) points hitting the Netperf memo
     across experiments. *)

module Splittable_rng = Rio_sim.Splittable_rng

let root ~seed = Splittable_rng.create ~seed

let derive ~seed path =
  Splittable_rng.seed (Splittable_rng.path (root ~seed) path)

let netperf_stream ~seed = derive ~seed [ "workload"; "netperf-stream" ]
let netperf_rr ~seed = derive ~seed [ "workload"; "netperf-rr" ]
let nic_trace ~seed = derive ~seed [ "workload"; "nic-trace" ]
let bonnie ~seed = derive ~seed [ "workload"; "bonnie" ]
let interference ~seed ~trial =
  derive ~seed [ "interference"; Printf.sprintf "trial%d" trial ]
let iotlb_miss ~seed = derive ~seed [ "iotlb-miss" ]
let ablation ~seed ~section = derive ~seed [ "ablations"; section ]
