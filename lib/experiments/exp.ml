type t = { id : string; title : string; body : string; notes : string list }

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "=== %s: %s ===\n\n" t.id t.title);
  Buffer.add_string buf t.body;
  if t.notes <> [] then begin
    Buffer.add_char buf '\n';
    List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n)) t.notes
  end;
  Buffer.contents buf

(* {1 The cell/reduce contract (DESIGN.md §10)}

   An experiment's grid is a flat array of independent pure cells plus
   one reduce step. Cells may run in any order, on any domain; the
   reduce always sees their results indexed by cell position, so the
   rendered artifact is byte-identical at every [--jobs] level. The
   result type of the cells is private to each experiment, hence the
   existential. *)

type plan =
  | Plan : {
      cells : (unit -> 'a) array;
      reduce : 'a array -> t;
    }
      -> plan

let plan_of_list cells ~reduce =
  Plan { cells = Array.of_list cells; reduce = (fun rs -> reduce (Array.to_list rs)) }

let cell_count (Plan { cells; _ }) = Array.length cells

let run_plan ?jobs (Plan { cells; reduce }) =
  reduce (Rio_exec.Pool.run ?jobs cells)

(* Flatten many plans into one task list so a single pool schedules the
   whole registry; reduces then run sequentially in plan order (they are
   cheap - rendering only). *)
let run_plans ?jobs plans =
  let tasks = ref [] in
  let finishers =
    List.map
      (fun (id, Plan { cells; reduce }) ->
        let out = Array.make (Array.length cells) None in
        Array.iteri
          (fun i cell -> tasks := (fun () -> out.(i) <- Some (cell ())) :: !tasks)
          cells;
        (id, fun () -> reduce (Array.map Option.get out)))
      plans
  in
  let tasks = Array.of_list (List.rev !tasks) in
  ignore (Rio_exec.Pool.run ?jobs tasks : unit array);
  List.map (fun (id, finish) -> (id, finish ())) finishers
