module Mode = Rio_protect.Mode
module Paper = Rio_report.Paper
module Table = Rio_report.Table
module Cost_model = Rio_sim.Cost_model
module Netperf = Rio_workload.Netperf
module Apache = Rio_workload.Apache
module Memcached = Rio_workload.Memcached
module Server_model = Rio_workload.Server_model
module Nic_profiles = Rio_device.Nic_profiles

type cell = { throughput : float; cpu : float; line_limited : bool }

type mode_row = {
  mode : Mode.t;
  protection_per_packet : float;
  cells : (Paper.benchmark * cell) list;
}

type grid = { nic : Paper.nic; rows : mode_row list }

let profile_of = function Paper.Mlx -> Nic_profiles.mlx | Paper.Brcm -> Nic_profiles.brcm

let mode_row ~quick ~seed ~profile mode =
  let packets = if quick then 6_000 else 50_000 in
  let warmup = if quick then 10_000 else 140_000 in
  let s =
    Netperf.stream ~packets ~warmup ~seed:(Seeds.netperf_stream ~seed) ~mode
      ~profile ()
  in
  let r =
    Netperf.rr
      ~transactions:(if quick then 500 else 5_000)
      ~seed:(Seeds.netperf_rr ~seed) ~mode ~profile ()
  in
  let cost = Cost_model.default in
  let server run =
    let (x : Server_model.result) = run in
    {
      throughput = x.Server_model.requests_per_sec;
      cpu = x.Server_model.cpu;
      line_limited = x.Server_model.line_limited;
    }
  in
  let prot = s.Netperf.protection_per_packet in
  {
    mode;
    protection_per_packet = prot;
    cells =
      [
        ( Paper.Stream,
          {
            throughput = s.Netperf.gbps;
            cpu = s.Netperf.cpu;
            line_limited = s.Netperf.line_limited;
          } );
        ( Paper.Rr,
          {
            throughput = r.Netperf.transactions_per_sec;
            cpu = r.Netperf.cpu;
            line_limited = false;
          } );
        ( Paper.Apache_1m,
          server (Apache.run Apache.MB1 ~profile ~protection_per_packet:prot ~cost) );
        ( Paper.Apache_1k,
          server (Apache.run Apache.KB1 ~profile ~protection_per_packet:prot ~cost) );
        ( Paper.Memcached,
          server (Memcached.run ~profile ~protection_per_packet:prot ~cost) );
      ];
  }

(* Rows are memoized at (quick, seed, nic, mode) granularity so this
   experiment's parallel cells, table2's cells and the assembled grids
   all share one measurement per point; the grid-level memo on top
   keeps [compute] physically cached (and cheap for table2's reduce,
   which runs after the pool has already filled the row memo). Both
   memos are domain-safe. *)
let row_cache : (bool * int * Paper.nic * Mode.t, mode_row) Rio_exec.Memo.t =
  Rio_exec.Memo.create ~size:32 ()

let cached_mode_row ~quick ~seed nic mode =
  Rio_exec.Memo.find_or_add row_cache (quick, seed, nic, mode) (fun () ->
      mode_row ~quick ~seed ~profile:(profile_of nic) mode)

let grid_cache : (bool * int * Paper.nic, grid) Rio_exec.Memo.t =
  Rio_exec.Memo.create ~size:4 ()

let compute ?(quick = false) ?(seed = 42) nic =
  Rio_exec.Memo.find_or_add grid_cache (quick, seed, nic) (fun () ->
      { nic; rows = List.map (cached_mode_row ~quick ~seed nic) Mode.evaluated })

let cell grid mode bench =
  let row = List.find (fun r -> r.mode = mode) grid.rows in
  List.assoc bench row.cells

let bench_unit = function
  | Paper.Stream -> "Gbps"
  | Paper.Rr -> "tps"
  | Paper.Apache_1m | Paper.Apache_1k -> "req/s"
  | Paper.Memcached -> "ops/s"

let grid_table grid =
  let headers =
    "mode"
    :: List.concat_map
         (fun b ->
           [
             Printf.sprintf "%s (%s)" (Paper.benchmark_name b) (bench_unit b);
             "cpu";
           ])
         Paper.benchmarks
  in
  let t = Table.make ~headers in
  List.iter
    (fun row ->
      let cells =
        List.concat_map
          (fun b ->
            let c = List.assoc b row.cells in
            let v =
              if c.throughput >= 1000. then
                Printf.sprintf "%.0f%s" c.throughput
                  (if c.line_limited then "*" else "")
              else
                Printf.sprintf "%.2f%s" c.throughput
                  (if c.line_limited then "*" else "")
            in
            [ v; Table.cell_pct c.cpu ])
          Paper.benchmarks
      in
      Table.add_row t (Mode.name row.mode :: cells))
    grid.rows;
  Table.render t

let stream_chart grid =
  Rio_report.Chart.hbar ~unit_label:" Gbps"
    (List.map
       (fun row ->
         ( Mode.name row.mode,
           (List.assoc Paper.Stream row.cells).throughput ))
       grid.rows)

let reduce ~quick ~seed () =
  let mlx = compute ~quick ~seed Paper.Mlx in
  let brcm = compute ~quick ~seed Paper.Brcm in
  let body =
    Printf.sprintf
      "-- mlx (ConnectX3 40GbE) --\n%s\n%s\n-- brcm (BCM57810 10GbE) --\n%s\n%s"
      (grid_table mlx) (stream_chart mlx) (grid_table brcm) (stream_chart brcm)
  in
  {
    Exp.id = "figure12";
    title = "Performance of the IOMMU modes (Mellanox top, Broadcom bottom)";
    body;
    notes =
      [
        "'*' marks line-rate-limited cells, where CPU is the metric of interest";
        "normalized ratios against the paper's Table 2 are printed by the table2 \
         experiment";
      ];
  }

(* The (nic, mode) grid as 14 independent row cells; the reduce then
   assembles both grids from the row memo the cells just filled. *)
let row_cells ~quick ~seed =
  List.concat_map
    (fun nic ->
      List.map
        (fun mode () -> cached_mode_row ~quick ~seed nic mode)
        Mode.evaluated)
    [ Paper.Mlx; Paper.Brcm ]

let plan ?(quick = false) ?(seed = 42) () =
  Exp.plan_of_list (row_cells ~quick ~seed)
    ~reduce:(fun (_ : mode_row list) -> reduce ~quick ~seed ())

let run ?quick ?seed ?jobs () = Exp.run_plan ?jobs (plan ?quick ?seed ())
