(** Table 2: normalized performance - the rIOMMU variants' throughput
    and CPU divided by each other mode's, compared cell by cell against
    the paper's published ratios. *)

val ratios :
  ?quick:bool ->
  ?seed:int ->
  Rio_report.Paper.nic ->
  Rio_report.Paper.benchmark ->
  riommu:Rio_protect.Mode.t ->
  vs:Rio_protect.Mode.t ->
  float * float
(** (throughput ratio, cpu ratio) measured. *)

val plan : ?quick:bool -> ?seed:int -> unit -> Exp.plan
(** The cells are {!Figure12.row_cells} (shared memo), the reduce
    computes the ratio blocks. *)

val run : ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Exp.t
