module Addr = Rio_memory.Addr
module Coherency = Rio_memory.Coherency
module Frame_allocator = Rio_memory.Frame_allocator
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model
module Rng = Rio_sim.Rng
module Mode = Rio_protect.Mode
module Dma_api = Rio_protect.Dma_api
module Rpte = Rio_core.Rpte
module Table = Rio_report.Table

(* {1 Burst-length amortization} *)

let burst_sweep ~rounds =
  let t =
    Table.make
      ~headers:[ "unmap burst"; "riommu cycles/pair"; "of which invalidation" ]
  in
  List.iter
    (fun burst ->
      let api =
        Dma_api.create
          {
            (Dma_api.default_config ~mode:Mode.Riommu) with
            Dma_api.ring_sizes = [ 512 ];
          }
      in
      let frames = Dma_api.frames api in
      let buf = Frame_allocator.alloc_exn frames in
      let pairs = ref 0 in
      Dma_api.reset_driver_cycles api;
      for _ = 1 to rounds do
        let handles =
          List.init burst (fun _ ->
              Result.get_ok
                (Dma_api.map api ~ring:0 ~phys:buf ~bytes:1500
                   ~dir:Rpte.Bidirectional))
        in
        List.iteri
          (fun i h ->
            ignore (Dma_api.unmap api h ~end_of_burst:(i = burst - 1));
            incr pairs)
          handles
      done;
      let per_pair = Dma_api.driver_cycles api / !pairs in
      let inv_share = Cost_model.default.Cost_model.iotlb_invalidate / burst in
      Table.add_row t
        [ Table.cell_i burst; Table.cell_i per_pair; Table.cell_i inv_share ])
    [ 1; 4; 16; 64; 200; 256 ];
  Table.render t

(* {1 Ring sizing vs offered load (§4: N >= L)} *)

let ring_sizing ~attempts =
  let t =
    Table.make ~headers:[ "ring size N"; "in-flight L"; "overflow rate" ]
  in
  List.iter
    (fun (n, l) ->
      let api =
        Dma_api.create
          {
            (Dma_api.default_config ~mode:Mode.Riommu) with
            Dma_api.ring_sizes = [ n ];
          }
      in
      let frames = Dma_api.frames api in
      let buf = Frame_allocator.alloc_exn frames in
      let live = Queue.create () in
      let overflows = ref 0 in
      for _ = 1 to attempts do
        (* keep L DMAs in flight: map one, retire the oldest beyond L *)
        (match Dma_api.map api ~ring:0 ~phys:buf ~bytes:100 ~dir:Rpte.Bidirectional with
        | Ok h -> Queue.add h live
        | Error (`Overflow | `Exhausted) -> incr overflows);
        if Queue.length live > l then begin
          let h = Queue.pop live in
          ignore (Dma_api.unmap api h ~end_of_burst:true)
        end
      done;
      Table.add_row t
        [
          Table.cell_i n;
          Table.cell_i l;
          Table.cell_pct (float_of_int !overflows /. float_of_int attempts);
        ])
    [ (128, 64); (128, 126); (128, 200); (512, 200); (512, 510) ];
  Table.render t

(* {1 Baseline IOTLB capacity vs working set} *)

let iotlb_capacity ?(seed = 17) ~accesses () =
  let t =
    Table.make ~headers:[ "IOTLB entries"; "working set (pages)"; "miss rate" ]
  in
  List.iter
    (fun (capacity, pool) ->
      let api =
        Dma_api.create
          {
            (Dma_api.default_config ~mode:Mode.Strict) with
            Dma_api.iotlb_capacity = capacity;
            total_frames = pool + 64;
          }
      in
      let frames = Dma_api.frames api in
      let rng = Rng.create ~seed in
      let addrs =
        Array.init pool (fun _ ->
            let buf = Frame_allocator.alloc_exn frames in
            match
              Dma_api.map api ~ring:0 ~phys:buf ~bytes:Addr.page_size
                ~dir:Rpte.Bidirectional
            with
            | Ok h -> Dma_api.addr api h
            | Error _ -> failwith "ablation: map failed")
      in
      (* count misses by cost: a miss pays the 4-reference walk *)
      let clock = Dma_api.clock api in
      let walk = 4 * Cost_model.default.Cost_model.io_walk_ref in
      let misses = ref 0 in
      for _ = 1 to accesses do
        let addr = addrs.(Rng.int rng pool) in
        let _, c =
          Cycles.measure clock (fun () ->
              ignore (Dma_api.translate api ~addr ~offset:0 ~write:false))
        in
        if c >= walk then incr misses
      done;
      Table.add_row t
        [
          Table.cell_i capacity;
          Table.cell_i pool;
          Table.cell_pct (float_of_int !misses /. float_of_int accesses);
        ])
    [ (64, 16); (64, 64); (64, 256); (64, 2048); (256, 256); (1024, 256) ];
  Table.render t

(* {1 Coherent vs non-coherent page walks} *)

let coherency_cost ~pairs =
  let t =
    Table.make
      ~headers:[ "design"; "non-coherent cyc/pair"; "coherent cyc/pair"; "saved" ]
  in
  let measure mode =
    let api = Dma_api.create (Dma_api.default_config ~mode) in
    let buf = Frame_allocator.alloc_exn (Dma_api.frames api) in
    (* warm the allocator *)
    for _ = 1 to 50 do
      match Dma_api.map api ~ring:0 ~phys:buf ~bytes:1500 ~dir:Rpte.Bidirectional with
      | Ok h -> ignore (Dma_api.unmap api h ~end_of_burst:false)
      | Error _ -> ()
    done;
    Dma_api.reset_driver_cycles api;
    for _ = 1 to pairs do
      match Dma_api.map api ~ring:0 ~phys:buf ~bytes:1500 ~dir:Rpte.Bidirectional with
      | Ok h -> ignore (Dma_api.unmap api h ~end_of_burst:false)
      | Error _ -> ()
    done;
    Dma_api.driver_cycles api / pairs
  in
  let nc = measure Mode.Riommu_minus in
  let c = measure Mode.Riommu in
  Table.add_row t
    [
      "riommu (flat table)";
      Table.cell_i nc;
      Table.cell_i c;
      Table.cell_i (nc - c);
    ];
  Table.render t

(* {1 Prefetch value: in-order vs out-of-order ring access} *)

let prefetch_value ?(seed = 23) ~packets () =
  let t =
    Table.make ~headers:[ "access order"; "walks per translation"; "prefetch hits" ]
  in
  let run ~shuffle =
    let clock = Cycles.create () in
    let cost = Cost_model.default in
    let frames = Frame_allocator.create ~total_frames:10_000 in
    let coherency = Coherency.create ~coherent:true ~cost ~clock in
    let device =
      Rio_core.Rdevice.create ~rid:7 ~ring_sizes:[ 512 ] ~frames ~coherency
    in
    let hw = Rio_core.Hw.create ~clock ~cost in
    Rio_core.Hw.attach hw device;
    let driver = Rio_core.Driver.create ~device ~hw ~clock ~cost in
    let rng = Rng.create ~seed in
    let buf = Frame_allocator.alloc_exn frames in
    let done_ = ref 0 in
    while !done_ < packets do
      let n = 32 in
      let iovas =
        Array.init n (fun _ ->
            Result.get_ok
              (Rio_core.Driver.map driver ~rid:0 ~phys:buf ~size:1500
                 ~dir:Rpte.Bidirectional))
      in
      if shuffle then Rng.shuffle rng iovas;
      Array.iter
        (fun iova ->
          ignore (Rio_core.Hw.rtranslate hw ~bdf:7 ~iova ~write:true))
        iovas;
      Array.iteri
        (fun i iova ->
          ignore (Rio_core.Driver.unmap driver iova ~end_of_burst:(i = n - 1)))
        iovas;
      done_ := !done_ + n
    done;
    ( float_of_int (Rio_core.Hw.walks hw) /. float_of_int packets,
      Rio_core.Hw.prefetch_hits hw )
  in
  let seq_walks, seq_hits = run ~shuffle:false in
  let ooo_walks, ooo_hits = run ~shuffle:true in
  Table.add_row t
    [ "in order"; Table.cell_f seq_walks; Table.cell_i seq_hits ];
  Table.add_row t
    [ "shuffled"; Table.cell_f ooo_walks; Table.cell_i ooo_hits ];
  Table.render t

(* {1 Long-term allocator pathology growth} *)

(* The strict-mode allocation cost is not a constant: it grows with run
   time as the IOVA space layout degrades (the companion FAST'15 paper's
   "long-term" pathology). Drive the two allocators with the same NIC
   churn and report windowed averages. *)
let pathology_growth ?(seed = 3) ~windows ~rounds_per_window () =
  let t =
    Table.make
      ~headers:
        [ "packets"; "linux alloc cyc (strict)"; "fast alloc cyc (strict+)" ]
  in
  let run kind =
    let clock = Cycles.create () in
    let cost = Cost_model.default in
    let alloc =
      Rio_iova.Allocator.create ~kind ~limit_pfn:0xFFFFF ~clock ~cost
    in
    let rng = Rng.create ~seed in
    let h_fifo = Queue.create () and d_fifo = Queue.create () in
    let alloc_one fifo size =
      match Rio_iova.Allocator.alloc alloc ~size with
      | Ok pfn -> Queue.add pfn fifo
      | Error `Exhausted -> ()
    in
    for _ = 1 to 512 do
      alloc_one h_fifo 1;
      alloc_one d_fifo (1 + Rng.int rng 2)
    done;
    let free_one fifo =
      match Queue.take_opt fifo with
      | None -> ()
      | Some pfn -> (
          match Rio_iova.Allocator.find alloc ~pfn with
          | Some node -> Rio_iova.Allocator.free alloc node
          | None -> ())
    in
    List.init windows (fun _ ->
        let t0 = Cycles.now clock in
        let allocs = ref 0 in
        for _ = 1 to rounds_per_window do
          let events = Array.init 32 (fun i -> i < 16) in
          Rng.shuffle rng events;
          Array.iter
            (fun is_h ->
              let fifo = if is_h then h_fifo else d_fifo in
              free_one fifo;
              let t1 = Cycles.now clock in
              alloc_one fifo (if is_h then 1 else 1 + Rng.int rng 2);
              ignore t1;
              incr allocs)
            events
        done;
        (* alloc cycles only: subtract nothing - find/free are constant,
           window deltas are dominated by allocation scans *)
        Cycles.since clock t0 / !allocs)
  in
  let linux = run Rio_iova.Allocator.Linux in
  let fast = run Rio_iova.Allocator.Fast in
  List.iteri
    (fun i (l, f) ->
      Table.add_row t
        [
          Table.cell_i ((i + 1) * rounds_per_window * 16);
          Table.cell_i l;
          Table.cell_i f;
        ])
    (List.combine linux fast);
  Table.render t

(* {1 IOVA magazine cache (--rcache) vs the Table 1 allocator pathology} *)

(* The one mitigation Linux actually shipped for the strict-mode
   allocation pathology: a Bonwick-style magazine cache (iova rcache) in
   front of the red-black tree. Drive the baseline strict mode with the
   NIC's ring churn - FIFO frees, mixed one-page header and multi-page
   data buffers - and compare the allocator component with the knob off
   and on. *)
let rcache_value ?(seed = 9) ~rounds () =
  let t =
    Table.make
      ~headers:
        [
          "rcache"; "iova alloc cyc/map"; "iova free cyc/unmap";
          "strict cyc/pair"; "magazine hit rate";
        ]
  in
  List.iter
    (fun rcache ->
      let api =
        Dma_api.create
          { (Dma_api.default_config ~mode:Mode.Strict) with Dma_api.rcache }
      in
      let frames = Dma_api.frames api in
      let buf = Frame_allocator.alloc_exn frames in
      let rng = Rng.create ~seed in
      let h_fifo = Queue.create () and d_fifo = Queue.create () in
      let map_one fifo bytes =
        match Dma_api.map api ~ring:0 ~phys:buf ~bytes ~dir:Rpte.Bidirectional with
        | Ok h -> Queue.add h fifo
        | Error _ -> ()
      in
      let data_bytes rng = 2048 + (Rng.int rng 2 * 4096) in
      for _ = 1 to 256 do
        map_one h_fifo 100;
        map_one d_fifo (data_bytes rng)
      done;
      let churn n =
        let pairs = ref 0 in
        for _ = 1 to n do
          let events = Array.init 32 (fun i -> i < 16) in
          Rng.shuffle rng events;
          Array.iter
            (fun is_h ->
              let fifo = if is_h then h_fifo else d_fifo in
              (match Queue.take_opt fifo with
              | Some h -> ignore (Dma_api.unmap api h ~end_of_burst:true)
              | None -> ());
              map_one fifo (if is_h then 100 else data_bytes rng);
              incr pairs)
            events
        done;
        !pairs
      in
      ignore (churn (rounds / 4));
      Dma_api.reset_driver_cycles api;
      (match Dma_api.map_breakdown api with
      | Some b -> Rio_sim.Breakdown.reset b
      | None -> ());
      (match Dma_api.unmap_breakdown api with
      | Some b -> Rio_sim.Breakdown.reset b
      | None -> ());
      let pairs = churn rounds in
      let component breakdown c =
        match breakdown with
        | Some b -> Rio_sim.Breakdown.mean_cycles b c
        | None -> 0.
      in
      let hit_rate =
        match Dma_api.rcache_stats api with
        | Some s when s.Rio_iova.Magazine.hits + s.Rio_iova.Magazine.misses > 0
          ->
            float_of_int s.Rio_iova.Magazine.hits
            /. float_of_int (s.Rio_iova.Magazine.hits + s.Rio_iova.Magazine.misses)
        | Some _ | None -> 0.
      in
      Table.add_row t
        [
          (if rcache then "on" else "off");
          Table.cell_f
            (component (Dma_api.map_breakdown api) Rio_sim.Breakdown.Iova_alloc);
          Table.cell_f
            (component (Dma_api.unmap_breakdown api) Rio_sim.Breakdown.Iova_free);
          Table.cell_i (Dma_api.driver_cycles api / pairs);
          Table.cell_pct hit_rate;
        ])
    [ false; true ];
  Table.render t

let headers =
  [
    "-- rIOTLB invalidation amortization vs unmap burst length --";
    "-- ring sizing: overflow when N < L (Section 4) --";
    "-- baseline IOTLB capacity vs concurrently-mapped working set --";
    "-- page-walk coherency: riommu- vs riommu --";
    "-- rIOTLB prefetch: in-order vs out-of-order ring access --";
    "-- long-term IOVA allocator pathology (avg cycles per map+unmap pair, windowed) --";
    "-- IOVA magazine cache (--rcache) vs the strict-mode allocator pathology --";
  ]

let reduce sections =
  let body =
    String.concat "\n"
      (List.concat (List.map2 (fun h s -> [ h; s ]) headers sections))
  in
  {
    Exp.id = "ablations";
    title = "Design-choice ablations";
    body;
    notes =
      [
        "burst ~200 (netperf's average) pushes the per-pair invalidation share \
         to ~10 cycles, matching the paper's 'negligible' claim";
        "out-of-order access stays correct (Section 4) but forfeits the \
         prefetched next-rPTE, paying a flat-table walk per translation";
        "the Linux allocator's cost GROWS with run time (the long-term \
         pathology) while the constant-time allocator stays flat - the \
         reason strict-mode numbers depend on run length";
        "the magazine cache (--rcache, Linux's iova-rcache mitigation) \
         serves steady-state ring churn from per-size magazines, so the \
         Table 1 allocation pathology collapses to a near-constant cost \
         without touching the red-black tree";
      ];
  }

(* each ablation section is an independent cell; the seeded ones draw
   their stream from the experiment seed via the per-section path *)
let plan ?(quick = false) ?(seed = 42) () =
  let rounds = if quick then 20 else 200 in
  let attempts = if quick then 2_000 else 20_000 in
  let accesses = if quick then 2_000 else 20_000 in
  let pairs = if quick then 200 else 2_000 in
  let packets = if quick then 2_000 else 20_000 in
  let growth_windows = if quick then 4 else 8 in
  let growth_rounds = if quick then 200 else 2_000 in
  let rcache_rounds = if quick then 150 else 1_500 in
  let section name = Seeds.ablation ~seed ~section:name in
  Exp.plan_of_list
    [
      (fun () -> burst_sweep ~rounds);
      (fun () -> ring_sizing ~attempts);
      (fun () -> iotlb_capacity ~seed:(section "iotlb-capacity") ~accesses ());
      (fun () -> coherency_cost ~pairs);
      (fun () -> prefetch_value ~seed:(section "prefetch-value") ~packets ());
      (fun () ->
        pathology_growth
          ~seed:(section "pathology-growth")
          ~windows:growth_windows ~rounds_per_window:growth_rounds ());
      (fun () -> rcache_value ~seed:(section "rcache-value") ~rounds:rcache_rounds ());
    ]
    ~reduce

let run ?quick ?seed ?jobs () = Exp.run_plan ?jobs (plan ?quick ?seed ())
