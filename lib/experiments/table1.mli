(** Table 1: average cycle breakdown of the (un)map driver functions
    under strict / strict+ / defer / defer+, measured from the netperf
    stream simulation on the mlx profile and compared against the
    paper's published cells. *)

val plan : ?quick:bool -> ?seed:int -> unit -> Exp.plan
(** One cell per protection mode (DESIGN.md §10). *)

val run : ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Exp.t
