module Mode = Rio_protect.Mode
module Shared_iotlb = Rio_domain.Shared_iotlb
module Scheduler = Rio_domain.Scheduler
module Table = Rio_report.Table

type cell = {
  mode : Mode.t;
  policy : Shared_iotlb.policy;
  noisy : int;
  victim_ops_per_mcycle : float;
  victim_degradation : float;
  victim_miss_rate : float;
  victim_evicted_by_other : int;
  noisy_ops_per_mcycle : float;
}

let modes = [ Mode.Strict; Mode.Defer; Mode.Riommu ]
let policies = [ Shared_iotlb.Shared; Shared_iotlb.Partitioned ]

(* Alternate NVMe and SATA neighbors so the noise mixes device classes. *)
let neighbors n =
  List.init n (fun i ->
      if i mod 2 = 0 then
        Scheduler.nvme_tenant ~name:(Printf.sprintf "nvme%d" i) ()
      else Scheduler.sata_tenant ~name:(Printf.sprintf "sata%d" i) ())

let one ~ios_per_tenant ~seed ~mode ~policy ~noisy ~baseline =
  let victim = Scheduler.nic_tenant ~latency_critical:true ~name:"victim" () in
  let cfg =
    Scheduler.default_config ~ios_per_tenant ~seed ~mode ~policy ()
  in
  let results = Scheduler.run cfg (victim :: neighbors noisy) in
  let v = List.hd results in
  let noisy_thr =
    List.fold_left
      (fun acc r -> acc +. r.Scheduler.ops_per_mcycle)
      0. (List.tl results)
  in
  let degradation =
    if baseline <= 0. then 0.
    else max 0. ((baseline -. v.Scheduler.ops_per_mcycle) /. baseline)
  in
  {
    mode;
    policy;
    noisy;
    victim_ops_per_mcycle = v.Scheduler.ops_per_mcycle;
    victim_degradation = degradation;
    victim_miss_rate = v.Scheduler.miss_rate;
    victim_evicted_by_other = v.Scheduler.evictions_by_other;
    noisy_ops_per_mcycle = noisy_thr;
  }

let measure ?(ios_per_tenant = 1_000) ?(seed = 42) ~noisy_counts () =
  List.concat_map
    (fun mode ->
      List.concat_map
        (fun policy ->
          (* victim-alone run anchors the degradation *)
          let alone =
            one ~ios_per_tenant ~seed ~mode ~policy ~noisy:0 ~baseline:0.
          in
          let baseline = alone.victim_ops_per_mcycle in
          List.map
            (fun noisy ->
              one ~ios_per_tenant ~seed ~mode ~policy ~noisy ~baseline)
            noisy_counts)
        policies)
    modes

let reduce cells =
  (* cells arrive (mode, policy)-major with noisy ascending; the
     victim-alone run (noisy = 0) leads each group and anchors the
     degradation of the rows that follow it *)
  let t =
    Table.make
      ~headers:
        [
          "mode";
          "policy";
          "noisy";
          "victim ops/Mcyc";
          "degradation";
          "miss rate";
          "evicted by other";
          "noisy agg ops/Mcyc";
        ]
  in
  let baseline = ref 0. in
  let last = ref None in
  List.iter
    (fun c ->
      if c.noisy = 0 then baseline := c.victim_ops_per_mcycle
      else begin
        (match !last with
        | Some (m, p) when m <> c.mode || p <> c.policy -> Table.add_separator t
        | _ -> ());
        last := Some (c.mode, c.policy);
        let degradation =
          if !baseline <= 0. then 0.
          else max 0. ((!baseline -. c.victim_ops_per_mcycle) /. !baseline)
        in
        Table.add_row t
          [
            Mode.name c.mode;
            Shared_iotlb.policy_name c.policy;
            Table.cell_i c.noisy;
            Table.cell_f ~decimals:1 c.victim_ops_per_mcycle;
            Table.cell_pct degradation;
            Table.cell_pct c.victim_miss_rate;
            Table.cell_i c.victim_evicted_by_other;
            Table.cell_f ~decimals:1 c.noisy_ops_per_mcycle;
          ]
      end)
    cells;
  {
    Exp.id = "interference";
    title =
      "Multi-tenant IOTLB interference: noisy neighbors vs. a \
       latency-critical tenant";
    body = Table.render t;
    notes =
      [
        "shared policy: neighbors evict the victim's IOTLB entries, so its \
         per-I/O cost grows with tenant count (contention is observable)";
        "partitioned policy: per-domain slices + domain-scoped invalidation \
         hold the victim flat (contention is mitigable)";
        "riommu: one prefetched rIOTLB entry per ring - tenants cannot evict \
         each other by construction, so every row is flat";
      ];
  }

let plan ?(quick = false) ?(seed = 42) () =
  (* every (mode, policy, noisy) point - including the victim-alone
     anchors - is an independent cell; degradation is computed in the
     reduce so no cell depends on another's result *)
  let noisy_counts = [ 0; 2; 4; 8 ] in
  let ios_per_tenant = if quick then 300 else 1_500 in
  let sseed = Seeds.interference ~seed ~trial:0 in
  Exp.plan_of_list
    (List.concat_map
       (fun mode ->
         List.concat_map
           (fun policy ->
             List.map
               (fun noisy () ->
                 one ~ios_per_tenant ~seed:sseed ~mode ~policy ~noisy
                   ~baseline:0.)
               noisy_counts)
           policies)
       modes)
    ~reduce

let run ?quick ?seed ?jobs () = Exp.run_plan ?jobs (plan ?quick ?seed ())
