module Mode = Rio_protect.Mode
module Table = Rio_report.Table
module Bonnie = Rio_workload.Bonnie

let drives = [ ("SATA HDD (150 MB/s)", 150.); ("SATA SSD (500 MB/s)", 500.) ]
let modes = [ Mode.Strict; Mode.None_ ]

let reduce results =
  (* results arrive flat in (drive-major, mode-minor) cell order *)
  let t =
    Table.make
      ~headers:[ "drive"; "mode"; "MB/s"; "cpu busy"; "disk-bound" ]
  in
  List.iter
    (fun (drive, _) ->
      let rows =
        List.filter_map
          (fun ((d, mode), r) -> if d = drive then Some (mode, r) else None)
          results
      in
      List.iter
        (fun (mode, (r : Bonnie.result)) ->
          Table.add_row t
            [
              drive;
              Mode.name mode;
              Table.cell_f ~decimals:1 r.Bonnie.mbps;
              Table.cell_pct r.Bonnie.cpu_fraction;
              (if r.Bonnie.disk_seconds >= r.Bonnie.cpu_seconds then "yes" else "no");
            ])
        rows;
      let strict = List.assoc Mode.Strict rows in
      let none = List.assoc Mode.None_ rows in
      Table.add_row t
        [
          drive;
          "ratio";
          Table.cell_ratio (strict.Bonnie.mbps /. none.Bonnie.mbps);
          "";
          "";
        ];
      Table.add_separator t)
    drives;
  {
    Exp.id = "bonnie";
    title = "Bonnie++ sequential I/O: strict IOMMU vs none on SATA (Section 4)";
    body = Table.render t;
    notes =
      [
        "per-request (un)map costs (~7K cycles) vanish against millions of \
         cycles of disk service time: the ratio is 1.00x, as the paper reports";
      ];
  }

let plan ?(quick = false) ?(seed = 42) () =
  let requests = if quick then 300 else 2_000 in
  let bseed = Seeds.bonnie ~seed in
  Exp.plan_of_list
    (List.concat_map
       (fun (drive, bw) ->
         List.map
           (fun mode () ->
             ( (drive, mode),
               Bonnie.run ~requests ~seed:bseed ~mode ~disk_bandwidth_mbps:bw ()
             ))
           modes)
       drives)
    ~reduce

let run ?quick ?seed ?jobs () = Exp.run_plan ?jobs (plan ?quick ?seed ())
