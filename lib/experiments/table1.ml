module Mode = Rio_protect.Mode
module Paper = Rio_report.Paper
module Table = Rio_report.Table
module Compare = Rio_report.Compare
module Breakdown = Rio_sim.Breakdown
module Netperf = Rio_workload.Netperf
module Nic_profiles = Rio_device.Nic_profiles

let modes = [ Mode.Strict; Mode.Strict_plus; Mode.Defer; Mode.Defer_plus ]

let measure ~quick ~seed mode =
  let packets = if quick then 6_000 else 50_000 in
  let warmup = if quick then 10_000 else 140_000 in
  Netperf.stream ~packets ~warmup ~seed ~mode ~profile:Nic_profiles.mlx ()

let section ~results ~map components =
  let t =
    Table.make ~headers:("component" :: List.map Mode.name modes)
  in
  let mean_of result comp =
    let comps =
      if map then result.Netperf.map_components else result.Netperf.unmap_components
    in
    match List.assoc_opt comp comps with Some v -> v | None -> 0.
  in
  List.iter
    (fun comp ->
      let cells =
        List.map
          (fun mode ->
            let result = List.assoc mode results in
            let measured = mean_of result comp in
            match Paper.table1_cell ~map mode comp with
            | Some paper ->
                Compare.cell ~tolerance:0.5 ~paper:(float_of_int paper) ~measured ()
            | None -> Table.cell_f ~decimals:0 measured)
          modes
      in
      Table.add_row t (Breakdown.component_name comp :: cells))
    components;
  (* sum row *)
  let sums =
    List.map
      (fun mode ->
        let result = List.assoc mode results in
        let total =
          List.fold_left (fun acc c -> acc +. mean_of result c) 0. components
        in
        Table.cell_f ~decimals:0 total)
      modes
  in
  Table.add_separator t;
  Table.add_row t ("sum" :: sums);
  Table.render t

let reduce results =
  let map_components = [ Breakdown.Iova_alloc; Breakdown.Page_table; Breakdown.Other ] in
  let unmap_components =
    [
      Breakdown.Iova_find;
      Breakdown.Iova_free;
      Breakdown.Page_table;
      Breakdown.Iotlb_inv;
      Breakdown.Other;
    ]
  in
  let body =
    Printf.sprintf
      "cells are paper/measured cycles (ok within 50%%)\n\n-- map --\n%s\n-- unmap --\n%s"
      (section ~results ~map:true map_components)
      (section ~results ~map:false unmap_components)
  in
  {
    Exp.id = "table1";
    title = "Cycle breakdown of the IOMMU driver's (un)map functions";
    body;
    notes =
      [
        "strict-mode IOVA allocation is the emergent long-term allocator pathology; \
         its equilibrium depends on run length and live population (see EXPERIMENTS.md)";
      ];
  }

let plan ?(quick = false) ?(seed = 42) () =
  (* one cell per protection mode; all cells share the derived netperf
     workload stream (paired comparison across modes) *)
  let nseed = Seeds.netperf_stream ~seed in
  Exp.plan_of_list
    (List.map (fun mode () -> (mode, measure ~quick ~seed:nseed mode)) modes)
    ~reduce

let run ?quick ?seed ?jobs () = Exp.run_plan ?jobs (plan ?quick ?seed ())
