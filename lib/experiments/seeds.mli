(** Per-subsystem seed derivation from one master seed.

    Cells of the experiment grid must neither share mutable RNG state
    (scheduling order would leak into results) nor blindly take
    independent streams (paired comparisons across protection modes
    deliberately reuse one workload stream). This module fixes the
    derivation paths: subsystems get independent
    {!Rio_sim.Splittable_rng} streams, configurations within a
    subsystem share one - see DESIGN.md §10. *)

val derive : seed:int -> string list -> int
(** Collapse [path] under the master [seed] to an [Rng.create] seed. *)

val netperf_stream : seed:int -> int
val netperf_rr : seed:int -> int
val nic_trace : seed:int -> int
val bonnie : seed:int -> int
val interference : seed:int -> trial:int -> int
val iotlb_miss : seed:int -> int
val ablation : seed:int -> section:string -> int
