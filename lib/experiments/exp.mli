(** Common shape of a reproduced experiment. *)

type t = {
  id : string;  (** e.g. "table1" *)
  title : string;
  body : string;  (** rendered tables *)
  notes : string list;  (** caveats, calibration notes *)
}

val render : t -> string
(** Header, body, and notes, ready to print. *)

(** {1 The cell/reduce contract (DESIGN.md §10)}

    Every experiment exposes its measurement grid as a flat array of
    independent cells - pure thunks, each a function only of the
    experiment's configuration and its seed-derived RNG stream - plus a
    deterministic reduce that consumes the results {e indexed by cell
    position}, never by completion order. [run_plan ~jobs] may
    therefore schedule the cells on a domain pool in any interleaving
    and still render a byte-identical artifact. *)

type plan =
  | Plan : {
      cells : (unit -> 'a) array;
      reduce : 'a array -> t;
    }
      -> plan

val plan_of_list : (unit -> 'a) list -> reduce:('a list -> t) -> plan
(** List-flavored constructor; the reduce sees results in cell order. *)

val cell_count : plan -> int

val run_plan : ?jobs:int -> plan -> t
(** Run the cells on a {!Rio_exec.Pool} ([jobs] defaults to 1 =
    sequential, [0] = one worker per core) and reduce. *)

val run_plans : ?jobs:int -> (string * plan) list -> (string * t) list
(** Flatten several plans into one task list scheduled by a single
    pool (the [all] subcommand): cells from different experiments
    interleave freely, reduces run afterwards in plan order. *)
