(** Multi-tenant IOTLB interference (beyond the paper's evaluation).

    One latency-critical NIC tenant shares the IOMMU with a growing
    number of noisy NVMe/SATA neighbors. For each protection mode
    (strict / defer / riommu) and IOTLB policy (shared / partitioned),
    measures the victim's throughput degradation relative to running
    alone, its miss rate, and how many of its IOTLB entries the
    neighbors evicted. *)

type cell = {
  mode : Rio_protect.Mode.t;
  policy : Rio_domain.Shared_iotlb.policy;
  noisy : int;  (** noisy-neighbor count *)
  victim_ops_per_mcycle : float;
  victim_degradation : float;  (** fraction lost vs. running alone *)
  victim_miss_rate : float;
  victim_evicted_by_other : int;
  noisy_ops_per_mcycle : float;  (** aggregate neighbor throughput *)
}

val measure :
  ?ios_per_tenant:int ->
  ?seed:int ->
  noisy_counts:int list ->
  unit ->
  cell list
(** The full grid: every (mode, policy, noisy count). *)

val plan : ?quick:bool -> ?seed:int -> unit -> Exp.plan
val run : ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Exp.t
