(** Section 5.3: the IOTLB miss penalty in low-latency (user-level I/O)
    environments.

    Reproduces the ibverbs experiment: transmitting from a buffer picked
    at random out of a large previously-mapped pool (IOTLB misses
    nearly always) versus transmitting the same single buffer (IOTLB
    always hits). The latency difference is the miss penalty - a
    4-reference table walk, ~1,532 cycles (~0.5 us) on the paper's
    testbed - and approximates the benefit of the rIOMMU's prefetched
    rIOTLB in such setups. *)

type result = {
  hit_cycles : float;  (** device-side translation cost, IOTLB hit *)
  miss_cycles : float;  (** translation cost with random pool access *)
  penalty_cycles : float;
  penalty_us : float;
}

val measure : ?pool:int -> ?accesses:int -> ?seed:int -> unit -> result
val plan : ?quick:bool -> ?seed:int -> unit -> Exp.plan
val run : ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Exp.t
