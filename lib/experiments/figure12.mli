(** Figure 12: throughput and CPU for both NICs, five benchmarks, seven
    modes.

    [compute] runs the full measurement grid (memoized per (quick,
    seed, NIC) - domain-safely, so parallel cells share rows): the
    netperf stream simulation per (NIC, mode) provides the measured
    per-packet protection cost, from which stream/apache/memcached
    throughput and CPU follow via the §3.3 model; RR runs its own
    simulation. *)

type cell = { throughput : float; cpu : float; line_limited : bool }
(** [throughput] units depend on the benchmark: Gbps for stream,
    transactions/s for RR, requests/s for apache and memcached. *)

type mode_row = {
  mode : Rio_protect.Mode.t;
  protection_per_packet : float;
  cells : (Rio_report.Paper.benchmark * cell) list;
}

type grid = { nic : Rio_report.Paper.nic; rows : mode_row list }

val compute : ?quick:bool -> ?seed:int -> Rio_report.Paper.nic -> grid
(** [quick] shortens the simulations (for tests); default false.
    [seed] is the master seed the workload streams derive from. *)

val cell : grid -> Rio_protect.Mode.t -> Rio_report.Paper.benchmark -> cell
(** Raises [Not_found] for modes outside the evaluated seven. *)

val row_cells :
  quick:bool -> seed:int -> (unit -> mode_row) list
(** The 14 (NIC, mode) measurement cells, memo-backed; shared with
    table2's plan so the two experiments never measure a point twice. *)

val plan : ?quick:bool -> ?seed:int -> unit -> Exp.plan
val run : ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Exp.t
