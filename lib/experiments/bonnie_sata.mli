(** Section 4 (Applicability): Bonnie++ sequential I/O on SATA drives.

    Strict IOMMU protection versus no IOMMU on a SATA HDD and a SATA
    SSD: the disk is the bottleneck, so the throughput is
    indistinguishable - the reason the rIOMMU does not target slow
    AHCI devices. *)

val plan : ?quick:bool -> ?seed:int -> unit -> Exp.plan
val run : ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Exp.t
