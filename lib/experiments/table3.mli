(** Table 3: Netperf RR round-trip times in microseconds for both NICs
    across the seven modes, against the paper's measurements. *)

val plan : ?quick:bool -> ?seed:int -> unit -> Exp.plan
(** One cell per (NIC, mode) RR simulation (DESIGN.md §10). *)

val run : ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Exp.t
