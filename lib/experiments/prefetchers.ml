module Table = Rio_report.Table
module Trace = Rio_prefetch.Trace
module Evaluate = Rio_prefetch.Evaluate
module Mode = Rio_protect.Mode
module Dma_api = Rio_protect.Dma_api
module Op_log = Rio_protect.Op_log
module Nic = Rio_device.Nic
module Nic_profiles = Rio_device.Nic_profiles

(* The paper fed its prefetchers DMA traces logged from emulated devices;
   here the trace is logged from the strict-mode NIC model itself: every
   map/unmap/device-access of a netperf-style run, converted to
   page-granular events. *)
let nic_trace ~seed ~packets =
  let profile = { Nic_profiles.mlx with rx_ring = 128; tx_ring = 128 } in
  let api =
    Dma_api.create
      {
        (Dma_api.default_config ~mode:Mode.Strict) with
        Dma_api.ring_sizes = Nic.ring_sizes profile;
      }
  in
  let log = Op_log.create () in
  Dma_api.set_log api (Some log);
  let rng = Rio_sim.Rng.create ~seed in
  let mem = Rio_memory.Phys_mem.create () in
  let nic = Nic.create ~data_movement:false ~profile ~api ~mem ~rng () in
  ignore (Nic.rx_fill nic);
  let payload = Bytes.make 1500 'x' in
  let sent = ref 0 in
  while !sent < packets do
    for _ = 1 to 8 do
      ignore (Nic.device_rx_deliver nic ~payload:(Bytes.make 64 'a'))
    done;
    ignore (Nic.rx_reap nic);
    ignore (Nic.rx_fill nic);
    ignore (Nic.tx_reclaim nic);
    for _ = 1 to 16 do
      match Nic.tx_submit nic ~payload with
      | Ok () -> incr sent
      | Error (`Ring_full | `Map_failed) -> ()
    done;
    ignore (Nic.device_tx_process nic ~max:16)
  done;
  let events = ref [] in
  Op_log.iter log (fun e ->
      let page addr = Int64.to_int (Int64.shift_right_logical addr 12) in
      match e.Op_log.op with
      | Op_log.Map { addr; _ } -> events := Trace.Map (page addr) :: !events
      | Op_log.Unmap { addr } -> events := Trace.Unmap (page addr) :: !events
      | Op_log.Access { addr; ok = true; _ } ->
          events := Trace.Access (page addr) :: !events
      | Op_log.Access { ok = false; _ } -> ());
  Array.of_list (List.rev !events)

let ring = 256
let histories = [ 64; 256; 1024; 4096 ]

let predictors : (module Rio_prefetch.Prefetcher.S) list =
  [ (module Rio_prefetch.Markov);
    (module Rio_prefetch.Recency);
    (module Rio_prefetch.Distance) ]

let reduce rows =
  let t =
    Table.make
      ~headers:
        ("prefetcher" :: "variant"
        :: List.map (fun h -> Printf.sprintf "hist=%d" h) histories)
  in
  (* rows arrive in cell order: predictor-major, then variant, with the
     riotlb reference row last *)
  let riotlb_row = List.nth rows (List.length rows - 1) in
  List.iteri
    (fun i row -> if i < List.length rows - 1 then Table.add_row t row)
    rows;
  Table.add_separator t;
  Table.add_row t riotlb_row;
  {
    Exp.id = "prefetchers";
    title = "TLB prefetchers vs the rIOTLB on ring DMA traces (Section 5.4)";
    body = Table.render t;
    notes =
      [
        "Markov/Recency/Distance replay a DMA trace logged from the strict-mode \
         NIC model (the paper logged emulated QEMU devices the same way)";
        Printf.sprintf "rIOTLB ring size %d" ring;
        "paper findings reproduced: baseline variants are ineffective (IOVAs \
         are invalidated right after use); modified Markov/Recency only predict \
         once their history exceeds the ring; Distance stays ineffective; the \
         rIOTLB needs two entries and its predictions are nearly always right";
      ];
  }
(* the logged NIC trace is shared by all six predictor cells; under a
   parallel pool the first cell to need it computes it and the rest
   block on the memo slot rather than redoing the NIC run *)
let shared_trace =
  let cache = Rio_exec.Memo.create ~size:4 () in
  fun ~seed ~packets ->
    Rio_exec.Memo.find_or_add cache (seed, packets) (fun () ->
        nic_trace ~seed ~packets)

let plan ?(quick = false) ?(seed = 42) () =
  let packets = if quick then 4_000 else 20_000 in
  let tseed = Seeds.nic_trace ~seed in
  let predictor_cells =
    List.concat_map
      (fun ((module P : Rio_prefetch.Prefetcher.S) as m) ->
        List.map
          (fun retain () ->
            let trace = shared_trace ~seed:tseed ~packets in
            let cells =
              List.map
                (fun history ->
                  let r =
                    Evaluate.run m ~history ~retain_invalidated:retain trace
                  in
                  Table.cell_pct r.Evaluate.hit_rate)
                histories
            in
            P.name :: (if retain then "modified" else "baseline") :: cells)
          [ false; true ])
      predictors
  in
  let riotlb_cell () =
    let cyclic_trace = Trace.cyclic ~ring_size:ring ~packets () in
    let riotlb = Evaluate.run_riotlb ~ring_size:ring cyclic_trace in
    "riotlb" :: "2 entries"
    :: List.map (fun _ -> Table.cell_pct riotlb.Evaluate.hit_rate) histories
  in
  Exp.plan_of_list (predictor_cells @ [ riotlb_cell ]) ~reduce

let run ?quick ?seed ?jobs () = Exp.run_plan ?jobs (plan ?quick ?seed ())
