(** Figure 8: Netperf stream throughput as a function of the cycles
    spent processing one packet.

    Sweeps C with a busy-wait added to the unprotected baseline (the
    paper's thin line), prints the analytic model Gbps(C) = 1500x8xS/C
    (thick line), and places the seven modes' measured (C, throughput)
    points (crosses) on the same axis. *)

type point = { cycles : float; model_gbps : float; simulated_gbps : float }

val sweep : ?points:int -> ?quick:bool -> unit -> point list
(** Busy-wait sweep from C_none to ~20,000 cycles; [simulated_gbps]
    re-runs the stream simulation with the busy-wait added per packet
    and applies line-rate capping, so it can diverge from the model only
    where the line rate clips. *)

val plan : ?quick:bool -> ?seed:int -> unit -> Exp.plan
(** One cell per evaluated mode; the analytic sweep is pure and lives
    in the reduce (DESIGN.md §10). *)

val run : ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Exp.t
