module Mode = Rio_protect.Mode
module Paper = Rio_report.Paper
module Table = Rio_report.Table
module Compare = Rio_report.Compare
module Breakdown = Rio_sim.Breakdown
module Netperf = Rio_workload.Netperf
module Nic_profiles = Rio_device.Nic_profiles

(* Per-packet component totals: per-call means scaled by calls per
   measured packet. *)
let per_packet result comp =
  if result.Netperf.map_calls = 0 then 0.
  else begin
    let packets = float_of_int result.Netperf.packets in
    let total comps calls =
      match List.assoc_opt comp comps with
      | Some mean -> mean *. float_of_int calls
      | None -> 0.
    in
    (total result.Netperf.map_components result.Netperf.map_calls
    +. total result.Netperf.unmap_components result.Netperf.unmap_calls)
    /. packets
  end

let reduce results =
  let t =
    Table.make
      ~headers:
        [
          "mode"; "iotlb inv"; "page table"; "iova (de)alloc"; "other";
          "C total"; "paper C"; "vs none";
        ]
  in
  List.iter
    (fun (mode, r) ->
      let inv = per_packet r Breakdown.Iotlb_inv in
      let pt = per_packet r Breakdown.Page_table in
      let iova =
        per_packet r Breakdown.Iova_alloc
        +. per_packet r Breakdown.Iova_find
        +. per_packet r Breakdown.Iova_free
      in
      let c = r.Netperf.cycles_per_packet in
      let other = c -. inv -. pt -. iova in
      let paper_c = List.assoc mode Paper.figure7_cycles in
      Table.add_row t
        [
          Mode.name mode;
          Table.cell_f ~decimals:0 inv;
          Table.cell_f ~decimals:0 pt;
          Table.cell_f ~decimals:0 iova;
          Table.cell_f ~decimals:0 other;
          Table.cell_f ~decimals:0 c;
          Printf.sprintf "%.0f %s" paper_c
            (Compare.verdict_symbol
               (Compare.verdict ~tolerance:0.35 ~paper:paper_c ~measured:c ()));
          Printf.sprintf "%.2fx" (c /. float_of_int Paper.c_none_mlx);
        ])
    results;
  let chart =
    Rio_report.Chart.stacked ~segments:[ "iotlb inv"; "page table"; "iova"; "other" ]
      (List.map
         (fun (mode, r) ->
           let inv = per_packet r Breakdown.Iotlb_inv in
           let pt = per_packet r Breakdown.Page_table in
           let iova =
             per_packet r Breakdown.Iova_alloc
             +. per_packet r Breakdown.Iova_find
             +. per_packet r Breakdown.Iova_free
           in
           let other = r.Netperf.cycles_per_packet -. inv -. pt -. iova in
           (Mode.name mode, [ inv; pt; iova; other ]))
         results)
  in
  {
    Exp.id = "figure7";
    title = "CPU cycles for processing one packet (mlx), stacked by component";
    body = Table.render t ^ "\n" ^ chart;
    notes =
      [
        Printf.sprintf "C_none = %d cycles is the calibrated per-packet baseline"
          Paper.c_none_mlx;
        "paper C values are derived from the Table 2 mlx/stream ratios via the \
         1/C throughput model";
      ];
  }

let plan ?(quick = false) ?(seed = 42) () =
  let profile = Nic_profiles.mlx in
  let packets = if quick then 6_000 else 50_000 in
  let warmup = if quick then 10_000 else 140_000 in
  let nseed = Seeds.netperf_stream ~seed in
  Exp.plan_of_list
    (List.map
       (fun mode () ->
         (mode, Netperf.stream ~packets ~warmup ~seed:nseed ~mode ~profile ()))
       Mode.evaluated)
    ~reduce

let run ?quick ?seed ?jobs () = Exp.run_plan ?jobs (plan ?quick ?seed ())
