module Addr = Rio_memory.Addr
module Coherency = Rio_memory.Coherency
module Frame_allocator = Rio_memory.Frame_allocator
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

let levels = 4
let iova_bits = 48
let fanout = 512

type slot = Empty | Table of node | Leaf of Pte.t

and cell = { mutable cpu : slot; mutable hw : slot; addr : Addr.phys }

and node = { frame : Addr.phys; cells : cell array }

type t = {
  frames : Frame_allocator.t;
  coherency : Coherency.t;
  clock : Cycles.t;
  cost : Cost_model.t;
  root : node;
  mutable mapped : int;
  mutable nodes : int;
}

(* Allocate and charge one page-table node against the given clock; the
   record-level [make_node] below also bumps the per-table node count. *)
let alloc_node ~frames ~clock ~cost =
  let frame = Frame_allocator.alloc_exn frames in
  Cost_model.charge_node_alloc cost clock;
  {
    frame;
    cells =
      Array.init fanout (fun i ->
          { cpu = Empty; hw = Empty; addr = Addr.add frame (i * 8) });
  }

let make_node t =
  t.nodes <- t.nodes + 1;
  alloc_node ~frames:t.frames ~clock:t.clock ~cost:t.cost

let create ~frames ~coherency ~clock ~cost =
  (* The root is built before the record so exactly one node allocation
     is charged, with no placeholder record to rebuild. *)
  let root = alloc_node ~frames ~clock ~cost in
  { frames; coherency; clock; cost; root; mapped = 0; nodes = 1 }

(* CPU-side write to a slot: update the CPU view, mark the line dirty; on a
   coherent system the walker sees it immediately. *)
let cpu_write t cell slot =
  cell.cpu <- slot;
  Coherency.cpu_write t.coherency cell.addr;
  if Coherency.is_coherent t.coherency then cell.hw <- slot

(* Publish a slot to the walker: barrier + flush (+ barrier) per Fig. 11. *)
let sync t cell =
  Coherency.sync_mem t.coherency cell.addr;
  cell.hw <- cell.cpu

let check_iova iova =
  if iova < 0 || iova lsr iova_bits <> 0 then invalid_arg "Radix: iova range"

let index iova level =
  (* level 1 uses bits 39..47, level 4 uses bits 12..20 *)
  (iova lsr (12 + (9 * (levels - level)))) land (fanout - 1)

let charge_cpu_ref t = Cycles.charge t.clock t.cost.Cost_model.mem_ref_uncached

let map t ~iova pte =
  check_iova iova;
  let rec descend node level =
    charge_cpu_ref t;
    let cell = node.cells.(index iova level) in
    if level = levels then
      match cell.cpu with
      | Leaf _ -> Error `Already_mapped
      | Table _ -> invalid_arg "Radix.map: table at leaf level"
      | Empty ->
          cpu_write t cell (Leaf pte);
          sync t cell;
          t.mapped <- t.mapped + 1;
          Ok ()
    else begin
      match cell.cpu with
      | Table child -> descend child (level + 1)
      | Leaf _ -> invalid_arg "Radix.map: leaf at interior level"
      | Empty ->
          let child = make_node t in
          cpu_write t cell (Table child);
          sync t cell;
          descend child (level + 1)
    end
  in
  descend t.root 1

let unmap t ~iova =
  check_iova iova;
  let rec descend node level =
    charge_cpu_ref t;
    let cell = node.cells.(index iova level) in
    if level = levels then
      match cell.cpu with
      | Leaf pte ->
          cpu_write t cell Empty;
          sync t cell;
          t.mapped <- t.mapped - 1;
          Ok pte
      | Table _ | Empty -> Error `Not_mapped
    else begin
      match cell.cpu with
      | Table child -> descend child (level + 1)
      | Leaf _ | Empty -> Error `Not_mapped
    end
  in
  descend t.root 1

let lookup_cpu t ~iova =
  check_iova iova;
  let rec descend node level =
    let cell = node.cells.(index iova level) in
    if level = levels then
      match cell.cpu with Leaf pte -> Some pte | Table _ | Empty -> None
    else begin
      match cell.cpu with
      | Table child -> descend child (level + 1)
      | Leaf _ | Empty -> None
    end
  in
  descend t.root 1

let walk t ~iova =
  check_iova iova;
  let rec descend node level =
    Cycles.charge t.clock t.cost.Cost_model.io_walk_ref;
    let cell = node.cells.(index iova level) in
    if level = levels then
      match cell.hw with Leaf pte -> Some pte | Table _ | Empty -> None
    else begin
      match cell.hw with
      | Table child -> descend child (level + 1)
      | Leaf _ | Empty -> None
    end
  in
  descend t.root 1

let mapped_count t = t.mapped
let node_count t = t.nodes
