(** Flat arena-backed four-level page table (zero-alloc map/unmap).

    Semantically identical to the boxed {!Radix} reference — same 48-bit
    four-level hierarchy, same CPU-view/walker-view coherency model,
    same cycle charges (one uncached CPU reference per level touched by
    the OS, one DRAM reference per level walked by the hardware, node
    allocation through {!Rio_sim.Cost_model.charge_node_alloc}) — but
    stored as one growable packed-int arena: nodes are integer indices
    into a flat cell store, cells are tagged immediates (empty / leaf
    PTE / child index), and released nodes thread an intrusive freelist
    that retains their backing frames. Steady-state [map_exn],
    [unmap_exn], [lookup_cpu] and [walk] allocate zero words; growth
    happens only when a fresh node is carved.

    PTEs cross this interface in the packed-int form of
    {!Pte.pack}/{!Pte.unpack}. *)

type t

exception Already_mapped
exception Not_mapped

val create :
  frames:Rio_memory.Frame_allocator.t ->
  coherency:Rio_memory.Coherency.t ->
  clock:Rio_sim.Cycles.t ->
  cost:Rio_sim.Cost_model.t ->
  t
(** An empty hierarchy (root node carved eagerly; exactly one node
    allocation charged, like [Radix.create]). *)

val levels : int
(** 4. *)

val iova_bits : int
(** 48: IOVAs must be non-negative and below [2^iova_bits]. *)

val map_exn : t -> iova:int -> pte:int -> unit
(** Insert the IOVA=>packed-PTE translation: walk down from the root
    (carving intermediate nodes as needed), write the leaf, then sync it
    so the walker can see it. Allocation-free in steady state.
    @raise Already_mapped if the leaf is already present. *)

val unmap_exn : t -> iova:int -> int
(** Remove the translation and sync; returns the packed PTE that was
    mapped. Allocation-free. @raise Not_mapped if absent. *)

val map : t -> iova:int -> pte:int -> (unit, [ `Already_mapped ]) result
(** Result-typed wrapper over {!map_exn} (may allocate the result). *)

val unmap : t -> iova:int -> (int, [ `Not_mapped ]) result
(** Result-typed wrapper over {!unmap_exn}. *)

val lookup_cpu : t -> iova:int -> int
(** The CPU's (OS's) current view, without charging cycles: the packed
    PTE, or {!Pte.packed_none} when absent. *)

val walk : t -> iova:int -> int
(** Hardware page walk as performed on an IOTLB miss: reads the walker
    view of each level and charges one DRAM reference per level visited.
    {!Pte.packed_none} is an I/O page fault (translation absent — or
    present but not yet synced on a non-coherent system). *)

val reset : t -> unit
(** Bulk teardown: drop every mapping and return every non-root node to
    the intrusive freelist (backing frames retained for reuse). A
    maintenance path: charges no cycles and models no coherency
    traffic. *)

val mapped_count : t -> int
(** Translations currently present in the CPU view. *)

val node_count : t -> int
(** Live page-table nodes (including the root). *)

val store_nodes : t -> int
(** High-water node slots carved from the arena store (live + free):
    the arena's resident footprint. *)
