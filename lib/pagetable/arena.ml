(* Flat arena-backed four-level page table.

   Same hierarchy, charges and coherency model as the boxed {!Radix}
   reference, but all nodes live in one growable packed-int store: node
   [n] owns cells [n*512 .. n*512+511] of the [cpu] and [hw] arrays, and
   a cell is a tagged immediate —

     0                      empty
     (pte  lsl 1) lor 1     leaf holding a packed {!Pte}
     child lsl 1            interior pointer to node [child]

   (node 0 is the root and never a child, so interior encodings are
   nonzero). Steady-state [map_exn]/[unmap_exn]/[lookup_cpu]/[walk]
   allocate zero words: no records, no options, constant exceptions;
   store growth happens in a separate helper only when a fresh node is
   carved. Released nodes (only [reset] releases) are threaded through
   an intrusive freelist in their own slot 0, keeping their physical
   frame for reuse. *)

module Addr = Rio_memory.Addr
module Coherency = Rio_memory.Coherency
module Frame_allocator = Rio_memory.Frame_allocator
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

let levels = 4
let iova_bits = 48
let fanout = 512

exception Already_mapped
exception Not_mapped

type t = {
  frames : Frame_allocator.t;
  coherency : Coherency.t;
  clock : Cycles.t;
  cost : Cost_model.t;
  mutable cpu : int array; (* capacity*fanout cells, CPU view *)
  mutable hw : int array; (* walker view *)
  mutable node_frame : Addr.phys array; (* node -> backing frame *)
  mutable high_water : int; (* store slots ever carved *)
  mutable free : int; (* freelist head + 1, 0 = empty *)
  mutable mapped : int;
  mutable nodes : int; (* live nodes, including the root *)
}

let initial_nodes = 8

let create ~frames ~coherency ~clock ~cost =
  let cap = initial_nodes in
  let t =
    {
      frames;
      coherency;
      clock;
      cost;
      cpu = Array.make (cap * fanout) 0;
      hw = Array.make (cap * fanout) 0;
      node_frame = Array.make cap (Addr.of_pfn 0);
      high_water = 0;
      free = 0;
      mapped = 0;
      nodes = 0;
    }
  in
  (* the root is node 0; exactly one node allocation is charged, through
     the same Cost_model entry point as the radix reference *)
  t.node_frame.(0) <- Frame_allocator.alloc_exn frames;
  Cost_model.charge_node_alloc cost clock;
  t.high_water <- 1;
  t.nodes <- 1;
  t

let grow t =
  let cap = Array.length t.node_frame in
  let ncap = 2 * cap in
  let cpu = Array.make (ncap * fanout) 0 in
  let hw = Array.make (ncap * fanout) 0 in
  let node_frame = Array.make ncap (Addr.of_pfn 0) in
  Array.blit t.cpu 0 cpu 0 (cap * fanout);
  Array.blit t.hw 0 hw 0 (cap * fanout);
  Array.blit t.node_frame 0 node_frame 0 cap;
  t.cpu <- cpu;
  t.hw <- hw;
  t.node_frame <- node_frame

(* Carve a node from the freelist (frame retained from its previous
   life) or from fresh store. Either way it is one node allocation:
   charged through Cost_model.charge_node_alloc, cells all empty. *)
let new_node t =
  let n =
    if t.free <> 0 then begin
      let n = t.free - 1 in
      t.free <- t.cpu.(n * fanout);
      t.cpu.(n * fanout) <- 0;
      n
    end
    else begin
      if t.high_water = Array.length t.node_frame then grow t;
      let n = t.high_water in
      t.high_water <- n + 1;
      t.node_frame.(n) <- Frame_allocator.alloc_exn t.frames;
      n
    end
  in
  Cost_model.charge_node_alloc t.cost t.clock;
  t.nodes <- t.nodes + 1;
  n

let cell_addr t node idx = Addr.add t.node_frame.(node) (idx * 8)

(* CPU-side store to a cell: update the CPU view, mark the line dirty;
   on a coherent system the walker sees it immediately. *)
let cell_write t node idx v =
  t.cpu.((node * fanout) + idx) <- v;
  Coherency.cpu_write t.coherency (cell_addr t node idx);
  if Coherency.is_coherent t.coherency then t.hw.((node * fanout) + idx) <- v

(* Publish a cell to the walker: barrier + flush (+ barrier) per Fig. 11. *)
let sync_cell t node idx =
  Coherency.sync_mem t.coherency (cell_addr t node idx);
  t.hw.((node * fanout) + idx) <- t.cpu.((node * fanout) + idx)

let check_iova iova =
  if iova < 0 || iova lsr iova_bits <> 0 then invalid_arg "Arena: iova range"

let index iova level =
  (* level 1 uses bits 39..47, level 4 uses bits 12..20 *)
  (iova lsr (12 + (9 * (levels - level)))) land (fanout - 1)

let charge_cpu_ref t = Cycles.charge t.clock t.cost.Cost_model.mem_ref_uncached

let map_exn t ~iova ~pte =
  check_iova iova;
  if pte < 0 then invalid_arg "Arena.map: negative packed pte";
  let n = ref 0 in
  for level = 1 to levels - 1 do
    charge_cpu_ref t;
    let idx = index iova level in
    let v = t.cpu.((!n * fanout) + idx) in
    if v = 0 then begin
      let child = new_node t in
      (* [new_node] may swap the store arrays: write via the fresh ones *)
      cell_write t !n idx (child lsl 1);
      sync_cell t !n idx;
      n := child
    end
    else if v land 1 = 0 then n := v lsr 1
    else invalid_arg "Arena.map: leaf at interior level"
  done;
  charge_cpu_ref t;
  let idx = index iova levels in
  let v = t.cpu.((!n * fanout) + idx) in
  if v = 0 then begin
    cell_write t !n idx ((pte lsl 1) lor 1);
    sync_cell t !n idx;
    t.mapped <- t.mapped + 1
  end
  else if v land 1 = 1 then raise Already_mapped
  else invalid_arg "Arena.map: table at leaf level"

let unmap_exn t ~iova =
  check_iova iova;
  let n = ref 0 in
  let level = ref 1 in
  let dead = ref false in
  (* mirror Radix: one cpu ref per level actually visited, including the
     level at which a missing interior entry stops the descent *)
  while (not !dead) && !level < levels do
    charge_cpu_ref t;
    let v = t.cpu.((!n * fanout) + index iova !level) in
    if v <> 0 && v land 1 = 0 then begin
      n := v lsr 1;
      incr level
    end
    else dead := true
  done;
  if !dead then raise Not_mapped;
  charge_cpu_ref t;
  let idx = index iova levels in
  let v = t.cpu.((!n * fanout) + idx) in
  if v land 1 = 1 then begin
    cell_write t !n idx 0;
    sync_cell t !n idx;
    t.mapped <- t.mapped - 1;
    v lsr 1
  end
  else raise Not_mapped

let map t ~iova ~pte =
  match map_exn t ~iova ~pte with
  | () -> Ok ()
  | exception Already_mapped -> Error `Already_mapped

let unmap t ~iova =
  match unmap_exn t ~iova with
  | pte -> Ok pte
  | exception Not_mapped -> Error `Not_mapped

let lookup_cpu t ~iova =
  check_iova iova;
  let n = ref 0 in
  let res = ref (-2) in
  for level = 1 to levels do
    if !res = -2 then begin
      let v = t.cpu.((!n * fanout) + index iova level) in
      if level = levels then res := (if v land 1 = 1 then v lsr 1 else -1)
      else if v <> 0 && v land 1 = 0 then n := v lsr 1
      else res := -1
    end
  done;
  if !res >= 0 then !res else Pte.packed_none

let walk t ~iova =
  check_iova iova;
  let n = ref 0 in
  let res = ref (-2) in
  for level = 1 to levels do
    if !res = -2 then begin
      Cycles.charge t.clock t.cost.Cost_model.io_walk_ref;
      let v = t.hw.((!n * fanout) + index iova level) in
      if level = levels then res := (if v land 1 = 1 then v lsr 1 else -1)
      else if v <> 0 && v land 1 = 0 then n := v lsr 1
      else res := -1
    end
  done;
  if !res >= 0 then !res else Pte.packed_none

(* Bulk teardown: clear every cell and thread every non-root node onto
   the freelist (frames retained). A maintenance path, not a modeled OS
   operation: no cycles are charged and no coherency traffic is issued
   (both views are cleared together). *)
let reset t =
  Array.fill t.cpu 0 (Array.length t.cpu) 0;
  Array.fill t.hw 0 (Array.length t.hw) 0;
  t.free <- 0;
  for n = t.high_water - 1 downto 1 do
    t.cpu.(n * fanout) <- t.free;
    t.free <- n + 1
  done;
  t.mapped <- 0;
  t.nodes <- 1

let mapped_count t = t.mapped
let node_count t = t.nodes
let store_nodes t = t.high_water
