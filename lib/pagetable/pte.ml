type t = { pfn : int; read : bool; write : bool }

let make ?(read = true) ?(write = true) ~pfn () =
  if pfn < 0 then invalid_arg "Pte.make: pfn";
  { pfn; read; write }

let frame t = Rio_memory.Addr.of_pfn t.pfn
let permits t ~write = if write then t.write else t.read

let encode t =
  let open Int64 in
  let bits = shift_left (of_int t.pfn) 12 in
  let bits = if t.read then logor bits 1L else bits in
  if t.write then logor bits 2L else bits

let decode bits =
  let open Int64 in
  let read = logand bits 1L <> 0L in
  let write = logand bits 2L <> 0L in
  if (not read) && not write then None
  else
    Some { pfn = to_int (shift_right_logical bits 12); read; write }

(* Packed immediate representation for the flat arena table and the
   IOTLB payload: PFN in bits 2.., W in bit 1, R in bit 0. Always
   non-negative, so -1 ([packed_none]) is free as an absence sentinel. *)

let packed_none = -1

let pack t =
  (t.pfn lsl 2) lor (if t.write then 2 else 0) lor (if t.read then 1 else 0)

let pack_make ~read ~write ~pfn =
  if pfn < 0 then invalid_arg "Pte.pack_make: pfn";
  (pfn lsl 2) lor (if write then 2 else 0) lor (if read then 1 else 0)

let unpack p =
  { pfn = p lsr 2; read = p land 1 <> 0; write = p land 2 <> 0 }

let packed_pfn p = p lsr 2
let packed_frame p = Rio_memory.Addr.of_pfn (p lsr 2)
let packed_permits p ~write = if write then p land 2 <> 0 else p land 1 <> 0

let equal a b = a.pfn = b.pfn && a.read = b.read && a.write = b.write

let pp fmt t =
  Format.fprintf fmt "pfn:%#x%s%s" t.pfn
    (if t.read then " R" else "")
    (if t.write then " W" else "")
