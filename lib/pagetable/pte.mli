(** Leaf page-table entries of the baseline (Intel VT-d style) IOMMU.

    A PTE maps one 4 KB I/O virtual page to a physical frame with
    read/write permission bits. Page granularity is the root of the
    same-page vulnerability the rIOMMU's byte-granular rPTEs close. *)

type t = { pfn : int; read : bool; write : bool }

val make : ?read:bool -> ?write:bool -> pfn:int -> unit -> t
(** Both permissions default to [true]. *)

val frame : t -> Rio_memory.Addr.phys
(** Physical address of the first byte of the mapped frame. *)

val permits : t -> write:bool -> bool
(** [permits t ~write] is whether a DMA of the given direction (write =
    device-to-memory) is allowed. *)

val encode : t -> int64
(** Hardware encoding: PFN in bits 12..51, R in bit 0, W in bit 1 (the
    layout VT-d uses for second-level entries). *)

val decode : int64 -> t option
(** Inverse of {!encode}; [None] when neither permission bit is set
    (a non-present entry). *)

(** {2 Packed immediate representation}

    The zero-alloc map/unmap path (flat arena table, IOTLB payloads)
    carries PTEs as packed OCaml [int]s: PFN in bits 2.., W in bit 1,
    R in bit 0. A packed PTE is always non-negative; {!packed_none}
    ([-1]) is the absence sentinel. *)

val packed_none : int

val pack : t -> int
val unpack : int -> t

val pack_make : read:bool -> write:bool -> pfn:int -> int
(** Allocation-free constructor of the packed form. *)

val packed_pfn : int -> int
val packed_frame : int -> Rio_memory.Addr.phys
(** Physical address of the first byte of the mapped frame. *)

val packed_permits : int -> write:bool -> bool
(** Direction check on the packed form (write = device-to-memory). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
