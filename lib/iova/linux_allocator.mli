(** The baseline Linux IOVA allocator (strict / defer modes).

    Faithful model of the kernel's [alloc_iova]/[find_iova]/[__free_iova]
    as of the paper's Linux 3.4/3.11 testbed: allocated ranges live in a
    red-black tree; allocation is top-down from [limit_pfn], scanning
    downward from a cached node ([cached32_node]) for a gap; freeing a
    range at or above the cached node resets the cache to the freed
    range's upper neighbour.

    With ring-buffer devices the OS frees IOVAs in the exact order it
    allocated them (FIFO), i.e. it always frees the *highest* live range —
    which resets the cache to the top of the address space and forces the
    next allocation to scan linearly across every live range. This is the
    pathology behind Table 1's ~3,986-cycle strict-mode allocations, and
    it emerges here from the algorithm, not from a constant. *)

type t

val create :
  limit_pfn:int -> clock:Rio_sim.Cycles.t -> cost:Rio_sim.Cost_model.t -> t
(** Allocations are handed out below (and including) [limit_pfn]. *)

val alloc : t -> size:int -> (int, [ `Exhausted ]) result
(** Allocate [size] contiguous IOVA pages; returns the first pfn of the
    range. Charges cycles proportional to the nodes scanned. *)

val alloc_pfn : t -> size:int -> int
(** Unboxed {!alloc}: the first pfn, or [-1] on exhaustion. *)

val find : t -> pfn:int -> Rbtree.node option
(** [find_iova]: locate the range containing [pfn] (logarithmic search,
    charged). This is the "iova find" component of Table 1's unmap. *)

val find_exn : t -> pfn:int -> Rbtree.node
(** Allocation-free {!find} (same charges either way).
    @raise Not_found when no live range contains [pfn]. *)

val free : t -> Rbtree.node -> unit
(** [__free_iova]: update the allocation cache and erase the range.
    The "iova free" component of Table 1's unmap. *)

val live : t -> int
(** Currently allocated ranges. *)

val last_scan_length : t -> int
(** Nodes stepped over by the most recent {!alloc} (for tests asserting
    the pathology). *)

val limit_pfn : t -> int
