(** The authors' constant-time IOVA allocator (the "+" modes).

    Models the EiovaR design of the companion FAST'15 paper: freed IOVA
    ranges are not erased from the red-black tree but parked in per-size
    free-magazines and recycled in O(1). Allocation therefore costs a
    handful of cycles (Table 1: 92-108) instead of a linear scan; freeing
    is a constant-time push (Table 1: 57-62). The price is a *fuller*
    tree — live plus parked ranges — which makes the unmap-time lookup
    slightly costlier than in strict mode (Table 1: 418 vs 249), exactly
    as the paper observes. *)

type t

val create :
  limit_pfn:int -> clock:Rio_sim.Cycles.t -> cost:Rio_sim.Cost_model.t -> t

val alloc : t -> size:int -> (int, [ `Exhausted ]) result
(** Recycle a parked range of the same size if one exists (O(1));
    otherwise carve a fresh range below all existing ones. *)

val alloc_pfn : t -> size:int -> int
(** Unboxed {!alloc}: the first pfn, or [-1] on exhaustion. *)

val find : t -> pfn:int -> Rbtree.node option
(** Logarithmic search in the (fuller) tree; only live ranges match. *)

val find_exn : t -> pfn:int -> Rbtree.node
(** Allocation-free {!find}; parked ranges raise like absent ones.
    @raise Not_found when no live range contains [pfn]. *)

val free : t -> Rbtree.node -> unit
(** Park the range in its size-class magazine. *)

val live : t -> int
(** Ranges currently allocated (excludes parked ones). *)

val tree_size : t -> int
(** Live + parked ranges resident in the tree. *)

val parked : t -> int
(** Ranges sitting in magazines. *)
