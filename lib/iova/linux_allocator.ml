module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

(* Faithful model of the Linux 3.4 IOVA allocator used by the paper's
   testbed (drivers/iommu/iova.c):

   - allocated ranges live in a red-black tree ordered by pfn;
   - allocation walks DOWNWARD from a start point looking for the first
     gap that fits, placing the new range as high as possible;
   - the start point is [cached32_node] (the most recently allocated
     range) when valid, else [rb_last] (the topmost range);
   - [__cached_rbnode_insert_update]: every allocation caches the new node;
   - [__cached_rbnode_delete_update]: freeing a range at or above the
     cached one moves the cache to the freed range's successor - or kills
     it when the freed range was the topmost.

   Ring-buffer drivers free IOVAs in allocation (FIFO) order, i.e. they
   repeatedly free the topmost range, killing the cache. The allocation
   that follows restarts from the top; if it is for a *larger* size than
   the one-range gap just opened (NIC drivers allocate both one-page
   header buffers and multi-page data buffers), it scans across the whole
   packed live population before it finds room - the linear pathology of
   Table 1. *)

type t = {
  tree : Rbtree.t;
  limit_pfn : int;
  mutable cached : Rbtree.node option;
  clock : Cycles.t;
  cost : Cost_model.t;
  mutable last_scan : int;
}

let create ~limit_pfn ~clock ~cost =
  if limit_pfn <= 0 then invalid_arg "Linux_allocator.create: limit_pfn";
  { tree = Rbtree.create (); limit_pfn; cached = None; clock; cost; last_scan = 0 }

let charge_visits t v0 =
  let dv = Rbtree.visits t.tree - v0 in
  Cycles.charge t.clock (dv * t.cost.Cost_model.tree_ref)

(* __get_cached_rbnode *)
let scan_start t =
  match t.cached with
  | Some n -> (Rbtree.prev t.tree n, Rbtree.lo n - 1)
  | None -> (Rbtree.max_node t.tree, t.limit_pfn)

let alloc t ~size =
  if size <= 0 then invalid_arg "Linux_allocator.alloc: size";
  let v0 = Rbtree.visits t.tree in
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  t.last_scan <- 0;
  let place ~hi =
    let lo = hi - size + 1 in
    if lo < 0 then Error `Exhausted
    else begin
      let node = Rbtree.insert t.tree ~lo ~hi in
      (* __cached_rbnode_insert_update *)
      t.cached <- Some node;
      charge_visits t v0;
      Ok lo
    end
  in
  (* __alloc_and_insert_iova_range's downward scan. *)
  let rec scan curr limit =
    match curr with
    | None -> place ~hi:limit
    | Some n ->
        t.last_scan <- t.last_scan + 1;
        if limit < Rbtree.lo n then
          (* node entirely above the current limit: move left *)
          scan (Rbtree.prev t.tree n) limit
        else if limit <= Rbtree.hi n then
          (* limit falls inside the node: continue below it *)
          scan (Rbtree.prev t.tree n) (Rbtree.lo n - 1)
        else if Rbtree.hi n + size <= limit then
          (* gap between this node and the limit fits the request *)
          place ~hi:limit
        else scan (Rbtree.prev t.tree n) (Rbtree.lo n - 1)
  in
  let curr, limit = scan_start t in
  let result = scan curr limit in
  (match result with Error `Exhausted -> charge_visits t v0 | Ok _ -> ());
  result

(* The downward scan itself allocates (options and closures): acceptable
   here because the zero-alloc map path reaches this allocator only on
   magazine misses. The unboxed result spares the caller the [Ok]. *)
let alloc_pfn t ~size =
  match alloc t ~size with Ok pfn -> pfn | Error `Exhausted -> -1

let find t ~pfn =
  let v0 = Rbtree.visits t.tree in
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  let node = Rbtree.find_containing t.tree pfn in
  charge_visits t v0;
  node

(* Allocation-free [find] for the zero-alloc unmap path: identical
   charges whether the pfn resolves or not. *)
let find_exn t ~pfn =
  let v0 = Rbtree.visits t.tree in
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  match Rbtree.find_containing_exn t.tree pfn with
  | node ->
      charge_visits t v0;
      node
  | exception Not_found ->
      charge_visits t v0;
      raise Not_found

(* __free_iova = __cached_rbnode_delete_update + rb_erase *)
let free t node =
  let v0 = Rbtree.visits t.tree in
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  (match t.cached with
  | Some c when Rbtree.lo node >= Rbtree.lo c ->
      t.cached <- Rbtree.next t.tree node
  | Some _ | None -> ());
  Rbtree.delete t.tree node;
  charge_visits t v0

let live t = Rbtree.size t.tree
let last_scan_length t = t.last_scan
let limit_pfn t = t.limit_pfn
