module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

(* Bonwick-style magazine cache over an IOVA allocator (the shape of the
   Linux iova rcache, drivers/iommu/iova.c): per size class, a [loaded]
   and a [prev] magazine absorb the common alloc/free churn; full
   magazines rotate through a bounded depot; only depot overflow reaches
   the underlying allocator. Ring-buffer drivers free in allocation
   order, which is exactly the churn the cache turns into O(1) pops and
   pushes - short-circuiting the Table 1 linear-scan pathology.

   The depot and the spare-magazine pool are fixed arrays (stack
   discipline, top at [len - 1]) rather than lists, so the whole
   alloc/free cycle — including magazine rotation — allocates nothing.
   Surplus spare magazines beyond the pool's capacity are simply
   dropped; a later shortage re-creates one on the (cold, already
   allocating) depot-put path. *)

type stats = {
  hits : int;
  misses : int;
  bypasses : int;
  depot_gets : int;
  depot_puts : int;
  flushes : int;
}

module Make (Base : Allocator.S) = struct
  type base = Base.t

  type mag = { mutable count : int; nodes : Rbtree.node array }

  (* Empty magazine slots hold this immediate; real nodes are always
     heap blocks, so the arrays stay uniform and nothing is pinned. *)
  let null_node : unit -> Rbtree.node = fun () -> Obj.magic 0

  (* Empty depot/spare slots likewise. *)
  let null_mag : unit -> mag = fun () -> Obj.magic 0

  type bucket = {
    mutable loaded : mag;
    mutable prev : mag;
    depot : mag array;  (* full magazines; stack of [depot_len] *)
    mutable depot_len : int;
    spares : mag array;  (* empty magazines; stack of [spare_len] *)
    mutable spare_len : int;
  }

  type t = {
    base : Base.t;
    magazine_size : int;
    depot_max : int;
    max_cached_size : int;
    buckets : bucket array;  (* index = size - 1 *)
    clock : Cycles.t;
    cost : Cost_model.t;
    mutable live : int;
    mutable hits : int;
    mutable misses : int;
    mutable bypasses : int;
    mutable depot_gets : int;
    mutable depot_puts : int;
    mutable flushes : int;
  }

  let fresh_mag size = { count = 0; nodes = Array.make size (null_node ()) }

  let create ?(magazine_size = 128) ?(depot_max = 32) ?(max_cached_size = 8)
      ~base ~clock ~cost () =
    if magazine_size <= 0 then invalid_arg "Magazine.create: magazine_size";
    if depot_max < 0 then invalid_arg "Magazine.create: depot_max";
    if max_cached_size <= 0 then invalid_arg "Magazine.create: max_cached_size";
    {
      base;
      magazine_size;
      depot_max;
      max_cached_size;
      buckets =
        Array.init max_cached_size (fun _ ->
            {
              loaded = fresh_mag magazine_size;
              prev = fresh_mag magazine_size;
              depot = Array.make depot_max (null_mag ());
              depot_len = 0;
              spares = Array.make ((2 * depot_max) + 2) (null_mag ());
              spare_len = 0;
            });
      clock;
      cost;
      live = 0;
      hits = 0;
      misses = 0;
      bypasses = 0;
      depot_gets = 0;
      depot_puts = 0;
      flushes = 0;
    }

  let mag_pop m =
    let i = m.count - 1 in
    let node = m.nodes.(i) in
    m.nodes.(i) <- null_node ();
    m.count <- i;
    node

  let mag_push m node =
    m.nodes.(m.count) <- node;
    m.count <- m.count + 1

  (* A magazine hit costs a couple of cache-resident references, nothing
     like the tree scan it replaces. *)
  let charge_hit t =
    Cycles.charge t.clock
      (t.cost.Cost_model.call_overhead + (2 * t.cost.Cost_model.mem_ref_cached))

  let charge_put t =
    Cycles.charge t.clock
      (t.cost.Cost_model.call_overhead + t.cost.Cost_model.mem_ref_cached)

  let take_pfn t b =
    let node = mag_pop b.loaded in
    Rbtree.set_cached_free node false;
    t.hits <- t.hits + 1;
    t.live <- t.live + 1;
    charge_hit t;
    Rbtree.lo node

  (* Primary allocation entry point, unboxed: first pfn or -1 on
     exhaustion. Steady-state magazine hits allocate nothing. *)
  let alloc_pfn t ~size =
    if size <= 0 then invalid_arg "Magazine.alloc: size";
    if size > t.max_cached_size then begin
      t.bypasses <- t.bypasses + 1;
      let pfn = Base.alloc_pfn t.base ~size in
      if pfn >= 0 then t.live <- t.live + 1;
      pfn
    end
    else begin
      let b = t.buckets.(size - 1) in
      if b.loaded.count > 0 then take_pfn t b
      else if b.prev.count > 0 then begin
        let m = b.loaded in
        b.loaded <- b.prev;
        b.prev <- m;
        take_pfn t b
      end
      else if b.depot_len > 0 then begin
        b.depot_len <- b.depot_len - 1;
        let m = b.depot.(b.depot_len) in
        b.depot.(b.depot_len) <- null_mag ();
        t.depot_gets <- t.depot_gets + 1;
        (* park the exhausted loaded magazine as a spare; drop it if the
           spare pool is full (a later shortage re-creates one) *)
        if b.spare_len < Array.length b.spares then begin
          b.spares.(b.spare_len) <- b.loaded;
          b.spare_len <- b.spare_len + 1
        end;
        b.loaded <- m;
        take_pfn t b
      end
      else begin
        (* checked the cache for nothing: one cached reference *)
        t.misses <- t.misses + 1;
        Cycles.charge t.clock t.cost.Cost_model.mem_ref_cached;
        let pfn = Base.alloc_pfn t.base ~size in
        if pfn >= 0 then t.live <- t.live + 1;
        pfn
      end
    end

  let alloc t ~size =
    match alloc_pfn t ~size with -1 -> Error `Exhausted | pfn -> Ok pfn

  (* Parked ranges are still present in the base allocator's tree (their
     address space stays reserved, as with the Linux rcache), so [find]
     must hide them from the unmap path. *)
  let find t ~pfn =
    match Base.find t.base ~pfn with
    | Some n when Rbtree.cached_free n -> None
    | other -> other

  let find_exn t ~pfn =
    let node = Base.find_exn t.base ~pfn in
    if Rbtree.cached_free node then raise Not_found else node

  let flush_mag t m =
    if m.count > 0 then t.flushes <- t.flushes + 1;
    for i = 0 to m.count - 1 do
      let node = m.nodes.(i) in
      m.nodes.(i) <- null_node ();
      Rbtree.set_cached_free node false;
      Base.free t.base node
    done;
    m.count <- 0

  let free t node =
    let size = Rbtree.hi node - Rbtree.lo node + 1 in
    t.live <- t.live - 1;
    if size > t.max_cached_size then begin
      t.bypasses <- t.bypasses + 1;
      Base.free t.base node
    end
    else begin
      let b = t.buckets.(size - 1) in
      if b.loaded.count = t.magazine_size then begin
        if b.prev.count = 0 then begin
          let m = b.loaded in
          b.loaded <- b.prev;
          b.prev <- m
        end
        else if b.depot_len < t.depot_max then begin
          b.depot.(b.depot_len) <- b.loaded;
          b.depot_len <- b.depot_len + 1;
          t.depot_puts <- t.depot_puts + 1;
          if b.spare_len > 0 then begin
            b.spare_len <- b.spare_len - 1;
            b.loaded <- b.spares.(b.spare_len);
            b.spares.(b.spare_len) <- null_mag ()
          end
          else b.loaded <- fresh_mag t.magazine_size
        end
        else
          (* depot full: spill this magazine back to the allocator *)
          flush_mag t b.loaded
      end;
      Rbtree.set_cached_free node true;
      mag_push b.loaded node;
      charge_put t
    end

  let live t = t.live
  let base t = t.base

  let drain t =
    Array.iter
      (fun b ->
        flush_mag t b.loaded;
        flush_mag t b.prev;
        for i = b.depot_len - 1 downto 0 do
          let m = b.depot.(i) in
          b.depot.(i) <- null_mag ();
          flush_mag t m;
          if b.spare_len < Array.length b.spares then begin
            b.spares.(b.spare_len) <- m;
            b.spare_len <- b.spare_len + 1
          end
        done;
        b.depot_len <- 0)
      t.buckets

  let stats t =
    {
      hits = t.hits;
      misses = t.misses;
      bypasses = t.bypasses;
      depot_gets = t.depot_gets;
      depot_puts = t.depot_puts;
      flushes = t.flushes;
    }

  let reset_stats t =
    t.hits <- 0;
    t.misses <- 0;
    t.bypasses <- 0;
    t.depot_gets <- 0;
    t.depot_puts <- 0;
    t.flushes <- 0
end

include Make (Allocator)
