(** Red-black interval tree holding allocated IOVA ranges.

    This is the data structure the Linux IOVA allocator keeps its ranges
    in: nodes are [\[lo, hi\]] page-frame-number intervals ordered by [lo],
    with parent pointers so the allocators can walk neighbours
    ([rb_prev]/[rb_next]) during their downward gap scans.

    Every node dereference increments a visit counter; the allocators
    convert visit deltas into cycles, which is how the paper's Table 1
    component costs (and the strict-mode linear pathology) emerge from the
    real algorithm rather than from hard-coded constants. *)

type t
type node

val create : unit -> t
val size : t -> int

(** {1 Node accessors} *)

val lo : node -> int
val hi : node -> int
val cached_free : node -> bool
(** Scratch flag used by the constant-time allocator to mark nodes whose
    range is currently in its free-magazine rather than live. *)

val set_cached_free : node -> bool -> unit

(** {1 Queries} *)

val find_containing : t -> int -> node option
(** The node whose interval contains the given pfn, if any. *)

val find_containing_exn : t -> int -> node
(** Allocation-free twin of {!find_containing}: same traversal and visit
    counting, no option box. @raise Not_found when absent. *)

val max_node : t -> node option
(** Highest interval ([rb_last]). *)

val min_node : t -> node option
val prev : t -> node -> node option
(** In-order predecessor ([rb_prev]). *)

val next : t -> node -> node option
(** In-order successor ([rb_next]). *)

(** {1 Mutation} *)

val insert : t -> lo:int -> hi:int -> node
(** Insert a fresh interval. Raises [Invalid_argument] if it overlaps an
    existing one or [lo > hi]. *)

val delete : t -> node -> unit
(** Remove a node. Raises [Invalid_argument] if the node was already
    deleted. *)

(** {1 Accounting and verification} *)

val visits : t -> int
(** Total node dereferences so far (monotonic). *)

val iter : t -> (node -> unit) -> unit
(** In-order iteration (does not count visits). *)

val check_invariants : t -> (unit, string) result
(** Validate the red-black properties, ordering, and interval
    disjointness; used by property tests. *)
