(** Uniform interface over the two IOVA allocators.

    The baseline IOMMU driver is parameterized by an allocator: the
    baseline Linux allocator gives the strict / defer modes, the
    constant-time allocator gives strict+ / defer+. *)

(** The operations every IOVA allocator exposes; {!Magazine.Make} layers
    a Bonwick-style magazine cache over any implementation of this. *)
module type S = sig
  type t

  val alloc : t -> size:int -> (int, [ `Exhausted ]) result

  val alloc_pfn : t -> size:int -> int
  (** Like [alloc] but unboxed for the zero-alloc map path: the first
      pfn of the range, or [-1] on exhaustion. Charges are identical to
      [alloc]. *)

  val find : t -> pfn:int -> Rbtree.node option

  val find_exn : t -> pfn:int -> Rbtree.node
  (** Allocation-free twin of [find] (same charges, no option box).
      @raise Not_found when no live range contains [pfn]. *)

  val free : t -> Rbtree.node -> unit
  val live : t -> int
end

type t

type kind =
  | Linux  (** baseline Linux allocator (strict / defer) *)
  | Fast  (** constant-time allocator (strict+ / defer+) *)

val create :
  kind:kind ->
  limit_pfn:int ->
  clock:Rio_sim.Cycles.t ->
  cost:Rio_sim.Cost_model.t ->
  t

val kind : t -> kind

val alloc : t -> size:int -> (int, [ `Exhausted ]) result
(** Allocate [size] IOVA pages; returns the first pfn. *)

val alloc_pfn : t -> size:int -> int
(** Unboxed {!alloc}: the first pfn, or [-1] on exhaustion. *)

val find : t -> pfn:int -> Rbtree.node option
(** Locate the live range containing [pfn]. *)

val find_exn : t -> pfn:int -> Rbtree.node
(** Allocation-free {!find}. @raise Not_found when absent. *)

val free : t -> Rbtree.node -> unit
val live : t -> int
