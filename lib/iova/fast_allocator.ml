module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

type t = {
  tree : Rbtree.t;
  limit_pfn : int;
  magazines : (int, Rbtree.node list ref) Hashtbl.t;
  mutable floor : int;  (* lowest pfn of any carved range; fresh carves go below *)
  mutable live : int;
  mutable parked : int;
  clock : Cycles.t;
  cost : Cost_model.t;
}

let create ~limit_pfn ~clock ~cost =
  if limit_pfn <= 0 then invalid_arg "Fast_allocator.create: limit_pfn";
  {
    tree = Rbtree.create ();
    limit_pfn;
    magazines = Hashtbl.create 8;
    floor = limit_pfn + 1;
    live = 0;
    parked = 0;
    clock;
    cost;
  }

let magazine t size =
  match Hashtbl.find_opt t.magazines size with
  | Some m -> m
  | None ->
      let m = ref [] in
      Hashtbl.add t.magazines size m;
      m

let charge t refs =
  Cycles.charge t.clock
    (t.cost.Cost_model.call_overhead + (refs * t.cost.Cost_model.tree_ref))

let alloc t ~size =
  if size <= 0 then invalid_arg "Fast_allocator.alloc: size";
  let m = magazine t size in
  match !m with
  | node :: rest ->
      m := rest;
      Rbtree.set_cached_free node false;
      t.parked <- t.parked - 1;
      t.live <- t.live + 1;
      charge t 2;
      Ok (Rbtree.lo node)
  | [] ->
      (* Cold start: carve a fresh range below everything carved so far.
         Tree insertion cost (logarithmic) is charged via visit counting. *)
      let hi = t.floor - 1 in
      let lo = hi - size + 1 in
      if lo < 0 then begin
        charge t 1;
        Error `Exhausted
      end
      else begin
        let v0 = Rbtree.visits t.tree in
        let _node = Rbtree.insert t.tree ~lo ~hi in
        t.floor <- lo;
        t.live <- t.live + 1;
        charge t 2;
        Cycles.charge t.clock
          ((Rbtree.visits t.tree - v0) * t.cost.Cost_model.tree_ref);
        Ok lo
      end

(* The cold carve allocates (hashtable bucket, list cons): acceptable —
   the zero-alloc map path reaches it only on magazine misses. *)
let alloc_pfn t ~size =
  match alloc t ~size with Ok pfn -> pfn | Error `Exhausted -> -1

let find t ~pfn =
  let v0 = Rbtree.visits t.tree in
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  let node = Rbtree.find_containing t.tree pfn in
  Cycles.charge t.clock
    ((Rbtree.visits t.tree - v0) * t.cost.Cost_model.tree_ref);
  match node with
  | Some n when Rbtree.cached_free n -> None
  | other -> other

(* Allocation-free [find]: same traversal and charges; parked ranges
   ([cached_free]) raise like absent ones, as [find] hides them. *)
let find_exn t ~pfn =
  let v0 = Rbtree.visits t.tree in
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  match Rbtree.find_containing_exn t.tree pfn with
  | node ->
      Cycles.charge t.clock
        ((Rbtree.visits t.tree - v0) * t.cost.Cost_model.tree_ref);
      if Rbtree.cached_free node then raise Not_found else node
  | exception Not_found ->
      Cycles.charge t.clock
        ((Rbtree.visits t.tree - v0) * t.cost.Cost_model.tree_ref);
      raise Not_found

let free t node =
  if Rbtree.cached_free node then
    invalid_arg "Fast_allocator.free: range already parked";
  Rbtree.set_cached_free node true;
  let size = Rbtree.hi node - Rbtree.lo node + 1 in
  let m = magazine t size in
  m := node :: !m;
  t.live <- t.live - 1;
  t.parked <- t.parked + 1;
  charge t 1

let live t = t.live
let tree_size t = Rbtree.size t.tree
let parked t = t.parked
