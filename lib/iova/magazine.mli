(** Bonwick-style magazine cache over an IOVA allocator.

    The one mitigation Linux actually shipped for the Table 1 allocator
    pathology: a size-bucketed cache (the iova rcache) in front of the
    red-black tree. Freed ranges park in a per-size [loaded] magazine;
    allocations pop them back in O(1). Full magazines rotate through a
    bounded depot, and only depot overflow pays the underlying
    allocator's cost again. Ring-buffer drivers allocate and free the
    same few sizes in FIFO order, so in steady state the tree is never
    touched and the linear-scan pathology collapses.

    Parked ranges keep their address space reserved (their nodes stay in
    the base allocator's tree, flagged [cached_free]); {!find} hides
    them so a stale pfn does not resolve. *)

type stats = {
  hits : int;  (** allocations served from a magazine *)
  misses : int;  (** allocations that fell through to the base allocator *)
  bypasses : int;  (** requests larger than [max_cached_size] (both dirs) *)
  depot_gets : int;  (** full magazines loaded from the depot *)
  depot_puts : int;  (** full magazines parked in the depot *)
  flushes : int;  (** magazines spilled back to the base allocator *)
}

(** Instantiated over {!Allocator.S} so any allocator (or a mock in
    tests) can sit underneath. *)
module Make (Base : Allocator.S) : sig
  type base = Base.t
  type t

  val create :
    ?magazine_size:int ->
    ?depot_max:int ->
    ?max_cached_size:int ->
    base:base ->
    clock:Rio_sim.Cycles.t ->
    cost:Rio_sim.Cost_model.t ->
    unit ->
    t
  (** Defaults mirror the Linux rcache: 128-entry magazines, a 32-deep
      depot per size class, sizes 1..[max_cached_size] (default 8) pages
      cached; larger requests bypass straight to the base allocator. *)

  val alloc : t -> size:int -> (int, [ `Exhausted ]) result

  val alloc_pfn : t -> size:int -> int
  (** Unboxed {!alloc} (the zero-alloc map path): the first pfn, or
      [-1] on exhaustion. A magazine hit allocates nothing. *)

  val find : t -> pfn:int -> Rbtree.node option

  val find_exn : t -> pfn:int -> Rbtree.node
  (** Allocation-free {!find}; parked ranges raise like absent ones.
      @raise Not_found when no live range contains [pfn]. *)

  val free : t -> Rbtree.node -> unit

  val live : t -> int
  (** Ranges currently held by callers (parked ranges are not live). *)

  val base : t -> base

  val drain : t -> unit
  (** Return every parked range to the base allocator (device quiesce /
      memory pressure path). *)

  val stats : t -> stats
  val reset_stats : t -> unit
end

include module type of Make (Allocator)
(** The cache over the paper's uniform {!Allocator.t}, the instance the
    baseline IOMMU driver threads through map/unmap behind the
    [--rcache] knob. *)
