(* CLRS-style red-black tree with a per-tree sentinel nil node and parent
   pointers. Deleted nodes have their parent pointer aimed at themselves so
   double-deletes are detected. *)

type node = {
  mutable lo : int;
  mutable hi : int;
  mutable left : node;
  mutable right : node;
  mutable parent : node;
  mutable red : bool;
  mutable cached : bool;
  mutable is_nil : bool;
}

type t = { nil : node; mutable root : node; mutable count : int; mutable visits : int }

let make_nil () =
  let rec nil =
    {
      lo = 0;
      hi = -1;
      left = nil;
      right = nil;
      parent = nil;
      red = false;
      cached = false;
      is_nil = true;
    }
  in
  nil

let create () =
  let nil = make_nil () in
  { nil; root = nil; count = 0; visits = 0 }

let size t = t.count
let lo n = n.lo
let hi n = n.hi
let cached_free n = n.cached
let set_cached_free n v = n.cached <- v
let visit t = t.visits <- t.visits + 1
let visits t = t.visits

let left_rotate t x =
  let y = x.right in
  visit t;
  x.right <- y.left;
  if not y.left.is_nil then y.left.parent <- x;
  y.parent <- x.parent;
  if x.parent.is_nil then t.root <- y
  else if x == x.parent.left then x.parent.left <- y
  else x.parent.right <- y;
  y.left <- x;
  x.parent <- y

let right_rotate t x =
  let y = x.left in
  visit t;
  x.left <- y.right;
  if not y.right.is_nil then y.right.parent <- x;
  y.parent <- x.parent;
  if x.parent.is_nil then t.root <- y
  else if x == x.parent.right then x.parent.right <- y
  else x.parent.left <- y;
  y.right <- x;
  x.parent <- y

let rec insert_fixup t z =
  if z.parent.red then begin
    if z.parent == z.parent.parent.left then begin
      let y = z.parent.parent.right in
      visit t;
      if y.red then begin
        z.parent.red <- false;
        y.red <- false;
        z.parent.parent.red <- true;
        insert_fixup t z.parent.parent
      end
      else begin
        let z = if z == z.parent.right then (left_rotate t z.parent; z.left) else z in
        (* after a possible rotation z points below its (black-to-be) parent *)
        let z = if z.is_nil then z else z in
        let p = z.parent in
        p.red <- false;
        p.parent.red <- true;
        right_rotate t p.parent;
        insert_fixup t z
      end
    end
    else begin
      let y = z.parent.parent.left in
      visit t;
      if y.red then begin
        z.parent.red <- false;
        y.red <- false;
        z.parent.parent.red <- true;
        insert_fixup t z.parent.parent
      end
      else begin
        let z = if z == z.parent.left then (right_rotate t z.parent; z.right) else z in
        let p = z.parent in
        p.red <- false;
        p.parent.red <- true;
        left_rotate t p.parent;
        insert_fixup t z
      end
    end
  end

let insert t ~lo ~hi =
  if lo > hi then invalid_arg "Rbtree.insert: lo > hi";
  let z =
    {
      lo;
      hi;
      left = t.nil;
      right = t.nil;
      parent = t.nil;
      red = true;
      cached = false;
      is_nil = false;
    }
  in
  let y = ref t.nil in
  let x = ref t.root in
  while not !x.is_nil do
    visit t;
    y := !x;
    if hi < !x.lo then x := !x.left
    else if lo > !x.hi then x := !x.right
    else invalid_arg "Rbtree.insert: overlapping interval"
  done;
  z.parent <- !y;
  if !y.is_nil then t.root <- z
  else if hi < !y.lo then !y.left <- z
  else !y.right <- z;
  insert_fixup t z;
  t.root.red <- false;
  t.count <- t.count + 1;
  z

let rec minimum t x =
  if x.left.is_nil then x
  else begin
    visit t;
    minimum t x.left
  end

let rec maximum t x =
  if x.right.is_nil then x
  else begin
    visit t;
    maximum t x.right
  end

let min_node t = if t.root.is_nil then None else Some (minimum t t.root)
let max_node t = if t.root.is_nil then None else Some (maximum t t.root)

let next t x =
  if not x.right.is_nil then Some (minimum t x.right)
  else begin
    let x = ref x and y = ref x.parent in
    while (not !y.is_nil) && !x == !y.right do
      visit t;
      x := !y;
      y := !y.parent
    done;
    if !y.is_nil then None else Some !y
  end

let prev t x =
  if not x.left.is_nil then Some (maximum t x.left)
  else begin
    let x = ref x and y = ref x.parent in
    while (not !y.is_nil) && !x == !y.left do
      visit t;
      x := !y;
      y := !y.parent
    done;
    if !y.is_nil then None else Some !y
  end

let find_containing t pfn =
  let rec go x =
    if x.is_nil then None
    else begin
      visit t;
      if pfn < x.lo then go x.left
      else if pfn > x.hi then go x.right
      else Some x
    end
  in
  go t.root

(* Allocation-free twin of [find_containing] for the zero-alloc unmap
   path: same traversal, same visit counting, no option box. *)
(* Iterative (no inner recursive closure): this sits on the zero-alloc
   unmap path. *)
let find_containing_exn t pfn =
  let x = ref t.root in
  while
    if !x.is_nil then raise Not_found
    else begin
      visit t;
      if pfn < !x.lo then begin
        x := !x.left;
        true
      end
      else if pfn > !x.hi then begin
        x := !x.right;
        true
      end
      else false
    end
  do
    ()
  done;
  !x

let transplant t u v =
  if u.parent.is_nil then t.root <- v
  else if u == u.parent.left then u.parent.left <- v
  else u.parent.right <- v;
  v.parent <- u.parent

let rec delete_fixup t x =
  if (not (x == t.root)) && not x.red then begin
    if x == x.parent.left then begin
      let w = ref x.parent.right in
      visit t;
      if !w.red then begin
        !w.red <- false;
        x.parent.red <- true;
        left_rotate t x.parent;
        w := x.parent.right
      end;
      if (not !w.left.red) && not !w.right.red then begin
        !w.red <- true;
        delete_fixup t x.parent
      end
      else begin
        if not !w.right.red then begin
          !w.left.red <- false;
          !w.red <- true;
          right_rotate t !w;
          w := x.parent.right
        end;
        !w.red <- x.parent.red;
        x.parent.red <- false;
        !w.right.red <- false;
        left_rotate t x.parent;
        delete_fixup t t.root
      end
    end
    else begin
      let w = ref x.parent.left in
      visit t;
      if !w.red then begin
        !w.red <- false;
        x.parent.red <- true;
        right_rotate t x.parent;
        w := x.parent.left
      end;
      if (not !w.right.red) && not !w.left.red then begin
        !w.red <- true;
        delete_fixup t x.parent
      end
      else begin
        if not !w.left.red then begin
          !w.right.red <- false;
          !w.red <- true;
          left_rotate t !w;
          w := x.parent.left
        end;
        !w.red <- x.parent.red;
        x.parent.red <- false;
        !w.left.red <- false;
        right_rotate t x.parent;
        delete_fixup t t.root
      end
    end
  end
  else x.red <- false

let delete t z =
  if z.is_nil then invalid_arg "Rbtree.delete: nil node";
  if z.parent == z then invalid_arg "Rbtree.delete: node already deleted";
  let y = ref z in
  let y_original_red = ref z.red in
  let x = ref t.nil in
  if z.left.is_nil then begin
    x := z.right;
    transplant t z z.right
  end
  else if z.right.is_nil then begin
    x := z.left;
    transplant t z z.left
  end
  else begin
    y := minimum t z.right;
    y_original_red := !y.red;
    x := !y.right;
    if !y.parent == z then !x.parent <- !y
    else begin
      transplant t !y !y.right;
      !y.right <- z.right;
      !y.right.parent <- !y
    end;
    transplant t z !y;
    !y.left <- z.left;
    !y.left.parent <- !y;
    !y.red <- z.red
  end;
  if not !y_original_red then delete_fixup t !x;
  t.nil.parent <- t.nil;
  t.nil.red <- false;
  (* Mark z detached so a second delete is caught. *)
  z.parent <- z;
  z.left <- t.nil;
  z.right <- t.nil;
  t.count <- t.count - 1

let iter t f =
  let rec go x =
    if not x.is_nil then begin
      go x.left;
      f x;
      go x.right
    end
  in
  go t.root

let check_invariants t =
  let exception Bad of string in
  try
    if t.root.red then raise (Bad "root is red");
    if not t.nil.red then () else raise (Bad "nil is red");
    (* red-black height + red-red + ordering + disjointness *)
    let rec black_height x =
      if x.is_nil then 1
      else begin
        if x.red && (x.left.red || x.right.red) then
          raise (Bad "red node with red child");
        if (not x.left.is_nil) && x.left.hi >= x.lo then
          raise (Bad "left subtree overlaps or out of order");
        if (not x.right.is_nil) && x.right.lo <= x.hi then
          raise (Bad "right subtree overlaps or out of order");
        if (not x.left.is_nil) && not (x.left.parent == x) then
          raise (Bad "broken parent pointer (left)");
        if (not x.right.is_nil) && not (x.right.parent == x) then
          raise (Bad "broken parent pointer (right)");
        let bl = black_height x.left in
        let br = black_height x.right in
        if bl <> br then raise (Bad "black heights differ");
        bl + if x.red then 0 else 1
      end
    in
    let _ = black_height t.root in
    (* global ordering and disjointness via in-order sweep *)
    let last_hi = ref min_int in
    iter t (fun n ->
        if n.lo <= !last_hi then raise (Bad "in-order intervals overlap");
        if n.lo > n.hi then raise (Bad "inverted interval");
        last_hi := n.hi);
    let counted = ref 0 in
    iter t (fun _ -> incr counted);
    if !counted <> t.count then raise (Bad "count mismatch");
    Ok ()
  with Bad msg -> Error msg
