module type S = sig
  type t

  val alloc : t -> size:int -> (int, [ `Exhausted ]) result
  val alloc_pfn : t -> size:int -> int
  val find : t -> pfn:int -> Rbtree.node option
  val find_exn : t -> pfn:int -> Rbtree.node
  val free : t -> Rbtree.node -> unit
  val live : t -> int
end

type kind = Linux | Fast

type t = L of Linux_allocator.t | F of Fast_allocator.t

let create ~kind ~limit_pfn ~clock ~cost =
  match kind with
  | Linux -> L (Linux_allocator.create ~limit_pfn ~clock ~cost)
  | Fast -> F (Fast_allocator.create ~limit_pfn ~clock ~cost)

let kind = function L _ -> Linux | F _ -> Fast

let alloc t ~size =
  match t with
  | L a -> Linux_allocator.alloc a ~size
  | F a -> Fast_allocator.alloc a ~size

let alloc_pfn t ~size =
  match t with
  | L a -> Linux_allocator.alloc_pfn a ~size
  | F a -> Fast_allocator.alloc_pfn a ~size

let find t ~pfn =
  match t with
  | L a -> Linux_allocator.find a ~pfn
  | F a -> Fast_allocator.find a ~pfn

let find_exn t ~pfn =
  match t with
  | L a -> Linux_allocator.find_exn a ~pfn
  | F a -> Fast_allocator.find_exn a ~pfn

let free t node =
  match t with L a -> Linux_allocator.free a node | F a -> Fast_allocator.free a node

let live = function L a -> Linux_allocator.live a | F a -> Fast_allocator.live a
