(** One service shard: a private translation engine plus its metrics.

    The service partitions tenants' flows across shards RSS-style; each
    shard owns a full {!Rio_domain.Manager} instance — its own IOTLB
    slice, its own per-tenant IOVA allocators fronted by magazine
    caches, its own simulated clock — so the request hot path never
    takes a lock and never shares mutable state with another shard
    (DESIGN.md §12). Cross-shard aggregation happens only at snapshot
    barriers, by merging the shards' {!Histogram}s.

    The [*_record] wrappers are the four op kinds the service serves;
    each charges the op's simulated cost to the shard clock and records
    the cycle latency in the op kind's histogram. [translate_record] is
    the per-DMA steady-state path and is allocation-free (lint manifest
    + bench gate). *)

type op = Map | Unmap | Translate | Map_sg

val op_name : op -> string
val op_index : op -> int
(** Stable index in [0, 3] ({!op_count} kinds), the order histograms
    and reports use. *)

val op_count : int
val op_of_index : int -> op

type t

val create :
  id:int ->
  tenants:int ->
  iotlb_capacity:int ->
  iotlb_policy:Rio_domain.Shared_iotlb.policy ->
  rcache:bool ->
  ?buf_pool:int ->
  unit ->
  t
(** A shard with [tenants] domains attached (bdf = bus [tenant+1]) and
    a cyclic pool of [buf_pool] (default 1024) DMA-able frames. *)

val id : t -> int
val tenants : t -> int
val clock : t -> Rio_sim.Cycles.t
val manager : t -> Rio_domain.Manager.t
val rid : t -> tenant:int -> int
val domain : t -> tenant:int -> Rio_domain.Manager.domain

val next_buf : t -> Rio_memory.Addr.phys
(** Next frame of the shard's buffer pool (cyclic; page-aligned). *)

(** {1 Recorded operations} *)

val map_record :
  t -> tenant:int -> phys:Rio_memory.Addr.phys -> bytes:int ->
  (int, [ `Exhausted ]) result

val unmap_record : t -> tenant:int -> iova:int -> (unit, [ `Not_mapped ]) result

val map_sg_record :
  t -> tenant:int -> segs:(Rio_memory.Addr.phys * int) array -> n:int ->
  iovas:int array -> (int, [ `Exhausted ]) result

val unmap_sg_record :
  t -> tenant:int -> iovas:int array -> n:int -> (unit, [ `Not_mapped ]) result
(** Batch unmap, recorded in the [Unmap] histogram as one operation. *)

val translate_record : t -> tenant:int -> iova:int -> write:bool -> Rio_memory.Addr.phys
(** One DMA translation, recorded in the [Translate] histogram.
    Allocation-free in steady state; faults propagate
    {!Rio_domain.Manager.Translation_fault} after being counted. *)

(** {1 Metrics} *)

val hist : t -> op -> Histogram.t

val tenant_hist : t -> tenant:int -> Histogram.t
(** All four op kinds pooled into one latency histogram per tenant —
    the per-tenant breakdown the stats JSON reports. Recorded alongside
    the per-op histogram on every [*_record] call (still
    allocation-free). *)

val iotlb_stats : t -> tenant:int -> Rio_domain.Shared_iotlb.stats
(** The tenant domain's shared-IOTLB accounting (hits, misses,
    evictions, flushes) on this shard. *)

val ops : t -> op -> int
val total_ops : t -> int
val faults : t -> int
(** Tenant faults plus unknown-rid faults on this shard's manager. *)
