open Rio_sim
open Rio_workload

type profile = Http | Kv

type tenant_spec = { profile : profile; think_mean : int; conn_mean : int }

let default_specs ~tenants =
  Array.init tenants (fun i ->
      {
        profile = (if i mod 2 = 0 then Http else Kv);
        think_mean = (if i mod 4 < 2 then 0 else 200_000);
        conn_mean = 64;
      })

type flow = {
  tenant : int;
  slot : int;
  ring_iova : int;  (* long-lived descriptor-ring page, mapped at create *)
  mutable stream : Splittable_rng.t;
  mutable conn_serial : int;
  mutable reqs_left : int;
  segs : (Rio_memory.Addr.phys * int) array;
  iovas : int array;
}

type t = {
  shard : Shard.t;
  specs : tenant_spec array;
  base : Splittable_rng.t;  (* seed / "serve" / shard *)
  flows : flow array;
  eq : int Rio_sim.Event_queue.t;  (* payload: flow slot *)
  sg_max : int;
  mutable requests : int;
  mutable connections : int;
  mutable dropped : int;
}

let page_size = Rio_memory.Addr.page_size

let draw flow =
  let v, s = Splittable_rng.next flow.stream in
  flow.stream <- s;
  v

let drawf flow = Objects.u01 (draw flow)

let open_connection t flow =
  let spec = t.specs.(flow.tenant) in
  flow.stream <-
    Splittable_rng.(
      t.base |> fun s ->
      descend (descend (descend s flow.tenant) flow.slot) flow.conn_serial);
  flow.conn_serial <- flow.conn_serial + 1;
  flow.reqs_left <- Objects.requests_per_connection ~mean:spec.conn_mean (drawf flow);
  t.connections <- t.connections + 1

let create ~shard ~specs ~seed ~flows_per_tenant ~sg_max =
  if Array.length specs <> Shard.tenants shard then
    invalid_arg "Loadgen.create: specs size <> Shard.tenants";
  if flows_per_tenant < 1 then invalid_arg "Loadgen.create: flows_per_tenant";
  if sg_max < 1 then invalid_arg "Loadgen.create: sg_max";
  let root = Splittable_rng.create ~seed in
  let base =
    Splittable_rng.path root [ "serve"; string_of_int (Shard.id shard) ]
  in
  (* Each flow owns a descriptor-ring page for the lifetime of the
     service (mapped outside the recorded steady state, like a driver's
     ring setup): requests re-translate it on every descriptor fetch,
     which is the IOTLB-resident traffic ring-buffer devices generate. *)
  let ring_map tenant =
    let mgr = Shard.manager shard in
    match
      Rio_domain.Manager.map mgr
        (Shard.domain shard ~tenant)
        ~phys:(Shard.next_buf shard) ~bytes:page_size ~read:true ~write:true
    with
    | Ok iova -> iova
    | Error `Exhausted -> invalid_arg "Loadgen.create: iova space exhausted"
  in
  let flows =
    Array.init
      (Array.length specs * flows_per_tenant)
      (fun slot ->
        {
          tenant = slot / flows_per_tenant;
          slot;
          ring_iova = ring_map (slot / flows_per_tenant);
          stream = base;
          conn_serial = 0;
          reqs_left = 0;
          segs = Array.make sg_max (Rio_memory.Addr.phys_of_int 0, 0);
          iovas = Array.make sg_max 0;
        })
  in
  let t =
    {
      shard;
      specs;
      base;
      flows;
      eq = Event_queue.create ();
      sg_max;
      requests = 0;
      connections = 0;
      dropped = 0;
    }
  in
  Array.iter
    (fun flow ->
      open_connection t flow;
      let spec = specs.(flow.tenant) in
      let gap = Objects.think_cycles ~mean:spec.think_mean (drawf flow) in
      Event_queue.push t.eq ~time:gap flow.slot)
    flows;
  t

let step t flow =
  let spec = t.specs.(flow.tenant) in
  (* descriptor fetch: the device re-reads its ring before moving data *)
  ignore
    (Shard.translate_record t.shard ~tenant:flow.tenant ~iova:flow.ring_iova
       ~write:false
      : Rio_memory.Addr.phys);
  let u = drawf flow in
  let bytes =
    match spec.profile with
    | Http -> Objects.http_bytes u
    | Kv -> Objects.kv_bytes u
  in
  let pages = (bytes + page_size - 1) / page_size in
  let pages = if pages < 1 then 1 else if pages > t.sg_max then t.sg_max else pages in
  let wr = Int64.logand (draw flow) 1L = 0L in
  let tenant = flow.tenant in
  (if pages = 1 then
     let bytes = if bytes > page_size then page_size else bytes in
     match
       Shard.map_record t.shard ~tenant ~phys:(Shard.next_buf t.shard) ~bytes
     with
     | Error `Exhausted -> t.dropped <- t.dropped + 1
     | Ok iova ->
         ignore
           (Shard.translate_record t.shard ~tenant ~iova ~write:wr
             : Rio_memory.Addr.phys);
         (match Shard.unmap_record t.shard ~tenant ~iova with
         | Ok () -> ()
         | Error `Not_mapped -> assert false)
   else begin
     let rem = ref bytes in
     for i = 0 to pages - 1 do
       let b = if !rem > page_size then page_size else !rem in
       let b = if b < 1 then 1 else b in
       flow.segs.(i) <- (Shard.next_buf t.shard, b);
       rem := !rem - b
     done;
     match
       Shard.map_sg_record t.shard ~tenant ~segs:flow.segs ~n:pages
         ~iovas:flow.iovas
     with
     | Error `Exhausted -> t.dropped <- t.dropped + 1
     | Ok _ ->
         for i = 0 to pages - 1 do
           ignore
             (Shard.translate_record t.shard ~tenant ~iova:flow.iovas.(i)
                ~write:wr
               : Rio_memory.Addr.phys)
         done;
         (match Shard.unmap_sg_record t.shard ~tenant ~iovas:flow.iovas ~n:pages with
         | Ok () -> ()
         | Error `Not_mapped -> assert false)
   end);
  t.requests <- t.requests + 1;
  flow.reqs_left <- flow.reqs_left - 1;
  if flow.reqs_left <= 0 then open_connection t flow;
  let gap = Objects.think_cycles ~mean:spec.think_mean (drawf flow) in
  let clock = Shard.clock t.shard in
  Event_queue.push t.eq ~time:(Cycles.now clock + gap) flow.slot

let run_until t ~deadline ~stop =
  let clock = Shard.clock t.shard in
  let running = ref true in
  while !running do
    if Rio_exec.Flag.get stop || Event_queue.is_empty t.eq then running := false
    else begin
      let te = Event_queue.next_time t.eq in
      if te > deadline then running := false
      else begin
        let slot = Event_queue.pop_exn t.eq in
        let now = Cycles.now clock in
        if te > now then Cycles.charge clock (te - now);
        step t t.flows.(slot)
      end
    end
  done;
  if not (Rio_exec.Flag.get stop) then begin
    let now = Cycles.now clock in
    if deadline > now then Cycles.charge clock (deadline - now)
  end

let requests t = t.requests
let connections t = t.connections
let dropped t = t.dropped
