open Rio_sim

type config = {
  shards : int;
  jobs : int;
  tenants : int;
  flows_per_tenant : int;
  duration_s : float;
  interval_s : float;
  seed : int;
  rcache : bool;
  iotlb_capacity : int;
  iotlb_policy : Rio_domain.Shared_iotlb.policy;
  sg_max : int;
}

let default_config =
  {
    shards = 4;
    jobs = 1;
    tenants = 8;
    flows_per_tenant = 4;
    duration_s = 1.0;
    interval_s = 0.25;
    seed = 42;
    rcache = true;
    iotlb_capacity = 256;
    iotlb_policy = Rio_domain.Shared_iotlb.Shared;
    sg_max = 16;
  }

type snapshot = {
  tick : int;
  virtual_s : float;
  ops : int array;
  mean_cycles : float array;
  p50 : int array;
  p99 : int array;
  p999 : int array;
  max_cycles : int array;
  win_ops : int array;
  win_p50 : int array;
  win_p99 : int array;
  win_p999 : int array;
  requests : int;
  connections : int;
  dropped : int;
  faults : int;
}

type tenant_stat = {
  t_ops : int;
  t_hits : int;
  t_misses : int;
  t_p50 : int;
  t_p99 : int;
  t_p999 : int;
}

type report = {
  config : config;
  snapshots : snapshot list;
  tenants : tenant_stat array;
  stopped : bool;
}

let final r =
  match List.rev r.snapshots with
  | s :: _ -> s
  | [] -> invalid_arg "Server.final: empty report"

let validate cfg =
  if cfg.shards < 1 then invalid_arg "Server.run: shards";
  if cfg.jobs < 0 then invalid_arg "Server.run: jobs";
  if cfg.tenants < 1 || cfg.tenants > 254 then invalid_arg "Server.run: tenants";
  if cfg.flows_per_tenant < 1 then invalid_arg "Server.run: flows_per_tenant";
  if not (cfg.duration_s > 0.) then invalid_arg "Server.run: duration_s";
  if not (cfg.interval_s > 0.) then invalid_arg "Server.run: interval_s";
  if cfg.sg_max < 1 then invalid_arg "Server.run: sg_max"

let snapshot_of ~tick ~virtual_s shards gens =
  let k = Shard.op_count in
  let ops = Array.make k 0 in
  let mean_cycles = Array.make k 0. in
  let p50 = Array.make k 0 in
  let p99 = Array.make k 0 in
  let p999 = Array.make k 0 in
  let max_cycles = Array.make k 0 in
  let win_ops = Array.make k 0 in
  let win_p50 = Array.make k 0 in
  let win_p99 = Array.make k 0 in
  let win_p999 = Array.make k 0 in
  for i = 0 to k - 1 do
    let h = Histogram.create () in
    Array.iter
      (fun sh -> Histogram.merge_into ~dst:h (Shard.hist sh (Shard.op_of_index i)))
      shards;
    ops.(i) <- Histogram.count h;
    mean_cycles.(i) <- Histogram.mean h;
    if Histogram.count h > 0 then begin
      p50.(i) <- Histogram.quantile h 0.5;
      p99.(i) <- Histogram.quantile h 0.99;
      p999.(i) <- Histogram.quantile h 0.999;
      max_cycles.(i) <- Histogram.max_recorded h
    end;
    (* interval window: only what landed since the previous snapshot
       barrier, folded across shards (the checkpoint lives in each
       shard histogram, advanced here at the barrier) *)
    let w = Histogram.create () in
    Array.iter
      (fun sh -> Histogram.interval_into (Shard.hist sh (Shard.op_of_index i)) ~into:w)
      shards;
    win_ops.(i) <- Histogram.count w;
    if Histogram.count w > 0 then begin
      win_p50.(i) <- Histogram.quantile w 0.5;
      win_p99.(i) <- Histogram.quantile w 0.99;
      win_p999.(i) <- Histogram.quantile w 0.999
    end
  done;
  let sum f arr = Array.fold_left (fun acc x -> acc + f x) 0 arr in
  {
    tick;
    virtual_s;
    ops;
    mean_cycles;
    p50;
    p99;
    p999;
    max_cycles;
    win_ops;
    win_p50;
    win_p99;
    win_p999;
    requests = sum Loadgen.requests gens;
    connections = sum Loadgen.connections gens;
    dropped = sum Loadgen.dropped gens;
    faults = sum Shard.faults shards;
  }

(* Per-tenant rollup across shards: each shard hosts one domain per
   tenant index, so "tenant i" aggregates the i-th domain of every
   shard (the same tenant class the loadgen drives with one spec). *)
let tenant_stats_of shards ~tenants =
  Array.init tenants (fun tn ->
      let h = Histogram.create () in
      let hits = ref 0 and misses = ref 0 in
      Array.iter
        (fun sh ->
          if tn < Shard.tenants sh then begin
            Histogram.merge_into ~dst:h (Shard.tenant_hist sh ~tenant:tn);
            let s = Shard.iotlb_stats sh ~tenant:tn in
            hits := !hits + s.Rio_domain.Shared_iotlb.hits;
            misses := !misses + s.Rio_domain.Shared_iotlb.misses
          end)
        shards;
      let n = Histogram.count h in
      {
        t_ops = n;
        t_hits = !hits;
        t_misses = !misses;
        t_p50 = (if n > 0 then Histogram.quantile h 0.5 else 0);
        t_p99 = (if n > 0 then Histogram.quantile h 0.99 else 0);
        t_p999 = (if n > 0 then Histogram.quantile h 0.999 else 0);
      })

let run ?stop ?(on_snapshot = fun _ -> ()) cfg =
  validate cfg;
  let stop =
    match stop with Some s -> s | None -> Rio_exec.Flag.create ()
  in
  let cps = Cost_model.cycles_per_second Cost_model.default in
  let total = max 1 (int_of_float (cfg.duration_s *. cps)) in
  let interval = max 1 (int_of_float (cfg.interval_s *. cps)) in
  let shards =
    Array.init cfg.shards (fun id ->
        Shard.create ~id ~tenants:cfg.tenants ~iotlb_capacity:cfg.iotlb_capacity
          ~iotlb_policy:cfg.iotlb_policy ~rcache:cfg.rcache ())
  in
  let specs = Loadgen.default_specs ~tenants:cfg.tenants in
  let gens =
    Array.map
      (fun sh ->
        Loadgen.create ~shard:sh ~specs ~seed:cfg.seed
          ~flows_per_tenant:cfg.flows_per_tenant ~sg_max:cfg.sg_max)
      shards
  in
  let snapshots = ref [] in
  let tick = ref 0 in
  let finished = ref false in
  while not !finished do
    incr tick;
    let deadline = min total (!tick * interval) in
    let tasks =
      Array.map (fun g () -> Loadgen.run_until g ~deadline ~stop) gens
    in
    ignore (Rio_exec.Pool.run ~jobs:cfg.jobs tasks : unit array);
    let snap =
      snapshot_of ~tick:!tick ~virtual_s:(float_of_int deadline /. cps) shards
        gens
    in
    snapshots := snap :: !snapshots;
    on_snapshot snap;
    if deadline >= total || Rio_exec.Flag.get stop then finished := true
  done;
  {
    config = cfg;
    snapshots = List.rev !snapshots;
    tenants = tenant_stats_of shards ~tenants:cfg.tenants;
    stopped = Rio_exec.Flag.get stop;
  }

(* {1 Rendering} *)

let total_ops snap = Array.fold_left ( + ) 0 snap.ops

let render_summary r =
  let s = final r in
  let cfg = r.config in
  let b = Buffer.create 1024 in
  Buffer.add_string b "riommu-serve summary\n";
  Printf.bprintf b
    "  shards %d  tenants/shard %d  flows/tenant %d  seed %d  rcache %s  \
     iotlb %d/%s  sg_max %d\n"
    cfg.shards cfg.tenants cfg.flows_per_tenant cfg.seed
    (if cfg.rcache then "on" else "off")
    cfg.iotlb_capacity
    (Rio_domain.Shared_iotlb.policy_name cfg.iotlb_policy)
    cfg.sg_max;
  Printf.bprintf b
    "  simulated %.3f s  requests %d  connections %d  dropped %d  faults %d%s\n"
    s.virtual_s s.requests s.connections s.dropped s.faults
    (if r.stopped then "  (stopped early)" else "");
  Printf.bprintf b "  %-10s %12s %12s %8s %8s %8s %8s\n" "op" "ops" "mean(cy)"
    "p50" "p99" "p99.9" "max";
  for i = 0 to Shard.op_count - 1 do
    Printf.bprintf b "  %-10s %12d %12.1f %8d %8d %8d %8d\n"
      (Shard.op_name (Shard.op_of_index i))
      s.ops.(i) s.mean_cycles.(i) s.p50.(i) s.p99.(i) s.p999.(i)
      s.max_cycles.(i)
  done;
  Printf.bprintf b "  total ops %d\n" (total_ops s);
  Buffer.contents b

let alloc_probe () =
  let shard =
    Shard.create ~id:0 ~tenants:1 ~iotlb_capacity:64
      ~iotlb_policy:Rio_domain.Shared_iotlb.Shared ~rcache:true ~buf_pool:8 ()
  in
  let tenant = 0 in
  let overhead =
    let a = Gc.minor_words () in
    let b = Gc.minor_words () in
    b -. a
  in
  let words = Array.make Shard.op_count 0. in
  let per_op delta iters =
    let w = (delta -. overhead) /. float_of_int iters in
    if w < 0. then 0. else w
  in
  let iters = 8_192 in
  let iovas = Array.make (2 * iters) 0 in
  let do_map lo hi =
    for i = lo to hi - 1 do
      match
        Shard.map_record shard ~tenant ~phys:(Shard.next_buf shard) ~bytes:512
      with
      | Ok v -> iovas.(i) <- v
      | Error `Exhausted -> failwith "Server.alloc_probe: exhausted"
    done
  in
  let do_unmap lo hi =
    for i = lo to hi - 1 do
      match Shard.unmap_record shard ~tenant ~iova:iovas.(i) with
      | Ok () -> ()
      | Error `Not_mapped -> failwith "Server.alloc_probe: not mapped"
    done
  in
  (* first half warms allocator and magazine paths; second half is
     measured in steady state *)
  do_map 0 iters;
  let a = Gc.minor_words () in
  do_map iters (2 * iters);
  let b = Gc.minor_words () in
  words.(Shard.op_index Shard.Map) <- per_op (b -. a) iters;
  do_unmap 0 iters;
  let a = Gc.minor_words () in
  do_unmap iters (2 * iters);
  let b = Gc.minor_words () in
  words.(Shard.op_index Shard.Unmap) <- per_op (b -. a) iters;
  let iova0 =
    match
      Shard.map_record shard ~tenant ~phys:(Shard.next_buf shard) ~bytes:512
    with
    | Ok v -> v
    | Error `Exhausted -> failwith "Server.alloc_probe: exhausted"
  in
  for _ = 1 to 64 do
    ignore
      (Shard.translate_record shard ~tenant ~iova:iova0 ~write:false
        : Rio_memory.Addr.phys)
  done;
  let a = Gc.minor_words () in
  for _ = 1 to iters do
    ignore
      (Shard.translate_record shard ~tenant ~iova:iova0 ~write:false
        : Rio_memory.Addr.phys)
  done;
  let b = Gc.minor_words () in
  words.(Shard.op_index Shard.Translate) <- per_op (b -. a) iters;
  let nseg = 4 in
  let sg_iters = 2_048 in
  let segs = Array.init nseg (fun _ -> (Shard.next_buf shard, 4_096)) in
  let scratch = Array.make nseg 0 in
  let store = Array.make (2 * sg_iters * nseg) 0 in
  let do_map_sg lo hi =
    for i = lo to hi - 1 do
      (match Shard.map_sg_record shard ~tenant ~segs ~n:nseg ~iovas:scratch with
      | Ok _ -> ()
      | Error `Exhausted -> failwith "Server.alloc_probe: exhausted");
      Array.blit scratch 0 store (i * nseg) nseg
    done
  in
  let do_unmap_sg lo hi =
    for i = lo to hi - 1 do
      Array.blit store (i * nseg) scratch 0 nseg;
      match Shard.unmap_sg_record shard ~tenant ~iovas:scratch ~n:nseg with
      | Ok () -> ()
      | Error `Not_mapped -> failwith "Server.alloc_probe: not mapped"
    done
  in
  do_map_sg 0 sg_iters;
  let a = Gc.minor_words () in
  do_map_sg sg_iters (2 * sg_iters);
  let b = Gc.minor_words () in
  words.(Shard.op_index Shard.Map_sg) <- per_op (b -. a) sg_iters;
  do_unmap_sg 0 (2 * sg_iters);
  words

(* Shared with the socket transport's stats JSON (rio_serve_net): the
   per-tenant section is schema-identical in both, so dashboards parse
   one shape. *)
let bprint_tenants b tenants =
  Printf.bprintf b "  \"tenants\": [\n";
  Array.iteri
    (fun i t ->
      let lookups = t.t_hits + t.t_misses in
      Printf.bprintf b
        "    { \"tenant\": %d, \"ops\": %d, \"iotlb_hit_rate\": %.4f, \
         \"p50_cycles\": %d, \"p99_cycles\": %d, \"p999_cycles\": %d }%s\n"
        i t.t_ops
        (if lookups > 0 then float_of_int t.t_hits /. float_of_int lookups
         else 0.)
        t.t_p50 t.t_p99 t.t_p999
        (if i = Array.length tenants - 1 then "" else ","))
    tenants;
  Printf.bprintf b "  ]"

let render_json r ~wall_ns ~words_per_op =
  if Array.length words_per_op <> Shard.op_count then
    invalid_arg "Server.render_json: words_per_op size";
  let s = final r in
  let cfg = r.config in
  let cost = Cost_model.default in
  let total = total_ops s in
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n  \"schema\": \"riommu-serve/1\",\n";
  Printf.bprintf b
    "  \"seed\": %d, \"shards\": %d, \"jobs\": %d, \"tenants\": %d, \
     \"flows_per_tenant\": %d,\n"
    cfg.seed cfg.shards cfg.jobs cfg.tenants cfg.flows_per_tenant;
  Printf.bprintf b
    "  \"duration_simulated_s\": %.6f, \"stopped_early\": %b,\n" s.virtual_s
    r.stopped;
  Printf.bprintf b
    "  \"requests\": %d, \"connections\": %d, \"dropped\": %d, \"faults\": %d,\n"
    s.requests s.connections s.dropped s.faults;
  Printf.bprintf b
    "  \"total_ops\": %d, \"wall_ns\": %.0f, \"ops_per_sec\": %.0f,\n" total
    wall_ns
    (if wall_ns > 0. then float_of_int total /. (wall_ns /. 1e9) else 0.);
  Printf.bprintf b "  \"groups\": [\n";
  for i = 0 to Shard.op_count - 1 do
    let op = Shard.op_of_index i in
    Printf.bprintf b
      "    { \"name\": \"serve/%s\", \"iters\": %d, \"ns_per_op\": %.2f, \
       \"words_per_op\": %.2f, \"gated_zero_alloc\": %b, \"p50_cycles\": %d, \
       \"p99_cycles\": %d, \"p999_cycles\": %d, \"max_cycles\": %d }%s\n"
      (Shard.op_name op) s.ops.(i)
      (Cost_model.cycles_to_ns cost (int_of_float s.mean_cycles.(i)))
      words_per_op.(i)
      (op = Shard.Translate)
      s.p50.(i) s.p99.(i) s.p999.(i) s.max_cycles.(i)
      (if i = Shard.op_count - 1 then "" else ",")
  done;
  Printf.bprintf b "  ],\n";
  bprint_tenants b r.tenants;
  Printf.bprintf b ",\n";
  (* interval windows: per-reporting-tick percentiles (not cumulative),
     arrays indexed by Shard.op_index like the snapshot arrays *)
  Printf.bprintf b "  \"intervals\": [\n";
  let n_snap = List.length r.snapshots in
  List.iteri
    (fun i sn ->
      let arr a =
        String.concat ", " (Array.to_list (Array.map string_of_int a))
      in
      Printf.bprintf b
        "    { \"tick\": %d, \"virtual_s\": %.6f, \"win_ops\": [%s], \
         \"win_p50\": [%s], \"win_p99\": [%s], \"win_p999\": [%s] }%s\n"
        sn.tick sn.virtual_s (arr sn.win_ops) (arr sn.win_p50)
        (arr sn.win_p99) (arr sn.win_p999)
        (if i = n_snap - 1 then "" else ","))
    r.snapshots;
  Printf.bprintf b "  ]\n}\n";
  Buffer.contents b
