(** The riommu-serve engine: shards, ticks, snapshots, reports.

    [run] hosts [shards] independent {!Shard}s, each driven by its own
    {!Loadgen}, and advances them in lockstep over snapshot intervals:
    every tick, a {!Rio_exec.Pool.run} fans the shards out over [jobs]
    worker domains (sequential on the 4.x backend), each shard executes
    its event queue up to the tick's simulated-time deadline, and the
    join barrier publishes the shards' histograms to the reporter,
    which merges them into a cumulative {!snapshot}.

    Because each shard's schedule is a pure function of (seed, shard
    id, specs) and shards share no mutable state between barriers, the
    snapshots — and the final report — are byte-identical for any
    [jobs]. Wall-clock time never enters the engine: callers time
    {!run} themselves and pass the measurement to {!render_json}. *)

type config = {
  shards : int;  (** determinism unit; fixed independent of [jobs] *)
  jobs : int;  (** worker domains; [0] = one per recommended domain *)
  tenants : int;  (** tenant domains per shard *)
  flows_per_tenant : int;
  duration_s : float;  (** simulated seconds to serve *)
  interval_s : float;  (** snapshot cadence, simulated seconds *)
  seed : int;
  rcache : bool;  (** magazine front on every tenant's IOVA allocator *)
  iotlb_capacity : int;  (** per-shard IOTLB entries *)
  iotlb_policy : Rio_domain.Shared_iotlb.policy;
  sg_max : int;  (** scatter-gather list cap per request *)
}

val default_config : config
(** 4 shards, sequential, 8 tenants x 4 flows, 1 simulated second in
    250 ms ticks, seed 42, rcache on, 256-entry shared IOTLB,
    16-segment sg lists. *)

type snapshot = {
  tick : int;  (** 1-based tick index *)
  virtual_s : float;  (** simulated seconds elapsed *)
  ops : int array;  (** cumulative op count per {!Shard.op_index} *)
  mean_cycles : float array;
  p50 : int array;
  p99 : int array;
  p999 : int array;
  max_cycles : int array;
  win_ops : int array;  (** ops landed in this tick's window only *)
  win_p50 : int array;  (** window percentiles ({!Histogram.interval_into}) *)
  win_p99 : int array;
  win_p999 : int array;
  requests : int;
  connections : int;
  dropped : int;
  faults : int;
}
(** Cumulative (since start of run) per-op-kind latency statistics,
    merged across all shards, plus the tick's interval window (what
    landed since the previous snapshot barrier — per-reporting-window
    percentiles, not just cumulative). Arrays are indexed by
    {!Shard.op_index}. *)

type tenant_stat = {
  t_ops : int;  (** all op kinds pooled *)
  t_hits : int;  (** IOTLB hits across every shard's domain *)
  t_misses : int;
  t_p50 : int;  (** pooled-latency percentiles, cycles *)
  t_p99 : int;
  t_p999 : int;
}

type report = {
  config : config;
  snapshots : snapshot list;  (** chronological; at least one *)
  tenants : tenant_stat array;  (** per-tenant rollup, index = tenant *)
  stopped : bool;  (** [true] if [stop] cut the run short *)
}

val final : report -> snapshot

val run :
  ?stop:Rio_exec.Flag.t -> ?on_snapshot:(snapshot -> unit) -> config -> report
(** Serve for [duration_s] simulated seconds. [on_snapshot] fires after
    every tick's join barrier (the caller's chance to report wall-clock
    progress). [stop] is polled between events on every shard; once
    raised, shards retire at their next event boundary and the run
    returns with [stopped = true] after the in-flight tick joins. *)

val tenant_stats_of : Shard.t array -> tenants:int -> tenant_stat array
(** Roll the i-th tenant domain of every shard up into one
    {!tenant_stat} (histograms merged exactly, IOTLB counters summed).
    Exposed for the socket transport, whose stats JSON shares the
    per-tenant section. *)

(** {1 Rendering} *)

val bprint_tenants : Buffer.t -> tenant_stat array -> unit
(** Append the [{"tenants": [...]}] JSON section (no trailing comma or
    newline) — the shared shape between the simulated and socket stats
    files. *)

val render_summary : report -> string
(** Human-readable final table. Deterministic: simulated quantities
    only, byte-identical for any [jobs] — this is what the cram test
    [cmp]s. *)

val alloc_probe : unit -> float array
(** Measured minor-heap words per operation for each op kind, from a
    sequential probe loop on a private single-tenant shard (so the
    numbers are attributed to the calling domain and unpolluted by the
    load generator). [translate] must be 0.00 — the bench gate's
    serve-translate group enforces it. *)

val render_json :
  report -> wall_ns:float -> words_per_op:float array -> string
(** Stats JSON in the bench schema ([riommu-serve/1]): one group object
    per line per op kind, with [name]/[iters]/[ns_per_op] (simulated
    mean, machine-independent)/[words_per_op]/[gated_zero_alloc]
    fields exactly as [bench/compare.ml] parses them, plus quantile
    fields and top-level wall-clock throughput ([wall_ns],
    [ops_per_sec]). Only the translate group is gated zero-alloc. *)
