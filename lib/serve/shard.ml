(* A shard is a vertical slice of the service: manager + clock +
   metrics, owned by exactly one worker domain at a time. Shard state
   is handed across ticks only through the pool's fork/join barrier,
   so none of it needs atomics — the lint's domain-safety rule checks
   that nothing here is module-level mutable. *)

open Rio_memory
open Rio_domain

type op = Map | Unmap | Translate | Map_sg

let op_name = function
  | Map -> "map"
  | Unmap -> "unmap"
  | Translate -> "translate"
  | Map_sg -> "map_sg"

let op_index = function Map -> 0 | Unmap -> 1 | Translate -> 2 | Map_sg -> 3
let op_count = 4

let op_of_index = function
  | 0 -> Map
  | 1 -> Unmap
  | 2 -> Translate
  | 3 -> Map_sg
  | _ -> invalid_arg "Shard.op_of_index"

type t = {
  id : int;
  mgr : Manager.t;
  clock : Rio_sim.Cycles.t;
  doms : Manager.domain array;
  rids : int array;
  hists : Histogram.t array;  (* indexed by op_index *)
  tenant_hists : Histogram.t array;  (* per tenant, all op kinds pooled *)
  bufs : Addr.phys array;
  mutable buf_next : int;
}

(* Frames beyond the DMA buffer pool feed each tenant's radix
   page-table nodes; the pool sizes below keep a 64-tenant shard far
   from exhaustion. *)
let table_frames = 16_384

let create ~id ~tenants ~iotlb_capacity ~iotlb_policy ~rcache ?(buf_pool = 1024)
    () =
  if tenants < 1 || tenants > 254 then invalid_arg "Shard.create: tenants";
  if buf_pool < 1 then invalid_arg "Shard.create: buf_pool";
  let frames = Frame_allocator.create ~total_frames:(buf_pool + table_frames) in
  let clock = Rio_sim.Cycles.create () in
  let mgr =
    Manager.create ~iotlb_policy ~iotlb_capacity ~invalidation:Manager.Per_domain
      ~policy:Manager.Immediate ~frames ~clock ~cost:Rio_sim.Cost_model.default
      ~rcache ()
  in
  let doms =
    Array.init tenants (fun i ->
        Manager.add_domain mgr
          ~name:(Printf.sprintf "shard%d/tenant%d" id i)
          ~bdf:(Rio_iommu.Bdf.make ~bus:(i + 1) ~device:0 ~func:0)
          ())
  in
  let rids = Array.map Manager.rid doms in
  let bufs = Array.init buf_pool (fun _ -> Frame_allocator.alloc_exn frames) in
  {
    id;
    mgr;
    clock;
    doms;
    rids;
    hists = Array.init op_count (fun _ -> Histogram.create ());
    tenant_hists = Array.init tenants (fun _ -> Histogram.create ());
    bufs;
    buf_next = 0;
  }

let id t = t.id
let tenants t = Array.length t.doms
let clock t = t.clock
let manager t = t.mgr
let rid t ~tenant = t.rids.(tenant)
let domain t ~tenant = t.doms.(tenant)

let next_buf t =
  let b = t.bufs.(t.buf_next) in
  t.buf_next <- (t.buf_next + 1) mod Array.length t.bufs;
  b

let map_record t ~tenant ~phys ~bytes =
  let start = Rio_sim.Cycles.now t.clock in
  let r = Manager.map t.mgr t.doms.(tenant) ~phys ~bytes ~read:true ~write:true in
  let dt = Rio_sim.Cycles.since t.clock start in
  Histogram.record t.hists.(0) dt;
  Histogram.record t.tenant_hists.(tenant) dt;
  r

let unmap_record t ~tenant ~iova =
  let start = Rio_sim.Cycles.now t.clock in
  let r = Manager.unmap t.mgr t.doms.(tenant) ~iova in
  let dt = Rio_sim.Cycles.since t.clock start in
  Histogram.record t.hists.(1) dt;
  Histogram.record t.tenant_hists.(tenant) dt;
  r

let map_sg_record t ~tenant ~segs ~n ~iovas =
  let start = Rio_sim.Cycles.now t.clock in
  let r =
    Manager.map_sg t.mgr t.doms.(tenant) ~segs ~n ~iovas ~read:true ~write:true
      ()
  in
  let dt = Rio_sim.Cycles.since t.clock start in
  Histogram.record t.hists.(3) dt;
  Histogram.record t.tenant_hists.(tenant) dt;
  r

let unmap_sg_record t ~tenant ~iovas ~n =
  let start = Rio_sim.Cycles.now t.clock in
  let r = Manager.unmap_sg t.mgr t.doms.(tenant) ~iovas ~n () in
  let dt = Rio_sim.Cycles.since t.clock start in
  Histogram.record t.hists.(1) dt;
  Histogram.record t.tenant_hists.(tenant) dt;
  r

let translate_record t ~tenant ~iova ~write =
  let start = Rio_sim.Cycles.now t.clock in
  let phys = Manager.translate_exn t.mgr ~rid:t.rids.(tenant) ~iova ~write in
  let dt = Rio_sim.Cycles.since t.clock start in
  Histogram.record t.hists.(2) dt;
  Histogram.record t.tenant_hists.(tenant) dt;
  phys

let hist t op = t.hists.(op_index op)
let tenant_hist t ~tenant = t.tenant_hists.(tenant)
let iotlb_stats t ~tenant = Manager.iotlb_stats t.mgr t.doms.(tenant)
let ops t op = Histogram.count t.hists.(op_index op)

let total_ops t =
  let n = ref 0 in
  Array.iter (fun h -> n := !n + Histogram.count h) t.hists;
  !n

let faults t =
  let n = ref (Manager.unknown_rid_faults t.mgr) in
  Array.iter (fun d -> n := !n + Manager.faults t.mgr d) t.doms;
  !n
