(* HdrHistogram-style log-linear buckets over a flat int array.

   Geometry: values in [0, 2 * 2^sub_bits) are exact (unit buckets
   indexed by value); each later power-of-two octave [2^e, 2^(e+1)) is
   split into 2^sub_bits linear sub-buckets of width 2^(e - sub_bits).
   With e the position of the value's highest set bit and
   shift = e - sub_bits, the index is

     index = shift * 2^sub_bits + (v lsr shift)

   which is continuous across octave boundaries and monotone in v, so
   a cumulative scan recovers quantiles. A bucket's width is at most
   2^-sub_bits of its low edge: the advertised relative error bound. *)

type t = {
  sub_bits : int;
  sub_count : int;  (* 1 lsl sub_bits *)
  max_value : int;
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable max_seen : int;
  (* interval-window checkpoint: a copy of [counts]/[total]/[sum] taken
     at the last [interval_into], allocated lazily on the first one so
     histograms that never report windows stay half the size. The
     window max cannot be recovered by subtraction, so [record] tracks
     it directly. *)
  mutable prev_counts : int array;  (* [||] until first checkpoint *)
  mutable prev_total : int;
  mutable prev_sum : int;
  mutable win_max : int;
}

(* position of the highest set bit of v >= 1 *)
let msb v =
  let e = ref 0 in
  let v = ref v in
  while !v > 1 do
    v := !v lsr 1;
    incr e
  done;
  !e

let bucket_of t v =
  let v = if v < 0 then 0 else if v > t.max_value then t.max_value else v in
  if v < 2 * t.sub_count then v
  else
    let shift = msb v - t.sub_bits in
    (shift * t.sub_count) + (v lsr shift)

(* highest value mapping to bucket [i] *)
let bucket_hi t i =
  if i < t.sub_count then i
  else
    let shift = (i / t.sub_count) - 1 in
    let s = i - (shift * t.sub_count) in
    (((s + 1) lsl shift) - 1 : int)

let create ?(sub_bits = 5) ?(max_value = 1 lsl 40) () =
  if sub_bits < 1 || sub_bits > 15 then
    invalid_arg "Histogram.create: sub_bits must be in [1, 15]";
  if max_value < 2 then invalid_arg "Histogram.create: max_value";
  let probe =
    {
      sub_bits;
      sub_count = 1 lsl sub_bits;
      max_value;
      counts = [||];
      total = 0;
      sum = 0;
      max_seen = 0;
      prev_counts = [||];
      prev_total = 0;
      prev_sum = 0;
      win_max = 0;
    }
  in
  { probe with counts = Array.make (bucket_of probe max_value + 1) 0 }

let record t v =
  let v = if v < 0 then 0 else if v > t.max_value then t.max_value else v in
  let i = bucket_of t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v > t.max_seen then t.max_seen <- v;
  if v > t.win_max then t.win_max <- v

let count t = t.total
let max_recorded t = t.max_seen

let mean t =
  if t.total = 0 then 0. else float_of_int t.sum /. float_of_int t.total

let quantile t q =
  if not (q > 0. && q <= 1.) then
    invalid_arg "Histogram.quantile: q must be in (0, 1]";
  if t.total = 0 then 0
  else begin
    (* nearest-rank: the ceil(q * n)-th smallest recording *)
    let target =
      let r = int_of_float (Float.ceil (q *. float_of_int t.total)) in
      if r < 1 then 1 else if r > t.total then t.total else r
    in
    let cum = ref 0 in
    let i = ref 0 in
    while !cum < target do
      cum := !cum + t.counts.(!i);
      incr i
    done;
    let hi = bucket_hi t (!i - 1) in
    if hi > t.max_seen then t.max_seen else hi
  end

let rel_error_bound t = 1. /. float_of_int t.sub_count

let same_geometry a b =
  a.sub_bits = b.sub_bits && a.max_value = b.max_value

let merge_into ~dst src =
  if not (same_geometry dst src) then
    invalid_arg "Histogram.merge_into: geometry mismatch";
  for i = 0 to Array.length src.counts - 1 do
    dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum + src.sum;
  if src.max_seen > dst.max_seen then dst.max_seen <- src.max_seen

let equal a b =
  same_geometry a b && a.total = b.total && a.sum = b.sum
  && a.max_seen = b.max_seen && a.counts = b.counts

let interval_into t ~into =
  if not (same_geometry t into) then
    invalid_arg "Histogram.interval_into: geometry mismatch";
  if Array.length t.prev_counts = 0 then
    t.prev_counts <- Array.make (Array.length t.counts) 0;
  let added = ref 0 in
  for i = 0 to Array.length t.counts - 1 do
    let d = t.counts.(i) - t.prev_counts.(i) in
    into.counts.(i) <- into.counts.(i) + d;
    added := !added + d;
    t.prev_counts.(i) <- t.counts.(i)
  done;
  into.total <- into.total + (t.total - t.prev_total);
  into.sum <- into.sum + (t.sum - t.prev_sum);
  if !added > 0 && t.win_max > into.max_seen then into.max_seen <- t.win_max;
  t.prev_total <- t.total;
  t.prev_sum <- t.sum;
  t.win_max <- 0

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.sum <- 0;
  t.max_seen <- 0;
  if Array.length t.prev_counts > 0 then
    Array.fill t.prev_counts 0 (Array.length t.prev_counts) 0;
  t.prev_total <- 0;
  t.prev_sum <- 0;
  t.win_max <- 0
