(** Zero-allocation HDR-style latency histogram (log-linear buckets).

    The service records one integer latency (simulated cycles) per
    operation, millions of times per run, so {!record} must not
    allocate: a [t] is a flat int-array of bucket counts plus a few
    mutable scalars, and recording is a shift/mask index computation
    and an increment.

    Bucketing is the HdrHistogram scheme: values below
    [2 * 2^sub_bits] land in exact unit buckets; above that, each
    power-of-two octave is split into [2^sub_bits] equal linear
    sub-buckets, so every bucket's width is at most [2^-sub_bits] of
    its low edge and any recorded quantile is reproduced with bounded
    relative error ({!rel_error_bound}).

    Histograms are mergeable: per-shard recording stays lock-free and
    the reporter folds shards together with {!merge_into}, which is
    exact — merging two histograms yields bucket-for-bucket the same
    [t] as recording the union of their samples (the property test
    pins this). *)

type t

val create : ?sub_bits:int -> ?max_value:int -> unit -> t
(** [sub_bits] (default 5: 32 sub-buckets per octave, <= 3.125%
    relative error) and [max_value] (default 2^40; larger recordings
    clamp) fix the geometry. Raises [Invalid_argument] if [sub_bits]
    is outside [1, 15] or [max_value < 2]. *)

val record : t -> int -> unit
(** Record one value, clamped to [0, max_value]. Allocation-free. *)

val count : t -> int
(** Total recordings. *)

val max_recorded : t -> int
(** Largest (clamped) value recorded; 0 when empty. *)

val mean : t -> float
(** Exact mean of the (clamped) recordings — a running sum is kept
    alongside the buckets. 0 when empty. *)

val quantile : t -> float -> int
(** [quantile t q] for [0 < q <= 1]: an upper bound for the
    nearest-rank [q]-quantile, from the same bucket as the exact value
    — so it is within [rel_error_bound t] relative error above it.
    [0] when empty. Raises [Invalid_argument] on a [q] outside the
    range. *)

val rel_error_bound : t -> float
(** [2^-sub_bits]: guaranteed bound on [(quantile - exact) / exact]. *)

val bucket_of : t -> int -> int
(** Bucket index a value lands in (exposed for the property tests). *)

val merge_into : dst:t -> t -> unit
(** Add every bucket of the source into [dst]. Exact. Raises
    [Invalid_argument] if the two geometries differ. *)

val equal : t -> t -> bool
(** Same geometry, same bucket counts, same total and max. *)

val interval_into : t -> into:t -> unit
(** Interval (per-reporting-window) snapshot: add everything recorded
    into [t] {e since the previous} [interval_into t] (or since
    creation, the first time) into [into], and advance the checkpoint.
    Merging — not overwriting — so a reporter folds several recorders'
    windows into one window histogram the same way {!merge_into} folds
    cumulative ones. The window's exact maximum is carried (tracked by
    {!record}, not recovered from buckets) and merged into [into]'s max
    when the window is non-empty. Quantiles of the result are the
    window's percentiles: latency over the last reporting interval, not
    since start of run. Raises [Invalid_argument] on a geometry
    mismatch. The checkpoint costs one extra counts-array copy,
    allocated lazily on the first call. *)

val reset : t -> unit
(** Clear every recording {e and} the {!interval_into} checkpoint. *)
