(** Deterministic closed-loop load generator for one shard.

    Each tenant owns a set of flow slots. A slot runs a sequence of
    connections; each connection serves a geometric number of requests
    ({!Rio_workload.Objects.requests_per_connection}) and is then
    replaced — connection churn. A request samples an object size from
    the tenant's profile, maps it (single-page {!Shard.map_record} or
    scatter-gather {!Shard.map_sg_record} when it spans pages, capped
    at [sg_max] segments), translates every mapped page once, and
    unmaps. Closed-loop tenants issue back-to-back; open-loop tenants
    sleep an exponential think gap between requests.

    All randomness flows from one {!Rio_sim.Splittable_rng} stream per
    connection, keyed [seed / "serve" / shard / tenant / slot / serial]
    — never from shared or ambient state — and time is the shard's
    simulated clock driven through an event queue. The request
    schedule is therefore a pure function of (seed, shard id, specs):
    byte-identical at any [--jobs] (DESIGN.md §10). *)

type profile = Http | Kv

type tenant_spec = {
  profile : profile;
  think_mean : int;  (** mean think gap in cycles; [0] = closed loop *)
  conn_mean : int;  (** mean requests per connection before churn *)
}

val default_specs : tenants:int -> tenant_spec array
(** The standard mix: tenants alternate Http/Kv profiles, and each
    profile pair alternates closed-loop and open-loop (200k-cycle mean
    think). *)

type t

val create :
  shard:Shard.t ->
  specs:tenant_spec array ->
  seed:int ->
  flows_per_tenant:int ->
  sg_max:int ->
  t
(** [specs] must have exactly [Shard.tenants shard] entries; [sg_max]
    (>= 1) caps a request's scatter-gather list, truncating larger
    objects. *)

val run_until : t -> deadline:int -> stop:Rio_exec.Flag.t -> unit
(** Execute events until the shard clock reaches [deadline] (absolute
    cycles) or [stop] is raised. On normal completion the clock is
    advanced exactly to [deadline] so shards align at snapshot
    barriers; a stopped run leaves the clock wherever it was. *)

val requests : t -> int
(** Requests completed (mapped, translated, unmapped). *)

val connections : t -> int
(** Connections opened, including each slot's first. *)

val dropped : t -> int
(** Requests abandoned because the tenant's IOVA space was exhausted. *)
