(* Per-connection buffering and backpressure, deliberately free of any
   Unix dependency: the event loop feeds raw bytes in and drains raw
   bytes out, so partial-read reassembly and the in-flight window are
   unit-testable without sockets.

   Read side: [rbuf] holds [rpos, rlen); {!next} peels whole frames
   off the front (hello first, then requests) and compaction happens
   lazily when the tail runs out of space. Write side: [wbuf] holds
   [wpos, wlen); responses are encoded in place after {!reserve}.

   Backpressure contract: at most [window] requests are in flight
   (decoded but not yet answered); [wbuf] is sized to [window] maximal
   responses, so a reservation can only fail on a protocol breach, and
   {!want_read} drops the connection out of the read set while the
   window is full or the read buffer has no room — the kernel socket
   buffer, and eventually the peer, absorb the stall. *)

type t = {
  rbuf : Bytes.t;
  mutable rpos : int;
  mutable rlen : int;
  wbuf : Bytes.t;
  mutable wpos : int;
  mutable wlen : int;
  window : int;
  rsp_max : int;  (* Wire.max_response_bytes for this conn's sg_limit *)
  mutable inflight : int;
  mutable hello_done : bool;
  mutable bdf : int;
  mutable alive : bool;
  mutable requests : int;  (* frames decoded over the lifetime *)
  mutable responses : int;  (* responses completed *)
  mutable token : int;  (* loop slot; rides along in ring cells *)
}

let create ?rbuf_bytes ?wbuf_bytes ~window ~sg_limit () =
  if window < 1 then invalid_arg "Conn.create: window";
  if sg_limit < 1 then invalid_arg "Conn.create: sg_limit";
  let rdefault =
    let m = 4 * Wire.max_request_bytes ~sg_limit in
    if m > 8192 then m else 8192
  in
  let rsize = match rbuf_bytes with Some n -> n | None -> rdefault in
  let rsp_max = Wire.max_response_bytes ~sg_limit in
  let wmin = window * rsp_max in
  let wsize =
    match wbuf_bytes with
    | Some n ->
        if n < wmin then invalid_arg "Conn.create: wbuf_bytes below window";
        n
    | None -> 2 * wmin
  in
  if rsize < Wire.max_request_bytes ~sg_limit then
    invalid_arg "Conn.create: rbuf_bytes below one max frame";
  {
    rbuf = Bytes.create rsize;
    rpos = 0;
    rlen = 0;
    wbuf = Bytes.create wsize;
    wpos = 0;
    wlen = 0;
    window;
    rsp_max;
    inflight = 0;
    hello_done = false;
    bdf = 0;
    alive = true;
    requests = 0;
    responses = 0;
    token = -1;
  }

let window t = t.window
let inflight t = t.inflight
let hello_done t = t.hello_done
let bdf t = t.bdf
let alive t = t.alive
let kill t = t.alive <- false
let requests t = t.requests
let responses t = t.responses
let token t = t.token
let set_token t v = t.token <- v

(* Read side *)

let rbuf t = t.rbuf

let read_capacity t =
  if t.rpos > 0 then begin
    (* Slide the unconsumed tail down to the front; at most one
       partial frame, so the blit is small. *)
    Bytes.blit t.rbuf t.rpos t.rbuf 0 (t.rlen - t.rpos);
    t.rlen <- t.rlen - t.rpos;
    t.rpos <- 0
  end;
  Bytes.length t.rbuf - t.rlen

let read_offset t = t.rlen
let fed t n = t.rlen <- t.rlen + n

let feed t src ~pos ~len =
  let cap = read_capacity t in
  if len > cap then invalid_arg "Conn.feed: overflow";
  Bytes.blit src pos t.rbuf t.rlen len;
  t.rlen <- t.rlen + len

let next t req =
  if not t.alive then 0
  else begin
    let avail = t.rlen - t.rpos in
    if not t.hello_done then begin
      let r = Wire.decode_hello t.rbuf ~pos:t.rpos ~avail in
      if r <= 0 then begin
        if r < 0 then t.alive <- false;
        r
      end
      else begin
        t.bdf <- Wire.hello_bdf t.rbuf ~pos:t.rpos;
        t.hello_done <- true;
        t.rpos <- t.rpos + r;
        (* Fall through: a request may already be buffered. *)
        let avail = t.rlen - t.rpos in
        let r = Wire.decode_request t.rbuf ~pos:t.rpos ~avail req in
        if r > 0 then begin
          t.rpos <- t.rpos + r;
          t.inflight <- t.inflight + 1;
          t.requests <- t.requests + 1
        end
        else if r < 0 then t.alive <- false;
        r
      end
    end
    else begin
      let r = Wire.decode_request t.rbuf ~pos:t.rpos ~avail req in
      if r > 0 then begin
        t.rpos <- t.rpos + r;
        t.inflight <- t.inflight + 1;
        t.requests <- t.requests + 1
      end
      else if r < 0 then t.alive <- false;
      r
    end
  end

(* Write side *)

let wbuf t = t.wbuf
let wpos t = t.wpos
let queued t = t.wlen - t.wpos

let reserve t n =
  if Bytes.length t.wbuf - t.wlen < n && t.wpos > 0 then begin
    Bytes.blit t.wbuf t.wpos t.wbuf 0 (t.wlen - t.wpos);
    t.wlen <- t.wlen - t.wpos;
    t.wpos <- 0
  end;
  if Bytes.length t.wbuf - t.wlen < n then -1 else t.wlen

let commit t p =
  if p < t.wlen || p > Bytes.length t.wbuf then invalid_arg "Conn.commit";
  t.wlen <- p

let completed t =
  if t.inflight < 1 then invalid_arg "Conn.completed: window empty";
  t.inflight <- t.inflight - 1;
  t.responses <- t.responses + 1

let consumed t n =
  if n < 0 || n > queued t then invalid_arg "Conn.consumed";
  t.wpos <- t.wpos + n;
  if t.wpos = t.wlen then begin
    t.wpos <- 0;
    t.wlen <- 0
  end

(* Admission is the whole backpressure story: one more request may be
   decoded only if, after it, every in-flight request still has a
   maximal response reservation available. [reserve] then cannot fail
   (see the invariant in the mli), and a peer that stops draining
   responses stalls its own request stream instead of growing ours. *)
let can_admit t =
  t.alive
  && t.inflight < t.window
  && Bytes.length t.wbuf - queued t >= (t.inflight + 1) * t.rsp_max

let want_read t = can_admit t && read_capacity t > 0
let want_write t = t.alive && queued t > 0
