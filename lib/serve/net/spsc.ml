type t = {
  buf : int array;
  mask : int;
  width : int;
  head : int Atomic.t; (* consumer cursor: next cell to pop *)
  tail : int Atomic.t; (* producer cursor: next cell to fill *)
}

let create ~cap ~width =
  if cap < 1 then invalid_arg "Spsc.create: cap";
  if width < 1 then invalid_arg "Spsc.create: width";
  let cap2 = ref 1 in
  while !cap2 < cap do
    cap2 := !cap2 * 2
  done;
  {
    buf = Array.make (!cap2 * width) 0;
    mask = !cap2 - 1;
    width;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1
let width t = t.width

(* Cursors run unbounded and are masked per access; on 63-bit ints
   wraparound is out of reach. Only the producer stores [tail], only
   the consumer stores [head], so each side's read of its own cursor
   is exact and its read of the peer's is conservative (a stale value
   can only under-report available room/cells, never over-report). *)

let try_push t ~src =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    Array.blit src 0 t.buf ((tail land t.mask) * t.width) t.width;
    (* publication: lane writes above happen-before this store *)
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t ~dst =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail - head <= 0 then false
  else begin
    Array.blit t.buf ((head land t.mask) * t.width) dst 0 t.width;
    Atomic.set t.head (head + 1);
    true
  end

let length t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = length t = 0
