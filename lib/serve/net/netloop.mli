(** The socket event loop behind [riommu-serve --listen].

    Nonblocking fds behind a {!Readiness} backend (poll(2) when
    built, [Unix.select] as the portable fallback): accept new
    connections into a slot table, read into per-connection buffers,
    decode admissible requests ({!Conn.can_admit} is the backpressure
    gate), batch them by shard affinity ({!Dispatch}), flush once per
    poll iteration, and write queued responses back. Registrations
    are armed once and only interest {e changes} are re-programmed —
    no per-wakeup fd-set rebuild.

    With [domains = 1] (the default) shards execute on the loop
    thread, exactly the single-dispatcher design of DESIGN.md §14.
    With [domains = N > 1] (OCaml 5 only; silently clamped to 1 where
    domains are unavailable, and to the shard count always), N shard
    executor domains each own a contiguous slice of the shard array:
    flushes pack batch slots into fixed-width integer cells pushed
    over bounded {!Spsc} rings, executors run them against their
    shards and push response cells back, and this thread encodes
    those into the owning connection's write buffer — sockets and
    buffers never leave the IO domain. Executors wake a parked loop
    through a self-pipe. See DESIGN.md §15.

    Wall-clock time never enters the library: callers inject [now_s]
    (the binary passes [Unix.gettimeofday], which the determinism lint
    bans from lib/) and it is used only to pace progress ticks. *)

type addr = Unix_path of string | Tcp of string * int

val parse_addr : string -> (addr, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], or bare ["HOST:PORT"] (numeric
    host or ["localhost"]; empty host means 127.0.0.1). *)

val addr_to_string : addr -> string

type config = {
  addr : addr;
  batch : int;  (** dispatch batch slots per shard *)
  window : int;  (** per-connection in-flight request cap *)
  sg_limit : int;  (** max scatter-gather segments per request *)
  max_conns : int;  (** accepts beyond this are refused (closed) *)
  max_tenants : int;  (** wire tenant-id space for the dispatcher *)
  domains : int;  (** executor domains; [1] = execute on the loop *)
  backend : Readiness.backend;  (** readiness backend *)
  now_s : unit -> float;  (** injected wall clock (seconds) *)
  tick_every_s : float;  (** [on_tick] cadence; [<= 0] disables *)
}

val default_config : addr:addr -> config
(** batch 64, window 128, sg_limit 16, 64 connections, 4096 tenants,
    1 domain, {!Readiness.default_backend}, ticks disabled, clock
    stuck at 0 (supply [now_s] to enable). *)

type stats = {
  backend : string;  (** configured readiness backend name *)
  domains : int;  (** effective executor domains after clamping *)
  max_conns_effective : int;
      (** [max_conns] after the backend's fd cap (FD_SETSIZE for
          select, minus slack for the listener and wake pipes) *)
  domain_ops : int array;
      (** per-executor requests executed; [[||]] when [domains = 1] *)
  mutable accepted : int;
  mutable refused : int;  (** accepted then closed over the conn cap *)
  mutable closed : int;
  mutable requests : int;  (** request frames decoded *)
  mutable responses : int;  (** responses encoded (incl. rejects) *)
  mutable protocol_errors : int;  (** connections killed by bad frames *)
  mutable batch_flushes : int;  (** non-empty shard batch executions *)
  mutable rejected : int;  (** bad_request answers *)
  mutable bytes_in : int;
  mutable bytes_out : int;
}

val serve :
  ?stop:Rio_exec.Flag.t ->
  ?on_tick:(stats -> unit) ->
  shards:Rio_serve.Shard.t array ->
  config ->
  stats
(** Listen and serve until [stop] is raised, then flush outstanding
    batches (waiting for in-flight ring cells and joining executor
    domains first when [domains > 1]), best-effort drain each
    connection's queued responses, close everything (unlinking a
    unix-domain path), and return the final counters. [on_tick] fires
    at most every [tick_every_s] wall seconds with live counters.
    Shard histograms and tenant stats are readable after return
    exactly like after a simulated run (executor domains are joined
    before it). *)
