(** The socket event loop behind [riommu-serve --listen].

    One thread, nonblocking fds, [Unix.select]: accept new
    connections, read into per-connection buffers, decode admissible
    requests ({!Conn.can_admit} is the backpressure gate), batch them
    by shard affinity ({!Dispatch}), flush once per poll iteration,
    and write queued responses back. Shards execute on the loop
    thread — the parallelism story of this transport is batching and
    affinity, not worker threads, mirroring the single-dispatcher
    design in DESIGN.md §14.

    Wall-clock time never enters the library: callers inject [now_s]
    (the binary passes [Unix.gettimeofday], which the determinism lint
    bans from lib/) and it is used only to pace progress ticks. *)

type addr = Unix_path of string | Tcp of string * int

val parse_addr : string -> (addr, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], or bare ["HOST:PORT"] (numeric
    host or ["localhost"]; empty host means 127.0.0.1). *)

val addr_to_string : addr -> string

type config = {
  addr : addr;
  batch : int;  (** dispatch batch slots per shard *)
  window : int;  (** per-connection in-flight request cap *)
  sg_limit : int;  (** max scatter-gather segments per request *)
  max_conns : int;  (** accepts beyond this are refused (closed) *)
  max_tenants : int;  (** wire tenant-id space for the dispatcher *)
  now_s : unit -> float;  (** injected wall clock (seconds) *)
  tick_every_s : float;  (** [on_tick] cadence; [<= 0] disables *)
}

val default_config : addr:addr -> config
(** batch 64, window 128, sg_limit 16, 64 connections, 4096 tenants,
    ticks disabled, clock stuck at 0 (supply [now_s] to enable). *)

type stats = {
  mutable accepted : int;
  mutable refused : int;  (** accepted then closed over [max_conns] *)
  mutable closed : int;
  mutable requests : int;  (** request frames decoded *)
  mutable responses : int;  (** responses encoded (incl. rejects) *)
  mutable protocol_errors : int;  (** connections killed by bad frames *)
  mutable batch_flushes : int;  (** non-empty shard batch executions *)
  mutable rejected : int;  (** bad_request answers *)
  mutable bytes_in : int;
  mutable bytes_out : int;
}

val serve :
  ?stop:Rio_exec.Flag.t ->
  ?on_tick:(stats -> unit) ->
  shards:Rio_serve.Shard.t array ->
  config ->
  stats
(** Listen and serve until [stop] is raised, then flush outstanding
    batches, best-effort drain each connection's queued responses,
    close everything (unlinking a unix-domain path), and return the
    final counters. [on_tick] fires at most every [tick_every_s] wall
    seconds with live counters. The [shards] are driven on the calling
    thread; their histograms and tenant stats are readable afterwards
    exactly like after a simulated run. *)
