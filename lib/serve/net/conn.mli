(** Per-connection buffering, frame reassembly, and backpressure.

    A [t] owns one read buffer and one write buffer and no socket —
    the event loop moves bytes between the fds and these buffers, so
    the reassembly logic (partial frames, the hello handshake, the
    in-flight window) is testable without any I/O.

    {2 Backpressure contract}

    At most [window] requests may be in flight — decoded by {!next}
    but not yet {!completed} — and one more request is {e admitted}
    ({!can_admit}) only while the write buffer retains a maximal
    response reservation ({!Wire.max_response_bytes}) for every
    in-flight request plus the candidate. That invariant is preserved
    by every execute (which spends at most one reservation and retires
    one in-flight slot) and every drain, so a {!reserve} after an
    admitted decode {b cannot fail}; a [-1] from it means the caller
    bypassed {!can_admit}. While admission is closed — window full, or
    a slow peer has left too many encoded responses queued — the loop
    stops polling the fd for reads, the kernel socket buffer fills,
    and the peer's writes stall: backpressure end to end without a
    single dropped or reordered-out-of-band request. *)

type t

val create :
  ?rbuf_bytes:int -> ?wbuf_bytes:int -> window:int -> sg_limit:int -> unit -> t
(** Read buffer defaults to four maximal request frames (at least
    8 KiB); write buffer defaults to twice [window] maximal responses
    (so admission keeps a ~50% duty cycle against a slow reader) and
    must be at least [window] of them. Raises [Invalid_argument] on a
    window or buffer too small to make progress. *)

val window : t -> int
val inflight : t -> int

val hello_done : t -> bool
val bdf : t -> int
(** The device id the peer presented in its hello; [0] until then. *)

val alive : t -> bool
(** Cleared on any protocol error ({!next} returning negative) or by
    {!kill}; a dead connection decodes nothing further. *)

val kill : t -> unit

val requests : t -> int
(** Request frames decoded over the connection's lifetime. *)

val responses : t -> int
(** Responses completed ({!completed} calls). *)

val token : t -> int
(** The event loop's slot index for this connection ([-1] until
    {!set_token}). Dispatch stamps it into ring cells
    ({!Cell.q_slot}) so responses route back without the [Conn.t]
    crossing domains. *)

val set_token : t -> int -> unit

(** {1 Read side} *)

val rbuf : t -> Bytes.t

val read_capacity : t -> int
(** Free bytes at the tail of the read buffer, after compacting any
    consumed prefix. Call before reading from the fd into
    [rbuf] at {!read_offset}. *)

val read_offset : t -> int
val fed : t -> int -> unit
(** Account [n] bytes just read from the fd into the buffer at
    {!read_offset}. *)

val feed : t -> Bytes.t -> pos:int -> len:int -> unit
(** Copy bytes in (the unit-test entry point; the loop uses
    {!read_capacity}/{!read_offset}/{!fed} to read straight into the
    buffer). Raises [Invalid_argument] past {!read_capacity}. *)

val next : t -> Wire.req -> int
(** Decode the next frame off the front of the read buffer — the
    16-byte hello first on a fresh connection, then requests. Returns
    the {!Wire.decode_request} convention: [> 0] a request was decoded
    into the record (the in-flight window grew by one), [0] need more
    bytes, [< 0] protocol error (the connection is killed).
    Allocation-free. *)

(** {1 Write side} *)

val wbuf : t -> Bytes.t
val wpos : t -> int
val queued : t -> int
(** Bytes encoded but not yet handed to the fd. *)

val reserve : t -> int -> int
(** [reserve t n]: offset in {!wbuf} with [n] free bytes after it
    (compacting first if needed), or [-1] — which, within the window
    contract, indicates a caller bug, and the loop treats it as fatal
    for the connection. *)

val commit : t -> int -> unit
(** [commit t p]: the caller encoded up to offset [p]; make those
    bytes eligible for writing. *)

val completed : t -> unit
(** One in-flight request has been answered (its response encoded and
    committed); shrinks the window. *)

val consumed : t -> int -> unit
(** The fd accepted [n] queued bytes. *)

(** {1 Backpressure} *)

val can_admit : t -> bool
(** May one more request be decoded? [true] iff the connection is
    alive, the window has a free slot, and the write buffer can still
    reserve a maximal response for every in-flight request plus this
    one. The event loop gates each {!next} call on this. *)

val want_read : t -> bool
(** {!can_admit} and the read buffer has free space. *)

val want_write : t -> bool

