(* Shard-affinity dispatch: every decoded request is appended to a
   per-shard batch (structure-of-arrays, preallocated at create), and
   batches execute in shard order at flush points. A tenant is pinned
   to one shard on first sight — hash of (tenant, presenting bdf) —
   so its domain, IOVA allocator, and IOTLB working set stay on one
   manager for the connection's lifetime, exactly the affinity the
   simulated service gets from its static flow partition.

   [enqueue] and [exec_translate] are the per-request steady-state
   path and are allocation-free (lint manifest + the dispatch-translate
   bench gate): batch slots are parallel int arrays, the request
   record is caller-owned, and responses are encoded in place into the
   connection's write buffer. The colder ops (map/map_sg/unmap) pay
   small result/tuple boxes inside the manager API they call. *)

open Rio_memory
open Rio_serve

type t = {
  shards : Shard.t array;
  cap : int;  (* batch slots per shard *)
  sg_limit : int;
  rsp_max : int;
  (* tenant registry: global wire tenant -> (shard, domain slot) *)
  tenant_shard : int array;  (* -1 = unseen *)
  tenant_slot : int array;
  next_slot : int array;  (* per shard: next free domain index *)
  (* one-entry placement cache: consecutive requests overwhelmingly
     share a tenant (a client connection drives one tenant), and a
     pinned tenant's placement never changes, so a hit skips the
     registry loads entirely and can never be stale *)
  mutable last_tenant : int;  (* -1 = cold *)
  mutable last_shard : int;
  mutable last_slot : int;
  (* per-shard SoA batches, flattened [shard * cap + i] *)
  count : int array;
  b_conn : Conn.t array;
  b_op : int array;
  b_tenant : int array;  (* domain slot on the owning shard *)
  b_req_id : int array;
  b_a : int array;  (* phys (map) / iova (unmap, translate) *)
  b_b : int array;  (* bytes (map) / write flag (translate) *)
  b_nseg : int array;
  b_seg_phys : int array;  (* [ (shard * cap + i) * sg_limit + k ] *)
  b_seg_bytes : int array;
  (* exec scratch (flush runs on one thread, shard-sequential) *)
  sg_segs : (Addr.phys * int) array;
  sg_iovas : int array;
  mutable stats_cb : Conn.t -> int -> unit;  (* conn, req_id *)
  mutable executed : int;
  mutable flushes : int;
  mutable rejected : int;
  dummy : Conn.t;
}

let default_stats_cb conn req_id =
  let off = Conn.reserve conn (Wire.len_bytes + Wire.header_bytes + Wire.stats_payload_bytes) in
  if off < 0 then Conn.kill conn
  else begin
    Conn.commit conn
      (Wire.encode_stats_ok (Conn.wbuf conn) ~pos:off ~req_id ~ops:0 ~requests:0
         ~conns:0 ~errors:0 ~faults:0);
    Conn.completed conn
  end

let create ~shards ~batch ~sg_limit ?(max_tenants = 4096) () =
  let nshards = Array.length shards in
  if nshards < 1 then invalid_arg "Dispatch.create: shards";
  if batch < 1 then invalid_arg "Dispatch.create: batch";
  if sg_limit < 1 then invalid_arg "Dispatch.create: sg_limit";
  let slots = nshards * batch in
  let dummy =
    Conn.create ~rbuf_bytes:(Wire.max_request_bytes ~sg_limit:1) ~window:1
      ~sg_limit:1 ()
  in
  {
    shards;
    cap = batch;
    sg_limit;
    rsp_max = Wire.max_response_bytes ~sg_limit;
    tenant_shard = Array.make max_tenants (-1);
    tenant_slot = Array.make max_tenants 0;
    next_slot = Array.make nshards 0;
    last_tenant = -1;
    last_shard = 0;
    last_slot = 0;
    count = Array.make nshards 0;
    b_conn = Array.make slots dummy;
    b_op = Array.make slots 0;
    b_tenant = Array.make slots 0;
    b_req_id = Array.make slots 0;
    b_a = Array.make slots 0;
    b_b = Array.make slots 0;
    b_nseg = Array.make slots 0;
    b_seg_phys = Array.make (slots * sg_limit) 0;
    b_seg_bytes = Array.make (slots * sg_limit) 0;
    sg_segs = Array.make sg_limit (Addr.phys_of_int 0, 0);
    sg_iovas = Array.make sg_limit 0;
    stats_cb = default_stats_cb;
    executed = 0;
    flushes = 0;
    rejected = 0;
    dummy;
  }

let set_stats_cb t cb = t.stats_cb <- cb
let executed t = t.executed
let flushes t = t.flushes
let rejected t = t.rejected
let batch t = t.cap
let max_tenants t = Array.length t.tenant_shard

(* Fibonacci/Murmur-style mix of the affinity key, finished with an
   avalanche so the mod sees more than the key's low bits — without
   it, [mod 2^k] reduces to the XOR of the low tenant/bdf bits, and
   clients that step tenant and bdf together pin every tenant to
   shard 0. [land max_int] keeps it non-negative on 63-bit ints. *)
let shard_of t ~tenant ~bdf =
  let h = (tenant * 0x9E3779B1) lxor (bdf * 0x85EBCA77) in
  let h = (h lxor (h lsr 31)) * 0xC2B2AE3D in
  let h = h lxor (h lsr 16) in
  h land max_int mod Array.length t.shards

(* Answer a request with a payload-less error status right away (the
   tenant never reached a shard). Allocation-free. *)
let reject t conn ~op ~req_id =
  t.rejected <- t.rejected + 1;
  let off = Conn.reserve conn t.rsp_max in
  if off < 0 then Conn.kill conn
  else begin
    Conn.commit conn
      (Wire.encode_error (Conn.wbuf conn) ~pos:off ~op
         ~status:Wire.st_bad_request ~req_id);
    Conn.completed conn
  end

(* Append one decoded request to its shard's batch. [true] = handled
   (queued, answered as bad_request, or answered as stats); [false] =
   the shard's batch is full — flush and retry. Allocation-free: the
   registry and the batch are preallocated int arrays, and nothing of
   the caller's [req] outlives the call but plain ints. *)
let enqueue t conn req =
  let op = req.Wire.op in
  if op = Wire.op_stats then begin
    t.stats_cb conn req.Wire.req_id;
    true
  end
  else begin
    let tenant = req.Wire.tenant in
    if tenant >= Array.length t.tenant_shard then begin
      reject t conn ~op ~req_id:req.Wire.req_id;
      true
    end
    else begin
      let sh =
        if tenant = t.last_tenant then t.last_shard
        else begin
          let sh0 = t.tenant_shard.(tenant) in
          if sh0 >= 0 then begin
            t.last_tenant <- tenant;
            t.last_shard <- sh0;
            t.last_slot <- t.tenant_slot.(tenant);
            sh0
          end
          else begin
            let s = shard_of t ~tenant ~bdf:(Conn.bdf conn) in
            if t.next_slot.(s) >= Shard.tenants t.shards.(s) then -1
            else begin
              let sl = t.next_slot.(s) in
              t.tenant_shard.(tenant) <- s;
              t.tenant_slot.(tenant) <- sl;
              t.next_slot.(s) <- sl + 1;
              t.last_tenant <- tenant;
              t.last_shard <- s;
              t.last_slot <- sl;
              s
            end
          end
        end
      in
      if sh < 0 then begin
        reject t conn ~op ~req_id:req.Wire.req_id;
        true
      end
      else begin
        let c = t.count.(sh) in
        if c >= t.cap then false
        else begin
          let base = (sh * t.cap) + c in
          t.b_conn.(base) <- conn;
          t.b_op.(base) <- op;
          t.b_tenant.(base) <- t.last_slot;
          t.b_req_id.(base) <- req.Wire.req_id;
          if op = Wire.op_map then begin
            t.b_a.(base) <- req.Wire.phys;
            t.b_b.(base) <- req.Wire.bytes
          end
          else if op = Wire.op_map_sg then begin
            let n = req.Wire.nseg in
            t.b_nseg.(base) <- n;
            Array.blit req.Wire.seg_phys 0 t.b_seg_phys (base * t.sg_limit) n;
            Array.blit req.Wire.seg_bytes 0 t.b_seg_bytes (base * t.sg_limit) n
          end
          else begin
            t.b_a.(base) <- req.Wire.iova;
            t.b_b.(base) <- (if req.Wire.write then 1 else 0)
          end;
          t.count.(sh) <- c + 1;
          true
        end
      end
    end
  end

(* The steady-state execute: translate straight out of the batch slot
   into the connection's write buffer. Faults are the constant
   [Manager.Translation_fault] (already counted by the shard) and
   become a payload-less fault status. Allocation-free. *)
let exec_translate t sh ~conn ~tenant ~iova ~write ~req_id =
  let off = Conn.reserve conn t.rsp_max in
  if off < 0 then Conn.kill conn
  else begin
    (match Shard.translate_record sh ~tenant ~iova ~write with
    | phys ->
        Conn.commit conn
          (Wire.encode_translate_ok (Conn.wbuf conn) ~pos:off ~req_id
             ~phys:(Addr.to_int phys))
    | exception Rio_domain.Manager.Translation_fault ->
        Conn.commit conn
          (Wire.encode_error (Conn.wbuf conn) ~pos:off ~op:Wire.op_translate
             ~status:Wire.st_fault ~req_id));
    Conn.completed conn
  end

let exec_map t sh ~conn ~tenant ~phys ~bytes ~req_id =
  let off = Conn.reserve conn t.rsp_max in
  if off < 0 then Conn.kill conn
  else begin
    (match Shard.map_record sh ~tenant ~phys:(Addr.phys_of_int phys) ~bytes with
    | Ok iova ->
        Conn.commit conn
          (Wire.encode_map_ok (Conn.wbuf conn) ~pos:off ~req_id ~iova)
    | Error `Exhausted ->
        Conn.commit conn
          (Wire.encode_error (Conn.wbuf conn) ~pos:off ~op:Wire.op_map
             ~status:Wire.st_exhausted ~req_id));
    Conn.completed conn
  end

let exec_unmap t sh ~conn ~tenant ~iova ~req_id =
  let off = Conn.reserve conn t.rsp_max in
  if off < 0 then Conn.kill conn
  else begin
    (match Shard.unmap_record sh ~tenant ~iova with
    | Ok () ->
        Conn.commit conn (Wire.encode_unmap_ok (Conn.wbuf conn) ~pos:off ~req_id)
    | Error `Not_mapped ->
        Conn.commit conn
          (Wire.encode_error (Conn.wbuf conn) ~pos:off ~op:Wire.op_unmap
             ~status:Wire.st_not_mapped ~req_id));
    Conn.completed conn
  end

let exec_map_sg t sh ~conn ~tenant ~base ~n ~req_id =
  let off = Conn.reserve conn t.rsp_max in
  if off < 0 then Conn.kill conn
  else begin
    for k = 0 to n - 1 do
      t.sg_segs.(k) <-
        ( Addr.phys_of_int t.b_seg_phys.((base * t.sg_limit) + k),
          t.b_seg_bytes.((base * t.sg_limit) + k) )
    done;
    (match
       Shard.map_sg_record sh ~tenant ~segs:t.sg_segs ~n ~iovas:t.sg_iovas
     with
    | Ok _span ->
        Conn.commit conn
          (Wire.encode_map_sg_ok (Conn.wbuf conn) ~pos:off ~req_id
             ~iovas:t.sg_iovas ~n)
    | Error `Exhausted ->
        Conn.commit conn
          (Wire.encode_error (Conn.wbuf conn) ~pos:off ~op:Wire.op_map_sg
             ~status:Wire.st_exhausted ~req_id));
    Conn.completed conn
  end

let flush_shard t sh =
  let n = t.count.(sh) in
  if n > 0 then begin
    t.flushes <- t.flushes + 1;
    let s = t.shards.(sh) in
    for i = 0 to n - 1 do
      let base = (sh * t.cap) + i in
      let conn = t.b_conn.(base) in
      if Conn.alive conn then begin
        let op = t.b_op.(base) in
        let tenant = t.b_tenant.(base) in
        let req_id = t.b_req_id.(base) in
        if op = Wire.op_translate then
          exec_translate t s ~conn ~tenant ~iova:t.b_a.(base)
            ~write:(t.b_b.(base) <> 0) ~req_id
        else if op = Wire.op_map then
          exec_map t s ~conn ~tenant ~phys:t.b_a.(base) ~bytes:t.b_b.(base)
            ~req_id
        else if op = Wire.op_unmap then
          exec_unmap t s ~conn ~tenant ~iova:t.b_a.(base) ~req_id
        else exec_map_sg t s ~conn ~tenant ~base ~n:t.b_nseg.(base) ~req_id;
        t.executed <- t.executed + 1
      end;
      t.b_conn.(base) <- t.dummy
    done;
    t.count.(sh) <- 0
  end

let flush_all t =
  for sh = 0 to Array.length t.shards - 1 do
    flush_shard t sh
  done

let pending t =
  let n = ref 0 in
  Array.iter (fun c -> n := !n + c) t.count;
  !n

(* Multi-domain flush: instead of executing, pack each batch slot into
   the caller's request-cell scratch and hand it to [emit], which
   pushes it onto the owning executor's ring. Slots whose connection
   died while batched are dropped here, exactly like flush_shard — they
   never become in-flight cells. *)
let flush_cells t ~cell ~emit =
  for sh = 0 to Array.length t.shards - 1 do
    let n = t.count.(sh) in
    if n > 0 then begin
      t.flushes <- t.flushes + 1;
      for i = 0 to n - 1 do
        let base = (sh * t.cap) + i in
        let conn = t.b_conn.(base) in
        if Conn.alive conn then begin
          let op = t.b_op.(base) in
          cell.(Cell.q_slot) <- Conn.token conn;
          cell.(Cell.q_shard) <- sh;
          cell.(Cell.q_op) <- op;
          cell.(Cell.q_tenant) <- t.b_tenant.(base);
          cell.(Cell.q_req_id) <- t.b_req_id.(base);
          cell.(Cell.q_a) <- t.b_a.(base);
          cell.(Cell.q_b) <- t.b_b.(base);
          let nseg = if op = Wire.op_map_sg then t.b_nseg.(base) else 0 in
          cell.(Cell.q_nseg) <- nseg;
          if nseg > 0 then begin
            Array.blit t.b_seg_phys (base * t.sg_limit) cell Cell.q_segs nseg;
            Array.blit t.b_seg_bytes (base * t.sg_limit) cell
              (Cell.q_segs + t.sg_limit) nseg
          end;
          emit ~shard:sh
        end;
        t.b_conn.(base) <- t.dummy
      done;
      t.count.(sh) <- 0
    end
  done

(* Encode one executor response cell into its connection's write
   buffer — the IO-domain tail of the multi-domain execute, counted in
   [executed] so the loop's response accounting is mode-agnostic.
   Allocation-free: the map_sg iova lanes blit through the dispatcher's
   scratch rather than slicing the cell. *)
let complete t conn ~cell =
  let off = Conn.reserve conn t.rsp_max in
  if off < 0 then Conn.kill conn
  else begin
    let op = cell.(Cell.r_op) in
    let status = cell.(Cell.r_status) in
    let req_id = cell.(Cell.r_req_id) in
    (if status <> Wire.st_ok then
       Conn.commit conn
         (Wire.encode_error (Conn.wbuf conn) ~pos:off ~op ~status ~req_id)
     else if op = Wire.op_translate then
       Conn.commit conn
         (Wire.encode_translate_ok (Conn.wbuf conn) ~pos:off ~req_id
            ~phys:cell.(Cell.r_value))
     else if op = Wire.op_map then
       Conn.commit conn
         (Wire.encode_map_ok (Conn.wbuf conn) ~pos:off ~req_id
            ~iova:cell.(Cell.r_value))
     else if op = Wire.op_unmap then
       Conn.commit conn (Wire.encode_unmap_ok (Conn.wbuf conn) ~pos:off ~req_id)
     else begin
       let n = cell.(Cell.r_nseg) in
       Array.blit cell Cell.r_iovas t.sg_iovas 0 n;
       Conn.commit conn
         (Wire.encode_map_sg_ok (Conn.wbuf conn) ~pos:off ~req_id
            ~iovas:t.sg_iovas ~n)
     end);
    Conn.completed conn;
    t.executed <- t.executed + 1
  end
