(** A shard executor: the consumer end of one request {!Spsc} ring and
    the producer end of one response ring, run on its own domain by
    the multi-domain socket loop ({!Netloop} with [domains > 1]).

    Each executor owns a contiguous slice of the shard array — the IO
    domain routes a request cell to the executor owning its shard, so
    every shard (and its domain manager, IOVA allocator, IOTLB) is
    only ever touched by one executor domain. Request cells carry the
    global shard index ({!Cell.q_shard}); the slice bounds are a
    routing contract of the loop, not enforced here.

    {!step} is the synchronous core (drain what is currently queued,
    execute, push response cells) and is what unit tests drive on a
    single thread; {!run} wraps it in the domain loop — spin briefly
    ([Domains.relax]), then nap, and exit once {!request_stop} has
    been called and the request ring is empty. After pushing
    responses, {!run} writes one byte to [wake_fd] so a poll-parked
    IO domain wakes to drain them.

    The execute path allocates nothing on translate (lint-gated, like
    the inline dispatch path): cells are int lanes, scratch is
    preallocated, and shard counters are plain ints. *)

type t

val create :
  shards:Rio_serve.Shard.t array ->
  sg_limit:int ->
  ring_cap:int ->
  wake_fd:Unix.file_descr ->
  t
(** [shards] is the {e global} shard array (cells index into it);
    [ring_cap] sizes both rings (rounded up to a power of two);
    [wake_fd] is the write end of the loop's wake pipe (nonblocking —
    a full pipe already means a wakeup is pending). *)

val request_ring : t -> Spsc.t
(** Producer side belongs to the IO domain. *)

val response_ring : t -> Spsc.t
(** Consumer side belongs to the IO domain. *)

val step : t -> int
(** Execute every request cell currently queued, pushing one response
    cell per request (spinning if the response ring is momentarily
    full — the IO domain drains it every wakeup). Returns the number
    executed. Single-threaded core; callable without a domain. *)

val run : t -> unit
(** The domain body: {!step} until {!request_stop} and an empty
    request ring. *)

val request_stop : t -> unit
(** Ask {!run} to exit after draining. Safe from any domain. *)

val executed : t -> int
(** Requests executed over the executor's lifetime. Exact after the
    domain is joined; a stale-but-safe read while it runs. *)
