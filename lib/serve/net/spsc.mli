(** Bounded single-producer / single-consumer ring of fixed-width
    integer cells, for cross-domain hand-off between the IO domain and
    a shard executor domain.

    Classic Lamport queue: a flat [int array] of [capacity * width]
    lanes plus two [Atomic.t] cursors — [tail] advanced only by the
    producer, [head] only by the consumer. A cell's lanes are plain
    writes; the cursor store after them is the publication point (OCaml
    [Atomic] is sequentially consistent, which subsumes the
    release/acquire pairing this protocol needs — see DESIGN.md §15).

    {!try_push} / {!try_pop} blit cells through caller-owned scratch
    arrays and are allocation-free: the hand-off itself never touches
    the GC, so a full request/response round trip between domains
    allocates nothing. *)

type t

val create : cap:int -> width:int -> t
(** Ring of at least [cap] cells (rounded up to a power of two) of
    [width] ints each. *)

val capacity : t -> int
val width : t -> int

val try_push : t -> src:int array -> bool
(** Copy [width t] ints from [src] into the ring. [false] when full.
    Producer-side only. Allocation-free. *)

val try_pop : t -> dst:int array -> bool
(** Copy the oldest cell into [dst]. [false] when empty.
    Consumer-side only. Allocation-free. *)

val length : t -> int
(** Cells currently queued. Exact from either endpoint's own side;
    a safe point-in-time reading from anywhere else. *)

val is_empty : t -> bool
