(* Lane offsets for ring cells; see the mli for the layout story. *)

let q_slot = 0
let q_shard = 1
let q_op = 2
let q_tenant = 3
let q_req_id = 4
let q_a = 5
let q_b = 6
let q_nseg = 7
let q_segs = 8
let req_width ~sg_limit = q_segs + (2 * sg_limit)
let r_slot = 0
let r_op = 1
let r_status = 2
let r_req_id = 3
let r_value = 4
let r_nseg = 5
let r_iovas = 6
let rsp_width ~sg_limit = r_iovas + sg_limit
