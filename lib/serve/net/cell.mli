(** Lane layout of the fixed-width integer cells carried by the
    {!Spsc} rings between the IO domain and shard executors.

    A {e request cell} is a flattened dispatch-batch slot plus routing
    (connection slot, shard index); a {e response cell} is everything
    {!Dispatch.complete} needs to encode the wire response into the
    owning connection's write buffer. Both are plain [int] lanes so
    the cross-domain hand-off moves no OCaml blocks — scatter-gather
    segments ride in [sg_limit]-sized lane groups sized at ring
    creation. *)

val req_width : sg_limit:int -> int
val rsp_width : sg_limit:int -> int

(** {1 Request lanes} *)

val q_slot : int
(** Connection slot (the loop's token for the conn). *)

val q_shard : int
(** Global shard index; the executor indexes its shard array with
    this. *)

val q_op : int
val q_tenant : int
(** Domain slot on the owning shard (already resolved by dispatch). *)

val q_req_id : int
val q_a : int
(** phys (map) / iova (unmap, translate). *)

val q_b : int
(** bytes (map) / write flag (translate). *)

val q_nseg : int
val q_segs : int
(** First of [2 * sg_limit] segment lanes: phys in
    [q_segs .. q_segs + sg_limit), bytes in the next [sg_limit]. *)

(** {1 Response lanes} *)

val r_slot : int
val r_op : int
val r_status : int
(** A [Wire.st_*] code; payload lanes are meaningful only under
    [st_ok]. *)

val r_req_id : int
val r_value : int
(** phys (translate ok) / iova (map ok). *)

val r_nseg : int
val r_iovas : int
(** First of [sg_limit] iova lanes (map_sg ok). *)
