(** The poll(2) side of the {!Readiness} split, behind a dune
    [(select)]: [readiness_poll.avail.ml] when the [rio_poll] stubs
    library resolves, [readiness_poll.none.ml] (every call raises,
    [available = false]) otherwise. {!Readiness} consults
    {!available} and falls back to its portable [Unix.select] backend,
    so callers never see the split.

    Registrations return stable integer handles (an internal dense
    pollfd array is swap-compacted on {!unregister}; handles indirect
    through it), and each carries a caller [token] handed back by
    {!iter_ready} — the loop's connection-slot index, so readiness
    results never need an fd-keyed lookup. {!wait} and {!iter_ready}
    are allocation-free. *)

val available : bool

type t

val create : unit -> t

val register : t -> Unix.file_descr -> token:int -> int
(** Watch a new fd (no interest yet; arm with {!interest}). Returns
    the registration handle. *)

val unregister : t -> handle:int -> unit
(** Stop watching. The handle is recycled; the caller must drop it. *)

val interest : t -> handle:int -> read:bool -> write:bool -> unit

val registered : t -> int
(** Live registrations. *)

val wait : t -> timeout_ms:int -> int
(** One poll(2) call over every registration; returns the ready
    count. [EINTR] reads as [0]. Allocation-free. *)

val iter_ready : t -> (int -> int -> unit) -> unit
(** [iter_ready t f] calls [f token bits] for each registration with
    nonzero ready bits from the last {!wait} — bit 1 readable, bit 2
    writable, bit 4 error/hangup. Allocation-free apart from the
    caller's [f]. *)
