(* The socket event loop: accept, read, decode, dispatch, flush,
   write — one thread, nonblocking fds, [Unix.select]. The loop is
   intentionally boring: all protocol state lives in {!Conn}, all
   service state in {!Dispatch}/{!Shard}; what remains here is fd
   bookkeeping and the flush cadence (once per poll iteration, plus
   forced flushes when a shard's batch fills mid-read).

   Wall-clock time is injected ([config.now_s]): the determinism lint
   bans Unix.gettimeofday from lib/, and keeping the clock a caller
   concern means everything here stays mockable. The loop itself never
   needs absolute time — only the progress-tick cadence does. *)

type addr = Unix_path of string | Tcp of string * int

let parse_addr s =
  let prefix p = String.length s > String.length p
                 && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefix "unix:" then Ok (Unix_path (after "unix:"))
  else begin
    let hp = if prefix "tcp:" then after "tcp:" else s in
    match String.rindex_opt hp ':' with
    | None -> Error (Printf.sprintf "bad address %S: want unix:PATH or HOST:PORT" s)
    | Some i -> (
        let host = String.sub hp 0 i in
        let port = String.sub hp (i + 1) (String.length hp - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 ->
            Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Error (Printf.sprintf "bad port in address %S" s))
  end

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

type config = {
  addr : addr;
  batch : int;
  window : int;
  sg_limit : int;
  max_conns : int;
  max_tenants : int;
  now_s : unit -> float;
  tick_every_s : float;
}

let default_config ~addr =
  {
    addr;
    batch = 64;
    window = 128;
    sg_limit = 16;
    max_conns = 64;
    max_tenants = 4096;
    now_s = (fun () -> 0.);
    tick_every_s = 0.;
  }

type stats = {
  mutable accepted : int;
  mutable refused : int;
  mutable closed : int;
  mutable requests : int;
  mutable responses : int;
  mutable protocol_errors : int;
  mutable batch_flushes : int;
  mutable rejected : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
}

let inet_addr_of host =
  if host = "localhost" then Unix.inet_addr_loopback
  else Unix.inet_addr_of_string host

let listen_on = function
  | Unix_path p ->
      (try Unix.unlink p with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX p);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet_addr_of host, port));
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      fd

let close_listener cfg fd =
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match cfg.addr with
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

let serve ?stop ?(on_tick = fun (_ : stats) -> ()) ~shards cfg =
  let stats =
    {
      accepted = 0;
      refused = 0;
      closed = 0;
      requests = 0;
      responses = 0;
      protocol_errors = 0;
      batch_flushes = 0;
      rejected = 0;
      bytes_in = 0;
      bytes_out = 0;
    }
  in
  let d =
    Dispatch.create ~shards ~batch:cfg.batch ~sg_limit:cfg.sg_limit
      ~max_tenants:cfg.max_tenants ()
  in
  let rsp_max = Wire.max_response_bytes ~sg_limit:cfg.sg_limit in
  (* stats requests are answered here, outside the dispatcher's
     executed/rejected counters, so they need their own tally for the
     responses total to balance the requests total *)
  let stats_answered = ref 0 in
  Dispatch.set_stats_cb d (fun conn req_id ->
      let off = Conn.reserve conn rsp_max in
      if off < 0 then Conn.kill conn
      else begin
        incr stats_answered;
        let ops = Array.fold_left (fun a s -> a + Rio_serve.Shard.total_ops s) 0 shards in
        let faults = Array.fold_left (fun a s -> a + Rio_serve.Shard.faults s) 0 shards in
        Conn.commit conn
          (Wire.encode_stats_ok (Conn.wbuf conn) ~pos:off ~req_id ~ops
             ~requests:stats.requests ~conns:stats.accepted
             ~errors:stats.protocol_errors ~faults);
        Conn.completed conn
      end);
  let lfd = listen_on cfg.addr in
  let conns : (Unix.file_descr * Conn.t) list ref = ref [] in
  let req = Wire.create_req ~sg_limit:cfg.sg_limit in
  let stopped () = match stop with Some f -> Rio_exec.Flag.get f | None -> false in
  let accept_all () =
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true lfd with
      | fd, _ ->
          if List.length !conns >= cfg.max_conns then begin
            (try Unix.close fd with Unix.Unix_error _ -> ());
            stats.refused <- stats.refused + 1
          end
          else begin
            Unix.set_nonblock fd;
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            conns :=
              (fd, Conn.create ~window:cfg.window ~sg_limit:cfg.sg_limit ())
              :: !conns;
            stats.accepted <- stats.accepted + 1
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  (* Decode everything admissible out of a connection's read buffer.
     A [false] from enqueue means the target shard's batch is full:
     flush everything (amortized work is the point of the batch) and
     retry — the retry cannot fail on a fresh batch. *)
  let drain_decoded conn =
    let continue = ref true in
    while !continue && Conn.can_admit conn do
      let r = Conn.next conn req in
      if r > 0 then begin
        stats.requests <- stats.requests + 1;
        if not (Dispatch.enqueue d conn req) then begin
          Dispatch.flush_all d;
          ignore (Dispatch.enqueue d conn req : bool)
        end
      end
      else begin
        if r < 0 then stats.protocol_errors <- stats.protocol_errors + 1;
        continue := false
      end
    done
  in
  let handle_read fd conn =
    let cap = Conn.read_capacity conn in
    if cap > 0 then begin
      match Unix.read fd (Conn.rbuf conn) (Conn.read_offset conn) cap with
      | 0 -> Conn.kill conn
      | n ->
          stats.bytes_in <- stats.bytes_in + n;
          Conn.fed conn n;
          drain_decoded conn
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          Conn.kill conn
    end
  in
  let handle_write fd conn =
    let q = Conn.queued conn in
    if q > 0 then begin
      match Unix.single_write fd (Conn.wbuf conn) (Conn.wpos conn) q with
      | n ->
          stats.bytes_out <- stats.bytes_out + n;
          Conn.consumed conn n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          Conn.kill conn
    end
  in
  let reap () =
    let live, dead = List.partition (fun (_, c) -> Conn.alive c) !conns in
    List.iter
      (fun (fd, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        stats.closed <- stats.closed + 1)
      dead;
    conns := live
  in
  let last_tick = ref (cfg.now_s ()) in
  while not (stopped ()) do
    let rds =
      lfd :: List.filter_map (fun (fd, c) -> if Conn.want_read c then Some fd else None) !conns
    in
    let wrs =
      List.filter_map (fun (fd, c) -> if Conn.want_write c then Some fd else None) !conns
    in
    (match Unix.select rds wrs [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        if List.memq lfd readable then accept_all ();
        List.iter
          (fun (fd, c) -> if List.memq fd readable then handle_read fd c)
          !conns;
        (* One flush per wakeup: everything decoded this iteration
           executes in shard-ordered batches. *)
        Dispatch.flush_all d;
        (* Opportunistic writes for freshly encoded responses, then
           the select-confirmed writables (some overlap is fine — a
           second write on a drained buffer is a no-op). *)
        List.iter (fun (fd, c) -> if Conn.want_write c then handle_write fd c) !conns;
        List.iter
          (fun (fd, c) -> if List.memq fd writable && Conn.queued c > 0 then handle_write fd c)
          !conns);
    reap ();
    if cfg.tick_every_s > 0. then begin
      let now = cfg.now_s () in
      if now -. !last_tick >= cfg.tick_every_s then begin
        last_tick := now;
        stats.responses <- Dispatch.executed d + Dispatch.rejected d + !stats_answered;
        stats.batch_flushes <- Dispatch.flushes d;
        stats.rejected <- Dispatch.rejected d;
        on_tick stats
      end
    end
  done;
  (* Graceful shutdown: execute what is batched, best-effort drain
     each connection's queued responses, then close everything. *)
  Dispatch.flush_all d;
  List.iter
    (fun (fd, c) ->
      let tries = ref 8 in
      while Conn.queued c > 0 && !tries > 0 && Conn.alive c do
        decr tries;
        (match Unix.select [] [ fd ] [] 0.05 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | _, w, _ -> if List.memq fd w then handle_write fd c else ())
      done;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      stats.closed <- stats.closed + 1)
    !conns;
  conns := [];
  close_listener cfg lfd;
  stats.responses <- Dispatch.executed d + Dispatch.rejected d + !stats_answered;
  stats.batch_flushes <- Dispatch.flushes d;
  stats.rejected <- Dispatch.rejected d;
  stats
