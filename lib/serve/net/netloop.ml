(* The socket event loop: accept, read, decode, dispatch, flush,
   write. All protocol state lives in {!Conn}, all service state in
   {!Dispatch}/{!Shard}; what remains here is fd bookkeeping, the
   flush cadence, and (with [domains > 1]) the traffic between the IO
   domain and the shard executors.

   Readiness comes from {!Readiness} (poll(2) when built, else
   Unix.select): fds register once into a slot table and only
   interest *changes* are re-armed, replacing PR 8's per-wakeup fd
   list rebuild. Connections live in parallel arrays indexed by a
   slot (the readiness token and the {!Cell.q_slot} lane), with a
   free-slot stack; a slot is recycled only when its connection is
   dead AND no ring cell still references it.

   With [domains = 1] the decoded batches execute inline on this
   thread, exactly the PR 8 behavior. With [domains = N > 1], N
   executor domains each own a contiguous slice of the shard array;
   flushes pack batch slots into request cells pushed onto the owning
   executor's SPSC ring, and response cells drain back here to be
   encoded into the owning connection's write buffer. Executors wake
   a poll-parked loop through a self-pipe.

   Wall-clock time is injected ([config.now_s]): the determinism lint
   bans Unix.gettimeofday from lib/, and keeping the clock a caller
   concern means everything here stays mockable. *)

type addr = Unix_path of string | Tcp of string * int

let parse_addr s =
  let prefix p = String.length s > String.length p
                 && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefix "unix:" then Ok (Unix_path (after "unix:"))
  else begin
    let hp = if prefix "tcp:" then after "tcp:" else s in
    match String.rindex_opt hp ':' with
    | None -> Error (Printf.sprintf "bad address %S: want unix:PATH or HOST:PORT" s)
    | Some i -> (
        let host = String.sub hp 0 i in
        let port = String.sub hp (i + 1) (String.length hp - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 ->
            Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Error (Printf.sprintf "bad port in address %S" s))
  end

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

type config = {
  addr : addr;
  batch : int;
  window : int;
  sg_limit : int;
  max_conns : int;
  max_tenants : int;
  domains : int;
  backend : Readiness.backend;
  now_s : unit -> float;
  tick_every_s : float;
}

let default_config ~addr =
  {
    addr;
    batch = 64;
    window = 128;
    sg_limit = 16;
    max_conns = 64;
    max_tenants = 4096;
    domains = 1;
    backend = Readiness.default_backend;
    now_s = (fun () -> 0.);
    tick_every_s = 0.;
  }

type stats = {
  backend : string;
  domains : int;
  max_conns_effective : int;
  domain_ops : int array;
  mutable accepted : int;
  mutable refused : int;
  mutable closed : int;
  mutable requests : int;
  mutable responses : int;
  mutable protocol_errors : int;
  mutable batch_flushes : int;
  mutable rejected : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
}

let inet_addr_of host =
  if host = "localhost" then Unix.inet_addr_loopback
  else Unix.inet_addr_of_string host

let listen_on = function
  | Unix_path p ->
      (try Unix.unlink p with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX p);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet_addr_of host, port));
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      fd

let close_listener cfg fd =
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match cfg.addr with
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

(* Readiness tokens: conn slots are >= 0, the listener and the
   executor wake pipes get negative tokens. *)
let tok_listener = -1
let tok_pipe e = -2 - e
let pipe_of_tok tok = -2 - tok

let effective_domains ~domains ~nshards =
  let d = if domains < 1 then 1 else domains in
  let d = if d > nshards then nshards else d in
  if d > 1 && not Rio_exec.Domains.available then 1 else d

(* Select is bounded by FD_SETSIZE *values*, not counts: leave slack
   for the listener, wake pipes, and stdio so every accepted fd stays
   representable in an fd_set. *)
let effective_max_conns ~backend ~max_conns ~nexec =
  let cap = Readiness.max_fds backend in
  let cap = if cap = max_int then cap else cap - 16 - (2 * nexec) in
  let m = if max_conns < cap then max_conns else cap in
  if m < 1 then 1 else m

let serve ?stop ?(on_tick = fun (_ : stats) -> ()) ~shards (cfg : config) =
  let nshards = Array.length shards in
  let domains_eff = effective_domains ~domains:cfg.domains ~nshards in
  let nexec = if domains_eff > 1 then domains_eff else 0 in
  let cap =
    effective_max_conns ~backend:cfg.backend ~max_conns:cfg.max_conns ~nexec
  in
  let stats =
    {
      backend = Readiness.backend_name cfg.backend;
      domains = domains_eff;
      max_conns_effective = cap;
      domain_ops = Array.make nexec 0;
      accepted = 0;
      refused = 0;
      closed = 0;
      requests = 0;
      responses = 0;
      protocol_errors = 0;
      batch_flushes = 0;
      rejected = 0;
      bytes_in = 0;
      bytes_out = 0;
    }
  in
  let d =
    Dispatch.create ~shards ~batch:cfg.batch ~sg_limit:cfg.sg_limit
      ~max_tenants:cfg.max_tenants ()
  in
  let rsp_max = Wire.max_response_bytes ~sg_limit:cfg.sg_limit in
  (* stats requests are answered here, outside the dispatcher's
     executed/rejected counters, so they need their own tally for the
     responses total to balance the requests total. With executors
     running, the shard counters read here are single-writer plain
     ints mutated on another domain: a stale value, never a torn one
     (DESIGN.md §15). *)
  let stats_answered = ref 0 in
  Dispatch.set_stats_cb d (fun conn req_id ->
      let off = Conn.reserve conn rsp_max in
      if off < 0 then Conn.kill conn
      else begin
        incr stats_answered;
        let ops = Array.fold_left (fun a s -> a + Rio_serve.Shard.total_ops s) 0 shards in
        let faults = Array.fold_left (fun a s -> a + Rio_serve.Shard.faults s) 0 shards in
        Conn.commit conn
          (Wire.encode_stats_ok (Conn.wbuf conn) ~pos:off ~req_id ~ops
             ~requests:stats.requests ~conns:stats.accepted
             ~errors:stats.protocol_errors ~faults);
        Conn.completed conn
      end);
  let lfd = listen_on cfg.addr in
  let r = Readiness.create cfg.backend in
  let _lhandle = Readiness.register r lfd ~token:tok_listener in
  Readiness.interest r ~handle:_lhandle ~read:true ~write:false;
  (* connection slot table *)
  let dummy =
    Conn.create ~rbuf_bytes:(Wire.max_request_bytes ~sg_limit:1) ~window:1
      ~sg_limit:1 ()
  in
  Conn.kill dummy;
  let c_conn = Array.make cap dummy in
  let c_fd = Array.make cap Unix.stdin in
  let c_handle = Array.make cap (-1) in
  let c_active = Array.make cap false in
  let c_interest = Array.make cap 0 in
  let c_outstanding = Array.make cap 0 in
  let free = Array.init cap (fun i -> cap - 1 - i) in
  let free_top = ref cap in
  (* executor topology: executor e owns the contiguous shard slice
     { sh | sh * nexec / nshards = e } *)
  let exec_of_shard = Array.init nshards (fun sh -> sh * nexec / nshards) in
  let ring_cap =
    let want = cap * cfg.window in
    let want = if want < 1024 then 1024 else want in
    if want > 8192 then 8192 else want
  in
  let pipes = Array.init nexec (fun _ ->
      let rfd, wfd = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock rfd;
      Unix.set_nonblock wfd;
      (rfd, wfd))
  in
  let executors =
    Array.init nexec (fun e ->
        Executor.create ~shards ~sg_limit:cfg.sg_limit ~ring_cap
          ~wake_fd:(snd pipes.(e)))
  in
  Array.iteri
    (fun e (rfd, _) ->
      let h = Readiness.register r rfd ~token:(tok_pipe e) in
      Readiness.interest r ~handle:h ~read:true ~write:false)
    pipes;
  let handles =
    Array.map (fun ex -> Rio_exec.Domains.spawn (fun () -> Executor.run ex))
      executors
  in
  let req = Wire.create_req ~sg_limit:cfg.sg_limit in
  let req_cell = Array.make (Cell.req_width ~sg_limit:cfg.sg_limit) 0 in
  let rsp_cell = Array.make (Cell.rsp_width ~sg_limit:cfg.sg_limit) 0 in
  let pipe_buf = Bytes.create 64 in
  let stopped () = match stop with Some f -> Rio_exec.Flag.get f | None -> false in
  (* ---- multi-domain plumbing ---- *)
  let drain_rsp_rings () =
    for e = 0 to nexec - 1 do
      let ring = Executor.response_ring executors.(e) in
      while Spsc.try_pop ring ~dst:rsp_cell do
        let slot = rsp_cell.(Cell.r_slot) in
        c_outstanding.(slot) <- c_outstanding.(slot) - 1;
        let c = c_conn.(slot) in
        (* a dead conn keeps its slot until outstanding hits 0, so
           this response still resolves to the right connection — we
           just drop the encode *)
        if Conn.alive c then Dispatch.complete d c ~cell:rsp_cell
      done
    done
  in
  (* [emit] must not fail (flush_cells contract): a full request ring
     means the executor is behind, so drain responses (unblocking it
     if it is parked on a full response ring) and retry. *)
  let emit ~shard =
    let ring = Executor.request_ring executors.(exec_of_shard.(shard)) in
    let slot = req_cell.(Cell.q_slot) in
    while not (Spsc.try_push ring ~src:req_cell) do
      drain_rsp_rings ();
      Rio_exec.Domains.relax ()
    done;
    c_outstanding.(slot) <- c_outstanding.(slot) + 1
  in
  let flush () =
    if nexec = 0 then Dispatch.flush_all d
    else Dispatch.flush_cells d ~cell:req_cell ~emit
  in
  let drain_pipe fd =
    let continue = ref true in
    while !continue do
      match Unix.read fd pipe_buf 0 (Bytes.length pipe_buf) with
      | 0 -> continue := false
      | _ -> ()
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> continue := false
    done
  in
  (* ---- per-connection handlers ---- *)
  let accept_all () =
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true lfd with
      | fd, _ ->
          if !free_top = 0 then begin
            (try Unix.close fd with Unix.Unix_error _ -> ());
            stats.refused <- stats.refused + 1
          end
          else begin
            Unix.set_nonblock fd;
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            decr free_top;
            let slot = free.(!free_top) in
            let c = Conn.create ~window:cfg.window ~sg_limit:cfg.sg_limit () in
            Conn.set_token c slot;
            c_conn.(slot) <- c;
            c_fd.(slot) <- fd;
            c_active.(slot) <- true;
            c_outstanding.(slot) <- 0;
            c_handle.(slot) <- Readiness.register r fd ~token:slot;
            Readiness.interest r ~handle:c_handle.(slot) ~read:true
              ~write:false;
            c_interest.(slot) <- Readiness.ev_read;
            stats.accepted <- stats.accepted + 1
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  (* Decode everything admissible out of a connection's read buffer.
     A [false] from enqueue means the target shard's batch is full:
     flush everything (amortized work is the point of the batch) and
     retry — the retry cannot fail on a fresh batch. *)
  let drain_decoded conn =
    let continue = ref true in
    while !continue && Conn.can_admit conn do
      let rr = Conn.next conn req in
      if rr > 0 then begin
        stats.requests <- stats.requests + 1;
        if not (Dispatch.enqueue d conn req) then begin
          flush ();
          ignore (Dispatch.enqueue d conn req : bool)
        end
      end
      else begin
        if rr < 0 then stats.protocol_errors <- stats.protocol_errors + 1;
        continue := false
      end
    done
  in
  let handle_read slot =
    let conn = c_conn.(slot) in
    let cap = Conn.read_capacity conn in
    if cap > 0 then begin
      match
        Unix.read c_fd.(slot) (Conn.rbuf conn) (Conn.read_offset conn) cap
      with
      | 0 -> Conn.kill conn
      | n ->
          stats.bytes_in <- stats.bytes_in + n;
          Conn.fed conn n;
          drain_decoded conn
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          Conn.kill conn
    end
  in
  let handle_write slot =
    let conn = c_conn.(slot) in
    let q = Conn.queued conn in
    if q > 0 then begin
      match Unix.single_write c_fd.(slot) (Conn.wbuf conn) (Conn.wpos conn) q with
      | n ->
          stats.bytes_out <- stats.bytes_out + n;
          Conn.consumed conn n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          Conn.kill conn
    end
  in
  (* Readiness callback (allocated once): reads are handled as they
     surface; writes wait for the post-flush pass so freshly encoded
     responses ride the same write call. *)
  let on_ready token bits =
    if token >= 0 then begin
      if bits land Readiness.ev_read <> 0 then handle_read token
      else if bits land Readiness.ev_err <> 0 then
        (* hangup/error with nothing readable: the peer is gone and
           queued responses are undeliverable *)
        Conn.kill c_conn.(token)
    end
    else if token = tok_listener then accept_all ()
    else drain_pipe (fst pipes.(pipe_of_tok token))
  in
  let reap () =
    for slot = 0 to cap - 1 do
      if
        c_active.(slot)
        && (not (Conn.alive c_conn.(slot)))
        && c_outstanding.(slot) = 0
      then begin
        Readiness.unregister r ~handle:c_handle.(slot);
        (try Unix.close c_fd.(slot) with Unix.Unix_error _ -> ());
        c_active.(slot) <- false;
        c_conn.(slot) <- dummy;
        c_handle.(slot) <- -1;
        free.(!free_top) <- slot;
        incr free_top;
        stats.closed <- stats.closed + 1
      end
    done
  in
  let arm_interest () =
    for slot = 0 to cap - 1 do
      if c_active.(slot) then begin
        let c = c_conn.(slot) in
        let bits =
          (if Conn.want_read c then Readiness.ev_read else 0)
          lor if Conn.want_write c then Readiness.ev_write else 0
        in
        if bits <> c_interest.(slot) then begin
          c_interest.(slot) <- bits;
          Readiness.interest r ~handle:c_handle.(slot)
            ~read:(bits land Readiness.ev_read <> 0)
            ~write:(bits land Readiness.ev_write <> 0)
        end
      end
    done
  in
  let refresh_domain_ops () =
    for e = 0 to nexec - 1 do
      stats.domain_ops.(e) <- Executor.executed executors.(e)
    done
  in
  let last_tick = ref (cfg.now_s ()) in
  while not (stopped ()) do
    ignore (Readiness.wait r ~timeout_ms:50 : int);
    Readiness.iter_ready r on_ready;
    (* One flush per wakeup: everything decoded this iteration
       executes (inline, or via the rings) in shard-ordered batches. *)
    flush ();
    if nexec > 0 then drain_rsp_rings ();
    (* Opportunistic writes for freshly encoded responses; a write on
       a momentarily full socket just re-arms write interest. *)
    for slot = 0 to cap - 1 do
      if c_active.(slot) && Conn.want_write c_conn.(slot) then
        handle_write slot
    done;
    reap ();
    arm_interest ();
    if cfg.tick_every_s > 0. then begin
      let now = cfg.now_s () in
      if now -. !last_tick >= cfg.tick_every_s then begin
        last_tick := now;
        stats.responses <- Dispatch.executed d + Dispatch.rejected d + !stats_answered;
        stats.batch_flushes <- Dispatch.flushes d;
        stats.rejected <- Dispatch.rejected d;
        refresh_domain_ops ();
        on_tick stats
      end
    end
  done;
  (* Graceful shutdown: execute what is batched; with executors, wait
     for every in-flight cell to come home, then stop and join the
     domains; best-effort drain each connection's queued responses;
     close everything. *)
  flush ();
  if nexec > 0 then begin
    let outstanding () = Array.fold_left ( + ) 0 c_outstanding in
    while outstanding () > 0 do
      drain_rsp_rings ();
      Rio_exec.Domains.relax ()
    done;
    Array.iter Executor.request_stop executors;
    Array.iter Rio_exec.Domains.join handles;
    drain_rsp_rings ()
  end;
  for slot = 0 to cap - 1 do
    if c_active.(slot) then begin
      let c = c_conn.(slot) in
      let tries = ref 8 in
      while Conn.queued c > 0 && !tries > 0 && Conn.alive c do
        decr tries;
        handle_write slot;
        if Conn.queued c > 0 && !tries > 0 then Unix.sleepf 0.05
      done;
      (try Unix.close c_fd.(slot) with Unix.Unix_error _ -> ());
      stats.closed <- stats.closed + 1
    end
  done;
  Array.iter
    (fun (rfd, wfd) ->
      (try Unix.close rfd with Unix.Unix_error _ -> ());
      try Unix.close wfd with Unix.Unix_error _ -> ())
    pipes;
  close_listener cfg lfd;
  stats.responses <- Dispatch.executed d + Dispatch.rejected d + !stats_answered;
  stats.batch_flushes <- Dispatch.flushes d;
  stats.rejected <- Dispatch.rejected d;
  refresh_domain_ops ();
  stats
