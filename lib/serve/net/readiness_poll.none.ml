(* Fallback when the rio_poll stubs library is unavailable: the
   Readiness facade checks [available] before routing here, so these
   bodies are unreachable in practice. *)

let available = false

type t = unit

let unavailable () = failwith "Readiness_poll: poll backend unavailable"
let create () = ()
let register () _fd ~token:_ = unavailable ()
let unregister () ~handle:_ = unavailable ()
let interest () ~handle:_ ~read:_ ~write:_ = unavailable ()
let registered () = 0
let wait () ~timeout_ms:_ = unavailable ()
let iter_ready () _f = unavailable ()
