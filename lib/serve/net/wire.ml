(* riommu-wire/1: the length-prefixed binary framing the socket
   transport speaks. Every accessor composes Bytes.get_uint16_le /
   set_uint16_le, which return and take immediate ints — never the
   boxing Bytes.get_int64_le — so decode and encode touch only the
   caller's buffers and the preallocated request record. The decode
   convention is an int, not a result: [> 0] bytes consumed, [0] need
   more bytes, [< 0] a typed protocol error ({!error_of_code}), so the
   hot path never allocates an [Ok]/[Error] box. *)

let magic = 0xA7
let hello_magic = "RIOWIRE1"
let hello_bytes = 16
let len_bytes = 4
let header_bytes = 8
let stats_payload_bytes = 40

let op_map = 1
let op_unmap = 2
let op_map_sg = 3
let op_translate = 4
let op_stats = 5

let op_name = function
  | 1 -> "map"
  | 2 -> "unmap"
  | 3 -> "map_sg"
  | 4 -> "translate"
  | 5 -> "stats"
  | _ -> "?"

let st_ok = 0
let st_exhausted = 1
let st_not_mapped = 2
let st_fault = 3
let st_bad_request = 4

let status_name = function
  | 0 -> "ok"
  | 1 -> "exhausted"
  | 2 -> "not_mapped"
  | 3 -> "fault"
  | 4 -> "bad_request"
  | _ -> "?"

type error = Bad_magic | Bad_op | Bad_length | Oversized | Bad_segs | Bad_hello

let error_code = function
  | Bad_magic -> -1
  | Bad_op -> -2
  | Bad_length -> -3
  | Oversized -> -4
  | Bad_segs -> -5
  | Bad_hello -> -6

let error_of_code = function
  | -1 -> Bad_magic
  | -2 -> Bad_op
  | -3 -> Bad_length
  | -4 -> Oversized
  | -5 -> Bad_segs
  | -6 -> Bad_hello
  | _ -> invalid_arg "Wire.error_of_code"

let error_name = function
  | Bad_magic -> "bad_magic"
  | Bad_op -> "bad_op"
  | Bad_length -> "bad_length"
  | Oversized -> "oversized"
  | Bad_segs -> "bad_segs"
  | Bad_hello -> "bad_hello"

(* Little-endian accessors built up from the 16-bit primitives. Values
   are 62-bit: the top two bits of the wire u64 are masked on encode
   and ignored on decode, keeping every quantity an immediate OCaml
   int (addresses in this codebase are <= 2^48 anyway). *)

let get_u8 = Bytes.get_uint8
let set_u8 = Bytes.set_uint8
let get_u16 = Bytes.get_uint16_le
let set_u16 = Bytes.set_uint16_le
let get_u32 b p = get_u16 b p lor (get_u16 b (p + 2) lsl 16)

let set_u32 b p v =
  set_u16 b p (v land 0xFFFF);
  set_u16 b (p + 2) ((v lsr 16) land 0xFFFF)

let get_u64 b p = get_u32 b p lor ((get_u32 b (p + 4) land 0x3FFF_FFFF) lsl 32)

let set_u64 b p v =
  set_u32 b p (v land 0xFFFF_FFFF);
  set_u32 b (p + 4) ((v lsr 32) land 0x3FFF_FFFF)

(* Requests *)

type req = {
  mutable op : int;
  mutable tenant : int;
  mutable req_id : int;
  mutable phys : int;  (** map *)
  mutable bytes : int;  (** map *)
  mutable iova : int;  (** unmap, translate *)
  mutable write : bool;  (** translate *)
  mutable nseg : int;  (** map_sg *)
  seg_phys : int array;
  seg_bytes : int array;
}

let create_req ~sg_limit =
  if sg_limit < 1 then invalid_arg "Wire.create_req: sg_limit";
  {
    op = 0;
    tenant = 0;
    req_id = 0;
    phys = 0;
    bytes = 0;
    iova = 0;
    write = false;
    nseg = 0;
    seg_phys = Array.make sg_limit 0;
    seg_bytes = Array.make sg_limit 0;
  }

let sg_limit req = Array.length req.seg_phys
let max_body ~sg_limit = header_bytes + 2 + (12 * sg_limit)
let max_request_bytes ~sg_limit = len_bytes + max_body ~sg_limit

let max_response_bytes ~sg_limit =
  let payload = if (2 + (8 * sg_limit)) > stats_payload_bytes then 2 + (8 * sg_limit) else stats_payload_bytes in
  len_bytes + header_bytes + payload

(* Decode one request frame at [pos] given [avail] readable bytes.
   Single pass, no intermediate values beyond ints; the payload is
   validated to be exactly the length the op demands before any field
   is trusted. *)
let decode_request b ~pos ~avail req =
  if avail < len_bytes then 0
  else begin
    let len = get_u32 b pos in
    let lim = sg_limit req in
    if len < header_bytes then error_code Bad_length
    else if len > max_body ~sg_limit:lim then error_code Oversized
    else if avail < len_bytes + len then 0
    else begin
      let h = pos + len_bytes in
      if get_u8 b h <> magic then error_code Bad_magic
      else begin
        let op = get_u8 b (h + 1) in
        let plen = len - header_bytes in
        let p = h + header_bytes in
        let consumed = len_bytes + len in
        req.tenant <- get_u16 b (h + 2);
        req.req_id <- get_u32 b (h + 4);
        match op with
        | 1 ->
            if plen <> 12 then error_code Bad_length
            else begin
              req.op <- op;
              req.phys <- get_u64 b p;
              req.bytes <- get_u32 b (p + 8);
              consumed
            end
        | 2 ->
            if plen <> 8 then error_code Bad_length
            else begin
              req.op <- op;
              req.iova <- get_u64 b p;
              consumed
            end
        | 3 ->
            if plen < 2 then error_code Bad_length
            else begin
              let nseg = get_u16 b p in
              if nseg < 1 || nseg > lim then error_code Bad_segs
              else if plen <> 2 + (12 * nseg) then error_code Bad_length
              else begin
                req.op <- op;
                req.nseg <- nseg;
                for i = 0 to nseg - 1 do
                  let sp = p + 2 + (12 * i) in
                  req.seg_phys.(i) <- get_u64 b sp;
                  req.seg_bytes.(i) <- get_u32 b (sp + 8)
                done;
                consumed
              end
            end
        | 4 ->
            if plen <> 9 then error_code Bad_length
            else begin
              req.op <- op;
              req.iova <- get_u64 b p;
              req.write <- get_u8 b (p + 8) <> 0;
              consumed
            end
        | 5 ->
            if plen <> 0 then error_code Bad_length
            else begin
              req.op <- op;
              consumed
            end
        | _ -> error_code Bad_op
      end
    end
  end

(* Request encoders (client side). Each returns the position just past
   the frame it wrote; callers guarantee capacity via
   {!max_request_bytes}. *)

let put_req_header b ~pos ~op ~tenant ~req_id ~plen =
  set_u32 b pos (header_bytes + plen);
  set_u8 b (pos + 4) magic;
  set_u8 b (pos + 5) op;
  set_u16 b (pos + 6) tenant;
  set_u32 b (pos + 8) req_id;
  pos + len_bytes + header_bytes

let encode_map b ~pos ~tenant ~req_id ~phys ~bytes =
  let p = put_req_header b ~pos ~op:op_map ~tenant ~req_id ~plen:12 in
  set_u64 b p phys;
  set_u32 b (p + 8) bytes;
  p + 12

let encode_unmap b ~pos ~tenant ~req_id ~iova =
  let p = put_req_header b ~pos ~op:op_unmap ~tenant ~req_id ~plen:8 in
  set_u64 b p iova;
  p + 8

let encode_map_sg b ~pos ~tenant ~req_id ~seg_phys ~seg_bytes ~n =
  if n < 1 || n > Array.length seg_phys then invalid_arg "Wire.encode_map_sg";
  let p =
    put_req_header b ~pos ~op:op_map_sg ~tenant ~req_id ~plen:(2 + (12 * n))
  in
  set_u16 b p n;
  for i = 0 to n - 1 do
    let sp = p + 2 + (12 * i) in
    set_u64 b sp seg_phys.(i);
    set_u32 b (sp + 8) seg_bytes.(i)
  done;
  p + 2 + (12 * n)

let encode_translate b ~pos ~tenant ~req_id ~iova ~write =
  let p = put_req_header b ~pos ~op:op_translate ~tenant ~req_id ~plen:9 in
  set_u64 b p iova;
  set_u8 b (p + 8) (if write then 1 else 0);
  p + 9

let encode_stats b ~pos ~tenant ~req_id =
  put_req_header b ~pos ~op:op_stats ~tenant ~req_id ~plen:0

(* Hello: 16 bytes, sent once per connection before any frame. *)

let encode_hello b ~pos ~bdf ~flags =
  Bytes.blit_string hello_magic 0 b pos 8;
  set_u32 b (pos + 8) bdf;
  set_u32 b (pos + 12) flags;
  pos + hello_bytes

let decode_hello b ~pos ~avail =
  if avail < hello_bytes then 0
  else begin
    let ok = ref true in
    for i = 0 to 7 do
      if get_u8 b (pos + i) <> Char.code hello_magic.[i] then ok := false
    done;
    if !ok then hello_bytes else error_code Bad_hello
  end

let hello_bdf b ~pos = get_u32 b (pos + 8)

(* Responses. Header after the length word: magic, op echo, status,
   reserved, req_id — 8 bytes, then the op's payload (empty on any
   non-ok status). *)

let put_rsp_header b ~pos ~op ~status ~req_id ~plen =
  set_u32 b pos (header_bytes + plen);
  set_u8 b (pos + 4) magic;
  set_u8 b (pos + 5) op;
  set_u8 b (pos + 6) status;
  set_u8 b (pos + 7) 0;
  set_u32 b (pos + 8) req_id;
  pos + len_bytes + header_bytes

let encode_map_ok b ~pos ~req_id ~iova =
  let p = put_rsp_header b ~pos ~op:op_map ~status:st_ok ~req_id ~plen:8 in
  set_u64 b p iova;
  p + 8

let encode_unmap_ok b ~pos ~req_id =
  put_rsp_header b ~pos ~op:op_unmap ~status:st_ok ~req_id ~plen:0

let encode_translate_ok b ~pos ~req_id ~phys =
  let p = put_rsp_header b ~pos ~op:op_translate ~status:st_ok ~req_id ~plen:8 in
  set_u64 b p phys;
  p + 8

let encode_map_sg_ok b ~pos ~req_id ~iovas ~n =
  let p =
    put_rsp_header b ~pos ~op:op_map_sg ~status:st_ok ~req_id
      ~plen:(2 + (8 * n))
  in
  set_u16 b p n;
  for i = 0 to n - 1 do
    set_u64 b (p + 2 + (8 * i)) iovas.(i)
  done;
  p + 2 + (8 * n)

let encode_stats_ok b ~pos ~req_id ~ops ~requests ~conns ~errors ~faults =
  let p =
    put_rsp_header b ~pos ~op:op_stats ~status:st_ok ~req_id
      ~plen:stats_payload_bytes
  in
  set_u64 b p ops;
  set_u64 b (p + 8) requests;
  set_u64 b (p + 16) conns;
  set_u64 b (p + 24) errors;
  set_u64 b (p + 32) faults;
  p + stats_payload_bytes

let encode_error b ~pos ~op ~status ~req_id =
  put_rsp_header b ~pos ~op ~status ~req_id ~plen:0

(* Client-side response record + decoder, mirroring [req]. *)

type resp = {
  mutable r_op : int;
  mutable status : int;
  mutable r_req_id : int;
  mutable r_iova : int;  (** map ok *)
  mutable r_phys : int;  (** translate ok *)
  mutable r_nseg : int;  (** map_sg ok *)
  r_iovas : int array;
  mutable s_ops : int;  (** stats ok *)
  mutable s_requests : int;
  mutable s_conns : int;
  mutable s_errors : int;
  mutable s_faults : int;
}

let create_resp ~sg_limit =
  if sg_limit < 1 then invalid_arg "Wire.create_resp: sg_limit";
  {
    r_op = 0;
    status = 0;
    r_req_id = 0;
    r_iova = 0;
    r_phys = 0;
    r_nseg = 0;
    r_iovas = Array.make sg_limit 0;
    s_ops = 0;
    s_requests = 0;
    s_conns = 0;
    s_errors = 0;
    s_faults = 0;
  }

let decode_response b ~pos ~avail resp =
  if avail < len_bytes then 0
  else begin
    let len = get_u32 b pos in
    let lim = Array.length resp.r_iovas in
    let maxp =
      let sg = 2 + (8 * lim) in
      if sg > stats_payload_bytes then sg else stats_payload_bytes
    in
    if len < header_bytes then error_code Bad_length
    else if len > header_bytes + maxp then error_code Oversized
    else if avail < len_bytes + len then 0
    else begin
      let h = pos + len_bytes in
      if get_u8 b h <> magic then error_code Bad_magic
      else begin
        let op = get_u8 b (h + 1) in
        let status = get_u8 b (h + 2) in
        let plen = len - header_bytes in
        let p = h + header_bytes in
        let consumed = len_bytes + len in
        resp.r_op <- op;
        resp.status <- status;
        resp.r_req_id <- get_u32 b (h + 4);
        if status <> st_ok then
          if plen <> 0 then error_code Bad_length else consumed
        else
          match op with
          | 1 ->
              if plen <> 8 then error_code Bad_length
              else begin
                resp.r_iova <- get_u64 b p;
                consumed
              end
          | 2 -> if plen <> 0 then error_code Bad_length else consumed
          | 3 ->
              if plen < 2 then error_code Bad_length
              else begin
                let n = get_u16 b p in
                if n < 1 || n > lim then error_code Bad_segs
                else if plen <> 2 + (8 * n) then error_code Bad_length
                else begin
                  resp.r_nseg <- n;
                  for i = 0 to n - 1 do
                    resp.r_iovas.(i) <- get_u64 b (p + 2 + (8 * i))
                  done;
                  consumed
                end
              end
          | 4 ->
              if plen <> 8 then error_code Bad_length
              else begin
                resp.r_phys <- get_u64 b p;
                consumed
              end
          | 5 ->
              if plen <> stats_payload_bytes then error_code Bad_length
              else begin
                resp.s_ops <- get_u64 b p;
                resp.s_requests <- get_u64 b (p + 8);
                resp.s_conns <- get_u64 b (p + 16);
                resp.s_errors <- get_u64 b (p + 24);
                resp.s_faults <- get_u64 b (p + 32);
                consumed
              end
          | _ -> error_code Bad_op
      end
    end
  end
