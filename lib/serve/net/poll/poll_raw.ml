type t

let ev_in = 1
let ev_out = 2
let ev_err = 4

external create_stub : int -> t = "rio_pollset_create"
external capacity : t -> int = "rio_pollset_capacity"
external grow_stub : t -> int -> unit = "rio_pollset_grow"

external set_stub : t -> int -> Unix.file_descr -> int -> unit
  = "rio_pollset_set"

external fd_stub : t -> int -> Unix.file_descr = "rio_pollset_fd"
external revents_stub : t -> int -> int = "rio_pollset_revents"
external wait_stub : t -> int -> int -> int = "rio_pollset_wait"

let create ~cap = create_stub cap
let grow t ~cap = grow_stub t cap
let set t ~idx ~fd ~events = set_stub t idx fd events
let fd t ~idx = fd_stub t idx
let revents t ~idx = revents_stub t idx
let wait t ~n ~timeout_ms = wait_stub t n timeout_ms
