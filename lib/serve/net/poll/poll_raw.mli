(** Thin bindings over poll(2).

    A {!t} owns a malloc'd [struct pollfd] array outside the OCaml
    heap (stable across blocking waits made with the runtime lock
    released, and untouched by the GC), programmed slot by slot. Event
    bits are a stable library encoding — {!ev_in}, {!ev_out},
    {!ev_err} — mapped to the platform's [POLLIN]/[POLLOUT]/
    [POLLERR|POLLHUP|POLLNVAL] inside the stubs.

    Every call here traffics only in immediate ints: the per-wakeup
    path ({!wait}, {!revents}) is allocation-free. Higher-level slot
    bookkeeping (which fd sits where, tokens, swap-removal) belongs to
    {!Readiness_poll}. *)

type t

val ev_in : int
val ev_out : int
val ev_err : int

val create : cap:int -> t
(** A set with [cap] programmable slots (grown on demand by callers
    via {!grow}). *)

val capacity : t -> int

val grow : t -> cap:int -> unit
(** Ensure at least [cap] slots, preserving programmed contents. *)

val set : t -> idx:int -> fd:Unix.file_descr -> events:int -> unit
(** Program slot [idx] to watch [fd] for [events] (an {!ev_in} /
    {!ev_out} mask). Raises [Invalid_argument] out of range. *)

val fd : t -> idx:int -> Unix.file_descr

val revents : t -> idx:int -> int
(** Ready bits of slot [idx] after the last {!wait} — an {!ev_in} /
    {!ev_out} / {!ev_err} mask. Allocation-free. *)

val wait : t -> n:int -> timeout_ms:int -> int
(** Poll the first [n] slots; returns how many are ready. [EINTR]
    returns [0]. Releases the OCaml runtime lock while blocking
    (timeout nonzero); the [timeout_ms = 0] probe is a plain call.
    Allocation-free. *)
