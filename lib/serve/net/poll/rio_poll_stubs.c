/* poll(2) bindings for the readiness backend.
 *
 * The pollfd array lives in a custom block OUTSIDE the OCaml heap
 * (malloc'd, freed by the finalizer), for two reasons: the kernel
 * needs a stable pointer across a blocking call made with the runtime
 * lock released (heap Bytes could be moved by another domain's GC),
 * and keeping registration state C-side is what makes the per-wakeup
 * OCaml work allocation-free — every stub here traffics only in
 * immediate ints.
 *
 * Event bits are our own stable encoding, mapped to the platform's
 * POLL* constants here so the OCaml side never sees platform variance:
 *   1 = readable  (POLLIN)
 *   2 = writable  (POLLOUT)
 *   4 = error/hangup/invalid (POLLERR | POLLHUP | POLLNVAL)
 */

#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <errno.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/custom.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#define RIO_POLL_IN 1
#define RIO_POLL_OUT 2
#define RIO_POLL_ERR 4

typedef struct {
  struct pollfd *fds;
  int cap;
} rio_pollset;

#define Pollset_val(v) ((rio_pollset *) Data_custom_val(v))

static void rio_pollset_finalize(value v)
{
  rio_pollset *s = Pollset_val(v);
  if (s->fds != NULL) {
    free(s->fds);
    s->fds = NULL;
  }
}

static struct custom_operations rio_pollset_ops = {
  "riommu.pollset",
  rio_pollset_finalize,
  custom_compare_default,
  custom_hash_default,
  custom_serialize_default,
  custom_deserialize_default,
  custom_compare_ext_default,
  custom_fixed_length_default
};

CAMLprim value rio_pollset_create(value vcap)
{
  CAMLparam1(vcap);
  CAMLlocal1(res);
  int cap = Int_val(vcap);
  if (cap < 1) cap = 1;
  struct pollfd *fds = calloc((size_t) cap, sizeof(struct pollfd));
  if (fds == NULL) caml_raise_out_of_memory();
  res = caml_alloc_custom(&rio_pollset_ops, sizeof(rio_pollset), 0, 1);
  Pollset_val(res)->fds = fds;
  Pollset_val(res)->cap = cap;
  CAMLreturn(res);
}

CAMLprim value rio_pollset_capacity(value vt)
{
  return Val_int(Pollset_val(vt)->cap);
}

/* Grow to at least [vcap] slots, preserving contents. */
CAMLprim value rio_pollset_grow(value vt, value vcap)
{
  rio_pollset *s = Pollset_val(vt);
  int want = Int_val(vcap);
  if (want > s->cap) {
    int cap = s->cap;
    while (cap < want) cap *= 2;
    struct pollfd *fds = calloc((size_t) cap, sizeof(struct pollfd));
    if (fds == NULL) caml_raise_out_of_memory();
    memcpy(fds, s->fds, (size_t) s->cap * sizeof(struct pollfd));
    free(s->fds);
    s->fds = fds;
    s->cap = cap;
  }
  return Val_unit;
}

/* [set t idx fd events]: program one slot. fd is the Unix.file_descr
   (an immediate int on Unix). */
CAMLprim value rio_pollset_set(value vt, value vidx, value vfd, value vevents)
{
  rio_pollset *s = Pollset_val(vt);
  int idx = Int_val(vidx);
  if (idx < 0 || idx >= s->cap) caml_invalid_argument("rio_pollset_set");
  int ev = Int_val(vevents);
  short events = 0;
  if (ev & RIO_POLL_IN) events |= POLLIN;
  if (ev & RIO_POLL_OUT) events |= POLLOUT;
  s->fds[idx].fd = Int_val(vfd);
  s->fds[idx].events = events;
  s->fds[idx].revents = 0;
  return Val_unit;
}

CAMLprim value rio_pollset_fd(value vt, value vidx)
{
  rio_pollset *s = Pollset_val(vt);
  int idx = Int_val(vidx);
  if (idx < 0 || idx >= s->cap) caml_invalid_argument("rio_pollset_fd");
  return Val_int(s->fds[idx].fd);
}

CAMLprim value rio_pollset_revents(value vt, value vidx)
{
  rio_pollset *s = Pollset_val(vt);
  int idx = Int_val(vidx);
  if (idx < 0 || idx >= s->cap) caml_invalid_argument("rio_pollset_revents");
  short r = s->fds[idx].revents;
  int ev = 0;
  if (r & POLLIN) ev |= RIO_POLL_IN;
  if (r & POLLOUT) ev |= RIO_POLL_OUT;
  if (r & (POLLERR | POLLHUP | POLLNVAL)) ev |= RIO_POLL_ERR;
  return Val_int(ev);
}

/* [wait t n timeout_ms]: poll the first n slots. Returns the number
   of ready slots; EINTR reads as 0 (the caller's loop re-arms).
   Releases the runtime lock only for a blocking wait — the
   timeout_ms=0 hot path stays a plain call. */
CAMLprim value rio_pollset_wait(value vt, value vn, value vtimeout)
{
  rio_pollset *s = Pollset_val(vt);
  int n = Int_val(vn);
  int timeout = Int_val(vtimeout);
  if (n < 0 || n > s->cap) caml_invalid_argument("rio_pollset_wait");
  int ret;
  if (timeout == 0) {
    ret = poll(s->fds, (nfds_t) n, 0);
  } else {
    struct pollfd *fds = s->fds; /* stable: outside the OCaml heap */
    caml_release_runtime_system();
    ret = poll(fds, (nfds_t) n, timeout);
    caml_acquire_runtime_system();
  }
  if (ret < 0) {
    if (errno == EINTR || errno == EAGAIN) return Val_int(0);
    uerror("poll", Nothing);
  }
  return Val_int(ret);
}
