(* Readiness facade: runtime choice between the poll(2) backend
   (dune-selected Readiness_poll) and a portable Unix.select backend
   that reproduces PR 8's per-wakeup list building. Registration
   bookkeeping for the select path lives here — sparse handle arrays
   over a dense iteration order, same shape as Readiness_poll, so the
   two backends are observationally identical up to the fd cap. *)

type backend = Select | Poll

let poll_available = Readiness_poll.available
let default_backend = if poll_available then Poll else Select

let backend_name = function Select -> "select" | Poll -> "poll"

let backend_of_string = function
  | "select" -> Ok Select
  | "poll" ->
      if poll_available then Ok Poll
      else Error "backend 'poll' not available in this build"
  | s -> Error (Printf.sprintf "unknown backend %S (want poll|select)" s)

(* Portable floor: platforms may set FD_SETSIZE higher, but 1024 is
   the value everywhere we run and overshooting it corrupts fd_set
   bitmaps, so clamp to the floor rather than probe. *)
let fd_setsize = 1024
let max_fds = function Select -> fd_setsize | Poll -> max_int
let ev_read = 1
let ev_write = 2
let ev_err = 4

(* --- select backend ------------------------------------------------ *)

type sel = {
  mutable n : int; (* live dense slots *)
  mutable d_handle : int array; (* dense idx -> handle *)
  mutable d_ready : int array; (* dense idx -> bits from last wait *)
  mutable h_dense : int array; (* handle -> dense idx, -1 when free *)
  mutable h_fd : Unix.file_descr array;
  mutable h_token : int array;
  mutable h_events : int array;
  mutable free : int array;
  mutable free_top : int;
  mutable h_cap : int;
}

let sel_initial_cap = 16

let sel_create () =
  {
    n = 0;
    d_handle = Array.make sel_initial_cap (-1);
    d_ready = Array.make sel_initial_cap 0;
    h_dense = Array.make sel_initial_cap (-1);
    h_fd = Array.make sel_initial_cap Unix.stdin;
    h_token = Array.make sel_initial_cap (-1);
    h_events = Array.make sel_initial_cap 0;
    free = Array.make sel_initial_cap (-1);
    free_top = 0;
    h_cap = sel_initial_cap;
  }

let sel_grow s =
  let cap = s.h_cap * 2 in
  let extend a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 s.h_cap;
    b
  in
  s.d_handle <- extend s.d_handle (-1);
  s.d_ready <- extend s.d_ready 0;
  s.h_dense <- extend s.h_dense (-1);
  s.h_fd <- extend s.h_fd Unix.stdin;
  s.h_token <- extend s.h_token (-1);
  s.h_events <- extend s.h_events 0;
  s.free <- extend s.free (-1);
  s.h_cap <- cap

let sel_register s fd ~token =
  let handle =
    if s.free_top > 0 then (
      s.free_top <- s.free_top - 1;
      s.free.(s.free_top))
    else (
      (* live + free handles track dense slots, so with the free
         stack empty [n] is the next unminted handle id *)
      if s.n >= s.h_cap then sel_grow s;
      s.n)
  in
  let slot = s.n in
  if slot >= s.h_cap then sel_grow s;
  s.d_handle.(slot) <- handle;
  s.d_ready.(slot) <- 0;
  s.h_dense.(handle) <- slot;
  s.h_fd.(handle) <- fd;
  s.h_token.(handle) <- token;
  s.h_events.(handle) <- 0;
  s.n <- slot + 1;
  handle

let sel_unregister s ~handle =
  let slot = s.h_dense.(handle) in
  if slot < 0 then invalid_arg "Readiness.unregister: dead handle";
  let last = s.n - 1 in
  if slot <> last then (
    let moved = s.d_handle.(last) in
    s.d_handle.(slot) <- moved;
    s.d_ready.(slot) <- s.d_ready.(last);
    s.h_dense.(moved) <- slot);
  s.n <- last;
  s.h_dense.(handle) <- -1;
  s.free.(s.free_top) <- handle;
  s.free_top <- s.free_top + 1

let sel_interest s ~handle ~read ~write =
  s.h_events.(handle) <-
    (if read then ev_read else 0) lor if write then ev_write else 0

let sel_wait s ~timeout_ms =
  let rds = ref [] and wrs = ref [] in
  for i = s.n - 1 downto 0 do
    s.d_ready.(i) <- 0;
    let h = s.d_handle.(i) in
    let ev = s.h_events.(h) in
    if ev land ev_read <> 0 then rds := s.h_fd.(h) :: !rds;
    if ev land ev_write <> 0 then wrs := s.h_fd.(h) :: !wrs
  done;
  let timeout =
    if timeout_ms < 0 then -1.0 else float_of_int timeout_ms /. 1000.
  in
  match Unix.select !rds !wrs [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
  | r, w, _ ->
      let count = ref 0 in
      for i = 0 to s.n - 1 do
        let h = s.d_handle.(i) in
        let fd = s.h_fd.(h) in
        let bits =
          (if List.memq fd r then ev_read else 0)
          lor if List.memq fd w then ev_write else 0
        in
        if bits <> 0 then (
          s.d_ready.(i) <- bits;
          incr count)
      done;
      !count

let sel_iter_ready s f =
  for i = 0 to s.n - 1 do
    let bits = s.d_ready.(i) in
    if bits <> 0 then f s.h_token.(s.d_handle.(i)) bits
  done

(* --- facade -------------------------------------------------------- *)

type t = P of Readiness_poll.t | S of sel

let create = function
  | Poll ->
      if not poll_available then
        failwith "Readiness.create: poll backend unavailable";
      P (Readiness_poll.create ())
  | Select -> S (sel_create ())

let backend = function P _ -> Poll | S _ -> Select

let register t fd ~token =
  match t with
  | P p -> Readiness_poll.register p fd ~token
  | S s -> sel_register s fd ~token

let unregister t ~handle =
  match t with
  | P p -> Readiness_poll.unregister p ~handle
  | S s -> sel_unregister s ~handle

let interest t ~handle ~read ~write =
  match t with
  | P p -> Readiness_poll.interest p ~handle ~read ~write
  | S s -> sel_interest s ~handle ~read ~write

let registered = function
  | P p -> Readiness_poll.registered p
  | S s -> s.n

let wait t ~timeout_ms =
  match t with
  | P p -> Readiness_poll.wait p ~timeout_ms
  | S s -> sel_wait s ~timeout_ms

let iter_ready t f =
  match t with
  | P p -> Readiness_poll.iter_ready p f
  | S s -> sel_iter_ready s f
