(** Shard-affinity dispatch with per-shard request batching.

    Decoded requests are appended to preallocated structure-of-arrays
    batches, one per shard, and executed in shard order at flush
    points (the event loop flushes once per poll iteration, or
    mid-iteration when a batch fills). A tenant is pinned to a shard
    on first sight by hashing [(tenant, bdf)] — all its later
    requests, whatever connection they arrive on, execute on that
    shard's manager, preserving the IOTLB and allocator locality the
    shard design exists for (DESIGN.md §12, §14).

    Responses are encoded straight into each request's connection
    write buffer at execute time; because batches interleave requests
    from many connections, a connection's responses can be reordered
    relative to its requests — [req_id] is the correlation key.

    {!enqueue} and the translate execute path are allocation-free
    (lint manifest; dispatch-translate bench gate). *)

type t

val create :
  shards:Rio_serve.Shard.t array ->
  batch:int ->
  sg_limit:int ->
  ?max_tenants:int ->
  unit ->
  t
(** [batch] slots per shard; wire tenant ids must be below
    [max_tenants] (default 4096) or the request is rejected with
    [bad_request]. *)

val set_stats_cb : t -> (Conn.t -> int -> unit) -> unit
(** How to answer a stats request ([conn], [req_id]) — the event loop
    installs a closure over its own counters. The default answers all
    zeros. The callback must reserve/encode/commit and call
    {!Conn.completed} itself, like any execute. *)

val shard_of : t -> tenant:int -> bdf:int -> int
(** The affinity hash (exposed for tests): which shard a fresh tenant
    presenting from [bdf] would pin to. *)

val enqueue : t -> Conn.t -> Wire.req -> bool
(** Append one decoded request. [true] = handled: queued on its
    shard's batch, or answered immediately (stats; [bad_request] for
    an out-of-range or unplaceable tenant). [false] = that shard's
    batch is full — {!flush_shard} (or {!flush_all}) and retry.
    Allocation-free. *)

val flush_shard : t -> int -> unit
(** Execute and clear shard [sh]'s batch: each slot runs against the
    shard's manager and its response is encoded into its connection's
    write buffer (dead connections' slots are skipped). *)

val flush_all : t -> unit

val flush_cells : t -> cell:int array -> emit:(shard:int -> unit) -> unit
(** The multi-domain flush: pack each batched slot into [cell] (a
    caller-owned scratch of {!Cell.req_width} ints, stamped with the
    connection's {!Conn.token}) and call [emit ~shard] to push it onto
    the owning executor's request ring. [emit] must consume [cell]
    before returning (it is reused for the next slot) and must not
    fail — the loop spins on a momentarily full ring. Dead
    connections' slots are dropped, as in {!flush_shard}. *)

val complete : t -> Conn.t -> cell:int array -> unit
(** Encode one executor {e response} cell ({!Cell.r_width} lanes) into
    [conn]'s write buffer and retire its in-flight slot — the
    IO-domain tail of a multi-domain execute, counted in {!executed}.
    Allocation-free. *)

val pending : t -> int
(** Requests batched but not yet flushed. *)

val batch : t -> int
val max_tenants : t -> int
val executed : t -> int
val flushes : t -> int
(** Non-empty batch flushes — [executed / flushes] is the realized
    batch amortization. *)

val rejected : t -> int
(** Requests answered [bad_request] without reaching a shard. *)
