(** riommu-wire/1: length-prefixed binary framing for the socket
    transport.

    {2 Frame layout}

    Every frame is a little-endian [u32] body length followed by the
    body. A request body is an 8-byte header — [u8] magic [0xA7],
    [u8] op, [u16] tenant, [u32] req_id — then an op-specific payload:

    {v
    map       phys u64, bytes u32                        (12 bytes)
    unmap     iova u64                                    (8 bytes)
    map_sg    nseg u16, nseg x (phys u64, bytes u32)  (2 + 12n bytes)
    translate iova u64, write u8                          (9 bytes)
    stats     (empty)
    v}

    A response body is an 8-byte header — magic, op echo, status,
    reserved, [u32] req_id — then a payload only when [status = ok]:
    map returns the [u64] iova, translate the [u64] phys, map_sg
    [nseg u16] plus [nseg] [u64] iovas, stats five [u64] counters.
    Responses correlate by [req_id] and may be reordered relative to
    their requests (the shard-affinity dispatcher flushes per-shard
    batches, not per-connection queues).

    Before any frame, a client sends a 16-byte hello:
    ["RIOWIRE1"], [u32] bdf, [u32] flags.

    {2 Calling convention}

    Decode and encode are allocation-free: requests decode into a
    preallocated mutable {!req} (responses into a {!resp}), integers
    travel through [Bytes.get_uint16_le] composition (never a boxed
    [Int64]), and decoders return a plain [int]: positive = bytes
    consumed, [0] = need more input, negative = {!error_of_code}.
    Wire [u64]s carry 62-bit values (the top bits are masked), which
    covers every address and counter in the system. *)

val magic : int
val hello_magic : string
val hello_bytes : int
val len_bytes : int
val header_bytes : int

val stats_payload_bytes : int
(** Stats-response payload: five u64 counters (ops, requests, conns,
    protocol errors, faults). *)

(** {1 Op and status codes} *)

val op_map : int
val op_unmap : int
val op_map_sg : int
val op_translate : int
val op_stats : int
val op_name : int -> string
val st_ok : int
val st_exhausted : int
val st_not_mapped : int
val st_fault : int
val st_bad_request : int
val status_name : int -> string

(** {1 Protocol errors} *)

type error = Bad_magic | Bad_op | Bad_length | Oversized | Bad_segs | Bad_hello

val error_code : error -> int
(** Strictly negative; stable across releases of the protocol. *)

val error_of_code : int -> error
(** Inverse of {!error_code}; raises [Invalid_argument] on anything
    non-negative or unknown. *)

val error_name : error -> string

(** {1 Sizing} *)

val max_body : sg_limit:int -> int
val max_request_bytes : sg_limit:int -> int
(** Largest legal request frame (a full-width map_sg), length word
    included — the decoder rejects longer claims as [Oversized]
    {e before} waiting for their bytes, so a hostile length cannot
    stall a connection. *)

val max_response_bytes : sg_limit:int -> int
(** Largest response frame; the connection write buffer reserves this
    much per in-flight request so encoding a response can never fail
    mid-batch. *)

(** {1 Requests} *)

type req = {
  mutable op : int;
  mutable tenant : int;
  mutable req_id : int;
  mutable phys : int;
  mutable bytes : int;
  mutable iova : int;
  mutable write : bool;
  mutable nseg : int;
  seg_phys : int array;
  seg_bytes : int array;
}
(** One decoded request, reused across frames. Only the fields of the
    decoded [op] are meaningful after a decode. *)

val create_req : sg_limit:int -> req
val sg_limit : req -> int

val decode_request : Bytes.t -> pos:int -> avail:int -> req -> int
(** [> 0] consumed bytes (fields of [req] valid), [0] incomplete
    (nothing written), [< 0] {!error_code}. Allocation-free. *)

val encode_map :
  Bytes.t -> pos:int -> tenant:int -> req_id:int -> phys:int -> bytes:int -> int

val encode_unmap : Bytes.t -> pos:int -> tenant:int -> req_id:int -> iova:int -> int

val encode_map_sg :
  Bytes.t ->
  pos:int ->
  tenant:int ->
  req_id:int ->
  seg_phys:int array ->
  seg_bytes:int array ->
  n:int ->
  int

val encode_translate :
  Bytes.t -> pos:int -> tenant:int -> req_id:int -> iova:int -> write:bool -> int

val encode_stats : Bytes.t -> pos:int -> tenant:int -> req_id:int -> int

(** {1 Hello} *)

val encode_hello : Bytes.t -> pos:int -> bdf:int -> flags:int -> int

val decode_hello : Bytes.t -> pos:int -> avail:int -> int
(** [hello_bytes] on success, [0] incomplete, [error_code Bad_hello]
    on a magic mismatch. *)

val hello_bdf : Bytes.t -> pos:int -> int
(** Only valid right after a successful {!decode_hello} at [pos]. *)

(** {1 Responses} *)

val encode_map_ok : Bytes.t -> pos:int -> req_id:int -> iova:int -> int
val encode_unmap_ok : Bytes.t -> pos:int -> req_id:int -> int
val encode_translate_ok : Bytes.t -> pos:int -> req_id:int -> phys:int -> int

val encode_map_sg_ok :
  Bytes.t -> pos:int -> req_id:int -> iovas:int array -> n:int -> int

val encode_stats_ok :
  Bytes.t ->
  pos:int ->
  req_id:int ->
  ops:int ->
  requests:int ->
  conns:int ->
  errors:int ->
  faults:int ->
  int

val encode_error : Bytes.t -> pos:int -> op:int -> status:int -> req_id:int -> int
(** Payload-less response carrying a non-ok status. *)

type resp = {
  mutable r_op : int;
  mutable status : int;
  mutable r_req_id : int;
  mutable r_iova : int;
  mutable r_phys : int;
  mutable r_nseg : int;
  r_iovas : int array;
  mutable s_ops : int;
  mutable s_requests : int;
  mutable s_conns : int;
  mutable s_errors : int;
  mutable s_faults : int;
}

val create_resp : sg_limit:int -> resp

val decode_response : Bytes.t -> pos:int -> avail:int -> resp -> int
(** Client-side mirror of {!decode_request}; same return convention. *)
