(* poll(2)-backed readiness: selected when the rio_poll stubs library
   is available (see dune (select) in this directory).

   Layout mirrors the classic epoll-set idiom: a DENSE pollfd array
   (inside Poll_raw.t, C-side) that poll(2) scans contiguously, plus
   SPARSE handle-indexed arrays so registrations keep a stable handle
   while dense slots swap-compact on unregister. register/unregister
   run on accept/close only and may allocate (array growth); wait and
   iter_ready are the per-wakeup path and are allocation-free. *)

module Poll_raw = Rio_poll.Poll_raw

let available = true

type t = {
  ps : Poll_raw.t;
  mutable n : int; (* live dense slots; ps slots >= n are stale *)
  mutable d_handle : int array; (* dense idx -> handle *)
  mutable h_dense : int array; (* handle -> dense idx, -1 when free *)
  mutable h_fd : Unix.file_descr array;
  mutable h_token : int array;
  mutable h_events : int array;
  mutable free : int array; (* stack of recycled handles *)
  mutable free_top : int;
  mutable h_cap : int;
}

let initial_cap = 16

let create () =
  {
    ps = Poll_raw.create ~cap:initial_cap;
    n = 0;
    d_handle = Array.make initial_cap (-1);
    h_dense = Array.make initial_cap (-1);
    h_fd = Array.make initial_cap Unix.stdin;
    h_token = Array.make initial_cap (-1);
    h_events = Array.make initial_cap 0;
    free = Array.make initial_cap (-1);
    free_top = 0;
    h_cap = initial_cap;
  }

let grow_handles t =
  let cap = t.h_cap * 2 in
  let extend a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 t.h_cap;
    b
  in
  t.d_handle <- extend t.d_handle (-1);
  t.h_dense <- extend t.h_dense (-1);
  t.h_fd <- extend t.h_fd Unix.stdin;
  t.h_token <- extend t.h_token (-1);
  t.h_events <- extend t.h_events 0;
  t.free <- extend t.free (-1);
  t.h_cap <- cap

let register t fd ~token =
  let handle =
    if t.free_top > 0 then (
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top))
    else (
      (* fresh handles are minted in step with dense slots, so [n] is
         also the next unminted handle id *)
      if t.n >= t.h_cap then grow_handles t;
      t.n)
  in
  let slot = t.n in
  if slot >= Poll_raw.capacity t.ps then
    Poll_raw.grow t.ps ~cap:(slot + 1);
  if slot >= Array.length t.d_handle then grow_handles t;
  Poll_raw.set t.ps ~idx:slot ~fd ~events:0;
  t.d_handle.(slot) <- handle;
  t.h_dense.(handle) <- slot;
  t.h_fd.(handle) <- fd;
  t.h_token.(handle) <- token;
  t.h_events.(handle) <- 0;
  t.n <- slot + 1;
  handle

let unregister t ~handle =
  let slot = t.h_dense.(handle) in
  if slot < 0 then invalid_arg "Readiness_poll.unregister: dead handle";
  let last = t.n - 1 in
  if slot <> last then (
    let moved = t.d_handle.(last) in
    t.d_handle.(slot) <- moved;
    t.h_dense.(moved) <- slot;
    Poll_raw.set t.ps ~idx:slot ~fd:t.h_fd.(moved)
      ~events:t.h_events.(moved));
  t.n <- last;
  t.h_dense.(handle) <- -1;
  t.free.(t.free_top) <- handle;
  t.free_top <- t.free_top + 1

let interest t ~handle ~read ~write =
  let ev =
    (if read then Poll_raw.ev_in else 0)
    lor if write then Poll_raw.ev_out else 0
  in
  if ev <> t.h_events.(handle) then (
    t.h_events.(handle) <- ev;
    Poll_raw.set t.ps ~idx:t.h_dense.(handle) ~fd:t.h_fd.(handle)
      ~events:ev)

let registered t = t.n
let wait t ~timeout_ms = Poll_raw.wait t.ps ~n:t.n ~timeout_ms

let iter_ready t f =
  for i = 0 to t.n - 1 do
    let r = Poll_raw.revents t.ps ~idx:i in
    if r <> 0 then f t.h_token.(t.d_handle.(i)) r
  done
