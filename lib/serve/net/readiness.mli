(** Readiness backends for the socket loop.

    PR 8's loop rebuilt [Unix.select] fd lists on every wakeup and
    inherited the [FD_SETSIZE] (1024) cap. This module splits that
    concern out behind a small registration API with two backends:

    - {b Poll}: poll(2) via the [rio_poll] C stubs (dune-selected;
      see {!Readiness_poll}). Registrations are programmed once into
      a C-side pollfd array, so each wakeup is one allocation-free
      [poll] call — no per-wakeup set rebuild, no fd cap.
    - {b Select}: portable [Unix.select], list-per-wait, capped at
      {!fd_setsize} descriptors. Always available; byte-identical in
      behavior to the PR 8 loop.

    Registrations return stable int handles and carry a caller
    [token] (the loop's connection-slot index) handed back by
    {!iter_ready}, so readiness never needs an fd-keyed lookup. *)

type backend = Select | Poll

val poll_available : bool
(** Whether the poll(2) stubs were built (dune select). *)

val default_backend : backend
(** [Poll] when available, else [Select]. *)

val backend_of_string : string -> (backend, string) result
(** Accepts ["poll"] and ["select"]; [Error] names the bad token.
    Choosing ["poll"] where unavailable also returns [Error]. *)

val backend_name : backend -> string

val fd_setsize : int
(** The portable [FD_SETSIZE] floor (1024) bounding the Select
    backend. *)

val max_fds : backend -> int
(** Descriptor cap: {!fd_setsize} for [Select], effectively unbounded
    for [Poll]. *)

(** Ready-bit mask returned by {!iter_ready}. *)

val ev_read : int
val ev_write : int
val ev_err : int

type t

val create : backend -> t
(** Raises [Failure] if [Poll] is requested but unavailable (gate
    with {!backend_of_string} / {!poll_available}). *)

val backend : t -> backend

val register : t -> Unix.file_descr -> token:int -> int
(** Watch [fd]; no interest armed yet. Returns a stable handle. *)

val unregister : t -> handle:int -> unit
(** Must be called before closing the fd. Recycles the handle. *)

val interest : t -> handle:int -> read:bool -> write:bool -> unit

val registered : t -> int

val wait : t -> timeout_ms:int -> int
(** Block up to [timeout_ms] (-1 = forever) for readiness; returns
    the ready count. [EINTR] reads as [0]. Allocation-free on the
    Poll backend ([wait_poll] is lint-gated); Select builds its fd
    lists here. *)

val iter_ready : t -> (int -> int -> unit) -> unit
(** [iter_ready t f] calls [f token bits] for each ready
    registration from the last {!wait}; [bits] is an {!ev_read} /
    {!ev_write} / {!ev_err} mask. *)
