(* Shard executor: pop request cells, run them against the owning
   shard, push response cells. See the mli for the topology story.

   Everything here runs on the executor's domain except [create] and
   [request_stop]; cross-domain traffic is exactly the two SPSC rings,
   the stop flag, and wake bytes down the pipe. *)

open Rio_memory
open Rio_serve

type t = {
  shards : Shard.t array;
  req : Spsc.t;
  rsp : Spsc.t;
  stop : bool Atomic.t;
  wake_fd : Unix.file_descr;
  wake_byte : Bytes.t;
  sg_limit : int;
  qc : int array; (* request-cell scratch *)
  rc : int array; (* response-cell scratch *)
  segs : (Addr.phys * int) array; (* map_sg scratch *)
  iovas : int array;
  mutable executed : int; (* plain int: single writer (this domain) *)
}

let create ~shards ~sg_limit ~ring_cap ~wake_fd =
  {
    shards;
    req = Spsc.create ~cap:ring_cap ~width:(Cell.req_width ~sg_limit);
    rsp = Spsc.create ~cap:ring_cap ~width:(Cell.rsp_width ~sg_limit);
    stop = Atomic.make false;
    wake_fd;
    wake_byte = Bytes.make 1 '!';
    sg_limit;
    qc = Array.make (Cell.req_width ~sg_limit) 0;
    rc = Array.make (Cell.rsp_width ~sg_limit) 0;
    segs = Array.make sg_limit (Addr.phys_of_int 0, 0);
    iovas = Array.make sg_limit 0;
    executed = 0;
  }

let request_ring t = t.req
let response_ring t = t.rsp
let request_stop t = Atomic.set t.stop true
let executed t = t.executed

(* The response ring can only be momentarily full: the IO domain
   drains every response ring on every wakeup and never blocks on our
   request ring, so spinning here cannot deadlock. *)
let push_rsp t =
  while not (Spsc.try_push t.rsp ~src:t.rc) do
    Rio_exec.Domains.relax ()
  done

(* Steady-state execute, mirroring Dispatch.exec_translate: the fault
   is the constant Manager.Translation_fault (pre-allocated, already
   counted by the shard), so the whole op is allocation-free. *)
let exec_translate t sh ~tenant ~iova ~write =
  match Shard.translate_record sh ~tenant ~iova ~write with
  | phys ->
      t.rc.(Cell.r_status) <- Wire.st_ok;
      t.rc.(Cell.r_value) <- Addr.to_int phys
  | exception Rio_domain.Manager.Translation_fault ->
      t.rc.(Cell.r_status) <- Wire.st_fault

let exec_map t sh ~tenant ~phys ~bytes =
  match Shard.map_record sh ~tenant ~phys:(Addr.phys_of_int phys) ~bytes with
  | Ok iova ->
      t.rc.(Cell.r_status) <- Wire.st_ok;
      t.rc.(Cell.r_value) <- iova
  | Error `Exhausted -> t.rc.(Cell.r_status) <- Wire.st_exhausted

let exec_unmap t sh ~tenant ~iova =
  match Shard.unmap_record sh ~tenant ~iova with
  | Ok () -> t.rc.(Cell.r_status) <- Wire.st_ok
  | Error `Not_mapped -> t.rc.(Cell.r_status) <- Wire.st_not_mapped

let exec_map_sg t sh ~tenant ~nseg =
  for k = 0 to nseg - 1 do
    t.segs.(k) <-
      ( Addr.phys_of_int t.qc.(Cell.q_segs + k),
        t.qc.(Cell.q_segs + t.sg_limit + k) )
  done;
  match Shard.map_sg_record sh ~tenant ~segs:t.segs ~n:nseg ~iovas:t.iovas with
  | Ok _span ->
      t.rc.(Cell.r_status) <- Wire.st_ok;
      t.rc.(Cell.r_nseg) <- nseg;
      Array.blit t.iovas 0 t.rc Cell.r_iovas nseg
  | Error `Exhausted -> t.rc.(Cell.r_status) <- Wire.st_exhausted

let step t =
  let n = ref 0 in
  while Spsc.try_pop t.req ~dst:t.qc do
    incr n;
    let op = t.qc.(Cell.q_op) in
    let sh = t.shards.(t.qc.(Cell.q_shard)) in
    let tenant = t.qc.(Cell.q_tenant) in
    t.rc.(Cell.r_slot) <- t.qc.(Cell.q_slot);
    t.rc.(Cell.r_op) <- op;
    t.rc.(Cell.r_req_id) <- t.qc.(Cell.q_req_id);
    t.rc.(Cell.r_nseg) <- 0;
    if op = Wire.op_translate then
      exec_translate t sh ~tenant ~iova:t.qc.(Cell.q_a)
        ~write:(t.qc.(Cell.q_b) <> 0)
    else if op = Wire.op_map then
      exec_map t sh ~tenant ~phys:t.qc.(Cell.q_a) ~bytes:t.qc.(Cell.q_b)
    else if op = Wire.op_unmap then
      exec_unmap t sh ~tenant ~iova:t.qc.(Cell.q_a)
    else exec_map_sg t sh ~tenant ~nseg:t.qc.(Cell.q_nseg);
    push_rsp t;
    t.executed <- t.executed + 1
  done;
  !n

let wake t =
  match Unix.single_write t.wake_fd t.wake_byte 0 1 with
  | _ -> ()
  | exception Unix.Unix_error _ ->
      (* EAGAIN: pipe full, a wakeup is already pending *) ()

let run t =
  let spins = ref 0 in
  let live = ref true in
  while !live do
    if step t > 0 then begin
      wake t;
      spins := 0
    end
    else if Atomic.get t.stop then
      (* stop is checked only after an empty step, so every cell
         pushed before request_stop is executed before exit *)
      live := false
    else begin
      incr spins;
      if !spins <= 64 then Rio_exec.Domains.relax ()
      else Unix.sleepf 5e-05
    end
  done
