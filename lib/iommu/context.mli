(** Root and context tables: mapping request identifiers to domains.

    The IOMMU indexes the root table by bus number and the resulting
    context table by device+function to find the page-table hierarchy of
    the issuing device (Figure 2). A {e domain} owns one page-table
    hierarchy; several devices may share a domain. *)

module Domain : sig
  type t = private { id : int; table : Rio_pagetable.Arena.t }

  val make : id:int -> table:Rio_pagetable.Arena.t -> t
end

type t

val create : unit -> t

val attach : t -> Bdf.t -> Domain.t -> unit
(** Point the device's context entry at the domain. Re-attaching replaces
    the previous domain (as on device reassignment). *)

val detach : t -> Bdf.t -> unit

val lookup : t -> rid:int -> Domain.t option
(** Hardware-side lookup by request identifier. Context entries are
    cached by real IOMMUs (VT-d context cache), so no per-DMA cycle cost
    is charged. [None] means a DMA from an unknown device: a fault. *)

val lookup_exn : t -> rid:int -> Domain.t
(** Allocation-free {!lookup}: no option box. Raises [Not_found] for an
    unknown device. *)

val attached : t -> int
(** Number of devices currently attached. *)
