(** The OS-side baseline IOMMU driver: map and unmap (Figures 4 and 6).

    [map] allocates an IOVA range, installs the translations in the
    device's page-table hierarchy, and returns the I/O virtual address
    the device driver should put in its DMA descriptor. [unmap] removes
    the translations, invalidates the IOTLB, and releases the IOVA.

    Two axes give the paper's four baseline protection modes:
    - allocator: {!Rio_iova.Allocator.kind} [Linux] (strict / defer) or
      [Fast] (strict+ / defer+);
    - invalidation: {!policy} [Immediate] (strict variants) or
      [Deferred] (defer variants: queue unmapped IOVAs and flush the
      whole IOTLB once the queue reaches the batch size, 250 in Linux).

    Deferred invalidation trades safety for performance: until the flush,
    the device can still reach the unmapped - and possibly reused -
    pages through stale IOTLB entries. This window is real in the model
    and exercised by the tests.

    Every phase of both calls is attributed to a {!Rio_sim.Breakdown}
    component, which is how Table 1 is regenerated. *)

type policy = Immediate | Deferred of { batch : int }

exception Exhausted
(** Raised by {!map_exn} when the IOVA space is exhausted. *)

exception Not_mapped
(** Raised by {!unmap_exn} for an IOVA with no live mapping. *)

type t

val create :
  ?rcache:Rio_iova.Magazine.t ->
  domain:Context.Domain.t ->
  allocator:Rio_iova.Allocator.t ->
  iotlb:int Rio_iotlb.Iotlb.t ->
  rid:int ->
  policy:policy ->
  clock:Rio_sim.Cycles.t ->
  cost:Rio_sim.Cost_model.t ->
  unit ->
  t
(** [rcache] puts a {!Rio_iova.Magazine} cache in front of [allocator]:
    map allocations and unmap releases go through the magazine layer
    (the Linux iova-rcache mitigation for the Table 1 pathology). *)

val map_exn :
  t -> phys:Rio_memory.Addr.phys -> bytes:int -> read:bool -> write:bool -> int
(** Map the physical buffer [\[phys, phys+bytes)] and return its IOVA.
    The buffer may start at any page offset and span several pages; the
    returned IOVA preserves the page offset (as the Linux DMA API does).
    [read]/[write] are the permitted DMA directions.

    This is the zero-allocation primary: after warm-up it allocates no
    words on the OCaml heap. Raises {!Exhausted} when no IOVA range of
    the required size is free. *)

val map :
  t ->
  phys:Rio_memory.Addr.phys ->
  bytes:int ->
  read:bool ->
  write:bool ->
  (int, [ `Exhausted ]) result
(** Result-typed convenience wrapper over {!map_exn} (allocates the
    [Ok]/[Error] box). *)

val unmap_exn : t -> iova:int -> unit
(** Tear down the mapping that [map] returned. Order per Figure 6:
    page-table removal, IOTLB invalidation, IOVA release. Zero-alloc
    under [Immediate]; deferred modes queue the pending release (which
    allocates). Raises {!Not_mapped}. *)

val unmap : t -> iova:int -> (unit, [ `Not_mapped ]) result
(** Result-typed convenience wrapper over {!unmap_exn}. *)

val flush : t -> unit
(** Force a deferred-mode flush now (e.g. on device quiesce); no-op under
    [Immediate]. *)

val pending : t -> int
(** Unmapped-but-not-yet-flushed IOVAs (deferred modes only). *)

val map_breakdown : t -> Rio_sim.Breakdown.t
val unmap_breakdown : t -> Rio_sim.Breakdown.t
val live_mappings : t -> int

val rcache : t -> Rio_iova.Magazine.t option
(** The magazine cache, when one was configured. *)
