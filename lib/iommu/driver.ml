module Addr = Rio_memory.Addr
module Pte = Rio_pagetable.Pte
module Arena = Rio_pagetable.Arena
module Iotlb = Rio_iotlb.Iotlb
module Allocator = Rio_iova.Allocator
module Magazine = Rio_iova.Magazine
module Breakdown = Rio_sim.Breakdown
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

type policy = Immediate | Deferred of { batch : int }

type pending_unmap = { node : Rio_iova.Rbtree.node }

exception Exhausted
exception Not_mapped

type t = {
  domain : Context.Domain.t;
  allocator : Allocator.t;
  rcache : Magazine.t option;  (* magazine cache in front of the allocator *)
  iotlb : int Iotlb.t;  (* payloads: packed PTEs *)
  rid : int;
  policy : policy;
  clock : Cycles.t;
  cost : Cost_model.t;
  queue : pending_unmap Queue.t;
  bm : Breakdown.t;  (* map breakdown *)
  bu : Breakdown.t;  (* unmap breakdown *)
}

let create ?rcache ~domain ~allocator ~iotlb ~rid ~policy ~clock ~cost () =
  {
    domain;
    allocator;
    rcache;
    iotlb;
    rid;
    policy;
    clock;
    cost;
    queue = Queue.create ();
    bm = Breakdown.create ~clock;
    bu = Breakdown.create ~clock;
  }

let iova_alloc_pfn t ~size =
  match t.rcache with
  | Some m -> Magazine.alloc_pfn m ~size
  | None -> Allocator.alloc_pfn t.allocator ~size

let iova_find_exn t ~pfn =
  match t.rcache with
  | Some m -> Magazine.find_exn m ~pfn
  | None -> Allocator.find_exn t.allocator ~pfn

let iova_free t node =
  match t.rcache with
  | Some m -> Magazine.free m node
  | None -> Allocator.free t.allocator node

let pages_spanned ~phys ~bytes =
  let first = Addr.pfn phys in
  let last = Addr.pfn (Addr.add phys (bytes - 1)) in
  last - first + 1

(* The zero-alloc primary: breakdown attribution brackets each phase
   with Cycles.now/Breakdown.charge instead of closure-based
   Breakdown.phase, so the steady-state path allocates nothing. *)
let map_exn t ~phys ~bytes ~read ~write =
  if bytes <= 0 then invalid_arg "Driver.map: bytes";
  Breakdown.record_call t.bm;
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  Breakdown.charge t.bm Other t.cost.Cost_model.call_overhead;
  let npages = pages_spanned ~phys ~bytes in
  let s = Cycles.now t.clock in
  let iova_pfn = iova_alloc_pfn t ~size:npages in
  Breakdown.charge t.bm Iova_alloc (Cycles.since t.clock s);
  if iova_pfn < 0 then raise Exhausted;
  let s = Cycles.now t.clock in
  for i = 0 to npages - 1 do
    let pte = Pte.pack_make ~read ~write ~pfn:(Addr.pfn phys + i) in
    (* the allocator guarantees a fresh range, so Already_mapped cannot
       fire here *)
    Arena.map_exn t.domain.Context.Domain.table
      ~iova:((iova_pfn + i) lsl Addr.page_shift)
      ~pte
  done;
  Breakdown.charge t.bm Page_table (Cycles.since t.clock s);
  (iova_pfn lsl Addr.page_shift) lor Addr.page_offset phys

let map t ~phys ~bytes ~read ~write =
  match map_exn t ~phys ~bytes ~read ~write with
  | iova -> Ok iova
  | exception Exhausted -> Error `Exhausted

(* Release one IOVA range back to the allocator. Attributed to the unmap
   breakdown whether it runs inline (strict) or from a batched flush
   (deferred) - the cost is amortized over unmap calls either way. *)
let release t node = Breakdown.phase t.bu Iova_free (fun () -> iova_free t node)

let do_flush t =
  Breakdown.phase t.bu Iotlb_inv (fun () -> Iotlb.flush_all t.iotlb);
  Queue.iter (fun { node } -> release t node) t.queue;
  Queue.clear t.queue

(* Deferred-mode enqueue, split out of [unmap_exn] so the queue-record
   allocation stays outside the gated immediate path. *)
let defer_release t node ~batch =
  Cycles.charge t.clock (2 * t.cost.Cost_model.mem_ref_cached);
  Breakdown.charge t.bu Other (2 * t.cost.Cost_model.mem_ref_cached);
  Queue.add { node } t.queue;
  if Queue.length t.queue >= batch then do_flush t

let unmap_exn t ~iova =
  Breakdown.record_call t.bu;
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  Breakdown.charge t.bu Other t.cost.Cost_model.call_overhead;
  let pfn = iova lsr Addr.page_shift in
  let s = Cycles.now t.clock in
  match iova_find_exn t ~pfn with
  | exception Not_found ->
      Breakdown.charge t.bu Iova_find (Cycles.since t.clock s);
      raise Not_mapped
  | node ->
      Breakdown.charge t.bu Iova_find (Cycles.since t.clock s);
      let lo = Rio_iova.Rbtree.lo node and hi = Rio_iova.Rbtree.hi node in
      let s = Cycles.now t.clock in
      for p = lo to hi do
        (* map installed every page of the range, so Not_mapped cannot
           fire here *)
        ignore
          (Arena.unmap_exn t.domain.Context.Domain.table
             ~iova:(p lsl Addr.page_shift))
      done;
      Breakdown.charge t.bu Page_table (Cycles.since t.clock s);
      (match t.policy with
      | Immediate ->
          let s = Cycles.now t.clock in
          for p = lo to hi do
            Iotlb.invalidate t.iotlb ~bdf:t.rid ~vpn:p
          done;
          Breakdown.charge t.bu Iotlb_inv (Cycles.since t.clock s);
          let s = Cycles.now t.clock in
          iova_free t node;
          Breakdown.charge t.bu Iova_free (Cycles.since t.clock s)
      | Deferred { batch } ->
          (* Queueing is cheap; the IOVA stays allocated (and the stale
             IOTLB entry usable) until the batched flush. *)
          defer_release t node ~batch)

let unmap t ~iova =
  match unmap_exn t ~iova with
  | () -> Ok ()
  | exception Not_mapped -> Error `Not_mapped

let flush t = if not (Queue.is_empty t.queue) then do_flush t
let pending t = Queue.length t.queue
let map_breakdown t = t.bm
let unmap_breakdown t = t.bu
let live_mappings t = Arena.mapped_count t.domain.Context.Domain.table
let rcache t = t.rcache
