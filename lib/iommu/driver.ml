module Addr = Rio_memory.Addr
module Pte = Rio_pagetable.Pte
module Radix = Rio_pagetable.Radix
module Iotlb = Rio_iotlb.Iotlb
module Allocator = Rio_iova.Allocator
module Magazine = Rio_iova.Magazine
module Breakdown = Rio_sim.Breakdown
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

type policy = Immediate | Deferred of { batch : int }

type pending_unmap = { node : Rio_iova.Rbtree.node }

type t = {
  domain : Context.Domain.t;
  allocator : Allocator.t;
  rcache : Magazine.t option;  (* magazine cache in front of the allocator *)
  iotlb : Pte.t Iotlb.t;
  rid : int;
  policy : policy;
  clock : Cycles.t;
  cost : Cost_model.t;
  queue : pending_unmap Queue.t;
  bm : Breakdown.t;  (* map breakdown *)
  bu : Breakdown.t;  (* unmap breakdown *)
}

let create ?rcache ~domain ~allocator ~iotlb ~rid ~policy ~clock ~cost () =
  {
    domain;
    allocator;
    rcache;
    iotlb;
    rid;
    policy;
    clock;
    cost;
    queue = Queue.create ();
    bm = Breakdown.create ~clock;
    bu = Breakdown.create ~clock;
  }

let iova_alloc t ~size =
  match t.rcache with
  | Some m -> Magazine.alloc m ~size
  | None -> Allocator.alloc t.allocator ~size

let iova_find t ~pfn =
  match t.rcache with
  | Some m -> Magazine.find m ~pfn
  | None -> Allocator.find t.allocator ~pfn

let iova_free t node =
  match t.rcache with
  | Some m -> Magazine.free m node
  | None -> Allocator.free t.allocator node

let pages_spanned ~phys ~bytes =
  let first = Addr.pfn phys in
  let last = Addr.pfn (Addr.add phys (bytes - 1)) in
  last - first + 1

let map t ~phys ~bytes ~read ~write =
  if bytes <= 0 then invalid_arg "Driver.map: bytes";
  Breakdown.record_call t.bm;
  Breakdown.phase t.bm Other (fun () ->
      Cycles.charge t.clock t.cost.Cost_model.call_overhead);
  let npages = pages_spanned ~phys ~bytes in
  let alloc =
    Breakdown.phase t.bm Iova_alloc (fun () -> iova_alloc t ~size:npages)
  in
  match alloc with
  | Error `Exhausted -> Error `Exhausted
  | Ok iova_pfn ->
      Breakdown.phase t.bm Page_table (fun () ->
          for i = 0 to npages - 1 do
            let pte = Pte.make ~read ~write ~pfn:(Addr.pfn phys + i) () in
            match Radix.map t.domain.Context.Domain.table
                    ~iova:((iova_pfn + i) lsl Addr.page_shift) pte
            with
            | Ok () -> ()
            | Error `Already_mapped ->
                (* The allocator guarantees a fresh range. *)
                assert false
          done);
      Ok ((iova_pfn lsl Addr.page_shift) lor Addr.page_offset phys)

(* Release one IOVA range back to the allocator. Attributed to the unmap
   breakdown whether it runs inline (strict) or from a batched flush
   (deferred) - the cost is amortized over unmap calls either way. *)
let release t node = Breakdown.phase t.bu Iova_free (fun () -> iova_free t node)

let do_flush t =
  Breakdown.phase t.bu Iotlb_inv (fun () -> Iotlb.flush_all t.iotlb);
  Queue.iter (fun { node } -> release t node) t.queue;
  Queue.clear t.queue

let unmap t ~iova =
  Breakdown.record_call t.bu;
  Breakdown.phase t.bu Other (fun () ->
      Cycles.charge t.clock t.cost.Cost_model.call_overhead);
  let pfn = iova lsr Addr.page_shift in
  let node =
    Breakdown.phase t.bu Iova_find (fun () -> iova_find t ~pfn)
  in
  match node with
  | None -> Error `Not_mapped
  | Some node ->
      let lo = Rio_iova.Rbtree.lo node and hi = Rio_iova.Rbtree.hi node in
      Breakdown.phase t.bu Page_table (fun () ->
          for p = lo to hi do
            match Radix.unmap t.domain.Context.Domain.table
                    ~iova:(p lsl Addr.page_shift)
            with
            | Ok _ -> ()
            | Error `Not_mapped -> assert false
          done);
      (match t.policy with
      | Immediate ->
          Breakdown.phase t.bu Iotlb_inv (fun () ->
              for p = lo to hi do
                Iotlb.invalidate t.iotlb ~bdf:t.rid ~vpn:p
              done);
          release t node
      | Deferred { batch } ->
          (* Queueing is cheap; the IOVA stays allocated (and the stale
             IOTLB entry usable) until the batched flush. *)
          Breakdown.phase t.bu Other (fun () ->
              Cycles.charge t.clock (2 * t.cost.Cost_model.mem_ref_cached));
          Queue.add { node } t.queue;
          if Queue.length t.queue >= batch then do_flush t);
      Ok ()

let flush t = if not (Queue.is_empty t.queue) then do_flush t
let pending t = Queue.length t.queue
let map_breakdown t = t.bm
let unmap_breakdown t = t.bu
let live_mappings t = Radix.mapped_count t.domain.Context.Domain.table
let rcache t = t.rcache
