module Addr = Rio_memory.Addr
module Pte = Rio_pagetable.Pte
module Arena = Rio_pagetable.Arena
module Iotlb = Rio_iotlb.Iotlb

type fault = No_translation | Not_permitted | Unknown_device

let pp_fault fmt = function
  | No_translation -> Format.pp_print_string fmt "no translation"
  | Not_permitted -> Format.pp_print_string fmt "direction not permitted"
  | Unknown_device -> Format.pp_print_string fmt "unknown device"

(* IOTLB payloads are packed PTE immediates (Pte.pack): the hit path
   stays free of boxed payloads end to end. *)
type t = {
  context : Context.t;
  iotlb : int Iotlb.t;
  clock : Rio_sim.Cycles.t;
  cost : Rio_sim.Cost_model.t;
  mutable faults : int;
}

let create ~context ~iotlb ~clock ~cost =
  ignore clock;
  ignore cost;
  { context; iotlb; clock; cost; faults = 0 }

let fault t f =
  t.faults <- t.faults + 1;
  Error f

let permit t pte ~iova ~write =
  if not (Pte.packed_permits pte ~write) then fault t Not_permitted
  else Ok (Addr.add (Pte.packed_frame pte) (iova land (Addr.page_size - 1)))

let translate t ~rid ~iova ~write =
  match Context.lookup t.context ~rid with
  | None -> fault t Unknown_device
  | Some domain -> (
      let vpn = iova lsr Addr.page_shift in
      (* allocation-free hit path: no option boxing on the IOTLB hit *)
      match Iotlb.find_exn t.iotlb ~bdf:rid ~vpn with
      | pte -> permit t pte ~iova ~write
      | exception Not_found ->
          let pte = Arena.walk domain.Context.Domain.table ~iova in
          if pte >= 0 then begin
            Iotlb.insert t.iotlb ~bdf:rid ~vpn pte;
            permit t pte ~iova ~write
          end
          else fault t No_translation)

exception Translation_fault

(* Allocation-free twin of [translate] for steady-state probes: no
   fault/result boxes on the hit path, one constant exception for every
   fault class. Fault accounting is identical to [translate] — the
   counter is bumped before the exception escapes. *)
let translate_exn t ~rid ~iova ~write =
  let domain =
    try Context.lookup_exn t.context ~rid
    with Not_found ->
      t.faults <- t.faults + 1;
      raise Translation_fault
  in
  let vpn = iova lsr Addr.page_shift in
  let offset = iova land (Addr.page_size - 1) in
  match Iotlb.find_exn t.iotlb ~bdf:rid ~vpn with
  | pte ->
      if Pte.packed_permits pte ~write then Addr.add (Pte.packed_frame pte) offset
      else begin
        t.faults <- t.faults + 1;
        raise Translation_fault
      end
  | exception Not_found ->
      let pte = Arena.walk domain.Context.Domain.table ~iova in
      if pte >= 0 then begin
        Iotlb.insert t.iotlb ~bdf:rid ~vpn pte;
        if Pte.packed_permits pte ~write then
          Addr.add (Pte.packed_frame pte) offset
        else begin
          t.faults <- t.faults + 1;
          raise Translation_fault
        end
      end
      else begin
        t.faults <- t.faults + 1;
        raise Translation_fault
      end

let faults t = t.faults
let iotlb t = t.iotlb
