module Addr = Rio_memory.Addr
module Pte = Rio_pagetable.Pte
module Radix = Rio_pagetable.Radix
module Iotlb = Rio_iotlb.Iotlb

type fault = No_translation | Not_permitted | Unknown_device

let pp_fault fmt = function
  | No_translation -> Format.pp_print_string fmt "no translation"
  | Not_permitted -> Format.pp_print_string fmt "direction not permitted"
  | Unknown_device -> Format.pp_print_string fmt "unknown device"

type t = {
  context : Context.t;
  iotlb : Pte.t Iotlb.t;
  clock : Rio_sim.Cycles.t;
  cost : Rio_sim.Cost_model.t;
  mutable faults : int;
}

let create ~context ~iotlb ~clock ~cost =
  ignore clock;
  ignore cost;
  { context; iotlb; clock; cost; faults = 0 }

let fault t f =
  t.faults <- t.faults + 1;
  Error f

let permit t pte ~iova ~write =
  if not (Pte.permits pte ~write) then fault t Not_permitted
  else Ok (Addr.add (Pte.frame pte) (iova land (Addr.page_size - 1)))

let translate t ~rid ~iova ~write =
  match Context.lookup t.context ~rid with
  | None -> fault t Unknown_device
  | Some domain -> (
      let vpn = iova lsr Addr.page_shift in
      (* allocation-free hit path: no option boxing on the IOTLB hit *)
      match Iotlb.find_exn t.iotlb ~bdf:rid ~vpn with
      | pte -> permit t pte ~iova ~write
      | exception Not_found -> (
          match Radix.walk domain.Context.Domain.table ~iova with
          | Some pte ->
              Iotlb.insert t.iotlb ~bdf:rid ~vpn pte;
              permit t pte ~iova ~write
          | None -> fault t No_translation))

let faults t = t.faults
let iotlb t = t.iotlb
