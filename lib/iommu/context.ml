module Domain = struct
  type t = { id : int; table : Rio_pagetable.Arena.t }

  let make ~id ~table = { id; table }
end

type t = { entries : (int, Domain.t) Hashtbl.t }

let create () = { entries = Hashtbl.create 16 }
let attach t bdf domain = Hashtbl.replace t.entries (Bdf.to_rid bdf) domain
let detach t bdf = Hashtbl.remove t.entries (Bdf.to_rid bdf)
let lookup t ~rid = Hashtbl.find_opt t.entries rid
let lookup_exn t ~rid = Hashtbl.find t.entries rid
let attached t = Hashtbl.length t.entries
