(** The baseline IOMMU hardware translation path (Figure 5).

    Every DMA address is intercepted here: IOTLB lookup, table walk on a
    miss (filling the IOTLB), then permission and presence checks. DMAs
    are not restartable (§2.2): a failed walk or permission violation is
    an I/O page fault, which in practice means the OS reinitializes the
    device. *)

type fault =
  | No_translation  (** no valid mapping for the IOVA *)
  | Not_permitted  (** mapping exists but forbids this DMA direction *)
  | Unknown_device  (** request identifier has no context entry *)

val pp_fault : Format.formatter -> fault -> unit

type t

val create :
  context:Context.t ->
  iotlb:int Rio_iotlb.Iotlb.t ->
  clock:Rio_sim.Cycles.t ->
  cost:Rio_sim.Cost_model.t ->
  t
(** The IOTLB carries packed PTE immediates ({!Rio_pagetable.Pte.pack})
    so the hit path stays free of boxed payloads. *)

val translate :
  t -> rid:int -> iova:int -> write:bool -> (Rio_memory.Addr.phys, fault) result
(** Translate one DMA address. [write] is the DMA direction seen from
    memory (a device write into memory needs write permission). *)

exception Translation_fault
(** Constant exception raised by {!translate_exn} for every fault
    class, so the fast path never builds a fault value. *)

val translate_exn : t -> rid:int -> iova:int -> write:bool -> Rio_memory.Addr.phys
(** Allocation-free {!translate}: the IOTLB-hit path returns the
    physical address with no result/option boxing, and every fault
    raises the constant {!Translation_fault} (the counter behind
    {!faults} is bumped exactly as [translate] would). *)

val faults : t -> int
(** I/O page faults raised so far. *)

val iotlb : t -> int Rio_iotlb.Iotlb.t
