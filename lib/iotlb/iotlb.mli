(** The baseline IOMMU's IOTLB: a bounded translation cache.

    Keyed by (device bdf, virtual page number), LRU-evicted at capacity.
    Entries are inserted by the hardware on a table-walk miss and removed
    either by an explicit single-entry invalidation (whose ~2,100-cycle
    command cost is the dominant unmap component of Table 1) or by a
    global flush (the deferred modes' batching strategy).

    The deferred modes' vulnerability window is directly observable: an
    entry stays usable after the OS unmapped the page until the flush
    arrives.

    Implementation: the (bdf, vpn) key is packed into a single immediate
    int, the table is open-addressing over int arrays, and the LRU is an
    intrusive index-based list — steady-state lookup, insert and
    invalidate allocate nothing. *)

type 'a t

val create :
  ?on_evict:(bdf:int -> vpn:int -> unit) ->
  capacity:int ->
  clock:Rio_sim.Cycles.t ->
  cost:Rio_sim.Cost_model.t ->
  unit ->
  'a t
(** [capacity] entries, fully associative, LRU replacement. [on_evict]
    is called for every capacity eviction (not for explicit
    invalidations or flushes) with the victim's key — the hook the
    multi-tenant layer uses to attribute cross-domain evictions. *)

val lookup : 'a t -> bdf:int -> vpn:int -> 'a option
(** Hardware lookup: charges the (device-side) lookup cost, updates LRU
    and hit/miss counters. *)

val find_exn : 'a t -> bdf:int -> vpn:int -> 'a
(** Exactly {!lookup} (same cost charge, counters and LRU promotion) but
    allocation-free: raises [Not_found] on a miss instead of boxing the
    hit in an option. The hot translate paths use this. *)

val insert : 'a t -> bdf:int -> vpn:int -> 'a -> unit
(** Fill after a table walk; evicts the LRU entry at capacity. *)

val invalidate : 'a t -> bdf:int -> vpn:int -> unit
(** Explicit single-entry invalidation: charges the full invalidation
    command cost whether or not the entry is present (the OS cannot
    know). *)

val flush_all : 'a t -> unit
(** Global flush: drops every entry, charging one flush-command cost. *)

val drop : 'a t -> bdf:int -> vpn:int -> bool
(** Remove an entry without charging any cycle cost; returns whether it
    was present. Building block for scoped (domain-selective)
    invalidation, whose single command cost the caller charges itself. *)

val iter : 'a t -> (bdf:int -> vpn:int -> 'a -> unit) -> unit
(** Visit every resident entry (MRU first). No cycle cost: used by OS
    bookkeeping layers, not by the hardware path. *)

val occupancy : 'a t -> int
val capacity : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
val reset_stats : 'a t -> unit
