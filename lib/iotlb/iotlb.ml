module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

(* LRU via a doubly-linked list threaded through entries + a hash table
   from key to entry. *)

type key = { bdf : int; vpn : int }

type 'a entry = {
  key : key;
  mutable value : 'a;
  mutable prev : 'a entry option;  (* toward MRU *)
  mutable next : 'a entry option;  (* toward LRU *)
}

type 'a t = {
  capacity : int;
  table : (key, 'a entry) Hashtbl.t;
  mutable mru : 'a entry option;
  mutable lru : 'a entry option;
  clock : Cycles.t;
  cost : Cost_model.t;
  on_evict : (bdf:int -> vpn:int -> unit) option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?on_evict ~capacity ~clock ~cost () =
  if capacity <= 0 then invalid_arg "Iotlb.create: capacity";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    mru = None;
    lru = None;
    clock;
    cost;
    on_evict;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.mru <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.mru;
  e.prev <- None;
  (match t.mru with Some m -> m.prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e

let lookup t ~bdf ~vpn =
  Cycles.charge t.clock t.cost.Cost_model.iotlb_lookup;
  match Hashtbl.find_opt t.table { bdf; vpn } with
  | Some e ->
      t.hits <- t.hits + 1;
      unlink t e;
      push_front t e;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

let insert t ~bdf ~vpn value =
  let key = { bdf; vpn } in
  match Hashtbl.find_opt t.table key with
  | Some e ->
      e.value <- value;
      unlink t e;
      push_front t e
  | None ->
      if Hashtbl.length t.table >= t.capacity then begin
        match t.lru with
        | Some victim ->
            unlink t victim;
            Hashtbl.remove t.table victim.key;
            t.evictions <- t.evictions + 1;
            (match t.on_evict with
            | Some hook -> hook ~bdf:victim.key.bdf ~vpn:victim.key.vpn
            | None -> ())
        | None -> ()
      end;
      let e = { key; value; prev = None; next = None } in
      Hashtbl.add t.table key e;
      push_front t e

let invalidate t ~bdf ~vpn =
  Cycles.charge t.clock t.cost.Cost_model.iotlb_invalidate;
  let key = { bdf; vpn } in
  match Hashtbl.find_opt t.table key with
  | Some e ->
      unlink t e;
      Hashtbl.remove t.table key
  | None -> ()

let flush_all t =
  Cycles.charge t.clock t.cost.Cost_model.iotlb_global_flush;
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None

let drop t ~bdf ~vpn =
  let key = { bdf; vpn } in
  match Hashtbl.find_opt t.table key with
  | Some e ->
      unlink t e;
      Hashtbl.remove t.table key;
      true
  | None -> false

let iter t f =
  let rec go = function
    | None -> ()
    | Some e ->
        let next = e.next in
        f ~bdf:e.key.bdf ~vpn:e.key.vpn e.value;
        go next
  in
  go t.mru

let occupancy t = Hashtbl.length t.table
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
