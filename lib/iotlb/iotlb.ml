module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

(* Zero-allocation IOTLB: the (bdf, vpn) key is packed into one immediate
   int, the hash table is open-addressing (linear probing, backward-shift
   deletion) over int arrays, and the LRU is intrusive - prev/next are
   int arrays indexed by entry slot, with [-1] as the null link. Steady
   state lookup/insert/invalidate touch no allocator at all.

   Entry storage is struct-of-arrays: [e_key], [e_val], [e_prev],
   [e_next], all of length [capacity]. Free entry slots are chained
   through [e_next]. The probe table [slots] maps hash positions to
   entry indices (-1 = empty) and is sized to keep load factor <= 1/2. *)

let vpn_bits = 36 (* 48-bit IOVA space, 4 KiB pages *)
let vpn_mask = (1 lsl vpn_bits) - 1
let max_bdf = (1 lsl (62 - vpn_bits)) - 1

let pack ~bdf ~vpn =
  if bdf < 0 || bdf > max_bdf then invalid_arg "Iotlb: bdf out of range";
  if vpn < 0 || vpn > vpn_mask then invalid_arg "Iotlb: vpn out of range";
  (bdf lsl vpn_bits) lor vpn

let key_bdf key = key lsr vpn_bits
let key_vpn key = key land vpn_mask

type 'a t = {
  capacity : int;
  mask : int;  (* probe table size - 1 (power of two) *)
  slots : int array;  (* hash position -> entry index, -1 = empty *)
  e_key : int array;
  e_val : 'a array;
  e_prev : int array;  (* toward MRU *)
  e_next : int array;  (* toward LRU; also the free-list link *)
  mutable mru : int;
  mutable lru : int;
  mutable free : int;  (* head of free entry list *)
  mutable len : int;
  clock : Cycles.t;
  cost : Cost_model.t;
  on_evict : (bdf:int -> vpn:int -> unit) option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

(* Entry-value slots are cleared to this immediate on release so popped
   payloads are not pinned. Safe because the arrays are created from the
   same immediate (never a float), so they are uniform boxed arrays. *)
let null_value : 'a. unit -> 'a = fun () -> Obj.magic 0

(* smallest power of two >= 2*capacity, floor 16 *)
let probe_size capacity =
  let rec go s = if s >= 2 * capacity then s else go (2 * s) in
  go 16

let create ?on_evict ~capacity ~clock ~cost () =
  if capacity <= 0 then invalid_arg "Iotlb.create: capacity";
  let psize = probe_size capacity in
  let t =
    {
      capacity;
      mask = psize - 1;
      slots = Array.make psize (-1);
      e_key = Array.make capacity (-1);
      e_val = Array.make capacity (null_value ());
      e_prev = Array.make capacity (-1);
      e_next = Array.make capacity (-1);
      mru = -1;
      lru = -1;
      free = 0;
      len = 0;
      clock;
      cost;
      on_evict;
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  for i = 0 to capacity - 2 do
    t.e_next.(i) <- i + 1
  done;
  t.e_next.(capacity - 1) <- -1;
  t

(* Fibonacci-style multiplicative hash of the packed key. Only wall-clock
   behaviour depends on this; simulated cycles never do. *)
let hash t key = (key * 0x2545F4914F6CDD1D) land max_int land t.mask

(* Probe position for [key]: either its occupied slot or the empty slot
   where it would be inserted. *)
let find_slot t key =
  let i = ref (hash t key) in
  while
    let e = t.slots.(!i) in
    e >= 0 && t.e_key.(e) <> key
  do
    i := (!i + 1) land t.mask
  done;
  !i

(* Backward-shift deletion keeps probe chains contiguous without
   tombstones: after emptying [pos], any later entry in the cluster whose
   home position lies outside (pos, j] is moved back to fill the hole. *)
let slot_remove t pos =
  let i = ref pos and j = ref pos in
  let continue = ref true in
  while !continue do
    t.slots.(!i) <- -1;
    let stop = ref false in
    while not !stop do
      j := (!j + 1) land t.mask;
      let e = t.slots.(!j) in
      if e < 0 then begin
        stop := true;
        continue := false
      end
      else begin
        let home = hash t t.e_key.(e) in
        let between =
          if !i <= !j then !i < home && home <= !j
          else !i < home || home <= !j
        in
        if not between then stop := true
      end
    done;
    if !continue then begin
      t.slots.(!i) <- t.slots.(!j);
      i := !j
    end
  done

(* {2 Intrusive LRU over e_prev/e_next} *)

let unlink t e =
  let p = t.e_prev.(e) and n = t.e_next.(e) in
  if p >= 0 then t.e_next.(p) <- n else t.mru <- n;
  if n >= 0 then t.e_prev.(n) <- p else t.lru <- p;
  t.e_prev.(e) <- -1;
  t.e_next.(e) <- -1

let push_front t e =
  t.e_next.(e) <- t.mru;
  t.e_prev.(e) <- -1;
  if t.mru >= 0 then t.e_prev.(t.mru) <- e else t.lru <- e;
  t.mru <- e

let promote t e =
  if t.mru <> e then begin
    unlink t e;
    push_front t e
  end

let find_exn t ~bdf ~vpn =
  Cycles.charge t.clock t.cost.Cost_model.iotlb_lookup;
  let key = pack ~bdf ~vpn in
  let e = t.slots.(find_slot t key) in
  if e >= 0 then begin
    t.hits <- t.hits + 1;
    promote t e;
    t.e_val.(e)
  end
  else begin
    t.misses <- t.misses + 1;
    raise Not_found
  end

let lookup t ~bdf ~vpn =
  match find_exn t ~bdf ~vpn with
  | v -> Some v
  | exception Not_found -> None

(* Detach an entry: remove from hash and LRU, return it to the free list,
   and clear its value slot so the payload is released. *)
let detach t e key =
  slot_remove t (find_slot t key);
  unlink t e;
  t.e_key.(e) <- -1;
  t.e_val.(e) <- null_value ();
  t.e_next.(e) <- t.free;
  t.free <- e;
  t.len <- t.len - 1

let insert t ~bdf ~vpn value =
  let key = pack ~bdf ~vpn in
  let pos = find_slot t key in
  let e = t.slots.(pos) in
  if e >= 0 then begin
    t.e_val.(e) <- value;
    promote t e
  end
  else begin
    if t.len >= t.capacity then begin
      let victim = t.lru in
      if victim >= 0 then begin
        let vkey = t.e_key.(victim) in
        detach t victim vkey;
        t.evictions <- t.evictions + 1;
        match t.on_evict with
        | Some hook -> hook ~bdf:(key_bdf vkey) ~vpn:(key_vpn vkey)
        | None -> ()
      end
    end;
    (* re-probe: the eviction may have shifted the cluster *)
    let pos = find_slot t key in
    let e = t.free in
    t.free <- t.e_next.(e);
    t.e_key.(e) <- key;
    t.e_val.(e) <- value;
    t.e_prev.(e) <- -1;
    t.e_next.(e) <- -1;
    t.slots.(pos) <- e;
    t.len <- t.len + 1;
    push_front t e
  end

let invalidate t ~bdf ~vpn =
  Cycles.charge t.clock t.cost.Cost_model.iotlb_invalidate;
  let key = pack ~bdf ~vpn in
  let e = t.slots.(find_slot t key) in
  if e >= 0 then detach t e key

let flush_all t =
  Cycles.charge t.clock t.cost.Cost_model.iotlb_global_flush;
  Array.fill t.slots 0 (Array.length t.slots) (-1);
  Array.fill t.e_key 0 t.capacity (-1);
  Array.fill t.e_val 0 t.capacity (null_value ());
  for i = 0 to t.capacity - 2 do
    t.e_prev.(i) <- -1;
    t.e_next.(i) <- i + 1
  done;
  t.e_prev.(t.capacity - 1) <- -1;
  t.e_next.(t.capacity - 1) <- -1;
  t.free <- 0;
  t.mru <- -1;
  t.lru <- -1;
  t.len <- 0

let drop t ~bdf ~vpn =
  let key = pack ~bdf ~vpn in
  let e = t.slots.(find_slot t key) in
  if e >= 0 then begin
    detach t e key;
    true
  end
  else false

let iter t f =
  let rec go e =
    if e >= 0 then begin
      let next = t.e_next.(e) in
      f ~bdf:(key_bdf t.e_key.(e)) ~vpn:(key_vpn t.e_key.(e)) t.e_val.(e);
      go next
    end
  in
  go t.mru

let occupancy t = t.len
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
