type t = {
  mem_ref_uncached : int;
  mem_ref_cached : int;
  barrier : int;
  cacheline_flush : int;
  iotlb_invalidate : int;
  iotlb_global_flush : int;
  iotlb_lookup : int;
  tree_ref : int;
  io_walk_ref : int;
  pt_node_alloc : int;
  call_overhead : int;
  clock_ghz : float;
}

let default =
  {
    mem_ref_uncached = 55;
    mem_ref_cached = 4;
    barrier = 30;
    cacheline_flush = 220;
    iotlb_invalidate = 2100;
    iotlb_global_flush = 2200;
    iotlb_lookup = 12;
    tree_ref = 30;
    io_walk_ref = 380;
    pt_node_alloc = 250;
    call_overhead = 22;
    clock_ghz = 3.10;
  }

(* Every page-table implementation (boxed radix, flat arena) must charge
   node allocation through this single entry point so their accounting
   cannot drift: one fresh table page = one [pt_node_alloc] charge. *)
let charge_node_alloc t clock = Cycles.charge clock t.pt_node_alloc

let cycles_per_second t = t.clock_ghz *. 1e9
let cycles_to_ns t c = float_of_int c /. t.clock_ghz
let cycles_to_us t c = cycles_to_ns t c /. 1000.
