(** Calibrated primitive cycle costs.

    The simulation charges cycles at the granularity of architectural
    primitives (memory references, barriers, cacheline flushes, IOMMU
    invalidation commands). Component costs such as "IOVA allocation" or
    "page-table insertion" are not constants: they emerge from the number
    of primitives the real algorithms execute. The default preset is
    calibrated so that the emergent component costs land near the values
    the paper reports in Table 1 for the Intel Xeon E3-1220 testbed. *)

type t = {
  mem_ref_uncached : int;
      (** A memory reference that misses in the CPU caches (pointer chase
          through a large red-black tree or page-table page). *)
  mem_ref_cached : int;
      (** A memory reference expected to hit in the CPU caches. *)
  barrier : int;  (** A full memory barrier ([mfence]-class). *)
  cacheline_flush : int;
      (** An explicit cacheline flush ([clflush]-class), required when the
          IOMMU page walker is not coherent with the CPU caches. *)
  iotlb_invalidate : int;
      (** Invalidating a single IOTLB entry: issuing the invalidation
          command to the IOMMU and waiting for completion. The paper
          measures ~2,127-2,135 cycles (Table 1) and busy-waits 2,150
          cycles in its own rIOMMU simulation (§5.1). *)
  iotlb_global_flush : int;
      (** Flushing the entire IOTLB (used by the deferred modes every 250
          accumulated unmaps). *)
  iotlb_lookup : int;
      (** An IOTLB lookup performed by the IOMMU hardware. Off the critical
          path of the core (§3.3) but accounted for device-side latency
          experiments (§5.3). *)
  tree_ref : int;
      (** One pointer chase through the IOVA red-black tree (partially
          cache-resident: warmer than a cold DRAM miss). The linear-scan
          allocation pathology multiplies this by the number of live
          IOVAs scanned. *)
  io_walk_ref : int;
      (** One DRAM reference made by the IOMMU page walker during a table
          walk. §5.3 measures an IOTLB miss (a 4-reference walk) at ~1,532
          cycles, i.e. ~380 cycles per reference. *)
  pt_node_alloc : int;
      (** Allocating and zeroing a fresh page-table page (rare in steady
          state: the hierarchy persists across map/unmap). *)
  call_overhead : int;
      (** Fixed bookkeeping per driver entry point (function call, locking,
          argument marshalling): the "other" rows of Table 1. *)
  clock_ghz : float;  (** Core clock in GHz; the testbed runs at 3.10. *)
}

val default : t
(** Calibration used throughout the reproduction (see DESIGN.md §4). *)

val charge_node_alloc : t -> Cycles.t -> unit
(** Charge the cost of allocating and zeroing one fresh page-table page
    ([pt_node_alloc]). Every page-table implementation must account node
    allocation through this one code path so that the boxed radix
    reference and the flat arena cannot drift in their bookkeeping. *)

val cycles_to_ns : t -> int -> float
(** Convert a cycle count to nanoseconds at [clock_ghz]. *)

val cycles_to_us : t -> int -> float
(** Convert a cycle count to microseconds at [clock_ghz]. *)

val cycles_per_second : t -> float
(** [clock_ghz] expressed in cycles per second. *)
