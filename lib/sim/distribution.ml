type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Zipf of int * float
  | Bernoulli_mix of float * t * t

(* Zipf sampling by inverse transform over the precomputed CDF would need a
   table per call site; for simulation workloads a rejection-free harmonic
   walk is fast enough at the n (tens of thousands) we use. We memoize the
   normalization constant per (n, s) - domain-safely, since experiment
   cells sampling Zipf workloads may run concurrently on a pool. *)
let zipf_norm_cache : (int * float, float) Rio_exec.Memo.t =
  Rio_exec.Memo.create ~size:8 ()

let zipf_norm n s =
  Rio_exec.Memo.find_or_add zipf_norm_cache (n, s) (fun () ->
      let z = ref 0. in
      for k = 1 to n do
        z := !z +. (1. /. Float.pow (float_of_int k) s)
      done;
      !z)

let rec sample t rng =
  match t with
  | Constant c -> c
  | Uniform (lo, hi) -> lo +. Rng.float rng (hi -. lo)
  | Exponential rate ->
      let u = 1. -. Rng.float rng 1.0 in
      -.log u /. rate
  | Zipf (n, s) ->
      let z = zipf_norm n s in
      let u = Rng.float rng 1.0 *. z in
      let rec walk k acc =
        if k > n then float_of_int n
        else begin
          let acc = acc +. (1. /. Float.pow (float_of_int k) s) in
          if acc >= u then float_of_int k else walk (k + 1) acc
        end
      in
      walk 1 0.
  | Bernoulli_mix (p, a, b) ->
      if Rng.bernoulli rng p then sample a rng else sample b rng

let sample_int t rng = int_of_float (sample t rng)

let rec mean = function
  | Constant c -> c
  | Uniform (lo, hi) -> (lo +. hi) /. 2.
  | Exponential rate -> 1. /. rate
  | Zipf (n, s) ->
      let z = zipf_norm n s in
      let num = ref 0. in
      for k = 1 to n do
        num := !num +. (float_of_int k /. Float.pow (float_of_int k) s)
      done;
      !num /. z
  | Bernoulli_mix (p, a, b) -> (p *. mean a) +. ((1. -. p) *. mean b)
