(* Structure-of-arrays binary min-heap: [times] and [seqs] are unboxed
   int arrays, [payloads] holds the scheduled values. Steady-state push
   and pop allocate nothing; payload slots are cleared on pop so popped
   values are released to the GC rather than pinned by the heap's spare
   capacity. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable len : int;
  mutable next_seq : int;
}

(* Empty payload slots hold this immediate. The payload array is created
   from it (never from a user value), so the array is uniform even when
   ['a] is [float] and no payload outlives its pop. *)
let null_payload : 'a. unit -> 'a = fun () -> Obj.magic 0

let create () =
  { times = [||]; seqs = [||]; payloads = [||]; len = 0; next_seq = 0 }

let is_empty t = t.len = 0
let length t = t.len

let earlier t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let tm = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tm;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let p = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- p

let grow t =
  let cap = Array.length t.times in
  if t.len = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let times = Array.make ncap 0 in
    let seqs = Array.make ncap 0 in
    let payloads = Array.make ncap (null_payload ()) in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.seqs 0 seqs 0 t.len;
    Array.blit t.payloads 0 payloads 0 t.len;
    t.times <- times;
    t.seqs <- seqs;
    t.payloads <- payloads
  end

let push t ~time payload =
  grow t;
  let i = ref t.len in
  t.times.(!i) <- time;
  t.seqs.(!i) <- t.next_seq;
  t.payloads.(!i) <- payload;
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  while !i > 0 && earlier t !i ((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    swap t !i parent;
    i := parent
  done

let pop_exn t =
  if t.len = 0 then raise Not_found;
  let payload = t.payloads.(0) in
  let n = t.len - 1 in
  t.len <- n;
  t.times.(0) <- t.times.(n);
  t.seqs.(0) <- t.seqs.(n);
  t.payloads.(0) <- t.payloads.(n);
  t.payloads.(n) <- null_payload ();
  (* sift down *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < n && earlier t l !smallest then smallest := l;
    if r < n && earlier t r !smallest then smallest := r;
    if !smallest = !i then continue := false
    else begin
      swap t !i !smallest;
      i := !smallest
    end
  done;
  payload

let next_time t =
  if t.len = 0 then raise Not_found;
  t.times.(0)

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) in
    let payload = pop_exn t in
    Some (time, payload)
  end

let peek_time t = if t.len = 0 then None else Some t.times.(0)
