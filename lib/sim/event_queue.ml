(* Hierarchical timing wheel over a structure-of-arrays event pool.

   Virtual time is a 63-bit non-negative int; the wheel has 8 levels of
   256 slots, one level per byte of the time value. An event's level is
   the highest byte in which its time differs from [base] (the wheel
   cursor, always <= every time stored in the wheel); its slot is that
   byte of its time. A level-0 slot therefore holds exactly one
   timestamp, and because slots are tail-appended FIFO lists, popping a
   level-0 slot head preserves insertion order within a timestamp —
   exactly the (time, seq) tie-break the old SoA heap provided.

   Advancing the cursor cascades: the first occupied slot of the lowest
   occupied level is drained in list order and its events re-enqueued
   relative to the new base, which keeps same-time events in sequence
   order (stable redistribution).

   Pushes *behind* the cursor (time < base) — rare, but the scheduler
   and randomized model tests do it — go to a small SoA min-heap
   ordered by (time, seq). Every overdue time is strictly below [base]
   and every wheel time is >= [base], so the heap always drains first
   and no tie can straddle the two structures.

   Steady-state [push], [pop_exn] and [next_time] allocate nothing
   (growth lives in separate helper functions); payload slots are
   cleared on pop so popped values are released to the GC rather than
   pinned by the pool's spare capacity. *)

let levels = 8
let slots = 256 (* per level: one byte of the time value *)
let occ_words = slots / 32 (* occupancy bitmap words per level *)

type 'a t = {
  (* Event pool (SoA): times/seqs/payloads indexed by event id; [nexts]
     threads both the intra-slot FIFO lists and the pool freelist. *)
  mutable times : int array;
  mutable seqs : int array;
  mutable nexts : int array;
  mutable payloads : 'a array;
  mutable free : int; (* pool freelist head, -1 = none *)
  (* Wheel: heads/tails of the per-slot lists (levels * slots entries,
     -1 = empty) and a per-level occupancy bitmap. *)
  heads : int array;
  tails : int array;
  occ : int array;
  mutable base : int; (* cursor: every wheel event has time >= base *)
  (* Overdue min-heap (pool indices, ordered by (time, seq)) for pushes
     with time < base. *)
  mutable heap : int array;
  mutable heap_len : int;
  mutable len : int;
  mutable next_seq : int;
}

(* Empty payload slots hold this immediate. The payload array is created
   from it (never from a user value), so the array is uniform even when
   ['a] is [float] and no payload outlives its pop. *)
let null_payload : 'a. unit -> 'a = fun () -> Obj.magic 0

let create () =
  {
    times = [||];
    seqs = [||];
    nexts = [||];
    payloads = [||];
    free = -1;
    heads = Array.make (levels * slots) (-1);
    tails = Array.make (levels * slots) (-1);
    occ = Array.make (levels * occ_words) 0;
    base = 0;
    heap = [||];
    heap_len = 0;
    len = 0;
    next_seq = 0;
  }

let is_empty t = t.len = 0
let length t = t.len

(* -- event pool -- *)

let pool_grow t =
  let cap = Array.length t.times in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let times = Array.make ncap 0 in
  let seqs = Array.make ncap 0 in
  let nexts = Array.make ncap (-1) in
  let payloads = Array.make ncap (null_payload ()) in
  Array.blit t.times 0 times 0 cap;
  Array.blit t.seqs 0 seqs 0 cap;
  Array.blit t.nexts 0 nexts 0 cap;
  Array.blit t.payloads 0 payloads 0 cap;
  (* grow is only entered with an exhausted freelist: thread the new
     slots onto it *)
  for i = cap to ncap - 2 do
    nexts.(i) <- i + 1
  done;
  nexts.(ncap - 1) <- -1;
  t.free <- cap;
  t.times <- times;
  t.seqs <- seqs;
  t.nexts <- nexts;
  t.payloads <- payloads

let pool_alloc t ~time payload =
  if t.free = -1 then pool_grow t;
  let e = t.free in
  t.free <- t.nexts.(e);
  t.times.(e) <- time;
  t.seqs.(e) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.nexts.(e) <- -1;
  t.payloads.(e) <- payload;
  e

let pool_free t e =
  t.payloads.(e) <- null_payload ();
  t.nexts.(e) <- t.free;
  t.free <- e

(* -- wheel -- *)

(* Index of the single set bit in [b] (a power of two). *)
let bit_index b =
  let i = ref 0 in
  let b = ref b in
  if !b land 0xFFFF = 0 then begin
    i := !i + 16;
    b := !b lsr 16
  end;
  if !b land 0xFF = 0 then begin
    i := !i + 8;
    b := !b lsr 8
  end;
  if !b land 0xF = 0 then begin
    i := !i + 4;
    b := !b lsr 4
  end;
  if !b land 0x3 = 0 then begin
    i := !i + 2;
    b := !b lsr 2
  end;
  if !b land 0x1 = 0 then incr i;
  !i

(* Level of an event at [time] >= base: the highest byte where it
   differs from the cursor (0 when equal). *)
let level_of t time =
  let x = ref ((time lxor t.base) lsr 8) in
  let l = ref 0 in
  while !x <> 0 do
    incr l;
    x := !x lsr 8
  done;
  !l

let occ_set t level slot =
  let w = (level * occ_words) + (slot lsr 5) in
  t.occ.(w) <- t.occ.(w) lor (1 lsl (slot land 31))

let occ_clear t level slot =
  let w = (level * occ_words) + (slot lsr 5) in
  t.occ.(w) <- t.occ.(w) land lnot (1 lsl (slot land 31))

(* First occupied slot of [level] at index >= [from], or -1. *)
let first_slot t level from =
  let res = ref (-1) in
  let w = ref (from lsr 5) in
  let x = ref (t.occ.((level * occ_words) + !w) land ((-1) lsl (from land 31))) in
  while !res = -1 && !w < occ_words do
    if !x <> 0 then res := (!w lsl 5) + bit_index (!x land (- !x))
    else begin
      incr w;
      if !w < occ_words then x := t.occ.((level * occ_words) + !w)
    end
  done;
  !res

(* Append event [e] (time >= base) to the tail of its slot list. *)
let enqueue t e =
  let time = t.times.(e) in
  let level = level_of t time in
  let slot = (time lsr (8 * level)) land (slots - 1) in
  let i = (level * slots) + slot in
  t.nexts.(e) <- -1;
  if t.tails.(i) = -1 then begin
    t.heads.(i) <- e;
    occ_set t level slot
  end
  else t.nexts.(t.tails.(i)) <- e;
  t.tails.(i) <- e

(* Advance the cursor to the earliest event and return the pool index
   of the level-0 slot head holding it. Caller guarantees the wheel is
   non-empty (len - heap_len > 0). Internal mutation only: observable
   state (event set, pop order) is unchanged. *)
let ensure_wheel t =
  let head = ref (-1) in
  while !head = -1 do
    let s0 = first_slot t 0 (t.base land (slots - 1)) in
    if s0 >= 0 then begin
      t.base <- (t.base land lnot (slots - 1)) lor s0;
      head := t.heads.(s0)
    end
    else begin
      (* level 0 dry: drain the first occupied slot of the lowest
         occupied level and redistribute it relative to the new base *)
      let level = ref 1 in
      let slot = ref (-1) in
      while !slot = -1 && !level < levels do
        slot := first_slot t !level 0;
        if !slot = -1 then incr level
      done;
      if !slot = -1 then invalid_arg "Event_queue: wheel empty";
      let k = !level and s = !slot in
      let shift = 8 * (k + 1) in
      t.base <- ((t.base lsr shift) lsl shift) lor (s lsl (8 * k));
      let i = (k * slots) + s in
      let e = ref t.heads.(i) in
      t.heads.(i) <- -1;
      t.tails.(i) <- -1;
      occ_clear t k s;
      (* walk in list order so same-time events keep their sequence
         order in the destination slots (stable redistribution) *)
      while !e <> -1 do
        let nxt = t.nexts.(!e) in
        enqueue t !e;
        e := nxt
      done
    end
  done;
  !head

(* -- overdue heap (pool indices ordered by (time, seq)) -- *)

let heap_earlier t a b =
  t.times.(a) < t.times.(b)
  || (t.times.(a) = t.times.(b) && t.seqs.(a) < t.seqs.(b))

let heap_grow t =
  let cap = Array.length t.heap in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let heap = Array.make ncap 0 in
  Array.blit t.heap 0 heap 0 t.heap_len;
  t.heap <- heap

let heap_push t e =
  if t.heap_len = Array.length t.heap then heap_grow t;
  let i = ref t.heap_len in
  t.heap.(!i) <- e;
  t.heap_len <- t.heap_len + 1;
  while
    !i > 0
    && heap_earlier t t.heap.(!i) t.heap.((!i - 1) / 2)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

let heap_pop t =
  let e = t.heap.(0) in
  let n = t.heap_len - 1 in
  t.heap_len <- n;
  t.heap.(0) <- t.heap.(n);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < n && heap_earlier t t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < n && heap_earlier t t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
  done;
  e

(* -- public API -- *)

let push t ~time payload =
  let e = pool_alloc t ~time payload in
  t.len <- t.len + 1;
  if t.len = 1 then begin
    (* queue was empty: snap the cursor to the event so it lands at
       level 0 regardless of where a previous run left [base] *)
    t.base <- time;
    enqueue t e
  end
  else if time >= t.base then enqueue t e
  else heap_push t e

(* Every overdue time is strictly below [base] and every wheel time is
   at or above it, so the heap drains first and ties never straddle the
   two structures. *)

let pop_exn t =
  if t.len = 0 then raise Not_found;
  t.len <- t.len - 1;
  let e =
    if t.heap_len > 0 then heap_pop t
    else begin
      let e = ensure_wheel t in
      let i = t.base land (slots - 1) in
      let nxt = t.nexts.(e) in
      t.heads.(i) <- nxt;
      if nxt = -1 then begin
        t.tails.(i) <- -1;
        occ_clear t 0 i
      end;
      e
    end
  in
  let payload = t.payloads.(e) in
  pool_free t e;
  payload

let next_time t =
  if t.len = 0 then raise Not_found;
  if t.heap_len > 0 then t.times.(t.heap.(0))
  else t.times.(ensure_wheel t)

let pop t =
  if t.len = 0 then None
  else begin
    let time = next_time t in
    let payload = pop_exn t in
    Some (time, payload)
  end

let peek_time t = if t.len = 0 then None else Some (next_time t)
