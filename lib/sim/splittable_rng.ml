(* SplitMix64-style splittable streams (Steele, Lea & Flood, OOPSLA'14).

   Unlike [Rng.split], which derives the child from the parent's
   *mutable* position, a [Splittable_rng.t] is an immutable (state,
   gamma) pair and children are derived purely from the parent plus a
   key. Deriving "a" then "b" from a root therefore yields exactly the
   same two streams as deriving "b" then "a" - which is what lets every
   (experiment, config, trial) cell of a parallel run own an
   independent stream whose draws do not depend on scheduling order. *)

type t = { state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Stafford's mix13 finalizer - same as Rng.mix, kept here so the two
   modules stay independently readable. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Gammas must be odd to generate the full 2^64 period. *)
let mix_gamma z = Int64.logor (mix64 z) 1L

let create ~seed =
  let s = Int64.of_int seed in
  { state = mix64 s; gamma = mix_gamma (Int64.add s golden_gamma) }

let next t =
  let state = Int64.add t.state t.gamma in
  (mix64 state, { t with state })

let descend t key =
  (* Hash-combine the parent's identity (state and gamma both count:
     siblings share neither) with the key; the child gets a fresh
     gamma so descendants of different children never fall into the
     same additive orbit. *)
  let k = mix64 (Int64.add (Int64.of_int key) golden_gamma) in
  let h = mix64 (Int64.logxor t.state (Int64.mul t.gamma k)) in
  { state = h; gamma = mix_gamma (Int64.add h t.gamma) }

let fnv_prime = 0x100000001B3L
let fnv_offset = 0xCBF29CE484222325L

let descend_string t s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  descend t (Int64.to_int !h)

let path t keys = List.fold_left descend_string t keys

let seed t =
  (* collapse to a nonnegative OCaml int, suitable for [Rng.create] *)
  Int64.to_int (Int64.shift_right_logical (mix64 t.state) 2)

let to_rng t = Rng.create ~seed:(seed t)
