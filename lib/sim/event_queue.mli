(** Discrete-event queue (hierarchical timing wheel on event time).

    Device models that interleave asynchronous completions (NVMe, SATA)
    schedule their completions here. Ties are broken by insertion order so
    runs are deterministic.

    The implementation is a hierarchical timing wheel — 8 levels of 256
    slots, one level per byte of the 63-bit virtual time — over a
    structure-of-arrays event pool, with a small (time, seq) min-heap
    catching the rare pushes that land behind the cursor. Ring traffic
    is near-monotonic in virtual time, the ideal wheel workload: push
    and pop are O(1) amortized instead of the old SoA heap's O(log n).
    Steady-state [push], [pop_exn] and [next_time] allocate nothing,
    and payload slots are cleared on pop so the pool's spare capacity
    never pins popped values. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** Schedule an event at absolute [time]. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event as [(time, payload)]. *)

val pop_exn : 'a t -> 'a
(** Allocation-free pop: the earliest event's payload (read its time
    first with {!next_time}). @raise Not_found when empty. *)

val next_time : 'a t -> int
(** Allocation-free peek: time of the earliest event.
    @raise Not_found when empty. *)

val peek_time : 'a t -> int option
(** Time of the earliest event without removing it. *)
