(** Discrete-event queue (binary min-heap on event time).

    Device models that interleave asynchronous completions (NVMe, SATA)
    schedule their completions here. Ties are broken by insertion order so
    runs are deterministic.

    The heap is structure-of-arrays (unboxed int arrays for time and
    insertion sequence, one payload array): steady-state [push] and
    [pop_exn] allocate nothing, and payload slots are cleared on pop so
    the heap's spare capacity never pins popped values. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** Schedule an event at absolute [time]. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event as [(time, payload)]. *)

val pop_exn : 'a t -> 'a
(** Allocation-free pop: the earliest event's payload (read its time
    first with {!next_time}). @raise Not_found when empty. *)

val next_time : 'a t -> int
(** Allocation-free peek: time of the earliest event.
    @raise Not_found when empty. *)

val peek_time : 'a t -> int option
(** Time of the earliest event without removing it. *)
