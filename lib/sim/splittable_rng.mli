(** Splittable SplitMix64 streams for deterministic parallel runs.

    A [t] is an immutable position in a SplitMix64 stream. Child
    streams are derived {e purely} - [descend t key] depends only on
    [t] and [key], never on how many siblings were derived before - so
    a cell addressed by a path like [["table1"; "strict"; "trial0"]]
    gets the same stream whether the grid runs sequentially, on 4
    domains, or in reversed order. This is the property the parallel
    experiment harness relies on for byte-identical output at any
    [--jobs] level.

    Statistical quality is SplitMix64's (Steele, Lea & Flood,
    OOPSLA'14): 64-bit state advanced by a per-stream odd gamma and
    finalized with Stafford's mix13. *)

type t

val create : seed:int -> t
(** Root stream of a master seed. *)

val next : t -> int64 * t
(** Draw one value; pure (returns the advanced stream). *)

val descend : t -> int -> t
(** Child stream keyed by an integer. Distinct keys give independent
    streams; equal keys give equal streams. *)

val descend_string : t -> string -> t
(** Child stream keyed by a string (FNV-1a folded into {!descend}). *)

val path : t -> string list -> t
(** [path t [a; b; c]] = [descend_string (descend_string (descend_string
    t a) b) c]. *)

val seed : t -> int
(** Collapse a stream to a nonnegative [int] seed for {!Rng.create} -
    the bridge into the existing mutable simulator RNG. *)

val to_rng : t -> Rng.t
(** [to_rng t] = [Rng.create ~seed:(seed t)]. *)
