module Addr = Rio_memory.Addr
module Frame_allocator = Rio_memory.Frame_allocator
module Coherency = Rio_memory.Coherency
module Pte = Rio_pagetable.Pte
module Radix = Rio_pagetable.Radix
module Allocator = Rio_iova.Allocator
module Bdf = Rio_iommu.Bdf
module Context = Rio_iommu.Context
module Hw = Rio_iommu.Hw
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

type invalidation = Per_domain | Global

let invalidation_name = function
  | Per_domain -> "per-domain"
  | Global -> "global"

type policy = Immediate | Deferred of { batch : int }

type domain = {
  id : int;
  name : string;
  bdf : Bdf.t;
  rid : int;
  cdom : Context.Domain.t;
  allocator : Allocator.t;
  queue : Rio_iova.Rbtree.node Queue.t;
  mutable faults : int;
}

type t = {
  iotlb : Shared_iotlb.t;
  context : Context.t;
  invalidation : invalidation;
  policy : policy;
  frames : Frame_allocator.t;
  coherency : Coherency.t;
  clock : Cycles.t;
  cost : Cost_model.t;
  mutable doms : domain list;  (* reversed creation order *)
  by_rid : (int, domain) Hashtbl.t;
  mutable next_id : int;
  mutable unknown_rid_faults : int;
}

let create ~iotlb_policy ~iotlb_capacity ~invalidation ~policy ~frames ~clock
    ~cost ?(coherent_walk = false) () =
  {
    iotlb =
      Shared_iotlb.create ~policy:iotlb_policy ~capacity:iotlb_capacity ~clock
        ~cost;
    context = Context.create ();
    invalidation;
    policy;
    frames;
    coherency = Coherency.create ~coherent:coherent_walk ~cost ~clock;
    clock;
    cost;
    doms = [];
    by_rid = Hashtbl.create 16;
    next_id = 1;
    unknown_rid_faults = 0;
  }

let add_domain t ~name ~bdf ?(iova_limit_pfn = 0xFFFFF) () =
  let rid = Bdf.to_rid bdf in
  if Hashtbl.mem t.by_rid rid then
    invalid_arg "Manager.add_domain: bdf already attached";
  let id = t.next_id in
  t.next_id <- id + 1;
  let table =
    Radix.create ~frames:t.frames ~coherency:t.coherency ~clock:t.clock
      ~cost:t.cost
  in
  let cdom = Context.Domain.make ~id ~table in
  Context.attach t.context bdf cdom;
  Shared_iotlb.register t.iotlb ~domain:id ~bdf:rid;
  let allocator =
    Allocator.create ~kind:Allocator.Fast ~limit_pfn:iova_limit_pfn
      ~clock:t.clock ~cost:t.cost
  in
  let d =
    { id; name; bdf; rid; cdom; allocator; queue = Queue.create (); faults = 0 }
  in
  t.doms <- d :: t.doms;
  Hashtbl.add t.by_rid rid d;
  d

let remove_domain t d =
  Context.detach t.context d.bdf;
  Hashtbl.remove t.by_rid d.rid;
  t.doms <- List.filter (fun x -> x.id <> d.id) t.doms;
  Shared_iotlb.flush_domain t.iotlb ~domain:d.id

let domains t = List.rev t.doms
let domain_id d = d.id
let domain_name d = d.name
let bdf d = d.bdf
let rid d = d.rid
let iotlb t = t.iotlb

let pages_spanned ~phys ~bytes =
  let first = Addr.pfn phys in
  let last = Addr.pfn (Addr.add phys (bytes - 1)) in
  last - first + 1

let map t d ~phys ~bytes ~read ~write =
  if bytes <= 0 then invalid_arg "Manager.map: bytes";
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  let npages = pages_spanned ~phys ~bytes in
  match Allocator.alloc d.allocator ~size:npages with
  | Error `Exhausted -> Error `Exhausted
  | Ok iova_pfn ->
      for i = 0 to npages - 1 do
        let pte = Pte.make ~read ~write ~pfn:(Addr.pfn phys + i) () in
        match
          Radix.map d.cdom.Context.Domain.table
            ~iova:((iova_pfn + i) lsl Addr.page_shift)
            pte
        with
        | Ok () -> ()
        | Error `Already_mapped -> assert false
      done;
      Ok ((iova_pfn lsl Addr.page_shift) lor Addr.page_offset phys)

let release d node = Allocator.free d.allocator node

let drain_queue d =
  Queue.iter (release d) d.queue;
  Queue.clear d.queue

(* A batched flush. Per-domain scope touches only this tenant; global
   scope (the Linux strategy) wipes the whole IOTLB and therefore may
   release every tenant's queued IOVAs — their stale windows close too. *)
let do_flush t d =
  (match t.invalidation with
  | Per_domain ->
      Shared_iotlb.flush_domain t.iotlb ~domain:d.id;
      drain_queue d
  | Global ->
      Shared_iotlb.flush_all t.iotlb;
      List.iter drain_queue t.doms);
  ()

let unmap t d ~iova =
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  let pfn = iova lsr Addr.page_shift in
  match Allocator.find d.allocator ~pfn with
  | None -> Error `Not_mapped
  | Some node ->
      let lo = Rio_iova.Rbtree.lo node and hi = Rio_iova.Rbtree.hi node in
      for p = lo to hi do
        match
          Radix.unmap d.cdom.Context.Domain.table ~iova:(p lsl Addr.page_shift)
        with
        | Ok _ -> ()
        | Error `Not_mapped -> assert false
      done;
      (match t.policy with
      | Immediate ->
          for p = lo to hi do
            Shared_iotlb.invalidate t.iotlb ~domain:d.id ~bdf:d.rid ~vpn:p
          done;
          release d node
      | Deferred { batch } ->
          Cycles.charge t.clock (2 * t.cost.Cost_model.mem_ref_cached);
          Queue.add node d.queue;
          if Queue.length d.queue >= batch then do_flush t d);
      Ok ()

let flush t d = if not (Queue.is_empty d.queue) then do_flush t d
let pending _t d = Queue.length d.queue
let live_mappings _t d = Radix.mapped_count d.cdom.Context.Domain.table

let translate t ~rid ~iova ~write =
  match Context.lookup t.context ~rid with
  | None ->
      t.unknown_rid_faults <- t.unknown_rid_faults + 1;
      Error Hw.Unknown_device
  | Some cdom -> (
      let d = Hashtbl.find t.by_rid rid in
      let vpn = iova lsr Addr.page_shift in
      let offset = iova land (Addr.page_size - 1) in
      let check (pte : Pte.t) =
        if Pte.permits pte ~write then Ok (Addr.add (Pte.frame pte) offset)
        else begin
          d.faults <- d.faults + 1;
          Error Hw.Not_permitted
        end
      in
      match Shared_iotlb.lookup t.iotlb ~domain:d.id ~bdf:rid ~vpn with
      | Some pte -> check pte
      | None -> (
          match
            Radix.walk cdom.Context.Domain.table
              ~iova:(vpn lsl Addr.page_shift)
          with
          | None ->
              d.faults <- d.faults + 1;
              Error Hw.No_translation
          | Some pte ->
              Shared_iotlb.insert t.iotlb ~domain:d.id ~bdf:rid ~vpn pte;
              check pte))

let faults _t d = d.faults
let unknown_rid_faults t = t.unknown_rid_faults
let iotlb_stats t d = Shared_iotlb.stats t.iotlb ~domain:d.id
