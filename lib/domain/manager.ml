module Addr = Rio_memory.Addr
module Frame_allocator = Rio_memory.Frame_allocator
module Coherency = Rio_memory.Coherency
module Pte = Rio_pagetable.Pte
module Arena = Rio_pagetable.Arena
module Allocator = Rio_iova.Allocator
module Bdf = Rio_iommu.Bdf
module Context = Rio_iommu.Context
module Hw = Rio_iommu.Hw
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

type invalidation = Per_domain | Global

let invalidation_name = function
  | Per_domain -> "per-domain"
  | Global -> "global"

type policy = Immediate | Deferred of { batch : int }

exception Exhausted
exception Not_mapped

(* The allocator each tenant's map/unmap goes through: the bare
   constant-time allocator, or the same allocator behind a Bonwick
   magazine cache (the [--rcache] front the serve shards enable so
   steady-state IOVA recycling never touches the tree). *)
type front =
  | Direct of Allocator.t
  | Cached of Rio_iova.Magazine.t

type domain = {
  id : int;
  name : string;
  bdf : Bdf.t;
  rid : int;
  cdom : Context.Domain.t;
  front : front;
  queue : Rio_iova.Rbtree.node Queue.t;
  mutable faults : int;
}

(* Unboxed allocator front: -1 for exhaustion, Not_found for an unknown
   pfn, identical cycle charges to the boxed variants. *)
let front_alloc_pfn d ~size =
  match d.front with
  | Direct a -> Allocator.alloc_pfn a ~size
  | Cached m -> Rio_iova.Magazine.alloc_pfn m ~size

let front_find d ~pfn =
  match d.front with
  | Direct a -> Allocator.find a ~pfn
  | Cached m -> Rio_iova.Magazine.find m ~pfn

let front_find_exn d ~pfn =
  match d.front with
  | Direct a -> Allocator.find_exn a ~pfn
  | Cached m -> Rio_iova.Magazine.find_exn m ~pfn

let front_free d node =
  match d.front with
  | Direct a -> Allocator.free a node
  | Cached m -> Rio_iova.Magazine.free m node

type t = {
  iotlb : Shared_iotlb.t;
  context : Context.t;
  invalidation : invalidation;
  policy : policy;
  frames : Frame_allocator.t;
  coherency : Coherency.t;
  clock : Cycles.t;
  cost : Cost_model.t;
  rcache : bool;
  mutable doms : domain list;  (* reversed creation order *)
  by_rid : (int, domain) Hashtbl.t;
  mutable next_id : int;
  mutable unknown_rid_faults : int;
}

let create ~iotlb_policy ~iotlb_capacity ~invalidation ~policy ~frames ~clock
    ~cost ?(coherent_walk = false) ?(rcache = false) () =
  {
    iotlb =
      Shared_iotlb.create ~policy:iotlb_policy ~capacity:iotlb_capacity ~clock
        ~cost;
    context = Context.create ();
    invalidation;
    policy;
    frames;
    coherency = Coherency.create ~coherent:coherent_walk ~cost ~clock;
    clock;
    cost;
    rcache;
    doms = [];
    by_rid = Hashtbl.create 16;
    next_id = 1;
    unknown_rid_faults = 0;
  }

let add_domain t ~name ~bdf ?(iova_limit_pfn = 0xFFFFF) () =
  let rid = Bdf.to_rid bdf in
  if Hashtbl.mem t.by_rid rid then
    invalid_arg "Manager.add_domain: bdf already attached";
  let id = t.next_id in
  t.next_id <- id + 1;
  let table =
    Arena.create ~frames:t.frames ~coherency:t.coherency ~clock:t.clock
      ~cost:t.cost
  in
  let cdom = Context.Domain.make ~id ~table in
  Context.attach t.context bdf cdom;
  Shared_iotlb.register t.iotlb ~domain:id ~bdf:rid;
  let allocator =
    Allocator.create ~kind:Allocator.Fast ~limit_pfn:iova_limit_pfn
      ~clock:t.clock ~cost:t.cost
  in
  let front =
    if t.rcache then
      Cached
        (Rio_iova.Magazine.create ~base:allocator ~clock:t.clock ~cost:t.cost
           ())
    else Direct allocator
  in
  let d =
    { id; name; bdf; rid; cdom; front; queue = Queue.create (); faults = 0 }
  in
  t.doms <- d :: t.doms;
  Hashtbl.add t.by_rid rid d;
  d

let remove_domain t d =
  Context.detach t.context d.bdf;
  Hashtbl.remove t.by_rid d.rid;
  t.doms <- List.filter (fun x -> x.id <> d.id) t.doms;
  (* flush before unregistering: the shared-policy flush attributes
     entries to this domain through the bdf ownership table *)
  Shared_iotlb.flush_domain t.iotlb ~domain:d.id;
  Shared_iotlb.unregister t.iotlb ~domain:d.id ~bdf:d.rid

let domains t = List.rev t.doms
let domain_id d = d.id
let domain_name d = d.name
let bdf d = d.bdf
let rid d = d.rid
let iotlb t = t.iotlb

let pages_spanned ~phys ~bytes =
  let first = Addr.pfn phys in
  let last = Addr.pfn (Addr.add phys (bytes - 1)) in
  last - first + 1

(* One segment's mapping work, shared by [map] and both map_sg variants;
   the caller has already charged the per-entry-point overhead. The
   allocator guarantees a fresh range, so Arena.Already_mapped cannot
   fire. Zero-alloc after warm-up. *)
let map_seg_exn d ~phys ~bytes ~read ~write =
  let npages = pages_spanned ~phys ~bytes in
  let iova_pfn = front_alloc_pfn d ~size:npages in
  if iova_pfn < 0 then raise Exhausted;
  for i = 0 to npages - 1 do
    let pte = Pte.pack_make ~read ~write ~pfn:(Addr.pfn phys + i) in
    Arena.map_exn d.cdom.Context.Domain.table
      ~iova:((iova_pfn + i) lsl Addr.page_shift)
      ~pte
  done;
  (iova_pfn lsl Addr.page_shift) lor Addr.page_offset phys

let map_seg d ~phys ~bytes ~read ~write =
  match map_seg_exn d ~phys ~bytes ~read ~write with
  | iova -> Ok iova
  | exception Exhausted -> Error `Exhausted

let map t d ~phys ~bytes ~read ~write =
  if bytes <= 0 then invalid_arg "Manager.map: bytes";
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  map_seg d ~phys ~bytes ~read ~write

let release d node = front_free d node

let drain_queue d =
  Queue.iter (release d) d.queue;
  Queue.clear d.queue

(* A batched flush. Per-domain scope touches only this tenant; global
   scope (the Linux strategy) wipes the whole IOTLB and therefore may
   release every tenant's queued IOVAs — their stale windows close too. *)
let do_flush t d =
  (match t.invalidation with
  | Per_domain ->
      Shared_iotlb.flush_domain t.iotlb ~domain:d.id;
      drain_queue d
  | Global ->
      Shared_iotlb.flush_all t.iotlb;
      List.iter drain_queue t.doms);
  ()

(* One IOVA's unmapping work, shared by [unmap] and [unmap_sg]; the
   caller has already charged the per-entry-point overhead. *)
let unmap_one t d ~iova =
  let pfn = iova lsr Addr.page_shift in
  match front_find d ~pfn with
  | None -> Error `Not_mapped
  | Some node ->
      let lo = Rio_iova.Rbtree.lo node and hi = Rio_iova.Rbtree.hi node in
      for p = lo to hi do
        (* map installed every page of the range *)
        ignore
          (Arena.unmap_exn d.cdom.Context.Domain.table
             ~iova:(p lsl Addr.page_shift))
      done;
      (match t.policy with
      | Immediate ->
          for p = lo to hi do
            Shared_iotlb.invalidate t.iotlb ~domain:d.id ~bdf:d.rid ~vpn:p
          done;
          release d node
      | Deferred { batch } ->
          Cycles.charge t.clock (2 * t.cost.Cost_model.mem_ref_cached);
          Queue.add node d.queue;
          if Queue.length d.queue >= batch then do_flush t d);
      Ok ()

let unmap t d ~iova =
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  unmap_one t d ~iova

(* {2 Scatter-gather batches}

   One driver entry point amortized over every segment: the fixed
   bookkeeping (call, locking, marshalling — Table 1's "other" rows) is
   charged once per batch instead of once per segment, which is the
   same amortization the paper's rIOMMU gets from posting a burst of
   ring updates behind one doorbell. Invalidation amortization comes
   from the deferred queue as usual: a batch of unmaps fills it [n]
   entries at a time and still flushes once per [batch]. *)

(* Tear down the first [n] just-mapped segments of a failed batch. They
   were never visible to the device (no translation happened), so no
   invalidation commands are needed — release table entries and IOVAs
   directly. *)
let rollback d ~iovas n =
  for j = n - 1 downto 0 do
    let pfn = iovas.(j) lsr Addr.page_shift in
    let node = front_find_exn d ~pfn in
    let lo = Rio_iova.Rbtree.lo node and hi = Rio_iova.Rbtree.hi node in
    for p = lo to hi do
      ignore
        (Arena.unmap_exn d.cdom.Context.Domain.table
           ~iova:(p lsl Addr.page_shift))
    done;
    release d node
  done

let map_sg t d ~segs ?n ~iovas ~read ~write () =
  let n = match n with Some n -> n | None -> Array.length segs in
  if n < 0 || n > Array.length segs then invalid_arg "Manager.map_sg: n";
  if n > Array.length iovas then invalid_arg "Manager.map_sg: iovas too small";
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  let rec go i =
    if i = n then Ok n
    else
      let phys, bytes = segs.(i) in
      if bytes <= 0 then invalid_arg "Manager.map_sg: bytes"
      else
        match map_seg d ~phys ~bytes ~read ~write with
        | Ok iova ->
            iovas.(i) <- iova;
            go (i + 1)
        | Error `Exhausted ->
            (* Roll the partial batch back so exhaustion is atomic: the
               segments just mapped were never visible to the device
               (no translation happened), so tearing them down needs no
               invalidation commands — release table entries and IOVAs
               directly. *)
            rollback d ~iovas i;
            Error `Exhausted
  in
  go 0

let unmap_sg t d ~iovas ?n () =
  let n = match n with Some n -> n | None -> Array.length iovas in
  if n < 0 || n > Array.length iovas then invalid_arg "Manager.unmap_sg: n";
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  let rec go i =
    if i = n then Ok ()
    else
      match unmap_one t d ~iova:iovas.(i) with
      | Ok () -> go (i + 1)
      | Error `Not_mapped -> Error `Not_mapped
  in
  go 0

(* {2 Zero-alloc scatter-gather twins}

   The same batch entry points without option/result/list boxes, for
   the service's steady state and the zero-alloc gate. [unmap_sg_exn]
   additionally batches the {e invalidation}: instead of one
   invalidation command per page (iotlb_invalidate each), the whole
   batch is torn down first and a single domain-selective flush closes
   every stale window at once (the §3.2 amortization, one
   iotlb_global_flush for the burst). Until that flush the device can
   still reach the just-unmapped pages through stale IOTLB entries —
   the same window the deferred modes accept, here bounded by one call.

   Zero-alloc note: under the [Shared] IOTLB policy a domain-selective
   flush must scan the shared LRU and builds a victim list; use
   [Partitioned] or [Quota] when the allocation gate matters. *)

let map_sg_exn t d ~segs ?n ~iovas ~read ~write () =
  let n = match n with Some n -> n | None -> Array.length segs in
  if n < 0 || n > Array.length segs then invalid_arg "Manager.map_sg: n";
  if n > Array.length iovas then invalid_arg "Manager.map_sg: iovas too small";
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  let i = ref 0 in
  match
    while !i < n do
      let phys, bytes = segs.(!i) in
      if bytes <= 0 then invalid_arg "Manager.map_sg: bytes";
      iovas.(!i) <- map_seg_exn d ~phys ~bytes ~read ~write;
      incr i
    done
  with
  | () -> n
  | exception Exhausted ->
      (* atomic: roll the partial batch back before re-raising *)
      rollback d ~iovas !i;
      raise Exhausted

let unmap_sg_exn t d ~iovas ?n () =
  let n = match n with Some n -> n | None -> Array.length iovas in
  if n < 0 || n > Array.length iovas then invalid_arg "Manager.unmap_sg: n";
  Cycles.charge t.clock t.cost.Cost_model.call_overhead;
  let i = ref 0 in
  match
    while !i < n do
      let pfn = iovas.(!i) lsr Addr.page_shift in
      let node = front_find_exn d ~pfn in
      let lo = Rio_iova.Rbtree.lo node and hi = Rio_iova.Rbtree.hi node in
      for p = lo to hi do
        ignore
          (Arena.unmap_exn d.cdom.Context.Domain.table
             ~iova:(p lsl Addr.page_shift))
      done;
      release d node;
      incr i
    done
  with
  | () -> if n > 0 then Shared_iotlb.flush_domain t.iotlb ~domain:d.id
  | exception Not_found ->
      (* close the stale windows already opened, then report *)
      if !i > 0 then Shared_iotlb.flush_domain t.iotlb ~domain:d.id;
      raise Not_mapped

let flush t d = if not (Queue.is_empty d.queue) then do_flush t d
let pending _t d = Queue.length d.queue
let live_mappings _t d = Arena.mapped_count d.cdom.Context.Domain.table

let translate t ~rid ~iova ~write =
  match Context.lookup t.context ~rid with
  | None ->
      t.unknown_rid_faults <- t.unknown_rid_faults + 1;
      Error Hw.Unknown_device
  | Some cdom -> (
      let d = Hashtbl.find t.by_rid rid in
      let vpn = iova lsr Addr.page_shift in
      let offset = iova land (Addr.page_size - 1) in
      let check pte =
        if Pte.packed_permits pte ~write then
          Ok (Addr.add (Pte.packed_frame pte) offset)
        else begin
          d.faults <- d.faults + 1;
          Error Hw.Not_permitted
        end
      in
      match Shared_iotlb.lookup t.iotlb ~domain:d.id ~bdf:rid ~vpn with
      | Some pte -> check pte
      | None ->
          let pte =
            Arena.walk cdom.Context.Domain.table
              ~iova:(vpn lsl Addr.page_shift)
          in
          if pte < 0 then begin
            d.faults <- d.faults + 1;
            Error Hw.No_translation
          end
          else begin
            Shared_iotlb.insert t.iotlb ~domain:d.id ~bdf:rid ~vpn pte;
            check pte
          end)

exception Translation_fault

(* Allocation-free twin of [translate] for the service's steady state:
   no option/result boxes on the hit path (Hashtbl.find + the
   shared-IOTLB find_exn + an immediate phys result), one constant
   exception for every fault class. Fault accounting is identical to
   [translate] — the per-domain and unknown-rid counters are bumped
   before the exception escapes. *)
let translate_exn t ~rid ~iova ~write =
  let d =
    try Hashtbl.find t.by_rid rid
    with Not_found ->
      t.unknown_rid_faults <- t.unknown_rid_faults + 1;
      raise Translation_fault
  in
  let vpn = iova lsr Addr.page_shift in
  let offset = iova land (Addr.page_size - 1) in
  match Shared_iotlb.find_exn t.iotlb ~domain:d.id ~bdf:rid ~vpn with
  | pte ->
      if Pte.packed_permits pte ~write then Addr.add (Pte.packed_frame pte) offset
      else begin
        d.faults <- d.faults + 1;
        raise Translation_fault
      end
  | exception Not_found ->
      let pte =
        Arena.walk d.cdom.Context.Domain.table ~iova:(vpn lsl Addr.page_shift)
      in
      if pte < 0 then begin
        d.faults <- d.faults + 1;
        raise Translation_fault
      end
      else begin
        Shared_iotlb.insert t.iotlb ~domain:d.id ~bdf:rid ~vpn pte;
        if Pte.packed_permits pte ~write then Addr.add (Pte.packed_frame pte) offset
        else begin
          d.faults <- d.faults + 1;
          raise Translation_fault
        end
      end

let faults _t d = d.faults
let unknown_rid_faults t = t.unknown_rid_faults
let iotlb_stats t d = Shared_iotlb.stats t.iotlb ~domain:d.id
