module Iotlb = Rio_iotlb.Iotlb
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

type policy =
  | Shared
  | Partitioned
  | Quota of { entries : int }

let policy_name = function
  | Shared -> "shared"
  | Partitioned -> "partitioned"
  | Quota { entries } -> Printf.sprintf "quota:%d" entries

let policy_of_name s =
  match s with
  | "shared" -> Some Shared
  | "partitioned" -> Some Partitioned
  | _ ->
      if String.length s > 6 && String.sub s 0 6 = "quota:" then
        match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
        | Some n when n > 0 -> Some (Quota { entries = n })
        | _ -> None
      else None

type stats = {
  hits : int;
  misses : int;
  evictions_self : int;
  evictions_by_other : int;
  invalidations : int;
  domain_flushes : int;
}

type counters = {
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_ev_self : int;
  mutable c_ev_other : int;
  mutable c_invalidations : int;
  mutable c_flushes : int;
}

let fresh_counters () =
  {
    c_hits = 0;
    c_misses = 0;
    c_ev_self = 0;
    c_ev_other = 0;
    c_invalidations = 0;
    c_flushes = 0;
  }

type dom = {
  id : int;
  counters : counters;
  (* private partition under Partitioned/Quota; unused under Shared *)
  mutable partition : int Iotlb.t option;
}

type t = {
  policy : policy;
  total_capacity : int;
  clock : Cycles.t;
  cost : Cost_model.t;
  (* registration order matters for partition sizing and reporting *)
  mutable doms : dom list;  (* reversed registration order *)
  by_id : (int, dom) Hashtbl.t;
  owner_of_bdf : (int, dom) Hashtbl.t;
  mutable frozen : bool;
  (* Shared policy: the one LRU everyone contends on. The inserter is
     recorded around each fill so the eviction hook can attribute the
     victim. *)
  mutable shared : int Iotlb.t option;
  mutable inserting : dom option;
}

let create ~policy ~capacity ~clock ~cost =
  if capacity <= 0 then invalid_arg "Shared_iotlb.create: capacity";
  {
    policy;
    total_capacity = capacity;
    clock;
    cost;
    doms = [];
    by_id = Hashtbl.create 16;
    owner_of_bdf = Hashtbl.create 16;
    frozen = false;
    shared = None;
    inserting = None;
  }

let make_partition t d ~capacity =
  let on_evict ~bdf:_ ~vpn:_ =
    d.counters.c_ev_self <- d.counters.c_ev_self + 1
  in
  Iotlb.create ~on_evict ~capacity ~clock:t.clock ~cost:t.cost ()

let register t ~domain ~bdf =
  (* Online attach: under [Shared] (one LRU, no per-domain geometry)
     and [Quota] (fixed per-domain slice) a registration after traffic
     has started is safe, which is what lets a serve tenant attach
     while its neighbors keep translating. Only [Partitioned] must
     refuse: its slice size is total/N over the final domain count. *)
  (if t.frozen then
     match t.policy with
     | Shared | Quota _ -> ()
     | Partitioned ->
         invalid_arg
           "Shared_iotlb.register: traffic already started (partitioned \
            slice geometry is fixed at first traffic)");
  (match Hashtbl.find_opt t.owner_of_bdf bdf with
  | Some d when d.id <> domain ->
      invalid_arg "Shared_iotlb.register: bdf owned by another domain"
  | _ -> ());
  let d =
    match Hashtbl.find_opt t.by_id domain with
    | Some d -> d
    | None ->
        let d = { id = domain; counters = fresh_counters (); partition = None } in
        Hashtbl.add t.by_id domain d;
        t.doms <- d :: t.doms;
        d
  in
  (* a late Quota registrant builds its fixed slice immediately *)
  (match (t.frozen, t.policy) with
  | true, Quota { entries } when d.partition = None ->
      d.partition <- Some (make_partition t d ~capacity:entries)
  | _ -> ());
  Hashtbl.replace t.owner_of_bdf bdf d

let unregister t ~domain ~bdf =
  match Hashtbl.find_opt t.owner_of_bdf bdf with
  | Some d when d.id = domain -> Hashtbl.remove t.owner_of_bdf bdf
  | _ -> ()

(* find, not find_opt: [dom_exn] sits under the batched-invalidation
   flush on the zero-alloc unmap_sg path, so no Some box. *)
let dom_exn t domain =
  match Hashtbl.find t.by_id domain with
  | d -> d
  | exception Not_found -> invalid_arg "Shared_iotlb: unregistered domain"

let owner t bdf = Hashtbl.find_opt t.owner_of_bdf bdf

(* Freeze on first traffic: build the shared instance or size the
   per-domain partitions from the final registration count. *)
let freeze t =
  if not t.frozen then begin
    t.frozen <- true;
    match t.policy with
    | Shared ->
        let on_evict ~bdf ~vpn =
          ignore vpn;
          match (owner t bdf, t.inserting) with
          | Some victim, Some filler ->
              if victim.id = filler.id then
                victim.counters.c_ev_self <- victim.counters.c_ev_self + 1
              else
                victim.counters.c_ev_other <- victim.counters.c_ev_other + 1
          | Some victim, None ->
              victim.counters.c_ev_self <- victim.counters.c_ev_self + 1
          | None, _ -> ()
        in
        t.shared <-
          Some
            (Iotlb.create ~on_evict ~capacity:t.total_capacity ~clock:t.clock
               ~cost:t.cost ())
    | Partitioned | Quota _ ->
        let n = max 1 (List.length t.doms) in
        let slice =
          match t.policy with
          | Quota { entries } -> entries
          | _ -> max 1 (t.total_capacity / n)
        in
        List.iter
          (fun d -> d.partition <- Some (make_partition t d ~capacity:slice))
          t.doms
  end

let partition_exn d =
  match d.partition with
  | Some p -> p
  | None -> invalid_arg "Shared_iotlb: partition missing"

let lookup t ~domain ~bdf ~vpn =
  freeze t;
  let d = dom_exn t domain in
  let result =
    match t.policy with
    | Shared -> Iotlb.lookup (Option.get t.shared) ~bdf ~vpn
    | Partitioned | Quota _ -> Iotlb.lookup (partition_exn d) ~bdf ~vpn
  in
  (match result with
  | Some _ -> d.counters.c_hits <- d.counters.c_hits + 1
  | None -> d.counters.c_misses <- d.counters.c_misses + 1);
  result

(* Allocation-free twin of [lookup]: Hashtbl.find instead of find_opt
   (no option box), Iotlb.find_exn instead of lookup (no Some box on a
   hit). Misses are counted before the Not_found escapes, so the
   attribution counters agree with [lookup] exactly. *)
let find_exn t ~domain ~bdf ~vpn =
  freeze t;
  let d = Hashtbl.find t.by_id domain in
  let tlb =
    match t.policy with
    | Shared -> (
        match t.shared with Some s -> s | None -> raise Not_found)
    | Partitioned | Quota _ -> (
        match d.partition with Some p -> p | None -> raise Not_found)
  in
  match Iotlb.find_exn tlb ~bdf ~vpn with
  | pte ->
      d.counters.c_hits <- d.counters.c_hits + 1;
      pte
  | exception Not_found ->
      d.counters.c_misses <- d.counters.c_misses + 1;
      raise Not_found

let insert t ~domain ~bdf ~vpn pte =
  freeze t;
  let d = dom_exn t domain in
  match t.policy with
  | Shared ->
      t.inserting <- Some d;
      Iotlb.insert (Option.get t.shared) ~bdf ~vpn pte;
      t.inserting <- None
  | Partitioned | Quota _ -> Iotlb.insert (partition_exn d) ~bdf ~vpn pte

let invalidate t ~domain ~bdf ~vpn =
  freeze t;
  let d = dom_exn t domain in
  d.counters.c_invalidations <- d.counters.c_invalidations + 1;
  match t.policy with
  | Shared -> Iotlb.invalidate (Option.get t.shared) ~bdf ~vpn
  | Partitioned | Quota _ -> Iotlb.invalidate (partition_exn d) ~bdf ~vpn

let flush_domain t ~domain =
  freeze t;
  let d = dom_exn t domain in
  d.counters.c_flushes <- d.counters.c_flushes + 1;
  match t.policy with
  | Shared ->
      (* Domain-selective invalidation: one command, drops only this
         domain's entries. *)
      Cycles.charge t.clock t.cost.Cost_model.iotlb_global_flush;
      let shared = Option.get t.shared in
      let mine = ref [] in
      Iotlb.iter shared (fun ~bdf ~vpn _ ->
          match owner t bdf with
          | Some o when o.id = d.id -> mine := (bdf, vpn) :: !mine
          | _ -> ());
      List.iter (fun (bdf, vpn) -> ignore (Iotlb.drop shared ~bdf ~vpn)) !mine
  | Partitioned | Quota _ -> Iotlb.flush_all (partition_exn d)

let flush_all t =
  freeze t;
  match t.policy with
  | Shared -> Iotlb.flush_all (Option.get t.shared)
  | Partitioned | Quota _ ->
      List.iter (fun d -> Iotlb.flush_all (partition_exn d)) t.doms

let stats t ~domain =
  let c = (dom_exn t domain).counters in
  {
    hits = c.c_hits;
    misses = c.c_misses;
    evictions_self = c.c_ev_self;
    evictions_by_other = c.c_ev_other;
    invalidations = c.c_invalidations;
    domain_flushes = c.c_flushes;
  }

let reset_stats t =
  List.iter
    (fun d ->
      let c = d.counters in
      c.c_hits <- 0;
      c.c_misses <- 0;
      c.c_ev_self <- 0;
      c.c_ev_other <- 0;
      c.c_invalidations <- 0;
      c.c_flushes <- 0;
      match d.partition with Some p -> Iotlb.reset_stats p | None -> ())
    t.doms;
  match t.shared with Some s -> Iotlb.reset_stats s | None -> ()

let occupancy t ~domain =
  let d = dom_exn t domain in
  if not t.frozen then 0
  else
    match t.policy with
    | Shared ->
        let n = ref 0 in
        Iotlb.iter (Option.get t.shared) (fun ~bdf ~vpn:_ _ ->
            match owner t bdf with
            | Some o when o.id = d.id -> incr n
            | _ -> ());
        !n
    | Partitioned | Quota _ -> Iotlb.occupancy (partition_exn d)

let capacity t = t.total_capacity
let policy t = t.policy
let domains t = List.rev_map (fun d -> d.id) t.doms
