(** Multi-device discrete-event scheduler.

    Interleaves N tenants — NIC, NVMe and SATA device classes with
    different I/O sizes, working sets and inter-arrival times — over one
    modeled IOMMU, using {!Rio_sim.Event_queue} (whose same-time
    insertion-order tie-break makes runs deterministic for a given
    seed). Each scheduling event runs one burst of I/Os for one tenant:
    map a transient DMA buffer, let the device translate its pages plus
    a few hot working-set pages (descriptor rings, scatter-gather
    lists), then unmap.

    Protection modes (reusing {!Rio_protect.Mode}):
    - strict / strict+: immediate per-page invalidation through the
      shared IOTLB ({!Manager});
    - defer / defer+: per-tenant deferred queues, batched flush at the
      configured {!Manager.invalidation} scope;
    - riommu / riommu-: per-ring rIOTLB entries ({!Rio_core.Riotlb}) —
      one entry per rRING, prefetched, so tenants cannot evict each
      other by construction.

    Interference is read off the per-tenant results: a noisy neighbor
    inflates a victim's shared-IOTLB miss rate and therefore its cycles
    per I/O. *)

type device_class = Nic | Nvme | Sata

val class_name : device_class -> string

type tenant_spec = {
  name : string;
  device : device_class;
  latency_critical : bool;
  pool_pages : int;
      (** persistently mapped working set the device keeps touching *)
  io_bytes : int;  (** transient buffer mapped + unmapped per I/O *)
  burst : int;  (** I/Os per scheduling event *)
  think_time : int;  (** virtual ns between bursts *)
  touches : int;  (** working-set pages touched per I/O *)
}

val nic_tenant : ?latency_critical:bool -> name:string -> unit -> tenant_spec
(** Small I/Os, small working set, short think time: the
    latency-critical tenant of the interference experiment. *)

val nvme_tenant : name:string -> unit -> tenant_spec
(** Large bursts over a large working set: a noisy neighbor. *)

val sata_tenant : name:string -> unit -> tenant_spec
(** Big sequential I/Os, slow cadence, large working set. *)

type tenant_result = {
  spec : tenant_spec;
  ios : int;  (** I/Os completed *)
  cycles : int;  (** cycles attributed to this tenant *)
  ops_per_mcycle : float;  (** throughput: I/Os per million cycles *)
  cycles_per_io : float;
  hits : int;
  misses : int;
  miss_rate : float;  (** translation misses / lookups *)
  evictions_by_other : int;  (** shared-IOTLB only; 0 elsewhere *)
  faults : int;
}

type config = {
  mode : Rio_protect.Mode.t;
  policy : Shared_iotlb.policy;
  invalidation : Manager.invalidation;
  iotlb_capacity : int;
  ios_per_tenant : int;
  seed : int;
}

val default_config :
  ?invalidation:Manager.invalidation ->
  ?iotlb_capacity:int ->
  ?ios_per_tenant:int ->
  ?seed:int ->
  mode:Rio_protect.Mode.t ->
  policy:Shared_iotlb.policy ->
  unit ->
  config
(** Defaults: 128-entry IOTLB, 1000 I/Os per tenant, seed 42.
    [invalidation] defaults to [Global] under [Shared] (the Linux
    behavior) and [Per_domain] under the partitioned policies (scoped
    invalidation is part of the mitigation). *)

val run : config -> tenant_spec list -> tenant_result list
(** Run every tenant to completion; results in tenant order. Raises
    [Invalid_argument] for modes with no protection path here
    (none / passthrough). *)
