(** Multi-tenant domain manager: N devices/tenants over one IOMMU.

    Each tenant gets its own protection domain — a private IOVA
    allocator and page-table hierarchy reached through its device's
    context entry ({!Rio_iommu.Bdf} / {!Rio_iommu.Context}) — while all
    tenants contend on one {!Shared_iotlb}. The manager provides both
    sides of the paper's Figure 2 for this setting: the OS side
    ({!map} / {!unmap} / {!flush}) and the hardware side
    ({!translate}).

    Invalidation scoping decides the blast radius of a deferred-mode
    batched flush: [Global] is what Linux does (one global flush every
    [batch] unmaps — wiping every tenant's entries), [Per_domain] uses
    domain-selective invalidation so a noisy tenant's churn cannot
    flush its neighbors. *)

type invalidation = Per_domain | Global

val invalidation_name : invalidation -> string

type policy = Immediate | Deferred of { batch : int }

exception Exhausted
(** Raised by {!map_sg_exn} when a tenant's IOVA space is exhausted
    (after rolling the partial batch back). *)

exception Not_mapped
(** Raised by {!unmap_sg_exn} at the first IOVA with no live mapping. *)

type domain
(** A tenant handle. *)

type t

val create :
  iotlb_policy:Shared_iotlb.policy ->
  iotlb_capacity:int ->
  invalidation:invalidation ->
  policy:policy ->
  frames:Rio_memory.Frame_allocator.t ->
  clock:Rio_sim.Cycles.t ->
  cost:Rio_sim.Cost_model.t ->
  ?coherent_walk:bool ->
  ?rcache:bool ->
  unit ->
  t
(** [rcache] (default false) puts a Bonwick magazine cache
    ({!Rio_iova.Magazine}) in front of every tenant's IOVA allocator,
    so steady-state alloc/free recycles ranges in O(1) without touching
    the tree — the configuration the serve shards run with. *)

val add_domain :
  t -> name:string -> bdf:Rio_iommu.Bdf.t -> ?iova_limit_pfn:int -> unit -> domain
(** Create a tenant: fresh page table, fresh IOVA allocator, context
    entry installed, IOTLB slice registered. Online attach is allowed
    under the [Shared] and [Quota] IOTLB policies — a tenant can join
    while neighbors are translating (the serve daemon's churn path).
    Raises [Invalid_argument] if the bdf is already attached, or under
    [Partitioned] once traffic has started (slice geometry frozen). *)

val remove_domain : t -> domain -> unit
(** Detach the device and flush the domain's IOTLB footprint (the
    device-unplug / tenant-teardown path). *)

(** {1 Accessors} *)

val domains : t -> domain list
val domain_id : domain -> int
val domain_name : domain -> string
val bdf : domain -> Rio_iommu.Bdf.t
val rid : domain -> int
val iotlb : t -> Shared_iotlb.t

(** {1 OS side} *)

val map :
  t ->
  domain ->
  phys:Rio_memory.Addr.phys ->
  bytes:int ->
  read:bool ->
  write:bool ->
  (int, [ `Exhausted ]) result
(** Map into the tenant's own IOVA space; returns the IOVA (page offset
    preserved). *)

val unmap : t -> domain -> iova:int -> (unit, [ `Not_mapped ]) result
(** Under [Immediate], invalidates each page's IOTLB entry and releases
    the IOVA now. Under [Deferred], queues on the tenant's own deferred
    queue; when the queue reaches [batch], flushes at the configured
    {!invalidation} scope (a [Global] flush also drains every other
    tenant's queue, as the Linux batching does). *)

val map_sg :
  t ->
  domain ->
  segs:(Rio_memory.Addr.phys * int) array ->
  ?n:int ->
  iovas:int array ->
  read:bool ->
  write:bool ->
  unit ->
  (int, [ `Exhausted ]) result
(** Map the first [n] (default all) [(phys, bytes)] segments as one
    batch, writing each segment's IOVA into [iovas.(i)] and returning
    the count mapped. The fixed per-entry-point overhead is charged
    once for the whole batch (the scatter-gather amortization), and
    exhaustion is atomic: on [Error `Exhausted] every segment mapped so
    far has been rolled back. *)

val unmap_sg :
  t -> domain -> iovas:int array -> ?n:int -> unit -> (unit, [ `Not_mapped ]) result
(** Unmap the first [n] (default all) IOVAs as one batch: one
    entry-point overhead charge, then per-IOVA teardown under the
    configured policy (a deferred queue absorbs the whole batch and
    still flushes once per [batch] unmaps). Stops at the first unknown
    IOVA. *)

val map_sg_exn :
  t ->
  domain ->
  segs:(Rio_memory.Addr.phys * int) array ->
  ?n:int ->
  iovas:int array ->
  read:bool ->
  write:bool ->
  unit ->
  int
(** Exactly {!map_sg} — same charges, same atomic rollback — but
    allocation-free after warm-up: raises {!Exhausted} instead of
    boxing a result. The zero-alloc gate covers this entry point. *)

val unmap_sg_exn : t -> domain -> iovas:int array -> ?n:int -> unit -> unit
(** Batched-invalidation unmap (the paper's §3.2 amortization): tears
    down every IOVA's pages and releases the ranges in one pass, then
    issues a {e single} domain-selective flush instead of one
    invalidation command per page — one [iotlb_global_flush] for the
    burst rather than [n * iotlb_invalidate]. Until that flush the
    device can still reach the just-unmapped pages through stale IOTLB
    entries (the deferred-mode window, here bounded by one call).
    Allocation-free under the [Partitioned] and [Quota] IOTLB policies
    (a [Shared]-policy selective flush scans the LRU and allocates).
    Raises {!Not_mapped} at the first unknown IOVA, after flushing the
    entries already torn down. *)

val flush : t -> domain -> unit
(** Drain the tenant's deferred queue now (scope per configuration). *)

val pending : t -> domain -> int
val live_mappings : t -> domain -> int

(** {1 Hardware side} *)

val translate :
  t ->
  rid:int ->
  iova:int ->
  write:bool ->
  (Rio_memory.Addr.phys, Rio_iommu.Hw.fault) result
(** One DMA: context lookup by request id, shared-IOTLB lookup (charged
    and attributed), table walk on miss, permission check. A tenant's
    rid can only reach its own page table — domain A translating
    domain B's IOVA faults with [No_translation] and is recorded
    against A. *)

exception Translation_fault
(** Constant exception raised by {!translate_exn} for every fault
    class (the specific class is recorded in the same counters
    {!translate} maintains: {!faults} / {!unknown_rid_faults}). *)

val translate_exn : t -> rid:int -> iova:int -> write:bool -> Rio_memory.Addr.phys
(** Exactly {!translate} — same IOTLB charge/attribution, walk on miss,
    permission check, fault counters — but allocation-free on the
    steady-state hit path: the phys result is returned unboxed and
    faults raise the constant {!Translation_fault}. This is the
    service's per-DMA hot path. *)

val faults : t -> domain -> int
(** I/O page faults raised by this tenant's device. *)

val unknown_rid_faults : t -> int
(** DMAs from request ids with no context entry. *)

val iotlb_stats : t -> domain -> Shared_iotlb.stats
