module Addr = Rio_memory.Addr
module Frame_allocator = Rio_memory.Frame_allocator
module Bdf = Rio_iommu.Bdf
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model
module Event_queue = Rio_sim.Event_queue
module Rng = Rio_sim.Rng
module Mode = Rio_protect.Mode
module Riotlb = Rio_core.Riotlb
module Rpte = Rio_core.Rpte

type device_class = Nic | Nvme | Sata

let class_name = function Nic -> "nic" | Nvme -> "nvme" | Sata -> "sata"

type tenant_spec = {
  name : string;
  device : device_class;
  latency_critical : bool;
  pool_pages : int;
  io_bytes : int;
  burst : int;
  think_time : int;
  touches : int;
}

let nic_tenant ?(latency_critical = false) ~name () =
  {
    name;
    device = Nic;
    latency_critical;
    pool_pages = 8;
    io_bytes = 1500;
    burst = 1;
    think_time = 1_000;
    touches = 4;
  }

let nvme_tenant ~name () =
  {
    name;
    device = Nvme;
    latency_critical = false;
    pool_pages = 64;
    io_bytes = 16_384;
    burst = 4;
    think_time = 3_000;
    touches = 16;
  }

let sata_tenant ~name () =
  {
    name;
    device = Sata;
    latency_critical = false;
    pool_pages = 48;
    io_bytes = 65_536;
    burst = 2;
    think_time = 8_000;
    touches = 12;
  }

type tenant_result = {
  spec : tenant_spec;
  ios : int;
  cycles : int;
  ops_per_mcycle : float;
  cycles_per_io : float;
  hits : int;
  misses : int;
  miss_rate : float;
  evictions_by_other : int;
  faults : int;
}

type config = {
  mode : Mode.t;
  policy : Shared_iotlb.policy;
  invalidation : Manager.invalidation;
  iotlb_capacity : int;
  ios_per_tenant : int;
  seed : int;
}

let default_config ?invalidation ?(iotlb_capacity = 128)
    ?(ios_per_tenant = 1_000) ?(seed = 42) ~mode ~policy () =
  let invalidation =
    match invalidation with
    | Some i -> i
    | None -> (
        match policy with
        | Shared_iotlb.Shared -> Manager.Global
        | Shared_iotlb.Partitioned | Shared_iotlb.Quota _ -> Manager.Per_domain)
  in
  { mode; policy; invalidation; iotlb_capacity; ios_per_tenant; seed }

(* Per-tenant mutable run state; the [transact] closure runs one burst
   and returns I/Os completed, with all cycle costs charged to the
   shared clock (the caller attributes them via Cycles.measure). *)
type tenant_state = {
  t_spec : tenant_spec;
  t_rng : Rng.t;
  transact : unit -> int;
  mutable t_remaining : int;
  mutable t_ios : int;
  mutable t_cycles : int;
  (* riommu-mode bookkeeping (the baseline modes read Manager stats) *)
  mutable t_hits : int;
  mutable t_misses : int;
  finish : unit -> tenant_result;
}

let bdf_of_index i = Bdf.make ~bus:(1 + (i / 8)) ~device:(i mod 8) ~func:0

(* {1 Baseline modes: strict / defer through the shared IOTLB} *)

let baseline_tenant mgr frames rng i spec =
  let dom = Manager.add_domain mgr ~name:spec.name ~bdf:(bdf_of_index i) () in
  let rid = Manager.rid dom in
  (* Persistent working set: mapped once, touched by the device on every
     I/O (descriptor rings, SGL pages, ibverbs-style registrations). *)
  let pool =
    Array.init spec.pool_pages (fun _ ->
        let frame = Frame_allocator.alloc_exn frames in
        match Manager.map mgr dom ~phys:frame ~bytes:Addr.page_size ~read:true
                ~write:true
        with
        | Ok iova -> iova
        | Error `Exhausted -> failwith "Scheduler: pool map exhausted")
  in
  let translate iova =
    ignore (Manager.translate mgr ~rid ~iova ~write:true)
  in
  let rng = Rng.split rng in
  let transact () =
    let done_ = ref 0 in
    for _ = 1 to spec.burst do
      let frame = Frame_allocator.alloc_exn frames in
      (match
         Manager.map mgr dom ~phys:frame ~bytes:spec.io_bytes ~read:true
           ~write:true
       with
      | Ok iova ->
          let npages = (spec.io_bytes + Addr.page_size - 1) / Addr.page_size in
          for p = 0 to npages - 1 do
            translate (iova + (p lsl Addr.page_shift))
          done;
          for _ = 1 to spec.touches do
            translate pool.(Rng.int rng spec.pool_pages)
          done;
          ignore (Manager.unmap mgr dom ~iova)
      | Error `Exhausted -> ());
      Frame_allocator.free frames frame;
      incr done_
    done;
    !done_
  in
  (dom, rng, transact)

(* {1 rIOMMU mode: per-ring rIOTLB, no shared structure}

   Each tenant drives its own rRINGs. Map is an rPTE store plus the
   paper's sync_mem (barrier + cacheline flush on a non-coherent walk,
   barrier only on a coherent one); translation hits the ring's
   prefetched rIOTLB entry except on first touch; unmap marks the rPTE
   invalid and issues one explicit rIOTLB invalidation per burst end
   (Figure 10's amortization). *)

let riommu_tenant cfg riotlb clock cost rng i spec =
  let coherent = Mode.coherent_walk cfg.mode in
  let bdf = Bdf.to_rid (bdf_of_index i) in
  let rings = 2 in
  let state = ref None in
  let sync_cost =
    if coherent then cost.Cost_model.barrier
    else
      cost.Cost_model.barrier + cost.Cost_model.cacheline_flush
      + cost.Cost_model.barrier
  in
  let access st ring =
    match Riotlb.find riotlb ~bdf ~rid:ring with
    | Some _ -> st.t_hits <- st.t_hits + 1
    | None ->
        (* flat-table walk: one DRAM reference, then the entry (and its
           prefetched successor) is resident *)
        st.t_misses <- st.t_misses + 1;
        Cycles.charge clock cost.Cost_model.io_walk_ref;
        Riotlb.insert riotlb ~bdf ~rid:ring
          {
            Riotlb.rentry = 0;
            rpte =
              Rpte.make ~phys_addr:(Addr.of_pfn 1) ~size:Addr.page_size
                ~dir:Rpte.Bidirectional;
            next = Some Rpte.invalid;
          }
  in
  let rng = Rng.split rng in
  let transact () =
    let st = Option.get !state in
    let done_ = ref 0 in
    for io = 1 to spec.burst do
      ignore io;
      (* map: write the rPTE in the flat rring, then sync it *)
      Cycles.charge clock (cost.Cost_model.mem_ref_cached + sync_cost);
      let npages = (spec.io_bytes + Addr.page_size - 1) / Addr.page_size in
      let accesses = npages + spec.touches in
      for a = 1 to accesses do
        ignore a;
        access st (Rng.int rng rings)
      done;
      (* unmap: invalidate the rPTE in place (cheap store) *)
      Cycles.charge clock cost.Cost_model.mem_ref_cached;
      incr done_
    done;
    (* end of burst: one explicit invalidation closes the window *)
    Riotlb.invalidate riotlb ~bdf ~rid:0;
    !done_
  in
  (state, rng, transact)

let run cfg specs =
  if specs = [] then invalid_arg "Scheduler.run: no tenants";
  let is_riommu = Mode.is_riommu cfg.mode in
  (match cfg.mode with
  | Mode.None_ | Mode.Hw_passthrough | Mode.Sw_passthrough ->
      invalid_arg "Scheduler.run: mode has no protection path"
  | _ -> ());
  let clock = Cycles.create () in
  let cost = Cost_model.default in
  let frames = Frame_allocator.create ~total_frames:400_000 in
  let root_rng = Rng.create ~seed:cfg.seed in
  let states =
    if is_riommu then
      let riotlb = Riotlb.create ~clock ~cost in
      List.mapi
        (fun i spec ->
          let state_ref, rng, transact =
            riommu_tenant cfg riotlb clock cost root_rng i spec
          in
          let rec st =
            {
              t_spec = spec;
              t_rng = rng;
              transact;
              t_remaining = cfg.ios_per_tenant;
              t_ios = 0;
              t_cycles = 0;
              t_hits = 0;
              t_misses = 0;
              finish =
                (fun () ->
                  let lookups = st.t_hits + st.t_misses in
                  {
                    spec;
                    ios = st.t_ios;
                    cycles = st.t_cycles;
                    ops_per_mcycle =
                      (if st.t_cycles = 0 then 0.
                       else 1e6 *. float_of_int st.t_ios /. float_of_int st.t_cycles);
                    cycles_per_io =
                      (if st.t_ios = 0 then 0.
                       else float_of_int st.t_cycles /. float_of_int st.t_ios);
                    hits = st.t_hits;
                    misses = st.t_misses;
                    miss_rate =
                      (if lookups = 0 then 0.
                       else float_of_int st.t_misses /. float_of_int lookups);
                    evictions_by_other = 0;
                    faults = 0;
                  });
            }
          in
          state_ref := Some st;
          st)
        specs
    else begin
      let policy =
        if Mode.is_deferred cfg.mode then Manager.Deferred { batch = 250 }
        else Manager.Immediate
      in
      let mgr =
        Manager.create ~iotlb_policy:cfg.policy ~iotlb_capacity:cfg.iotlb_capacity
          ~invalidation:cfg.invalidation ~policy ~frames ~clock ~cost
          ~coherent_walk:false ()
      in
      List.mapi
        (fun i spec ->
          let dom, rng, transact = baseline_tenant mgr frames root_rng i spec in
          let rec st =
            {
              t_spec = spec;
              t_rng = rng;
              transact;
              t_remaining = cfg.ios_per_tenant;
              t_ios = 0;
              t_cycles = 0;
              t_hits = 0;
              t_misses = 0;
              finish =
                (fun () ->
                  let s = Manager.iotlb_stats mgr dom in
                  let lookups = s.Shared_iotlb.hits + s.Shared_iotlb.misses in
                  {
                    spec;
                    ios = st.t_ios;
                    cycles = st.t_cycles;
                    ops_per_mcycle =
                      (if st.t_cycles = 0 then 0.
                       else 1e6 *. float_of_int st.t_ios /. float_of_int st.t_cycles);
                    cycles_per_io =
                      (if st.t_ios = 0 then 0.
                       else float_of_int st.t_cycles /. float_of_int st.t_ios);
                    hits = s.Shared_iotlb.hits;
                    misses = s.Shared_iotlb.misses;
                    miss_rate =
                      (if lookups = 0 then 0.
                       else float_of_int s.Shared_iotlb.misses /. float_of_int lookups);
                    evictions_by_other = s.Shared_iotlb.evictions_by_other;
                    faults = Manager.faults mgr dom;
                  });
            }
          in
          st)
        specs
    end
  in
  let states = Array.of_list states in
  let queue : int Event_queue.t = Event_queue.create () in
  (* stagger the first submissions so same-time ties only occur when
     think times genuinely collide *)
  Array.iteri (fun i _ -> Event_queue.push queue ~time:i i) states;
  let rec loop () =
    match Event_queue.pop queue with
    | None -> ()
    | Some (now, i) ->
        let st = states.(i) in
        if st.t_remaining > 0 then begin
          let done_, cyc = Cycles.measure clock st.transact in
          st.t_ios <- st.t_ios + done_;
          st.t_cycles <- st.t_cycles + cyc;
          st.t_remaining <- st.t_remaining - done_;
          if st.t_remaining > 0 then begin
            let jitter = Rng.int st.t_rng (1 + (st.t_spec.think_time / 4)) in
            Event_queue.push queue ~time:(now + st.t_spec.think_time + jitter) i
          end
        end;
        loop ()
  in
  loop ();
  Array.to_list (Array.map (fun st -> st.finish ()) states)
