(** The IOTLB as a shared, contended resource.

    One physical IOMMU serves every device in the machine, so its IOTLB
    is shared by all tenants (§2 of the paper; "Bermuda Triangle of
    Contention" shows the interference is first-order). This layer wraps
    {!Rio_iotlb.Iotlb} with a partitioning policy and per-domain
    accounting so the contention — and its mitigation — is observable.

    Policies:
    - {!Shared}: one LRU array; any domain's fill can evict any other
      domain's entry (the conventional hardware).
    - {!Partitioned}: capacity is split evenly among the registered
      domains (way-partitioned IOTLB); a domain can only evict itself.
    - {!Quota}: every domain gets its own partition capped at a fixed
      entry count, independent of the domain count (oversubscribable;
      still no cross-domain eviction).

    Geometry freezes at the first lookup/insert, but what that means
    depends on the policy: {!Partitioned} slices (total/N) depend on
    the final domain count, so it refuses registration after traffic;
    {!Shared} and {!Quota} have no count-dependent geometry, so tenants
    may attach and detach while neighbors keep translating — the
    online-attach path the serve daemon exercises. *)

type policy =
  | Shared
  | Partitioned
  | Quota of { entries : int }

val policy_name : policy -> string
val policy_of_name : string -> policy option
(** "shared", "partitioned", "quota:N". *)

type stats = {
  hits : int;
  misses : int;
  evictions_self : int;  (** entries this domain pushed out itself *)
  evictions_by_other : int;
      (** entries another domain's fills pushed out — the interference
          signal; always 0 under {!Partitioned} and {!Quota} *)
  invalidations : int;  (** explicit single-entry invalidations issued *)
  domain_flushes : int;  (** domain-selective flushes issued *)
}

type t

val create :
  policy:policy ->
  capacity:int ->
  clock:Rio_sim.Cycles.t ->
  cost:Rio_sim.Cost_model.t ->
  t

val register : t -> domain:int -> bdf:int -> unit
(** Declare that [bdf]'s translations belong to [domain]. Raises
    [Invalid_argument] if [bdf] is already owned by another live
    domain, or — under {!Partitioned} only — after traffic has started
    (the even slice geometry is frozen). A late {!Quota} registrant
    gets its fixed slice built on the spot. *)

val unregister : t -> domain:int -> bdf:int -> unit
(** Release [domain]'s ownership of [bdf] (tenant detach), letting a
    later tenant attach to the same bdf. The domain's counters survive
    for reporting. No-op if [bdf] is not owned by [domain]. *)

val lookup : t -> domain:int -> bdf:int -> vpn:int -> int option
(** Hardware lookup, attributed to [domain]'s hit/miss counters.
    Payloads are packed PTE immediates ({!Rio_pagetable.Pte.pack}) so
    the hit path carries no boxed values. *)

val find_exn : t -> domain:int -> bdf:int -> vpn:int -> int
(** Exactly {!lookup} (same cost charge and counters) but
    allocation-free: raises [Not_found] on a miss instead of boxing the
    hit. The service's steady-state translate path uses this. *)

val insert : t -> domain:int -> bdf:int -> vpn:int -> int -> unit
(** Fill after a table walk. Under {!Shared} a capacity eviction may
    victimize another domain, which is recorded in the victim's
    [evictions_by_other]. *)

val invalidate : t -> domain:int -> bdf:int -> vpn:int -> unit
(** Explicit single-entry invalidation (full command cost). *)

val flush_domain : t -> domain:int -> unit
(** Domain-selective invalidation (VT-d DID-scoped flush): drops only
    this domain's entries, charging one flush-command cost. Other
    domains' entries survive under every policy. *)

val flush_all : t -> unit
(** Global flush: every domain loses everything (the Linux deferred
    mode's batching strategy, now with collateral damage). *)

val stats : t -> domain:int -> stats
val reset_stats : t -> unit
val occupancy : t -> domain:int -> int
val capacity : t -> int
val policy : t -> policy
val domains : t -> int list
(** Registered domain ids, in registration order. *)
