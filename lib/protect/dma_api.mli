(** The DMA-mapping facade: one API over all nine protection modes.

    Device drivers call {!map}/{!unmap} exactly as the Linux DMA API is
    called in Figures 4 and 6; device models call {!translate} for every
    DMA access exactly as the IOMMU intercepts addresses in Figure 5.
    Which machinery runs underneath - nothing, a pass-through, the
    baseline IOMMU in one of its four modes, or the rIOMMU in either
    coherency configuration - is selected by the {!Mode.t} in the
    config, so workloads and experiments compare modes on identical code
    paths. *)

type config = {
  mode : Mode.t;
  rid : int;  (** the protected device's request identifier *)
  ring_sizes : int list;
      (** rIOMMU flat-table sizes, one per device ring; ring ids index
          this list. Ignored by non-rIOMMU modes (which pool all rings
          into one IOVA space, as Linux does). *)
  iotlb_capacity : int;  (** baseline IOTLB entries (default 64) *)
  iova_limit_pfn : int;  (** top of the baseline IOVA space *)
  defer_batch : int;  (** deferred-mode flush threshold (Linux: 250) *)
  total_frames : int;  (** physical memory size *)
  rcache : bool;
      (** put a {!Rio_iova.Magazine} cache (the Linux iova rcache) in
          front of the IOVA allocator; baseline-IOMMU modes only *)
}

val default_config : mode:Mode.t -> config
(** rid 0x0300, two rings of 512, 64 IOTLB entries, 1M-page IOVA space,
    batch 250, 200K frames, rcache off. *)

type t

type handle
(** An opaque mapped-buffer handle; encodes to the 64-bit descriptor
    address via {!addr}. *)

val create : ?cost:Rio_sim.Cost_model.t -> config -> t
val mode : t -> Mode.t
val clock : t -> Rio_sim.Cycles.t
val cost : t -> Rio_sim.Cost_model.t
val frames : t -> Rio_memory.Frame_allocator.t

(** {1 Driver side (the CPU-cycle critical path, §3.3)} *)

val map :
  t ->
  ring:int ->
  phys:Rio_memory.Addr.phys ->
  bytes:int ->
  dir:Rio_core.Rpte.dir ->
  (handle, [ `Exhausted | `Overflow ]) result

val unmap : t -> handle -> end_of_burst:bool -> (unit, [ `Not_mapped ]) result
(** [end_of_burst] is meaningful to the rIOMMU modes only; others ignore
    it. *)

val map_exn :
  t ->
  phys:Rio_memory.Addr.phys ->
  bytes:int ->
  dir:Rio_core.Rpte.dir ->
  int
(** Zero-allocation map for the baseline-IOMMU modes: returns the raw
    IOVA (no handle box), skips the op log, and allocates no heap words
    after warm-up. Raises {!Rio_iommu.Driver.Exhausted} when the IOVA
    space is full and [Invalid_argument] under non-baseline modes. On
    [Exhausted] the cycles spent are not added to {!driver_cycles}. *)

val unmap_exn : t -> iova:int -> unit
(** Zero-allocation unmap of an IOVA returned by {!map_exn} (or
    {!map}+{!addr}). Raises {!Rio_iommu.Driver.Not_mapped} and, under
    non-baseline modes, [Invalid_argument]. Skips the op log. *)

val map_sg :
  t ->
  ring:int ->
  segments:(Rio_memory.Addr.phys * int) list ->
  dir:Rio_core.Rpte.dir ->
  (handle list, [ `Exhausted | `Overflow ]) result
(** Map a scatter-gather list (one handle per segment, as NIC/NVMe
    descriptors carry K addresses, §4). All-or-nothing: on failure the
    segments already mapped are unwound. *)

val unmap_sg : t -> handle list -> end_of_burst:bool -> (unit, [ `Not_mapped ]) result
(** Unmap a scatter-gather list; only the last segment carries
    [end_of_burst]. *)

val flush : t -> unit
(** Quiesce translation state: drain a deferred-mode invalidation queue,
    or (rIOMMU modes) invalidate every ring's rIOTLB entry, as a device
    reinitialization does. No-op for unprotected modes. *)

val addr : t -> handle -> int64
(** The address the driver writes into the DMA descriptor. *)

(** {1 Device side} *)

val translate :
  t -> addr:int64 -> offset:int -> write:bool -> (Rio_memory.Addr.phys, string) result
(** Resolve a descriptor address (+ byte offset) to physical memory the
    way the (r)IOMMU would; the error string names the fault. Charges
    device-side costs (IOTLB lookups, walks) but - per the validated
    model of §3.3 - these do not slow the core. *)

val translate_exn : t -> iova:int -> write:bool -> Rio_memory.Addr.phys
(** Zero-allocation {!translate} for the baseline-IOMMU modes: takes the
    raw IOVA (no int64 descriptor encoding), skips the op log, and
    allocates no heap words on the IOTLB-hit path. Faults raise the
    constant {!Rio_iommu.Hw.Translation_fault}; non-baseline modes raise
    [Invalid_argument]. *)

(** {1 Logging} *)

val set_log : t -> Op_log.t option -> unit
(** Attach (or detach) a DMA operation log: subsequent maps, unmaps and
    device-side translations are recorded with cycle timestamps - the
    trace-capture methodology of §5.4. *)

(** {1 Introspection for experiments and tests} *)

val map_breakdown : t -> Rio_sim.Breakdown.t option
val unmap_breakdown : t -> Rio_sim.Breakdown.t option
(** Per-component cost accounting (Table 1); [None] for unprotected
    modes. *)

val driver_cycles : t -> int
(** Total CPU cycles spent inside {!map}/{!unmap}/{!flush} - the
    protection cost the core pays, which per the validated §3.3 model is
    the {e only} thing that affects throughput. Device-side translation
    charges are excluded. *)

val reset_driver_cycles : t -> unit
(** Zero the {!driver_cycles} counter (after warmup). *)

val faults : t -> int
val live_mappings : t -> int
(** Currently mapped handles (as seen by this layer). *)

val pending_invalidations : t -> int
(** Deferred-mode queue depth; 0 elsewhere. *)

val rcache_stats : t -> Rio_iova.Magazine.stats option
(** Magazine-cache counters when [rcache] was enabled; [None]
    otherwise. *)
