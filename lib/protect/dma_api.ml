module Addr = Rio_memory.Addr
module Coherency = Rio_memory.Coherency
module Frame_allocator = Rio_memory.Frame_allocator
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model
module Arena = Rio_pagetable.Arena
module Iotlb = Rio_iotlb.Iotlb
module Allocator = Rio_iova.Allocator
module I_context = Rio_iommu.Context
module I_hw = Rio_iommu.Hw
module I_driver = Rio_iommu.Driver
module Rpte = Rio_core.Rpte
module Riova = Rio_core.Riova
module Rdevice = Rio_core.Rdevice
module R_hw = Rio_core.Hw
module R_driver = Rio_core.Driver

type config = {
  mode : Mode.t;
  rid : int;
  ring_sizes : int list;
  iotlb_capacity : int;
  iova_limit_pfn : int;
  defer_batch : int;
  total_frames : int;
  rcache : bool;
      (* magazine cache (Linux iova-rcache) in front of the IOVA
         allocator; baseline-IOMMU modes only *)
}

let default_config ~mode =
  {
    mode;
    rid = 0x0300;
    ring_sizes = [ 512; 512 ];
    iotlb_capacity = 64;
    iova_limit_pfn = 0xFFFFF;
    defer_batch = 250;
    total_frames = 200_000;
    rcache = false;
  }

type handle =
  | H_phys of { phys : Addr.phys }
  | H_base of { iova : int }
  | H_rio of { iova : Riova.t }

type backend =
  | B_plain of { sw_iotlb : unit Iotlb.t option }
      (** none / HWpt (no iotlb) / SWpt (identity iotlb) *)
  | B_base of { driver : I_driver.t; hw : I_hw.t }
  | B_rio of { driver : R_driver.t; hw : R_hw.t; device : Rdevice.t }

type t = {
  mode : Mode.t;
  rid : int;
  clock : Cycles.t;
  cost : Cost_model.t;
  frames : Frame_allocator.t;
  backend : backend;
  mutable live : int;
  mutable driver_cycles : int;
  mutable log : Op_log.t option;
}

(* §5.1: HWpt/SWpt throughput trails no-IOMMU by ~10%, entirely caused by
   ~200 cycles of kernel abstraction code per packet on the core. A
   packet is two map and two unmap calls on mlx, so ~50 cycles each. *)
let passthrough_overhead = 50

let create ?(cost = Cost_model.default) config =
  let clock = Cycles.create () in
  let frames = Frame_allocator.create ~total_frames:config.total_frames in
  let backend =
    match config.mode with
    | Mode.None_ | Mode.Hw_passthrough -> B_plain { sw_iotlb = None }
    | Mode.Sw_passthrough ->
        B_plain
          { sw_iotlb = Some (Iotlb.create ~capacity:config.iotlb_capacity ~clock ~cost ()) }
    | Mode.Strict | Mode.Strict_plus | Mode.Defer | Mode.Defer_plus ->
        let coherency =
          Coherency.create ~coherent:(Mode.coherent_walk config.mode) ~cost ~clock
        in
        let table = Arena.create ~frames ~coherency ~clock ~cost in
        let domain = I_context.Domain.make ~id:1 ~table in
        let context = I_context.create () in
        I_context.attach context (Rio_iommu.Bdf.of_rid config.rid) domain;
        let iotlb = Iotlb.create ~capacity:config.iotlb_capacity ~clock ~cost () in
        let hw = I_hw.create ~context ~iotlb ~clock ~cost in
        let kind =
          if Mode.uses_fast_allocator config.mode then Allocator.Fast
          else Allocator.Linux
        in
        let allocator =
          Allocator.create ~kind ~limit_pfn:config.iova_limit_pfn ~clock ~cost
        in
        let rcache =
          if config.rcache then
            Some (Rio_iova.Magazine.create ~base:allocator ~clock ~cost ())
          else None
        in
        let policy =
          if Mode.is_deferred config.mode then
            I_driver.Deferred { batch = config.defer_batch }
          else I_driver.Immediate
        in
        let driver =
          I_driver.create ?rcache ~domain ~allocator ~iotlb ~rid:config.rid
            ~policy ~clock ~cost ()
        in
        B_base { driver; hw }
    | Mode.Riommu_minus | Mode.Riommu ->
        let coherency =
          Coherency.create ~coherent:(Mode.coherent_walk config.mode) ~cost ~clock
        in
        let device =
          Rdevice.create ~rid:config.rid ~ring_sizes:config.ring_sizes ~frames
            ~coherency
        in
        let hw = R_hw.create ~clock ~cost in
        R_hw.attach hw device;
        let driver = R_driver.create ~device ~hw ~clock ~cost in
        B_rio { driver; hw; device }
  in
  {
    mode = config.mode;
    rid = config.rid;
    clock;
    cost;
    frames;
    backend;
    live = 0;
    driver_cycles = 0;
    log = None;
  }

let mode t = t.mode
let set_log t log = t.log <- log
let log_op t op =
  match t.log with
  | Some l -> Op_log.record l ~cycles:(Cycles.now t.clock) op
  | None -> ()

let clock t = t.clock
let cost t = t.cost
let frames t = t.frames

let addr t handle =
  match (t.backend, handle) with
  | B_plain _, H_phys { phys } -> Int64.of_int (Addr.to_int phys)
  | B_base _, H_base { iova } -> Int64.of_int iova
  | B_rio _, H_rio { iova } -> Riova.encode iova
  | _ -> invalid_arg "Dma_api.addr: handle from another mode"

(* Two plain projections instead of one tuple-returning [dir_perms]: the
   zero-alloc paths must not build a (bool * bool) box per call. *)
let dir_read = function
  | Rpte.To_memory -> false
  | Rpte.From_memory -> true
  | Rpte.Bidirectional -> true

let dir_write = function
  | Rpte.To_memory -> true
  | Rpte.From_memory -> false
  | Rpte.Bidirectional -> true

let map t ~ring ~phys ~bytes ~dir =
  let start = Cycles.now t.clock in
  let result =
    match t.backend with
    | B_plain _ ->
        if t.mode <> Mode.None_ then
          Cycles.charge t.clock passthrough_overhead;
        Ok (H_phys { phys })
    | B_base { driver; _ } ->
        (match
           I_driver.map driver ~phys ~bytes ~read:(dir_read dir)
             ~write:(dir_write dir)
         with
        | Ok iova -> Ok (H_base { iova })
        | Error `Exhausted -> Error `Exhausted)
    | B_rio { driver; _ } -> (
        match R_driver.map driver ~rid:ring ~phys ~size:bytes ~dir with
        | Ok iova -> Ok (H_rio { iova })
        | Error `Overflow -> Error `Overflow)
  in
  (match result with
  | Ok h ->
      t.live <- t.live + 1;
      (match t.log with
      | None -> ()
      | Some _ -> log_op t (Op_log.Map { ring; addr = addr t h; bytes }))
  | Error _ -> ());
  t.driver_cycles <- t.driver_cycles + Cycles.since t.clock start;
  result

(* Zero-alloc primary for the baseline-IOMMU modes: raw IOVA in, raw IOVA
   out, no handle box, no result box, no op-log record. The op log never
   sees these calls. *)
let map_exn t ~phys ~bytes ~dir =
  match t.backend with
  | B_base { driver; _ } ->
      let start = Cycles.now t.clock in
      let iova =
        I_driver.map_exn driver ~phys ~bytes ~read:(dir_read dir)
          ~write:(dir_write dir)
      in
      t.live <- t.live + 1;
      t.driver_cycles <- t.driver_cycles + Cycles.since t.clock start;
      iova
  | B_plain _ | B_rio _ ->
      invalid_arg "Dma_api.map_exn: baseline-IOMMU modes only"

let unmap t handle ~end_of_burst =
  let start = Cycles.now t.clock in
  let result =
    match (t.backend, handle) with
    | B_plain _, H_phys _ ->
        if t.mode <> Mode.None_ then
          Cycles.charge t.clock passthrough_overhead;
        Ok ()
    | B_base { driver; _ }, H_base { iova } -> I_driver.unmap driver ~iova
    | B_rio { driver; _ }, H_rio { iova } -> R_driver.unmap driver iova ~end_of_burst
    | _ -> invalid_arg "Dma_api.unmap: handle from another mode"
  in
  (match result with
  | Ok () ->
      t.live <- t.live - 1;
      (match t.log with
      | None -> ()
      | Some _ -> log_op t (Op_log.Unmap { addr = addr t handle }))
  | Error _ -> ());
  t.driver_cycles <- t.driver_cycles + Cycles.since t.clock start;
  result

let unmap_exn t ~iova =
  match t.backend with
  | B_base { driver; _ } ->
      let start = Cycles.now t.clock in
      I_driver.unmap_exn driver ~iova;
      t.live <- t.live - 1;
      t.driver_cycles <- t.driver_cycles + Cycles.since t.clock start
  | B_plain _ | B_rio _ ->
      invalid_arg "Dma_api.unmap_exn: baseline-IOMMU modes only"

let map_sg t ~ring ~segments ~dir =
  if segments = [] then invalid_arg "Dma_api.map_sg: empty list";
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (phys, bytes) :: rest -> (
        match map t ~ring ~phys ~bytes ~dir with
        | Ok h -> go (h :: acc) rest
        | Error e ->
            (* unwind the prefix so a failed SG map leaves nothing live *)
            List.iteri
              (fun i h ->
                match unmap t h ~end_of_burst:(i = List.length acc - 1) with
                | Ok () -> ()
                | Error `Not_mapped -> assert false)
              acc;
            Error e)
  in
  go [] segments

let unmap_sg t handles ~end_of_burst =
  let n = List.length handles in
  if n = 0 then invalid_arg "Dma_api.unmap_sg: empty list";
  let rec go i = function
    | [] -> Ok ()
    | h :: rest -> (
        match unmap t h ~end_of_burst:(end_of_burst && i = n - 1) with
        | Ok () -> go (i + 1) rest
        | Error `Not_mapped -> Error `Not_mapped)
  in
  go 0 handles

let flush t =
  let start = Cycles.now t.clock in
  (match t.backend with
  | B_base { driver; _ } -> I_driver.flush driver
  | B_rio { hw; device; _ } ->
      (* quiesce: drop every ring's rIOTLB entry (device reinit, §2.2) *)
      for ring = 0 to Rdevice.ring_count device - 1 do
        Rio_core.Riotlb.invalidate (R_hw.riotlb hw) ~bdf:t.rid ~rid:ring
      done
  | B_plain _ -> ());
  t.driver_cycles <- t.driver_cycles + Cycles.since t.clock start

let driver_cycles t = t.driver_cycles
let reset_driver_cycles t = t.driver_cycles <- 0

let translate t ~addr:target ~offset ~write =
  let result =
    match t.backend with
  | B_plain { sw_iotlb } -> (
      let phys = Addr.phys_of_int (Int64.to_int target + offset) in
      match sw_iotlb with
      | None -> Ok phys
      | Some iotlb ->
          (* SWpt: identity translation still exercises the IOTLB and the
             page walk on a miss (§5.1's methodology validation). *)
          let vpn = Addr.pfn phys in
          (match Iotlb.find_exn iotlb ~bdf:t.rid ~vpn with
          | () -> ()
          | exception Not_found ->
              Cycles.charge t.clock (4 * t.cost.Cost_model.io_walk_ref);
              Iotlb.insert iotlb ~bdf:t.rid ~vpn ());
          Ok phys)
  | B_base { hw; _ } -> (
      match
        I_hw.translate hw ~rid:t.rid ~iova:(Int64.to_int target + offset) ~write
      with
      | Ok phys -> Ok phys
      | Error f -> Error (Format.asprintf "%a" I_hw.pp_fault f))
  | B_rio { hw; _ } -> (
      let iova = Riova.decode target in
      let iova = Riova.with_offset iova (iova.Riova.offset + offset) in
      match R_hw.rtranslate hw ~bdf:t.rid ~iova ~write with
      | Ok phys -> Ok phys
      | Error f -> Error (Format.asprintf "%a" R_hw.pp_fault f))
  in
  (match t.log with
  | None -> ()
  | Some _ ->
      log_op t
        (Op_log.Access { addr = target; offset; write; ok = Result.is_ok result }));
  result

(* Zero-alloc device-side twin of [translate] for the baseline-IOMMU
   modes: raw IOVA in, phys out, no result/error boxing, no op-log
   record. Faults raise the hardware layer's constant exception. *)
let translate_exn t ~iova ~write =
  match t.backend with
  | B_base { hw; _ } -> I_hw.translate_exn hw ~rid:t.rid ~iova ~write
  | B_plain _ | B_rio _ ->
      invalid_arg "Dma_api.translate_exn: baseline-IOMMU modes only"

let map_breakdown t =
  match t.backend with
  | B_plain _ -> None
  | B_base { driver; _ } -> Some (I_driver.map_breakdown driver)
  | B_rio { driver; _ } -> Some (R_driver.map_breakdown driver)

let unmap_breakdown t =
  match t.backend with
  | B_plain _ -> None
  | B_base { driver; _ } -> Some (I_driver.unmap_breakdown driver)
  | B_rio { driver; _ } -> Some (R_driver.unmap_breakdown driver)

let faults t =
  match t.backend with
  | B_plain _ -> 0
  | B_base { hw; _ } -> I_hw.faults hw
  | B_rio { hw; _ } -> R_hw.faults hw

let live_mappings t = t.live

let pending_invalidations t =
  match t.backend with
  | B_base { driver; _ } -> I_driver.pending driver
  | B_plain _ | B_rio _ -> 0

let rcache_stats t =
  match t.backend with
  | B_base { driver; _ } ->
      Option.map Rio_iova.Magazine.stats (I_driver.rcache driver)
  | B_plain _ | B_rio _ -> None
