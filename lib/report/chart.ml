let hbar ?(width = 50) ?(unit_label = "") rows =
  let vmax = List.fold_left (fun m (_, v) -> Float.max m v) 0. rows in
  let lwidth =
    List.fold_left (fun m (l, _) -> max m (String.length l)) 0 rows
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun (label, v) ->
      let n =
        if vmax <= 0. then 0
        else int_of_float (Float.round (v /. vmax *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%s%s %.2f%s\n" lwidth label (String.make n '#')
           (String.make (width - n) ' ')
           v unit_label))
    rows;
  Buffer.contents buf

(* Immutable on purpose: module-level arrays trip the domain-safety
   lint (they are shared mutable state); a string is the same lookup
   table without the mutability. *)
let fill_chars = "#=+:.%@~"

let stacked ?(width = 60) ~segments rows =
  let nseg = List.length segments in
  List.iter
    (fun (label, vs) ->
      if List.length vs <> nseg then
        invalid_arg (Printf.sprintf "Chart.stacked: row %S width" label))
    rows;
  let total vs = List.fold_left ( +. ) 0. vs in
  let vmax = List.fold_left (fun m (_, vs) -> Float.max m (total vs)) 0. rows in
  let lwidth =
    List.fold_left (fun m (l, _) -> max m (String.length l)) 0 rows
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "legend:";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf " %c=%s" fill_chars.[i mod String.length fill_chars] s))
    segments;
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, vs) ->
      Buffer.add_string buf (Printf.sprintf "%-*s |" lwidth label);
      if vmax > 0. then begin
        (* largest-remainder rounding so each row's bar length is exact *)
        let scale v = v /. vmax *. float_of_int width in
        let drawn = ref 0 in
        let acc = ref 0. in
        List.iteri
          (fun i v ->
            acc := !acc +. scale v;
            let upto = int_of_float (Float.round !acc) in
            if upto > !drawn then begin
              Buffer.add_string buf
                (String.make (upto - !drawn)
                   fill_chars.[i mod String.length fill_chars]);
              drawn := upto
            end)
          vs;
        ()
      end;
      Buffer.add_string buf (Printf.sprintf "  %.0f\n" (total vs)))
    rows;
  Buffer.contents buf

let scatter ?(rows = 16) ?(cols = 60) ?(x_label = "x") ?(y_label = "y") ~curve
    ~points () =
  let all_x =
    List.map fst curve @ List.map (fun (_, x, _) -> x) points
  in
  let all_y =
    List.map snd curve @ List.map (fun (_, _, y) -> y) points
  in
  if all_x = [] then invalid_arg "Chart.scatter: empty";
  let xmin = List.fold_left Float.min infinity all_x in
  let xmax = List.fold_left Float.max neg_infinity all_x in
  let ymin = 0. in
  let ymax = List.fold_left Float.max neg_infinity all_y in
  let grid = Array.make_matrix rows cols ' ' in
  let place x y c =
    if xmax > xmin && ymax > ymin then begin
      (* log x axis, as in the paper's Figure 8 *)
      let fx = (log x -. log xmin) /. (log xmax -. log xmin) in
      let fy = (y -. ymin) /. (ymax -. ymin) in
      let col = min (cols - 1) (max 0 (int_of_float (fx *. float_of_int (cols - 1)))) in
      let row =
        min (rows - 1) (max 0 (rows - 1 - int_of_float (fy *. float_of_int (rows - 1))))
      in
      grid.(row).(col) <- c
    end
  in
  List.iter (fun (x, y) -> place x y '.') curve;
  List.iter (fun (label, x, y) -> place x y (if label = "" then '*' else label.[0]))
    points;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "%s (max %.1f)\n" y_label ymax);
  Array.iter
    (fun line ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (String.init cols (fun i -> line.(i)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make cols '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf " %s: %.0f .. %.0f (log scale)\n" x_label xmin xmax);
  Buffer.contents buf
