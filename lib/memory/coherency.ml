(* Dirty-line tracking is an open-addressing int set (linear probing with
   tombstones) rather than a Hashtbl: [cpu_write]/[flush_line] sit on the
   zero-alloc map/unmap fast path, and Hashtbl.replace allocates a bucket
   cons on every insertion. Slots store [line + 1]; 0 is empty and -1 a
   tombstone, and an insertion reuses the first tombstone on its probe
   path, so the steady-state dirty/flush cycle of one line never grows
   the table. *)

type t = {
  coherent : bool;
  cost : Rio_sim.Cost_model.t;
  clock : Rio_sim.Cycles.t;
  mutable slots : int array; (* 0 = empty, -1 = tombstone, else line+1 *)
  mutable spare : int array; (* same-size rebuild target (double buffer) *)
  mutable live : int; (* stored lines *)
  mutable used : int; (* live + tombstones *)
}

let initial_capacity = 128

let create ~coherent ~cost ~clock =
  {
    coherent;
    cost;
    clock;
    slots = Array.make initial_capacity 0;
    spare = Array.make initial_capacity 0;
    live = 0;
    used = 0;
  }

let is_coherent t = t.coherent

(* Fibonacci-style multiplicative hash (same constant as the IOTLB's
   packed-key table); capacities are powers of two. *)
let hash slots line = line * 0x2545F4914F6CDD1D land max_int land (Array.length slots - 1)

let insert_into slots line =
  let mask = Array.length slots - 1 in
  let i = ref (hash slots line) in
  let dst = ref (-1) in
  let res = ref (-2) in
  while !res = -2 do
    let v = slots.(!i) in
    if v = 0 then begin
      (* absent: land in the first tombstone seen, else here *)
      let d = if !dst >= 0 then !dst else !i in
      slots.(d) <- line + 1;
      res := if !dst >= 0 then 1 else 0 (* 1: reused tombstone *)
    end
    else if v = -1 then begin
      if !dst < 0 then dst := !i;
      i := (!i + 1) land mask
    end
    else if v = line + 1 then res := 2 (* already present *)
    else i := (!i + 1) land mask
  done;
  !res

let rehash t =
  (* Doubling when genuinely full, same size when tombstones dominate.
     The same-size case — the steady-state one, since a write/flush
     cycle keeps [live] near zero while tombstones accumulate — rebuilds
     into the preallocated double buffer and swaps, so the hot
     map/unmap path never allocates. Growth (rare, warm-up only)
     allocates a fresh pair. *)
  let cap = Array.length t.slots in
  let src = t.slots in
  if t.live * 4 >= cap then begin
    let dst = Array.make (cap * 2) 0 in
    for i = 0 to cap - 1 do
      let v = src.(i) in
      if v > 0 then ignore (insert_into dst (v - 1))
    done;
    t.slots <- dst;
    t.spare <- Array.make (cap * 2) 0
  end
  else begin
    let dst = t.spare in
    Array.fill dst 0 cap 0;
    for i = 0 to cap - 1 do
      let v = src.(i) in
      if v > 0 then ignore (insert_into dst (v - 1))
    done;
    t.slots <- dst;
    t.spare <- src
  end;
  t.used <- t.live

let add t line =
  if t.used * 2 >= Array.length t.slots then rehash t;
  match insert_into t.slots line with
  | 0 ->
      t.live <- t.live + 1;
      t.used <- t.used + 1
  | 1 -> t.live <- t.live + 1 (* tombstone reused: [used] unchanged *)
  | _ -> ()

let remove t line =
  let mask = Array.length t.slots - 1 in
  let i = ref (hash t.slots line) in
  let continue = ref true in
  while !continue do
    let v = t.slots.(!i) in
    if v = 0 then continue := false
    else begin
      if v = line + 1 then begin
        t.slots.(!i) <- -1;
        t.live <- t.live - 1;
        continue := false
      end
      else i := (!i + 1) land mask
    end
  done

let mem t line =
  let mask = Array.length t.slots - 1 in
  let i = ref (hash t.slots line) in
  let res = ref (-1) in
  while !res = -1 do
    let v = t.slots.(!i) in
    if v = 0 then res := 0
    else if v = line + 1 then res := 1
    else i := (!i + 1) land mask
  done;
  !res = 1

let cpu_write t addr = if not t.coherent then add t (Addr.line_of addr)

let flush_line t addr =
  if not t.coherent then begin
    Rio_sim.Cycles.charge t.clock t.cost.Rio_sim.Cost_model.cacheline_flush;
    remove t (Addr.line_of addr)
  end

let barrier t = Rio_sim.Cycles.charge t.clock t.cost.Rio_sim.Cost_model.barrier

let sync_mem t addr =
  if not t.coherent then begin
    barrier t;
    flush_line t addr
  end;
  barrier t

let walker_sees_fresh t addr = t.coherent || not (mem t (Addr.line_of addr))
let dirty_lines t = t.live
