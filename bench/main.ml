(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (the reproduction harness; full-fidelity runs, paper-vs-measured
   cells).

   Part 2 runs Bechamel wall-clock micro-benchmarks of the operations
   each artifact is built from - one Test.make group per table/figure:
     table1:   map+unmap pairs per protection mode
     figure7:  the rIOMMU driver's map and unmap in isolation
     figure8:  one full interrupt round of the stream simulation
     figure12: the server-model evaluation
     table3:   one RR transaction
     iotlb_miss: a translation under hit and under walk
     prefetchers: predictor observe+predict steps
     bonnie:   a SATA submit+complete+reclaim cycle

   Set RIOMMU_BENCH_QUICK=1 to shorten part 1 (CI smoke).

   Run with: dune exec bench/main.exe *)

module Mode = Rio_protect.Mode
module Dma_api = Rio_protect.Dma_api
module Rpte = Rio_core.Rpte

let quick =
  match Sys.getenv_opt "RIOMMU_BENCH_QUICK" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

(* {1 Part 1: the reproduction harness} *)

let run_experiments () =
  print_endline "================================================================";
  print_endline " rIOMMU reproduction: every table and figure of the evaluation";
  print_endline "================================================================\n";
  List.iter
    (fun id ->
      let runner = Option.get (Rio_experiments.Registry.find id) in
      let started = Unix.gettimeofday () in
      let exp = runner ~quick () in
      Printf.printf "%s(%.1fs)\n\n" (Rio_experiments.Exp.render exp)
        (Unix.gettimeofday () -. started))
    Rio_experiments.Registry.ids

(* {1 Part 2: Bechamel micro-benchmarks} *)

open Bechamel
open Toolkit

(* One map+unmap pair through the protection facade; the state carried
   across runs keeps the allocator and tables warm. *)
let map_unmap_bench mode =
  let api = Dma_api.create (Dma_api.default_config ~mode) in
  let buf = Rio_memory.Frame_allocator.alloc_exn (Dma_api.frames api) in
  Test.make
    ~name:(Printf.sprintf "map+unmap/%s" (Mode.name mode))
    (Staged.stage (fun () ->
         match Dma_api.map api ~ring:0 ~phys:buf ~bytes:1500 ~dir:Rpte.Bidirectional with
         | Ok h -> ignore (Dma_api.unmap api h ~end_of_burst:true)
         | Error _ -> ()))

let riommu_driver_bench () =
  let api = Dma_api.create (Dma_api.default_config ~mode:Mode.Riommu) in
  let buf = Rio_memory.Frame_allocator.alloc_exn (Dma_api.frames api) in
  Test.make ~name:"figure7/riommu-map-unmap"
    (Staged.stage (fun () ->
         match Dma_api.map api ~ring:0 ~phys:buf ~bytes:1500 ~dir:Rpte.Bidirectional with
         | Ok h -> ignore (Dma_api.unmap api h ~end_of_burst:false)
         | Error _ -> ()))

let stream_round_bench mode =
  let profile = { Rio_device.Nic_profiles.mlx with rx_ring = 256; tx_ring = 256 } in
  let api =
    Dma_api.create
      {
        (Dma_api.default_config ~mode) with
        Dma_api.ring_sizes = Rio_device.Nic.ring_sizes profile;
      }
  in
  let rng = Rio_sim.Rng.create ~seed:3 in
  let mem = Rio_memory.Phys_mem.create () in
  let nic = Rio_device.Nic.create ~data_movement:false ~profile ~api ~mem ~rng () in
  ignore (Rio_device.Nic.rx_fill nic);
  let payload = Bytes.make 1500 'x' in
  Test.make
    ~name:(Printf.sprintf "figure8/stream-round-%s" (Mode.name mode))
    (Staged.stage (fun () ->
         ignore (Rio_device.Nic.tx_reclaim nic);
         for _ = 1 to 8 do
           ignore (Rio_device.Nic.tx_submit nic ~payload)
         done;
         ignore (Rio_device.Nic.device_tx_process nic ~max:8)))

let server_model_bench () =
  let profile = Rio_device.Nic_profiles.mlx in
  let cost = Rio_sim.Cost_model.default in
  Test.make ~name:"figure12/server-model"
    (Staged.stage (fun () ->
         ignore
           (Rio_workload.Apache.run Rio_workload.Apache.KB1 ~profile
              ~protection_per_packet:500. ~cost);
         ignore
           (Rio_workload.Memcached.run ~profile ~protection_per_packet:500. ~cost)))

let rr_transaction_bench () =
  let profile = { Rio_device.Nic_profiles.mlx with rx_ring = 64; tx_ring = 64 } in
  let api =
    Dma_api.create
      {
        (Dma_api.default_config ~mode:Mode.Riommu) with
        Dma_api.ring_sizes = Rio_device.Nic.ring_sizes profile;
      }
  in
  let rng = Rio_sim.Rng.create ~seed:4 in
  let mem = Rio_memory.Phys_mem.create () in
  let nic = Rio_device.Nic.create ~data_movement:false ~profile ~api ~mem ~rng () in
  ignore (Rio_device.Nic.rx_fill nic);
  let one = Bytes.make 1 'p' in
  Test.make ~name:"table3/rr-transaction"
    (Staged.stage (fun () ->
         ignore (Rio_device.Nic.device_rx_deliver nic ~payload:one);
         ignore (Rio_device.Nic.rx_reap_next nic ~end_of_burst:true);
         ignore (Rio_device.Nic.rx_fill nic);
         ignore (Rio_device.Nic.tx_submit nic ~payload:one);
         ignore (Rio_device.Nic.device_tx_process nic ~max:1);
         ignore (Rio_device.Nic.tx_reclaim nic)))

let translate_bench ~name ~pool =
  let api = Dma_api.create (Dma_api.default_config ~mode:Mode.Strict) in
  let frames = Dma_api.frames api in
  let rng = Rio_sim.Rng.create ~seed:6 in
  let handles =
    Array.init pool (fun _ ->
        let buf = Rio_memory.Frame_allocator.alloc_exn frames in
        match Dma_api.map api ~ring:0 ~phys:buf ~bytes:4096 ~dir:Rpte.Bidirectional with
        | Ok h -> Dma_api.addr api h
        | Error _ -> failwith "bench: map failed")
  in
  Test.make ~name
    (Staged.stage (fun () ->
         let addr = handles.(if pool = 1 then 0 else Rio_sim.Rng.int rng pool) in
         ignore (Dma_api.translate api ~addr ~offset:0 ~write:false)))

let prefetcher_bench (module P : Rio_prefetch.Prefetcher.S) =
  let p = P.create ~history:1024 in
  let counter = ref 0 in
  Test.make
    ~name:(Printf.sprintf "prefetchers/%s-step" P.name)
    (Staged.stage (fun () ->
         incr counter;
         let page = !counter mod 512 in
         ignore (P.predict p page);
         P.observe p page))

(* One map/translate/unmap round trip through the multi-tenant domain
   manager, with a second tenant registered so the shared-IOTLB policy
   machinery (ownership, attribution) is on the path. *)
let domain_bench policy =
  let open Rio_domain in
  let clock = Rio_sim.Cycles.create () in
  let cost = Rio_sim.Cost_model.default in
  let frames = Rio_memory.Frame_allocator.create ~total_frames:200_000 in
  let mgr =
    Manager.create ~iotlb_policy:policy ~iotlb_capacity:128
      ~invalidation:Manager.Per_domain ~policy:Manager.Immediate ~frames ~clock
      ~cost ()
  in
  let a =
    Manager.add_domain mgr ~name:"a"
      ~bdf:(Rio_iommu.Bdf.make ~bus:1 ~device:0 ~func:0)
      ()
  in
  let _b =
    Manager.add_domain mgr ~name:"b"
      ~bdf:(Rio_iommu.Bdf.make ~bus:2 ~device:0 ~func:0)
      ()
  in
  let buf = Rio_memory.Frame_allocator.alloc_exn frames in
  Test.make
    ~name:
      (Printf.sprintf "tenants/map-translate-unmap-%s"
         (Shared_iotlb.policy_name policy))
    (Staged.stage (fun () ->
         match Manager.map mgr a ~phys:buf ~bytes:1500 ~read:true ~write:true with
         | Ok iova ->
             ignore (Manager.translate mgr ~rid:(Manager.rid a) ~iova ~write:true);
             ignore (Manager.unmap mgr a ~iova)
         | Error `Exhausted -> ()))

let scheduler_round_bench () =
  let open Rio_domain in
  let tenants =
    [
      Scheduler.nic_tenant ~latency_critical:true ~name:"victim" ();
      Scheduler.nvme_tenant ~name:"noisy" ();
    ]
  in
  Test.make ~name:"tenants/scheduler-50-ios"
    (Staged.stage (fun () ->
         let cfg =
           Scheduler.default_config ~ios_per_tenant:50
             ~mode:Rio_protect.Mode.Strict ~policy:Shared_iotlb.Shared ()
         in
         ignore (Scheduler.run cfg tenants)))

let sata_bench () =
  let api =
    Dma_api.create
      {
        (Dma_api.default_config ~mode:Mode.Strict) with
        Dma_api.ring_sizes = [ Rio_device.Sata.slots + 1 ];
      }
  in
  let rng = Rio_sim.Rng.create ~seed:8 in
  let mem = Rio_memory.Phys_mem.create () in
  let sata =
    Rio_device.Sata.create ~data_movement:false ~bandwidth_mbps:150. ~api ~mem ~rng ()
  in
  Test.make ~name:"bonnie/sata-request"
    (Staged.stage (fun () ->
         ignore (Rio_device.Sata.submit sata ~bytes:65_536 ~write:true);
         ignore (Rio_device.Sata.device_complete sata ~max:1);
         ignore (Rio_device.Sata.reclaim sata)))

let benchmarks () =
  Test.make_grouped ~name:"riommu"
    [
      Test.make_grouped ~name:"table1" (List.map map_unmap_bench Mode.evaluated);
      riommu_driver_bench ();
      stream_round_bench Mode.Strict;
      stream_round_bench Mode.Riommu;
      server_model_bench ();
      rr_transaction_bench ();
      translate_bench ~name:"iotlb_miss/translate-hit" ~pool:1;
      translate_bench ~name:"iotlb_miss/translate-miss" ~pool:2_000;
      Test.make_grouped ~name:"prefetchers"
        (List.map prefetcher_bench
           [ (module Rio_prefetch.Markov : Rio_prefetch.Prefetcher.S);
             (module Rio_prefetch.Recency);
             (module Rio_prefetch.Distance) ]);
      sata_bench ();
      Test.make_grouped ~name:"tenants"
        [
          domain_bench Rio_domain.Shared_iotlb.Shared;
          domain_bench Rio_domain.Shared_iotlb.Partitioned;
          scheduler_round_bench ();
        ];
    ]

let run_benchmarks () =
  print_endline "================================================================";
  print_endline " Bechamel micro-benchmarks (wall clock of the OCaml model)";
  print_endline "================================================================\n";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let raw_results = Benchmark.all cfg instances (benchmarks ()) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  (match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> ()
  | Some by_test ->
      let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) by_test [] in
      List.iter
        (fun (name, ols_result) ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Printf.printf "%-45s %12.0f ns/run\n" name est
          | Some [] | None -> ())
        (List.sort compare rows))

let () =
  run_experiments ();
  run_benchmarks ()
