(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (the reproduction harness; full-fidelity runs, paper-vs-measured
   cells).

   Part 2 runs Bechamel wall-clock micro-benchmarks of the operations
   each artifact is built from - one Test.make group per table/figure:
     table1:   map+unmap pairs per protection mode
     figure7:  the rIOMMU driver's map and unmap in isolation
     figure8:  one full interrupt round of the stream simulation
     figure12: the server-model evaluation
     table3:   one RR transaction
     iotlb_miss: a translation under hit and under walk
     prefetchers: predictor observe+predict steps
     bonnie:   a SATA submit+complete+reclaim cycle

   Part 3 (--json) is the machine-readable hot-path baseline: hand-rolled
   loops over the translate / map / unmap / iotlb-lookup / event-queue
   operations measuring ns/op (wall clock) and allocated words/op
   (Gc.minor_words deltas), written to BENCH.json. It exits nonzero if
   the steady-state IOTLB lookup or event-queue push/pop allocates,
   which is how CI pins the zero-allocation property.

   Set RIOMMU_BENCH_QUICK=1 (or pass --quick) to shorten runs (CI smoke).

   Run with: dune exec bench/main.exe [-- --json] [-- --quick] *)

module Mode = Rio_protect.Mode
module Dma_api = Rio_protect.Dma_api
module Rpte = Rio_core.Rpte

let argv = List.tl (Array.to_list Sys.argv)
let json_mode = List.mem "--json" argv

let quick =
  List.mem "--quick" argv
  ||
  match Sys.getenv_opt "RIOMMU_BENCH_QUICK" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

(* --jobs N parallelizes part 1's experiment cells (no effect on the
   micro-benchmarks, which must stay single-threaded to be meaningful) *)
let jobs =
  let rec find = function
    | ("--jobs" | "-j") :: v :: rest -> (
        match int_of_string_opt v with Some n -> n | None -> find rest)
    | _ :: rest -> find rest
    | [] -> 1
  in
  find argv

(* {1 Part 1: the reproduction harness} *)

let run_experiments () =
  print_endline "================================================================";
  print_endline " rIOMMU reproduction: every table and figure of the evaluation";
  print_endline "================================================================\n";
  List.iter
    (fun id ->
      let runner = Option.get (Rio_experiments.Registry.find id) in
      let started = Unix.gettimeofday () in
      let exp = runner ~quick ~jobs () in
      Printf.printf "%s(%.1fs)\n\n" (Rio_experiments.Exp.render exp)
        (Unix.gettimeofday () -. started))
    Rio_experiments.Registry.ids

(* {1 Part 2: Bechamel micro-benchmarks} *)

open Bechamel
open Toolkit

(* One map+unmap pair through the protection facade; the state carried
   across runs keeps the allocator and tables warm. *)
let map_unmap_bench mode =
  let api = Dma_api.create (Dma_api.default_config ~mode) in
  let buf = Rio_memory.Frame_allocator.alloc_exn (Dma_api.frames api) in
  Test.make
    ~name:(Printf.sprintf "map+unmap/%s" (Mode.name mode))
    (Staged.stage (fun () ->
         match Dma_api.map api ~ring:0 ~phys:buf ~bytes:1500 ~dir:Rpte.Bidirectional with
         | Ok h -> ignore (Dma_api.unmap api h ~end_of_burst:true)
         | Error _ -> ()))

let riommu_driver_bench () =
  let api = Dma_api.create (Dma_api.default_config ~mode:Mode.Riommu) in
  let buf = Rio_memory.Frame_allocator.alloc_exn (Dma_api.frames api) in
  Test.make ~name:"figure7/riommu-map-unmap"
    (Staged.stage (fun () ->
         match Dma_api.map api ~ring:0 ~phys:buf ~bytes:1500 ~dir:Rpte.Bidirectional with
         | Ok h -> ignore (Dma_api.unmap api h ~end_of_burst:false)
         | Error _ -> ()))

let stream_round_bench mode =
  let profile = { Rio_device.Nic_profiles.mlx with rx_ring = 256; tx_ring = 256 } in
  let api =
    Dma_api.create
      {
        (Dma_api.default_config ~mode) with
        Dma_api.ring_sizes = Rio_device.Nic.ring_sizes profile;
      }
  in
  let rng = Rio_sim.Rng.create ~seed:3 in
  let mem = Rio_memory.Phys_mem.create () in
  let nic = Rio_device.Nic.create ~data_movement:false ~profile ~api ~mem ~rng () in
  ignore (Rio_device.Nic.rx_fill nic);
  let payload = Bytes.make 1500 'x' in
  Test.make
    ~name:(Printf.sprintf "figure8/stream-round-%s" (Mode.name mode))
    (Staged.stage (fun () ->
         ignore (Rio_device.Nic.tx_reclaim nic);
         for _ = 1 to 8 do
           ignore (Rio_device.Nic.tx_submit nic ~payload)
         done;
         ignore (Rio_device.Nic.device_tx_process nic ~max:8)))

let server_model_bench () =
  let profile = Rio_device.Nic_profiles.mlx in
  let cost = Rio_sim.Cost_model.default in
  Test.make ~name:"figure12/server-model"
    (Staged.stage (fun () ->
         ignore
           (Rio_workload.Apache.run Rio_workload.Apache.KB1 ~profile
              ~protection_per_packet:500. ~cost);
         ignore
           (Rio_workload.Memcached.run ~profile ~protection_per_packet:500. ~cost)))

let rr_transaction_bench () =
  let profile = { Rio_device.Nic_profiles.mlx with rx_ring = 64; tx_ring = 64 } in
  let api =
    Dma_api.create
      {
        (Dma_api.default_config ~mode:Mode.Riommu) with
        Dma_api.ring_sizes = Rio_device.Nic.ring_sizes profile;
      }
  in
  let rng = Rio_sim.Rng.create ~seed:4 in
  let mem = Rio_memory.Phys_mem.create () in
  let nic = Rio_device.Nic.create ~data_movement:false ~profile ~api ~mem ~rng () in
  ignore (Rio_device.Nic.rx_fill nic);
  let one = Bytes.make 1 'p' in
  Test.make ~name:"table3/rr-transaction"
    (Staged.stage (fun () ->
         ignore (Rio_device.Nic.device_rx_deliver nic ~payload:one);
         ignore (Rio_device.Nic.rx_reap_next nic ~end_of_burst:true);
         ignore (Rio_device.Nic.rx_fill nic);
         ignore (Rio_device.Nic.tx_submit nic ~payload:one);
         ignore (Rio_device.Nic.device_tx_process nic ~max:1);
         ignore (Rio_device.Nic.tx_reclaim nic)))

let translate_bench ~name ~pool =
  let api = Dma_api.create (Dma_api.default_config ~mode:Mode.Strict) in
  let frames = Dma_api.frames api in
  let rng = Rio_sim.Rng.create ~seed:6 in
  let handles =
    Array.init pool (fun _ ->
        let buf = Rio_memory.Frame_allocator.alloc_exn frames in
        match Dma_api.map api ~ring:0 ~phys:buf ~bytes:4096 ~dir:Rpte.Bidirectional with
        | Ok h -> Dma_api.addr api h
        | Error _ -> failwith "bench: map failed")
  in
  Test.make ~name
    (Staged.stage (fun () ->
         let addr = handles.(if pool = 1 then 0 else Rio_sim.Rng.int rng pool) in
         ignore (Dma_api.translate api ~addr ~offset:0 ~write:false)))

let prefetcher_bench (module P : Rio_prefetch.Prefetcher.S) =
  let p = P.create ~history:1024 in
  let counter = ref 0 in
  Test.make
    ~name:(Printf.sprintf "prefetchers/%s-step" P.name)
    (Staged.stage (fun () ->
         incr counter;
         let page = !counter mod 512 in
         ignore (P.predict p page);
         P.observe p page))

(* One map/translate/unmap round trip through the multi-tenant domain
   manager, with a second tenant registered so the shared-IOTLB policy
   machinery (ownership, attribution) is on the path. *)
let domain_bench policy =
  let open Rio_domain in
  let clock = Rio_sim.Cycles.create () in
  let cost = Rio_sim.Cost_model.default in
  let frames = Rio_memory.Frame_allocator.create ~total_frames:200_000 in
  let mgr =
    Manager.create ~iotlb_policy:policy ~iotlb_capacity:128
      ~invalidation:Manager.Per_domain ~policy:Manager.Immediate ~frames ~clock
      ~cost ()
  in
  let a =
    Manager.add_domain mgr ~name:"a"
      ~bdf:(Rio_iommu.Bdf.make ~bus:1 ~device:0 ~func:0)
      ()
  in
  let _b =
    Manager.add_domain mgr ~name:"b"
      ~bdf:(Rio_iommu.Bdf.make ~bus:2 ~device:0 ~func:0)
      ()
  in
  let buf = Rio_memory.Frame_allocator.alloc_exn frames in
  Test.make
    ~name:
      (Printf.sprintf "tenants/map-translate-unmap-%s"
         (Shared_iotlb.policy_name policy))
    (Staged.stage (fun () ->
         match Manager.map mgr a ~phys:buf ~bytes:1500 ~read:true ~write:true with
         | Ok iova ->
             ignore (Manager.translate mgr ~rid:(Manager.rid a) ~iova ~write:true);
             ignore (Manager.unmap mgr a ~iova)
         | Error `Exhausted -> ()))

let scheduler_round_bench () =
  let open Rio_domain in
  let tenants =
    [
      Scheduler.nic_tenant ~latency_critical:true ~name:"victim" ();
      Scheduler.nvme_tenant ~name:"noisy" ();
    ]
  in
  Test.make ~name:"tenants/scheduler-50-ios"
    (Staged.stage (fun () ->
         let cfg =
           Scheduler.default_config ~ios_per_tenant:50
             ~mode:Rio_protect.Mode.Strict ~policy:Shared_iotlb.Shared ()
         in
         ignore (Scheduler.run cfg tenants)))

let sata_bench () =
  let api =
    Dma_api.create
      {
        (Dma_api.default_config ~mode:Mode.Strict) with
        Dma_api.ring_sizes = [ Rio_device.Sata.slots + 1 ];
      }
  in
  let rng = Rio_sim.Rng.create ~seed:8 in
  let mem = Rio_memory.Phys_mem.create () in
  let sata =
    Rio_device.Sata.create ~data_movement:false ~bandwidth_mbps:150. ~api ~mem ~rng ()
  in
  Test.make ~name:"bonnie/sata-request"
    (Staged.stage (fun () ->
         ignore (Rio_device.Sata.submit sata ~bytes:65_536 ~write:true);
         ignore (Rio_device.Sata.device_complete sata ~max:1);
         ignore (Rio_device.Sata.reclaim sata)))

let benchmarks () =
  Test.make_grouped ~name:"riommu"
    [
      Test.make_grouped ~name:"table1" (List.map map_unmap_bench Mode.evaluated);
      riommu_driver_bench ();
      stream_round_bench Mode.Strict;
      stream_round_bench Mode.Riommu;
      server_model_bench ();
      rr_transaction_bench ();
      translate_bench ~name:"iotlb_miss/translate-hit" ~pool:1;
      translate_bench ~name:"iotlb_miss/translate-miss" ~pool:2_000;
      Test.make_grouped ~name:"prefetchers"
        (List.map prefetcher_bench
           [ (module Rio_prefetch.Markov : Rio_prefetch.Prefetcher.S);
             (module Rio_prefetch.Recency);
             (module Rio_prefetch.Distance) ]);
      sata_bench ();
      Test.make_grouped ~name:"tenants"
        [
          domain_bench Rio_domain.Shared_iotlb.Shared;
          domain_bench Rio_domain.Shared_iotlb.Partitioned;
          scheduler_round_bench ();
        ];
    ]

let run_benchmarks () =
  print_endline "================================================================";
  print_endline " Bechamel micro-benchmarks (wall clock of the OCaml model)";
  print_endline "================================================================\n";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let raw_results = Benchmark.all cfg instances (benchmarks ()) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  (match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> ()
  | Some by_test ->
      let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) by_test [] in
      List.iter
        (fun (name, ols_result) ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Printf.printf "%-45s %12.0f ns/run\n" name est
          | Some [] | None -> ())
        (List.sort compare rows))

(* {1 Part 3: machine-readable hot-path baseline (--json)} *)

type sample = {
  group : string;
  iters : int;
  ns_per_op : float;
  words_per_op : float;
}

(* Reading [Gc.minor_words] itself allocates (the boxed float result), so
   the first reading's box lands inside the measured delta. Calibrate
   that constant once and subtract it; a genuinely allocation-free loop
   then reports exactly 0 words/op. *)
let counter_overhead =
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  b -. a

let round2 x = Float.round (x *. 100.) /. 100.

(* [ops_per_iter] divides the measured totals when one call to [f] is a
   batch of that many logical operations (map_sg over an sg-list); the
   reported iters is the logical-op count. *)
let sample ?(ops_per_iter = 1) ~group ~iters f =
  let t0 = Unix.gettimeofday () in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    f ()
  done;
  let w1 = Gc.minor_words () in
  let t1 = Unix.gettimeofday () in
  let ops = float_of_int (iters * ops_per_iter) in
  {
    group;
    iters = iters * ops_per_iter;
    ns_per_op = round2 ((t1 -. t0) *. 1e9 /. ops);
    words_per_op = round2 ((w1 -. w0 -. counter_overhead) /. ops);
  }

(* Steady-state translation through the strict-mode facade's de-boxed
   [translate_exn]: the working set fits the IOTLB, so every lookup hits
   the packed-key fast path, and the hit path allocates nothing — no
   result/handle/int64 boxing anywhere on the chain. *)
let json_translate ~iters =
  let api = Dma_api.create (Dma_api.default_config ~mode:Mode.Strict) in
  let frames = Dma_api.frames api in
  let pool = 48 in
  let iovas =
    Array.init pool (fun _ ->
        let buf = Rio_memory.Frame_allocator.alloc_exn frames in
        match
          Dma_api.map api ~ring:0 ~phys:buf ~bytes:4096 ~dir:Rpte.Bidirectional
        with
        | Ok h -> Int64.to_int (Dma_api.addr api h)
        | Error _ -> failwith "bench --json: map failed")
  in
  let i = ref 0 in
  let f () =
    ignore
      (Dma_api.translate_exn api ~iova:iovas.(!i mod pool) ~write:false
        : Rio_memory.Addr.phys);
    incr i
  in
  for _ = 1 to 2 * pool do f () done;
  sample ~group:"translate" ~iters f

(* Map N buffers then unmap them FIFO through the zero-alloc exn API
   (arena page table + magazine rcache), measured as two separate loops
   so neither measurement pollutes the other's Gc.minor_words delta.

   The warm-up geometry is deliberate: a magazine bucket parks at most
   2 magazines loaded + depot_max in the depot = 4352 one-page IOVAs.
   Mapping and unmapping exactly that many primes every magazine and
   spare without ever spilling to the tree, so the measured loops (at
   most 4096 live at once) run entirely on magazine hits. *)
let json_map_unmap ~iters =
  let iters = min iters 4096 in
  let api =
    Dma_api.create
      { (Dma_api.default_config ~mode:Mode.Strict) with Dma_api.rcache = true }
  in
  let buf = Rio_memory.Frame_allocator.alloc_exn (Dma_api.frames api) in
  let map_one () = Dma_api.map_exn api ~phys:buf ~bytes:1500 ~dir:Rpte.Bidirectional in
  let prime = 4352 in
  let iovas = Array.make (max prime iters) 0 in
  for k = 0 to prime - 1 do
    iovas.(k) <- map_one ()
  done;
  for k = 0 to prime - 1 do
    Dma_api.unmap_exn api ~iova:iovas.(k)
  done;
  let i = ref 0 in
  let m =
    sample ~group:"map" ~iters (fun () ->
        iovas.(!i) <- map_one ();
        incr i)
  in
  let j = ref 0 in
  let u =
    sample ~group:"unmap" ~iters (fun () ->
        Dma_api.unmap_exn api ~iova:iovas.(!j);
        incr j)
  in
  [ m; u ]

(* Scatter-gather batches through the multi-tenant manager's zero-alloc
   twins: ~200-segment bursts (the paper's §3.2 amortization point),
   mapped and torn down per batch, the teardown paying one
   domain-selective flush instead of 200 invalidation commands. The
   [Partitioned] IOTLB policy keeps the selective flush allocation-free. *)
let json_map_sg ~iters =
  let open Rio_domain in
  let clock = Rio_sim.Cycles.create () in
  let cost = Rio_sim.Cost_model.default in
  let frames = Rio_memory.Frame_allocator.create ~total_frames:200_000 in
  let mgr =
    Manager.create ~iotlb_policy:Shared_iotlb.Partitioned ~iotlb_capacity:128
      ~invalidation:Manager.Per_domain ~policy:Manager.Immediate ~frames ~clock
      ~cost ~rcache:true ()
  in
  let d =
    Manager.add_domain mgr ~name:"bench"
      ~bdf:(Rio_iommu.Bdf.make ~bus:1 ~device:0 ~func:0)
      ()
  in
  let burst = 200 in
  let buf = Rio_memory.Frame_allocator.alloc_exn frames in
  let segs = Array.make burst (buf, 1500) in
  let iovas = Array.make burst 0 in
  let batch () =
    ignore (Manager.map_sg_exn mgr d ~segs ~iovas ~read:true ~write:true () : int);
    Manager.unmap_sg_exn mgr d ~iovas ()
  in
  (* prime the magazines (4352-IOVA park capacity) and the arena *)
  for _ = 1 to 22 do
    batch ()
  done;
  sample ~group:"map_sg" ~iters ~ops_per_iter:burst batch

(* Steady-state IOTLB hit through the allocation-free [find_exn] path:
   the zero words/op gate. *)
let json_iotlb_lookup ~iters =
  let clock = Rio_sim.Cycles.create () in
  let cost = Rio_sim.Cost_model.default in
  let tlb = Rio_iotlb.Iotlb.create ~capacity:64 ~clock ~cost () in
  for vpn = 0 to 63 do
    Rio_iotlb.Iotlb.insert tlb ~bdf:0x0300 ~vpn vpn
  done;
  let i = ref 0 in
  let f () =
    ignore (Rio_iotlb.Iotlb.find_exn tlb ~bdf:0x0300 ~vpn:(!i land 63) : int);
    incr i
  in
  for _ = 1 to 10_000 do f () done;
  sample ~group:"iotlb-lookup" ~iters f

(* One push + one pop against a warm 256-event heap through the
   allocation-free [pop_exn] path: the other zero words/op gate. *)
let json_event_queue ~iters =
  let q = Rio_sim.Event_queue.create () in
  for k = 0 to 255 do
    Rio_sim.Event_queue.push q ~time:k k
  done;
  let t = ref 256 in
  let f () =
    Rio_sim.Event_queue.push q ~time:!t !t;
    ignore (Rio_sim.Event_queue.next_time q : int);
    ignore (Rio_sim.Event_queue.pop_exn q : int);
    incr t
  in
  for _ = 1 to 10_000 do f () done;
  sample ~group:"event-queue" ~iters f

(* The serve per-DMA path end to end — Shard.translate_record →
   Manager.translate_exn → Shared_iotlb.find_exn → Iotlb.find_exn plus
   the Histogram.record of the measured latency — on a warm premapped
   page: the service's own zero words/op gate. *)
let json_serve_translate ~iters =
  let shard =
    Rio_serve.Shard.create ~id:0 ~tenants:1 ~iotlb_capacity:64
      ~iotlb_policy:Rio_domain.Shared_iotlb.Shared ~rcache:true ~buf_pool:8 ()
  in
  let iova =
    match
      Rio_serve.Shard.map_record shard ~tenant:0
        ~phys:(Rio_serve.Shard.next_buf shard) ~bytes:4096
    with
    | Ok v -> v
    | Error `Exhausted -> failwith "bench --json: serve map failed"
  in
  let f () =
    ignore
      (Rio_serve.Shard.translate_record shard ~tenant:0 ~iova ~write:false
        : Rio_memory.Addr.phys)
  in
  for _ = 1 to 10_000 do f () done;
  sample ~group:"serve-translate" ~iters f

(* Histogram.record alone, swept across octaves so the bucket index
   computation (not just one cached bucket) is what's measured. *)
let json_histogram_record ~iters =
  let h = Rio_serve.Histogram.create () in
  let i = ref 0 in
  let f () =
    Rio_serve.Histogram.record h !i;
    i := (!i + 7_919) land 0xF_FFFF
  in
  for _ = 1 to 10_000 do f () done;
  sample ~group:"histogram-record" ~iters f

(* The riommu-wire/1 codec round trip: encode a translate request,
   decode it back into the reusable request record, encode the
   response, decode that into the reusable response record — the
   per-frame work both endpoints of the socket transport do, with zero
   allocation end to end (packed-int accessors, no boxed Int64s). *)
let json_wire_codec ~iters =
  let open Rio_serve_net in
  let buf = Bytes.create 256 in
  let req = Wire.create_req ~sg_limit:16 in
  let resp = Wire.create_resp ~sg_limit:16 in
  let i = ref 0 in
  let f () =
    let e =
      Wire.encode_translate buf ~pos:0 ~tenant:(!i land 0xFF) ~req_id:!i
        ~iova:(!i * 4096) ~write:false
    in
    if Wire.decode_request buf ~pos:0 ~avail:e req <> e then
      failwith "bench --json: wire-codec request round trip";
    let e2 =
      Wire.encode_translate_ok buf ~pos:0 ~req_id:req.Wire.req_id
        ~phys:req.Wire.iova
    in
    if Wire.decode_response buf ~pos:0 ~avail:e2 resp <> e2 then
      failwith "bench --json: wire-codec response round trip";
    incr i
  in
  for _ = 1 to 10_000 do f () done;
  sample ~group:"wire-codec" ~iters f

(* The socket transport's per-request shard handoff, end to end: feed
   the raw translate frame into the connection's read buffer, decode
   it ([Conn.next]), append it to its shard's batch
   ([Dispatch.enqueue] — the tenant is pinned by affinity hash),
   execute the batch ([exec_translate] through the shard manager), and
   drain the encoded response. The whole cycle is the zero words/op
   gate for the --listen ingestion path. *)
let json_dispatch_translate ~iters =
  let open Rio_serve in
  let open Rio_serve_net in
  let shards =
    Array.init 2 (fun id ->
        Shard.create ~id ~tenants:4 ~iotlb_capacity:64
          ~iotlb_policy:Rio_domain.Shared_iotlb.Shared ~rcache:true ~buf_pool:8
          ())
  in
  let d = Dispatch.create ~shards ~batch:64 ~sg_limit:16 () in
  let conn = Conn.create ~window:128 ~sg_limit:16 () in
  let req = Wire.create_req ~sg_limit:16 in
  let resp = Wire.create_resp ~sg_limit:16 in
  let scratch = Bytes.create 256 in
  let hlen = Wire.encode_hello scratch ~pos:0 ~bdf:0x300 ~flags:0 in
  Conn.feed conn scratch ~pos:0 ~len:hlen;
  ignore (Conn.next conn req : int);
  (* Map one page for tenant 1 through the full path and recover its
     iova from the encoded response. *)
  let mlen =
    Wire.encode_map scratch ~pos:0 ~tenant:1 ~req_id:1
      ~phys:(Rio_memory.Addr.to_int (Shard.next_buf shards.(0)))
      ~bytes:4096
  in
  Conn.feed conn scratch ~pos:0 ~len:mlen;
  if Conn.next conn req <= 0 then failwith "bench --json: dispatch map decode";
  ignore (Dispatch.enqueue d conn req : bool);
  Dispatch.flush_all d;
  let rlen = Conn.queued conn in
  if
    Wire.decode_response (Conn.wbuf conn) ~pos:(Conn.wpos conn) ~avail:rlen
      resp
    <= 0
    || resp.Wire.status <> Wire.st_ok
  then failwith "bench --json: dispatch map failed";
  Conn.consumed conn rlen;
  let flen =
    Wire.encode_translate scratch ~pos:0 ~tenant:1 ~req_id:2
      ~iova:resp.Wire.r_iova ~write:false
  in
  let f () =
    Conn.feed conn scratch ~pos:0 ~len:flen;
    if Conn.next conn req <= 0 then failwith "bench --json: dispatch decode";
    if not (Dispatch.enqueue d conn req) then
      failwith "bench --json: dispatch enqueue";
    Dispatch.flush_all d;
    Conn.consumed conn (Conn.queued conn)
  in
  for _ = 1 to 10_000 do f () done;
  sample ~group:"dispatch-translate" ~iters f

(* One SPSC ring hand-off — push a request cell, pop it back — the
   per-request cross-domain transport of the multi-domain loop. Both
   sides blit between the flat lane buffer and caller scratch; the
   only writes besides the lanes are the two Atomic cursor stores. *)
let json_spsc_ring ~iters =
  let open Rio_serve_net in
  let width = Cell.req_width ~sg_limit:8 in
  let ring = Spsc.create ~cap:1024 ~width in
  let src = Array.make width 0 in
  let dst = Array.make width 0 in
  src.(Cell.q_op) <- Wire.op_translate;
  let f () =
    if not (Spsc.try_push ring ~src) then failwith "bench --json: spsc push";
    if not (Spsc.try_pop ring ~dst) then failwith "bench --json: spsc pop"
  in
  for _ = 1 to 10_000 do f () done;
  sample ~group:"spsc-ring" ~iters f

(* One readiness wakeup on the default backend (poll(2) where the
   stubs built): wait over a registered always-ready pipe plus the
   iter_ready sweep that hands tokens back. This is the per-wakeup
   cost the socket loop pays instead of rebuilding select fd lists. *)
let json_readiness_wait ~iters =
  let open Rio_serve_net in
  let r = Readiness.create Readiness.default_backend in
  let rd, wr = Unix.pipe ~cloexec:true () in
  let _ = Unix.write wr (Bytes.make 1 '!') 0 1 in
  let h = Readiness.register r rd ~token:7 in
  Readiness.interest r ~handle:h ~read:true ~write:false;
  let hits = ref 0 in
  let visit _tok _bits = incr hits in
  let f () =
    if Readiness.wait r ~timeout_ms:0 < 1 then
      failwith "bench --json: readiness wait";
    Readiness.iter_ready r visit
  in
  for _ = 1 to 10_000 do f () done;
  let s = sample ~group:"readiness-wait" ~iters f in
  Unix.close rd;
  Unix.close wr;
  s

(* Steady-state lookup, push/pop, and the full map/unmap/map_sg driver
   paths must not allocate: these are the paths a simulated run executes
   millions of times. *)
let gated_groups =
  [
    "translate"; "map"; "unmap"; "map_sg"; "iotlb-lookup"; "event-queue";
    "serve-translate"; "histogram-record"; "wire-codec"; "dispatch-translate";
    "spsc-ring"; "readiness-wait";
  ]

let write_bench_json ~path samples =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"riommu-bench/1\",\n  \"quick\": %b,\n  \"groups\": [\n"
    quick;
  List.iteri
    (fun i s ->
      Printf.fprintf oc
        "    { \"name\": \"%s\", \"iters\": %d, \"ns_per_op\": %.2f, \
         \"words_per_op\": %.2f, \"gated_zero_alloc\": %b }%s\n"
        s.group s.iters s.ns_per_op s.words_per_op
        (List.mem s.group gated_groups)
        (if i = List.length samples - 1 then "" else ","))
    samples;
  output_string oc "  ]\n}\n";
  close_out oc

let run_json () =
  let scale n = if quick then n / 10 else n in
  let samples =
    [ json_translate ~iters:(scale 200_000) ]
    @ json_map_unmap ~iters:(scale 4_096)
    @ [
        json_map_sg ~iters:(scale 2_000);
        json_iotlb_lookup ~iters:(scale 1_000_000);
        json_event_queue ~iters:(scale 1_000_000);
        json_serve_translate ~iters:(scale 1_000_000);
        json_histogram_record ~iters:(scale 1_000_000);
        json_wire_codec ~iters:(scale 1_000_000);
        json_dispatch_translate ~iters:(scale 1_000_000);
        json_spsc_ring ~iters:(scale 1_000_000);
        json_readiness_wait ~iters:(scale 1_000_000);
      ]
  in
  List.iter
    (fun s ->
      Printf.printf "%-14s %10d iters %10.2f ns/op %8.2f words/op\n" s.group
        s.iters s.ns_per_op s.words_per_op)
    samples;
  write_bench_json ~path:"BENCH.json" samples;
  print_endline "wrote BENCH.json";
  let leaky =
    List.filter
      (fun s -> List.mem s.group gated_groups && s.words_per_op > 0.)
      samples
  in
  if leaky <> [] then begin
    List.iter
      (fun s ->
        Printf.eprintf
          "FAIL: %s allocates %.2f words/op (steady state must be 0)\n" s.group
          s.words_per_op)
      leaky;
    exit 1
  end

let () =
  if json_mode then run_json ()
  else begin
    run_experiments ();
    run_benchmarks ()
  end
