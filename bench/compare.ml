(* bench-compare: diff a fresh BENCH.json against the committed
   baseline (BENCH_baseline.json).

     dune exec bench/compare.exe -- [--baseline FILE] [--current FILE]
                                    [--tolerance F]

   Two checks, one soft and one hard:

   - ns/op drift: every group shared by both files must stay within
     +/- [tolerance] (a fraction; default 0.25) of the baseline. Wall
     clock varies across machines - CI passes a wider tolerance than
     the local default - so this catches order-of-magnitude
     regressions, not single-digit noise.

   - zero allocation: any group marked [gated_zero_alloc] in the
     CURRENT file must report 0.00 words/op. This is machine
     independent and never widened: the steady-state IOTLB lookup and
     event-queue push/pop allocating at all is a regression no matter
     how fast the box is. *)

type group = {
  name : string;
  ns_per_op : float;
  words_per_op : float;
  gated : bool;
}

(* The files are written by bench/main.ml, one group object per line;
   parse by field extraction rather than pulling in a JSON library. *)

let field_raw line key =
  let pat = Printf.sprintf "\"%s\":" key in
  match
    let rec find i =
      if i + String.length pat > String.length line then None
      else if String.sub line i (String.length pat) = pat then
        Some (i + String.length pat)
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some start ->
      let n = String.length line in
      let start = ref start in
      while !start < n && line.[!start] = ' ' do incr start done;
      let stop = ref !start in
      while
        !stop < n && (match line.[!stop] with ',' | '}' | '\n' -> false | _ -> true)
      do
        incr stop
      done;
      Some (String.trim (String.sub line !start (!stop - !start)))

let field_string line key =
  match field_raw line key with
  | Some v
    when String.length v >= 2 && v.[0] = '"' && v.[String.length v - 1] = '"' ->
      Some (String.sub v 1 (String.length v - 2))
  | _ -> None

let field_float line key = Option.bind (field_raw line key) float_of_string_opt

let field_bool line key =
  match field_raw line key with
  | Some "true" -> Some true
  | Some "false" -> Some false
  | _ -> None

let parse_file path =
  let ic = open_in path in
  let groups = ref [] in
  (try
     while true do
       let line = input_line ic in
       match
         ( field_string line "name",
           field_float line "ns_per_op",
           field_float line "words_per_op" )
       with
       | Some name, Some ns_per_op, Some words_per_op ->
           let gated =
             Option.value ~default:false (field_bool line "gated_zero_alloc")
           in
           groups := { name; ns_per_op; words_per_op; gated } :: !groups
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !groups

let () =
  let baseline_path = ref "BENCH_baseline.json" in
  let current_path = ref "BENCH.json" in
  let tolerance = ref 0.25 in
  let rec parse_args = function
    | "--baseline" :: v :: rest -> baseline_path := v; parse_args rest
    | "--current" :: v :: rest -> current_path := v; parse_args rest
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0. -> tolerance := f
        | Some _ | None ->
            prerr_endline "bench-compare: --tolerance expects a positive float";
            exit 2);
        parse_args rest
    | arg :: _ ->
        Printf.eprintf "bench-compare: unknown argument %s\n" arg;
        exit 2
    | [] -> ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let baseline = parse_file !baseline_path in
  let current = parse_file !current_path in
  if current = [] then begin
    Printf.eprintf "bench-compare: no groups in %s\n" !current_path;
    exit 2
  end;
  let failures = ref 0 in
  let fail fmt =
    incr failures;
    Printf.eprintf fmt
  in
  (* hard gate first: allocation regressions are absolute *)
  List.iter
    (fun c ->
      if c.gated && c.words_per_op > 0. then
        fail "FAIL %-14s allocates %.2f words/op (gated group must be 0)\n"
          c.name c.words_per_op)
    current;
  (* soft gate: ns/op drift vs baseline within tolerance *)
  List.iter
    (fun c ->
      match List.find_opt (fun b -> b.name = c.name) baseline with
      | None ->
          (* a current group the baseline has never seen means the
             baseline was not regenerated with the new group set — an
             error, not a silent skip, or a new hot path could ship
             without a pinned reference number *)
          fail
            "FAIL %-14s %10.2f ns/op has no baseline entry (regenerate \
             BENCH_baseline.json)\n"
            c.name c.ns_per_op
      | Some b ->
          let ratio = if b.ns_per_op > 0. then c.ns_per_op /. b.ns_per_op else 1. in
          let drift = ratio -. 1. in
          if Float.abs drift > !tolerance then
            fail "FAIL %-14s %10.2f ns/op vs baseline %.2f (%+.0f%%, tolerance %.0f%%)\n"
              c.name c.ns_per_op b.ns_per_op (100. *. drift)
              (100. *. !tolerance)
          else
            Printf.printf "ok   %-14s %10.2f ns/op vs baseline %.2f (%+.0f%%)\n"
              c.name c.ns_per_op b.ns_per_op (100. *. drift))
    current;
  List.iter
    (fun b ->
      if not (List.exists (fun c -> c.name = b.name) current) then
        fail "FAIL %-14s present in baseline but missing from current run\n"
          b.name)
    baseline;
  if !failures > 0 then begin
    Printf.eprintf "bench-compare: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "bench-compare: ok"
