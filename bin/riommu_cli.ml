(* riommu-cli: run the paper's experiments and one-off simulations.

     riommu-cli list
     riommu-cli run table1 figure7 ... [--quick]
     riommu-cli run --all [--quick]
     riommu-cli stream --nic mlx --mode riommu [--packets N]
     riommu-cli rr --nic brcm --mode strict
     riommu-cli tenants --mode strict --policy shared --noisy 4 *)

open Cmdliner

let mode_conv =
  let parse s =
    match Rio_protect.Mode.of_name s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown mode %S (expected one of: %s)" s
               (String.concat ", "
                  (List.map Rio_protect.Mode.name Rio_protect.Mode.all))))
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Rio_protect.Mode.name m))

let nic_conv =
  let parse s =
    match Rio_device.Nic_profiles.by_name s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown NIC %S (mlx or brcm)" s))
  in
  Arg.conv
    (parse, fun fmt p -> Format.pp_print_string fmt p.Rio_device.Nic_profiles.name)

(* shared experiment options *)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the experiment cell pool: 1 runs sequentially, \
           0 picks one worker per core. Needs an OCaml 5 runtime to actually \
           parallelize; a 4.14 build accepts the flag and runs sequentially. \
           Results are byte-identical at every level.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Root experiment seed; every cell derives its own stream from it, \
           so output depends only on this value, never on scheduling.")

(* list *)

let list_cmd =
  let doc = "List the reproducible experiments (one per paper table/figure)." in
  let run () =
    List.iter print_endline Rio_experiments.Registry.ids;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* run *)

let run_cmd =
  let doc = "Run experiments by id (or --all)." in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids.")
  in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment.") in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Shorter runs (less fidelity).")
  in
  let run all quick seed jobs ids =
    let ids = if all then Rio_experiments.Registry.ids else ids in
    if ids = [] then begin
      prerr_endline "no experiments given; try --all or `riommu-cli list`";
      2
    end
    else begin
      let missing =
        List.filter
          (fun id -> Rio_experiments.Registry.find_plan id = None)
          ids
      in
      match missing with
      | _ :: _ ->
          prerr_endline
            (Rio_experiments.Registry.unknown_id_message
               (String.concat ", " missing));
          2
      | [] ->
          (* all requested experiments share one cell pool; results print
             in the order the ids were given *)
          let plans =
            List.map
              (fun id ->
                let plan =
                  Option.get (Rio_experiments.Registry.find_plan id)
                in
                (id, plan ~quick ~seed ()))
              ids
          in
          List.iter
            (fun (_, exp) ->
              print_string (Rio_experiments.Exp.render exp);
              print_newline ())
            (Rio_experiments.Exp.run_plans ~jobs plans);
          0
    end
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ all $ quick $ seed_arg $ jobs_arg $ ids)

(* all *)

let all_cmd =
  let doc =
    "Run the full experiment registry as one flat cell pool. With --jobs N \
     every experiment's cells are scheduled together across N domains, so a \
     wide machine stays busy across experiment boundaries; output is \
     byte-identical to a sequential run."
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Shorter runs (less fidelity).")
  in
  let run quick seed jobs =
    List.iter
      (fun exp ->
        print_string (Rio_experiments.Exp.render exp);
        print_newline ())
      (Rio_experiments.Registry.run_all ~quick ~seed ~jobs ());
    0
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ quick $ seed_arg $ jobs_arg)

(* stream *)

let stream_cmd =
  let doc = "One Netperf-stream measurement for a NIC profile and mode." in
  let nic =
    Arg.(
      value
      & opt nic_conv Rio_device.Nic_profiles.mlx
      & info [ "nic" ] ~docv:"NIC" ~doc:"mlx or brcm.")
  in
  let mode =
    Arg.(
      value
      & opt mode_conv Rio_protect.Mode.Riommu
      & info [ "mode" ] ~docv:"MODE" ~doc:"Protection mode.")
  in
  let packets =
    Arg.(value & opt int 50_000 & info [ "packets" ] ~doc:"Measured packets.")
  in
  let warmup =
    Arg.(value & opt int 140_000 & info [ "warmup" ] ~doc:"Warmup packets.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let rcache =
    Arg.(
      value & flag
      & info [ "rcache" ]
          ~doc:
            "Enable the IOVA magazine cache (Linux iova-rcache) in front of \
             the allocator (baseline-IOMMU modes only).")
  in
  let run profile mode packets warmup seed rcache =
    let r =
      Rio_workload.Netperf.stream ~packets ~warmup ~seed ~rcache ~mode ~profile ()
    in
    Printf.printf
      "nic=%s mode=%s\n\
       protection cycles/packet  %10.0f\n\
       total cycles/packet       %10.0f\n\
       throughput                %10.2f Gbps%s\n\
       cpu                       %10.0f%%\n\
       faults                    %10d\n"
      r.Rio_workload.Netperf.nic
      (Rio_protect.Mode.name r.Rio_workload.Netperf.mode)
      r.Rio_workload.Netperf.protection_per_packet
      r.Rio_workload.Netperf.cycles_per_packet r.Rio_workload.Netperf.gbps
      (if r.Rio_workload.Netperf.line_limited then " (line rate)" else "")
      (100. *. r.Rio_workload.Netperf.cpu)
      r.Rio_workload.Netperf.faults;
    0
  in
  Cmd.v (Cmd.info "stream" ~doc)
    Term.(const run $ nic $ mode $ packets $ warmup $ seed $ rcache)

(* rr *)

let rr_cmd =
  let doc = "One Netperf-RR (latency) measurement." in
  let nic =
    Arg.(
      value
      & opt nic_conv Rio_device.Nic_profiles.mlx
      & info [ "nic" ] ~docv:"NIC" ~doc:"mlx or brcm.")
  in
  let mode =
    Arg.(
      value
      & opt mode_conv Rio_protect.Mode.Riommu
      & info [ "mode" ] ~docv:"MODE" ~doc:"Protection mode.")
  in
  let transactions =
    Arg.(value & opt int 5_000 & info [ "transactions" ] ~doc:"Transactions.")
  in
  let rcache =
    Arg.(
      value & flag
      & info [ "rcache" ] ~doc:"Enable the IOVA magazine cache.")
  in
  let run profile mode transactions rcache =
    let r = Rio_workload.Netperf.rr ~transactions ~rcache ~mode ~profile () in
    Printf.printf
      "nic=%s mode=%s\nround trip  %8.2f us\nrate        %8.0f transactions/s\ncpu         %8.0f%%\n"
      r.Rio_workload.Netperf.nic
      (Rio_protect.Mode.name r.Rio_workload.Netperf.mode)
      r.Rio_workload.Netperf.rtt_us r.Rio_workload.Netperf.transactions_per_sec
      (100. *. r.Rio_workload.Netperf.cpu);
    0
  in
  Cmd.v (Cmd.info "rr" ~doc) Term.(const run $ nic $ mode $ transactions $ rcache)

(* tenants *)

let policy_conv =
  let parse s =
    match Rio_domain.Shared_iotlb.policy_of_name s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown policy %S (expected shared, partitioned or quota:N)" s))
  in
  Arg.conv
    ( parse,
      fun fmt p ->
        Format.pp_print_string fmt (Rio_domain.Shared_iotlb.policy_name p) )

let tenants_cmd =
  let doc =
    "Multi-tenant run: one latency-critical NIC tenant plus noisy NVMe/SATA \
     neighbors over a shared IOMMU; per-tenant throughput and IOTLB stats."
  in
  let mode =
    Arg.(
      value
      & opt mode_conv Rio_protect.Mode.Strict
      & info [ "mode" ] ~docv:"MODE" ~doc:"strict, defer or riommu.")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Rio_domain.Shared_iotlb.Shared
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"IOTLB policy: shared, partitioned or quota:N.")
  in
  let noisy =
    Arg.(value & opt int 4 & info [ "noisy" ] ~doc:"Noisy-neighbor count.")
  in
  let ios =
    Arg.(value & opt int 1_000 & info [ "ios" ] ~doc:"I/Os per tenant.")
  in
  let capacity =
    Arg.(value & opt int 128 & info [ "capacity" ] ~doc:"IOTLB entries.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let run mode policy noisy ios capacity seed =
    let open Rio_domain in
    match mode with
    | Rio_protect.Mode.(None_ | Hw_passthrough | Sw_passthrough) ->
        Printf.eprintf
          "riommu-cli: tenants: mode %s has no protection path; use the \
           strict, defer or riommu families.\n"
          (Rio_protect.Mode.name mode);
        2
    | _ ->
    let victim =
      Scheduler.nic_tenant ~latency_critical:true ~name:"victim" ()
    in
    let neighbors =
      List.init noisy (fun i ->
          if i mod 2 = 0 then
            Scheduler.nvme_tenant ~name:(Printf.sprintf "nvme%d" i) ()
          else Scheduler.sata_tenant ~name:(Printf.sprintf "sata%d" i) ())
    in
    let cfg =
      Scheduler.default_config ~iotlb_capacity:capacity ~ios_per_tenant:ios
        ~seed ~mode ~policy ()
    in
    let results = Scheduler.run cfg (victim :: neighbors) in
    Printf.printf "mode=%s policy=%s capacity=%d tenants=%d\n\n"
      (Rio_protect.Mode.name mode)
      (Shared_iotlb.policy_name policy)
      capacity (1 + noisy);
    let t =
      Rio_report.Table.make
        ~headers:
          [
            "tenant"; "class"; "ios"; "ops/Mcyc"; "cycles/io"; "miss rate";
            "evicted by other"; "faults";
          ]
    in
    List.iter
      (fun r ->
        Rio_report.Table.add_row t
          [
            r.Scheduler.spec.Scheduler.name;
            Scheduler.class_name r.Scheduler.spec.Scheduler.device;
            Rio_report.Table.cell_i r.Scheduler.ios;
            Rio_report.Table.cell_f ~decimals:1 r.Scheduler.ops_per_mcycle;
            Rio_report.Table.cell_f ~decimals:0 r.Scheduler.cycles_per_io;
            Rio_report.Table.cell_pct r.Scheduler.miss_rate;
            Rio_report.Table.cell_i r.Scheduler.evictions_by_other;
            Rio_report.Table.cell_i r.Scheduler.faults;
          ])
      results;
    print_string (Rio_report.Table.render t);
    0
  in
  Cmd.v (Cmd.info "tenants" ~doc)
    Term.(const run $ mode $ policy $ noisy $ ios $ capacity $ seed)

(* trace *)

let trace_cmd =
  let doc =
    "Capture a DMA trace (maps, unmaps, device accesses) from a NIC run \
     and write it as CSV."
  in
  let nic =
    Arg.(
      value
      & opt nic_conv Rio_device.Nic_profiles.mlx
      & info [ "nic" ] ~docv:"NIC" ~doc:"mlx or brcm.")
  in
  let mode =
    Arg.(
      value
      & opt mode_conv Rio_protect.Mode.Strict
      & info [ "mode" ] ~docv:"MODE" ~doc:"Protection mode.")
  in
  let packets =
    Arg.(value & opt int 2_000 & info [ "packets" ] ~doc:"Packets to transmit.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let run profile mode packets out =
    let profile =
      { profile with Rio_device.Nic_profiles.rx_ring = 128; tx_ring = 128 }
    in
    let api =
      Rio_protect.Dma_api.create
        {
          (Rio_protect.Dma_api.default_config ~mode) with
          Rio_protect.Dma_api.ring_sizes = Rio_device.Nic.ring_sizes profile;
        }
    in
    let log = Rio_protect.Op_log.create () in
    Rio_protect.Dma_api.set_log api (Some log);
    let rng = Rio_sim.Rng.create ~seed:31 in
    let mem = Rio_memory.Phys_mem.create () in
    let nic = Rio_device.Nic.create ~data_movement:false ~profile ~api ~mem ~rng () in
    ignore (Rio_device.Nic.rx_fill nic);
    let payload = Bytes.make profile.Rio_device.Nic_profiles.mtu 'x' in
    let sent = ref 0 in
    while !sent < packets do
      for _ = 1 to 8 do
        ignore (Rio_device.Nic.device_rx_deliver nic ~payload:(Bytes.make 64 'a'))
      done;
      ignore (Rio_device.Nic.rx_reap nic);
      ignore (Rio_device.Nic.rx_fill nic);
      ignore (Rio_device.Nic.tx_reclaim nic);
      for _ = 1 to 16 do
        match Rio_device.Nic.tx_submit nic ~payload with
        | Ok () -> incr sent
        | Error (`Ring_full | `Map_failed) -> ()
      done;
      ignore (Rio_device.Nic.device_tx_process nic ~max:16)
    done;
    let csv = Rio_protect.Op_log.to_csv log in
    (match out with
    | Some path ->
        let oc = open_out path in
        output_string oc csv;
        close_out oc;
        Printf.printf "wrote %d events to %s\n" (Rio_protect.Op_log.length log) path
    | None -> print_string csv);
    0
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ nic $ mode $ packets $ out)

let () =
  let doc = "rIOMMU reproduction: experiments and simulations" in
  let info = Cmd.info "riommu-cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ list_cmd; run_cmd; all_cmd; stream_cmd; rr_cmd; tenants_cmd;
            trace_cmd ]))
