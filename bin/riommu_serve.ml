(* riommu-serve: the online multi-tenant translation service.

     riommu-serve [--duration S] [--jobs N] [--shards N] [--tenants N]
                  [--flows N] [--interval S] [--seed SEED] [--no-rcache]
                  [--capacity N] [--policy P] [--sg-max N] [--stats FILE]

   Durations are SIMULATED seconds (the engine runs on the calibrated
   cycle clock, DESIGN.md §4); wall-clock only appears in the stderr
   progress lines and the stats JSON. stdout — the final summary — is a
   pure function of (seed, shards, tenants, flows, duration, interval),
   byte-identical at any --jobs: the cram suite diffs it across job
   counts. SIGTERM/SIGINT raise the engine's stop flag for a clean
   early shutdown (summary still printed, exit 0). *)

open Cmdliner

let policy_conv =
  let parse s =
    match Rio_domain.Shared_iotlb.policy_of_name s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown policy %S (expected shared, partitioned or quota:N)" s))
  in
  Arg.conv
    ( parse,
      fun fmt p ->
        Format.pp_print_string fmt (Rio_domain.Shared_iotlb.policy_name p) )

let serve_term =
  let open Rio_serve in
  let dflt = Server.default_config in
  let duration =
    Arg.(
      value
      & opt float dflt.Server.duration_s
      & info [ "duration"; "d" ] ~docv:"S" ~doc:"Simulated seconds to serve.")
  in
  let interval =
    Arg.(
      value
      & opt float dflt.Server.interval_s
      & info [ "interval" ] ~docv:"S"
          ~doc:"Snapshot cadence in simulated seconds.")
  in
  let shards =
    Arg.(
      value
      & opt int dflt.Server.shards
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard count — the determinism unit. Results depend on this, \
             never on $(b,--jobs).")
  in
  let jobs =
    Arg.(
      value
      & opt int dflt.Server.jobs
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains driving the shards: 1 sequential, 0 one per \
             core. Needs an OCaml 5 runtime to parallelize; a 4.14 build \
             accepts the flag and runs sequentially. Output is \
             byte-identical at every level.")
  in
  let tenants =
    Arg.(
      value
      & opt int dflt.Server.tenants
      & info [ "tenants" ] ~docv:"N" ~doc:"Tenant domains per shard.")
  in
  let flows =
    Arg.(
      value
      & opt int dflt.Server.flows_per_tenant
      & info [ "flows" ] ~docv:"N" ~doc:"Flow slots per tenant.")
  in
  let seed =
    Arg.(
      value
      & opt int dflt.Server.seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Root seed; every connection derives its own stream from it.")
  in
  let no_rcache =
    Arg.(
      value & flag
      & info [ "no-rcache" ]
          ~doc:"Disable the per-tenant IOVA magazine caches (on by default).")
  in
  let capacity =
    Arg.(
      value
      & opt int dflt.Server.iotlb_capacity
      & info [ "capacity" ] ~docv:"N" ~doc:"Per-shard IOTLB entries.")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv dflt.Server.iotlb_policy
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"IOTLB policy: shared, partitioned or quota:N.")
  in
  let sg_max =
    Arg.(
      value
      & opt int dflt.Server.sg_max
      & info [ "sg-max" ] ~docv:"N"
          ~doc:"Scatter-gather segments per request (larger objects truncate).")
  in
  let stats =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats" ] ~docv:"FILE"
          ~doc:
            "Write the final stats JSON (bench-compatible schema, \
             riommu-serve/1) to $(docv); $(b,-) for stderr.")
  in
  let run duration interval shards jobs tenants flows seed no_rcache capacity
      policy sg_max stats =
    let cfg =
      {
        Server.shards;
        jobs;
        tenants;
        flows_per_tenant = flows;
        duration_s = duration;
        interval_s = interval;
        seed;
        rcache = not no_rcache;
        iotlb_capacity = capacity;
        iotlb_policy = policy;
        sg_max;
      }
    in
    let stop = Rio_exec.Flag.create () in
    let on_signal = Sys.Signal_handle (fun _ -> Rio_exec.Flag.set stop) in
    Sys.set_signal Sys.sigterm on_signal;
    Sys.set_signal Sys.sigint on_signal;
    let t0 = Unix.gettimeofday () in
    let last_ops = ref 0 in
    let last_t = ref t0 in
    let on_snapshot (s : Server.snapshot) =
      let now = Unix.gettimeofday () in
      let ops = Array.fold_left ( + ) 0 s.Server.ops in
      let dt = now -. !last_t in
      let rate = if dt > 0. then float_of_int (ops - !last_ops) /. dt else 0. in
      Printf.eprintf
        "riommu-serve: tick %d  sim %.2fs  ops %d  %.0f ops/s (wall)\n%!"
        s.Server.tick s.Server.virtual_s ops rate;
      last_ops := ops;
      last_t := now
    in
    match Server.run ~stop ~on_snapshot cfg with
    | exception Invalid_argument m ->
        prerr_endline ("riommu-serve: " ^ m);
        2
    | report ->
        let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
        print_string (Server.render_summary report);
        (match stats with
        | None -> ()
        | Some dest ->
            let words_per_op = Server.alloc_probe () in
            let json = Server.render_json report ~wall_ns ~words_per_op in
            if dest = "-" then prerr_string json
            else begin
              let oc = open_out dest in
              output_string oc json;
              close_out oc
            end);
        0
  in
  Term.(
    const run $ duration $ interval $ shards $ jobs $ tenants $ flows $ seed
    $ no_rcache $ capacity $ policy $ sg_max $ stats)

let () =
  let doc = "online multi-tenant IOMMU translation service (simulated)" in
  let info = Cmd.info "riommu-serve" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.v info serve_term))
