(* riommu-serve: the online multi-tenant translation service.

     riommu-serve [--duration S] [--jobs N] [--shards N] [--tenants N]
                  [--flows N] [--interval S] [--seed SEED] [--no-rcache]
                  [--capacity N] [--policy P] [--sg-max N] [--stats FILE]
     riommu-serve --listen ADDR [--batch N] [--window N] [--max-conns N]
                  [--shards N] [--tenants N] ... [--stats FILE]

   Without --listen: the deterministic simulated twin. Durations are
   SIMULATED seconds (the engine runs on the calibrated cycle clock,
   DESIGN.md §4); wall-clock only appears in the stderr progress lines
   and the stats JSON. stdout — the final summary — is a pure function
   of (seed, shards, tenants, flows, duration, interval),
   byte-identical at any --jobs: the cram suite diffs it across job
   counts.

   With --listen ADDR (unix:PATH or HOST:PORT): real-socket ingestion
   of the riommu-wire/1 protocol (DESIGN.md §14) into the same shard
   engine — serves until SIGTERM/SIGINT, then prints a transport
   summary and optionally writes riommu-serve-net/1 stats JSON.

   Either way SIGTERM/SIGINT raise the stop flag for a clean early
   shutdown (summary still printed, exit 0). *)

open Cmdliner

let policy_conv =
  let parse s =
    match Rio_domain.Shared_iotlb.policy_of_name s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown policy %S (expected shared, partitioned or quota:N)" s))
  in
  Arg.conv
    ( parse,
      fun fmt p ->
        Format.pp_print_string fmt (Rio_domain.Shared_iotlb.policy_name p) )

(* --listen mode: real-socket ingestion into the same shard engine.
   Wall-clock lives out here (the lib takes an injected now_s). *)
let run_listen ~addr ~shards:nshards ~tenants ~capacity ~policy ~rcache ~sg_max
    ~batch ~window ~max_conns ~domains ~backend ~interval ~stats_dest =
  let open Rio_serve in
  let open Rio_serve_net in
  match
    match Netloop.parse_addr addr with
    | Error m -> Error m
    | Ok a -> (
        match Readiness.backend_of_string backend with
        | Error m -> Error m
        | Ok b -> Ok (a, b))
  with
  | Error m ->
      prerr_endline ("riommu-serve: " ^ m);
      2
  | Ok (addr, backend) ->
      let shards =
        Array.init nshards (fun id ->
            Shard.create ~id ~tenants ~iotlb_capacity:capacity
              ~iotlb_policy:policy ~rcache ())
      in
      let stop = Rio_exec.Flag.create () in
      let on_signal = Sys.Signal_handle (fun _ -> Rio_exec.Flag.set stop) in
      Sys.set_signal Sys.sigterm on_signal;
      Sys.set_signal Sys.sigint on_signal;
      let cfg =
        {
          (Netloop.default_config ~addr) with
          Netloop.batch;
          window;
          sg_limit = sg_max;
          max_conns;
          domains;
          backend;
          now_s = Unix.gettimeofday;
          tick_every_s = (if interval > 0. then interval else 0.);
        }
      in
      let t0 = Unix.gettimeofday () in
      let last_ops = ref 0 in
      let last_t = ref t0 in
      (* Window percentiles for the progress line: fold each shard's
         translate histogram interval into a scratch histogram —
         satellite use of Histogram.interval_into on the live path. *)
      let win = Histogram.create () in
      let on_tick (ns : Netloop.stats) =
        let now = Unix.gettimeofday () in
        let ops = Array.fold_left (fun a s -> a + Shard.total_ops s) 0 shards in
        let dt = now -. !last_t in
        let rate = if dt > 0. then float_of_int (ops - !last_ops) /. dt else 0. in
        Array.iter
          (fun s -> Histogram.interval_into (Shard.hist s Shard.Translate) ~into:win)
          shards;
        Printf.eprintf
          "riommu-serve: conns %d  reqs %d  ops %d  %.0f ops/s  win-p99 %d cyc\n%!"
          (ns.Netloop.accepted - ns.Netloop.closed)
          ns.Netloop.requests ops rate
          (Histogram.quantile win 0.99);
        Histogram.reset win;
        last_ops := ops;
        last_t := now
      in
      Printf.eprintf
        "riommu-serve: listening on %s (%d shards, batch %d, window %d, \
         backend %s, domains %d)\n\
         %!"
        (Netloop.addr_to_string addr) nshards batch window
        (Readiness.backend_name backend)
        domains;
      (match Netloop.serve ~stop ~on_tick ~shards cfg with
      | exception Unix.Unix_error (e, fn, arg) ->
          Printf.eprintf "riommu-serve: %s(%s): %s\n" fn arg (Unix.error_message e);
          1
      | ns ->
          let wall_s = Unix.gettimeofday () -. t0 in
          let ops = Array.fold_left (fun a s -> a + Shard.total_ops s) 0 shards in
          let faults = Array.fold_left (fun a s -> a + Shard.faults s) 0 shards in
          let realized =
            if ns.Netloop.batch_flushes > 0 then
              float_of_int ns.Netloop.responses
              /. float_of_int ns.Netloop.batch_flushes
            else 0.
          in
          Printf.printf "riommu-serve --listen %s\n" (Netloop.addr_to_string addr);
          Printf.printf "  backend %s  domains %d  max-conns %d\n"
            ns.Netloop.backend ns.Netloop.domains ns.Netloop.max_conns_effective;
          if Array.length ns.Netloop.domain_ops > 0 then begin
            Printf.printf "  domain ops:";
            Array.iteri
              (fun e n -> Printf.printf " d%d %d" e n)
              ns.Netloop.domain_ops;
            print_newline ()
          end;
          Printf.printf "  wall %.2fs  conns %d (refused %d, protocol errors %d)\n"
            wall_s ns.Netloop.accepted ns.Netloop.refused ns.Netloop.protocol_errors;
          Printf.printf "  requests %d  responses %d  rejected %d\n"
            ns.Netloop.requests ns.Netloop.responses ns.Netloop.rejected;
          Printf.printf "  batch flushes %d (realized batch %.1f)\n"
            ns.Netloop.batch_flushes realized;
          Printf.printf "  ops:";
          for k = 0 to Shard.op_count - 1 do
            let op = Shard.op_of_index k in
            let n = Array.fold_left (fun a s -> a + Shard.ops s op) 0 shards in
            Printf.printf " %s %d" (Shard.op_name op) n
          done;
          Printf.printf "  (total %d, faults %d)\n" ops faults;
          Printf.printf "  bytes in %d out %d\n%!" ns.Netloop.bytes_in
            ns.Netloop.bytes_out;
          (match stats_dest with
          | None -> ()
          | Some dest ->
              let b = Buffer.create 4096 in
              Buffer.add_string b "{\n";
              Printf.bprintf b "  \"schema\": \"riommu-serve-net/1\",\n";
              Printf.bprintf b "  \"addr\": %S,\n" (Netloop.addr_to_string addr);
              Printf.bprintf b
                "  \"shards\": %d, \"batch\": %d, \"window\": %d,\n" nshards
                batch window;
              Printf.bprintf b
                "  \"backend\": %S, \"domains\": %d, \
                 \"max_conns_effective\": %d,\n"
                ns.Netloop.backend ns.Netloop.domains
                ns.Netloop.max_conns_effective;
              Buffer.add_string b "  \"domain_ops\": [";
              Array.iteri
                (fun e n ->
                  if e > 0 then Buffer.add_string b ", ";
                  Printf.bprintf b "%d" n)
                ns.Netloop.domain_ops;
              Buffer.add_string b "],\n";
              Printf.bprintf b "  \"wall_s\": %.6f,\n" wall_s;
              Printf.bprintf b "  \"ops\": %d,\n" ops;
              Printf.bprintf b "  \"ops_per_sec\": %.1f,\n"
                (if wall_s > 0. then float_of_int ops /. wall_s else 0.);
              Printf.bprintf b
                "  \"requests\": %d, \"responses\": %d, \"rejected\": %d,\n"
                ns.Netloop.requests ns.Netloop.responses ns.Netloop.rejected;
              Printf.bprintf b
                "  \"accepted\": %d, \"refused\": %d, \"closed\": %d, \
                 \"protocol_errors\": %d,\n"
                ns.Netloop.accepted ns.Netloop.refused ns.Netloop.closed
                ns.Netloop.protocol_errors;
              Printf.bprintf b
                "  \"batch_flushes\": %d, \"realized_batch\": %.2f,\n"
                ns.Netloop.batch_flushes realized;
              Printf.bprintf b "  \"bytes_in\": %d, \"bytes_out\": %d,\n"
                ns.Netloop.bytes_in ns.Netloop.bytes_out;
              Printf.bprintf b "  \"faults\": %d,\n" faults;
              Buffer.add_string b "  \"groups\": [\n";
              for k = 0 to Shard.op_count - 1 do
                let op = Shard.op_of_index k in
                let h = Histogram.create () in
                Array.iter
                  (fun s -> Histogram.merge_into ~dst:h (Shard.hist s op))
                  shards;
                Printf.bprintf b
                  "    { \"name\": \"net/%s\", \"iters\": %d, \
                   \"p50_cycles\": %d, \"p99_cycles\": %d, \"p999_cycles\": \
                   %d, \"max_cycles\": %d }%s\n"
                  (Shard.op_name op) (Histogram.count h)
                  (Histogram.quantile h 0.5)
                  (Histogram.quantile h 0.99)
                  (Histogram.quantile h 0.999)
                  (Histogram.max_recorded h)
                  (if k < Shard.op_count - 1 then "," else "")
              done;
              Buffer.add_string b "  ],\n";
              Server.bprint_tenants b (Server.tenant_stats_of shards ~tenants);
              Buffer.add_string b "\n}\n";
              let json = Buffer.contents b in
              if dest = "-" then prerr_string json
              else begin
                let oc = open_out dest in
                output_string oc json;
                close_out oc
              end);
          0)

let serve_term =
  let open Rio_serve in
  let dflt = Server.default_config in
  let duration =
    Arg.(
      value
      & opt float dflt.Server.duration_s
      & info [ "duration"; "d" ] ~docv:"S" ~doc:"Simulated seconds to serve.")
  in
  let interval =
    Arg.(
      value
      & opt float dflt.Server.interval_s
      & info [ "interval" ] ~docv:"S"
          ~doc:"Snapshot cadence in simulated seconds.")
  in
  let shards =
    Arg.(
      value
      & opt int dflt.Server.shards
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard count — the determinism unit. Results depend on this, \
             never on $(b,--jobs).")
  in
  let jobs =
    Arg.(
      value
      & opt int dflt.Server.jobs
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains driving the shards: 1 sequential, 0 one per \
             core. Needs an OCaml 5 runtime to parallelize; a 4.14 build \
             accepts the flag and runs sequentially. Output is \
             byte-identical at every level.")
  in
  let tenants =
    Arg.(
      value
      & opt int dflt.Server.tenants
      & info [ "tenants" ] ~docv:"N" ~doc:"Tenant domains per shard.")
  in
  let flows =
    Arg.(
      value
      & opt int dflt.Server.flows_per_tenant
      & info [ "flows" ] ~docv:"N" ~doc:"Flow slots per tenant.")
  in
  let seed =
    Arg.(
      value
      & opt int dflt.Server.seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Root seed; every connection derives its own stream from it.")
  in
  let no_rcache =
    Arg.(
      value & flag
      & info [ "no-rcache" ]
          ~doc:"Disable the per-tenant IOVA magazine caches (on by default).")
  in
  let capacity =
    Arg.(
      value
      & opt int dflt.Server.iotlb_capacity
      & info [ "capacity" ] ~docv:"N" ~doc:"Per-shard IOTLB entries.")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv dflt.Server.iotlb_policy
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"IOTLB policy: shared, partitioned or quota:N.")
  in
  let sg_max =
    Arg.(
      value
      & opt int dflt.Server.sg_max
      & info [ "sg-max" ] ~docv:"N"
          ~doc:"Scatter-gather segments per request (larger objects truncate).")
  in
  let stats =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats" ] ~docv:"FILE"
          ~doc:
            "Write the final stats JSON (bench-compatible schema, \
             riommu-serve/1) to $(docv); $(b,-) for stderr.")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Serve the riommu-wire/1 protocol on $(docv) (unix:PATH, \
             tcp:HOST:PORT or HOST:PORT) until SIGTERM, instead of running \
             the simulated load. $(b,--duration), $(b,--jobs), $(b,--flows) \
             and $(b,--seed) are ignored; $(b,--interval) becomes the \
             wall-clock progress cadence.")
  in
  let batch =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N"
          ~doc:"Dispatch batch slots per shard ($(b,--listen) mode).")
  in
  let window =
    Arg.(
      value & opt int 128
      & info [ "window" ] ~docv:"N"
          ~doc:
            "Per-connection in-flight request cap — the backpressure window \
             ($(b,--listen) mode).")
  in
  let max_conns =
    Arg.(
      value & opt int 64
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Connection cap; accepts beyond it are refused ($(b,--listen) \
                mode).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Shard executor domains ($(b,--listen) mode): 1 executes on the \
             IO thread (the classic loop); N>1 runs N executor domains \
             connected by SPSC rings (OCaml 5 only; clamped to the shard \
             count, and to 1 on a 4.14 runtime).")
  in
  let backend =
    Arg.(
      value
      & opt string
          (Rio_serve_net.Readiness.backend_name
             Rio_serve_net.Readiness.default_backend)
      & info [ "backend" ] ~docv:"B"
          ~doc:
            "Readiness backend ($(b,--listen) mode): $(b,poll) (no fd cap, \
             no per-wakeup set rebuild; default where built) or \
             $(b,select) (portable, FD_SETSIZE-capped).")
  in
  let run duration interval shards jobs tenants flows seed no_rcache capacity
      policy sg_max stats listen batch window max_conns domains backend =
    match listen with
    | Some addr ->
        run_listen ~addr ~shards ~tenants ~capacity ~policy
          ~rcache:(not no_rcache) ~sg_max ~batch ~window ~max_conns ~domains
          ~backend ~interval ~stats_dest:stats
    | None ->
    let cfg =
      {
        Server.shards;
        jobs;
        tenants;
        flows_per_tenant = flows;
        duration_s = duration;
        interval_s = interval;
        seed;
        rcache = not no_rcache;
        iotlb_capacity = capacity;
        iotlb_policy = policy;
        sg_max;
      }
    in
    let stop = Rio_exec.Flag.create () in
    let on_signal = Sys.Signal_handle (fun _ -> Rio_exec.Flag.set stop) in
    Sys.set_signal Sys.sigterm on_signal;
    Sys.set_signal Sys.sigint on_signal;
    let t0 = Unix.gettimeofday () in
    let last_ops = ref 0 in
    let last_t = ref t0 in
    let on_snapshot (s : Server.snapshot) =
      let now = Unix.gettimeofday () in
      let ops = Array.fold_left ( + ) 0 s.Server.ops in
      let dt = now -. !last_t in
      let rate = if dt > 0. then float_of_int (ops - !last_ops) /. dt else 0. in
      Printf.eprintf
        "riommu-serve: tick %d  sim %.2fs  ops %d  %.0f ops/s (wall)\n%!"
        s.Server.tick s.Server.virtual_s ops rate;
      last_ops := ops;
      last_t := now
    in
    match Server.run ~stop ~on_snapshot cfg with
    | exception Invalid_argument m ->
        prerr_endline ("riommu-serve: " ^ m);
        2
    | report ->
        let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
        print_string (Server.render_summary report);
        (match stats with
        | None -> ()
        | Some dest ->
            let words_per_op = Server.alloc_probe () in
            let json = Server.render_json report ~wall_ns ~words_per_op in
            if dest = "-" then prerr_string json
            else begin
              let oc = open_out dest in
              output_string oc json;
              close_out oc
            end);
        0
  in
  Term.(
    const run $ duration $ interval $ shards $ jobs $ tenants $ flows $ seed
    $ no_rcache $ capacity $ policy $ sg_max $ stats $ listen $ batch $ window
    $ max_conns $ domains $ backend)

let () =
  let doc = "online multi-tenant IOMMU translation service (simulated)" in
  let info = Cmd.info "riommu-serve" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.v info serve_term))
