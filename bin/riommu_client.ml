(* riommu-client: socket load generator and wall-clock benchmark for
   riommu-serve --listen.

     riommu-client --connect ADDR [--conns N] [--duration S] [--batch N]
                   [--sweep LIST] [--tenants N] [--pages N] [--mix M]
                   [--json FILE] [--twin]

   Each connection speaks riommu-wire/1: hello, then a setup phase
   that maps --pages pages for its tenant, then closed-loop batches of
   --batch pipelined requests until the wall deadline. Throughput is
   steady-state responses per wall second aggregated over connections;
   latency is per-response sojourn from the batch's send instant, so
   the batch-size sweep shows the amortization trade directly:
   batched ops/s strictly above batch=1, batched p50 above it too.

   --sweep runs one segment per batch size over fresh connections;
   --twin appends the deterministic simulated engine's numbers
   (Rio_serve.Server.run, same shard code, simulated clock) so the
   wall-clock transport and the simulation read side by side. *)

open Cmdliner
module Wire = Rio_serve_net.Wire
module Netloop = Rio_serve_net.Netloop
module Histogram = Rio_serve.Histogram
module Server = Rio_serve.Server

(* Reconnect: the transport dropped (ECONNRESET/EPIPE/EOF) outside
   Drain; the conn sits out of the fd sets until its backoff deadline,
   then dials again and re-runs setup from scratch. Remapping is the
   only safe resume: if the server restarted, every pre-drop iova is
   dead, and if it stayed up the extra mappings are harmless. *)
type mode = Setup | Steady | Drain | Done | Reconnect

type conn = {
  mutable fd : Unix.file_descr;
  idx : int;
  tenant : int;
  iovas : int array;
  mutable mapped : int;
  mutable setup_sent : int;
  rbuf : Bytes.t;
  mutable rpos : int;
  mutable rlen : int;
  wbuf : Bytes.t;
  mutable wpos : int;
  mutable wlen : int;
  mutable outstanding : int;
  mutable mode : mode;
  mutable t0 : float;  (* send instant of the in-flight batch *)
  mutable rng : int;
  mutable seq : int;
  mutable phys_next : int;
  mutable ops : int;  (* steady-state responses *)
  mutable errors : int;  (* non-ok statuses *)
  (* ring of extra iovas mapped during a mixed-load run, unmapped by
     later batches *)
  ring : int array;
  mutable ring_n : int;
  (* reconnect bookkeeping *)
  mutable retries : int;  (* successful redials this segment *)
  mutable attempts : int;  (* consecutive failed dials since the drop *)
  mutable backoff : float;  (* capped exponential, seconds *)
  mutable next_retry : float;  (* wall deadline for the next dial *)
}

(* 48-bit LCG (java.util.Random constants) — fits a 63-bit int. *)
let lcg c =
  c.rng <- ((c.rng * 0x5DEECE66D) + 0xB) land ((1 lsl 48) - 1);
  c.rng lsr 16

let connect_to addr =
  match addr with
  | Netloop.Unix_path p ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX p);
      fd
  | Netloop.Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      let ip =
        if host = "localhost" then Unix.inet_addr_loopback
        else Unix.inet_addr_of_string host
      in
      Unix.connect fd (Unix.ADDR_INET (ip, port));
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      fd

let make_conn addr ~idx ~tenant ~pages ~batch ~seed =
  let fd = connect_to addr in
  Unix.set_nonblock fd;
  let wcap =
    (* hello + a full batch (or setup chunk) of maximal requests *)
    let slots = if batch > 64 then batch + 4 else 68 in
    Wire.hello_bytes + (slots * Wire.max_request_bytes ~sg_limit:8)
  in
  let rcap =
    let per = Wire.max_response_bytes ~sg_limit:8 in
    let n = (batch + 4) * per in
    if n > 65536 then n else 65536
  in
  let c =
    {
      fd;
      idx;
      tenant;
      iovas = Array.make pages 0;
      mapped = 0;
      setup_sent = 0;
      rbuf = Bytes.create rcap;
      rpos = 0;
      rlen = 0;
      wbuf = Bytes.create wcap;
      wpos = 0;
      wlen = 0;
      outstanding = 0;
      mode = Setup;
      t0 = 0.;
      rng = seed + (idx * 0x9E3779B1) + 1;
      seq = 0;
      phys_next = (idx + 1) * 0x1000_0000;
      ops = 0;
      errors = 0;
      ring = Array.make 1024 0;
      ring_n = 0;
      retries = 0;
      attempts = 0;
      backoff = 0.01;
      next_retry = 0.;
    }
  in
  c.wlen <- Wire.encode_hello c.wbuf ~pos:0 ~bdf:(0x100 + idx) ~flags:0;
  c

let queued c = c.wlen - c.wpos

(* Returns false when the transport is gone (RST/EPIPE), so the caller
   can route the conn into reconnect instead of aborting the sweep. *)
let flush_write c =
  let q = queued c in
  if q = 0 then true
  else begin
    match Unix.single_write c.fd c.wbuf c.wpos q with
    | n ->
        c.wpos <- c.wpos + n;
        if c.wpos = c.wlen then begin
          c.wpos <- 0;
          c.wlen <- 0
        end;
        true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> true
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> false
  end

let next_phys c =
  let p = c.phys_next in
  c.phys_next <- c.phys_next + 4096;
  p

(* Setup: map pages in chunks so we never exceed the server's window. *)
let setup_chunk = 64

let send_setup_chunk c =
  let n = min setup_chunk (Array.length c.iovas - c.setup_sent) in
  let p = ref c.wlen in
  for _ = 1 to n do
    c.seq <- c.seq + 1;
    p :=
      Wire.encode_map c.wbuf ~pos:!p ~tenant:c.tenant ~req_id:c.seq
        ~phys:(next_phys c) ~bytes:4096
  done;
  c.wlen <- !p;
  c.setup_sent <- c.setup_sent + n;
  c.outstanding <- c.outstanding + n

(* One steady-state batch. Mix "translate": pure translate over the
   premapped pages. Mix "mixed": slot 0 maps a fresh page, slot 1
   unmaps a previously mixed-in page when one is available, the rest
   translate — every wire op exercised while translate dominates. *)
let send_batch c ~batch ~mixed ~now =
  let p = ref c.wlen in
  for j = 0 to batch - 1 do
    c.seq <- c.seq + 1;
    if mixed && j = 0 then
      p :=
        Wire.encode_map c.wbuf ~pos:!p ~tenant:c.tenant ~req_id:c.seq
          ~phys:(next_phys c) ~bytes:4096
    else if mixed && j = 1 && c.ring_n > 0 then begin
      c.ring_n <- c.ring_n - 1;
      p :=
        Wire.encode_unmap c.wbuf ~pos:!p ~tenant:c.tenant ~req_id:c.seq
          ~iova:c.ring.(c.ring_n)
    end
    else begin
      let iova = c.iovas.(lcg c mod c.mapped) in
      p :=
        Wire.encode_translate c.wbuf ~pos:!p ~tenant:c.tenant ~req_id:c.seq
          ~iova ~write:false
    end
  done;
  c.wlen <- !p;
  c.outstanding <- c.outstanding + batch;
  c.t0 <- now

(* Drain every decodable response; returns false on EOF/reset. *)
let handle_responses c resp ~hist ~recording ~now =
  let alive = ref true in
  let continue = ref true in
  while !continue do
    let avail = c.rlen - c.rpos in
    let r = Wire.decode_response c.rbuf ~pos:c.rpos ~avail resp in
    if r > 0 then begin
      c.rpos <- c.rpos + r;
      c.outstanding <- c.outstanding - 1;
      (match c.mode with
      | Setup ->
          if resp.Wire.r_op = Wire.op_map then
            if resp.Wire.status = Wire.st_ok then begin
              c.iovas.(c.mapped) <- resp.Wire.r_iova;
              c.mapped <- c.mapped + 1
            end
            else c.errors <- c.errors + 1
      | Steady | Drain ->
          if resp.Wire.status = Wire.st_ok then begin
            c.ops <- c.ops + 1;
            if recording then
              Histogram.record hist
                (int_of_float ((now -. c.t0) *. 1e9))
          end
          else c.errors <- c.errors + 1;
          if resp.Wire.r_op = Wire.op_map && resp.Wire.status = Wire.st_ok
             && c.ring_n < Array.length c.ring
          then begin
            c.ring.(c.ring_n) <- resp.Wire.r_iova;
            c.ring_n <- c.ring_n + 1
          end
      | Done | Reconnect -> ())
    end
    else if r = 0 then begin
      continue := false;
      (* compact *)
      if c.rpos > 0 then begin
        Bytes.blit c.rbuf c.rpos c.rbuf 0 (c.rlen - c.rpos);
        c.rlen <- c.rlen - c.rpos;
        c.rpos <- 0
      end
    end
    else begin
      Printf.eprintf "riommu-client: protocol error from server (%s)\n%!"
        (Wire.error_name (Wire.error_of_code r));
      alive := false;
      continue := false
    end
  done;
  !alive

let handle_read c resp ~hist ~recording ~now =
  let cap = Bytes.length c.rbuf - c.rlen in
  if cap = 0 then handle_responses c resp ~hist ~recording ~now
  else begin
    match Unix.read c.fd c.rbuf c.rlen cap with
    | 0 -> false
    | n ->
        c.rlen <- c.rlen + n;
        handle_responses c resp ~hist ~recording ~now
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> true
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> false
  end

(* Synchronous stats round trip on an already-connected fd (used once,
   on the first connection, after its segment drains). *)
let fetch_stats c resp =
  Unix.clear_nonblock c.fd;
  c.seq <- c.seq + 1;
  let len = Wire.encode_stats c.wbuf ~pos:0 ~tenant:0 ~req_id:c.seq in
  let _ = Unix.write c.fd c.wbuf 0 len in
  c.rpos <- 0;
  c.rlen <- 0;
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec loop () =
    if Unix.gettimeofday () > deadline then None
    else begin
      match Unix.read c.fd c.rbuf c.rlen (Bytes.length c.rbuf - c.rlen) with
      | 0 -> None
      | n -> (
          c.rlen <- c.rlen + n;
          let r = Wire.decode_response c.rbuf ~pos:0 ~avail:c.rlen resp in
          if r > 0 && resp.Wire.r_op = Wire.op_stats then Some resp
          else if r >= 0 then loop ()
          else None)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> None
    end
  in
  loop ()

type segment_result = {
  sr_batch : int;
  sr_ops : int;
  sr_errors : int;
  sr_retries : int;
  sr_wall : float;
  sr_hist : Histogram.t;
}

(* A dropped conn gets up to [max_dials] redials with capped
   exponential backoff before it is written off. *)
let max_dials = 8

let run_segment ~addr ~conns:nconns ~tenants ~tenant_base ~pages ~batch
    ~duration ~mixed ~seed ~want_stats =
  let conns =
    Array.init nconns (fun i ->
        make_conn addr ~idx:i
          ~tenant:(tenant_base + (i mod tenants))
          ~pages ~batch ~seed)
  in
  let resp = Wire.create_resp ~sg_limit:8 in
  let hist = Histogram.create () in
  let kill c =
    if c.mode <> Done then begin
      c.mode <- Done;
      (try Unix.close c.fd with Unix.Unix_error _ -> ())
    end
  in
  (* The transport under c dropped: park the conn in Reconnect (its fd
     is closed, so it must stay out of the select sets) unless it was
     already draining, in which case its steady-state ops are counted
     and there is nothing left worth redialing for. *)
  let lose c ~now =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    match c.mode with
    | Drain | Done -> c.mode <- Done
    | Setup | Steady | Reconnect ->
        c.mode <- Reconnect;
        c.outstanding <- 0;
        c.rpos <- 0;
        c.rlen <- 0;
        c.wpos <- 0;
        c.wlen <- 0;
        c.attempts <- 0;
        c.backoff <- 0.01;
        c.next_retry <- now +. c.backoff
  in
  let redial c ~now =
    match connect_to addr with
    | fd ->
        Unix.set_nonblock fd;
        c.fd <- fd;
        c.retries <- c.retries + 1;
        c.attempts <- 0;
        c.backoff <- 0.01;
        c.wpos <- 0;
        c.wlen <- Wire.encode_hello c.wbuf ~pos:0 ~bdf:(0x100 + c.idx) ~flags:0;
        (* Re-run setup from scratch: pre-drop iovas may be dead (the
           drop may have been a server restart), so translate against
           them would just fault. Fresh maps work either way. *)
        c.mapped <- 0;
        c.setup_sent <- 0;
        c.mode <- Setup;
        send_setup_chunk c
    | exception Unix.Unix_error _ ->
        c.attempts <- c.attempts + 1;
        if c.attempts >= max_dials then
          (* fd is already closed; don't route through [kill] *)
          c.mode <- Done
        else begin
          c.backoff <- Float.min 0.5 (c.backoff *. 2.);
          c.next_retry <- now +. c.backoff
        end
  in
  let tick_reconnects ~now =
    Array.iter
      (fun c -> if c.mode = Reconnect && now >= c.next_retry then redial c ~now)
      conns
  in
  (* Phase 1: setup — map [pages] per connection. *)
  Array.iter (fun c -> send_setup_chunk c) conns;
  let setup_deadline = Unix.gettimeofday () +. 10.0 in
  let setup_pending () =
    Array.exists (fun c -> c.mode = Setup || c.mode = Reconnect) conns
  in
  while setup_pending () && Unix.gettimeofday () < setup_deadline do
    let rds =
      List.filter_map
        (fun c -> if c.mode = Setup then Some c.fd else None)
        (Array.to_list conns)
    in
    let wrs =
      List.filter_map
        (fun c -> if c.mode = Setup && queued c > 0 then Some c.fd else None)
        (Array.to_list conns)
    in
    (match Unix.select rds wrs [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        Array.iter
          (fun c ->
            if c.mode = Setup then begin
              let now = Unix.gettimeofday () in
              if List.memq c.fd writable && not (flush_write c) then
                lose c ~now
              else begin
                if List.memq c.fd readable then
                  if not (handle_read c resp ~hist ~recording:false ~now) then
                    lose c ~now;
                if c.mode = Setup && c.outstanding = 0 then
                  if c.mapped >= Array.length c.iovas then c.mode <- Steady
                  else send_setup_chunk c
              end
            end)
          conns);
    tick_reconnects ~now:(Unix.gettimeofday ())
  done;
  Array.iter
    (fun c ->
      match c.mode with
      | Setup ->
          Printf.eprintf "riommu-client: setup timed out on a connection\n%!";
          kill c
      | Reconnect ->
          Printf.eprintf "riommu-client: setup timed out on a connection\n%!";
          (* fd already closed by [lose] *)
          c.mode <- Done
      | Steady | Drain | Done -> ())
    conns;
  (* Phase 2 + 3: steady batches until the deadline, then drain. *)
  let t_start = Unix.gettimeofday () in
  let deadline = t_start +. duration in
  Array.iter
    (fun c -> if c.mode = Steady then send_batch c ~batch ~mixed ~now:t_start)
    conns;
  let live () = Array.exists (fun c -> c.mode <> Done) conns in
  let selectable c = c.mode <> Done && c.mode <> Reconnect in
  while live () do
    let rds =
      List.filter_map
        (fun c -> if selectable c then Some c.fd else None)
        (Array.to_list conns)
    in
    let wrs =
      List.filter_map
        (fun c -> if selectable c && queued c > 0 then Some c.fd else None)
        (Array.to_list conns)
    in
    (match Unix.select rds wrs [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        Array.iter
          (fun c ->
            if selectable c then begin
              let now = Unix.gettimeofday () in
              if List.memq c.fd writable && not (flush_write c) then
                lose c ~now
              else begin
                if List.memq c.fd readable then begin
                  let now = Unix.gettimeofday () in
                  if not (handle_read c resp ~hist ~recording:true ~now) then
                    lose c ~now
                end;
                if selectable c && c.outstanding = 0 && queued c = 0 then begin
                  match c.mode with
                  | Steady ->
                      if Unix.gettimeofday () < deadline then
                        send_batch c ~batch ~mixed ~now:(Unix.gettimeofday ())
                      else c.mode <- Drain
                  | Setup ->
                      (* post-redial re-setup running inside the
                         steady phase *)
                      if c.mapped >= Array.length c.iovas then c.mode <- Steady
                      else send_setup_chunk c
                  | Drain -> c.mode <- Done  (* nothing left in flight *)
                  | Done | Reconnect -> ()
                end;
                if c.mode = Drain && c.outstanding = 0 && queued c = 0 then
                  c.mode <- Done
              end
            end)
          conns);
    tick_reconnects ~now:(Unix.gettimeofday ())
  done;
  let t_end = Unix.gettimeofday () in
  (* One stats round trip, on the first connection, before closing. *)
  if want_stats then begin
    let c = conns.(0) in
    if c.errors = 0 && c.mapped > 0 then begin
      match
        (try
           let fd = connect_to addr in
           let probe =
             { c with fd; rpos = 0; rlen = 0; wpos = 0; wlen = 0; seq = 1000000 }
           in
           let hello = Wire.encode_hello probe.wbuf ~pos:0 ~bdf:0x999 ~flags:0 in
           let _ = Unix.write fd probe.wbuf 0 hello in
           let r = fetch_stats probe resp in
           (try Unix.close fd with Unix.Unix_error _ -> ());
           r
         with Unix.Unix_error _ -> None)
      with
      | Some r ->
          Printf.eprintf
            "riommu-client: server stats: ops %d requests %d conns %d errors \
             %d faults %d\n%!"
            r.Wire.s_ops r.Wire.s_requests r.Wire.s_conns r.Wire.s_errors
            r.Wire.s_faults
      | None ->
          Printf.eprintf "riommu-client: stats round trip failed\n%!"
    end
  end;
  Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  let ops = Array.fold_left (fun a c -> a + c.ops) 0 conns in
  let errors = Array.fold_left (fun a c -> a + c.errors) 0 conns in
  let retries = Array.fold_left (fun a c -> a + c.retries) 0 conns in
  {
    sr_batch = batch;
    sr_ops = ops;
    sr_errors = errors;
    sr_retries = retries;
    sr_wall = t_end -. t_start;
    sr_hist = hist;
  }

type twin_result = {
  tw_ops : int;
  tw_wall : float;
  tw_p50 : int;
  tw_p99 : int;
  tw_p999 : int;
}

let run_twin () =
  let cfg = { Server.default_config with Server.duration_s = 0.25 } in
  let t0 = Unix.gettimeofday () in
  let report = Server.run cfg in
  let wall = Unix.gettimeofday () -. t0 in
  let s = Server.final report in
  let ops = Array.fold_left ( + ) 0 s.Server.ops in
  let ti = Rio_serve.Shard.op_index Rio_serve.Shard.Translate in
  {
    tw_ops = ops;
    tw_wall = wall;
    tw_p50 = s.Server.p50.(ti);
    tw_p99 = s.Server.p99.(ti);
    tw_p999 = s.Server.p999.(ti);
  }

let client_term =
  let connect =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect"; "c" ] ~docv:"ADDR"
          ~doc:"Server address: unix:PATH, tcp:HOST:PORT or HOST:PORT.")
  in
  let conns =
    Arg.(
      value & opt int 4
      & info [ "conns" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let duration =
    Arg.(
      value & opt float 2.0
      & info [ "duration"; "d" ] ~docv:"S"
          ~doc:"Wall-clock seconds of steady-state load per batch size.")
  in
  let batch =
    Arg.(
      value & opt int 16
      & info [ "batch" ] ~docv:"N"
          ~doc:"Pipelined requests per closed-loop round trip.")
  in
  let sweep =
    Arg.(
      value
      & opt (some string) None
      & info [ "sweep" ] ~docv:"LIST"
          ~doc:
            "Comma-separated batch sizes (e.g. 1,16,64); one segment per \
             size over fresh connections. Overrides $(b,--batch).")
  in
  let tenants =
    Arg.(
      value & opt int 0
      & info [ "tenants" ] ~docv:"N"
          ~doc:
            "Distinct wire tenants to spread connections over (default: one \
             per connection).")
  in
  let tenant_base =
    Arg.(
      value & opt int 0
      & info [ "tenant-base" ] ~docv:"N"
          ~doc:
            "First tenant id to use; lets concurrent client processes \
             address disjoint tenant ranges on one server.")
  in
  let label =
    Arg.(
      value & opt string ""
      & info [ "label" ] ~docv:"S"
          ~doc:"Free-form run label echoed into the JSON output.")
  in
  let pages =
    Arg.(
      value & opt int 64
      & info [ "pages" ] ~docv:"N"
          ~doc:"Pages each connection maps up front and translates against.")
  in
  let mix =
    Arg.(
      value
      & opt (enum [ ("translate", false); ("mixed", true) ]) false
      & info [ "mix" ] ~docv:"MIX"
          ~doc:
            "Steady-state op mix: $(b,translate) (pure translate) or \
             $(b,mixed) (a map and an unmap folded into every batch).")
  in
  let seed =
    Arg.(
      value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"IOVA pick seed.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write results as riommu-client/1 JSON to $(docv); $(b,-) for \
                stdout.")
  in
  let twin =
    Arg.(
      value & flag
      & info [ "twin" ]
          ~doc:
            "Also run the deterministic simulated engine in-process and \
             report it beside the socket numbers.")
  in
  let no_stats =
    Arg.(
      value & flag
      & info [ "no-stats" ] ~doc:"Skip the final stats round trip.")
  in
  let run connect conns duration batch sweep tenants tenant_base label pages
      mixed seed json twin no_stats =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    match Netloop.parse_addr connect with
    | Error m ->
        prerr_endline ("riommu-client: " ^ m);
        2
    | Ok addr -> (
        let batches =
          match sweep with
          | None -> [ batch ]
          | Some s ->
              List.filter_map int_of_string_opt (String.split_on_char ',' s)
        in
        if batches = [] || List.exists (fun b -> b < 1 || b > 4096) batches
        then begin
          prerr_endline "riommu-client: bad --sweep/--batch (want 1..4096)";
          2
        end
        else if conns < 1 || pages < 1 || duration <= 0. then begin
          prerr_endline "riommu-client: bad --conns/--pages/--duration";
          2
        end
        else
          let tenants = if tenants < 1 then conns else tenants in
          match
            List.mapi
              (fun i b ->
                run_segment ~addr ~conns ~tenants ~tenant_base ~pages ~batch:b
                  ~duration ~mixed ~seed
                  ~want_stats:((not no_stats) && i = List.length batches - 1))
              batches
          with
          | exception Unix.Unix_error (e, fn, _) ->
              Printf.eprintf "riommu-client: %s: %s\n" fn
                (Unix.error_message e);
              1
          | results ->
              let tw = if twin then Some (run_twin ()) else None in
              Printf.printf
                "riommu-client: %d conns -> %s, %.1fs/segment, mix=%s\n" conns
                (Netloop.addr_to_string addr) duration
                (if mixed then "mixed" else "translate");
              Printf.printf "%-6s %-6s %-10s %-11s %-9s %-9s %-9s\n" "batch"
                "conns" "ops" "ops/s" "p50_us" "p99_us" "p99.9_us";
              List.iter
                (fun r ->
                  let rate =
                    if r.sr_wall > 0. then
                      float_of_int r.sr_ops /. r.sr_wall
                    else 0.
                  in
                  Printf.printf
                    "%-6d %-6d %-10d %-11.0f %-9.1f %-9.1f %-9.1f\n" r.sr_batch
                    conns r.sr_ops rate
                    (float_of_int (Histogram.quantile r.sr_hist 0.5) /. 1e3)
                    (float_of_int (Histogram.quantile r.sr_hist 0.99) /. 1e3)
                    (float_of_int (Histogram.quantile r.sr_hist 0.999) /. 1e3);
                  if r.sr_errors > 0 then
                    Printf.printf "       (%d error responses)\n" r.sr_errors;
                  if r.sr_retries > 0 then
                    Printf.printf "       (%d reconnects)\n" r.sr_retries)
                results;
              (match tw with
              | None -> ()
              | Some t ->
                  Printf.printf
                    "sim-twin: %d ops in %.2fs wall = %.0f ops/s (simulated \
                     clock; translate p50/p99/p99.9 = %d/%d/%d cycles)\n"
                    t.tw_ops t.tw_wall
                    (if t.tw_wall > 0. then
                       float_of_int t.tw_ops /. t.tw_wall
                     else 0.)
                    t.tw_p50 t.tw_p99 t.tw_p999);
              (match json with
              | None -> ()
              | Some dest ->
                  let b = Buffer.create 1024 in
                  Buffer.add_string b "{\n";
                  Printf.bprintf b "  \"schema\": \"riommu-client/1\",\n";
                  Printf.bprintf b "  \"addr\": %S,\n"
                    (Netloop.addr_to_string addr);
                  Printf.bprintf b "  \"label\": %S,\n" label;
                  Printf.bprintf b
                    "  \"conns\": %d, \"duration_s\": %.3f, \"pages\": %d, \
                     \"mix\": %S, \"tenant_base\": %d,\n"
                    conns duration pages
                    (if mixed then "mixed" else "translate")
                    tenant_base;
                  Buffer.add_string b "  \"results\": [\n";
                  List.iteri
                    (fun i r ->
                      Printf.bprintf b
                        "    { \"batch\": %d, \"ops\": %d, \"errors\": %d, \
                         \"retries\": %d, \"wall_s\": %.6f, \"ops_per_sec\": \
                         %.1f, \"p50_ns\": %d, \"p99_ns\": %d, \"p999_ns\": \
                         %d }%s\n"
                        r.sr_batch r.sr_ops r.sr_errors r.sr_retries r.sr_wall
                        (if r.sr_wall > 0. then
                           float_of_int r.sr_ops /. r.sr_wall
                         else 0.)
                        (Histogram.quantile r.sr_hist 0.5)
                        (Histogram.quantile r.sr_hist 0.99)
                        (Histogram.quantile r.sr_hist 0.999)
                        (if i < List.length results - 1 then "," else ""))
                    results;
                  Buffer.add_string b "  ],\n";
                  (match tw with
                  | None -> Buffer.add_string b "  \"twin\": null\n"
                  | Some t ->
                      Printf.bprintf b
                        "  \"twin\": { \"ops\": %d, \"wall_s\": %.6f, \
                         \"ops_per_sec\": %.1f, \"translate_p50_cycles\": %d, \
                         \"translate_p99_cycles\": %d, \
                         \"translate_p999_cycles\": %d }\n"
                        t.tw_ops t.tw_wall
                        (if t.tw_wall > 0. then
                           float_of_int t.tw_ops /. t.tw_wall
                         else 0.)
                        t.tw_p50 t.tw_p99 t.tw_p999);
                  Buffer.add_string b "}\n";
                  let s = Buffer.contents b in
                  if dest = "-" then print_string s
                  else begin
                    let oc = open_out dest in
                    output_string oc s;
                    close_out oc
                  end);
              let any_ops =
                List.exists (fun r -> r.sr_ops > 0) results
              in
              if any_ops then 0 else 1)
  in
  Term.(
    const run $ connect $ conns $ duration $ batch $ sweep $ tenants
    $ tenant_base $ label $ pages $ mix $ seed $ json $ twin $ no_stats)

let () =
  let doc = "socket load generator for riommu-serve --listen" in
  let info = Cmd.info "riommu-client" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.v info client_term))
