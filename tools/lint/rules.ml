(* The four rule implementations. Everything here walks the typed tree
   ([Typedtree]) out of the .cmt files the normal dune build already
   produces, so the checks see resolved paths and inferred types, not
   source text.

   Only version-stable corners of the compiler-libs API are used
   (wildcard payloads on constructors whose shape moved between 4.14
   and 5.x), so the same source builds on every CI compiler. *)

open Typedtree

let mk = Finding.of_loc

(* Resolved identifier path with any leading [Stdlib.] stripped, so the
   manifest can say [Random.] and cover [Stdlib.Random.*] too. *)
let norm_path p =
  let n = Path.name p in
  let pfx = "Stdlib." in
  let lp = String.length pfx in
  if String.length n > lp && String.sub n 0 lp = pfx then
    String.sub n lp (String.length n - lp)
  else n

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Suffix semantics for sanctioned wrappers: [Memo.create] matches both
   [Rio_exec.Memo.create] and a locally aliased [Memo.create]. *)
let suffix_matches name candidate =
  name = candidate
  ||
  let ln = String.length name and lc = String.length candidate in
  ln > lc + 1 && String.sub name (ln - lc - 1) (lc + 1) = "." ^ candidate

let ident_of_fn e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some (norm_path p) | _ -> None

(* {2 Rule: determinism} *)

let determinism (m : Manifest.t) str =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  let check_ident loc name =
    List.iter
      (fun (fb : Manifest.forbidden) ->
        if starts_with ~prefix:fb.prefix name then
          add
            (mk ~rule:"determinism" ~subject:name
               ~message:
                 (Printf.sprintf
                    "reference to %s in deterministic scope (forbidden: %s)"
                    name fb.prefix)
               ~hint:
                 (if fb.hint <> "" then fb.hint
                  else "draw through Splittable_rng/Seeds streams")
               loc))
      m.det_forbidden
  in
  let expr it e =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> check_ident e.exp_loc (norm_path p)
    | Texp_apply (fn, args) -> (
        match ident_of_fn fn with
        | Some "Hashtbl.create" ->
            if
              List.exists
                (function
                  (* An omitted optional is elaborated by the typer as
                     a supplied [None] literal; anything else means the
                     caller actually passed ~random. *)
                  | ( (Asttypes.Labelled "random" | Asttypes.Optional "random"),
                      Some arg ) -> (
                      match arg.exp_desc with
                      | Texp_construct (_, cd, _) ->
                          cd.Types.cstr_name <> "None"
                      | _ -> true)
                  | _ -> false)
                args
            then
              add
                (mk ~rule:"determinism" ~subject:"Hashtbl.create ~random"
                   ~message:
                     "Hashtbl.create ~random seeds the hash from the \
                      environment; iteration order becomes run-dependent"
                   ~hint:"drop ~random; deterministic hashing is the default"
                   e.exp_loc)
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str;
  !acc

(* {2 Rule: domain-safety}

   Module-level [let]s must not create unsynchronized mutable state:
   anything a pool worker could reach as a shared global. State built
   inside functions is fine (per-instance), as is state wrapped in the
   sanctioned [Exec.Memo]/[Exec.Lock] constructors. *)

let mutable_record_fields fields =
  Array.exists
    (fun (ld, _) ->
      match ld.Types.lbl_mut with Asttypes.Mutable -> true | _ -> false)
    fields

(* Walk one toplevel binding's spine: everything evaluated at module
   init, i.e. not delayed under a function. Returns the findings and
   whether a sanctioned wrapper was seen. *)
let check_toplevel_binding (m : Manifest.t) ~name vb_expr =
  let acc = ref [] in
  let sanctioned = ref false in
  let add loc message hint =
    acc := mk ~rule:"domain-safety" ~subject:name ~message ~hint loc :: !acc
  in
  let hint =
    "wrap in Exec.Memo/Exec.Lock, move it inside the consumer, or waive \
     with a justification in lint.manifest.sexp"
  in
  let expr it e =
    match e.exp_desc with
    | Texp_function _ -> () (* delayed; not module state *)
    | Texp_apply (fn, _) -> (
        match ident_of_fn fn with
        | Some n when List.exists (suffix_matches n) m.ds_sanctioned ->
            sanctioned := true
        | Some n when List.mem n m.ds_mutable ->
            add e.exp_loc
              (Printf.sprintf
                 "module-level mutable state: toplevel `%s` built with %s" name
                 n)
              hint;
            Tast_iterator.default_iterator.expr it e
        | _ -> Tast_iterator.default_iterator.expr it e)
    | Texp_record { fields; _ } when mutable_record_fields fields ->
        add e.exp_loc
          (Printf.sprintf
             "module-level mutable state: toplevel `%s` is a record with \
              mutable fields"
             name)
          hint;
        Tast_iterator.default_iterator.expr it e
    | Texp_array _ ->
        add e.exp_loc
          (Printf.sprintf
             "module-level mutable state: toplevel `%s` holds an array \
              literal (arrays are always mutable)"
             name)
          hint;
        Tast_iterator.default_iterator.expr it e
    | Texp_lazy _ ->
        add e.exp_loc
          (Printf.sprintf
             "module-level `lazy` in `%s`: forcing from two domains races on \
              the thunk"
             name)
          hint
    | _ -> Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it vb_expr;
  if !sanctioned then [] else List.rev !acc

let binding_name vb =
  match pat_bound_idents vb.vb_pat with id :: _ -> Ident.name id | [] -> "_"

(* Structure walk shared by the toplevel-scoped rules: visits value
   bindings at module level, descending into submodules and functor
   bodies (so functorized code like Magazine.Make is covered). *)
let rec walk_structure on_binding str =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.iter on_binding vbs
      | Tstr_module mb -> walk_module_expr on_binding mb.mb_expr
      | Tstr_recmodule mbs ->
          List.iter (fun mb -> walk_module_expr on_binding mb.mb_expr) mbs
      | Tstr_include incl -> walk_module_expr on_binding incl.incl_mod
      | _ -> ())
    str.str_items

and walk_module_expr on_binding me =
  match me.mod_desc with
  | Tmod_structure s -> walk_structure on_binding s
  | Tmod_functor (_, body) -> walk_module_expr on_binding body
  | Tmod_constraint (me, _, _, _) -> walk_module_expr on_binding me
  | Tmod_apply (f, arg, _) ->
      walk_module_expr on_binding f;
      walk_module_expr on_binding arg
  | _ -> ()

let domain_safety (m : Manifest.t) str =
  let acc = ref [] in
  walk_structure
    (fun vb ->
      acc := check_toplevel_binding m ~name:(binding_name vb) vb.vb_expr @ !acc)
    str;
  List.rev !acc

(* {2 Rule: zero-alloc}

   For each manifest-listed hot function, flag every construct the
   typed tree shows to allocate. The check is per-function (callees are
   audited only if listed) and deliberately conservative: it complements
   the exact runtime words/op gate in bench/compare.ml with a diagnostic
   that names the offending expression at build time.

   Local non-escaping [ref] cells are not flagged: Simplif.eliminate_ref
   reliably turns those into mutable locals, and the runtime gate proves
   the result allocation-free. *)

let is_float_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.same p Predef.path_float
  | _ -> false

(* Known allocator entry points worth naming even though they are
   "just" applications. [ref] is deliberately absent: local
   non-escaping refs are eliminated by Simplif.eliminate_ref. *)
let allocator_fns =
  [
    "Array.make"; "Array.init"; "Array.copy"; "Array.append"; "Array.sub";
    "Array.of_list"; "Array.to_list"; "Bytes.create"; "Bytes.make";
    "String.make"; "String.sub"; "String.concat"; "Hashtbl.create";
    "Buffer.create"; "Queue.create"; "Stack.create";
  ]

let zero_alloc ~fn_name vb_expr =
  let acc = ref [] in
  let add loc what =
    acc :=
      mk ~rule:"zero-alloc" ~subject:fn_name
        ~message:
          (Printf.sprintf "allocation in hot function `%s`: %s" fn_name what)
        ~hint:
          "hoist the allocation out of the hot path (preallocate, return via \
           out-params, raise a constant exception) or waive it in the \
           manifest with a justification"
        loc
      :: !acc
  in
  (* [chain] is true while descending the curried [fun a -> fun b -> ...]
     head of the definition itself; the first non-function node switches
     to checking mode, and any function met after that is a closure. *)
  let chain = ref true in
  let expr it e =
    match e.exp_desc with
    | Texp_function _ when !chain -> Tast_iterator.default_iterator.expr it e
    | desc ->
        let saved = !chain in
        chain := false;
        (match desc with
        | Texp_function _ -> add e.exp_loc "closure construction (captures environment)"
        | Texp_tuple _ -> add e.exp_loc "tuple construction"
        | Texp_record _ -> add e.exp_loc "record construction"
        | Texp_array _ -> add e.exp_loc "array construction"
        | Texp_lazy _ -> add e.exp_loc "lazy block construction"
        | Texp_construct (_, cd, _) when cd.Types.cstr_arity > 0 ->
            add e.exp_loc
              (Printf.sprintf "constructor `%s` application (boxes %d argument%s)"
                 cd.Types.cstr_name cd.Types.cstr_arity
                 (if cd.Types.cstr_arity = 1 then "" else "s"))
        | Texp_apply (fn, _) -> (
            match ident_of_fn fn with
            | Some n when List.mem n allocator_fns ->
                add e.exp_loc (Printf.sprintf "call to allocator `%s`" n)
            | _ -> (
                match Types.get_desc e.exp_type with
                | Types.Tarrow _ ->
                    add e.exp_loc "partial application (allocates a closure)"
                | _ ->
                    if is_float_ty e.exp_type then
                      add e.exp_loc "boxed float result of an application"
                    else ()))
        | _ -> ());
        Tast_iterator.default_iterator.expr it e;
        chain := saved
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it vb_expr;
  List.rev !acc

let hot_functions (m : Manifest.t) ~source str =
  match List.find_opt (fun (h : Manifest.hot) -> h.h_file = source) m.za_hot with
  | None -> []
  | Some h ->
      let acc = ref [] in
      walk_structure
        (fun vb ->
          let name = binding_name vb in
          if List.mem name h.h_funs then
            acc := !acc @ zero_alloc ~fn_name:name vb.vb_expr)
        str;
      !acc

(* {2 Rule: interface}

   Walks the (build-tree copy of the) source dirs directly: every [.ml]
   must ship an [.mli]. Generated alias modules end in [.ml-gen] and are
   skipped; the dune-[select]ed exec backends are waived in the
   manifest. *)

let interface (m : Manifest.t) ~root =
  if not m.iface_require_mli then []
  else
    let acc = ref [] in
    let rec scan rel_dir =
      let abs = Filename.concat root rel_dir in
      match Sys.readdir abs with
      | exception Sys_error _ -> ()
      | entries ->
          Array.sort String.compare entries;
          Array.iter
            (fun entry ->
              if entry <> "" && entry.[0] <> '.' then
                let rel = Filename.concat rel_dir entry in
                let abs_e = Filename.concat abs entry in
                if Sys.is_directory abs_e then scan rel
                else if Filename.check_suffix entry ".ml" then
                  let mli = Filename.chop_suffix abs_e ".ml" ^ ".mli" in
                  if not (Sys.file_exists mli) then
                    acc :=
                      {
                        Finding.rule = "interface";
                        file = rel;
                        line = 1;
                        col = 0;
                        subject = entry;
                        message =
                          Printf.sprintf
                            "public module `%s` has no .mli interface"
                            (Filename.chop_suffix entry ".ml");
                        hint =
                          "add one (hide representation types, document the \
                           contract) or waive with a justification";
                      }
                      :: !acc)
            entries
    in
    List.iter scan m.scan_dirs;
    !acc
