(* The four rule implementations. Everything here walks the typed tree
   ([Typedtree]) out of the .cmt files the normal dune build already
   produces, so the checks see resolved paths and inferred types, not
   source text.

   Only version-stable corners of the compiler-libs API are used
   (wildcard payloads on constructors whose shape moved between 4.14
   and 5.x), so the same source builds on every CI compiler. *)

open Typedtree

let mk = Finding.of_loc

(* Resolved identifier path with any leading [Stdlib.] stripped, so the
   manifest can say [Random.] and cover [Stdlib.Random.*] too. *)
let norm_path p =
  let n = Path.name p in
  let pfx = "Stdlib." in
  let lp = String.length pfx in
  if String.length n > lp && String.sub n 0 lp = pfx then
    String.sub n lp (String.length n - lp)
  else n

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Suffix semantics for sanctioned wrappers: [Memo.create] matches both
   [Rio_exec.Memo.create] and a locally aliased [Memo.create]. *)
let suffix_matches name candidate =
  name = candidate
  ||
  let ln = String.length name and lc = String.length candidate in
  ln > lc + 1 && String.sub name (ln - lc - 1) (lc + 1) = "." ^ candidate

let ident_of_fn e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some (norm_path p) | _ -> None

(* {2 Rule: determinism} *)

let determinism (m : Manifest.t) str =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  let check_ident loc name =
    List.iter
      (fun (fb : Manifest.forbidden) ->
        if starts_with ~prefix:fb.prefix name then
          add
            (mk ~rule:"determinism" ~subject:name
               ~message:
                 (Printf.sprintf
                    "reference to %s in deterministic scope (forbidden: %s)"
                    name fb.prefix)
               ~hint:
                 (if fb.hint <> "" then fb.hint
                  else "draw through Splittable_rng/Seeds streams")
               loc))
      m.det_forbidden
  in
  let expr it e =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> check_ident e.exp_loc (norm_path p)
    | Texp_apply (fn, args) -> (
        match ident_of_fn fn with
        | Some "Hashtbl.create" ->
            if
              List.exists
                (function
                  (* An omitted optional is elaborated by the typer as
                     a supplied [None] literal; anything else means the
                     caller actually passed ~random. *)
                  | ( (Asttypes.Labelled "random" | Asttypes.Optional "random"),
                      Some arg ) -> (
                      match arg.exp_desc with
                      | Texp_construct (_, cd, _) ->
                          cd.Types.cstr_name <> "None"
                      | _ -> true)
                  | _ -> false)
                args
            then
              add
                (mk ~rule:"determinism" ~subject:"Hashtbl.create ~random"
                   ~message:
                     "Hashtbl.create ~random seeds the hash from the \
                      environment; iteration order becomes run-dependent"
                   ~hint:"drop ~random; deterministic hashing is the default"
                   e.exp_loc)
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.structure it str;
  !acc

(* {2 Rule: domain-safety}

   Module-level [let]s must not create unsynchronized mutable state:
   anything a pool worker could reach as a shared global. State built
   inside functions is fine (per-instance), as is state wrapped in the
   sanctioned [Exec.Memo]/[Exec.Lock] constructors. *)

let mutable_record_fields fields =
  Array.exists
    (fun (ld, _) ->
      match ld.Types.lbl_mut with Asttypes.Mutable -> true | _ -> false)
    fields

(* Walk one toplevel binding's spine: everything evaluated at module
   init, i.e. not delayed under a function. Returns the findings and
   whether a sanctioned wrapper was seen. *)
let check_toplevel_binding (m : Manifest.t) ~name vb_expr =
  let acc = ref [] in
  let sanctioned = ref false in
  let add loc message hint =
    acc := mk ~rule:"domain-safety" ~subject:name ~message ~hint loc :: !acc
  in
  let hint =
    "wrap in Exec.Memo/Exec.Lock, move it inside the consumer, or waive \
     with a justification in lint.manifest.sexp"
  in
  let expr it e =
    match e.exp_desc with
    | Texp_function _ -> () (* delayed; not module state *)
    | Texp_apply (fn, _) -> (
        match ident_of_fn fn with
        | Some n when List.exists (suffix_matches n) m.ds_sanctioned ->
            sanctioned := true
        | Some n when List.mem n m.ds_mutable ->
            add e.exp_loc
              (Printf.sprintf
                 "module-level mutable state: toplevel `%s` built with %s" name
                 n)
              hint;
            Tast_iterator.default_iterator.expr it e
        | _ -> Tast_iterator.default_iterator.expr it e)
    | Texp_record { fields; _ } when mutable_record_fields fields ->
        add e.exp_loc
          (Printf.sprintf
             "module-level mutable state: toplevel `%s` is a record with \
              mutable fields"
             name)
          hint;
        Tast_iterator.default_iterator.expr it e
    | Texp_array _ ->
        add e.exp_loc
          (Printf.sprintf
             "module-level mutable state: toplevel `%s` holds an array \
              literal (arrays are always mutable)"
             name)
          hint;
        Tast_iterator.default_iterator.expr it e
    | Texp_lazy _ ->
        add e.exp_loc
          (Printf.sprintf
             "module-level `lazy` in `%s`: forcing from two domains races on \
              the thunk"
             name)
          hint
    | _ -> Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it vb_expr;
  if !sanctioned then [] else List.rev !acc

let binding_name vb =
  match pat_bound_idents vb.vb_pat with id :: _ -> Ident.name id | [] -> "_"

(* Structure walk shared by the toplevel-scoped rules: visits value
   bindings at module level, descending into submodules and functor
   bodies (so functorized code like Magazine.Make is covered). *)
let rec walk_structure on_binding str =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.iter on_binding vbs
      | Tstr_module mb -> walk_module_expr on_binding mb.mb_expr
      | Tstr_recmodule mbs ->
          List.iter (fun mb -> walk_module_expr on_binding mb.mb_expr) mbs
      | Tstr_include incl -> walk_module_expr on_binding incl.incl_mod
      | _ -> ())
    str.str_items

and walk_module_expr on_binding me =
  match me.mod_desc with
  | Tmod_structure s -> walk_structure on_binding s
  | Tmod_functor (_, body) -> walk_module_expr on_binding body
  | Tmod_constraint (me, _, _, _) -> walk_module_expr on_binding me
  | Tmod_apply (f, arg, _) ->
      walk_module_expr on_binding f;
      walk_module_expr on_binding arg
  | _ -> ()

let domain_safety (m : Manifest.t) str =
  let acc = ref [] in
  walk_structure
    (fun vb ->
      acc := check_toplevel_binding m ~name:(binding_name vb) vb.vb_expr @ !acc)
    str;
  List.rev !acc

(* {2 Rule: zero-alloc (transitive)}

   Flag every construct the typed tree shows to allocate, in every
   function reachable from a manifest hot entry point over the call
   graph. Deliberately conservative: it complements the exact runtime
   words/op gate in bench/compare.ml with a diagnostic that names the
   offending expression — and the witness call chain that makes it hot —
   at build time.

   Local non-escaping [ref] cells are not flagged: Simplif.eliminate_ref
   reliably turns those into mutable locals, and the runtime gate proves
   the result allocation-free. *)

let is_float_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.same p Predef.path_float
  | _ -> false

(* Known allocator entry points worth naming even though they are
   "just" applications. [ref] is deliberately absent: local
   non-escaping refs are eliminated by Simplif.eliminate_ref. *)
let allocator_fns =
  [
    "Array.make"; "Array.init"; "Array.copy"; "Array.append"; "Array.sub";
    "Array.of_list"; "Array.to_list"; "Bytes.create"; "Bytes.make";
    "String.make"; "String.sub"; "String.concat"; "Hashtbl.create";
    "Buffer.create"; "Queue.create"; "Stack.create";
  ]

(* Allocation sites on a function body: (location, what) pairs. *)
let alloc_sites vb_expr =
  let acc = ref [] in
  let add loc what = acc := (loc, what) :: !acc in
  (* [chain] is true while descending the curried [fun a -> fun b -> ...]
     head of the definition itself; the first non-function node switches
     to checking mode, and any function met after that is a closure. *)
  let chain = ref true in
  let expr it e =
    match e.exp_desc with
    | Texp_function _ when !chain -> Tast_iterator.default_iterator.expr it e
    | desc ->
        let saved = !chain in
        chain := false;
        (match desc with
        | Texp_function _ -> add e.exp_loc "closure construction (captures environment)"
        | Texp_tuple _ -> add e.exp_loc "tuple construction"
        | Texp_record _ -> add e.exp_loc "record construction"
        | Texp_array _ -> add e.exp_loc "array construction"
        | Texp_lazy _ -> add e.exp_loc "lazy block construction"
        | Texp_construct (_, cd, _) when cd.Types.cstr_arity > 0 ->
            add e.exp_loc
              (Printf.sprintf "constructor `%s` application (boxes %d argument%s)"
                 cd.Types.cstr_name cd.Types.cstr_arity
                 (if cd.Types.cstr_arity = 1 then "" else "s"))
        | Texp_apply (fn, _) -> (
            match ident_of_fn fn with
            | Some n when List.mem n allocator_fns ->
                add e.exp_loc (Printf.sprintf "call to allocator `%s`" n)
            | _ -> (
                match Types.get_desc e.exp_type with
                | Types.Tarrow _ ->
                    add e.exp_loc "partial application (allocates a closure)"
                | _ ->
                    if is_float_ty e.exp_type then
                      add e.exp_loc "boxed float result of an application"
                    else ()))
        | _ -> ());
        Tast_iterator.default_iterator.expr it e;
        chain := saved
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it vb_expr;
  List.rev !acc

(* A boundary name matches a definition's canonical dotted path either
   exactly or as a dot-delimited suffix, so the manifest can say
   [Allocator.alloc_pfn] for [Rio_iova.Allocator.alloc_pfn]. *)
let boundary_for (m : Manifest.t) (d : Callgraph.def) =
  List.find_opt
    (fun (b : Manifest.boundary) -> suffix_matches d.Callgraph.d_canon b.b_name)
    m.za_boundaries

let za_hint =
  "hoist the allocation out of the hot path (preallocate, return via \
   out-params, raise a constant exception), cut the edge with a justified \
   (boundaries ...) entry, or waive it in the manifest"

let missing_hot (h : Manifest.hot) fn =
  {
    Finding.rule = "zero-alloc";
    file = h.h_file;
    line = 1;
    col = 0;
    end_line = 1;
    end_col = 0;
    subject = fn;
    message =
      Printf.sprintf "hot entry point `%s` not found in %s (manifest out of \
                      date?)" fn h.h_file;
    hint = "fix the (hot ...) entry in lint.manifest.sexp";
    chain = [];
  }

let transitive_zero_alloc (m : Manifest.t) cg =
  let findings = ref [] in
  let hit_boundaries = ref [] in
  (* Global visited set: the first entry point (in manifest order) to
     reach a function owns its findings and witness chain, so each
     allocation site is reported exactly once. *)
  let visited = Hashtbl.create 256 in
  let rec visit (d : Callgraph.def) chain =
    if not (Hashtbl.mem visited d.Callgraph.d_id) then begin
      Hashtbl.add visited d.Callgraph.d_id ();
      List.iter
        (fun (loc, what) ->
          findings :=
            {
              (mk ~rule:"zero-alloc" ~subject:d.d_display
                 ~message:
                   (Printf.sprintf "allocation in hot function `%s`: %s"
                      d.d_display what)
                 ~hint:za_hint ~chain loc)
              with Finding.file = d.d_file;
            }
            :: !findings)
        (alloc_sites d.d_expr);
      List.iter
        (fun ((tgt : Callgraph.def), _loc) ->
          match boundary_for m tgt with
          | Some b ->
              if not (List.mem b.b_name !hit_boundaries) then
                hit_boundaries := b.b_name :: !hit_boundaries
          | None ->
              if tgt.d_is_fun && tgt.d_id <> d.Callgraph.d_id then
                visit tgt (chain @ [ tgt.d_display ]))
        (Callgraph.refs cg d)
    end
  in
  List.iter
    (fun (h : Manifest.hot) ->
      List.iter
        (fun fn ->
          match Callgraph.find cg ~file:h.h_file ~name:fn with
          | [] -> findings := missing_hot h fn :: !findings
          | ds ->
              List.iter
                (fun (d : Callgraph.def) ->
                  match boundary_for m d with
                  | Some b ->
                      if not (List.mem b.b_name !hit_boundaries) then
                        hit_boundaries := b.b_name :: !hit_boundaries
                  | None -> visit d [ d.d_display ])
                ds)
        h.h_funs)
    m.za_hot;
  (List.rev !findings, List.rev !hit_boundaries)

(* {2 Rule: interface}

   Walks the (build-tree copy of the) source dirs directly: every [.ml]
   must ship an [.mli]. Generated alias modules end in [.ml-gen] and
   are skipped. A dune-(select)ed variant [name.variant.ml] is covered
   by the base [name.mli] that dune applies to whichever variant it
   picks, so those are skipped too when the base interface exists —
   which variants sit in the build tree depends on the compiler
   version, and a per-variant waiver would go stale on the other one. *)

let selected_variant_of dir entry =
  match String.index_opt (Filename.chop_suffix entry ".ml") '.' with
  | None -> None
  | Some i ->
      let base = String.sub entry 0 i in
      let mli = Filename.concat dir (base ^ ".mli") in
      if Sys.file_exists mli then Some base else None

let interface (m : Manifest.t) ~root =
  if not m.iface_require_mli then []
  else
    let acc = ref [] in
    let rec scan rel_dir =
      let abs = Filename.concat root rel_dir in
      match Sys.readdir abs with
      | exception Sys_error _ -> ()
      | entries ->
          Array.sort String.compare entries;
          Array.iter
            (fun entry ->
              if entry <> "" && entry.[0] <> '.' then
                let rel = Filename.concat rel_dir entry in
                let abs_e = Filename.concat abs entry in
                if Sys.is_directory abs_e then scan rel
                else if
                  Filename.check_suffix entry ".ml"
                  && selected_variant_of abs entry = None
                then
                  let mli = Filename.chop_suffix abs_e ".ml" ^ ".mli" in
                  if not (Sys.file_exists mli) then
                    acc :=
                      {
                        Finding.rule = "interface";
                        file = rel;
                        line = 1;
                        col = 0;
                        end_line = 1;
                        end_col = 0;
                        chain = [];
                        subject = entry;
                        message =
                          Printf.sprintf
                            "public module `%s` has no .mli interface"
                            (Filename.chop_suffix entry ".ml");
                        hint =
                          "add one (hide representation types, document the \
                           contract) or waive with a justification";
                      }
                      :: !acc)
            entries
    in
    List.iter scan m.scan_dirs;
    !acc
