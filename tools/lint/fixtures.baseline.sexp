;; Suppression baseline for the fixture tree: proves a baselined
;; finding is reported as such (not active, not waived) and that
;; --stale-check objects once an entry stops matching.

((findings
  ((rule determinism) (file tools/lint/fixtures/det_baselined.ml)
   (subject "Sys.time"))))
