(* Minimal s-expression reader for the lint manifest.

   Deliberately dependency-free: the linter links only compiler-libs,
   so it cannot pull in sexplib. Supports atoms (bare and quoted with
   the usual escapes), lists, and [;] line comments. *)

type t = Atom of string | List of t list

exception Parse_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type state = { src : string; mutable pos : int; mutable line : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek st with Some '\n' -> st.line <- st.line + 1 | _ -> ());
  st.pos <- st.pos + 1

let rec skip_blank st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_blank st
  | Some ';' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_blank st
  | _ -> ()

let is_bare = function
  | ' ' | '\t' | '\r' | '\n' | '(' | ')' | ';' | '"' -> false
  | _ -> true

let read_quoted st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error "line %d: unterminated string" st.line
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance st;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance st;
            go ()
        | Some (('"' | '\\') as c) ->
            Buffer.add_char buf c;
            advance st;
            go ()
        | Some c -> error "line %d: bad escape '\\%c'" st.line c
        | None -> error "line %d: unterminated escape" st.line)
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents buf

let read_bare st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_bare c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  String.sub st.src start (st.pos - start)

let rec read_sexp st =
  skip_blank st;
  match peek st with
  | None -> error "line %d: unexpected end of input" st.line
  | Some '(' ->
      advance st;
      let rec items acc =
        skip_blank st;
        match peek st with
        | Some ')' ->
            advance st;
            List (List.rev acc)
        | None -> error "line %d: unterminated list" st.line
        | Some _ -> items (read_sexp st :: acc)
      in
      items []
  | Some ')' -> error "line %d: unexpected ')'" st.line
  | Some '"' -> Atom (read_quoted st)
  | Some _ -> Atom (read_bare st)

let parse_string src =
  let st = { src; pos = 0; line = 1 } in
  let rec go acc =
    skip_blank st;
    match peek st with None -> List.rev acc | Some _ -> go (read_sexp st :: acc)
  in
  go []

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))
