;; riommu-lint suppression baseline: legacy findings that predate a
;; rule (or a rule's widening) and are tolerated as-is, without the
;; endorsement a manifest waiver implies. Entries are positionless
;; (rule / file / subject prefix / optional message substring), so
;; unrelated edits don't churn them — but any NEW finding still fails
;; CI, and --stale-check fails once an entry no longer matches
;; anything, keeping the list shrink-only.
;;
;; Current debt: the online server and client read the wall clock
;; directly for latency stamps and tick pacing. Real-socket serving is
;; allowed to be nondeterministic (DESIGN.md §14), but these should
;; eventually flow through a clock capability so replay harnesses can
;; substitute one.

((findings
  ((rule determinism) (file bin/riommu_serve.ml)
   (subject "Unix.gettimeofday"))
  ((rule determinism) (file bin/riommu_client.ml)
   (subject "Unix.gettimeofday"))))
