(* Seeded determinism violations: every function here must be flagged
   by the [determinism] rule (see ../lint.t). *)

let roll bound = Random.int bound
let wall_clock () = Sys.time ()
let stamp () = Unix.gettimeofday ()
let weigh v = Hashtbl.hash v

let make_table () : (string, int) Hashtbl.t = Hashtbl.create ~random:true 16
