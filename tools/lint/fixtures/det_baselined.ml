(* Baseline fixture: a legacy determinism finding suppressed by
   fixtures.baseline.sexp rather than endorsed by a manifest waiver. *)

let stamp () = Sys.time ()
