(* Seeded violation: determinism, suppressed via the baseline. *)

val stamp : unit -> float
