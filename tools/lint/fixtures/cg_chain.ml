(* Call-graph fixture: only the leaf allocates, two calls below the hot
   entry point, so flagging it requires the transitive closure; the
   deliberate allocation in [cold_path] is cut by a justified boundary
   in fixtures.manifest.sexp. *)

let leaf n = Bytes.create n
let mid n = Bytes.length (leaf n)
let cold_path n = Array.make n 0
let top n = mid n + Array.length (cold_path n)
