(* Seeded violation: transitive zero-alloc (see cg_chain.ml). *)

val leaf : int -> bytes
val mid : int -> int
val cold_path : int -> int array
val top : int -> int
