(* Constructs the domain-safety rule must NOT flag: immutable toplevel
   values, state wrapped in the sanctioned Exec.Memo, and mutable state
   created inside functions (per-call, never shared). *)

type totals = { label : string; count : int }

let zero = { label = "zero"; count = 0 }
let names = [ "a"; "b"; "c" ]
let memo : (int, int) Rio_exec.Memo.t = Rio_exec.Memo.create ()
let cached_square n = Rio_exec.Memo.find_or_add memo n (fun () -> n * n)

let histogram xs =
  let h = Hashtbl.create 8 in
  List.iter
    (fun x ->
      Hashtbl.replace h x (1 + Option.value ~default:0 (Hashtbl.find_opt h x)))
    xs;
  h
