(** Seeded domain-safety violations for the lint cram test. *)

val counter : int ref
val table : (string, int) Hashtbl.t
val scratch : Buffer.t

type cursor = { mutable pos : int }

val shared_cursor : cursor
val weights : int array
val squares : int list lazy_t
val bump : unit -> int
