(** Seeded zero-alloc violations for the lint cram test. *)

type point = { x : int; y : int }

val add3 : int -> int -> int -> int
val hot_pair : 'a -> 'b -> 'a * 'b
val hot_closure : int list -> int -> int list
val hot_partial : unit -> int -> int
val hot_cons : 'a -> 'a list -> 'a list
val hot_array : int -> int array
val hot_float : float -> float -> float
val hot_record : int -> int -> point
