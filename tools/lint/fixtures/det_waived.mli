(** Waived determinism violation for the lint cram test. *)

val jitter : unit -> float
