(** Allocation-free hot function: the zero-alloc rule must stay silent. *)

val hot_mask : int -> int -> int
