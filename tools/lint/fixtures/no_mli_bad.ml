(* Deliberately ships without an .mli: the interface rule must flag
   exactly this module. *)

let answer = 42
