(* Seeded zero-alloc violations. Each [hot_*] function is listed in the
   fixture manifest's hot set and allocates in a different way the
   typed tree makes visible. *)

type point = { x : int; y : int }

let add3 a b c = a + b + c
let hot_pair a b = (a, b)
let hot_closure xs k = List.map (fun x -> x + k) xs
let hot_partial () = add3 1 2
let hot_cons x xs = x :: xs
let hot_array n = Array.make n 0
let hot_float a b = (a *. b) +. 1.0
let hot_record a b = { x = a; y = b }
