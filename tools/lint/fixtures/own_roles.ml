(* Ownership fixture: [shared_cursor] is reachable from both the
   io-domain root and the executor root; [guarded] goes through a
   sanctioned constructor; [spawn_leak] hands a closure capturing the
   shared location to a spawner. [Pool.run] stands in for Domain.spawn
   so the fixture typechecks on every CI compiler (4.14 has no
   Domain). *)

module Pool = struct
  let run f = f ()
end

let shared_cursor = ref 0
let guarded = Atomic.make 0

let io_entry () =
  shared_cursor := !shared_cursor + 1;
  Atomic.incr guarded

let exec_entry () = shared_cursor := !shared_cursor + 2
let spawn_leak () = Pool.run (fun () -> shared_cursor := 0)
