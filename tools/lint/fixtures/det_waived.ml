(* Same violation class as Det_bad, but covered by a manifest waiver:
   the cram test asserts this file produces no active finding while the
   identical construct in det_bad.ml does. *)

let jitter () = Random.float 1.0
