(* Seeded violation: zero-alloc through a functor instantiation. *)

module type S = sig
  val step : int -> int
end

module Impl : S

module F (P : S) : sig
  val drive : int -> int
end

module M : sig
  val drive : int -> int
end

val entry : int -> int
