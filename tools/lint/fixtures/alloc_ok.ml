(* A hot function that is genuinely allocation-free: listed in the
   fixture manifest's hot set, must produce no finding. *)

let hot_mask x m = x land (m lor 1)
