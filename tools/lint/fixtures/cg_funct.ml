(* Functor fixture: the allocation sits in the functor argument's
   [step]. Reaching it from [entry] exercises the local-alias table
   ([M] routes into [F]'s body) and the manifest's
   (callgraph (aliases ...)) hint for the parameter [P]. *)

module type S = sig
  val step : int -> int
end

module Impl = struct
  let step n = Bytes.length (Bytes.create n)
end

module F (P : S) = struct
  let drive n = P.step (n + 1)
end

module M = F (Impl)

let entry n = M.drive n
