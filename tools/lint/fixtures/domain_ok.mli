(** Constructs the domain-safety rule must not flag. *)

type totals = { label : string; count : int }

val zero : totals
val names : string list
val memo : (int, int) Rio_exec.Memo.t
val cached_square : int -> int
val histogram : int list -> (int, int) Hashtbl.t
