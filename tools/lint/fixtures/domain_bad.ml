(* Seeded domain-safety violations: module-level mutable state a pool
   worker could reach as an unsynchronized shared global. *)

let counter = ref 0
let table : (string, int) Hashtbl.t = Hashtbl.create 16
let scratch = Buffer.create 64

type cursor = { mutable pos : int }

let shared_cursor = { pos = 0 }
let weights = [| 1; 2; 4; 8 |]
let squares = lazy (List.init 8 (fun i -> i * i))

let bump () =
  incr counter;
  !counter
