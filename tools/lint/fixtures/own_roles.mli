(* Seeded violations: ownership (two-role reach + spawner escape). *)

module Pool : sig
  val run : (unit -> unit) -> unit
end

val shared_cursor : int ref
val guarded : int Atomic.t
val io_entry : unit -> unit
val exec_entry : unit -> unit
val spawn_leak : unit -> unit
