(** Seeded determinism violations for the lint cram test. *)

val roll : int -> int
val wall_clock : unit -> float
val stamp : unit -> float
val weigh : 'a -> int
val make_table : unit -> (string, int) Hashtbl.t
