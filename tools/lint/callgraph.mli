(** Whole-program call graph over the scanned [.cmt] typed trees.

    Nodes are toplevel (or submodule/functor-level) value bindings;
    edges are resolved identifier references inside a binding's body.
    Resolution handles, in order: same-unit references (matched by
    [Ident] stamp, so local shadowing cannot mislink), file-level module
    aliases ([module I_driver = Rio_iommu.Driver]), functor
    instantiations ([module M = Magazine.Make (...)] routes [M.f] to the
    functor body), dune-wrapped library paths ([Rio_iova.Rbtree.lo] and
    [Rio_iova__Rbtree.lo]), same-unit submodule paths, and finally the
    manifest's [(callgraph (aliases ...))] hints for functor parameters
    and first-class modules the typed tree cannot resolve statically.

    Known imprecision (DESIGN.md §16): indirect calls through closures
    stored in data structures are not edges, and every instantiation of
    a functor shares the same body node. *)

type def = {
  d_id : int;
  d_unit : string;  (** dotted unit path, e.g. ["Rio_iommu.Driver"] *)
  d_file : string;  (** canonical source path *)
  d_qual : string;  (** submodule-qualified name, e.g. ["Make.alloc_pfn"] *)
  d_name : string;  (** bare binding name *)
  d_display : string;  (** e.g. ["Driver.map_exn"], ["Magazine.Make.alloc_pfn"] *)
  d_canon : string;  (** e.g. ["Rio_iommu.Driver.map_exn"], for boundary matching *)
  d_loc : Location.t;
  d_expr : Typedtree.expression;
  d_is_fun : bool;  (** body is a function literal (audited transitively) *)
}

type t

val create : Manifest.t -> (string * string * Typedtree.structure) list -> t
(** [create m units] indexes [(cmt_modname, source_file, structure)]
    triples. Deterministic for a given input order. *)

val defs : t -> def list
(** All definitions, in (file, location) order. *)

val find : t -> file:string -> name:string -> def list
(** Definitions with bare name [name] in the unit compiled from [file]
    (manifest entry-point lookup). *)

val refs : t -> def -> (def * Location.t) list
(** Resolved references inside [def]'s body, deduplicated per callee
    (first occurrence wins), in traversal order. Includes references to
    non-function definitions (data: the ownership rule's inventory). *)

val refs_in : t -> def -> Typedtree.expression -> (def * Location.t) list
(** Same, for an arbitrary subexpression of [def]'s unit (used for the
    ownership rule's spawned-closure escape check). *)
