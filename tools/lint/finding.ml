type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  subject : string;
  message : string;
  hint : string;
}

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let of_loc ~rule ~subject ~message ~hint (loc : Location.t) =
  let p = loc.loc_start in
  {
    rule;
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    subject;
    message;
    hint;
  }

let waived (m : Manifest.t) f =
  List.find_opt
    (fun (w : Manifest.waiver) ->
      w.w_rule = f.rule && w.w_file = f.file
      && match w.w_ident with
         | None -> true
         | Some id ->
             String.length f.subject >= String.length id
             && String.sub f.subject 0 (String.length id) = id)
    m.waivers

let print oc f =
  Printf.fprintf oc "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message;
  if f.hint <> "" then Printf.fprintf oc "\n  hint: %s" f.hint;
  output_char oc '\n'
