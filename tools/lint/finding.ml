type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  end_line : int;
  end_col : int;
  subject : string;
  message : string;
  hint : string;
  chain : string list;
}

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let of_loc ~rule ~subject ~message ~hint ?(chain = []) (loc : Location.t) =
  let s = loc.loc_start and e = loc.loc_end in
  let line = s.pos_lnum and col = s.pos_cnum - s.pos_bol in
  (* Ghost or synthesized locations can carry an end before their start;
     collapse those to a point so the printed span stays meaningful. *)
  let end_line, end_col =
    let el = e.pos_lnum and ec = e.pos_cnum - e.pos_bol in
    if el > line || (el = line && ec > col) then (el, ec) else (line, col)
  in
  { rule; file = s.pos_fname; line; col; end_line; end_col; subject; message; hint; chain }

let waived (m : Manifest.t) f =
  List.find_opt
    (fun (w : Manifest.waiver) ->
      w.w_rule = f.rule && w.w_file = f.file
      && match w.w_ident with
         | None -> true
         | Some id ->
             String.length f.subject >= String.length id
             && String.sub f.subject 0 (String.length id) = id)
    m.waivers

let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

let baselined entries f =
  List.find_opt
    (fun (b : Manifest.baseline_entry) ->
      b.bl_rule = f.rule && b.bl_file = f.file
      && String.length f.subject >= String.length b.bl_subject
      && String.sub f.subject 0 (String.length b.bl_subject) = b.bl_subject
      && match b.bl_msg with None -> true | Some m -> contains ~sub:m f.message)
    entries

(* [file:12:4-19] for a one-line span, [file:12:4-14:2] across lines,
   [file:12:4] when the typed tree gave no usable end position. *)
let pp_span oc f =
  Printf.fprintf oc "%s:%d:%d" f.file f.line f.col;
  if f.end_line > f.line then Printf.fprintf oc "-%d:%d" f.end_line f.end_col
  else if f.end_col > f.col then Printf.fprintf oc "-%d" f.end_col

let print oc f =
  pp_span oc f;
  Printf.fprintf oc ": [%s] %s" f.rule f.message;
  if f.hint <> "" then Printf.fprintf oc "\n  hint: %s" f.hint;
  (match f.chain with
  | [] | [ _ ] -> ()
  | chain -> Printf.fprintf oc "\n  via: %s" (String.concat " -> " chain));
  output_char oc '\n'

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_json oc ~status f =
  Printf.fprintf oc
    "{ \"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \
     \"end_line\": %d, \"end_col\": %d, \"subject\": \"%s\", \"message\": \
     \"%s\", \"status\": \"%s\", \"chain\": [%s] }"
    (json_escape f.rule) (json_escape f.file) f.line f.col f.end_line f.end_col
    (json_escape f.subject) (json_escape f.message) (json_escape status)
    (String.concat ", "
       (List.map (fun c -> "\"" ^ json_escape c ^ "\"") f.chain))
