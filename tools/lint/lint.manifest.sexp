;; riommu-lint rule manifest — the checked form of the conventions the
;; simulator's methodology depends on (DESIGN.md §11):
;;
;;   determinism    cells reachable from Exp.plan draw randomness and
;;                  time only through Splittable_rng / Sim.Rng / Cycles,
;;                  so --jobs N stays byte-identical (§10 contract)
;;   domain-safety  code linked into Exec.Pool consumers keeps no
;;                  unsynchronized module-level mutable state
;;   zero-alloc     the §9 hot paths stay visibly allocation-free in
;;                  the typed tree (complements the runtime words/op
;;                  gate in bench/compare.ml)
;;   interface      every public library module ships an .mli
;;
;; Every waiver needs a justification string; `dune build @lint` fails
;; on any unwaived finding.

((scan-dirs (lib))

 (determinism
  (forbidden
   ((prefix "Random.")
    (hint "derive a stream with Splittable_rng/Seeds (DESIGN.md §10); ambient Random breaks cell-order independence"))
   ((prefix "Sys.time")
    (hint "wall-clock in a deterministic cell; charge simulated Cycles instead"))
   ((prefix "Unix.gettimeofday")
    (hint "wall-clock in a deterministic cell; charge simulated Cycles instead"))
   ((prefix "Unix.time")
    (hint "wall-clock in a deterministic cell; charge simulated Cycles instead"))
   ((prefix "Hashtbl.hash")
    (hint "polymorphic hashing of cyclic/functional values is representation-dependent; key on an explicit int"))
   ((prefix "Hashtbl.seeded_hash")
    (hint "seeded hashing makes iteration order run-dependent"))
   ((prefix "Hashtbl.randomize")
    (hint "randomized hashing makes iteration order run-dependent"))
   ((prefix "Domain.self")
    (hint "worker identity leaks scheduling into cell results"))))

 (domain-safety
  (mutable-constructors
   (ref Hashtbl.create Buffer.create Queue.create Stack.create
    Array.make Array.init Array.make_matrix Bytes.create Bytes.make
    Weak.create))
  (sanctioned
   (Memo.create Memo.once Lock.create Atomic.make)))

 (zero-alloc
  (hot
   ((file lib/iotlb/iotlb.ml) (functions (find_exn)))
   ((file lib/sim/event_queue.ml) (functions (push pop_exn next_time)))
   ((file lib/iova/magazine.ml)
    (functions (mag_pop mag_push take_pfn alloc_pfn find_exn free)))
   ((file lib/iova/linux_allocator.ml) (functions (find_exn)))
   ((file lib/iova/fast_allocator.ml) (functions (find_exn)))
   ((file lib/memory/coherency.ml) (functions (cpu_write sync_mem flush_line)))
   ((file lib/pagetable/arena.ml) (functions (map_exn unmap_exn walk)))
   ((file lib/iommu/driver.ml) (functions (map_exn unmap_exn)))
   ((file lib/iommu/hw.ml) (functions (translate_exn)))
   ((file lib/protect/dma_api.ml) (functions (map_exn unmap_exn translate_exn)))
   ((file lib/domain/shared_iotlb.ml) (functions (find_exn)))
   ((file lib/domain/manager.ml)
    (functions (translate_exn map_sg_exn unmap_sg_exn)))
   ((file lib/serve/histogram.ml) (functions (bucket_of record)))
   ((file lib/serve/shard.ml) (functions (next_buf translate_record)))
   ((file lib/serve/net/wire.ml)
    (functions (decode_request decode_response encode_map encode_unmap
                encode_map_sg encode_translate encode_stats encode_map_ok
                encode_unmap_ok encode_translate_ok encode_map_sg_ok
                encode_stats_ok encode_error)))
   ((file lib/serve/net/conn.ml)
    (functions (next reserve commit completed consumed can_admit)))
   ((file lib/serve/net/dispatch.ml)
    (functions (enqueue reject exec_translate complete)))
   ((file lib/serve/net/spsc.ml) (functions (try_push try_pop)))
   ((file lib/serve/net/readiness_poll.ml) (functions (wait iter_ready)))
   ((file lib/serve/net/executor.ml) (functions (exec_translate push_rsp)))))

 (interface
  (require-mli true))

 (waivers
  ((rule interface) (file lib/exec/backend.domains.ml)
    (justification "dune-(select)ed implementation; the shared contract is backend.mli, which dune applies to whichever backend is chosen, so a per-variant .mli would be redundant and could drift"))
  ((rule interface) (file lib/exec/backend.seq.ml)
    (justification "dune-(select)ed implementation; the shared contract is backend.mli, which dune applies to whichever backend is chosen, so a per-variant .mli would be redundant and could drift"))
  ((rule interface) (file lib/serve/net/readiness_poll.avail.ml)
    (justification "dune-(select)ed implementation; the shared contract is readiness_poll.mli, which dune applies to whichever variant is chosen, so a per-variant .mli would be redundant and could drift"))
  ((rule interface) (file lib/serve/net/readiness_poll.none.ml)
    (justification "dune-(select)ed implementation; the shared contract is readiness_poll.mli, which dune applies to whichever variant is chosen, so a per-variant .mli would be redundant and could drift"))))
