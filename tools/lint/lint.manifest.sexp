;; riommu-lint rule manifest — the checked form of the conventions the
;; simulator's methodology depends on (DESIGN.md §11/§16):
;;
;;   determinism    cells reachable from Exp.plan draw randomness and
;;                  time only through Splittable_rng / Sim.Rng / Cycles,
;;                  so --jobs N stays byte-identical (§10 contract)
;;   domain-safety  code linked into Exec.Pool consumers keeps no
;;                  unsynchronized module-level mutable state
;;   zero-alloc     the §9 hot paths stay visibly allocation-free in
;;                  the typed tree, *transitively*: each (hot ...) entry
;;                  is an entry point and its whole reachable closure
;;                  over the call graph is audited; justified
;;                  (boundaries ...) cut deliberate cold-path edges
;;   ownership      no unguarded toplevel mutable location is reachable
;;                  from two domain roles (io-domain / executor /
;;                  any-domain), and closures handed to a spawner do
;;                  not capture such a location
;;   interface      every public library module ships an .mli
;;
;; Every waiver needs a justification string; `dune build @lint` fails
;; on any unwaived finding and (via --stale-check) on any waiver,
;; baseline entry or boundary that no longer fires.

((scan-dirs (lib bin))

 (determinism
  (forbidden
   ((prefix "Random.")
    (hint "derive a stream with Splittable_rng/Seeds (DESIGN.md §10); ambient Random breaks cell-order independence"))
   ((prefix "Sys.time")
    (hint "wall-clock in a deterministic cell; charge simulated Cycles instead"))
   ((prefix "Unix.gettimeofday")
    (hint "wall-clock in a deterministic cell; charge simulated Cycles instead"))
   ((prefix "Unix.time")
    (hint "wall-clock in a deterministic cell; charge simulated Cycles instead"))
   ((prefix "Hashtbl.hash")
    (hint "polymorphic hashing of cyclic/functional values is representation-dependent; key on an explicit int"))
   ((prefix "Hashtbl.seeded_hash")
    (hint "seeded hashing makes iteration order run-dependent"))
   ((prefix "Hashtbl.randomize")
    (hint "randomized hashing makes iteration order run-dependent"))
   ((prefix "Domain.self")
    (hint "worker identity leaks scheduling into cell results"))))

 (domain-safety
  (mutable-constructors
   (ref Hashtbl.create Buffer.create Queue.create Stack.create
    Array.make Array.init Array.make_matrix Bytes.create Bytes.make
    Weak.create))
  (sanctioned
   (Memo.create Memo.once Lock.create Atomic.make)))

 (callgraph
  (aliases
   ;; Magazine.Make's functor parameter: the only instantiation binds
   ;; the tree-backed allocator, so calls through Base resolve there.
   ((file lib/iova/magazine.ml) (module Base)
    (targets (Rio_iova.Allocator)))))

 ;; One entry point set per bench-gated group (bench/main.ml
 ;; gated_groups); everything they reach is audited transitively, so
 ;; callees are no longer hand-listed here.
 (zero-alloc
  (hot
   ;; iotlb-lookup
   ((file lib/iotlb/iotlb.ml) (functions (find_exn)))
   ;; event-queue
   ((file lib/sim/event_queue.ml) (functions (push pop_exn next_time)))
   ;; map / unmap (driver level)
   ((file lib/iommu/driver.ml) (functions (map_exn unmap_exn)))
   ;; translate (hw walk level)
   ((file lib/iommu/hw.ml) (functions (translate_exn)))
   ;; map / unmap / translate (public DMA API level)
   ((file lib/protect/dma_api.ml) (functions (map_exn unmap_exn translate_exn)))
   ;; cache-coherency model shared by map/translate
   ((file lib/memory/coherency.ml) (functions (cpu_write sync_mem flush_line)))
   ;; map_sg + serve-translate (per-tenant manager, executor side)
   ((file lib/domain/manager.ml)
    (functions (translate_exn map_sg_exn unmap_sg_exn)) (role executor))
   ;; histogram-record
   ((file lib/serve/histogram.ml) (functions (record)) (role executor))
   ;; serve-translate (shard loop, executor side)
   ((file lib/serve/shard.ml) (functions (translate_record)) (role executor))
   ;; wire-codec (socket framing, io side)
   ((file lib/serve/net/wire.ml)
    (functions (decode_request decode_response encode_map encode_unmap
                encode_map_sg encode_translate encode_stats encode_map_ok
                encode_unmap_ok encode_translate_ok encode_map_sg_ok
                encode_stats_ok encode_error))
    (role io-domain))
   ;; dispatch-translate (connection rings, io side)
   ((file lib/serve/net/conn.ml)
    (functions (next reserve commit completed consumed can_admit))
    (role io-domain))
   ((file lib/serve/net/dispatch.ml)
    (functions (enqueue reject complete)) (role io-domain))
   ((file lib/serve/net/dispatch.ml)
    (functions (exec_translate)) (role executor))
   ;; spsc-ring (both sides touch it by design)
   ((file lib/serve/net/spsc.ml) (functions (try_push try_pop)))
   ;; readiness-wait
   ((file lib/serve/net/readiness_poll.ml) (functions (wait iter_ready))
    (role io-domain))
   ;; executor drain loop
   ((file lib/serve/net/executor.ml) (functions (exec_translate push_rsp))
    (role executor)))

  ;; Justified closure cuts: deliberate cold-path allocations behind a
  ;; hot entry point. Each must still be reached by some hot edge or
  ;; --stale-check fails.
  (boundaries
   ((name Rio_iova.Allocator.alloc_pfn)
    (justification "tree-backed refill path: allocates rbtree nodes by design; the magazine front-end absorbs it and the words/op gate in bench/compare.ml bounds the steady state"))
   ((name Rio_iova.Allocator.free)
    (justification "tree-backed spill path: frees into the rbtree, allocating nodes by design; amortized behind the magazine and bounded by the words/op gate"))
   ((name Rio_iova.Magazine.Make.fresh_mag)
    (justification "cold magazine construction on depot miss; one array per magazine swap, bounded by the words/op gate"))
   ((name Rio_domain.Shared_iotlb.freeze)
    (justification "epoch freeze: rebuilds the read-only shared partition on version mismatch; amortized over the epoch, not per-translate"))
   ((name Rio_domain.Shared_iotlb.flush_domain)
    (justification "unmap-side invalidation sweep builds the victim list; batched per unmap_sg and bounded by the words/op gate"))
   ((name Rio_sim.Event_queue.pool_grow)
    (justification "geometric event-pool growth; amortized O(1) per push and absent at steady state"))
   ((name Rio_sim.Event_queue.heap_grow)
    (justification "geometric heap growth; amortized O(1) per push and absent at steady state"))
   ((name Rio_pagetable.Arena.grow)
    (justification "arena growth doubles the node store; amortized across maps and absent once the table reaches its working-set size"))
   ((name Rio_memory.Coherency.rehash)
    (justification "open-addressing rehash on load-factor breach; amortized and absent at steady state"))
   ((name Rio_iommu.Driver.defer_release)
    (justification "deferred-invalidation node per unmap is the rIOMMU batching design (PAPER.md, DESIGN.md 5); flush cost is amortized across the ring and bounded by the words/op gate"))))

 (ownership
  (roots
   ((file lib/serve/net/netloop.ml) (functions (serve)) (role io-domain))
   ((file lib/serve/net/executor.ml) (functions (run)) (role executor)))
  (sanctioned
   (Atomic.make Lock.create Memo.create Memo.once Spsc.create))
  (spawners
   (Domain.spawn Domains.spawn Pool.run)))

 (interface
  (require-mli true))

 (waivers
  ((rule zero-alloc) (file lib/domain/shared_iotlb.ml)
    (ident "Shared_iotlb.insert")
    (justification "fill path boxes one optional payload per IOTLB insert; insert rate equals the miss rate, which the hit-ratio and words/op gates already bound"))
  ((rule zero-alloc) (file lib/memory/frame_allocator.ml)
    (ident "Frame_allocator.alloc")
    (justification "option-returning probe shared with the fallible API; the Some box per fresh frame is part of map's node-construction cost, bounded by the words/op gate"))))
