(* The committed rule set: what to scan, what each rule forbids or
   requires, and the waivers that silence individual findings with a
   recorded justification. See DESIGN.md §11 for the schema. *)

type forbidden = { prefix : string; hint : string }
type hot = { h_file : string; h_funs : string list }

type waiver = {
  w_rule : string;
  w_file : string;
  w_ident : string option;  (* prefix match on the finding subject *)
  w_just : string;
}

type t = {
  scan_dirs : string list;
  det_forbidden : forbidden list;
  ds_mutable : string list;
  ds_sanctioned : string list;
  za_hot : hot list;
  iface_require_mli : bool;
  waivers : waiver list;
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

let atom = function
  | Lsexp.Atom a -> a
  | Lsexp.List _ -> invalid "expected an atom, found a list"

let atoms = function
  | Lsexp.List l -> List.map atom l
  | Lsexp.Atom a -> invalid "expected a list, found atom %S" a

(* Sections and fields are (key value...) pairs inside a list. *)
let field key items =
  List.find_map
    (function
      | Lsexp.List (Lsexp.Atom k :: rest) when k = key -> Some rest
      | _ -> None)
    items

let field1 key items =
  match field key items with
  | Some [ v ] -> Some v
  | Some _ -> invalid "field %S expects exactly one value" key
  | None -> None

let req1 key items =
  match field1 key items with
  | Some v -> v
  | None -> invalid "missing required field %S" key

let parse_forbidden = function
  | Lsexp.List items ->
      {
        prefix = atom (req1 "prefix" items);
        hint = (match field1 "hint" items with Some h -> atom h | None -> "");
      }
  | Lsexp.Atom a -> { prefix = a; hint = "" }

let parse_hot = function
  | Lsexp.List items ->
      {
        h_file = atom (req1 "file" items);
        h_funs =
          (match field "functions" items with
          | Some [ l ] -> atoms l
          | Some _ | None -> invalid "hot entry needs (functions (...))");
      }
  | Lsexp.Atom a -> invalid "hot entry must be a list, found %S" a

let parse_waiver = function
  | Lsexp.List items ->
      let just =
        match field1 "justification" items with
        | Some j -> atom j
        | None -> invalid "waiver without a (justification \"...\")"
      in
      if String.trim just = "" then invalid "waiver justification must be non-empty";
      {
        w_rule = atom (req1 "rule" items);
        w_file = atom (req1 "file" items);
        w_ident = Option.map atom (field1 "ident" items);
        w_just = just;
      }
  | Lsexp.Atom a -> invalid "waiver must be a list, found %S" a

let load path =
  let items =
    match Lsexp.parse_file path with
    | [ Lsexp.List items ] -> items
    | _ -> invalid "%s: manifest must be a single toplevel list" path
    | exception Lsexp.Parse_error m -> invalid "%s: %s" path m
    | exception Sys_error m -> invalid "%s" m
  in
  let section key = match field key items with Some s -> s | None -> [] in
  let det = section "determinism" in
  let ds = section "domain-safety" in
  let za = section "zero-alloc" in
  let iface = section "interface" in
  {
    scan_dirs =
      (match field "scan-dirs" items with
      | Some [ l ] -> atoms l
      | Some _ | None -> invalid "manifest needs (scan-dirs (...))");
    det_forbidden =
      (match field "forbidden" det with
      | Some l -> List.map parse_forbidden l
      | None -> []);
    ds_mutable =
      (match field "mutable-constructors" ds with
      | Some [ l ] -> atoms l
      | Some _ -> invalid "(mutable-constructors ...) expects one list"
      | None -> []);
    ds_sanctioned =
      (match field "sanctioned" ds with
      | Some [ l ] -> atoms l
      | Some _ -> invalid "(sanctioned ...) expects one list"
      | None -> []);
    za_hot =
      (match field "hot" za with Some l -> List.map parse_hot l | None -> []);
    iface_require_mli =
      (match field1 "require-mli" iface with
      | Some v -> atom v = "true"
      | None -> false);
    waivers =
      (match field "waivers" items with
      | Some l -> List.map parse_waiver l
      | None -> []);
  }
