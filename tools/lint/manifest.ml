(* The committed rule set: what to scan, what each rule forbids or
   requires, the call-graph resolution hints, and the waivers that
   silence individual findings with a recorded justification. See
   DESIGN.md §11/§16 for the schema. *)

type forbidden = { prefix : string; hint : string }
type hot = { h_file : string; h_funs : string list; h_role : string }
type boundary = { b_name : string; b_just : string }
type cg_alias = { a_file : string; a_module : string; a_targets : string list }
type root = { r_file : string; r_funs : string list; r_role : string }

type waiver = {
  w_rule : string;
  w_file : string;
  w_ident : string option;  (* prefix match on the finding subject *)
  w_just : string;
}

type t = {
  scan_dirs : string list;
  det_forbidden : forbidden list;
  ds_mutable : string list;
  ds_sanctioned : string list;
  cg_aliases : cg_alias list;
  za_hot : hot list;
  za_boundaries : boundary list;
  own_roots : root list;
  own_sanctioned : string list;
  own_spawners : string list;
  iface_require_mli : bool;
  waivers : waiver list;
}

type baseline_entry = {
  bl_rule : string;
  bl_file : string;
  bl_subject : string;
  bl_msg : string option;
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

let atom = function
  | Lsexp.Atom a -> a
  | Lsexp.List _ -> invalid "expected an atom, found a list"

let atoms = function
  | Lsexp.List l -> List.map atom l
  | Lsexp.Atom a -> invalid "expected a list, found atom %S" a

(* Sections and fields are (key value...) pairs inside a list. *)
let field key items =
  List.find_map
    (function
      | Lsexp.List (Lsexp.Atom k :: rest) when k = key -> Some rest
      | _ -> None)
    items

let field1 key items =
  match field key items with
  | Some [ v ] -> Some v
  | Some _ -> invalid "field %S expects exactly one value" key
  | None -> None

let req1 key items =
  match field1 key items with
  | Some v -> v
  | None -> invalid "missing required field %S" key

let parse_forbidden = function
  | Lsexp.List items ->
      {
        prefix = atom (req1 "prefix" items);
        hint = (match field1 "hint" items with Some h -> atom h | None -> "");
      }
  | Lsexp.Atom a -> { prefix = a; hint = "" }

let roles = [ "io-domain"; "executor"; "any-domain" ]

let parse_role items =
  match field1 "role" items with
  | None -> "any-domain"
  | Some r ->
      let r = atom r in
      if not (List.mem r roles) then
        invalid "unknown role %S (expected %s)" r (String.concat " | " roles);
      r

let parse_entry ~what = function
  | Lsexp.List items ->
      ( atom (req1 "file" items),
        (match field "functions" items with
        | Some [ l ] -> atoms l
        | Some _ | None -> invalid "%s entry needs (functions (...))" what),
        parse_role items )
  | Lsexp.Atom a -> invalid "%s entry must be a list, found %S" what a

let parse_boundary = function
  | Lsexp.List items ->
      let just =
        match field1 "justification" items with
        | Some j -> atom j
        | None -> invalid "boundary without a (justification \"...\")"
      in
      if String.trim just = "" then
        invalid "boundary justification must be non-empty";
      { b_name = atom (req1 "name" items); b_just = just }
  | Lsexp.Atom a -> invalid "boundary must be a list, found %S" a

let parse_alias = function
  | Lsexp.List items ->
      {
        a_file = atom (req1 "file" items);
        a_module = atom (req1 "module" items);
        a_targets =
          (match field "targets" items with
          | Some [ l ] -> atoms l
          | Some _ | None -> invalid "callgraph alias needs (targets (...))");
      }
  | Lsexp.Atom a -> invalid "callgraph alias must be a list, found %S" a

let parse_waiver = function
  | Lsexp.List items ->
      let just =
        match field1 "justification" items with
        | Some j -> atom j
        | None -> invalid "waiver without a (justification \"...\")"
      in
      if String.trim just = "" then invalid "waiver justification must be non-empty";
      {
        w_rule = atom (req1 "rule" items);
        w_file = atom (req1 "file" items);
        w_ident = Option.map atom (field1 "ident" items);
        w_just = just;
      }
  | Lsexp.Atom a -> invalid "waiver must be a list, found %S" a

(* Duplicate entries for the same (file, function) or rule pair are a
   manifest bug — the first one silently winning is exactly how a gate
   rots — so they are rejected with the colliding key named. *)
let check_dups ~what keys =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun key ->
      if Hashtbl.mem seen key then
        invalid "duplicate %s entry for %s (merge the entries)" what key;
      Hashtbl.add seen key ())
    keys

let load path =
  let items =
    match Lsexp.parse_file path with
    | [ Lsexp.List items ] -> items
    | _ -> invalid "%s: manifest must be a single toplevel list" path
    | exception Lsexp.Parse_error m -> invalid "%s: %s" path m
    | exception Sys_error m -> invalid "%s" m
  in
  let section key = match field key items with Some s -> s | None -> [] in
  let det = section "determinism" in
  let ds = section "domain-safety" in
  let cg = section "callgraph" in
  let za = section "zero-alloc" in
  let own = section "ownership" in
  let iface = section "interface" in
  let m =
    {
      scan_dirs =
        (match field "scan-dirs" items with
        | Some [ l ] -> atoms l
        | Some _ | None -> invalid "manifest needs (scan-dirs (...))");
      det_forbidden =
        (match field "forbidden" det with
        | Some l -> List.map parse_forbidden l
        | None -> []);
      ds_mutable =
        (match field "mutable-constructors" ds with
        | Some [ l ] -> atoms l
        | Some _ -> invalid "(mutable-constructors ...) expects one list"
        | None -> []);
      ds_sanctioned =
        (match field "sanctioned" ds with
        | Some [ l ] -> atoms l
        | Some _ -> invalid "(sanctioned ...) expects one list"
        | None -> []);
      cg_aliases =
        (match field "aliases" cg with
        | Some l -> List.map parse_alias l
        | None -> []);
      za_hot =
        (match field "hot" za with
        | Some l ->
            List.map
              (fun s ->
                let h_file, h_funs, h_role = parse_entry ~what:"hot" s in
                { h_file; h_funs; h_role })
              l
        | None -> []);
      za_boundaries =
        (match field "boundaries" za with
        | Some l -> List.map parse_boundary l
        | None -> []);
      own_roots =
        (match field "roots" own with
        | Some l ->
            List.map
              (fun s ->
                let r_file, r_funs, r_role = parse_entry ~what:"root" s in
                { r_file; r_funs; r_role })
              l
        | None -> []);
      own_sanctioned =
        (match field "sanctioned" own with
        | Some [ l ] -> atoms l
        | Some _ -> invalid "ownership (sanctioned ...) expects one list"
        | None -> []);
      own_spawners =
        (match field "spawners" own with
        | Some [ l ] -> atoms l
        | Some _ -> invalid "(spawners ...) expects one list"
        | None -> []);
      iface_require_mli =
        (match field1 "require-mli" iface with
        | Some v -> atom v = "true"
        | None -> false);
      waivers =
        (match field "waivers" items with
        | Some l -> List.map parse_waiver l
        | None -> []);
    }
  in
  check_dups ~what:"zero-alloc hot"
    (List.concat_map
       (fun h -> List.map (fun f -> h.h_file ^ " function " ^ f) h.h_funs)
       m.za_hot);
  check_dups ~what:"zero-alloc boundary"
    (List.map (fun b -> b.b_name) m.za_boundaries);
  check_dups ~what:"ownership root"
    (List.concat_map
       (fun r -> List.map (fun f -> r.r_file ^ " function " ^ f) r.r_funs)
       m.own_roots);
  check_dups ~what:"callgraph alias"
    (List.map (fun a -> a.a_file ^ " module " ^ a.a_module) m.cg_aliases);
  check_dups ~what:"waiver"
    (List.map
       (fun w ->
         Printf.sprintf "rule %s file %s%s" w.w_rule w.w_file
           (match w.w_ident with None -> "" | Some i -> " ident " ^ i))
       m.waivers);
  m

let parse_baseline_entry = function
  | Lsexp.List items ->
      {
        bl_rule = atom (req1 "rule" items);
        bl_file = atom (req1 "file" items);
        bl_subject = atom (req1 "subject" items);
        bl_msg = Option.map atom (field1 "message" items);
      }
  | Lsexp.Atom a -> invalid "baseline entry must be a list, found %S" a

let load_baseline path =
  let items =
    match Lsexp.parse_file path with
    | [ Lsexp.List items ] -> items
    | _ -> invalid "%s: baseline must be a single toplevel list" path
    | exception Lsexp.Parse_error m -> invalid "%s: %s" path m
    | exception Sys_error m -> invalid "%s" m
  in
  let entries =
    match field "findings" items with
    | Some l -> List.map parse_baseline_entry l
    | None -> invalid "%s: baseline needs (findings ...)" path
  in
  check_dups ~what:"baseline"
    (List.map
       (fun b -> Printf.sprintf "rule %s file %s subject %s" b.bl_rule b.bl_file b.bl_subject)
       entries);
  entries
