;; Manifest for the seeded fixture tree (tools/lint/fixtures): same
;; rule families as lint.manifest.sexp, scoped to the fixtures, with
;; one waiver proving that a waiver silences exactly its target.

((scan-dirs (tools/lint/fixtures))

 (determinism
  (forbidden
   ((prefix "Random.")
    (hint "derive a stream with Splittable_rng/Seeds (DESIGN.md §10); ambient Random breaks cell-order independence"))
   ((prefix "Sys.time")
    (hint "wall-clock in a deterministic cell; charge simulated Cycles instead"))
   ((prefix "Unix.gettimeofday")
    (hint "wall-clock in a deterministic cell; charge simulated Cycles instead"))
   ((prefix "Hashtbl.hash")
    (hint "polymorphic hashing of cyclic/functional values is representation-dependent; key on an explicit int"))))

 (domain-safety
  (mutable-constructors
   (ref Hashtbl.create Buffer.create Queue.create Stack.create
    Array.make Array.init Array.make_matrix Bytes.create Bytes.make
    Weak.create))
  (sanctioned
   (Memo.create Memo.once Lock.create Atomic.make)))

 (callgraph
  (aliases
   ;; cg_funct's functor parameter: the only instantiation binds Impl.
   ((file tools/lint/fixtures/cg_funct.ml) (module P)
    (targets (Lint_fixtures.Cg_funct.Impl)))))

 (zero-alloc
  (hot
   ((file tools/lint/fixtures/alloc_bad.ml)
    (functions
     (hot_pair hot_closure hot_partial hot_cons hot_array hot_float
      hot_record)))
   ((file tools/lint/fixtures/alloc_ok.ml) (functions (hot_mask)))
   ((file tools/lint/fixtures/cg_chain.ml) (functions (top)))
   ((file tools/lint/fixtures/cg_funct.ml) (functions (entry))))
  (boundaries
   ((name Cg_chain.cold_path)
    (justification "fixture: proves a justified boundary cuts the closure at a deliberate cold-path edge"))))

 (ownership
  (roots
   ((file tools/lint/fixtures/own_roles.ml) (functions (io_entry))
    (role io-domain))
   ((file tools/lint/fixtures/own_roles.ml) (functions (exec_entry spawn_leak))
    (role executor)))
  (sanctioned
   (Atomic.make Lock.create Memo.create Memo.once Spsc.create))
  (spawners
   (Domain.spawn Domains.spawn Pool.run)))

 (interface
  (require-mli true))

 (waivers
  ((rule determinism) (file tools/lint/fixtures/det_waived.ml)
   (ident "Random.")
   (justification "fixture: proves a manifest waiver silences exactly its target and nothing else"))
  ((rule domain-safety) (file tools/lint/fixtures/own_roles.ml)
   (ident shared_cursor)
   (justification "fixture: the ownership rule needs a genuinely shared unguarded location; the overlapping domain-safety finding is waived so the cram output isolates the ownership diagnostics"))))
