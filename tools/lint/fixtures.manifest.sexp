;; Manifest for the seeded fixture tree (tools/lint/fixtures): same
;; rule families as lint.manifest.sexp, scoped to the fixtures, with
;; one waiver proving that a waiver silences exactly its target.

((scan-dirs (tools/lint/fixtures))

 (determinism
  (forbidden
   ((prefix "Random.")
    (hint "derive a stream with Splittable_rng/Seeds (DESIGN.md §10); ambient Random breaks cell-order independence"))
   ((prefix "Sys.time")
    (hint "wall-clock in a deterministic cell; charge simulated Cycles instead"))
   ((prefix "Unix.gettimeofday")
    (hint "wall-clock in a deterministic cell; charge simulated Cycles instead"))
   ((prefix "Hashtbl.hash")
    (hint "polymorphic hashing of cyclic/functional values is representation-dependent; key on an explicit int"))))

 (domain-safety
  (mutable-constructors
   (ref Hashtbl.create Buffer.create Queue.create Stack.create
    Array.make Array.init Array.make_matrix Bytes.create Bytes.make
    Weak.create))
  (sanctioned
   (Memo.create Memo.once Lock.create Atomic.make)))

 (zero-alloc
  (hot
   ((file tools/lint/fixtures/alloc_bad.ml)
    (functions
     (hot_pair hot_closure hot_partial hot_cons hot_array hot_float
      hot_record)))
   ((file tools/lint/fixtures/alloc_ok.ml) (functions (hot_mask)))))

 (interface
  (require-mli true))

 (waivers
  ((rule determinism) (file tools/lint/fixtures/det_waived.ml)
   (ident "Random.")
   (justification "fixture: proves a manifest waiver silences exactly its target and nothing else"))))
