open Typedtree

(* A toplevel non-function binding is a *mutable location* when its
   spine (everything evaluated at module init, i.e. not delayed under a
   function) builds unsynchronized mutable state, and nothing on the
   spine goes through an ownership-sanctioned constructor. Mirrors the
   domain-safety spine walk, but as a classification rather than a
   finding: here only cross-role reachability is an error. *)
let is_mutable_location (m : Manifest.t) (d : Callgraph.def) =
  if d.d_is_fun then false
  else begin
    let mut = ref false and sanctioned = ref false in
    let expr it e =
      match e.exp_desc with
      | Texp_function _ -> ()
      | Texp_apply (fn, _) -> (
          match Rules.ident_of_fn fn with
          | Some n when List.exists (Rules.suffix_matches n) m.own_sanctioned
            ->
              sanctioned := true
          | Some n when List.mem n m.ds_mutable ->
              mut := true;
              Tast_iterator.default_iterator.expr it e
          | _ -> Tast_iterator.default_iterator.expr it e)
      | Texp_record { fields; _ } when Rules.mutable_record_fields fields ->
          mut := true;
          Tast_iterator.default_iterator.expr it e
      | Texp_array _ ->
          mut := true;
          Tast_iterator.default_iterator.expr it e
      | _ -> Tast_iterator.default_iterator.expr it e
    in
    let it = { Tast_iterator.default_iterator with expr } in
    it.expr it d.d_expr;
    !mut && not !sanctioned
  end

let pp_chain chain = String.concat " -> " chain

let missing_root (r : Manifest.root) fn =
  {
    Finding.rule = "ownership";
    file = r.r_file;
    line = 1;
    col = 0;
    end_line = 1;
    end_col = 0;
    subject = fn;
    message =
      Printf.sprintf
        "ownership root `%s` not found in %s (manifest out of date?)" fn
        r.r_file;
    hint = "fix the (roots ...) entry in lint.manifest.sexp";
    chain = [];
  }

let check (m : Manifest.t) cg =
  let roots =
    List.map
      (fun (h : Manifest.hot) ->
        { Manifest.r_file = h.h_file; r_funs = h.h_funs; r_role = h.h_role })
      m.za_hot
    @ m.own_roots
  in
  let findings = ref [] in
  let mutable_cache = Hashtbl.create 64 in
  let is_mut (d : Callgraph.def) =
    match Hashtbl.find_opt mutable_cache d.d_id with
    | Some b -> b
    | None ->
        let b = is_mutable_location m d in
        Hashtbl.add mutable_cache d.d_id b;
        b
  in
  (* (role, def id) -> visited; per-def role reach lists keep the first
     witness chain per role, in discovery order (manifest order, then
     BFS order), so reports are stable. *)
  let visited = Hashtbl.create 256 in
  let reach : (int, (string * string list) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let fn_order : (Callgraph.def * string * string list) list ref = ref [] in
  let record_reach (d : Callgraph.def) role chain =
    let l =
      match Hashtbl.find_opt reach d.d_id with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.add reach d.d_id l;
          l
    in
    if not (List.mem_assoc role !l) then l := !l @ [ (role, chain) ]
  in
  let rec visit role (d : Callgraph.def) chain =
    if not (Hashtbl.mem visited (role, d.d_id)) then begin
      Hashtbl.add visited (role, d.d_id) ();
      if not (List.exists (fun (d', _, _) -> d'.Callgraph.d_id = d.d_id) !fn_order)
      then fn_order := (d, role, chain) :: !fn_order;
      List.iter
        (fun ((tgt : Callgraph.def), _loc) ->
          if is_mut tgt then record_reach tgt role (chain @ [ tgt.d_display ])
          else if tgt.d_is_fun && tgt.d_id <> d.d_id then
            visit role tgt (chain @ [ tgt.d_display ]))
        (Callgraph.refs cg d)
    end
  in
  List.iter
    (fun (r : Manifest.root) ->
      List.iter
        (fun fn ->
          match Callgraph.find cg ~file:r.r_file ~name:fn with
          | [] -> findings := missing_root r fn :: !findings
          | ds ->
              List.iter (fun d -> visit r.r_role d [ d.Callgraph.d_display ]) ds)
        r.r_funs)
    roots;
  (* Two distinct roles reaching the same unguarded location. *)
  let conflicts = ref [] in
  Hashtbl.iter
    (fun id l ->
      match !l with
      | (r1, c1) :: (r2, c2) :: _ when r1 <> r2 -> conflicts := (id, (r1, c1), (r2, c2)) :: !conflicts
      | _ -> ())
    reach;
  let defs_by_id = Hashtbl.create 64 in
  List.iter (fun (d : Callgraph.def) -> Hashtbl.replace defs_by_id d.d_id d) (Callgraph.defs cg);
  List.iter
    (fun (id, (r1, c1), (r2, c2)) ->
      match Hashtbl.find_opt defs_by_id id with
      | None -> ()
      | Some (d : Callgraph.def) ->
          findings :=
            {
              (Finding.of_loc ~rule:"ownership" ~subject:d.d_display
                 ~message:
                   (Printf.sprintf
                      "mutable state `%s` is reachable from role %s (%s) and \
                       role %s (%s)"
                      d.d_display r1 (pp_chain c1) r2 (pp_chain c2))
                 ~hint:
                   "guard it with Atomic/Spsc/Exec.Lock, move it into the \
                    owning role, or waive with a justification"
                 ~chain:c1 d.d_loc)
              with Finding.file = d.d_file;
            }
            :: !findings)
    (List.sort compare !conflicts);
  (* Spawned-closure escape check: a closure literal handed to a
     spawner must not capture a toplevel mutable location — the spawned
     domain is outside every role. Each function is scanned once, under
     the first role that reached it. *)
  List.iter
    (fun ((d : Callgraph.def), role, chain) ->
      let expr it e =
        (match e.exp_desc with
        | Texp_apply (fn, args) -> (
            match Rules.ident_of_fn fn with
            | Some n -> (
                match
                  List.find_opt (Rules.suffix_matches n) m.own_spawners
                with
                | None -> ()
                | Some spawner ->
                    List.iter
                      (function
                        | _, Some arg -> (
                            match arg.exp_desc with
                            | Texp_function _ ->
                                List.iter
                                  (fun ((tgt : Callgraph.def), _) ->
                                    if is_mut tgt then
                                      findings :=
                                        {
                                          (Finding.of_loc ~rule:"ownership"
                                             ~subject:d.d_display
                                             ~message:
                                               (Printf.sprintf
                                                  "closure passed to `%s` \
                                                   captures mutable state \
                                                   `%s`; the spawned domain \
                                                   runs outside role %s"
                                                  spawner tgt.d_display role)
                                             ~hint:
                                               "pass the state through the \
                                                spawn argument, guard it \
                                                with Atomic/Spsc/Exec.Lock, \
                                                or waive with a justification"
                                             ~chain arg.exp_loc)
                                          with Finding.file = d.d_file;
                                        }
                                        :: !findings)
                                  (Callgraph.refs_in cg d arg)
                            | _ -> ())
                        | _ -> ())
                      args)
            | None -> ())
        | _ -> ());
        Tast_iterator.default_iterator.expr it e
      in
      let it = { Tast_iterator.default_iterator with expr } in
      it.expr it d.d_expr)
    (List.rev !fn_order);
  List.rev !findings
