(* riommu-lint: typed-tree static analysis over the .cmt files the
   normal dune build produces.

   Enforces the manifest rule set (determinism, domain-safety,
   zero-alloc hot paths, interface hygiene) and exits nonzero on any
   unwaived finding. Wired as `dune build @lint`; see DESIGN.md §11. *)

let usage = "riommu-lint --manifest lint.manifest.sexp --root DIR [--show-waived]"

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("riommu-lint: " ^ m);
      exit 2)
    fmt

(* Deterministic recursive scan (sorted, hidden dirs included: dune
   keeps .cmt artifacts under .<lib>.objs/byte). *)
let rec collect_cmts acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then collect_cmts acc path
          else if Filename.check_suffix entry ".cmt" then path :: acc
          else acc)
        acc entries

let () =
  let manifest_path = ref "" in
  let root = ref "." in
  let show_waived = ref false in
  let spec =
    [
      ("--manifest", Arg.Set_string manifest_path, "PATH rule manifest");
      ("--root", Arg.Set_string root, "DIR tree holding sources and .cmt files");
      ("--show-waived", Arg.Set show_waived, " print waived findings too");
    ]
  in
  Arg.parse spec (fun a -> fail "unexpected argument %S" a) usage;
  if !manifest_path = "" then fail "missing --manifest (%s)" usage;
  let m =
    match Manifest.load !manifest_path with
    | m -> m
    | exception Manifest.Invalid msg -> fail "invalid manifest: %s" msg
  in
  let cmts =
    List.sort String.compare
      (List.concat_map
         (fun dir -> collect_cmts [] (Filename.concat !root dir))
         m.scan_dirs)
  in
  let units = ref 0 in
  let findings = ref [] in
  List.iter
    (fun cmt_path ->
      let cmt =
        match Cmt_format.read_cmt cmt_path with
        | cmt -> cmt
        | exception _ -> fail "cannot read %s (stale build tree?)" cmt_path
      in
      match (cmt.Cmt_format.cmt_sourcefile, cmt.Cmt_format.cmt_annots) with
      | Some source, Cmt_format.Implementation str
        when Filename.check_suffix source ".ml" ->
          incr units;
          let in_unit =
            Rules.determinism m str
            @ Rules.domain_safety m str
            @ Rules.hot_functions m ~source str
          in
          (* Locations inside the unit carry the compiler's view of the
             path; report them under the canonical source name so
             manifest waivers and editors agree on it. *)
          findings :=
            List.map (fun f -> { f with Finding.file = source }) in_unit
            @ !findings
      | _ -> () (* interfaces, packs, generated alias modules *))
    cmts;
  findings := Rules.interface m ~root:!root @ !findings;
  let all = List.sort_uniq Finding.compare !findings in
  let waived, active =
    List.partition (fun f -> Finding.waived m f <> None) all
  in
  List.iter (Finding.print stdout) active;
  if !show_waived then
    List.iter
      (fun f ->
        match Finding.waived m f with
        | Some w ->
            Printf.printf "%s:%d:%d: [%s] waived: %s\n  justification: %s\n"
              f.Finding.file f.Finding.line f.Finding.col f.Finding.rule
              f.Finding.message w.Manifest.w_just
        | None -> ())
      waived;
  Printf.printf "riommu-lint: %d finding(s), %d waived, %d unit(s) checked\n"
    (List.length active) (List.length waived) !units;
  exit (if active = [] then 0 else 1)
