(* riommu-lint: typed-tree static analysis over the .cmt files the
   normal dune build produces.

   v2 is interprocedural: a whole-program call graph over every scanned
   unit makes the zero-alloc rule transitive from the manifest's hot
   entry points, and the ownership rule checks that no unguarded
   mutable location is reachable from two domain roles. Wired as `dune
   build @lint`; see DESIGN.md §11/§16. *)

let usage =
  "riommu-lint --manifest lint.manifest.sexp --root DIR [--show-waived] \
   [--json PATH] [--baseline PATH] [--stale-check]"

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("riommu-lint: " ^ m);
      exit 2)
    fmt

(* Deterministic recursive scan (sorted, hidden dirs included: dune
   keeps .cmt artifacts under .<lib>.objs/byte and .<exe>.eobjs). *)
let rec collect_cmts acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then collect_cmts acc path
          else if Filename.check_suffix entry ".cmt" then path :: acc
          else acc)
        acc entries

let rule_names =
  [ "determinism"; "domain-safety"; "zero-alloc"; "ownership"; "interface" ]

type status = Active | Waived of Manifest.waiver | Baselined

let () =
  let manifest_path = ref "" in
  let root = ref "." in
  let show_waived = ref false in
  let json_path = ref "" in
  let baseline_path = ref "" in
  let stale_check = ref false in
  let spec =
    [
      ("--manifest", Arg.Set_string manifest_path, "PATH rule manifest");
      ("--root", Arg.Set_string root, "DIR tree holding sources and .cmt files");
      ("--show-waived", Arg.Set show_waived, " print waived/baselined findings too");
      ("--json", Arg.Set_string json_path, "PATH write machine-readable findings");
      ("--baseline", Arg.Set_string baseline_path, "PATH suppression baseline");
      ( "--stale-check",
        Arg.Set stale_check,
        " fail on waivers/baseline entries/boundaries that no longer fire" );
    ]
  in
  Arg.parse spec (fun a -> fail "unexpected argument %S" a) usage;
  if !manifest_path = "" then fail "missing --manifest (%s)" usage;
  let m =
    match Manifest.load !manifest_path with
    | m -> m
    | exception Manifest.Invalid msg -> fail "invalid manifest: %s" msg
  in
  let baseline =
    if !baseline_path = "" then []
    else
      match Manifest.load_baseline !baseline_path with
      | b -> b
      | exception Manifest.Invalid msg -> fail "invalid baseline: %s" msg
  in
  let cmts =
    List.sort String.compare
      (List.concat_map
         (fun dir -> collect_cmts [] (Filename.concat !root dir))
         m.scan_dirs)
  in
  (* Pass 1: read every unit up front — the call graph needs the whole
     program before any interprocedural rule can run. *)
  let units = ref [] in
  List.iter
    (fun cmt_path ->
      let cmt =
        match Cmt_format.read_cmt cmt_path with
        | cmt -> cmt
        | exception _ -> fail "cannot read %s (stale build tree?)" cmt_path
      in
      match (cmt.Cmt_format.cmt_sourcefile, cmt.Cmt_format.cmt_annots) with
      | Some source, Cmt_format.Implementation str
        when Filename.check_suffix source ".ml" ->
          units := (cmt.Cmt_format.cmt_modname, source, str) :: !units
      | _ -> () (* interfaces, packs, generated alias modules *))
    cmts;
  let units = List.rev !units in
  let findings = ref [] in
  (* Per-unit rules. Locations inside a unit carry the compiler's view
     of the path; report them under the canonical source name so
     manifest waivers and editors agree on it. *)
  List.iter
    (fun (_modname, source, str) ->
      let in_unit = Rules.determinism m str @ Rules.domain_safety m str in
      findings :=
        List.map (fun f -> { f with Finding.file = source }) in_unit
        @ !findings)
    units;
  (* Interprocedural rules (these set canonical files themselves: a
     transitive finding lands in a different unit than its entry). *)
  let cg = Callgraph.create m units in
  let za_findings, hit_boundaries = Rules.transitive_zero_alloc m cg in
  findings := za_findings @ Ownership.check m cg @ !findings;
  findings := Rules.interface m ~root:!root @ !findings;
  let all = List.sort_uniq Finding.compare !findings in
  (* Classification; matched waiver/baseline keys feed --stale-check. *)
  let waiver_used = Hashtbl.create 16 and base_used = Hashtbl.create 16 in
  let classified =
    List.map
      (fun f ->
        match Finding.waived m f with
        | Some w ->
            Hashtbl.replace waiver_used (w.Manifest.w_rule, w.w_file, w.w_ident) ();
            (f, Waived w)
        | None -> (
            match Finding.baselined baseline f with
            | Some b ->
                Hashtbl.replace base_used (b.Manifest.bl_rule, b.bl_file, b.bl_subject) ();
                (f, Baselined)
            | None -> (f, Active)))
      all
  in
  let active = List.filter (fun (_, s) -> s = Active) classified in
  List.iter (fun (f, _) -> Finding.print stdout f) active;
  if !show_waived then
    List.iter
      (fun (f, s) ->
        match s with
        | Active -> ()
        | Waived w ->
            Finding.pp_span stdout f;
            Printf.printf ": [%s] waived: %s\n  justification: %s\n"
              f.Finding.rule f.Finding.message w.Manifest.w_just
        | Baselined ->
            Finding.pp_span stdout f;
            Printf.printf ": [%s] baselined: %s\n" f.Finding.rule
              f.Finding.message)
      classified;
  (* Stale suppressions: a waiver, baseline entry or call-graph boundary
     that no longer fires is debt pretending to be documentation. *)
  let stale = ref [] in
  if !stale_check then begin
    List.iter
      (fun (w : Manifest.waiver) ->
        if not (Hashtbl.mem waiver_used (w.w_rule, w.w_file, w.w_ident)) then
          stale :=
            Printf.sprintf "stale waiver: rule %s file %s%s" w.w_rule w.w_file
              (match w.w_ident with None -> "" | Some i -> " ident " ^ i)
            :: !stale)
      m.waivers;
    List.iter
      (fun (b : Manifest.baseline_entry) ->
        if not (Hashtbl.mem base_used (b.bl_rule, b.bl_file, b.bl_subject)) then
          stale :=
            Printf.sprintf "stale baseline entry: rule %s file %s subject %s"
              b.bl_rule b.bl_file b.bl_subject
            :: !stale)
      baseline;
    List.iter
      (fun (b : Manifest.boundary) ->
        if not (List.mem b.b_name hit_boundaries) then
          stale :=
            Printf.sprintf "stale boundary: %s (no hot edge reaches it)"
              b.b_name
            :: !stale)
      m.za_boundaries;
    List.iter (fun s -> Printf.printf "riommu-lint: %s\n" s) (List.rev !stale)
  end;
  let count rule s =
    List.length
      (List.filter
         (fun (f, s') ->
           f.Finding.rule = rule
           &&
           match (s, s') with
           | `A, Active -> true
           | `W, Waived _ -> true
           | `B, Baselined -> true
           | _ -> false)
         classified)
  in
  List.iter
    (fun rule ->
      Printf.printf "riommu-lint: %s: %d active, %d waived, %d baselined\n"
        rule (count rule `A) (count rule `W) (count rule `B))
    rule_names;
  let n_active = List.length active in
  let n_waived =
    List.length (List.filter (fun (_, s) -> s <> Active && s <> Baselined) classified)
  in
  let n_base = List.length (List.filter (fun (_, s) -> s = Baselined) classified) in
  Printf.printf
    "riommu-lint: %d finding(s), %d waived, %d baselined, %d unit(s) checked\n"
    n_active n_waived n_base (List.length units);
  if !json_path <> "" then begin
    let oc = open_out !json_path in
    Printf.fprintf oc
      "{ \"version\": \"riommu-lint/1\",\n  \"active\": %d, \"waived\": %d, \
       \"baselined\": %d, \"units\": %d,\n  \"findings\": [" n_active n_waived
      n_base (List.length units);
    List.iteri
      (fun i (f, s) ->
        if i > 0 then output_char oc ',';
        output_string oc "\n    ";
        Finding.print_json oc
          ~status:
            (match s with
            | Active -> "active"
            | Waived _ -> "waived"
            | Baselined -> "baselined")
          f)
      classified;
    output_string oc "\n  ]\n}\n";
    close_out oc
  end;
  exit (if n_active > 0 || !stale <> [] then 1 else 0)
