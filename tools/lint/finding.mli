(** A single lint diagnostic: rule id, position, the subject the waiver
    machinery matches on, and a human message plus fix hint. *)

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  subject : string;
  message : string;
  hint : string;
}

val compare : t -> t -> int
(** Orders by (file, line, col, rule, message) so reports are stable
    across runs and scan orders. *)

val of_loc :
  rule:string ->
  subject:string ->
  message:string ->
  hint:string ->
  Location.t ->
  t

val waived : Manifest.t -> t -> Manifest.waiver option
(** The first manifest waiver covering this finding: rule and file must
    match exactly; a waiver [ident], when present, prefix-matches the
    finding subject. *)

val print : out_channel -> t -> unit
