(** A single lint diagnostic: rule id, source span, the subject the
    waiver machinery matches on, a human message plus fix hint, and —
    for the interprocedural rules — the witness call chain from the
    manifest entry point to the offending function. *)

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  end_line : int;  (** = [line] when the span is unusable *)
  end_col : int;  (** = [col] when the span is unusable *)
  subject : string;
  message : string;
  hint : string;
  chain : string list;
      (** entry point first, offending function last; [] or a singleton
          for the intraprocedural rules *)
}

val compare : t -> t -> int
(** Orders by (file, line, col, rule, message) so reports are stable
    across runs and scan orders. *)

val of_loc :
  rule:string ->
  subject:string ->
  message:string ->
  hint:string ->
  ?chain:string list ->
  Location.t ->
  t

val waived : Manifest.t -> t -> Manifest.waiver option
(** The first manifest waiver covering this finding: rule and file must
    match exactly; a waiver [ident], when present, prefix-matches the
    finding subject. *)

val baselined : Manifest.baseline_entry list -> t -> Manifest.baseline_entry option
(** The first suppression-baseline entry covering this finding: rule and
    file match exactly, the entry subject prefix-matches the finding
    subject, and the entry message (when present) is a substring of the
    finding message. *)

val pp_span : out_channel -> t -> unit
(** [file:line:col], with [-end_col] / [-end_line:end_col] appended when
    the span is usable. *)

val print : out_channel -> t -> unit
(** [file:line:col-end: [rule] message], then the hint and (when the
    chain has at least two hops) a [via:] line. *)

val print_json : out_channel -> status:string -> t -> unit
(** One JSON object (no trailing newline or comma) for the --json
    report; [status] is ["active"], ["waived"] or ["baselined"]. *)
