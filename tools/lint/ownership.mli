(** The domain-ownership race detector (DESIGN.md §16).

    Roots are the manifest's role-annotated entry points: every
    [(zero-alloc (hot ...))] entry plus the extra [(ownership (roots
    ...))] entries. Each root's reachable closure (over the call graph)
    is computed per role; a toplevel mutable location reachable from two
    distinct roles is flagged with both witness chains, unless its
    defining spine goes through a sanctioned constructor
    ([Atomic.make], [Spsc.create], [Exec.Lock.create], ...) or the
    finding is waived.

    A second check flags closure literals passed to a manifest-listed
    spawner ([Domain.spawn], [Pool.run], ...) from inside a role's
    closure when they capture a toplevel mutable location: the spawned
    domain runs outside every role, so the capture leaks unguarded
    state across domains even when only one role reaches it
    statically. *)

val check : Manifest.t -> Callgraph.t -> Finding.t list
(** Findings carry rule ["ownership"], the mutable location's (or the
    captured closure's) span, and canonical source paths. A root
    function the call graph cannot find yields a finding at the named
    file's first line, so manifest typos fail the gate instead of
    silently shrinking the audit. *)
