(** The rule implementations over .cmt typed trees.

    Each returns plain findings; waiver/baseline filtering happens in
    the driver so waived and baselined counts can be reported. *)

(** {2 Shared typed-tree helpers} (also used by {!Ownership}) *)

val norm_path : Path.t -> string
(** Resolved identifier path with any leading [Stdlib.] stripped. *)

val suffix_matches : string -> string -> bool
(** [suffix_matches name candidate]: equal, or [name] ends with
    [. ^ candidate] — so [Memo.create] covers [Rio_exec.Memo.create]. *)

val ident_of_fn : Typedtree.expression -> string option
(** The normalized path when the expression is a plain identifier. *)

val mutable_record_fields : (Types.label_description * 'a) array -> bool

(** {2 Rules} *)

val determinism : Manifest.t -> Typedtree.structure -> Finding.t list
(** References to manifest-forbidden identifier families
    (e.g. [Random.*], [Sys.time]) anywhere in the unit, plus
    [Hashtbl.create ~random]. *)

val domain_safety : Manifest.t -> Typedtree.structure -> Finding.t list
(** Module-level [let]s (including inside submodules and functor
    bodies) that build unsynchronized mutable state on their spine —
    manifest-listed constructors, records with mutable fields, array
    literals, toplevel [lazy] — unless the spine goes through a
    sanctioned wrapper such as [Exec.Memo.create]. *)

val transitive_zero_alloc :
  Manifest.t -> Callgraph.t -> Finding.t list * string list
(** Zero-alloc audit of the whole closure reachable from the manifest's
    hot entry points over the call graph: flags tuple/record/array/
    constructor construction, closures, partial applications, lazy
    blocks and boxed-float results in every reachable function body,
    with the witness call chain from the entry point. Justified
    [(boundaries ...)] entries cut edges (deliberate cold paths such as
    a magazine refill). Returns the findings plus the names of the
    boundaries that actually cut an edge — a boundary that never fires
    is stale and [--stale-check] fails on it. A hot function missing
    from its file yields a finding at line 1, so manifest typos fail
    the gate instead of silently shrinking the audit. *)

val interface : Manifest.t -> root:string -> Finding.t list
(** Every [.ml] under the scan dirs must ship a sibling [.mli].
    Generated [.ml-gen] alias modules are excluded, as are
    dune-(select)ed variants ([name.variant.ml]) whose base [name.mli]
    exists — dune applies that interface to whichever variant it
    picks. *)
