(** The four rule implementations over .cmt typed trees.

    Each returns plain findings; waiver filtering happens in the
    driver so waived counts can be reported. *)

val determinism : Manifest.t -> Typedtree.structure -> Finding.t list
(** References to manifest-forbidden identifier families
    (e.g. [Random.*], [Sys.time]) anywhere in the unit, plus
    [Hashtbl.create ~random]. *)

val domain_safety : Manifest.t -> Typedtree.structure -> Finding.t list
(** Module-level [let]s (including inside submodules and functor
    bodies) that build unsynchronized mutable state on their spine —
    manifest-listed constructors, records with mutable fields, array
    literals, toplevel [lazy] — unless the spine goes through a
    sanctioned wrapper such as [Exec.Memo.create]. *)

val hot_functions :
  Manifest.t -> source:string -> Typedtree.structure -> Finding.t list
(** Zero-alloc audit of the manifest's hot list for this source file:
    flags tuple/record/array/constructor construction, closures,
    partial applications, lazy blocks and boxed-float results inside
    the listed function bodies. *)

val interface : Manifest.t -> root:string -> Finding.t list
(** Every [.ml] under the scan dirs must ship a sibling [.mli]
    (generated [.ml-gen] alias modules excluded). *)
