The fixture tree seeds at least one violation of every rule, including
the interprocedural ones: a 3-deep call chain whose leaf allocates, a
functor-instantiated callee resolved through a manifest alias, and a
mutable location shared by two domain roles. The gate must flag all of
them with file:line:col-col spans and witness chains, exit nonzero,
silence exactly the waived ones, and report the baselined legacy
finding separately.

  $ ./riommu_lint.exe --manifest fixtures.manifest.sexp --baseline fixtures.baseline.sexp --stale-check --root ../..
  tools/lint/fixtures/alloc_bad.ml:8:19-25: [zero-alloc] allocation in hot function `Alloc_bad.hot_pair`: tuple construction
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception), cut the edge with a justified (boundaries ...) entry, or waive it in the manifest
  tools/lint/fixtures/alloc_bad.ml:9:32-48: [zero-alloc] allocation in hot function `Alloc_bad.hot_closure`: closure construction (captures environment)
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception), cut the edge with a justified (boundaries ...) entry, or waive it in the manifest
  tools/lint/fixtures/alloc_bad.ml:10:21-29: [zero-alloc] allocation in hot function `Alloc_bad.hot_partial`: partial application (allocates a closure)
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception), cut the edge with a justified (boundaries ...) entry, or waive it in the manifest
  tools/lint/fixtures/alloc_bad.ml:11:20-27: [zero-alloc] allocation in hot function `Alloc_bad.hot_cons`: constructor `::` application (boxes 2 arguments)
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception), cut the edge with a justified (boundaries ...) entry, or waive it in the manifest
  tools/lint/fixtures/alloc_bad.ml:12:18-32: [zero-alloc] allocation in hot function `Alloc_bad.hot_array`: call to allocator `Array.make`
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception), cut the edge with a justified (boundaries ...) entry, or waive it in the manifest
  tools/lint/fixtures/alloc_bad.ml:13:20-28: [zero-alloc] allocation in hot function `Alloc_bad.hot_float`: boxed float result of an application
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception), cut the edge with a justified (boundaries ...) entry, or waive it in the manifest
  tools/lint/fixtures/alloc_bad.ml:14:21-37: [zero-alloc] allocation in hot function `Alloc_bad.hot_record`: record construction
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception), cut the edge with a justified (boundaries ...) entry, or waive it in the manifest
  tools/lint/fixtures/cg_chain.ml:6:13-27: [zero-alloc] allocation in hot function `Cg_chain.leaf`: call to allocator `Bytes.create`
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception), cut the edge with a justified (boundaries ...) entry, or waive it in the manifest
    via: Cg_chain.top -> Cg_chain.mid -> Cg_chain.leaf
  tools/lint/fixtures/cg_funct.ml:11:28-44: [zero-alloc] allocation in hot function `Cg_funct.Impl.step`: call to allocator `Bytes.create`
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception), cut the edge with a justified (boundaries ...) entry, or waive it in the manifest
    via: Cg_funct.entry -> Cg_funct.F.drive -> Cg_funct.Impl.step
  tools/lint/fixtures/det_bad.ml:4:17-27: [determinism] reference to Random.int in deterministic scope (forbidden: Random.)
    hint: derive a stream with Splittable_rng/Seeds (DESIGN.md §10); ambient Random breaks cell-order independence
  tools/lint/fixtures/det_bad.ml:5:20-28: [determinism] reference to Sys.time in deterministic scope (forbidden: Sys.time)
    hint: wall-clock in a deterministic cell; charge simulated Cycles instead
  tools/lint/fixtures/det_bad.ml:6:15-32: [determinism] reference to Unix.gettimeofday in deterministic scope (forbidden: Unix.gettimeofday)
    hint: wall-clock in a deterministic cell; charge simulated Cycles instead
  tools/lint/fixtures/det_bad.ml:7:14-26: [determinism] reference to Hashtbl.hash in deterministic scope (forbidden: Hashtbl.hash)
    hint: polymorphic hashing of cyclic/functional values is representation-dependent; key on an explicit int
  tools/lint/fixtures/det_bad.ml:9:46-76: [determinism] Hashtbl.create ~random seeds the hash from the environment; iteration order becomes run-dependent
    hint: drop ~random; deterministic hashing is the default
  tools/lint/fixtures/domain_bad.ml:4:14-19: [domain-safety] module-level mutable state: toplevel `counter` built with ref
    hint: wrap in Exec.Memo/Exec.Lock, move it inside the consumer, or waive with a justification in lint.manifest.sexp
  tools/lint/fixtures/domain_bad.ml:5:38-55: [domain-safety] module-level mutable state: toplevel `table` built with Hashtbl.create
    hint: wrap in Exec.Memo/Exec.Lock, move it inside the consumer, or waive with a justification in lint.manifest.sexp
  tools/lint/fixtures/domain_bad.ml:6:14-30: [domain-safety] module-level mutable state: toplevel `scratch` built with Buffer.create
    hint: wrap in Exec.Memo/Exec.Lock, move it inside the consumer, or waive with a justification in lint.manifest.sexp
  tools/lint/fixtures/domain_bad.ml:10:20-31: [domain-safety] module-level mutable state: toplevel `shared_cursor` is a record with mutable fields
    hint: wrap in Exec.Memo/Exec.Lock, move it inside the consumer, or waive with a justification in lint.manifest.sexp
  tools/lint/fixtures/domain_bad.ml:11:14-30: [domain-safety] module-level mutable state: toplevel `weights` holds an array literal (arrays are always mutable)
    hint: wrap in Exec.Memo/Exec.Lock, move it inside the consumer, or waive with a justification in lint.manifest.sexp
  tools/lint/fixtures/domain_bad.ml:12:14-49: [domain-safety] module-level `lazy` in `squares`: forcing from two domains races on the thunk
    hint: wrap in Exec.Memo/Exec.Lock, move it inside the consumer, or waive with a justification in lint.manifest.sexp
  tools/lint/fixtures/no_mli_bad.ml:1:0: [interface] public module `no_mli_bad` has no .mli interface
    hint: add one (hide representation types, document the contract) or waive with a justification
  tools/lint/fixtures/own_roles.ml:12:4-17: [ownership] mutable state `Own_roles.shared_cursor` is reachable from role io-domain (Own_roles.io_entry -> Own_roles.shared_cursor) and role executor (Own_roles.exec_entry -> Own_roles.shared_cursor)
    hint: guard it with Atomic/Spsc/Exec.Lock, move it into the owning role, or waive with a justification
    via: Own_roles.io_entry -> Own_roles.shared_cursor
  tools/lint/fixtures/own_roles.ml:20:29-59: [ownership] closure passed to `Pool.run` captures mutable state `Own_roles.shared_cursor`; the spawned domain runs outside role executor
    hint: pass the state through the spawn argument, guard it with Atomic/Spsc/Exec.Lock, or waive with a justification
  riommu-lint: determinism: 5 active, 1 waived, 1 baselined
  riommu-lint: domain-safety: 6 active, 1 waived, 0 baselined
  riommu-lint: zero-alloc: 9 active, 0 waived, 0 baselined
  riommu-lint: ownership: 2 active, 0 waived, 0 baselined
  riommu-lint: interface: 1 active, 0 waived, 0 baselined
  riommu-lint: 23 finding(s), 2 waived, 1 baselined, 11 unit(s) checked
  [1]

Waived and baselined findings are visible (with justifications) on
demand, proving they silenced their targets rather than the rules not
firing:

  $ ./riommu_lint.exe --manifest fixtures.manifest.sexp --baseline fixtures.baseline.sexp --root ../.. --show-waived | tail -11
  tools/lint/fixtures/det_baselined.ml:4:15-23: [determinism] baselined: reference to Sys.time in deterministic scope (forbidden: Sys.time)
  tools/lint/fixtures/det_waived.ml:5:16-28: [determinism] waived: reference to Random.float in deterministic scope (forbidden: Random.)
    justification: fixture: proves a manifest waiver silences exactly its target and nothing else
  tools/lint/fixtures/own_roles.ml:12:20-25: [domain-safety] waived: module-level mutable state: toplevel `shared_cursor` built with ref
    justification: fixture: the ownership rule needs a genuinely shared unguarded location; the overlapping domain-safety finding is waived so the cram output isolates the ownership diagnostics
  riommu-lint: determinism: 5 active, 1 waived, 1 baselined
  riommu-lint: domain-safety: 6 active, 1 waived, 0 baselined
  riommu-lint: zero-alloc: 9 active, 0 waived, 0 baselined
  riommu-lint: ownership: 2 active, 0 waived, 0 baselined
  riommu-lint: interface: 1 active, 0 waived, 0 baselined
  riommu-lint: 23 finding(s), 2 waived, 1 baselined, 11 unit(s) checked

The machine-readable report carries the same findings, statuses and
call chains for the CI artifact:

  $ ./riommu_lint.exe --manifest fixtures.manifest.sexp --baseline fixtures.baseline.sexp --json findings.json --root ../.. > /dev/null
  [1]
  $ head -2 findings.json
  { "version": "riommu-lint/1",
    "active": 23, "waived": 2, "baselined": 1, "units": 11,
  $ grep -c '"status": "active"' findings.json
  23
  $ grep -c '"status": "waived"' findings.json
  2
  $ grep -c '"status": "baselined"' findings.json
  1
  $ grep -o '"chain": \["Cg_funct[^]]*\]' findings.json
  "chain": ["Cg_funct.entry", "Cg_funct.F.drive", "Cg_funct.Impl.step"]

A waiver without a justification is rejected outright:

  $ cat > bad.manifest.sexp <<'EOF'
  > ((scan-dirs (tools/lint/fixtures))
  >  (waivers
  >   ((rule determinism) (file tools/lint/fixtures/det_waived.ml))))
  > EOF
  $ ./riommu_lint.exe --manifest bad.manifest.sexp --root ../..
  riommu-lint: invalid manifest: waiver without a (justification "...")
  [2]

So are duplicate manifest entries for the same function/rule pair —
the first one silently winning is how a gate rots:

  $ cat > dup.manifest.sexp <<'EOF'
  > ((scan-dirs (tools/lint/fixtures))
  >  (zero-alloc
  >   (hot
  >    ((file tools/lint/fixtures/alloc_ok.ml) (functions (hot_mask)))
  >    ((file tools/lint/fixtures/alloc_ok.ml) (functions (hot_mask))))))
  > EOF
  $ ./riommu_lint.exe --manifest dup.manifest.sexp --root ../..
  riommu-lint: invalid manifest: duplicate zero-alloc hot entry for tools/lint/fixtures/alloc_ok.ml function hot_mask (merge the entries)
  [2]

A baseline entry that no longer matches anything must fail
--stale-check, keeping the suppression list shrink-only:

  $ cat > stale.baseline.sexp <<'EOF'
  > ((findings
  >   ((rule determinism) (file tools/lint/fixtures/det_baselined.ml)
  >    (subject "Sys.time"))
  >   ((rule zero-alloc) (file tools/lint/fixtures/alloc_ok.ml)
  >    (subject "Alloc_ok.hot_mask"))))
  > EOF
  $ ./riommu_lint.exe --manifest fixtures.manifest.sexp --baseline stale.baseline.sexp --stale-check --root ../.. | grep stale
  riommu-lint: stale baseline entry: rule zero-alloc file tools/lint/fixtures/alloc_ok.ml subject Alloc_ok.hot_mask
