The fixture tree seeds at least one violation of every rule. The gate
must flag all of them with file:line:col positions, exit nonzero, and
silence exactly the waived one (Random.float in det_waived.ml).

  $ ./riommu_lint.exe --manifest fixtures.manifest.sexp --root ../..
  tools/lint/fixtures/alloc_bad.ml:8:19: [zero-alloc] allocation in hot function `hot_pair`: tuple construction
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception) or waive it in the manifest with a justification
  tools/lint/fixtures/alloc_bad.ml:9:32: [zero-alloc] allocation in hot function `hot_closure`: closure construction (captures environment)
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception) or waive it in the manifest with a justification
  tools/lint/fixtures/alloc_bad.ml:10:21: [zero-alloc] allocation in hot function `hot_partial`: partial application (allocates a closure)
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception) or waive it in the manifest with a justification
  tools/lint/fixtures/alloc_bad.ml:11:20: [zero-alloc] allocation in hot function `hot_cons`: constructor `::` application (boxes 2 arguments)
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception) or waive it in the manifest with a justification
  tools/lint/fixtures/alloc_bad.ml:12:18: [zero-alloc] allocation in hot function `hot_array`: call to allocator `Array.make`
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception) or waive it in the manifest with a justification
  tools/lint/fixtures/alloc_bad.ml:13:20: [zero-alloc] allocation in hot function `hot_float`: boxed float result of an application
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception) or waive it in the manifest with a justification
  tools/lint/fixtures/alloc_bad.ml:14:21: [zero-alloc] allocation in hot function `hot_record`: record construction
    hint: hoist the allocation out of the hot path (preallocate, return via out-params, raise a constant exception) or waive it in the manifest with a justification
  tools/lint/fixtures/det_bad.ml:4:17: [determinism] reference to Random.int in deterministic scope (forbidden: Random.)
    hint: derive a stream with Splittable_rng/Seeds (DESIGN.md §10); ambient Random breaks cell-order independence
  tools/lint/fixtures/det_bad.ml:5:20: [determinism] reference to Sys.time in deterministic scope (forbidden: Sys.time)
    hint: wall-clock in a deterministic cell; charge simulated Cycles instead
  tools/lint/fixtures/det_bad.ml:6:15: [determinism] reference to Unix.gettimeofday in deterministic scope (forbidden: Unix.gettimeofday)
    hint: wall-clock in a deterministic cell; charge simulated Cycles instead
  tools/lint/fixtures/det_bad.ml:7:14: [determinism] reference to Hashtbl.hash in deterministic scope (forbidden: Hashtbl.hash)
    hint: polymorphic hashing of cyclic/functional values is representation-dependent; key on an explicit int
  tools/lint/fixtures/det_bad.ml:9:46: [determinism] Hashtbl.create ~random seeds the hash from the environment; iteration order becomes run-dependent
    hint: drop ~random; deterministic hashing is the default
  tools/lint/fixtures/domain_bad.ml:4:14: [domain-safety] module-level mutable state: toplevel `counter` built with ref
    hint: wrap in Exec.Memo/Exec.Lock, move it inside the consumer, or waive with a justification in lint.manifest.sexp
  tools/lint/fixtures/domain_bad.ml:5:38: [domain-safety] module-level mutable state: toplevel `table` built with Hashtbl.create
    hint: wrap in Exec.Memo/Exec.Lock, move it inside the consumer, or waive with a justification in lint.manifest.sexp
  tools/lint/fixtures/domain_bad.ml:6:14: [domain-safety] module-level mutable state: toplevel `scratch` built with Buffer.create
    hint: wrap in Exec.Memo/Exec.Lock, move it inside the consumer, or waive with a justification in lint.manifest.sexp
  tools/lint/fixtures/domain_bad.ml:10:20: [domain-safety] module-level mutable state: toplevel `shared_cursor` is a record with mutable fields
    hint: wrap in Exec.Memo/Exec.Lock, move it inside the consumer, or waive with a justification in lint.manifest.sexp
  tools/lint/fixtures/domain_bad.ml:11:14: [domain-safety] module-level mutable state: toplevel `weights` holds an array literal (arrays are always mutable)
    hint: wrap in Exec.Memo/Exec.Lock, move it inside the consumer, or waive with a justification in lint.manifest.sexp
  tools/lint/fixtures/domain_bad.ml:12:14: [domain-safety] module-level `lazy` in `squares`: forcing from two domains races on the thunk
    hint: wrap in Exec.Memo/Exec.Lock, move it inside the consumer, or waive with a justification in lint.manifest.sexp
  tools/lint/fixtures/no_mli_bad.ml:1:0: [interface] public module `no_mli_bad` has no .mli interface
    hint: add one (hide representation types, document the contract) or waive with a justification
  riommu-lint: 19 finding(s), 1 waived, 7 unit(s) checked
  [1]

The waiver is visible (with its justification) on demand, proving it
silenced its target rather than the rule not firing:

  $ ./riommu_lint.exe --manifest fixtures.manifest.sexp --root ../.. --show-waived | tail -3
  tools/lint/fixtures/det_waived.ml:5:16: [determinism] waived: reference to Random.float in deterministic scope (forbidden: Random.)
    justification: fixture: proves a manifest waiver silences exactly its target and nothing else
  riommu-lint: 19 finding(s), 1 waived, 7 unit(s) checked

A waiver without a justification is rejected outright:

  $ cat > bad.manifest.sexp <<'EOF'
  > ((scan-dirs (tools/lint/fixtures))
  >  (waivers
  >   ((rule determinism) (file tools/lint/fixtures/det_waived.ml))))
  > EOF
  $ ./riommu_lint.exe --manifest bad.manifest.sexp --root ../..
  riommu-lint: invalid manifest: waiver without a (justification "...")
  [2]
