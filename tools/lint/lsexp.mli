(** Minimal s-expression reader for the lint manifest (atoms, lists,
    [;] line comments); dependency-free so the linter links only
    compiler-libs. *)

type t = Atom of string | List of t list

exception Parse_error of string

val parse_string : string -> t list
(** All toplevel s-expressions of the input. Raises {!Parse_error}. *)

val parse_file : string -> t list
