(** Loader for [lint.manifest.sexp]: the committed rule set the linter
    enforces, plus the waivers that silence individual findings with a
    recorded justification. Schema in DESIGN.md §11. *)

type forbidden = { prefix : string; hint : string }
(** A forbidden identifier family for the determinism rule. [prefix] is
    matched against the resolved path with any leading ["Stdlib."]
    stripped, so ["Random."] covers both [Random.int] and
    [Stdlib.Random.int]. *)

type hot = { h_file : string; h_funs : string list }
(** Zero-alloc audit scope: toplevel (or functor-level) bindings
    [h_funs] of source file [h_file]. *)

type waiver = {
  w_rule : string;  (** rule id the waiver applies to *)
  w_file : string;  (** exact source path as printed in findings *)
  w_ident : string option;
      (** when present, a prefix match on the finding subject; when
          absent the waiver covers the whole file for that rule *)
  w_just : string;  (** required non-empty justification *)
}

type t = {
  scan_dirs : string list;
  det_forbidden : forbidden list;
  ds_mutable : string list;
  ds_sanctioned : string list;
  za_hot : hot list;
  iface_require_mli : bool;
  waivers : waiver list;
}

exception Invalid of string

val load : string -> t
(** Raises {!Invalid} with a message on malformed manifests. *)
