(** Loader for [lint.manifest.sexp]: the committed rule set the linter
    enforces, plus the waivers that silence individual findings with a
    recorded justification, and for the committed suppression baseline
    ([lint.baseline.sexp]). Schema in DESIGN.md §11/§16. *)

type forbidden = { prefix : string; hint : string }
(** A forbidden identifier family for the determinism rule. [prefix] is
    matched against the resolved path with any leading ["Stdlib."]
    stripped, so ["Random."] covers both [Random.int] and
    [Stdlib.Random.int]. *)

type hot = { h_file : string; h_funs : string list; h_role : string }
(** A zero-alloc entry point: toplevel (or functor-level) bindings
    [h_funs] of source file [h_file]. The whole call-graph closure
    reachable from an entry point is audited, not just its body.
    [h_role] ("io-domain" | "executor" | "any-domain", default
    "any-domain") also roots the ownership rule's role closures. *)

type boundary = { b_name : string; b_just : string }
(** A closure cut for the transitive zero-alloc rule: traversal stops at
    (and does not audit) functions whose qualified name suffix-matches
    [b_name] ("Module.fn" or longer). Requires a justification, like a
    waiver; a boundary no closure reaches is reported stale under
    [--stale-check]. *)

type cg_alias = { a_file : string; a_module : string; a_targets : string list }
(** A call-graph resolution hint: inside [a_file], calls through module
    prefix [a_module] (a functor parameter, a first-class module, a
    dune-(select)ed backend facade) resolve to each dotted module path
    in [a_targets]. *)

type root = { r_file : string; r_funs : string list; r_role : string }
(** An ownership-rule role root that is not zero-alloc gated (event
    loops, domain bodies): role closure entry points only. *)

type waiver = {
  w_rule : string;  (** rule id the waiver applies to *)
  w_file : string;  (** exact source path as printed in findings *)
  w_ident : string option;
      (** when present, a prefix match on the finding subject; when
          absent the waiver covers the whole file for that rule *)
  w_just : string;  (** required non-empty justification *)
}

type t = {
  scan_dirs : string list;
  det_forbidden : forbidden list;
  ds_mutable : string list;
  ds_sanctioned : string list;
  cg_aliases : cg_alias list;
  za_hot : hot list;
  za_boundaries : boundary list;
  own_roots : root list;
  own_sanctioned : string list;
      (** constructors whose module-level state the ownership rule
          accepts across roles (Atomic.make, Lock.create, ...) *)
  own_spawners : string list;
      (** functions whose literal closure arguments cross a domain
          boundary (Domain.spawn, Pool.run, ...) *)
  iface_require_mli : bool;
  waivers : waiver list;
}

type baseline_entry = {
  bl_rule : string;
  bl_file : string;
  bl_subject : string;  (** prefix match on the finding subject *)
  bl_msg : string option;  (** when present, substring of the message *)
}
(** One committed suppression: a legacy finding that does not fail the
    gate but stays visible in the JSON report. Entries deliberately
    carry no positions so they survive unrelated line drift; an entry
    matching no finding is reported stale under [--stale-check]. *)

exception Invalid of string

val load : string -> t
(** Raises {!Invalid} with a message on malformed manifests, including
    duplicate entries for the same (file, function) or rule pair. *)

val load_baseline : string -> baseline_entry list
(** Raises {!Invalid} on malformed baselines. *)
