(* Whole-program call graph over the scanned .cmt typed trees. Only
   version-stable corners of compiler-libs are touched (wildcard
   payloads everywhere a constructor's shape moved between 4.14 and
   5.x), so the same source builds on every CI compiler. *)

open Typedtree

type def = {
  d_id : int;
  d_unit : string;
  d_file : string;
  d_qual : string;
  d_name : string;
  d_display : string;
  d_canon : string;
  d_loc : Location.t;
  d_expr : Typedtree.expression;
  d_is_fun : bool;
}

type unit_info = {
  u_dotted : string;
  u_short : string;
  u_file : string;
  u_aliases : (string, string) Hashtbl.t;  (* local module name -> dotted path *)
  mutable u_defs : def list;  (* reverse collection order *)
  mutable u_idents : (Ident.t * def) list;
}

type t = {
  units : unit_info list;
  by_dotted : (string, unit_info) Hashtbl.t;
  by_file : (string, unit_info) Hashtbl.t;
  (* manifest (callgraph (aliases ...)): (file, module prefix) -> dotted targets *)
  m_aliases : (string * string, string list) Hashtbl.t;
  mutable next_id : int;
}

(* "Rio_iommu__Driver" (wrapped-library compilation unit) and
   "Rio_iommu.Driver" (access path through the alias module) are the
   same unit; normalize both to the dotted form. *)
let dedot name =
  let name =
    let pfx = "Stdlib." in
    if String.length name > 7 && String.sub name 0 7 = pfx then
      String.sub name 7 (String.length name - 7)
    else name
  in
  let buf = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf name.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let short_of_dotted dotted =
  match List.rev (String.split_on_char '.' dotted) with
  | last :: _ -> last
  | [] -> dotted

let is_function e =
  match e.exp_desc with Texp_function _ -> true | _ -> false

let binding_idents vb = pat_bound_idents vb.vb_pat

(* The module expression a [module X = ...] binding routes calls
   through: a plain alias gives the target path, a functor application
   gives the functor's path (every [X.f] then resolves into the functor
   body — all instantiations share it; see the imprecision note in the
   .mli). *)
let rec alias_head me =
  match me.mod_desc with
  | Tmod_ident (p, _) ->
      let n = Path.name p in
      if String.contains n '(' then None else Some n
  | Tmod_constraint (me, _, _, _) -> alias_head me
  | Tmod_apply (f, _, _) -> alias_head f
  | _ -> None

let add_def t u ~prefix ~vb =
  match binding_idents vb with
  | [] -> ()
  | id :: _ as ids ->
      let name = Ident.name id in
      let qual = if prefix = "" then name else prefix ^ "." ^ name in
      let d =
        {
          d_id = t.next_id;
          d_unit = u.u_dotted;
          d_file = u.u_file;
          d_qual = qual;
          d_name = name;
          d_display = u.u_short ^ "." ^ qual;
          d_canon = u.u_dotted ^ "." ^ qual;
          d_loc = vb.vb_pat.pat_loc;
          d_expr = vb.vb_expr;
          d_is_fun = is_function vb.vb_expr;
        }
      in
      t.next_id <- t.next_id + 1;
      u.u_defs <- d :: u.u_defs;
      List.iter (fun i -> u.u_idents <- (i, d) :: u.u_idents) ids

let rec walk_str t u ~prefix str =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.iter (fun vb -> add_def t u ~prefix ~vb) vbs
      | Tstr_module mb -> walk_mb t u ~prefix mb
      | Tstr_recmodule mbs -> List.iter (walk_mb t u ~prefix) mbs
      | Tstr_include incl -> walk_mod t u ~prefix incl.incl_mod
      | _ -> ())
    str.str_items

and walk_mb t u ~prefix mb =
  let name = match mb.mb_name.Location.txt with Some n -> n | None -> "_" in
  (match alias_head mb.mb_expr with
  | Some target when not (Hashtbl.mem u.u_aliases name) ->
      Hashtbl.add u.u_aliases name (dedot target)
  | _ -> ());
  let sub = if prefix = "" then name else prefix ^ "." ^ name in
  walk_mod t u ~prefix:sub mb.mb_expr

and walk_mod t u ~prefix me =
  match me.mod_desc with
  | Tmod_structure s -> walk_str t u ~prefix s
  | Tmod_functor (_, body) -> walk_mod t u ~prefix body
  | Tmod_constraint (me, _, _, _) -> walk_mod t u ~prefix me
  | Tmod_apply (f, arg, _) ->
      walk_mod t u ~prefix f;
      walk_mod t u ~prefix arg
  | _ -> ()

let create (m : Manifest.t) units_data =
  let t =
    {
      units = [];
      by_dotted = Hashtbl.create 64;
      by_file = Hashtbl.create 64;
      m_aliases = Hashtbl.create 16;
      next_id = 0;
    }
  in
  List.iter
    (fun (a : Manifest.cg_alias) ->
      Hashtbl.replace t.m_aliases (a.a_file, a.a_module) a.a_targets)
    m.cg_aliases;
  let units =
    List.map
      (fun (modname, file, str) ->
        let dotted = dedot modname in
        let u =
          {
            u_dotted = dotted;
            u_short = short_of_dotted dotted;
            u_file = file;
            u_aliases = Hashtbl.create 16;
            u_defs = [];
            u_idents = [];
          }
        in
        walk_str t u ~prefix:"" str;
        u.u_defs <- List.rev u.u_defs;
        Hashtbl.replace t.by_dotted dotted u;
        Hashtbl.replace t.by_file file u;
        u)
      units_data
  in
  { t with units }

let defs t = List.concat_map (fun u -> u.u_defs) t.units

let find t ~file ~name =
  match Hashtbl.find_opt t.by_file file with
  | None -> []
  | Some u -> List.filter (fun d -> d.d_name = name) u.u_defs

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

let rec drop n = function
  | _ :: tl when n > 0 -> drop (n - 1) tl
  | l -> l

let defs_exact u ~rm ~fname =
  let qual = String.concat "." (rm @ [ fname ]) in
  List.filter (fun d -> d.d_qual = qual) u.u_defs

(* Inside a positively identified target unit a bare-name fallback is
   sound: [include Make (X)] re-exports the functor body's bindings at
   the unit's toplevel without re-typing them. *)
let defs_loose u ~rm ~fname =
  match defs_exact u ~rm ~fname with
  | [] -> List.filter (fun d -> d.d_name = fname) u.u_defs
  | ds -> ds

(* Resolve a dotted module path + function name to definitions. [depth]
   bounds local-alias expansion (alias cycles cannot loop the linter). *)
let rec resolve_mods t u ~depth mods fname =
  if depth > 8 then []
  else
    match mods with
    | [] -> []
    | head :: rest -> (
        match Hashtbl.find_opt u.u_aliases head with
        | Some target ->
            resolve_mods t u ~depth:(depth + 1)
              (String.split_on_char '.' target @ rest)
              fname
        | None -> (
            let ncomp = List.length mods in
            let rec try_prefix j =
              if j = 0 then None
              else
                let prefix = String.concat "." (take j mods) in
                match Hashtbl.find_opt t.by_dotted prefix with
                | Some tu -> (
                    match defs_loose tu ~rm:(drop j mods) ~fname with
                    | [] -> try_prefix (j - 1)
                    | ds -> Some ds)
                | None -> try_prefix (j - 1)
            in
            match try_prefix ncomp with
            | Some ds -> ds
            | None -> (
                (* a submodule of the current unit, by exact path *)
                match defs_exact u ~rm:mods ~fname with
                | _ :: _ as ds -> ds
                | [] -> (
                    (* manifest hint: functor parameter / first-class
                       module / select facade *)
                    match Hashtbl.find_opt t.m_aliases (u.u_file, head) with
                    | Some targets ->
                        List.concat_map
                          (fun tgt ->
                            resolve_mods t u ~depth:(depth + 1)
                              (String.split_on_char '.' (dedot tgt) @ rest)
                              fname)
                          targets
                    | None -> []))))

let resolve t u (p : Path.t) =
  match p with
  | Path.Pident id ->
      List.filter_map
        (fun (i, d) -> if Ident.same i id then Some d else None)
        u.u_idents
  | _ -> (
      let name = dedot (Path.name p) in
      if String.contains name '(' then []
      else
        match List.rev (String.split_on_char '.' name) with
        | fname :: (_ :: _ as rev_mods) ->
            resolve_mods t u ~depth:0 (List.rev rev_mods) fname
        | _ -> [])

let collect_refs t u root =
  let acc = ref [] in
  let seen = Hashtbl.create 16 in
  let expr it e =
    (match e.exp_desc with
    | Texp_ident (p, _, _) ->
        List.iter
          (fun d ->
            if not (Hashtbl.mem seen d.d_id) then begin
              Hashtbl.add seen d.d_id ();
              acc := (d, e.exp_loc) :: !acc
            end)
          (resolve t u p)
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it root;
  List.rev !acc

let unit_of t d =
  match Hashtbl.find_opt t.by_dotted d.d_unit with
  | Some u -> u
  | None -> assert false

let refs t d = collect_refs t (unit_of t d) d.d_expr
let refs_in t d e = collect_refs t (unit_of t d) e
