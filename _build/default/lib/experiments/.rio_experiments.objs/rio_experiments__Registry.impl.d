lib/experiments/registry.ml: Ablations Bonnie_sata Exp Figure12 Figure7 Figure8 Iotlb_miss List Prefetchers Table1 Table2 Table3
