lib/experiments/figure12.ml: Exp Hashtbl List Printf Rio_device Rio_protect Rio_report Rio_sim Rio_workload
