lib/experiments/exp.mli:
