lib/experiments/table3.ml: Exp List Rio_device Rio_protect Rio_report Rio_workload
