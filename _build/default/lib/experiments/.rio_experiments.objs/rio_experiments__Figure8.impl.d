lib/experiments/figure8.ml: Exp Float List Printf Rio_device Rio_protect Rio_report Rio_sim Rio_workload
