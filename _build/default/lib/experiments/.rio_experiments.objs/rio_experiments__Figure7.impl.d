lib/experiments/figure7.ml: Exp List Printf Rio_device Rio_protect Rio_report Rio_sim Rio_workload
