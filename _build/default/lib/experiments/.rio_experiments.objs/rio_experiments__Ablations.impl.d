lib/experiments/ablations.ml: Array Exp List Printf Queue Result Rio_core Rio_iova Rio_memory Rio_protect Rio_report Rio_sim
