lib/experiments/prefetchers.ml: Array Bytes Exp Int64 List Printf Rio_device Rio_memory Rio_prefetch Rio_protect Rio_report Rio_sim
