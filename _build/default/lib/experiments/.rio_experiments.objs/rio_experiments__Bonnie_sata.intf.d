lib/experiments/bonnie_sata.mli: Exp
