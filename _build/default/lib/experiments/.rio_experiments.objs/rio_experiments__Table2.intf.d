lib/experiments/table2.mli: Exp Rio_protect Rio_report
