lib/experiments/table2.ml: Exp Figure12 List Printf Rio_protect Rio_report
