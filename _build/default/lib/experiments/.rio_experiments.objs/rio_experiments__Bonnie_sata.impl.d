lib/experiments/bonnie_sata.ml: Exp List Rio_protect Rio_report Rio_workload
