lib/experiments/figure7.mli: Exp
