lib/experiments/table1.ml: Exp List Printf Rio_device Rio_protect Rio_report Rio_sim Rio_workload
