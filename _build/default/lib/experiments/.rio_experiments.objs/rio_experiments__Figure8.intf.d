lib/experiments/figure8.mli: Exp
