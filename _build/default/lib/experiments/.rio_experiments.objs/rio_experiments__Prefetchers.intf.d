lib/experiments/prefetchers.mli: Exp
