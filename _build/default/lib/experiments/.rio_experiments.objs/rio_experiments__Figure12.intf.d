lib/experiments/figure12.mli: Exp Rio_protect Rio_report
