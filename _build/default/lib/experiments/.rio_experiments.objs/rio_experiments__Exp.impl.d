lib/experiments/exp.ml: Buffer List Printf
