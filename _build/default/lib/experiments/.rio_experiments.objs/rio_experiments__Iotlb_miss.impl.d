lib/experiments/iotlb_miss.ml: Array Exp Rio_core Rio_memory Rio_protect Rio_report Rio_sim
