lib/experiments/iotlb_miss.mli: Exp
