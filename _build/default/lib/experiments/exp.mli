(** Common shape of a reproduced experiment. *)

type t = {
  id : string;  (** e.g. "table1" *)
  title : string;
  body : string;  (** rendered tables *)
  notes : string list;  (** caveats, calibration notes *)
}

val render : t -> string
(** Header, body, and notes, ready to print. *)
