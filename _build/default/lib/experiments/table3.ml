module Mode = Rio_protect.Mode
module Paper = Rio_report.Paper
module Table = Rio_report.Table
module Compare = Rio_report.Compare
module Netperf = Rio_workload.Netperf
module Nic_profiles = Rio_device.Nic_profiles

let run ?(quick = false) () =
  let transactions = if quick then 500 else 5_000 in
  let t = Table.make ~headers:("nic" :: List.map Mode.name Mode.evaluated) in
  List.iter
    (fun (nic, profile) ->
      let cells =
        List.map
          (fun mode ->
            let r = Netperf.rr ~transactions ~mode ~profile () in
            match Paper.table3_rtt_us nic mode with
            | Some paper ->
                Compare.cell ~tolerance:0.15 ~paper ~measured:r.Netperf.rtt_us ()
            | None -> Table.cell_f r.Netperf.rtt_us)
          Mode.evaluated
      in
      Table.add_row t (Paper.nic_name nic :: cells))
    [ (Paper.Mlx, Nic_profiles.mlx); (Paper.Brcm, Nic_profiles.brcm) ];
  {
    Exp.id = "table3";
    title = "Netperf RR round-trip time in microseconds (paper/measured)";
    body = Table.render t;
    notes =
      [
        "the 'none' column is the calibrated wire+stack baseline; protected modes \
         add their measured per-transaction (un)mapping cycles";
      ];
  }
