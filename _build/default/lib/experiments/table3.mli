(** Table 3: Netperf RR round-trip times in microseconds for both NICs
    across the seven modes, against the paper's measurements. *)

val run : ?quick:bool -> unit -> Exp.t
