(** Figure 7: CPU cycles to process one packet, stacked by component
    (IOTLB invalidation / page table updates / IOVA (de)allocation /
    everything else), for the seven modes on mlx. *)

val run : ?quick:bool -> unit -> Exp.t
