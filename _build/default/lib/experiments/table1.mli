(** Table 1: average cycle breakdown of the (un)map driver functions
    under strict / strict+ / defer / defer+, measured from the netperf
    stream simulation on the mlx profile and compared against the
    paper's published cells. *)

val run : ?quick:bool -> unit -> Exp.t
