(** Experiment registry: every reproduced table and figure by id. *)

type runner = ?quick:bool -> unit -> Exp.t

val all : (string * runner) list
(** In the paper's order: table1, figure7, figure8, figure12, table2,
    table3, iotlb_miss, prefetchers, bonnie - plus the design-choice
    ablations. *)

val find : string -> runner option
val ids : string list
