(** Section 4 (Applicability): Bonnie++ sequential I/O on SATA drives.

    Strict IOMMU protection versus no IOMMU on a SATA HDD and a SATA
    SSD: the disk is the bottleneck, so the throughput is
    indistinguishable - the reason the rIOMMU does not target slow
    AHCI devices. *)

val run : ?quick:bool -> unit -> Exp.t
