type t = { id : string; title : string; body : string; notes : string list }

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "=== %s: %s ===\n\n" t.id t.title);
  Buffer.add_string buf t.body;
  if t.notes <> [] then begin
    Buffer.add_char buf '\n';
    List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n)) t.notes
  end;
  Buffer.contents buf
