(** Table 2: normalized performance - the rIOMMU variants' throughput
    and CPU divided by each other mode's, compared cell by cell against
    the paper's published ratios. *)

val ratios :
  ?quick:bool ->
  Rio_report.Paper.nic ->
  Rio_report.Paper.benchmark ->
  riommu:Rio_protect.Mode.t ->
  vs:Rio_protect.Mode.t ->
  float * float
(** (throughput ratio, cpu ratio) measured. *)

val run : ?quick:bool -> unit -> Exp.t
