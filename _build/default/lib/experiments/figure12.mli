(** Figure 12: throughput and CPU for both NICs, five benchmarks, seven
    modes.

    [compute] runs the full measurement grid (memoized per quick flag):
    the netperf stream simulation per (NIC, mode) provides the measured
    per-packet protection cost, from which stream/apache/memcached
    throughput and CPU follow via the §3.3 model; RR runs its own
    simulation. *)

type cell = { throughput : float; cpu : float; line_limited : bool }
(** [throughput] units depend on the benchmark: Gbps for stream,
    transactions/s for RR, requests/s for apache and memcached. *)

type mode_row = {
  mode : Rio_protect.Mode.t;
  protection_per_packet : float;
  cells : (Rio_report.Paper.benchmark * cell) list;
}

type grid = { nic : Rio_report.Paper.nic; rows : mode_row list }

val compute : ?quick:bool -> Rio_report.Paper.nic -> grid
(** [quick] shortens the simulations (for tests); default false. *)

val cell : grid -> Rio_protect.Mode.t -> Rio_report.Paper.benchmark -> cell
(** Raises [Not_found] for modes outside the evaluated seven. *)

val run : ?quick:bool -> unit -> Exp.t
