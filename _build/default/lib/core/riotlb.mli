(** rIOTLB: the rIOMMU's translation cache (Figure 9e).

    Holds {e at most one entry per rRING}. Every translation of a new
    ring entry overwrites the previous one in place - an implicit
    invalidation - so the OS only issues explicit invalidations at the
    end of unmap bursts. The entry also carries an optionally prefetched
    copy of the ring's next rPTE, fetched asynchronously (free of core
    and critical-path cost). *)

type entry = {
  mutable rentry : int;
  mutable rpte : Rpte.t;
  mutable next : Rpte.t option;  (** prefetched successor rPTE, if valid *)
}

type t

val create : clock:Rio_sim.Cycles.t -> cost:Rio_sim.Cost_model.t -> t

val find : t -> bdf:int -> rid:int -> entry option
(** Hardware lookup for the (device, ring) pair; charges the lookup cost
    and counts hit/miss. *)

val insert : t -> bdf:int -> rid:int -> entry -> unit
(** Install the ring's (single) entry, replacing any previous one. *)

val invalidate : t -> bdf:int -> rid:int -> unit
(** Explicit invalidation of the ring's entry; charges the full
    invalidation command cost (the paper busy-waits 2,150 cycles for
    this in its own evaluation). *)

val entries : t -> int
val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
