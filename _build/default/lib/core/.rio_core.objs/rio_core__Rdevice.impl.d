lib/core/rdevice.ml: Array List Rring
