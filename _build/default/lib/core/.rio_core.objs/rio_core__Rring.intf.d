lib/core/rring.mli: Rio_memory Rpte
