lib/core/rdevice.mli: Rio_memory Rring
