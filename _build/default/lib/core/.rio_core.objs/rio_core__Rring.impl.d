lib/core/rring.ml: Array Rio_memory Riova Rpte
