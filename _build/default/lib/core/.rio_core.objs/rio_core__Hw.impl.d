lib/core/hw.ml: Format Hashtbl Rdevice Rio_memory Rio_sim Riotlb Riova Rpte Rring
