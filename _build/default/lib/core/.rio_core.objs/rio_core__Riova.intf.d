lib/core/riova.mli: Format
