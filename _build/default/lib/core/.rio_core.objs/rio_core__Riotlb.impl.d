lib/core/riotlb.ml: Hashtbl Rio_sim Rpte
