lib/core/riotlb.mli: Rio_sim Rpte
