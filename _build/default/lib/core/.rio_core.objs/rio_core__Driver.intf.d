lib/core/driver.mli: Hw Rdevice Rio_memory Rio_sim Riova Rpte
