lib/core/rpte.ml: Format Int64 Rio_memory
