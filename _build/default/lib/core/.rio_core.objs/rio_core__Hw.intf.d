lib/core/hw.mli: Format Rdevice Rio_memory Rio_sim Riotlb Riova
