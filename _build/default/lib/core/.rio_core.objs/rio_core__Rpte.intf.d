lib/core/rpte.mli: Format Rio_memory
