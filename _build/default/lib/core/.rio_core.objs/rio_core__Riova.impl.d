lib/core/riova.ml: Format Int64
