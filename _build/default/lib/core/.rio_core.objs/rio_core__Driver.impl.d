lib/core/driver.ml: Hw Rdevice Rio_sim Riotlb Riova Rpte Rring
