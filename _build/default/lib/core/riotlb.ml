module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

type entry = { mutable rentry : int; mutable rpte : Rpte.t; mutable next : Rpte.t option }

type t = {
  table : (int * int, entry) Hashtbl.t;
  clock : Cycles.t;
  cost : Cost_model.t;
  mutable hits : int;
  mutable misses : int;
}

let create ~clock ~cost = { table = Hashtbl.create 16; clock; cost; hits = 0; misses = 0 }

let find t ~bdf ~rid =
  Cycles.charge t.clock t.cost.Cost_model.iotlb_lookup;
  match Hashtbl.find_opt t.table (bdf, rid) with
  | Some e ->
      t.hits <- t.hits + 1;
      Some e
  | None ->
      t.misses <- t.misses + 1;
      None

let insert t ~bdf ~rid entry = Hashtbl.replace t.table (bdf, rid) entry

let invalidate t ~bdf ~rid =
  Cycles.charge t.clock t.cost.Cost_model.iotlb_invalidate;
  Hashtbl.remove t.table (bdf, rid)

let entries t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
