(** The rIOMMU hardware logic (Figure 10).

    [rtranslate] is the entry point every DMA address goes through; the
    table walk, entry synchronization and prefetch routines mirror the
    paper's pseudocode. Out-of-order accesses to valid rPTEs are legal -
    they merely miss the prefetched [next] and pay a walk (§4,
    Applicability). All violations raise I/O page faults; drivers pin
    buffers, so faults indicate errant devices or driver bugs and OSes
    typically reinitialize the device. *)

type fault =
  | Unknown_device  (** bdf has no rDEVICE attached *)
  | Bad_ring  (** rIOVA.rid out of range *)
  | Bad_entry  (** rIOVA.rentry out of range *)
  | Invalid_entry  (** rPTE valid bit clear *)
  | Offset_out_of_range  (** rIOVA.offset >= rPTE.size *)
  | Direction_denied  (** DMA direction not permitted by rPTE.dir *)

val pp_fault : Format.formatter -> fault -> unit

type t

val create : clock:Rio_sim.Cycles.t -> cost:Rio_sim.Cost_model.t -> t

val attach : t -> Rdevice.t -> unit
(** Install the device's rDEVICE (context-table entry). *)

val detach : t -> rid:int -> unit
val riotlb : t -> Riotlb.t

val rtranslate :
  t -> bdf:int -> iova:Riova.t -> write:bool -> (Rio_memory.Addr.phys, fault) result
(** Translate one DMA address; [write] = device writes memory. *)

val faults : t -> int
val walks : t -> int
(** Flat-table walks performed (rIOTLB misses and failed prefetches). *)

val prefetch_hits : t -> int
(** Entry synchronizations satisfied by the prefetched next rPTE. *)
