module Addr = Rio_memory.Addr
module Coherency = Rio_memory.Coherency
module Frame_allocator = Rio_memory.Frame_allocator

let bytes_per_rpte = 16

type slot = { mutable cpu : Rpte.t; mutable hw : Rpte.t }

type t = {
  base : Addr.phys;
  slots : slot array;
  coherency : Coherency.t;
  mutable tail : int;
  mutable nmapped : int;
}

let create ~size ~frames ~coherency =
  if size < 1 || size > 1 lsl Riova.rentry_bits then invalid_arg "Rring.create: size";
  let table_bytes = size * bytes_per_rpte in
  let nframes = (table_bytes + Addr.page_size - 1) / Addr.page_size in
  let base =
    match Frame_allocator.alloc_contiguous frames ~frames:nframes with
    | Some b -> b
    | None -> failwith "Rring.create: out of physical memory for flat table"
  in
  {
    base;
    slots = Array.init size (fun _ -> { cpu = Rpte.invalid; hw = Rpte.invalid });
    coherency;
    tail = 0;
    nmapped = 0;
  }

let size t = Array.length t.slots
let tail t = t.tail
let nmapped t = t.nmapped

let set_tail t v =
  if v < 0 || v >= size t then invalid_arg "Rring.set_tail";
  t.tail <- v

let incr_nmapped t = t.nmapped <- t.nmapped + 1
let decr_nmapped t = t.nmapped <- t.nmapped - 1
let get_cpu t i = t.slots.(i).cpu
let get_hw t i = t.slots.(i).hw
let slot_addr t i = Addr.add t.base (i * bytes_per_rpte)

let set_cpu t i v =
  t.slots.(i).cpu <- v;
  Coherency.cpu_write t.coherency (slot_addr t i);
  if Coherency.is_coherent t.coherency then t.slots.(i).hw <- v

let sync t i =
  Coherency.sync_mem t.coherency (slot_addr t i);
  t.slots.(i).hw <- t.slots.(i).cpu
