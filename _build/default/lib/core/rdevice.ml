type t = { rid : int; rings : Rring.t array }

let create ~rid ~ring_sizes ~frames ~coherency =
  if rid < 0 || rid > 0xFFFF then invalid_arg "Rdevice.create: rid";
  if ring_sizes = [] then invalid_arg "Rdevice.create: no rings";
  {
    rid;
    rings =
      Array.of_list
        (List.map (fun size -> Rring.create ~size ~frames ~coherency) ring_sizes);
  }

let rid t = t.rid
let ring_count t = Array.length t.rings

let ring t i =
  if i < 0 || i >= Array.length t.rings then invalid_arg "Rdevice.ring: rid range";
  t.rings.(i)

let ring_opt t i =
  if i < 0 || i >= Array.length t.rings then None else Some t.rings.(i)
