module Addr = Rio_memory.Addr
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

type fault =
  | Unknown_device
  | Bad_ring
  | Bad_entry
  | Invalid_entry
  | Offset_out_of_range
  | Direction_denied

let pp_fault fmt f =
  Format.pp_print_string fmt
    (match f with
    | Unknown_device -> "unknown device"
    | Bad_ring -> "ring id out of range"
    | Bad_entry -> "ring entry out of range"
    | Invalid_entry -> "invalid rPTE"
    | Offset_out_of_range -> "offset out of range"
    | Direction_denied -> "direction denied")

type t = {
  devices : (int, Rdevice.t) Hashtbl.t;
  riotlb : Riotlb.t;
  clock : Cycles.t;
  cost : Cost_model.t;
  mutable faults : int;
  mutable walks : int;
  mutable prefetch_hits : int;
}

let create ~clock ~cost =
  { devices = Hashtbl.create 8; riotlb = Riotlb.create ~clock ~cost; clock; cost;
    faults = 0; walks = 0; prefetch_hits = 0 }

let attach t dev = Hashtbl.replace t.devices (Rdevice.rid dev) dev
let detach t ~rid = Hashtbl.remove t.devices rid
let riotlb t = t.riotlb

(* rprefetch (Figure 10, bottom/right): asynchronously copy the ring's
   next rPTE into the entry if it is valid. Asynchronous, hence free. *)
let rprefetch ring e =
  let size = Rring.size ring in
  let next = (e.Riotlb.rentry + 1) mod size in
  let npte = Rring.get_hw ring next in
  e.Riotlb.next <- (if size > 1 && npte.Rpte.valid then Some npte else None)

(* rtable_walk (Figure 10, top/right): validate the rIOVA against the
   flat-table bounds and the rPTE valid bit (reading the walker-visible
   views), then build a fresh rIOTLB entry. Two DRAM references: the
   rRING descriptor and the rPTE. *)
let rtable_walk t dev (iova : Riova.t) =
  t.walks <- t.walks + 1;
  Cycles.charge t.clock (2 * t.cost.Cost_model.io_walk_ref);
  match Rdevice.ring_opt dev iova.Riova.rid with
  | None -> Error Bad_ring
  | Some ring ->
      if iova.Riova.rentry >= Rring.size ring then Error Bad_entry
      else begin
        let rpte = Rring.get_hw ring iova.Riova.rentry in
        if not rpte.Rpte.valid then Error Invalid_entry
        else begin
          let e = { Riotlb.rentry = iova.Riova.rentry; rpte; next = None } in
          rprefetch ring e;
          Ok e
        end
      end

(* riotlb_entry_sync (Figure 10, bottom/left): move the ring's single
   entry to the rIOVA's rPTE - from the prefetched copy when the access
   is the expected sequential successor, else via a table walk. *)
let riotlb_entry_sync t dev (iova : Riova.t) (e : Riotlb.entry) =
  match Rdevice.ring_opt dev iova.Riova.rid with
  | None -> Error Bad_ring
  | Some ring -> (
      let next = (e.Riotlb.rentry + 1) mod Rring.size ring in
      match e.Riotlb.next with
      | Some npte when npte.Rpte.valid && iova.Riova.rentry = next ->
          t.prefetch_hits <- t.prefetch_hits + 1;
          e.Riotlb.rpte <- npte;
          e.Riotlb.rentry <- next;
          e.Riotlb.next <- None;
          rprefetch ring e;
          Ok ()
      | Some _ | None -> (
          match rtable_walk t dev iova with
          | Ok fresh ->
              e.Riotlb.rentry <- fresh.Riotlb.rentry;
              e.Riotlb.rpte <- fresh.Riotlb.rpte;
              e.Riotlb.next <- fresh.Riotlb.next;
              Ok ()
          | Error f -> Error f))

let fault t f =
  t.faults <- t.faults + 1;
  Error f

(* rtranslate (Figure 10, top/left). *)
let rtranslate t ~bdf ~iova ~write =
  match Hashtbl.find_opt t.devices bdf with
  | None -> fault t Unknown_device
  | Some dev -> (
      let entry =
        match Riotlb.find t.riotlb ~bdf ~rid:iova.Riova.rid with
        | Some e ->
            if e.Riotlb.rentry <> iova.Riova.rentry then
              match riotlb_entry_sync t dev iova e with
              | Ok () -> Ok e
              | Error f -> Error f
            else Ok e
        | None -> (
            match rtable_walk t dev iova with
            | Ok e ->
                Riotlb.insert t.riotlb ~bdf ~rid:iova.Riova.rid e;
                Ok e
            | Error f -> Error f)
      in
      match entry with
      | Error f -> fault t f
      | Ok e ->
          let rpte = e.Riotlb.rpte in
          if iova.Riova.offset >= rpte.Rpte.size then fault t Offset_out_of_range
          else if not (Rpte.permits rpte ~write) then fault t Direction_denied
          else Ok (Addr.add rpte.Rpte.phys_addr iova.Riova.offset))

let faults t = t.faults
let walks t = t.walks
let prefetch_hits t = t.prefetch_hits
