(** rPTE: the rIOMMU's flat-table page-table entry (Figure 9c).

    Unlike the baseline IOMMU's page-granular PTE, an rPTE carries an
    arbitrary byte-granular [phys_addr]/[size] window plus a DMA
    direction, closing the same-page vulnerability of §4: the device can
    touch exactly the bytes of its target buffer, nothing else. *)

type dir =
  | To_memory  (** device writes memory (receive) *)
  | From_memory  (** device reads memory (transmit) *)
  | Bidirectional

type t = {
  phys_addr : Rio_memory.Addr.phys;
  size : int;  (** bytes; any value up to 2^30 *)
  dir : dir;
  valid : bool;
}

val invalid : t
(** The all-zero entry rings start with. *)

val make : phys_addr:Rio_memory.Addr.phys -> size:int -> dir:dir -> t
(** A valid entry. Raises [Invalid_argument] if [size] is not in
    [\[1, 2^30)]. *)

val permits : t -> write:bool -> bool
(** Whether a DMA in the given direction (write = into memory) is
    allowed. Invalid entries permit nothing. *)

val size_bits : int
(** 30: the rIOVA offset and rPTE size fields' width. *)

val encode : t -> int64 * int64
(** The 128-bit hardware layout as two words: (phys_addr,
    size|dir|valid packed). *)

val decode : int64 * int64 -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
