type t = { offset : int; rentry : int; rid : int }

let offset_bits = 30
let rentry_bits = 18
let rid_bits = 16

let pack ~offset ~rentry ~rid =
  if offset < 0 || offset lsr offset_bits <> 0 then invalid_arg "Riova.pack: offset";
  if rentry < 0 || rentry lsr rentry_bits <> 0 then invalid_arg "Riova.pack: rentry";
  if rid < 0 || rid lsr rid_bits <> 0 then invalid_arg "Riova.pack: rid";
  { offset; rentry; rid }

let with_offset t offset = pack ~offset ~rentry:t.rentry ~rid:t.rid

let encode t =
  let open Int64 in
  logor
    (shift_left (of_int t.rid) (offset_bits + rentry_bits))
    (logor (shift_left (of_int t.rentry) offset_bits) (of_int t.offset))

let decode bits =
  let open Int64 in
  let mask n = sub (shift_left 1L n) 1L in
  pack
    ~offset:(to_int (logand bits (mask offset_bits)))
    ~rentry:(to_int (logand (shift_right_logical bits offset_bits) (mask rentry_bits)))
    ~rid:(to_int (logand (shift_right_logical bits (offset_bits + rentry_bits)) (mask rid_bits)))

let equal a b = a.offset = b.offset && a.rentry = b.rentry && a.rid = b.rid
let pp fmt t = Format.fprintf fmt "rid:%d[%d]+%d" t.rid t.rentry t.offset
