module Addr = Rio_memory.Addr

type dir = To_memory | From_memory | Bidirectional

type t = { phys_addr : Addr.phys; size : int; dir : dir; valid : bool }

let size_bits = 30
let max_size = 1 lsl size_bits

let invalid =
  { phys_addr = Addr.phys_of_int 0; size = 0; dir = Bidirectional; valid = false }

let make ~phys_addr ~size ~dir =
  if size <= 0 || size >= max_size then invalid_arg "Rpte.make: size";
  { phys_addr; size; dir; valid = true }

let permits t ~write =
  t.valid
  &&
  match (t.dir, write) with
  | Bidirectional, _ -> true
  | To_memory, true -> true
  | From_memory, false -> true
  | To_memory, false | From_memory, true -> false

let dir_code = function To_memory -> 1 | From_memory -> 2 | Bidirectional -> 3

let dir_of_code = function
  | 1 -> To_memory
  | 2 -> From_memory
  | 3 -> Bidirectional
  | _ -> invalid_arg "Rpte.dir_of_code"

let encode t =
  let word0 = Int64.of_int (Addr.to_int t.phys_addr) in
  let word1 =
    Int64.logor
      (Int64.of_int (t.size lsl 3))
      (Int64.of_int ((dir_code t.dir lsl 1) lor if t.valid then 1 else 0))
  in
  (word0, word1)

let decode (word0, word1) =
  let valid = Int64.logand word1 1L <> 0L in
  if not valid then invalid
  else begin
    let bits = Int64.to_int word1 in
    {
      phys_addr = Addr.phys_of_int (Int64.to_int word0);
      size = bits lsr 3;
      dir = dir_of_code ((bits lsr 1) land 3);
      valid = true;
    }
  end

let equal a b =
  Addr.equal a.phys_addr b.phys_addr
  && a.size = b.size && a.dir = b.dir && a.valid = b.valid

let pp fmt t =
  if not t.valid then Format.pp_print_string fmt "<invalid>"
  else
    Format.fprintf fmt "%a+%d %s" Addr.pp t.phys_addr t.size
      (match t.dir with
      | To_memory -> "rx"
      | From_memory -> "tx"
      | Bidirectional -> "rw")
