(** rIOVA: the rIOMMU's I/O virtual address format (Figure 9d).

    A 64-bit value packing a ring id (which rRING flat table), a ring
    entry index (which rPTE), and a byte offset added to the rPTE's
    physical base. The driver returns rIOVAs with offset 0; callers may
    adjust the offset freely within the rPTE's size. *)

type t = private { offset : int; rentry : int; rid : int }

val offset_bits : int
(** 30 *)

val rentry_bits : int
(** 18 *)

val rid_bits : int
(** 16 *)

val pack : offset:int -> rentry:int -> rid:int -> t
(** Raises [Invalid_argument] when a field exceeds its width. *)

val with_offset : t -> int -> t
(** Same ring entry, different offset (§4: "callers of map can later
    manipulate the offset as they please"). *)

val encode : t -> int64
(** Hardware 64-bit layout: [rid:16 | rentry:18 | offset:30]. *)

val decode : int64 -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
