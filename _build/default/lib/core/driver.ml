module Breakdown = Rio_sim.Breakdown
module Cycles = Rio_sim.Cycles
module Cost_model = Rio_sim.Cost_model

type t = {
  device : Rdevice.t;
  hw : Hw.t;
  clock : Cycles.t;
  cost : Cost_model.t;
  bm : Breakdown.t;
  bu : Breakdown.t;
}

let create ~device ~hw ~clock ~cost =
  { device; hw; clock; cost; bm = Breakdown.create ~clock; bu = Breakdown.create ~clock }

let map t ~rid ~phys ~size ~dir =
  Breakdown.record_call t.bm;
  Breakdown.phase t.bm Other (fun () ->
      Cycles.charge t.clock t.cost.Cost_model.call_overhead);
  let ring = Rdevice.ring t.device rid in
  if Rring.nmapped ring = Rring.size ring then Error `Overflow
  else begin
    (* "IOVA allocation" is two integer updates on the ring tail. *)
    let slot =
      Breakdown.phase t.bm Iova_alloc (fun () ->
          Cycles.charge t.clock (2 * t.cost.Cost_model.mem_ref_cached);
          let slot = Rring.tail ring in
          Rring.set_tail ring ((slot + 1) mod Rring.size ring);
          Rring.incr_nmapped ring;
          slot)
    in
    (* Fill the rPTE and publish it to the walker (sync_mem). *)
    Breakdown.phase t.bm Page_table (fun () ->
        Cycles.charge t.clock (4 * t.cost.Cost_model.mem_ref_cached);
        Rring.set_cpu ring slot (Rpte.make ~phys_addr:phys ~size ~dir);
        Rring.sync ring slot);
    Ok (Riova.pack ~offset:0 ~rentry:slot ~rid)
  end

let unmap t iova ~end_of_burst =
  Breakdown.record_call t.bu;
  Breakdown.phase t.bu Other (fun () ->
      Cycles.charge t.clock t.cost.Cost_model.call_overhead);
  let ring = Rdevice.ring t.device iova.Riova.rid in
  let slot = iova.Riova.rentry in
  let current = Rring.get_cpu ring slot in
  if not current.Rpte.valid then Error `Not_mapped
  else begin
    Breakdown.phase t.bu Page_table (fun () ->
        Cycles.charge t.clock t.cost.Cost_model.mem_ref_cached;
        Rring.set_cpu ring slot Rpte.invalid;
        Rring.sync ring slot);
    Breakdown.phase t.bu Iova_free (fun () ->
        Cycles.charge t.clock t.cost.Cost_model.mem_ref_cached;
        Rring.decr_nmapped ring);
    if end_of_burst then
      Breakdown.phase t.bu Iotlb_inv (fun () ->
          Riotlb.invalidate (Hw.riotlb t.hw) ~bdf:(Rdevice.rid t.device)
            ~rid:iova.Riova.rid);
    Ok ()
  end

let map_breakdown t = t.bm
let unmap_breakdown t = t.bu
let nmapped t ~rid = Rring.nmapped (Rdevice.ring t.device rid)
