(** rRING: one flat page table (Figure 9b).

    An array of rPTEs backed by physically-contiguous memory (so
    cacheline flushes have real addresses), plus the software-only [tail]
    and [nmapped] fields the driver uses for allocation. Each rPTE slot
    keeps a CPU view and a hardware (walker) view; on a non-coherent
    system the walker view catches up only at [sync] - exactly the
    riommu vs riommu- distinction. *)

type t

val create :
  size:int ->
  frames:Rio_memory.Frame_allocator.t ->
  coherency:Rio_memory.Coherency.t ->
  t
(** A ring of [size] invalid rPTEs. [size] must be in [\[1, 2^18\]].
    Raises [Failure] if backing frames cannot be allocated. *)

val size : t -> int
val tail : t -> int
val nmapped : t -> int
val set_tail : t -> int -> unit
val incr_nmapped : t -> unit
val decr_nmapped : t -> unit

val get_cpu : t -> int -> Rpte.t
(** The OS's view of slot [i]. *)

val get_hw : t -> int -> Rpte.t
(** The walker's view of slot [i] (stale until synced when
    non-coherent). *)

val set_cpu : t -> int -> Rpte.t -> unit
(** CPU store to slot [i]: updates the CPU view; visible to the walker
    immediately only on a coherent system. *)

val sync : t -> int -> unit
(** The paper's [sync_mem] for slot [i]: barrier (+ flush + barrier when
    non-coherent, costs charged) and publish the CPU view to the
    walker. *)

val slot_addr : t -> int -> Rio_memory.Addr.phys
(** Physical address of slot [i] (16 bytes per rPTE). *)
