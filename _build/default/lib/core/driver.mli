(** The rIOMMU OS driver: map and unmap (Figure 11).

    [map] allocates the ring's tail rPTE (two integer updates - the
    whole "IOVA allocation"), fills it, publishes it with [sync_mem],
    and returns the packed rIOVA. [unmap] clears the valid bit,
    publishes, and - only when the caller marks the end of an unmap
    burst - issues the single rIOTLB invalidation that covers the whole
    burst.

    The coherent/non-coherent distinction (riommu vs riommu-) lives in
    the {!Rio_memory.Coherency.t} the rings were created with: sync_mem
    costs one barrier when coherent, barrier+flush+barrier when not.

    Phases are attributed to {!Rio_sim.Breakdown} components using the
    same categories as the baseline driver so Figure 7's stacked bars
    compare like with like. *)

type t

val create :
  device:Rdevice.t ->
  hw:Hw.t ->
  clock:Rio_sim.Cycles.t ->
  cost:Rio_sim.Cost_model.t ->
  t
(** The device must already be (or must later be) attached to [hw]; the
    driver only needs [hw] for rIOTLB invalidations. *)

val map :
  t ->
  rid:int ->
  phys:Rio_memory.Addr.phys ->
  size:int ->
  dir:Rpte.dir ->
  (Riova.t, [ `Overflow ]) result
(** Map [size] bytes at [phys] (byte-granular - no page alignment
    required) into ring [rid]. [`Overflow] means the ring has no free
    rPTE: legal, the driver must slow down (§4). *)

val unmap : t -> Riova.t -> end_of_burst:bool -> (unit, [ `Not_mapped ]) result
(** Invalidate the rIOVA's rPTE. Set [end_of_burst] on the last unmap of
    a completion burst to trigger the (single) rIOTLB invalidation. *)

val map_breakdown : t -> Rio_sim.Breakdown.t
val unmap_breakdown : t -> Rio_sim.Breakdown.t

val nmapped : t -> rid:int -> int
(** Live mappings in ring [rid]. *)
