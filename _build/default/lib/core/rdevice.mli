(** rDEVICE: the per-device root of the rIOMMU structures (Figure 9a).

    Holds the array of rRING flat tables for one bus/device/function.
    The context table points here; each ring buffer of the I/O device is
    backed by two rRINGs (§4): one for the descriptor-ring pages mapped
    at initialization, one for the transient target-buffer mappings. *)

type t

val create :
  rid:int ->
  ring_sizes:int list ->
  frames:Rio_memory.Frame_allocator.t ->
  coherency:Rio_memory.Coherency.t ->
  t
(** One rRING per element of [ring_sizes], indexed in order. [rid] is
    the device's 16-bit request identifier. *)

val rid : t -> int
val ring_count : t -> int

val ring : t -> int -> Rring.t
(** Raises [Invalid_argument] on out-of-range ring id (the hardware path
    instead faults; see {!Hw}). *)

val ring_opt : t -> int -> Rring.t option
