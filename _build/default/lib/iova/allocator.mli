(** Uniform interface over the two IOVA allocators.

    The baseline IOMMU driver is parameterized by an allocator: the
    baseline Linux allocator gives the strict / defer modes, the
    constant-time allocator gives strict+ / defer+. *)

type t

type kind =
  | Linux  (** baseline Linux allocator (strict / defer) *)
  | Fast  (** constant-time allocator (strict+ / defer+) *)

val create :
  kind:kind ->
  limit_pfn:int ->
  clock:Rio_sim.Cycles.t ->
  cost:Rio_sim.Cost_model.t ->
  t

val kind : t -> kind

val alloc : t -> size:int -> (int, [ `Exhausted ]) result
(** Allocate [size] IOVA pages; returns the first pfn. *)

val find : t -> pfn:int -> Rbtree.node option
(** Locate the live range containing [pfn]. *)

val free : t -> Rbtree.node -> unit
val live : t -> int
