lib/iova/fast_allocator.ml: Hashtbl Rbtree Rio_sim
