lib/iova/allocator.mli: Rbtree Rio_sim
