lib/iova/allocator.ml: Fast_allocator Linux_allocator
