lib/iova/fast_allocator.mli: Rbtree Rio_sim
