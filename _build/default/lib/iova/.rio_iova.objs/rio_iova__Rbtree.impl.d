lib/iova/rbtree.ml:
