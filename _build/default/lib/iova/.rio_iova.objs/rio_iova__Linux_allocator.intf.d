lib/iova/linux_allocator.mli: Rbtree Rio_sim
