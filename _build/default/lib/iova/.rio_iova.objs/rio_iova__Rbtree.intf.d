lib/iova/rbtree.mli:
