lib/iova/linux_allocator.ml: Rbtree Rio_sim
