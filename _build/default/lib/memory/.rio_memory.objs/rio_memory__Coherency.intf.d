lib/memory/coherency.mli: Addr Rio_sim
