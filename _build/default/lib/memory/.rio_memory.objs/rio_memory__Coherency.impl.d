lib/memory/coherency.ml: Addr Hashtbl Rio_sim
