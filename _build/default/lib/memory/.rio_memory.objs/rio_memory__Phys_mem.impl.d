lib/memory/phys_mem.ml: Addr Bytes Hashtbl
