lib/memory/addr.ml: Format Int
