lib/memory/dma_buffer.ml: Addr Frame_allocator List
