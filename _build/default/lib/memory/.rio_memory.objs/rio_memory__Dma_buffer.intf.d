lib/memory/dma_buffer.mli: Addr Frame_allocator
