lib/memory/frame_allocator.ml: Addr Hashtbl
