(** Physical frame allocator.

    Hands out 4 KB frames from a bounded physical memory. Freed frames are
    recycled LIFO, which (as on a real machine under load) makes reuse of
    recently-unmapped frames the common case — exactly the situation the
    deferred IOMMU mode's vulnerability window exposes. *)

type t

val create : total_frames:int -> t
(** A memory of [total_frames] 4 KB frames starting at physical 0. *)

val alloc : t -> Addr.phys option
(** Allocate one frame; [None] when physical memory is exhausted. *)

val alloc_exn : t -> Addr.phys
(** Like {!alloc} but raises [Failure] on exhaustion. *)

val alloc_contiguous : t -> frames:int -> Addr.phys option
(** Allocate [frames] physically contiguous frames (for rings and page
    tables). Only draws from the never-allocated region, so it can fail
    even when enough fragmented frames are free. *)

val free : t -> Addr.phys -> unit
(** Return a frame. Raises [Invalid_argument] if the address is not
    page-aligned or was not allocated. *)

val allocated : t -> int
(** Frames currently live. *)

val total : t -> int
