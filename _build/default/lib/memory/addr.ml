let page_size = 4096
let page_shift = 12
let cacheline_size = 64

type phys = int

let phys_of_int a =
  if a < 0 then invalid_arg "Addr.phys_of_int: negative";
  a

let to_int a = a
let pfn a = a lsr page_shift
let of_pfn p = p lsl page_shift
let page_offset a = a land (page_size - 1)
let add a off = phys_of_int (a + off)
let line_of a = a / cacheline_size
let is_page_aligned a = page_offset a = 0
let pp fmt a = Format.fprintf fmt "0x%08x" a
let equal = Int.equal
let compare = Int.compare
