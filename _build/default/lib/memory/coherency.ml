type t = {
  coherent : bool;
  cost : Rio_sim.Cost_model.t;
  clock : Rio_sim.Cycles.t;
  dirty : (int, unit) Hashtbl.t;
}

let create ~coherent ~cost ~clock =
  { coherent; cost; clock; dirty = Hashtbl.create 64 }

let is_coherent t = t.coherent

let cpu_write t addr =
  if not t.coherent then Hashtbl.replace t.dirty (Addr.line_of addr) ()

let flush_line t addr =
  if not t.coherent then begin
    Rio_sim.Cycles.charge t.clock t.cost.Rio_sim.Cost_model.cacheline_flush;
    Hashtbl.remove t.dirty (Addr.line_of addr)
  end

let barrier t = Rio_sim.Cycles.charge t.clock t.cost.Rio_sim.Cost_model.barrier

let sync_mem t addr =
  if not t.coherent then begin
    barrier t;
    flush_line t addr
  end;
  barrier t

let walker_sees_fresh t addr =
  t.coherent || not (Hashtbl.mem t.dirty (Addr.line_of addr))

let dirty_lines t = Hashtbl.length t.dirty
