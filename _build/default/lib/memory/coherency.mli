(** CPU-cache / IOMMU-walker coherency model.

    On machines where the I/O page walker is not coherent with the CPU
    caches (the common case on the paper's testbed), a page-table or rPTE
    update written by the CPU is invisible to the IOMMU until the driver
    issues a barrier and a cacheline flush. This module makes that
    observable: CPU writes to tracked structures mark their cachelines
    dirty; a walker read of a dirty line sees stale data until the line is
    flushed. Cycle costs of barriers and flushes are charged here, which is
    precisely the riommu vs riommu- difference the paper measures. *)

type t

val create :
  coherent:bool -> cost:Rio_sim.Cost_model.t -> clock:Rio_sim.Cycles.t -> t

val is_coherent : t -> bool

val cpu_write : t -> Addr.phys -> unit
(** Record that the CPU stored to the cacheline containing the address.
    No cycle cost (the store itself is part of the structure update). *)

val flush_line : t -> Addr.phys -> unit
(** Flush the cacheline containing the address; charges the flush cost.
    No-op (and no cost) on a coherent system. *)

val barrier : t -> unit
(** Full memory barrier; always charged (both sync_mem variants in the
    paper's Figure 11 execute at least one barrier). *)

val sync_mem : t -> Addr.phys -> unit
(** The paper's [sync_mem] (Figure 11): on a non-coherent system, a
    barrier, a cacheline flush, then a second barrier; on a coherent
    system a single barrier. *)

val walker_sees_fresh : t -> Addr.phys -> bool
(** Whether an IOMMU table walk reading this address observes the latest
    CPU write. Always [true] on a coherent system. *)

val dirty_lines : t -> int
(** Number of lines written but not yet flushed (0 when coherent). *)
