(** Physical addresses and page arithmetic.

    Addresses are 48-bit values carried in OCaml [int]s (63-bit native ints
    are ample). Pages are the x86 4 KB pages the baseline IOMMU protects;
    cachelines are 64 bytes. *)

val page_size : int
(** 4096. *)

val page_shift : int
(** 12. *)

val cacheline_size : int
(** 64. *)

type phys = private int
(** A physical byte address. *)

val phys_of_int : int -> phys
(** Raises [Invalid_argument] on negative addresses. *)

val to_int : phys -> int
val pfn : phys -> int
(** Physical frame number: [addr / page_size]. *)

val of_pfn : int -> phys
(** First byte of frame [pfn]. *)

val page_offset : phys -> int
(** [addr mod page_size]. *)

val add : phys -> int -> phys
(** Byte offset arithmetic. *)

val line_of : phys -> int
(** Cacheline index: [addr / cacheline_size]. *)

val is_page_aligned : phys -> bool
val pp : Format.formatter -> phys -> unit
(** Hex rendering, e.g. [0x00012000]. *)

val equal : phys -> phys -> bool
val compare : phys -> phys -> int
