type t = { frames : (int, bytes) Hashtbl.t }

let create () = { frames = Hashtbl.create 1024 }

let frame t pfn =
  match Hashtbl.find_opt t.frames pfn with
  | Some b -> b
  | None ->
      let b = Bytes.make Addr.page_size '\000' in
      Hashtbl.add t.frames pfn b;
      b

(* Apply [f frame_bytes offset_in_frame span_len data_offset] over every
   frame the range [addr, addr+len) touches. *)
let iter_span t addr len f =
  let pos = ref 0 in
  while !pos < len do
    let a = Addr.add addr !pos in
    let pfn = Addr.pfn a in
    let off = Addr.page_offset a in
    let span = min (len - !pos) (Addr.page_size - off) in
    f (frame t pfn) off span !pos;
    pos := !pos + span
  done

let write t addr data =
  iter_span t addr (Bytes.length data) (fun fr off span dpos ->
      Bytes.blit data dpos fr off span)

let read t addr len =
  let out = Bytes.make len '\000' in
  iter_span t addr len (fun fr off span dpos -> Bytes.blit fr off out dpos span);
  out

let write_u64 t addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write t addr b

let read_u64 t addr = Bytes.get_int64_le (read t addr 8) 0

let fill t addr len c =
  iter_span t addr len (fun fr off span _ -> Bytes.fill fr off span c)

let touched_frames t = Hashtbl.length t.frames
