(** Byte-addressable sparse physical memory.

    Devices DMA real bytes into this store and the tests verify data
    integrity end to end (a packet received through the rIOMMU translation
    path lands byte-identical in the target buffer). Frames materialize
    lazily on first touch. *)

type t

val create : unit -> t

val write : t -> Addr.phys -> bytes -> unit
(** Copy [bytes] into memory starting at the address; may cross frames. *)

val read : t -> Addr.phys -> int -> bytes
(** Read [len] bytes starting at the address. Untouched memory reads as
    zero. *)

val write_u64 : t -> Addr.phys -> int64 -> unit
val read_u64 : t -> Addr.phys -> int64
val fill : t -> Addr.phys -> int -> char -> unit
(** [fill t addr len c] sets [len] bytes to [c]. *)

val touched_frames : t -> int
(** Number of frames that have been materialized (for tests). *)
