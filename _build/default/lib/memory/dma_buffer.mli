(** DMA target buffers.

    A target buffer is the physical memory region a descriptor's DMA reads
    from or writes to. The NIC drivers in the paper use either one buffer
    per packet (brcm) or two — header and body — (mlx), and buffers are
    frequently sub-page: the baseline IOMMU can only protect them at page
    granularity, while the rIOMMU protects the exact [base, base+size)
    byte range. *)

type t = private {
  base : Addr.phys;
  size : int;
  mutable pinned : bool;
}

val alloc : Frame_allocator.t -> size:int -> t option
(** Allocate a buffer of [size] bytes, page-aligned, spanning as many
    frames as needed. [None] on exhaustion. The buffer starts pinned
    (drivers pin target buffers; DMAs are not restartable, §2.2). *)

val alloc_sub_page : Frame_allocator.t -> offsets:int list -> size:int ->
  t list option
(** Carve several [size]-byte buffers out of a single fresh frame at the
    given page offsets (they must fit and not overlap). This is the
    "different target buffers on the same page" situation of §4 that the
    baseline IOMMU cannot isolate. *)

val free : Frame_allocator.t -> t -> unit
(** Unpin and release the buffer's frames. Sub-page buffers sharing a
    frame must be freed via {!free_shared} exactly once per frame. *)

val free_shared : Frame_allocator.t -> t list -> unit
(** Free sub-page buffers that share one frame. *)

val pin : t -> unit
val unpin : t -> unit
val frames : t -> int
(** Number of frames the buffer spans. *)
