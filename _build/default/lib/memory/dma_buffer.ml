type t = { base : Addr.phys; size : int; mutable pinned : bool }

let frames_for size = (size + Addr.page_size - 1) / Addr.page_size

let alloc fa ~size =
  if size <= 0 then invalid_arg "Dma_buffer.alloc: size";
  let n = frames_for size in
  let base =
    if n = 1 then Frame_allocator.alloc fa
    else Frame_allocator.alloc_contiguous fa ~frames:n
  in
  match base with
  | None -> None
  | Some base -> Some { base; size; pinned = true }

let alloc_sub_page fa ~offsets ~size =
  if size <= 0 then invalid_arg "Dma_buffer.alloc_sub_page: size";
  let sorted = List.sort compare offsets in
  let rec disjoint = function
    | a :: (b :: _ as rest) -> a + size <= b && disjoint rest
    | [ last ] -> last + size <= Addr.page_size
    | [] -> true
  in
  if List.exists (fun o -> o < 0) sorted || not (disjoint sorted) then
    invalid_arg "Dma_buffer.alloc_sub_page: overlapping or out of page";
  match Frame_allocator.alloc fa with
  | None -> None
  | Some frame ->
      Some
        (List.map
           (fun off -> { base = Addr.add frame off; size; pinned = true })
           offsets)

let free fa t =
  t.pinned <- false;
  let n = frames_for t.size in
  for i = 0 to n - 1 do
    Frame_allocator.free fa (Addr.add t.base (i * Addr.page_size))
  done

let free_shared fa = function
  | [] -> ()
  | first :: _ as all ->
      List.iter (fun b -> b.pinned <- false) all;
      Frame_allocator.free fa (Addr.of_pfn (Addr.pfn first.base))

let pin t = t.pinned <- true
let unpin t = t.pinned <- false
let frames t = frames_for t.size
