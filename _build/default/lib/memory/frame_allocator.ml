type t = {
  total : int;
  mutable bump : int;  (* next never-allocated pfn *)
  mutable free_list : int list;
  live : (int, unit) Hashtbl.t;
}

let create ~total_frames =
  if total_frames <= 0 then invalid_arg "Frame_allocator.create";
  { total = total_frames; bump = 0; free_list = []; live = Hashtbl.create 256 }

let alloc t =
  match t.free_list with
  | pfn :: rest ->
      t.free_list <- rest;
      Hashtbl.replace t.live pfn ();
      Some (Addr.of_pfn pfn)
  | [] ->
      if t.bump >= t.total then None
      else begin
        let pfn = t.bump in
        t.bump <- t.bump + 1;
        Hashtbl.replace t.live pfn ();
        Some (Addr.of_pfn pfn)
      end

let alloc_exn t =
  match alloc t with
  | Some a -> a
  | None -> failwith "Frame_allocator: out of physical memory"

let alloc_contiguous t ~frames =
  if frames <= 0 then invalid_arg "Frame_allocator.alloc_contiguous";
  if t.bump + frames > t.total then None
  else begin
    let first = t.bump in
    t.bump <- t.bump + frames;
    for pfn = first to first + frames - 1 do
      Hashtbl.replace t.live pfn ()
    done;
    Some (Addr.of_pfn first)
  end

let free t addr =
  if not (Addr.is_page_aligned addr) then
    invalid_arg "Frame_allocator.free: not page aligned";
  let pfn = Addr.pfn addr in
  if not (Hashtbl.mem t.live pfn) then
    invalid_arg "Frame_allocator.free: frame not allocated";
  Hashtbl.remove t.live pfn;
  t.free_list <- pfn :: t.free_list

let allocated t = Hashtbl.length t.live
let total t = t.total
