lib/pagetable/radix.ml: Array Pte Rio_memory Rio_sim
