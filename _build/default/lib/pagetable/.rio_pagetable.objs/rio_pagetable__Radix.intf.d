lib/pagetable/radix.mli: Pte Rio_memory Rio_sim
