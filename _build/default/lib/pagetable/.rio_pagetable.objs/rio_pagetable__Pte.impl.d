lib/pagetable/pte.ml: Format Int64 Rio_memory
