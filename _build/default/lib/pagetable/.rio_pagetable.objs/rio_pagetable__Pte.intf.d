lib/pagetable/pte.mli: Format Rio_memory
