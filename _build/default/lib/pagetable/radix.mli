(** Four-level radix page table (the baseline IOMMU's hierarchy, Figure 2).

    A 48-bit IOVA splits into a 36-bit virtual page number — four 9-bit
    indices into 512-entry tables — and a 12-bit page offset. The OS
    updates the table through {!map}/{!unmap}; the IOMMU hardware resolves
    IOTLB misses through {!walk}.

    Coherency is modeled faithfully: every slot keeps a CPU view and a
    walker view. On a non-coherent system the walker view only catches up
    when the OS calls sync (a barrier + cacheline flush, whose cycles are
    charged); forgetting to sync leaves the walker reading stale entries —
    observable in tests. Cycle costs of the OS traversal (pointer chases)
    and of the hardware walk (DRAM references) are charged to the clock. *)

type t

val create :
  frames:Rio_memory.Frame_allocator.t ->
  coherency:Rio_memory.Coherency.t ->
  clock:Rio_sim.Cycles.t ->
  cost:Rio_sim.Cost_model.t ->
  t
(** An empty hierarchy (root table allocated eagerly). *)

val levels : int
(** 4. *)

val map : t -> iova:int -> Pte.t -> (unit, [ `Already_mapped ]) result
(** Insert the IOVA=>PTE translation: walk down from the root (allocating
    intermediate tables as needed), write the leaf, then sync it so the
    walker can see it. *)

val unmap : t -> iova:int -> (Pte.t, [ `Not_mapped ]) result
(** Remove the translation and sync; returns the PTE that was mapped. *)

val lookup_cpu : t -> iova:int -> Pte.t option
(** The CPU's (OS's) current view, without charging cycles. *)

val walk : t -> iova:int -> Pte.t option
(** Hardware page walk as performed on an IOTLB miss: reads the walker
    view of each level and charges 4 DRAM references. [None] is an I/O
    page fault (translation absent — or present but not yet synced on a
    non-coherent system). *)

val mapped_count : t -> int
(** Translations currently present in the CPU view. *)

val node_count : t -> int
(** Page-table pages allocated (including the root). *)

val iova_bits : int
(** 48: IOVAs must be non-negative and below [2^iova_bits]. *)
