type t = { pfn : int; read : bool; write : bool }

let make ?(read = true) ?(write = true) ~pfn () =
  if pfn < 0 then invalid_arg "Pte.make: pfn";
  { pfn; read; write }

let frame t = Rio_memory.Addr.of_pfn t.pfn
let permits t ~write = if write then t.write else t.read

let encode t =
  let open Int64 in
  let bits = shift_left (of_int t.pfn) 12 in
  let bits = if t.read then logor bits 1L else bits in
  if t.write then logor bits 2L else bits

let decode bits =
  let open Int64 in
  let read = logand bits 1L <> 0L in
  let write = logand bits 2L <> 0L in
  if (not read) && not write then None
  else
    Some { pfn = to_int (shift_right_logical bits 12); read; write }

let equal a b = a.pfn = b.pfn && a.read = b.read && a.write = b.write

let pp fmt t =
  Format.fprintf fmt "pfn:%#x%s%s" t.pfn
    (if t.read then " R" else "")
    (if t.write then " W" else "")
