(** DMA descriptors: the entries of a device ring (§2.3).

    A descriptor carries at least the (I/O virtual) address and length of
    its target buffer, a direction, and status bits the device and driver
    use to synchronize. The address is an opaque 64-bit value: a plain
    physical address (no-IOMMU), a baseline IOVA, or an encoded rIOVA -
    the protection layer interprets it. *)

type dir = Rx  (** device writes memory *) | Tx  (** device reads memory *)

type status = Owned_by_driver | Owned_by_device | Completed

type t = {
  addr : int64;
  len : int;
  dir : dir;
  mutable status : status;
  cookie : int;  (** driver-private tag (e.g. packet id) *)
}

val make : addr:int64 -> len:int -> dir:dir -> cookie:int -> t
(** A fresh descriptor owned by the device (posted). *)

val complete : t -> unit
(** Device marks the DMA done. *)

val reclaim : t -> unit
(** Driver takes the descriptor back after completion. Raises
    [Invalid_argument] unless completed. *)

val pp : Format.formatter -> t -> unit
