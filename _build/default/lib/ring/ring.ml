type 'a t = {
  slots : 'a option array;
  mutable head : int;
  mutable tail : int;
}

let create ~size =
  if size <= 1 then invalid_arg "Ring.create: size must exceed 1";
  { slots = Array.make size None; head = 0; tail = 0 }

let size t = Array.length t.slots
let capacity t = size t - 1

let length t =
  let n = (t.tail - t.head + size t) mod size t in
  n

let is_empty t = t.head = t.tail
let is_full t = (t.tail + 1) mod size t = t.head
let head t = t.head
let tail t = t.tail

let post t x =
  if is_full t then Error `Full
  else begin
    let slot = t.tail in
    t.slots.(slot) <- Some x;
    t.tail <- (t.tail + 1) mod size t;
    Ok slot
  end

let peek t = if is_empty t then None else t.slots.(t.head)

let consume t =
  if is_empty t then None
  else begin
    let x = t.slots.(t.head) in
    t.slots.(t.head) <- None;
    t.head <- (t.head + 1) mod size t;
    x
  end

let get t i =
  if i < 0 || i >= size t then invalid_arg "Ring.get: index";
  match t.slots.(i) with
  | Some x -> x
  | None -> invalid_arg "Ring.get: empty slot"

let check_invariants t =
  if t.head < 0 || t.head >= size t then Error "head out of range"
  else if t.tail < 0 || t.tail >= size t then Error "tail out of range"
  else begin
    (* every slot in [head, tail) is occupied; the rest are empty *)
    let ok = ref (Ok ()) in
    for i = 0 to size t - 1 do
      let in_window =
        if t.head <= t.tail then i >= t.head && i < t.tail
        else i >= t.head || i < t.tail
      in
      match (t.slots.(i), in_window) with
      | None, true -> ok := Error (Printf.sprintf "hole in window at %d" i)
      | Some _, false -> ok := Error (Printf.sprintf "stale slot outside window at %d" i)
      | _ -> ()
    done;
    !ok
  end
