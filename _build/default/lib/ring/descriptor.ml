type dir = Rx | Tx

type status = Owned_by_driver | Owned_by_device | Completed

type t = { addr : int64; len : int; dir : dir; mutable status : status; cookie : int }

let make ~addr ~len ~dir ~cookie =
  if len <= 0 then invalid_arg "Descriptor.make: len";
  { addr; len; dir; status = Owned_by_device; cookie }

let complete t =
  match t.status with
  | Owned_by_device -> t.status <- Completed
  | Owned_by_driver | Completed -> invalid_arg "Descriptor.complete: not in flight"

let reclaim t =
  match t.status with
  | Completed -> t.status <- Owned_by_driver
  | Owned_by_device | Owned_by_driver -> invalid_arg "Descriptor.reclaim: not completed"

let pp fmt t =
  Format.fprintf fmt "%s[%Ld+%d %s]"
    (match t.dir with Rx -> "rx" | Tx -> "tx")
    t.addr t.len
    (match t.status with
    | Owned_by_driver -> "driver"
    | Owned_by_device -> "device"
    | Completed -> "done")
