(** Circular producer/consumer descriptor rings (§2.3, Figure 3).

    The driver posts descriptors at the tail; the device consumes from
    the head in order. Both indices wrap. The content available to the
    device is [\[head, tail)]. *)

type 'a t

val create : size:int -> 'a t
(** [size] must be positive. One slot is kept empty to distinguish full
    from empty, as real rings do: capacity is [size - 1]. *)

val size : 'a t -> int
val capacity : 'a t -> int
val length : 'a t -> int
(** Descriptors currently available to the device. *)

val is_empty : 'a t -> bool
val is_full : 'a t -> bool
val head : 'a t -> int
val tail : 'a t -> int

val post : 'a t -> 'a -> (int, [ `Full ]) result
(** Driver-side: place a descriptor at the tail; returns the slot index
    it occupied. *)

val peek : 'a t -> 'a option
(** Device-side: the descriptor at the head, without consuming. *)

val consume : 'a t -> 'a option
(** Device-side: remove and return the head descriptor. *)

val get : 'a t -> int -> 'a
(** Slot access by index (for completion processing). Raises
    [Invalid_argument] out of range. *)

val check_invariants : 'a t -> (unit, string) result
(** head/tail within bounds, length consistent. *)
