lib/ring/ring.mli:
