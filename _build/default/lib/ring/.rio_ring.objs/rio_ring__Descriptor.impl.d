lib/ring/descriptor.ml: Format
