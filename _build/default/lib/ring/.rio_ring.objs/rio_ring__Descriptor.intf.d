lib/ring/descriptor.mli: Format
