lib/ring/ring.ml: Array Printf
