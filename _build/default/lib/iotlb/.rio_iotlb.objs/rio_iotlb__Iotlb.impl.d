lib/iotlb/iotlb.ml: Hashtbl Rio_sim
