lib/iotlb/iotlb.mli: Rio_sim
