(** The baseline IOMMU's IOTLB: a bounded translation cache.

    Keyed by (device bdf, virtual page number), LRU-evicted at capacity.
    Entries are inserted by the hardware on a table-walk miss and removed
    either by an explicit single-entry invalidation (whose ~2,100-cycle
    command cost is the dominant unmap component of Table 1) or by a
    global flush (the deferred modes' batching strategy).

    The deferred modes' vulnerability window is directly observable: an
    entry stays usable after the OS unmapped the page until the flush
    arrives. *)

type 'a t

val create :
  capacity:int -> clock:Rio_sim.Cycles.t -> cost:Rio_sim.Cost_model.t -> 'a t
(** [capacity] entries, fully associative, LRU replacement. *)

val lookup : 'a t -> bdf:int -> vpn:int -> 'a option
(** Hardware lookup: charges the (device-side) lookup cost, updates LRU
    and hit/miss counters. *)

val insert : 'a t -> bdf:int -> vpn:int -> 'a -> unit
(** Fill after a table walk; evicts the LRU entry at capacity. *)

val invalidate : 'a t -> bdf:int -> vpn:int -> unit
(** Explicit single-entry invalidation: charges the full invalidation
    command cost whether or not the entry is present (the OS cannot
    know). *)

val flush_all : 'a t -> unit
(** Global flush: drops every entry, charging one flush-command cost. *)

val occupancy : 'a t -> int
val capacity : 'a t -> int
val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
val reset_stats : 'a t -> unit
