(** The paper's published numbers, as data.

    Transcribed from Malka et al., ASPLOS'15: Table 1 (cycle breakdown),
    Table 2 (normalized throughput/CPU), Table 3 (RR round-trip times),
    and the constants of Figures 7-8 and §5.3. Experiment modules print
    these next to the measured values. *)

type nic = Mlx | Brcm

val nic_name : nic -> string

type benchmark = Stream | Rr | Apache_1m | Apache_1k | Memcached

val benchmark_name : benchmark -> string
val benchmarks : benchmark list

(** {1 Table 1} *)

type table1_row = {
  component : Rio_sim.Breakdown.component;
  strict : int;
  strict_plus : int;
  defer : int;
  defer_plus : int;
}

val table1_map : table1_row list
val table1_unmap : table1_row list
val table1_cell : map:bool -> Rio_protect.Mode.t -> Rio_sim.Breakdown.component -> int option
(** Lookup helper; [None] for modes/components not in the table. *)

(** {1 Figure 7/8 constants} *)

val c_none_mlx : int
(** 1,816 cycles per packet with the IOMMU off (mlx). *)

val clock_ghz : float
(** 3.10. *)

val figure7_cycles : (Rio_protect.Mode.t * float) list
(** Per-packet cycles per mode, derived from [c_none_mlx] and the
    Table 2 mlx/stream throughput ratios (throughput is proportional to
    1/C by the validated model). *)

(** {1 Table 2} *)

val table2_throughput :
  nic -> benchmark -> riommu:Rio_protect.Mode.t -> vs:Rio_protect.Mode.t -> float option
(** [riommu] must be [Riommu_minus] or [Riommu]; [vs] one of strict,
    strict+, defer, defer+, none. *)

val table2_cpu :
  nic -> benchmark -> riommu:Rio_protect.Mode.t -> vs:Rio_protect.Mode.t -> float option

(** {1 Table 3} *)

val table3_rtt_us : nic -> Rio_protect.Mode.t -> float option

(** {1 Section 5.3} *)

val iotlb_miss_cycles : int
(** ~1,532 cycles (~0.5us) per IOTLB miss in the user-level I/O setup. *)
