(** Plain-text table rendering for experiment output. *)

type t

val make : headers:string list -> t
val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the
    headers. *)

val add_separator : t -> unit
val render : t -> string
(** Column-aligned ASCII table (first column left-aligned, the rest
    right-aligned). *)

(** {1 Cell formatting helpers} *)

val cell_f : ?decimals:int -> float -> string
(** Fixed-point float (default 2 decimals). *)

val cell_i : int -> string
val cell_ratio : float -> string
(** "1.23x". *)

val cell_pct : float -> string
(** Fraction rendered as "87%". *)
