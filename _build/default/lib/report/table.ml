type row = Cells of string list | Separator

type t = { headers : string list; mutable rows : row list (* reversed *) }

let make ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad i cell =
    let w = widths.(i) in
    if i = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell
  in
  let emit cells =
    Buffer.add_string buf
      (String.concat "  " (List.mapi pad cells));
    Buffer.add_char buf '\n'
  in
  let sep () =
    Buffer.add_string buf
      (String.concat "--"
         (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  sep ();
  List.iter (function Cells c -> emit c | Separator -> sep ()) rows;
  Buffer.contents buf

let cell_f ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_i v = string_of_int v
let cell_ratio v = Printf.sprintf "%.2fx" v
let cell_pct v = Printf.sprintf "%.0f%%" (100. *. v)
