(** Paper-vs-measured comparison formatting. *)

type verdict = Match | Close | Off

val verdict : ?tolerance:float -> paper:float -> measured:float -> unit -> verdict
(** [Match] within [tolerance] (default 0.25 relative), [Close] within
    twice that, [Off] beyond. Zero paper values compare absolutely. *)

val verdict_symbol : verdict -> string
(** "ok" / "~" / "!!". *)

val cell : ?tolerance:float -> paper:float -> measured:float -> unit -> string
(** "paper / measured symbol" in one cell. *)
