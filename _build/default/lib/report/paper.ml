module Mode = Rio_protect.Mode
module Breakdown = Rio_sim.Breakdown

type nic = Mlx | Brcm

let nic_name = function Mlx -> "mlx" | Brcm -> "brcm"

type benchmark = Stream | Rr | Apache_1m | Apache_1k | Memcached

let benchmark_name = function
  | Stream -> "stream"
  | Rr -> "rr"
  | Apache_1m -> "apache 1M"
  | Apache_1k -> "apache 1K"
  | Memcached -> "memcached"

let benchmarks = [ Stream; Rr; Apache_1m; Apache_1k; Memcached ]

type table1_row = {
  component : Breakdown.component;
  strict : int;
  strict_plus : int;
  defer : int;
  defer_plus : int;
}

let table1_map =
  [
    { component = Breakdown.Iova_alloc; strict = 3986; strict_plus = 92; defer = 1674; defer_plus = 108 };
    { component = Breakdown.Page_table; strict = 588; strict_plus = 590; defer = 533; defer_plus = 577 };
    { component = Breakdown.Other; strict = 44; strict_plus = 45; defer = 44; defer_plus = 42 };
  ]

let table1_unmap =
  [
    { component = Breakdown.Iova_find; strict = 249; strict_plus = 418; defer = 263; defer_plus = 454 };
    { component = Breakdown.Iova_free; strict = 159; strict_plus = 62; defer = 189; defer_plus = 57 };
    { component = Breakdown.Page_table; strict = 438; strict_plus = 427; defer = 471; defer_plus = 504 };
    { component = Breakdown.Iotlb_inv; strict = 2127; strict_plus = 2135; defer = 9; defer_plus = 9 };
    { component = Breakdown.Other; strict = 26; strict_plus = 25; defer = 205; defer_plus = 216 };
  ]

let table1_cell ~map mode component =
  let rows = if map then table1_map else table1_unmap in
  match List.find_opt (fun r -> r.component = component) rows with
  | None -> None
  | Some r -> (
      match mode with
      | Mode.Strict -> Some r.strict
      | Mode.Strict_plus -> Some r.strict_plus
      | Mode.Defer -> Some r.defer
      | Mode.Defer_plus -> Some r.defer_plus
      | Mode.None_ | Mode.Hw_passthrough | Mode.Sw_passthrough | Mode.Riommu_minus
      | Mode.Riommu ->
          None)

let c_none_mlx = 1816
let clock_ghz = 3.10

(* Table 2, throughput block. Rows: riommu- then riommu, each divided by
   strict, strict+, defer, defer+, none. *)
let t2_thr = function
  | Mlx, Stream -> Some ([| 5.12; 2.90; 2.57; 1.74; 0.52 |], [| 7.56; 4.28; 3.79; 2.57; 0.77 |])
  | Mlx, Rr -> Some ([| 1.23; 1.07; 1.05; 1.02; 0.95 |], [| 1.25; 1.09; 1.07; 1.03; 0.96 |])
  | Mlx, Apache_1m -> Some ([| 5.30; 1.62; 1.58; 1.20; 0.76 |], [| 5.80; 1.77; 1.73; 1.31; 0.83 |])
  | Mlx, Apache_1k -> Some ([| 2.32; 1.08; 1.07; 1.03; 0.92 |], [| 2.32; 1.08; 1.07; 1.03; 0.92 |])
  | Mlx, Memcached -> Some ([| 4.77; 1.17; 1.25; 1.03; 0.82 |], [| 4.88; 1.19; 1.28; 1.05; 0.83 |])
  | Brcm, Stream -> Some ([| 2.17; 1.00; 1.00; 1.00; 1.00 |], [| 2.17; 1.00; 1.00; 1.00; 1.00 |])
  | Brcm, Rr -> Some ([| 1.19; 1.05; 1.04; 1.02; 0.99 |], [| 1.21; 1.06; 1.05; 1.03; 1.00 |])
  | Brcm, Apache_1m -> Some ([| 1.20; 1.01; 1.00; 1.00; 1.00 |], [| 1.20; 1.01; 1.00; 1.00; 1.00 |])
  | Brcm, Apache_1k -> Some ([| 1.24; 1.13; 1.08; 1.02; 0.89 |], [| 1.29; 1.18; 1.13; 1.07; 0.93 |])
  | Brcm, Memcached -> Some ([| 1.76; 1.35; 1.18; 1.10; 0.78 |], [| 1.88; 1.45; 1.27; 1.18; 0.84 |])

let t2_cpu = function
  | Mlx, Stream -> Some ([| 1.00; 1.00; 1.00; 1.00; 1.00 |], [| 1.00; 1.00; 1.00; 1.00; 1.00 |])
  | Mlx, Rr -> Some ([| 0.94; 0.99; 0.98; 0.99; 1.01 |], [| 0.93; 0.98; 0.96; 0.98; 1.00 |])
  | Mlx, Apache_1m -> Some ([| 0.99; 0.99; 1.00; 1.00; 1.00 |], [| 0.99; 0.99; 0.99; 1.00; 1.00 |])
  | Mlx, Apache_1k -> Some ([| 0.99; 1.00; 1.00; 1.00; 1.00 |], [| 0.99; 1.00; 1.00; 1.00; 1.00 |])
  | Mlx, Memcached -> Some ([| 1.00; 1.00; 1.00; 1.00; 1.00 |], [| 1.00; 1.00; 1.00; 1.00; 1.00 |])
  | Brcm, Stream -> Some ([| 0.40; 0.50; 0.64; 0.81; 1.21 |], [| 0.36; 0.45; 0.58; 0.73; 1.09 |])
  | Brcm, Rr -> Some ([| 0.86; 0.96; 0.96; 1.00; 1.11 |], [| 0.84; 0.93; 0.93; 0.98; 1.08 |])
  | Brcm, Apache_1m -> Some ([| 0.48; 0.49; 0.60; 0.75; 1.41 |], [| 0.41; 0.42; 0.52; 0.65; 1.22 |])
  | Brcm, Apache_1k -> Some ([| 0.99; 0.99; 0.99; 1.00; 1.00 |], [| 0.99; 1.00; 1.00; 1.00; 1.00 |])
  | Brcm, Memcached -> Some ([| 1.00; 1.00; 1.00; 1.00; 1.00 |], [| 1.00; 1.00; 1.00; 1.00; 1.00 |])

let vs_index = function
  | Mode.Strict -> Some 0
  | Mode.Strict_plus -> Some 1
  | Mode.Defer -> Some 2
  | Mode.Defer_plus -> Some 3
  | Mode.None_ -> Some 4
  | Mode.Hw_passthrough | Mode.Sw_passthrough | Mode.Riommu_minus | Mode.Riommu ->
      None

let lookup source nic bench ~riommu ~vs =
  match (source (nic, bench), vs_index vs) with
  | Some (minus, plus), Some i -> (
      match riommu with
      | Mode.Riommu_minus -> Some minus.(i)
      | Mode.Riommu -> Some plus.(i)
      | _ -> None)
  | _ -> None

let table2_throughput nic bench ~riommu ~vs = lookup t2_thr nic bench ~riommu ~vs
let table2_cpu nic bench ~riommu ~vs = lookup t2_cpu nic bench ~riommu ~vs

(* Figure 7: C per mode = C_none x (T_none / T_mode), from Table 2's
   mlx/stream column: T_riommu-/T_mode and T_riommu-/T_none = 0.52. *)
let figure7_cycles =
  let ratio_to_none mode =
    match mode with
    | Mode.None_ -> 1.0
    | Mode.Riommu_minus -> 1.0 /. 0.52
    | Mode.Riommu -> 1.0 /. 0.77
    | Mode.Strict -> 5.12 /. 0.52
    | Mode.Strict_plus -> 2.90 /. 0.52
    | Mode.Defer -> 2.57 /. 0.52
    | Mode.Defer_plus -> 1.74 /. 0.52
    | Mode.Hw_passthrough | Mode.Sw_passthrough -> 1.1
  in
  List.map
    (fun m -> (m, float_of_int c_none_mlx *. ratio_to_none m))
    Mode.evaluated

let table3 = function
  | Mlx -> [| 17.3; 15.1; 14.9; 14.4; 14.1; 13.9; 13.4 |]
  | Brcm -> [| 41.9; 36.7; 36.6; 35.8; 35.1; 34.7; 34.6 |]

let table3_rtt_us nic mode =
  let idx =
    match mode with
    | Mode.Strict -> Some 0
    | Mode.Strict_plus -> Some 1
    | Mode.Defer -> Some 2
    | Mode.Defer_plus -> Some 3
    | Mode.Riommu_minus -> Some 4
    | Mode.Riommu -> Some 5
    | Mode.None_ -> Some 6
    | Mode.Hw_passthrough | Mode.Sw_passthrough -> None
  in
  Option.map (fun i -> (table3 nic).(i)) idx

let iotlb_miss_cycles = 1532
