(** ASCII charts, so the figure experiments render like figures.

    Horizontal bars (Figure 12-style mode comparisons), stacked bars
    (Figure 7's per-component composition), and a scatter/curve plot
    (Figure 8's throughput-vs-C axis). *)

val hbar :
  ?width:int -> ?unit_label:string -> (string * float) list -> string
(** One bar per (label, value), scaled to the maximum; [width] is the
    longest bar in characters (default 50). Values render after the
    bar. *)

val stacked :
  ?width:int ->
  segments:string list ->
  (string * float list) list ->
  string
(** Stacked horizontal bars: every row carries one value per segment
    (all rows scaled to the global maximum total). Segments are drawn
    with distinct fill characters and listed in a legend line. Raises
    [Invalid_argument] on width mismatch. *)

val scatter :
  ?rows:int ->
  ?cols:int ->
  ?x_label:string ->
  ?y_label:string ->
  curve:(float * float) list ->
  points:(string * float * float) list ->
  unit ->
  string
(** A log-x scatter plot: [curve] drawn with ['.'], named [points] with
    their label's first letter. Axes are annotated with min/max. *)
