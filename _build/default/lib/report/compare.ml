type verdict = Match | Close | Off

let verdict ?(tolerance = 0.25) ~paper ~measured () =
  let rel =
    if Float.abs paper < 1e-9 then Float.abs measured
    else Float.abs (measured -. paper) /. Float.abs paper
  in
  if rel <= tolerance then Match else if rel <= 2. *. tolerance then Close else Off

let verdict_symbol = function Match -> "ok" | Close -> "~" | Off -> "!!"

let cell ?tolerance ~paper ~measured () =
  Printf.sprintf "%.2f/%.2f %s" paper measured
    (verdict_symbol (verdict ?tolerance ~paper ~measured ()))
