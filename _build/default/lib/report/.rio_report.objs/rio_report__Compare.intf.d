lib/report/compare.mli:
