lib/report/paper.mli: Rio_protect Rio_sim
