lib/report/compare.ml: Float Printf
