lib/report/chart.mli:
