lib/report/table.mli:
