lib/report/paper.ml: Array List Option Rio_protect Rio_sim
