(** Bonnie++ sequential disk I/O over SATA (§4, Applicability).

    Drives the AHCI model with sequential requests at a realistic disk
    bandwidth and measures end-to-end throughput. Disk service time
    dwarfs the per-request (un)map cost by three orders of magnitude, so
    strict IOMMU protection and no IOMMU are indistinguishable - the
    paper's observation for both SATA HDDs and SATA SSDs. *)

type result = {
  mode : Rio_protect.Mode.t;
  mbps : float;  (** delivered sequential throughput *)
  disk_seconds : float;
  cpu_seconds : float;
  cpu_fraction : float;  (** CPU busy while the disk streams *)
}

val run :
  ?requests:int ->
  ?request_bytes:int ->
  ?seed:int ->
  mode:Rio_protect.Mode.t ->
  disk_bandwidth_mbps:float ->
  unit ->
  result
(** Defaults: 2,000 sequential requests of 64 KB. *)
