(* Calibration: an order of magnitude above Apache 1KB (§5.2), i.e.
   ~120K ops/s unprotected. Back-solving the paper's Table 2 memcached
   ratios gives ~7 mapped packets per memslap operation (query, 1KB
   response, acks both ways, and memslap's concurrency-32 batching) over
   ~13K cycles of hash/LRU logic. *)
let request_config =
  {
    Server_model.app_cycles = 13_000;
    rx_packets = 3.5;
    tx_packets = 3.5;
    response_bytes = 1_024;
  }

let run ~profile ~protection_per_packet ~cost =
  Server_model.run request_config ~profile ~protection_per_packet ~cost
