(** ApacheBench model: HTTP server throughput at 1 KB and 1 MB files
    (§5.1, Benchmarks).

    Apache performs heavy per-request processing (the paper measures
    ~12K requests/second for 1 KB files on both NICs, i.e. ~250K cycles
    per request), amortized over one packet for the 1 KB file and over
    ~700 for the 1 MB file - which is why 1 MB behaves like Netperf
    stream while 1 KB is compute-bound and nearly mode-insensitive. *)

type size = KB1 | MB1

val request_config : size -> Server_model.config
(** The per-request calibration (documented in EXPERIMENTS.md). *)

val run :
  size ->
  profile:Rio_device.Nic_profiles.t ->
  protection_per_packet:float ->
  cost:Rio_sim.Cost_model.t ->
  Server_model.result
