(** Memcached / Memslap model (§5.1, Benchmarks).

    An in-memory LRU get/set server: 90% get / 10% set, 64 B keys, 1 KB
    values, 32 concurrent requests. Its internal logic is an order of
    magnitude cheaper than Apache's per-request processing, so the
    protection-mode differences show through strongly (paper: rIOMMU up
    to 4.88x over strict on mlx). *)

val request_config : Server_model.config

val run :
  profile:Rio_device.Nic_profiles.t ->
  protection_per_packet:float ->
  cost:Rio_sim.Cost_model.t ->
  Server_model.result
