let header_bytes = 8

let fill_byte ~tag i = Char.chr ((tag + (31 * i)) land 0xff)

let make ~tag ~len =
  if len < header_bytes then invalid_arg "Packet.make: len < 8";
  let b = Bytes.create len in
  Bytes.set_int32_le b 0 (Int32.of_int tag);
  Bytes.set_int32_le b 4 (Int32.of_int len);
  for i = header_bytes to len - 1 do
    Bytes.set b i (fill_byte ~tag i)
  done;
  b

let tag_of b =
  if Bytes.length b < header_bytes then None
  else Some (Int32.to_int (Bytes.get_int32_le b 0))

let verify ~tag b =
  let len = Bytes.length b in
  if len < header_bytes then Error "truncated below header"
  else begin
    let got_tag = Int32.to_int (Bytes.get_int32_le b 0) in
    let got_len = Int32.to_int (Bytes.get_int32_le b 4) in
    if got_tag <> tag then
      Error (Printf.sprintf "tag mismatch: expected %d, got %d" tag got_tag)
    else if got_len <> len then
      Error (Printf.sprintf "length mismatch: header says %d, buffer is %d" got_len len)
    else begin
      let rec check i =
        if i >= len then Ok ()
        else if Bytes.get b i <> fill_byte ~tag i then
          Error (Printf.sprintf "corrupt byte at offset %d" i)
        else check (i + 1)
      in
      check header_bytes
    end
  end
