type size = KB1 | MB1

(* Calibration: ~12K requests/s for 1 KB files (paper §5.2, confirmed
   against Soares et al.). ApacheBench opens a TCP connection per
   request, so each 1 KB request moves ~22 mapped packets (SYN handshake,
   request, response, acks, FIN exchange) around ~218K cycles of Apache
   and kernel connection processing - these packet counts are
   back-solved from the paper's Table 2 apache-1K ratios. A 1 MB
   response adds ~700 MTU data packets plus received delayed acks. *)
let request_config = function
  | KB1 ->
      {
        Server_model.app_cycles = 218_000;
        rx_packets = 11.0;
        tx_packets = 11.0;
        response_bytes = 1_024;
      }
  | MB1 ->
      {
        Server_model.app_cycles = 260_000;
        rx_packets = 360.0;  (* handshake + delayed acks for ~700 packets *)
        tx_packets = 710.0;
        response_bytes = 1_048_576;
      }

let run size ~profile ~protection_per_packet ~cost =
  Server_model.run (request_config size) ~profile ~protection_per_packet ~cost
