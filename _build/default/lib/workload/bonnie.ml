module Rng = Rio_sim.Rng
module Cost_model = Rio_sim.Cost_model
module Phys_mem = Rio_memory.Phys_mem
module Mode = Rio_protect.Mode
module Dma_api = Rio_protect.Dma_api
module Sata = Rio_device.Sata

type result = {
  mode : Mode.t;
  mbps : float;
  disk_seconds : float;
  cpu_seconds : float;
  cpu_fraction : float;
}

(* block-layer + filesystem processing per request, besides DMA mapping *)
let per_request_cpu = 20_000

let run ?(requests = 2_000) ?(request_bytes = 65_536) ?(seed = 7) ~mode
    ~disk_bandwidth_mbps () =
  let config =
    {
      (Dma_api.default_config ~mode) with
      Dma_api.ring_sizes = [ Sata.slots + 1 ];
      total_frames = 400_000;
    }
  in
  let api = Dma_api.create config in
  let cost = Dma_api.cost api in
  let rng = Rng.create ~seed in
  let mem = Phys_mem.create () in
  let sata =
    Sata.create ~data_movement:false ~bandwidth_mbps:disk_bandwidth_mbps ~api ~mem
      ~rng ()
  in
  let issued = ref 0 in
  while !issued < requests do
    (match Sata.submit sata ~bytes:request_bytes ~write:(!issued mod 2 = 0) with
    | Ok () -> incr issued
    | Error (`Busy | `Map_failed) ->
        ignore (Sata.device_complete sata ~max:8);
        ignore (Sata.reclaim sata));
    ()
  done;
  ignore (Sata.device_complete sata ~max:Sata.slots);
  ignore (Sata.reclaim sata);
  Dma_api.flush api;
  let s = Cost_model.cycles_per_second cost in
  let disk_seconds = float_of_int (Sata.disk_cycles sata) /. s in
  let cpu_cycles =
    Dma_api.driver_cycles api + (requests * per_request_cpu)
  in
  let cpu_seconds = float_of_int cpu_cycles /. s in
  (* disk and CPU overlap; the slower one bounds the elapsed time *)
  let elapsed = Float.max disk_seconds cpu_seconds in
  let mbps = float_of_int (requests * request_bytes) /. 1e6 /. elapsed in
  {
    mode;
    mbps;
    disk_seconds;
    cpu_seconds;
    cpu_fraction = Float.min 1.0 (cpu_seconds /. elapsed);
  }
