lib/workload/memcached.mli: Rio_device Rio_sim Server_model
