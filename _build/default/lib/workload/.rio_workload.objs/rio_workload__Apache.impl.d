lib/workload/apache.ml: Server_model
