lib/workload/apache.mli: Rio_device Rio_sim Server_model
