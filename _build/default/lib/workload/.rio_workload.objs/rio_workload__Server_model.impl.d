lib/workload/server_model.ml: Float Rio_device Rio_sim
