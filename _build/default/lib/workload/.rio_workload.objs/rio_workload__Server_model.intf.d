lib/workload/server_model.mli: Rio_device Rio_sim
