lib/workload/netperf.ml: Array Bytes Hashtbl List Perf_model Printf Rio_device Rio_memory Rio_protect Rio_sim
