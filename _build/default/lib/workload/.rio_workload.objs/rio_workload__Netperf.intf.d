lib/workload/netperf.mli: Rio_device Rio_protect Rio_sim
