lib/workload/packet.ml: Bytes Char Int32 Printf
