lib/workload/packet.mli:
