lib/workload/bonnie.mli: Rio_protect
