lib/workload/perf_model.mli: Rio_sim
