lib/workload/memcached.ml: Server_model
