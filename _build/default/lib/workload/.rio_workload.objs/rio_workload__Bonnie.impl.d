lib/workload/bonnie.ml: Float Rio_device Rio_memory Rio_protect Rio_sim
