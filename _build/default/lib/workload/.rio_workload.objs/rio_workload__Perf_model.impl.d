lib/workload/perf_model.ml: Float Rio_sim
