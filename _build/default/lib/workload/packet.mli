(** Deterministic packet payloads for end-to-end integrity checks.

    Payloads embed their tag and length so corruption, truncation, or
    cross-packet mixups after a trip through DMA translation are all
    detected. *)

val make : tag:int -> len:int -> bytes
(** A [len]-byte payload ([len >= 8]) carrying [tag] and a position-
    dependent fill. *)

val verify : tag:int -> bytes -> (unit, string) result
(** Check a payload produced by {!make}; the error says what broke. *)

val tag_of : bytes -> int option
(** Recover the embedded tag, if the header is intact. *)
