(** The paper's validated performance model (§3.3, Figure 8).

    If [S] is the core clock (cycles/second) and [C] the average cycles
    the core spends per packet, the core handles [S/C] packets per
    second and - Ethernet frames carrying 1,500 bytes - the throughput
    is [Gbps(C) = 1500 x 8 x S/C], clipped at the NIC's line rate. When
    the line rate clips, the interesting metric becomes CPU utilization:
    the fraction of the core the required packet rate consumes. *)

val packets_per_second : cost:Rio_sim.Cost_model.t -> cycles_per_packet:float -> float
(** [S/C]; infinite C yields 0. *)

val gbps :
  cost:Rio_sim.Cost_model.t -> bytes_per_packet:int -> cycles_per_packet:float -> float
(** Uncapped model throughput. *)

val line_rate_pps : line_rate_gbps:float -> bytes_per_packet:int -> float
(** Packet rate needed to saturate the line. *)

val capped_gbps :
  cost:Rio_sim.Cost_model.t ->
  line_rate_gbps:float ->
  bytes_per_packet:int ->
  cycles_per_packet:float ->
  float * bool
(** Throughput clipped at line rate; the flag reports whether the line
    (rather than the core) is the bottleneck. *)

val cpu_fraction :
  cost:Rio_sim.Cost_model.t -> cycles_per_packet:float -> pps:float -> float
(** Fraction of one core consumed at the given packet rate, clipped to
    1.0. *)

val rr_rtt_us :
  cost:Rio_sim.Cost_model.t -> base_us:float -> extra_cycles:float -> float
(** Round-trip of a request-response transaction: wire-and-stack
    baseline plus the protection cycles the core adds per transaction. *)

val rr_transactions_per_second : rtt_us:float -> float
(** RR throughput is the inverse of its round-trip (§5.1). *)
