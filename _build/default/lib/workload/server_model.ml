module Cost_model = Rio_sim.Cost_model
module Nic_profiles = Rio_device.Nic_profiles

type config = {
  app_cycles : int;
  rx_packets : float;
  tx_packets : float;
  response_bytes : int;
}

type result = {
  requests_per_sec : float;
  gbps : float;
  cpu : float;
  line_limited : bool;
  cycles_per_request : float;
}

let run config ~profile ~protection_per_packet ~cost =
  let packets = config.rx_packets +. config.tx_packets in
  let per_packet =
    float_of_int profile.Nic_profiles.c_other +. protection_per_packet
  in
  let cycles_per_request = float_of_int config.app_cycles +. (packets *. per_packet) in
  let cpu_rps = Cost_model.cycles_per_second cost /. cycles_per_request in
  let line_rps =
    profile.Nic_profiles.line_rate_gbps *. 1e9
    /. float_of_int (config.response_bytes * 8)
  in
  let line_limited = cpu_rps > line_rps in
  let rps = Float.min cpu_rps line_rps in
  let gbps = rps *. float_of_int (config.response_bytes * 8) /. 1e9 in
  let cpu =
    Float.min 1.0 (rps *. cycles_per_request /. Cost_model.cycles_per_second cost)
  in
  { requests_per_sec = rps; gbps; cpu; line_limited; cycles_per_request }
